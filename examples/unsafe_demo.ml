(* Static analysis demo (§1: "identify the subset of language features
   which do not prevent process migration", after Smith & Hutchinson).

   Feeds the pre-compiler a program full of hazards and shows the
   diagnostics of the syntactic scan; then a program the type system
   accepts but whose *dataflow* is unmigratable (a freed pointer live at
   a poll-point), caught by the flow-sensitive lint; and finally shows
   that the safe version is accepted and migrates.

     dune exec examples/unsafe_demo.exe
*)

let bad_source =
  {|
int main() {
  int x;
  int *p;
  long addr;
  char *raw;

  p = (int *) 4096;          /* int -> pointer cast: meaningless after migration */
  x = 5;
  addr = (long) &x;          /* pointer -> int cast: address leaks into data */
  raw = (char *) malloc(8);  /* fine: char buffer */
  p = (int *) raw;           /* unrelated pointer cast: collected under char type */
  print_int(x);
  return 0;
}
|}

let dangling_source =
  {|
int main() {
  int i;
  int *p;
  p = (int *) malloc(4 * sizeof(int));
  p[0] = 7;
  free(p);
  for (i = 0; i < 10; i = i + 1) {
    print_int(i);
  }
  print_int(p[0]);
  return 0;
}
|}

let good_source =
  {|
int main() {
  int x;
  int *p;
  x = 5;
  p = &x;                      /* addresses may flow through pointers... */
  print_int(*p);               /* ...because the MSR model translates them */
  return 0;
}
|}

let () =
  Fmt.pr "=== scanning the hazardous program (syntactic scan) ===@.";
  let ast = Hpm_lang.Typecheck.check_program (Hpm_lang.Parser.parse_string bad_source) in
  let diags = Hpm_ir.Unsafe.check ast in
  List.iter (fun d -> Fmt.pr "  %a@." Hpm_ir.Diag.pp d) diags;
  Fmt.pr "=> %d errors, %d warnings: rejected by the pre-compiler@.@."
    (List.length (Hpm_ir.Diag.errors diags))
    (List.length (Hpm_ir.Diag.warnings diags));
  Fmt.pr "=== a well-typed program the dataflow lint still refuses ===@.";
  (* no unsafe casts anywhere — but the freed pointer p is live at the
     loop's poll-point, where collection would traverse the dead block *)
  let a = Hpm_ir.Lint.analyze_source dangling_source in
  List.iter (fun d -> Fmt.pr "  %a@." Hpm_ir.Diag.pp d) a.Hpm_ir.Lint.a_diags;
  (try
     ignore (Hpm_core.Migration.prepare dangling_source);
     Fmt.pr "BUG: prepare accepted it@."
   with Hpm_ir.Diag.Rejected _ -> Fmt.pr "=> Migration.prepare rejects it@.@.");
  Fmt.pr "=== scanning the safe version ===@.";
  let m = Hpm_core.Migration.prepare good_source in
  Fmt.pr "accepted: %d poll-points inserted; running with migration...@."
    (List.length m.Hpm_core.Migration.polls.Hpm_ir.Pollpoint.polls);
  let o =
    Hpm_core.Migration.run_migrating m ~src_arch:Hpm_arch.Arch.dec5000
      ~dst_arch:Hpm_arch.Arch.sparc20 ()
  in
  Fmt.pr "output: %s@." (String.trim o.Hpm_core.Migration.output)
