(** Cost decomposition of a migration, per §4.2 of the paper:

    Collect = MSRLT_search + Encode_and_Copy, with search O(n log n) in
    the number of MSR nodes and encode O(Σ Dᵢ) in the live data size;
    Restore = MSRLT_update + Decode_and_Copy, with update O(n) and
    decode O(Σ Dᵢ).  These records carry the measured n, Σ Dᵢ, and the
    operation counters, so the complexity benchmark can print the
    decomposition next to wall-clock time. *)

type collect = {
  mutable c_blocks : int;        (** MSR nodes collected (n) *)
  mutable c_data_bytes : int;    (** Σ Dᵢ: bytes of block payload moved *)
  mutable c_stream_bytes : int;  (** encoded stream size *)
  mutable c_searches : int;      (** MSRLT address searches *)
  mutable c_pointers : int;      (** pointer elements translated *)
  mutable c_live_vars : int;     (** live variables saved across all frames *)
  mutable c_frames : int;
}

let collect_zero () =
  {
    c_blocks = 0;
    c_data_bytes = 0;
    c_stream_bytes = 0;
    c_searches = 0;
    c_pointers = 0;
    c_live_vars = 0;
    c_frames = 0;
  }

type restore = {
  mutable r_blocks : int;        (** blocks bound in the MSRLT (n) *)
  mutable r_data_bytes : int;    (** Σ Dᵢ decoded *)
  mutable r_heap_allocs : int;   (** fresh heap allocations performed *)
  mutable r_updates : int;       (** MSRLT id→address bindings *)
  mutable r_pointers : int;      (** pointer elements rebuilt *)
}

let restore_zero () =
  { r_blocks = 0; r_data_bytes = 0; r_heap_allocs = 0; r_updates = 0; r_pointers = 0 }

let pp_collect ppf c =
  Fmt.pf ppf
    "collect: n=%d blocks, data=%dB, stream=%dB, searches=%d, pointers=%d, live=%d vars / %d frames"
    c.c_blocks c.c_data_bytes c.c_stream_bytes c.c_searches c.c_pointers c.c_live_vars
    c.c_frames

let pp_restore ppf r =
  Fmt.pf ppf "restore: n=%d blocks, data=%dB, heap_allocs=%d, updates=%d, pointers=%d"
    r.r_blocks r.r_data_bytes r.r_heap_allocs r.r_updates r.r_pointers
