lib/core/checkpoint.ml: Collect Cstats Fun Hpm_arch Hpm_machine Interp Migration Printf Restore
