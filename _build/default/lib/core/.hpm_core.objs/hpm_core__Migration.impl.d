lib/core/migration.ml: Arch Collect Compile Cstats Fmt Hpm_arch Hpm_ir Hpm_lang Hpm_machine Hpm_msr Hpm_xdr Interp Ir Mem Mstats Pollpoint Restore Stream String Ti Unsafe Xdr
