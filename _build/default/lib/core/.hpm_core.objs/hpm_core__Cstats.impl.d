lib/core/cstats.ml: Fmt
