lib/core/restore.ml: Array Cstats Fmt Hashtbl Hpm_arch Hpm_ir Hpm_lang Hpm_machine Hpm_msr Hpm_xdr Int64 Interp Ir Layout List Mem Msrlt Rng Stream Ti Ty Xdr
