lib/core/checkpoint.mli: Cstats Hpm_arch Hpm_machine Interp Migration
