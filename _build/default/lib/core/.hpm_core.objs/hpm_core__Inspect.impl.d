lib/core/inspect.ml: Fmt Format Hpm_ir Hpm_lang Hpm_machine Hpm_msr Hpm_xdr Int64 List Printf Stream String Ti Ty Xdr
