lib/core/stream.ml: Buffer Bytes Char Fmt Hpm_ir Hpm_lang Hpm_machine Hpm_xdr Int64 Mem String Ty Xdr
