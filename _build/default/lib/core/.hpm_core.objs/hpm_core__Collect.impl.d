lib/core/collect.ml: Array Buffer Cstats Fmt Hashtbl Hpm_arch Hpm_ir Hpm_lang Hpm_machine Hpm_msr Hpm_xdr Int64 Interp Ir Layout List Liveness Mem Msrlt Rng Stream Ti Ty Xdr
