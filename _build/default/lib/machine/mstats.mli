(** Execution counters for the simulated machine, driving the §4.3
    overhead experiment: poll checks and block-table maintenance are
    counted so annotated and original runs compare instruction-for-
    instruction.  All fields are mutable and bumped by {!Mem} and
    {!Interp} as the process runs. *)

type t = {
  mutable instrs : int;        (** IR instructions executed *)
  mutable polls : int;         (** poll checks executed *)
  mutable allocs : int;        (** blocks allocated (stack + heap + global) *)
  mutable heap_allocs : int;
  mutable frees : int;
  mutable searches : int;      (** address → block lookups *)
  mutable table_ops : int;     (** block-table insert/remove operations *)
  mutable calls : int;
  mutable bytes_allocated : int;
}

val create : unit -> t
val reset : t -> unit
val pp : Format.formatter -> t -> unit
