(** Deterministic PRNG playing libc's [rand]/[srand] (drand48-family LCG).

    The state is part of the process image: collection serializes it and
    restoration reinstates it, so a migrated program continues the same
    random sequence — checked by the [rng state migrates] test. *)

type t

val create : int -> t
val seed : t -> int -> unit

(** Raw 48-bit step. *)
val next : t -> int64

(** Non-negative 30-bit int, like C's [rand ()]. *)
val next_int : t -> int

(** State capture / reinstatement for migration. *)
val get_state : t -> int64

val set_state : t -> int64 -> unit
