lib/machine/mem.ml: Arch Buffer Bytes Endian Fmt Hpm_arch Hpm_lang Int64 Layout List Map Mstats Ty
