lib/machine/mstats.mli: Format
