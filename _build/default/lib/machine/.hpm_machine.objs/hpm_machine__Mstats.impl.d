lib/machine/mstats.ml: Fmt
