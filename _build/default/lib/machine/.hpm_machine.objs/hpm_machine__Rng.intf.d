lib/machine/rng.mli:
