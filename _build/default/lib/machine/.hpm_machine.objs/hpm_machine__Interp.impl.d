lib/machine/interp.ml: Arch Array Ast Buffer Bytes Char Endian Fmt Hashtbl Hpm_arch Hpm_ir Hpm_lang Int32 Int64 Ir Layout List Mem Mstats Option Printf Rng String Ty
