(** Execution counters for the simulated machine.

    These drive the §4.3 overhead experiment: the cost of the migratable
    format is (a) poll checks executed and (b) block-table (MSRLT)
    maintenance on allocation — both counted here, so annotated and
    original runs can be compared instruction-for-instruction. *)

type t = {
  mutable instrs : int;        (** IR instructions executed *)
  mutable polls : int;         (** poll checks executed *)
  mutable allocs : int;        (** blocks allocated (stack + heap + global) *)
  mutable heap_allocs : int;   (** heap blocks allocated *)
  mutable frees : int;
  mutable searches : int;      (** address → block lookups *)
  mutable table_ops : int;     (** block-table insert/remove operations *)
  mutable calls : int;
  mutable bytes_allocated : int;
}

let create () =
  {
    instrs = 0;
    polls = 0;
    allocs = 0;
    heap_allocs = 0;
    frees = 0;
    searches = 0;
    table_ops = 0;
    calls = 0;
    bytes_allocated = 0;
  }

let reset t =
  t.instrs <- 0;
  t.polls <- 0;
  t.allocs <- 0;
  t.heap_allocs <- 0;
  t.frees <- 0;
  t.searches <- 0;
  t.table_ops <- 0;
  t.calls <- 0;
  t.bytes_allocated <- 0

let pp ppf t =
  Fmt.pf ppf
    "instrs=%d polls=%d allocs=%d (heap=%d) frees=%d searches=%d table_ops=%d calls=%d bytes=%d"
    t.instrs t.polls t.allocs t.heap_allocs t.frees t.searches t.table_ops t.calls
    t.bytes_allocated
