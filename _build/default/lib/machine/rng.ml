(** Deterministic pseudo-random number generator for the simulated libc.

    A classic 48-bit linear congruential generator (the [drand48] family's
    constants).  Determinism matters twice: the same program must produce
    the same allocation graph on every run (tests), and the RNG state is
    part of the process state, so it is captured and restored by migration
    exactly like the C library's hidden [rand] state would have to be. *)

type t = { mutable state : int64 }

let a = 0x5DEECE66DL
let c = 0xBL
let mask = Int64.sub (Int64.shift_left 1L 48) 1L

let create seed = { state = Int64.logand (Int64.of_int seed) mask }

let seed t v = t.state <- Int64.logand (Int64.of_int v) mask

let next t =
  t.state <- Int64.logand (Int64.add (Int64.mul t.state a) c) mask;
  t.state

(** Non-negative 31-bit int, like C's [rand()]. *)
let next_int t = Int64.to_int (Int64.shift_right_logical (next t) 17) land 0x3fffffff

let get_state t = t.state
let set_state t s = t.state <- Int64.logand s mask
