(** Jacobi stencil workload (extra): iterative 2-D heat diffusion on two
    heap grids, swapped each sweep through pointers.

    The long-running, steady-state job the scheduler examples want: large
    flat double arrays (like linpack) but heap-allocated and accessed
    through swappable pointers, with a migration-friendly outer iteration
    loop. *)

let name = "jacobi"

(* grid side length is fixed; [n] is the sweep count *)
let side = 48

let source n =
  Printf.sprintf
    {|
/* jacobi: 2-D heat diffusion, two grids swapped per sweep */

double *cur;
double *nxt;

double at(double *g, int i, int j) {
  return g[i * %d + j];
}

void sweep() {
  int i;
  int j;
  for (i = 1; i < %d - 1; i++) {
    for (j = 1; j < %d - 1; j++) {
      nxt[i * %d + j] =
        0.25 * (at(cur, i - 1, j) + at(cur, i + 1, j)
              + at(cur, i, j - 1) + at(cur, i, j + 1));
    }
  }
}

int main() {
  int i;
  int k;
  double *tmp;
  double total;
  cur = (double *) malloc(%d * sizeof(double));
  nxt = (double *) malloc(%d * sizeof(double));
  for (i = 0; i < %d; i++) {
    cur[i] = 0.0;
    nxt[i] = 0.0;
  }
  /* hot edge along the top row */
  for (i = 0; i < %d; i++) {
    cur[i] = 100.0;
    nxt[i] = 100.0;
  }
  for (k = 0; k < %d; k++) {
    sweep();
    tmp = cur;
    cur = nxt;
    nxt = tmp;
  }
  total = 0.0;
  for (i = 0; i < %d; i++) {
    total = total + cur[i];
  }
  print_double(total);
  return 0;
}
|}
    side side side side (side * side) (side * side) (side * side) side n
    (side * side)

let test_size = 8
