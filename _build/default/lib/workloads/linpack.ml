(** The linpack benchmark workload (§4.1, Table 1, Figure 2a).

    Solves Ax = b by Gaussian elimination with partial pivoting.  As in the
    paper's description: the matrices are local variables of [main] —
    a small, fixed number of large MSR nodes — and are referenced by the
    [dgefa]/[dgesl] worker functions through pointers; the program is
    computation-intensive and performs no dynamic allocation.  Scaling the
    problem size therefore grows Σ Dᵢ while the MSR node count n stays
    constant, which is why its collection and restoration costs are linear
    in the data size (Figure 2a).

    Mini-C has no VLAs, so the matrix order is spliced into the source
    text — the pre-compiler genuinely re-runs for each size, like
    recompiling the C benchmark with a different [#define N]. *)

let name = "linpack"

(** Source text for an n×n system.  The generated program prints PASS and
    the residual check when the computed solution matches the known exact
    solution (all ones). *)
let source n =
  Printf.sprintf
    {|
/* linpack: solve Ax = b, exact solution = all ones */

void matgen(double (*a)[%d], double *b, int n) {
  int i; int j;
  srand(1325);
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      a[i][j] = (double)(rand() %% 2000) / 1000.0 - 0.5;
    }
  }
  /* row sums as rhs, so x = (1,...,1) exactly in exact arithmetic */
  for (i = 0; i < n; i++) {
    b[i] = 0.0;
    for (j = 0; j < n; j++) {
      b[i] = b[i] + a[i][j];
    }
  }
}

/* gaussian elimination with partial pivoting, pivot rows swapped in place */
void dgefa(double (*a)[%d], double *b, int *ipvt, int n) {
  int i; int j; int k; int l;
  double t; double amax;
  for (k = 0; k < n - 1; k++) {
    l = k;
    amax = fabs(a[k][k]);
    for (i = k + 1; i < n; i++) {
      if (fabs(a[i][k]) > amax) {
        amax = fabs(a[i][k]);
        l = i;
      }
    }
    ipvt[k] = l;
    if (l != k) {
      for (j = k; j < n; j++) {
        t = a[k][j]; a[k][j] = a[l][j]; a[l][j] = t;
      }
      t = b[k]; b[k] = b[l]; b[l] = t;
    }
    for (i = k + 1; i < n; i++) {
      t = a[i][k] / a[k][k];
      for (j = k + 1; j < n; j++) {
        a[i][j] = a[i][j] - t * a[k][j];
      }
      b[i] = b[i] - t * b[k];
    }
  }
}

/* back substitution on the factored system */
void dgesl(double (*a)[%d], double *b, double *x, int n) {
  int i; int j;
  double t;
  for (i = n - 1; i >= 0; i--) {
    t = b[i];
    for (j = i + 1; j < n; j++) {
      t = t - a[i][j] * x[j];
    }
    x[i] = t / a[i][i];
  }
}

int main() {
  double a[%d][%d];
  double b[%d];
  double x[%d];
  int ipvt[%d];
  int i;
  double err;
  matgen(a, b, %d);
  dgefa(a, b, ipvt, %d);
  dgesl(a, b, x, %d);
  err = 0.0;
  for (i = 0; i < %d; i++) {
    if (fabs(x[i] - 1.0) > err) {
      err = fabs(x[i] - 1.0);
    }
  }
  if (err < 0.0001) {
    print_str("linpack: PASS\n");
  } else {
    print_str("linpack: FAIL\n");
  }
  print_double(err);
  return 0;
}
|}
    n n n n n n n n n n n n

(** Sizes of the Figure 2(a) sweep.  The paper used 600²–1000² (2.9–8 MB
    of matrix data); the same byte range is covered. *)
let fig2a_sizes = [ 600; 700; 800; 900; 1000 ]

(** Order used in Table 1. *)
let table1_size = 1000

(** Small order whose full solve runs quickly under the interpreter, for
    correctness tests. *)
let test_size = 24
