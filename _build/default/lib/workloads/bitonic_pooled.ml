(** Bitonic sort with pooled allocation — the §4.3 mitigation.

    The paper: "the overhead could be high if many small memory blocks are
    repeatedly allocated, causing large MSRLT.  …  Smart memory allocation
    policies may be employed to the applications to avoid the memory
    overheads."  This variant of {!Bitonic} allocates tree nodes from
    256-node pool chunks, cutting the MSR node count (and hence the MSRLT
    size and search cost) by two orders of magnitude while computing the
    identical result.  Tree links become interior pointers into the pool
    blocks, which the (block id, element ordinal) encoding handles
    naturally.

    The [ablation] benchmark compares this against the naive version. *)

let name = "bitonic_pooled"

let chunk = 256

let source n =
  Printf.sprintf
    {|
/* bitonic with pooled node allocation (smart memory allocation policy) */

struct tnode {
  int key;
  struct tnode *left;
  struct tnode *right;
};

struct tnode *pool;
int pool_used;

long checksum;
int visited;
int sorted;
int previous;

struct tnode *alloc_node() {
  struct tnode *t;
  if (pool == 0 || pool_used == %d) {
    pool = (struct tnode *) malloc(%d * sizeof(struct tnode));
    pool_used = 0;
  }
  t = &pool[pool_used];
  pool_used = pool_used + 1;
  return t;
}

struct tnode *tree_insert(struct tnode *t, int key) {
  if (t == 0) {
    t = alloc_node();
    t->key = key;
    t->left = 0;
    t->right = 0;
    return t;
  }
  if (key < t->key) {
    t->left = tree_insert(t->left, key);
  } else {
    t->right = tree_insert(t->right, key);
  }
  return t;
}

void tree_walk(struct tnode *t) {
  if (t == 0) {
    return;
  }
  tree_walk(t->left);
  if (visited > 0 && t->key < previous) {
    sorted = 0;
  }
  previous = t->key;
  visited = visited + 1;
  checksum = checksum * 31L + (long)t->key;
  tree_walk(t->right);
}

int main() {
  struct tnode *root;
  int i;
  root = 0;
  pool = 0;
  pool_used = 0;
  checksum = 0L;
  visited = 0;
  sorted = 1;
  previous = 0;
  srand(20010423);
  for (i = 0; i < %d; i++) {
    root = tree_insert(root, rand() %% 1000000);
  }
  tree_walk(root);
  if (sorted == 1 && visited == %d) {
    print_str("bitonic: PASS\n");
  } else {
    print_str("bitonic: FAIL\n");
  }
  print_long(checksum);
  print_int(visited);
  return 0;
}
|}
    chunk chunk n n

let test_size = 500
