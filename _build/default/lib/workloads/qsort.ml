(** Quicksort workload (extra): recursive in-place sort of a heap array.

    One large heap block mutated through interior pointers, with data-
    dependent recursion depth — the stack shape varies with the input,
    unlike linpack's fixed two frames, so mid-sort migrations capture a
    different call chain every time. *)

let name = "qsort"

let source n =
  Printf.sprintf
    {|
/* qsort: recursive quicksort of a heap array of ints */

void quicksort(int *a, int lo, int hi) {
  int pivot;
  int i;
  int j;
  int t;
  if (lo >= hi) {
    return;
  }
  pivot = a[(lo + hi) / 2];
  i = lo;
  j = hi;
  while (i <= j) {
    while (a[i] < pivot) {
      i++;
    }
    while (a[j] > pivot) {
      j--;
    }
    if (i <= j) {
      t = a[i]; a[i] = a[j]; a[j] = t;
      i++;
      j--;
    }
  }
  quicksort(a, lo, j);
  quicksort(a, i, hi);
}

int main() {
  int *xs;
  int i;
  int ok;
  long checksum;
  xs = (int *) malloc(%d * sizeof(int));
  srand(4242);
  for (i = 0; i < %d; i++) {
    xs[i] = rand() %% 100000;
  }
  quicksort(xs, 0, %d - 1);
  ok = 1;
  checksum = 0L;
  for (i = 0; i < %d; i++) {
    if (i > 0 && xs[i] < xs[i - 1]) {
      ok = 0;
    }
    checksum = (checksum * 7L + (long)xs[i]) %% 1000003L;
  }
  if (ok == 1) {
    print_str("qsort: PASS\n");
  } else {
    print_str("qsort: FAIL\n");
  }
  print_long(checksum);
  free(xs);
  return 0;
}
|}
    n n n n

let test_size = 3_000
