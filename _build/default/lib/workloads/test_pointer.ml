(** The test_pointer workload (§4.1).

    The paper's synthesis program "contains various data structures,
    including a tree structure, a pointer to integer, a pointer to array
    of 10 integers, a pointer to array of 10 pointers to integers, and a
    tree-like data structure" — the last one with shared nodes ("despite
    multiple references to MSR's significant nodes, all memory blocks and
    pointers are collected and restored without duplication").

    This version reproduces all five structures and adds a cycle, interior
    pointers, a function pointer, and a cross-frame pointer, then migrates
    (at the user-placed poll-point) right between construction and
    verification, so every consistency check below runs on the destination
    machine against data built on the source machine. *)

let name = "test_pointer"

let source _n =
  {|
/* test_pointer: one of everything the MSR model must handle */

struct tree {
  int v;
  struct tree *l;
  struct tree *r;
};

/* "tree-like": a DAG node with an array of child pointers; sharing and a
   cycle are created below */
struct web {
  int tag;
  double weight;
  struct web *out[4];
};

struct tree *tree_build(int depth, int base) {
  struct tree *t;
  t = (struct tree *) malloc(sizeof(struct tree));
  t->v = base;
  if (depth <= 0) {
    t->l = 0;
    t->r = 0;
    return t;
  }
  t->l = tree_build(depth - 1, base * 2);
  t->r = tree_build(depth - 1, base * 2 + 1);
  return t;
}

long tree_sum(struct tree *t) {
  if (t == 0) {
    return 0L;
  }
  return (long)t->v + tree_sum(t->l) + tree_sum(t->r);
}

int twice(int x) { return x * 2; }
int thrice(int x) { return x * 3; }

int main() {
  int x;
  int *pi;                 /* pointer to integer */
  int arr[10];
  int (*parr)[10];         /* pointer to array of 10 integers */
  int *ptrs[10];
  int *(*pptrs)[10];       /* pointer to array of 10 pointers to integers */
  int *interior;           /* interior pointer into arr */
  struct tree *root;       /* tree structure */
  struct web *a;
  struct web *b;
  struct web *c;
  int (*op)(int);          /* function pointer */
  int i;
  long total;

  /* build everything */
  x = 12345;
  pi = &x;
  for (i = 0; i < 10; i++) {
    arr[i] = i * i;
    ptrs[i] = &arr[9 - i];
  }
  parr = &arr;
  pptrs = &ptrs;
  interior = &arr[7];
  root = tree_build(4, 1);

  a = (struct web *) malloc(sizeof(struct web));
  b = (struct web *) malloc(sizeof(struct web));
  c = (struct web *) malloc(sizeof(struct web));
  a->tag = 1; a->weight = 1.5;
  b->tag = 2; b->weight = 2.5;
  c->tag = 3; c->weight = 3.25;
  a->out[0] = b;  a->out[1] = c;  a->out[2] = 0;  a->out[3] = a;  /* cycle */
  b->out[0] = c;  b->out[1] = c;  b->out[2] = 0;  b->out[3] = 0;  /* sharing */
  c->out[0] = 0;  c->out[1] = 0;  c->out[2] = 0;  c->out[3] = 0;

  op = twice;
  if (x > 10000) {
    op = thrice;
  }

  /* ---- migration happens here ---- */
  #pragma poll midpoint

  /* verify on the destination machine */
  if (*pi == 12345) { print_str("pi: OK\n"); } else { print_str("pi: BAD\n"); }

  total = 0L;
  for (i = 0; i < 10; i++) {
    total = total + (long)(*parr)[i];
  }
  if (total == 285L) { print_str("parr: OK\n"); } else { print_str("parr: BAD\n"); }

  total = 0L;
  for (i = 0; i < 10; i++) {
    total = total * 3L + (long)*(*pptrs)[i];
  }
  print_long(total);

  if (*interior == 49) { print_str("interior: OK\n"); } else { print_str("interior: BAD\n"); }

  if (tree_sum(root) == 496L) { print_str("tree: OK\n"); } else { print_str("tree: BAD\n"); }

  if (a->out[3] == a && a->out[0]->out[0] == a->out[1] && b->out[0] == b->out[1]) {
    print_str("web: OK\n");
  } else {
    print_str("web: BAD\n");
  }
  print_double(a->weight + b->weight + c->weight);

  if (op(7) == 21) { print_str("funcptr: OK\n"); } else { print_str("funcptr: BAD\n"); }

  return 0;
}
|}

(** Expected output, for oracle checks. *)
let expected_output =
  "pi: OK\nparr: OK\n2155287\ninterior: OK\ntree: OK\nweb: OK\n7.25\nfuncptr: OK\n"
