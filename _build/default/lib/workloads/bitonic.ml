(** The bitonic sort workload (§4.1, Table 1, Figure 2b).

    As the paper describes it: "a binary tree is used to store randomly
    generated integer numbers.  The program manipulates the tree so that
    the numbers are sorted when the tree is traversed.  The program
    demonstrates extensive memory allocations and recursions."

    The memory profile is the opposite of linpack: scaling the input count
    grows the number of MSR nodes n (one small heap block per element), so
    the O(n log n) MSRLT-search term dominates collection while the O(n)
    MSRLT-update term keeps restoration cheaper — the widening gap of
    Figure 2(b). *)

let name = "bitonic"

(** Source text for sorting [n] random integers.  Prints a checksum of
    the in-order traversal (position-weighted, so any out-of-order pair
    changes it), the node count, and PASS when the traversal really is
    sorted. *)
let source n =
  Printf.sprintf
    {|
/* bitonic: binary-tree sort of random integers */

struct tnode {
  int key;
  struct tnode *left;
  struct tnode *right;
};

long checksum;
int visited;
int sorted;
int previous;

struct tnode *tree_insert(struct tnode *t, int key) {
  if (t == 0) {
    t = (struct tnode *) malloc(sizeof(struct tnode));
    t->key = key;
    t->left = 0;
    t->right = 0;
    return t;
  }
  if (key < t->key) {
    t->left = tree_insert(t->left, key);
  } else {
    t->right = tree_insert(t->right, key);
  }
  return t;
}

void tree_walk(struct tnode *t) {
  if (t == 0) {
    return;
  }
  tree_walk(t->left);
  if (visited > 0 && t->key < previous) {
    sorted = 0;
  }
  previous = t->key;
  visited = visited + 1;
  checksum = checksum * 31L + (long)t->key;
  tree_walk(t->right);
}

int main() {
  struct tnode *root;
  int i;
  root = 0;
  checksum = 0L;
  visited = 0;
  sorted = 1;
  previous = 0;
  srand(20010423);
  for (i = 0; i < %d; i++) {
    root = tree_insert(root, rand() %% 1000000);
  }
  tree_walk(root);
  if (sorted == 1 && visited == %d) {
    print_str("bitonic: PASS\n");
  } else {
    print_str("bitonic: FAIL\n");
  }
  print_long(checksum);
  print_int(visited);
  return 0;
}
|}
    n n

(** Input counts for the Figure 2(b) sweep. *)
let fig2b_sizes = [ 2_000; 5_000; 10_000; 20_000; 40_000; 80_000 ]

(** Input count used in Table 1. *)
let table1_size = 40_000

(** Small count for correctness tests. *)
let test_size = 500
