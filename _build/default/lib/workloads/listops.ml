(** Linked-list workload (extra).

    Singly-linked list built, reversed in place, partially freed, and
    summed.  Exercises the collection paths the other workloads do not:
    [free] (the MSRLT must not present freed blocks), list-shaped
    pointer chains (worst case for the DFS traversal depth), and heap
    blocks of array type ([(int * ) malloc (k * sizeof(int))]). *)

let name = "listops"

let source n =
  Printf.sprintf
    {|
/* listops: build, reverse, thin out, and sum a linked list */

struct cell {
  int value;
  int *payload;        /* heap array, shared by adjacent cells */
  struct cell *next;
};

struct cell *push(struct cell *head, int v, int *payload) {
  struct cell *c;
  c = (struct cell *) malloc(sizeof(struct cell));
  c->value = v;
  c->payload = payload;
  c->next = head;
  return c;
}

struct cell *reverse(struct cell *head) {
  struct cell *prev;
  struct cell *next;
  prev = 0;
  while (head != 0) {
    next = head->next;
    head->next = prev;
    prev = head;
    head = next;
  }
  return prev;
}

int main() {
  struct cell *head;
  struct cell *c;
  struct cell *dead;
  int *shared;
  int i;
  long sum;

  shared = (int *) malloc(8 * sizeof(int));
  for (i = 0; i < 8; i++) {
    shared[i] = 100 + i;
  }
  head = 0;
  for (i = 0; i < %d; i++) {
    head = push(head, i, shared);
  }
  head = reverse(head);

  /* drop every second cell, freeing it */
  c = head;
  while (c != 0 && c->next != 0) {
    dead = c->next;
    c->next = dead->next;
    free(dead);
    c = c->next;
  }

  #pragma poll after_thin

  sum = 0L;
  c = head;
  while (c != 0) {
    sum = sum + (long)c->value + (long)c->payload[c->value %% 8];
    c = c->next;
  }
  print_long(sum);
  return 0;
}
|}
    n

let test_size = 40
