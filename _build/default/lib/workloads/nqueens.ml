(** N-queens workload (extra, beyond the paper's three).

    Deep recursion over plain integer arrays with no heap at all: the MSR
    graph is a chain of small stack frames.  Useful as a
    control-flow-heavy counterpoint (migration cost is dominated by frame
    metadata, not data), and as the long-running job in the scheduler
    examples. *)

let name = "nqueens"

let source n =
  Printf.sprintf
    {|
/* n-queens: count solutions by backtracking */

int count;

int ok(int *cols, int row, int col) {
  int i;
  for (i = 0; i < row; i++) {
    if (cols[i] == col) { return 0; }
    if (cols[i] - i == col - row) { return 0; }
    if (cols[i] + i == col + row) { return 0; }
  }
  return 1;
}

void solve(int *cols, int row, int n) {
  int c;
  if (row == n) {
    count = count + 1;
    return;
  }
  for (c = 0; c < n; c++) {
    if (ok(cols, row, c)) {
      cols[row] = c;
      solve(cols, row + 1, n);
    }
  }
}

int main() {
  int cols[16];
  count = 0;
  solve(cols, 0, %d);
  print_int(count);
  return 0;
}
|}
    n

(** Known solution counts, used as oracles. *)
let solutions = [ (4, 2); (5, 10); (6, 4); (7, 40); (8, 92); (9, 352); (10, 724) ]

let test_size = 6
