lib/workloads/bitonic_pooled.ml: Printf
