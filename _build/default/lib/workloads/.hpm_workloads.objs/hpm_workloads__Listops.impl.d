lib/workloads/listops.ml: Printf
