lib/workloads/bitonic.ml: Printf
