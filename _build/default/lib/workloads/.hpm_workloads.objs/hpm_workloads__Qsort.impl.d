lib/workloads/qsort.ml: Printf
