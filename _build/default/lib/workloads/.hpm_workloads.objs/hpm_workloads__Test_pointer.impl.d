lib/workloads/test_pointer.ml:
