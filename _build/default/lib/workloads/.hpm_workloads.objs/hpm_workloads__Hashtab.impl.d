lib/workloads/hashtab.ml: Printf
