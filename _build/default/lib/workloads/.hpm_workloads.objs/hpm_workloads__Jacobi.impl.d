lib/workloads/jacobi.ml: Printf
