lib/workloads/registry.ml: Bitonic Bitonic_pooled Hashtab Jacobi Linpack List Listops Nqueens Printf Qsort String Test_pointer
