lib/workloads/linpack.ml: Printf
