lib/workloads/nqueens.ml: Printf
