lib/net/netsim.mli: Format
