lib/net/netsim.ml: Bytes Char Fmt String
