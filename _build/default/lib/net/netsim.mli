(** Network simulator — layer 1 of the paper's software stack.

    A channel is bandwidth + latency; transfer time is analytic
    ([latency + bits/bandwidth]) and the payload is delivered as an OCaml
    string, optionally corrupted for failure-injection tests. *)

type t = {
  name : string;
  bandwidth_bps : float;   (** usable bits per second *)
  latency_s : float;       (** per-message latency *)
  mutable bytes_sent : int;
  mutable messages : int;
}

val make : name:string -> bandwidth_bps:float -> latency_s:float -> t

(** 10 Mbit/s shared Ethernet at ~70% utilization — the link between the
    paper's DEC 5000 and Sparc 20 (§4.1). *)
val ethernet_10 : unit -> t

(** 100 Mbit/s switched Ethernet — the Ultra 5 pair of Table 1/Figure 2. *)
val ethernet_100 : unit -> t

(** A channel so fast Tx vanishes, for isolating collect/restore costs. *)
val loopback : unit -> t

(** Transfer time in seconds for a message of the given byte count. *)
val tx_time : t -> int -> float

type fault =
  | Truncate of int   (** deliver only the first [n] bytes *)
  | FlipByte of int   (** invert the byte at the given offset *)

(** [send ?fault t data] is [(delivered, seconds)].  Accounting
    ([bytes_sent], [messages]) reflects the original payload. *)
val send : ?fault:fault -> t -> string -> string * float

val pp : Format.formatter -> t -> unit
