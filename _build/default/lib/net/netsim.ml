(** Network simulator — layer 1 of the paper's software stack.

    The paper moves migration streams over TCP on 10 Mbit/s Ethernet
    (heterogeneous experiments, §4.1) and 100 Mbit/s Ethernet (Table 1 and
    Figure 2).  We model a channel by bandwidth and latency and compute
    transfer time analytically — the Tx column of Table 1 is exactly
    [latency + bytes/bandwidth] — while the payload itself is handed over
    as an OCaml string (the "wire" is lossless unless a fault is
    injected). *)

type t = {
  name : string;
  bandwidth_bps : float;   (** usable bits per second *)
  latency_s : float;       (** per-message latency (propagation + setup) *)
  mutable bytes_sent : int;
  mutable messages : int;
}

let make ~name ~bandwidth_bps ~latency_s =
  { name; bandwidth_bps; latency_s; bytes_sent = 0; messages = 0 }

(** 10 Mbit/s shared Ethernet, as between the paper's DEC 5000 and
    Sparc 20 (§4.1).  Effective throughput of classic coax Ethernet is
    well below line rate; 70% utilization is the usual rule of thumb. *)
let ethernet_10 () =
  make ~name:"10Mb Ethernet" ~bandwidth_bps:(10e6 *. 0.7) ~latency_s:2e-3

(** 100 Mbit/s switched Ethernet, as between the paper's Ultra 5s
    (Table 1, Figure 2). *)
let ethernet_100 () =
  make ~name:"100Mb Ethernet" ~bandwidth_bps:(100e6 *. 0.85) ~latency_s:0.5e-3

(** A channel so fast Tx vanishes, for isolating collect/restore costs. *)
let loopback () = make ~name:"loopback" ~bandwidth_bps:1e12 ~latency_s:0.

(** Transfer time in seconds for a [bytes]-byte message. *)
let tx_time t bytes = t.latency_s +. (8.0 *. float_of_int bytes /. t.bandwidth_bps)

type fault = Truncate of int | FlipByte of int

(** Send [data] over the channel: returns the delivered payload and the
    simulated transfer time.  [fault] optionally injects corruption, used
    by the failure-injection tests to prove the restore side rejects bad
    streams instead of building garbage processes. *)
let send ?fault t (data : string) : string * float =
  t.bytes_sent <- t.bytes_sent + String.length data;
  t.messages <- t.messages + 1;
  let delivered =
    match fault with
    | None -> data
    | Some (Truncate n) -> String.sub data 0 (min n (String.length data))
    | Some (FlipByte i) when i < String.length data ->
        let b = Bytes.of_string data in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
        Bytes.to_string b
    | Some (FlipByte _) -> data
  in
  (delivered, tx_time t (String.length data))

let pp ppf t =
  Fmt.pf ppf "%s (%.0f Mb/s, %.1f ms): %d msgs, %d bytes" t.name
    (t.bandwidth_bps /. 1e6) (t.latency_s *. 1e3) t.messages t.bytes_sent
