(** Pretty-printer for Mini-C.

    Emits valid Mini-C source: [parse (print (parse s))] is the identity on
    the AST (modulo source locations), a property the test suite checks.
    The printer is also what {!bin/migratec} uses to dump the annotated,
    migratable source — the output of the paper's pre-compiler. *)

open Ast

(* Declarators must be reconstructed from types: OCaml type [Array (Ptr t,
   10)] prints as "t *name[10]".  [pp_decl] splits a type into base +
   declarator decorations. *)
let rec base_ty = function
  | Ty.Ptr t -> base_ty t
  | Ty.Array (t, _) -> base_ty t
  | Ty.Func (r, _) -> base_ty r
  | t -> t

let pp_base ppf t =
  match t with
  | Ty.Void -> Fmt.string ppf "void"
  | Ty.Char -> Fmt.string ppf "char"
  | Ty.Short -> Fmt.string ppf "short"
  | Ty.Int -> Fmt.string ppf "int"
  | Ty.Long -> Fmt.string ppf "long"
  | Ty.Float -> Fmt.string ppf "float"
  | Ty.Double -> Fmt.string ppf "double"
  | Ty.Struct n -> Fmt.pf ppf "struct %s" n
  | _ -> invalid_arg "Pretty.pp_base: not a base type"

(* Print the declarator part: name decorated by pointers/arrays/functions.
   Precedence: suffixes ([] and ()) bind tighter than prefix *. *)
let rec pp_declarator ppf (t, name) =
  match t with
  | Ty.Ptr (Ty.Func (_, args)) ->
      (* function pointer: "( *name )(args)" *)
      Fmt.pf ppf "(*%s)(%a)" name
        (Fmt.list ~sep:(Fmt.any ", ") pp_tyname)
        args
  | Ty.Ptr inner -> pp_declarator ppf (inner, "*" ^ name)
  | Ty.Array (inner, n) ->
      let name = if String.length name > 0 && name.[0] = '*' then "(" ^ name ^ ")" else name in
      pp_declarator ppf (inner, Printf.sprintf "%s[%d]" name n)
  | _ -> Fmt.string ppf name

and pp_tyname ppf t = Fmt.pf ppf "%a%a" pp_base (base_ty t) pp_abstract t

and pp_abstract ppf t =
  match t with
  | Ty.Ptr (Ty.Func (_, args)) ->
      Fmt.pf ppf "(*)(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_tyname) args
  | Ty.Ptr inner ->
      pp_abstract ppf inner;
      Fmt.string ppf "*"
  | Ty.Array (inner, n) ->
      pp_abstract ppf inner;
      Fmt.pf ppf "[%d]" n
  | _ -> ()

let pp_decl_line ppf (name, t) =
  Fmt.pf ppf "%a %a" pp_base (base_ty t) pp_declarator (t, name)

let escape_char c =
  match c with
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | '\000' -> "\\0"
  | '\\' -> "\\\\"
  | '\'' -> "\\'"
  | c -> String.make 1 c

let escape_string s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | c -> escape_char c)
       (List.init (String.length s) (String.get s)))

let pp_const ppf = function
  | Cint n -> Fmt.pf ppf "%Ld" n
  | Clong n -> Fmt.pf ppf "%LdL" n
  | Cfloat f -> Fmt.pf ppf "%.9gf" f
  | Cdouble f ->
      let s = Printf.sprintf "%.17g" f in
      (* ensure it re-lexes as a floating literal *)
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
      then Fmt.string ppf s
      else Fmt.pf ppf "%s.0" s
  | Cchar c -> Fmt.pf ppf "'%s'" (escape_char c)
  | Cstr s -> Fmt.pf ppf "\"%s\"" (escape_string s)

(* Precedence levels for minimal parenthesization; higher binds tighter. *)
let prec_binop = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Bor -> 3
  | Ast.Bxor -> 4
  | Ast.Band -> 5
  | Ast.Eq | Ast.Ne -> 6
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 7
  | Ast.Shl | Ast.Shr -> 8
  | Ast.Add | Ast.Sub -> 9
  | Ast.Mul | Ast.Div | Ast.Mod -> 10

let rec pp_expr_prec prec ppf e =
  let p, doc = expr_doc e in
  if p < prec then Fmt.pf ppf "(%t)" doc else doc ppf

and expr_doc e : int * (Format.formatter -> unit) =
  match e.desc with
  | Const c -> (100, fun ppf -> pp_const ppf c)
  | Var n -> (100, fun ppf -> Fmt.string ppf n)
  | Sizeof t -> (100, fun ppf -> Fmt.pf ppf "sizeof(%a)" pp_tyname t)
  | Call (f, args) ->
      ( 14,
        fun ppf ->
          Fmt.pf ppf "%a(%a)" (pp_expr_prec 14) f
            (Fmt.list ~sep:(Fmt.any ", ") (pp_expr_prec 0))
            args )
  | Index (a, i) ->
      (14, fun ppf -> Fmt.pf ppf "%a[%a]" (pp_expr_prec 14) a (pp_expr_prec 0) i)
  | Field (b, f) -> (14, fun ppf -> Fmt.pf ppf "%a.%s" (pp_expr_prec 14) b f)
  | Arrow (b, f) -> (14, fun ppf -> Fmt.pf ppf "%a->%s" (pp_expr_prec 14) b f)
  | Incr (false, a) -> (14, fun ppf -> Fmt.pf ppf "%a++" (pp_expr_prec 14) a)
  | Decr (false, a) -> (14, fun ppf -> Fmt.pf ppf "%a--" (pp_expr_prec 14) a)
  | Incr (true, a) -> (13, fun ppf -> Fmt.pf ppf "++%a" (pp_expr_prec 13) a)
  | Decr (true, a) -> (13, fun ppf -> Fmt.pf ppf "--%a" (pp_expr_prec 13) a)
  | Unop (op, a) ->
      (13, fun ppf -> Fmt.pf ppf "%s%a" (unop_to_string op) (pp_expr_prec 13) a)
  | Deref a -> (13, fun ppf -> Fmt.pf ppf "*%a" (pp_expr_prec 13) a)
  | Addr a -> (13, fun ppf -> Fmt.pf ppf "&%a" (pp_expr_prec 13) a)
  | Cast (t, a) -> (13, fun ppf -> Fmt.pf ppf "(%a)%a" pp_tyname t (pp_expr_prec 13) a)
  | Binop (op, a, b) ->
      let p = prec_binop op in
      ( p,
        fun ppf ->
          Fmt.pf ppf "%a %s %a" (pp_expr_prec p) a (binop_to_string op)
            (pp_expr_prec (p + 1)) b )
  | Cond (c, x, y) ->
      ( 2,
        fun ppf ->
          Fmt.pf ppf "%a ? %a : %a" (pp_expr_prec 3) c (pp_expr_prec 0) x
            (pp_expr_prec 2) y )
  | Assign (l, r) ->
      (1, fun ppf -> Fmt.pf ppf "%a = %a" (pp_expr_prec 13) l (pp_expr_prec 1) r)

let pp_expr ppf e = pp_expr_prec 0 ppf e

let rec pp_stmt indent ppf s =
  let pad = String.make indent ' ' in
  match s.sdesc with
  | Sexpr e -> Fmt.pf ppf "%s%a;@." pad pp_expr e
  | Sif (c, t, []) ->
      Fmt.pf ppf "%sif (%a) {@.%a%s}@." pad pp_expr c (pp_stmts (indent + 2)) t pad
  | Sif (c, t, f) ->
      Fmt.pf ppf "%sif (%a) {@.%a%s} else {@.%a%s}@." pad pp_expr c
        (pp_stmts (indent + 2))
        t pad
        (pp_stmts (indent + 2))
        f pad
  | Swhile (c, body) ->
      Fmt.pf ppf "%swhile (%a) {@.%a%s}@." pad pp_expr c (pp_stmts (indent + 2)) body pad
  | Sdo (body, c) ->
      Fmt.pf ppf "%sdo {@.%a%s} while (%a);@." pad (pp_stmts (indent + 2)) body pad
        pp_expr c
  | Sfor (i, c, st, body) ->
      let opt ppf = function None -> () | Some e -> pp_expr ppf e in
      Fmt.pf ppf "%sfor (%a; %a; %a) {@.%a%s}@." pad opt i opt c opt st
        (pp_stmts (indent + 2))
        body pad
  | Sreturn None -> Fmt.pf ppf "%sreturn;@." pad
  | Sreturn (Some e) -> Fmt.pf ppf "%sreturn %a;@." pad pp_expr e
  | Sbreak -> Fmt.pf ppf "%sbreak;@." pad
  | Scontinue -> Fmt.pf ppf "%scontinue;@." pad
  | Spoll name -> Fmt.pf ppf "%s#pragma poll %s@." pad name
  | Sgoto name -> Fmt.pf ppf "%sgoto %s;@." pad name
  | Sdecl d -> (
      match d.d_init with
      | None -> Fmt.pf ppf "%s%a;@." pad pp_decl_line (d.d_name, d.d_ty)
      | Some e -> Fmt.pf ppf "%s%a = %a;@." pad pp_decl_line (d.d_name, d.d_ty) pp_expr e)
  | Slabel name -> Fmt.pf ppf "%s%s:@." pad name
  | Sswitch (scrut, arms, default) ->
      Fmt.pf ppf "%sswitch (%a) {@." pad pp_expr scrut;
      List.iter
        (fun (consts, body) ->
          List.iter (fun c -> Fmt.pf ppf "%s  case %Ld:@." pad c) consts;
          pp_stmts (indent + 4) ppf body)
        arms;
      Fmt.pf ppf "%s  default:@." pad;
      pp_stmts (indent + 4) ppf default;
      Fmt.pf ppf "%s}@." pad
  | Sblock body -> Fmt.pf ppf "%s{@.%a%s}@." pad (pp_stmts (indent + 2)) body pad

and pp_stmts indent ppf body = List.iter (pp_stmt indent ppf) body

let pp_struct ppf (def : Ty.struct_def) =
  Fmt.pf ppf "struct %s {@." def.Ty.s_name;
  List.iter
    (fun (f : Ty.field) -> Fmt.pf ppf "  %a;@." pp_decl_line (f.Ty.fld_name, f.Ty.fld_ty))
    def.Ty.s_fields;
  Fmt.pf ppf "};@."

let pp_decl ppf (d : decl) =
  match d.d_init with
  | None -> Fmt.pf ppf "%a;@." pp_decl_line (d.d_name, d.d_ty)
  | Some e -> Fmt.pf ppf "%a = %a;@." pp_decl_line (d.d_name, d.d_ty) pp_expr e

let pp_func ppf f =
  let pp_param ppf (n, t) = pp_decl_line ppf (n, t) in
  Fmt.pf ppf "%a %a(%a) {@." pp_base (base_ty f.f_ret)
    pp_declarator (f.f_ret, f.f_name)
    (Fmt.list ~sep:(Fmt.any ", ") pp_param)
    f.f_params;
  List.iter (fun d -> Fmt.pf ppf "  %a" pp_decl d) f.f_locals;
  pp_stmts 2 ppf f.f_body;
  Fmt.pf ppf "}@."

let pp_program ppf (p : program) =
  List.iter (fun (_, def) -> Fmt.pf ppf "%a@." pp_struct def) p.tenv.Ty.structs;
  List.iter (fun d -> Fmt.pf ppf "%a" pp_decl d) p.globals;
  Fmt.pf ppf "@.";
  List.iter (fun f -> Fmt.pf ppf "%a@." pp_func f) p.funcs

let program_to_string p = Fmt.str "%a" pp_program p
let expr_to_string e = Fmt.str "%a" pp_expr e
