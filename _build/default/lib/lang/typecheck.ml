(** Type checking and elaboration for Mini-C.

    Besides rejecting ill-typed programs, the checker *elaborates*: implicit
    conversions become explicit {!Ast.Cast} nodes (usual arithmetic
    conversions, array-to-pointer decay, null-constant-to-pointer), so that
    after this pass every expression node carries its exact type in [ety]
    and the IR lowering never infers anything.

    The checker also knows the signatures of the runtime builtins
    ([malloc], [free], the [print_*] family, [rand]/[srand], [sqrt], …) —
    these play the role of libc for the workloads. *)

open Ast

exception Error of string * Ast.loc

let err loc fmt = Fmt.kstr (fun msg -> raise (Error (msg, loc))) fmt

type env = {
  tenv : Ty.tenv;
  mutable globals : (string * Ty.t) list;
  funcs : (string * Ty.t) list; (* name -> Func (ret, params) *)
  mutable scope : (string * Ty.t) list; (* params + locals of current fn *)
  mutable ret : Ty.t;
}

(** Builtin signatures.  [malloc] takes a byte count and returns [void*];
    the pre-compiler's malloc-typing pass ({!Hpm_ir.Compile}) recovers the
    element type from the enclosing cast, as the paper's pre-compiler does. *)
let builtins : (string * Ty.t) list =
  [
    ("malloc", Ty.Func (Ty.Ptr Ty.Void, [ Ty.Long ]));
    ("free", Ty.Func (Ty.Void, [ Ty.Ptr Ty.Void ]));
    ("print_int", Ty.Func (Ty.Void, [ Ty.Int ]));
    ("print_long", Ty.Func (Ty.Void, [ Ty.Long ]));
    ("print_double", Ty.Func (Ty.Void, [ Ty.Double ]));
    ("print_char", Ty.Func (Ty.Void, [ Ty.Char ]));
    ("print_str", Ty.Func (Ty.Void, [ Ty.Ptr Ty.Char ]));
    ("rand", Ty.Func (Ty.Int, []));
    ("srand", Ty.Func (Ty.Void, [ Ty.Int ]));
    ("sqrt", Ty.Func (Ty.Double, [ Ty.Double ]));
    ("fabs", Ty.Func (Ty.Double, [ Ty.Double ]));
    ("abs", Ty.Func (Ty.Int, [ Ty.Int ]));
    ("clock_ms", Ty.Func (Ty.Long, []));
  ]

let is_builtin name = List.mem_assoc name builtins

let lookup_var env loc name =
  match List.assoc_opt name env.scope with
  | Some t -> t
  | None -> (
      match List.assoc_opt name env.globals with
      | Some t -> t
      | None -> (
          match List.assoc_opt name env.funcs with
          | Some t -> t
          | None -> (
              match List.assoc_opt name builtins with
              | Some t -> t
              | None -> err loc "undefined variable %s" name)))

(* Integer rank for the usual arithmetic conversions. *)
let rank = function
  | Ty.Char -> 1
  | Ty.Short -> 2
  | Ty.Int -> 3
  | Ty.Long -> 4
  | Ty.Float -> 5
  | Ty.Double -> 6
  | t -> invalid_arg ("rank: " ^ Ty.to_string t)

let arith_join a b = if rank a >= rank b then a else b

let retype e t =
  e.ety <- Some t;
  e

(** Wrap [e] in a cast to [t] unless it already has that type. *)
let coerce t e =
  if Ty.equal (ty_of e) t then e
  else retype (Ast.mk ~loc:e.loc (Cast (t, e))) t

(** Implicit conversion of [e] to expected type [t]; errors when C would. *)
let convert env loc t e =
  let from = ty_of e in
  ignore env;
  match (from, t) with
  | a, b when Ty.equal a b -> e
  | a, b when Ty.is_arith a && Ty.is_arith b -> coerce b e
  | a, Ty.Ptr _ when Ty.is_integer a -> (
      (* only the constant 0 converts implicitly to a pointer *)
      match e.desc with
      | Const (Cint 0L) | Const (Clong 0L) -> coerce t e
      | Cast (_, { desc = Const (Cint 0L); _ }) -> coerce t e
      | _ -> err loc "cannot convert %s to %s without a cast" (Ty.to_string a) (Ty.to_string t))
  | Ty.Ptr _, Ty.Ptr Ty.Void -> coerce t e
  | Ty.Ptr Ty.Void, Ty.Ptr _ -> coerce t e
  | Ty.Ptr a, Ty.Ptr b when Ty.equal a b -> e
  | a, b ->
      err loc "type mismatch: expected %s but found %s" (Ty.to_string b) (Ty.to_string a)

let rec is_lvalue env e =
  match e.desc with
  | Var name ->
      (* functions are not lvalues *)
      List.mem_assoc name env.scope || List.mem_assoc name env.globals
  | Deref _ | Index _ -> true
  | Field (b, _) | Arrow (b, _) -> (
      match e.desc with Arrow _ -> true | _ -> is_lvalue env b)
  | Cast (_, b) -> is_lvalue env b
  | _ -> false

(* Expressions whose evaluation can write memory or call functions; used to
   reject compound-assignment desugaring that would duplicate effects. *)
let rec has_effects e =
  match e.desc with
  | Assign _ | Incr _ | Decr _ | Call _ -> true
  | Const _ | Var _ | Sizeof _ -> false
  | Unop (_, a) | Cast (_, a) | Addr a | Deref a | Field (a, _) | Arrow (a, _) ->
      has_effects a
  | Binop (_, a, b) | Index (a, b) -> has_effects a || has_effects b
  | Cond (a, b, c) -> has_effects a || has_effects b || has_effects c

(** Decay arrays and functions to pointers when used as values. *)
let decay e =
  match ty_of e with
  | Ty.Array (t, _) ->
      let zero = retype (Ast.mk ~loc:e.loc (Const (Cint 0L))) Ty.Int in
      let elt = retype (Ast.mk ~loc:e.loc (Index (e, zero))) t in
      retype (Ast.mk ~loc:e.loc (Addr elt)) (Ty.Ptr t)
  | Ty.Func _ as f -> retype (Ast.mk ~loc:e.loc (Addr e)) (Ty.Ptr f)
  | _ -> e

let rec check_expr env (e : expr) : expr =
  let loc = e.loc in
  match e.desc with
  | Const (Cint _) -> retype e Ty.Int
  | Const (Clong _) -> retype e Ty.Long
  | Const (Cfloat _) -> retype e Ty.Float
  | Const (Cdouble _) -> retype e Ty.Double
  | Const (Cchar _) -> retype e Ty.Char
  | Const (Cstr _) -> retype e (Ty.Ptr Ty.Char)
  | Var name -> retype e (lookup_var env loc name)
  | Sizeof t -> (
      match Ty.check env.tenv t with
      | Ok () -> retype e Ty.Long
      | Error m -> err loc "sizeof: %s" m)
  | Unop (Neg, a) ->
      let a = rvalue env a in
      let t = ty_of a in
      if not (Ty.is_arith t) then err loc "unary - requires arithmetic type";
      retype (Ast.mk ~loc (Unop (Neg, a))) t
  | Unop (Not, a) ->
      let a = rvalue env a in
      let t = ty_of a in
      if not (Ty.is_scalar t) then err loc "! requires scalar type";
      retype (Ast.mk ~loc (Unop (Not, a))) Ty.Int
  | Unop (Bnot, a) ->
      let a = rvalue env a in
      let t = ty_of a in
      if not (Ty.is_integer t) then err loc "~ requires integer type";
      retype (Ast.mk ~loc (Unop (Bnot, a))) t
  | Binop (op, a, b) -> check_binop env loc op a b
  | Assign (lhs, rhs) ->
      let lhs = lvalue env lhs in
      let rhs = rvalue env rhs in
      let rhs = convert env loc (ty_of lhs) rhs in
      retype (Ast.mk ~loc (Assign (lhs, rhs))) (ty_of lhs)
  | Incr (pre, a) ->
      let a = lvalue env a in
      let t = ty_of a in
      if not (Ty.is_arith t || Ty.is_pointer t) then
        err loc "++ requires arithmetic or pointer type";
      retype (Ast.mk ~loc (Incr (pre, a))) t
  | Decr (pre, a) ->
      let a = lvalue env a in
      let t = ty_of a in
      if not (Ty.is_arith t || Ty.is_pointer t) then
        err loc "-- requires arithmetic or pointer type";
      retype (Ast.mk ~loc (Decr (pre, a))) t
  | Call (callee, args) -> check_call env loc callee args
  | Index (a, i) ->
      let a = check_expr env a in
      let i = rvalue env i in
      if not (Ty.is_integer (ty_of i)) then err loc "array index must be an integer";
      let elem =
        match ty_of a with
        | Ty.Array (t, _) -> t
        | Ty.Ptr t when not (Ty.equal t Ty.Void) -> t
        | t -> err loc "cannot index a value of type %s" (Ty.to_string t)
      in
      retype (Ast.mk ~loc (Index (a, i))) elem
  | Field (b, f) ->
      let b = check_expr env b in
      (match ty_of b with
      | Ty.Struct sname -> (
          let def = Ty.find_struct_exn env.tenv sname in
          match List.find_opt (fun fl -> String.equal fl.Ty.fld_name f) def.Ty.s_fields with
          | Some fl -> retype (Ast.mk ~loc (Field (b, f))) fl.Ty.fld_ty
          | None -> err loc "struct %s has no field %s" sname f)
      | t -> err loc ". applied to non-struct type %s" (Ty.to_string t))
  | Arrow (b, f) ->
      let b = rvalue env b in
      (match ty_of b with
      | Ty.Ptr (Ty.Struct sname) -> (
          let def = Ty.find_struct_exn env.tenv sname in
          match List.find_opt (fun fl -> String.equal fl.Ty.fld_name f) def.Ty.s_fields with
          | Some fl -> retype (Ast.mk ~loc (Arrow (b, f))) fl.Ty.fld_ty
          | None -> err loc "struct %s has no field %s" sname f)
      | t -> err loc "-> applied to %s (need struct pointer)" (Ty.to_string t))
  | Deref a ->
      let a = rvalue env a in
      (match ty_of a with
      | Ty.Ptr Ty.Void -> err loc "cannot dereference void*"
      | Ty.Ptr t -> retype (Ast.mk ~loc (Deref a)) t
      | t -> err loc "cannot dereference %s" (Ty.to_string t))
  | Addr a ->
      let a = check_expr env a in
      (match (a.desc, ty_of a) with
      | Var name, (Ty.Func _ as f) when List.mem_assoc name env.funcs ->
          retype (Ast.mk ~loc (Addr a)) (Ty.Ptr f)
      | _ ->
          if not (is_lvalue env a) then err loc "& requires an lvalue";
          retype (Ast.mk ~loc (Addr a)) (Ty.Ptr (ty_of a)))
  | Cast (t, a) -> (
      let a = rvalue env a in
      (match Ty.check env.tenv t with
      | Ok () -> ()
      | Error m -> err loc "cast: %s" m);
      let from = ty_of a in
      match (from, t) with
      | a', b when Ty.is_arith a' && Ty.is_arith b -> retype (Ast.mk ~loc (Cast (t, a))) t
      | Ty.Ptr _, Ty.Ptr _ -> retype (Ast.mk ~loc (Cast (t, a))) t
      | a', Ty.Ptr _ when Ty.is_integer a' ->
          (* int→pointer casts are migration-unsafe; they are *typed* here
             and rejected by the Unsafe pass with a proper diagnostic. *)
          retype (Ast.mk ~loc (Cast (t, a))) t
      | Ty.Ptr _, b when Ty.is_integer b -> retype (Ast.mk ~loc (Cast (t, a))) t
      | a', b ->
          err loc "invalid cast from %s to %s" (Ty.to_string a') (Ty.to_string b))
  | Cond (c, x, y) ->
      let c = rvalue env c in
      if not (Ty.is_scalar (ty_of c)) then err loc "?: condition must be scalar";
      let x = rvalue env x and y = rvalue env y in
      let tx = ty_of x and ty = ty_of y in
      let t =
        if Ty.is_arith tx && Ty.is_arith ty then arith_join tx ty
        else if Ty.equal tx ty then tx
        else err loc "?: branches have incompatible types %s / %s" (Ty.to_string tx) (Ty.to_string ty)
      in
      retype (Ast.mk ~loc (Cond (c, coerce t x, coerce t y))) t

and rvalue env e = decay (check_expr env e)

and lvalue env e =
  let e = check_expr env e in
  if not (is_lvalue env e) then err e.loc "expression is not an lvalue";
  (match ty_of e with
  | Ty.Array _ -> err e.loc "cannot assign to an array"
  | _ -> ());
  e

and check_binop env loc op a b =
  let a = rvalue env a and b = rvalue env b in
  let ta = ty_of a and tb = ty_of b in
  match op with
  | Add | Sub -> (
      match (ta, tb) with
      | x, y when Ty.is_arith x && Ty.is_arith y ->
          let t = arith_join x y in
          retype (Ast.mk ~loc (Binop (op, coerce t a, coerce t b))) t
      | Ty.Ptr _, y when Ty.is_integer y ->
          retype (Ast.mk ~loc (Binop (op, a, coerce Ty.Long b))) ta
      | x, Ty.Ptr _ when Ty.is_integer x && op = Add ->
          retype (Ast.mk ~loc (Binop (op, coerce Ty.Long a, b))) tb
      | Ty.Ptr x, Ty.Ptr y when op = Sub && Ty.equal x y ->
          retype (Ast.mk ~loc (Binop (op, a, b))) Ty.Long
      | _ ->
          err loc "invalid operands to %s: %s and %s" (binop_to_string op)
            (Ty.to_string ta) (Ty.to_string tb))
  | Mul | Div ->
      if not (Ty.is_arith ta && Ty.is_arith tb) then
        err loc "%s requires arithmetic operands" (binop_to_string op);
      let t = arith_join ta tb in
      retype (Ast.mk ~loc (Binop (op, coerce t a, coerce t b))) t
  | Mod | Band | Bor | Bxor | Shl | Shr ->
      if not (Ty.is_integer ta && Ty.is_integer tb) then
        err loc "%s requires integer operands" (binop_to_string op);
      let t = arith_join ta tb in
      retype (Ast.mk ~loc (Binop (op, coerce t a, coerce t b))) t
  | Eq | Ne | Lt | Le | Gt | Ge -> (
      match (ta, tb) with
      | x, y when Ty.is_arith x && Ty.is_arith y ->
          let t = arith_join x y in
          retype (Ast.mk ~loc (Binop (op, coerce t a, coerce t b))) Ty.Int
      | Ty.Ptr x, Ty.Ptr y when Ty.equal x y || Ty.equal x Ty.Void || Ty.equal y Ty.Void ->
          retype (Ast.mk ~loc (Binop (op, a, b))) Ty.Int
      | Ty.Ptr _, y when Ty.is_integer y ->
          retype (Ast.mk ~loc (Binop (op, a, convert env loc ta b))) Ty.Int
      | x, Ty.Ptr _ when Ty.is_integer x ->
          retype (Ast.mk ~loc (Binop (op, convert env loc tb a, b))) Ty.Int
      | _ ->
          err loc "cannot compare %s with %s" (Ty.to_string ta) (Ty.to_string tb))
  | And | Or ->
      if not (Ty.is_scalar ta && Ty.is_scalar tb) then
        err loc "%s requires scalar operands" (binop_to_string op);
      retype (Ast.mk ~loc (Binop (op, a, b))) Ty.Int

and check_call env loc callee args =
  let fty, callee =
    match callee.desc with
    | Var name when List.mem_assoc name env.funcs || is_builtin name ->
        (lookup_var env loc name, retype callee (lookup_var env loc name))
    | _ -> (
        let c = rvalue env callee in
        match ty_of c with
        | Ty.Ptr (Ty.Func _ as f) -> (f, c)
        | t -> err loc "called value has type %s, not a function" (Ty.to_string t))
  in
  match fty with
  | Ty.Func (ret, params) ->
      if List.length params <> List.length args then
        err loc "wrong number of arguments: expected %d, got %d"
          (List.length params) (List.length args);
      let args =
        List.map2 (fun p a -> convert env loc p (rvalue env a)) params args
      in
      retype (Ast.mk ~loc (Call (callee, args))) ret
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec check_stmt env (s : stmt) : stmt =
  let loc = s.sloc in
  match s.sdesc with
  | Sexpr e ->
      let e =
        (* compound-assign desugaring duplicated the lvalue; reject effects *)
        (match e.desc with
        | Assign (lhs, { desc = Binop (_, lhs2, _); _ })
          when Ast.expr_equal lhs lhs2 && has_effects lhs ->
            err loc "compound assignment with side-effecting lvalue"
        | _ -> ());
        check_expr env e
      in
      Ast.mks ~loc (Sexpr e)
  | Sif (c, t, f) ->
      let c = rvalue env c in
      if not (Ty.is_scalar (ty_of c)) then err loc "if condition must be scalar";
      Ast.mks ~loc (Sif (c, List.map (check_stmt env) t, List.map (check_stmt env) f))
  | Swhile (c, body) ->
      let c = rvalue env c in
      if not (Ty.is_scalar (ty_of c)) then err loc "while condition must be scalar";
      Ast.mks ~loc (Swhile (c, List.map (check_stmt env) body))
  | Sdo (body, c) ->
      let body = List.map (check_stmt env) body in
      let c = rvalue env c in
      if not (Ty.is_scalar (ty_of c)) then err loc "do-while condition must be scalar";
      Ast.mks ~loc (Sdo (body, c))
  | Sfor (init, cond, step, body) ->
      let init = Option.map (check_expr env) init in
      let cond =
        Option.map
          (fun c ->
            let c = rvalue env c in
            if not (Ty.is_scalar (ty_of c)) then err loc "for condition must be scalar";
            c)
          cond
      in
      let step = Option.map (check_expr env) step in
      Ast.mks ~loc (Sfor (init, cond, step, List.map (check_stmt env) body))
  | Sreturn None ->
      if not (Ty.equal env.ret Ty.Void) then
        err loc "return without a value in a function returning %s" (Ty.to_string env.ret);
      s
  | Sreturn (Some e) ->
      if Ty.equal env.ret Ty.Void then err loc "return with a value in a void function";
      let e = convert env loc env.ret (rvalue env e) in
      Ast.mks ~loc (Sreturn (Some e))
  | Sbreak | Scontinue | Spoll _ -> s
  | Sswitch (scrut, arms, default) ->
      let scrut = rvalue env scrut in
      if not (Ty.is_integer (ty_of scrut)) then
        err loc "switch scrutinee must have integer type, not %s"
          (Ty.to_string (ty_of scrut));
      let seen = Hashtbl.create 8 in
      let arms =
        List.map
          (fun (consts, body) ->
            List.iter
              (fun c ->
                if Hashtbl.mem seen c then err loc "duplicate case %Ld" c;
                Hashtbl.add seen c ())
              consts;
            (consts, List.map (check_stmt env) body))
          arms
      in
      Ast.mks ~loc (Sswitch (scrut, arms, List.map (check_stmt env) default))
  | Sgoto _ | Slabel _ -> s (* label resolution is checked per function below *)
  | Sdecl d ->
      err loc
        "declaration of %s inside a block: run Scopes.normalize before type checking"
        d.d_name
  | Sblock body -> Ast.mks ~loc (Sblock (List.map (check_stmt env) body))

let check_decl env (d : decl) : decl =
  (match Ty.check env.tenv d.d_ty with
  | Ok () -> ()
  | Error m -> err d.d_loc "declaration of %s: %s" d.d_name m);
  match d.d_init with
  | None -> d
  | Some e ->
      if not (Ty.is_scalar d.d_ty) then
        err d.d_loc "initializer allowed only on scalar variables";
      (* Temporarily extend the scope so [int n = 10, m = n;] works. *)
      let e = convert env d.d_loc d.d_ty (rvalue env e) in
      { d with d_init = Some e }

(** Check a whole program, returning the elaborated program.  Also verifies
    that a [main] function exists (the process entry point). *)
let check_program (p : program) : program =
  (* C parameter adjustment: array parameters become pointers; structs by
     value are not supported (pass a pointer), nor are struct returns *)
  let adjust_param f (n, t) =
    match t with
    | Ty.Array (elem, _) -> (n, Ty.Ptr elem)
    | Ty.Struct _ ->
        err f.f_loc "parameter %s: struct parameters are not supported, pass a pointer" n
    | Ty.Void -> err f.f_loc "parameter %s has type void" n
    | t -> (n, t)
  in
  let p =
    {
      p with
      funcs =
        List.map
          (fun f ->
            (match f.f_ret with
            | Ty.Struct _ | Ty.Array _ ->
                err f.f_loc "function %s: aggregate return types are not supported"
                  f.f_name
            | _ -> ());
            { f with f_params = List.map (adjust_param f) f.f_params })
          p.funcs;
    }
  in
  (* every struct definition must itself be well-formed (no by-value
     recursion, no unknown field types), even if never used *)
  List.iter
    (fun (name, _) ->
      match Ty.check p.tenv (Ty.Struct name) with
      | Ok () -> ()
      | Error m -> err Ast.no_loc "struct %s: %s" name m)
    p.tenv.Ty.structs;
  let funcs =
    List.map (fun f -> (f.f_name, Ty.Func (f.f_ret, List.map snd f.f_params))) p.funcs
  in
  (* duplicate detection *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.f_name then
        err f.f_loc "duplicate function %s" f.f_name;
      if is_builtin f.f_name then
        err f.f_loc "function %s shadows a builtin" f.f_name;
      Hashtbl.add seen f.f_name ())
    p.funcs;
  let genv =
    {
      tenv = p.tenv;
      globals = [];
      funcs;
      scope = [];
      ret = Ty.Void;
    }
  in
  let globals =
    List.map
      (fun d ->
        if List.mem_assoc d.d_name genv.globals then
          err d.d_loc "duplicate global %s" d.d_name;
        let d = check_decl genv d in
        genv.globals <- genv.globals @ [ (d.d_name, d.d_ty) ];
        d)
      p.globals
  in
  let check_func f =
    List.iter
      (fun (n, t) ->
        match Ty.check p.tenv t with
        | Ok () -> ()
        | Error m -> err f.f_loc "parameter %s: %s" n m)
      f.f_params;
    (match f.f_ret with
    | Ty.Void -> ()
    | t -> (
        match Ty.check p.tenv t with
        | Ok () -> ()
        | Error m -> err f.f_loc "return type: %s" m));
    (* goto/label sanity: labels unique, every goto targets a label *)
    let labels = Hashtbl.create 8 in
    let gotos = ref [] in
    let rec scan (s : stmt) =
      match s.sdesc with
      | Slabel name ->
          if Hashtbl.mem labels name then err s.sloc "duplicate label %s" name;
          Hashtbl.add labels name ()
      | Sgoto name -> gotos := (name, s.sloc) :: !gotos
      | Sif (_, a, b) ->
          List.iter scan a;
          List.iter scan b
      | Swhile (_, b) | Sdo (b, _) | Sfor (_, _, _, b) | Sblock b -> List.iter scan b
      | Sdecl _ -> ()
      | Sswitch (_, arms, d) ->
          List.iter (fun (_, b) -> List.iter scan b) arms;
          List.iter scan d
      | _ -> ()
    in
    List.iter scan f.f_body;
    List.iter
      (fun (name, loc) ->
        if not (Hashtbl.mem labels name) then err loc "goto to undefined label %s" name)
      !gotos;
    let env = { genv with scope = f.f_params; ret = f.f_ret } in
    let locals =
      List.map
        (fun d ->
          if List.mem_assoc d.d_name env.scope then
            err d.d_loc "duplicate local %s" d.d_name;
          let d = check_decl env d in
          env.scope <- env.scope @ [ (d.d_name, d.d_ty) ];
          d)
        f.f_locals
    in
    { f with f_locals = locals; f_body = List.map (check_stmt env) f.f_body }
  in
  let p = { p with globals; funcs = List.map check_func p.funcs } in
  (match find_func p "main" with
  | Some _ -> ()
  | None -> err Ast.no_loc "program has no main function");
  p
