(** Per-architecture data layout.

    Computes [sizeof], [alignof], struct field offsets, and — crucially for
    migration — the bidirectional map between a scalar element's
    machine-independent *ordinal* (its index in {!Ty.flatten}) and its
    machine-specific *byte offset* inside a memory block.

    The layout algorithm is the standard System V one: each scalar's
    alignment is min(its size, arch cap / per-type override); a struct's
    alignment is the max of its fields'; fields are placed at the next
    aligned offset; the struct size is padded to its own alignment. *)

open Hpm_arch

type t = { arch : Arch.t; tenv : Ty.tenv }

let make arch tenv = { arch; tenv }

let scalar_size l (k : Ty.scalar_kind) =
  let a = l.arch in
  match k with
  | Ty.KChar -> 1
  | Ty.KShort -> a.Arch.short_size
  | Ty.KInt -> a.Arch.int_size
  | Ty.KLong -> a.Arch.long_size
  | Ty.KFloat -> a.Arch.float_size
  | Ty.KDouble -> a.Arch.double_size
  | Ty.KPtr _ | Ty.KFunc _ -> a.Arch.ptr_size

let scalar_align l (k : Ty.scalar_kind) =
  let a = l.arch in
  let natural =
    match k with
    | Ty.KDouble -> a.Arch.double_align
    | Ty.KLong -> a.Arch.long_align
    | k -> scalar_size l k
  in
  min natural a.Arch.max_align

let align_up off align =
  if align <= 0 then off else (off + align - 1) / align * align

let rec sizeof l (t : Ty.t) =
  match Ty.scalar_kind_of_ty t with
  | Some k -> scalar_size l k
  | None -> (
      match t with
      | Ty.Array (e, n) -> n * sizeof l e
      | Ty.Struct name -> struct_layout l name |> fun (sz, _, _) -> sz
      | Ty.Void | Ty.Func _ ->
          invalid_arg (Printf.sprintf "Layout.sizeof: %s" (Ty.to_string t))
      | _ -> assert false)

and alignof l (t : Ty.t) =
  match Ty.scalar_kind_of_ty t with
  | Some k -> scalar_align l k
  | None -> (
      match t with
      | Ty.Array (e, _) -> alignof l e
      | Ty.Struct name -> struct_layout l name |> fun (_, al, _) -> al
      | Ty.Void | Ty.Func _ ->
          invalid_arg (Printf.sprintf "Layout.alignof: %s" (Ty.to_string t))
      | _ -> assert false)

(** [struct_layout l name] is [(size, align, field_offsets)] where
    [field_offsets] pairs each field name with its byte offset. *)
and struct_layout l name =
  let def = Ty.find_struct_exn l.tenv name in
  let off, align, fields =
    List.fold_left
      (fun (off, align, acc) (f : Ty.field) ->
        let fa = alignof l f.Ty.fld_ty in
        let fo = align_up off fa in
        (fo + sizeof l f.Ty.fld_ty, max align fa, (f.Ty.fld_name, fo) :: acc))
      (0, 1, []) def.Ty.s_fields
  in
  (align_up off align, align, List.rev fields)

let field_offset l sname fname =
  let _, _, offs = struct_layout l sname in
  match List.assoc_opt fname offs with
  | Some o -> o
  | None ->
      invalid_arg (Printf.sprintf "Layout.field_offset: struct %s has no field %s" sname fname)

let field_ty l sname fname =
  let def = Ty.find_struct_exn l.tenv sname in
  match List.find_opt (fun f -> String.equal f.Ty.fld_name fname) def.Ty.s_fields with
  | Some f -> f.Ty.fld_ty
  | None ->
      invalid_arg (Printf.sprintf "Layout.field_ty: struct %s has no field %s" sname fname)

(** An element table for a block type: for each scalar ordinal, its byte
    offset and scalar kind under this layout.  Built once per (arch, type)
    and cached by the TI table; lookups during collection/restoration are
    then O(1) for ordinal→byte and O(log n) for byte→ordinal. *)
type elems = {
  ty : Ty.t;
  byte_of_ord : int array;             (** ordinal → byte offset *)
  kind_of_ord : Ty.scalar_kind array;  (** ordinal → scalar kind *)
  (* sorted by byte offset; parallel to byte_of_ord via sorting permutation *)
  sorted_bytes : int array;
  sorted_ords : int array;
}

let elems l (t : Ty.t) =
  let bytes = ref [] and kinds = ref [] in
  let rec go base (t : Ty.t) =
    match Ty.scalar_kind_of_ty t with
    | Some k ->
        bytes := base :: !bytes;
        kinds := k :: !kinds
    | None -> (
        match t with
        | Ty.Array (e, n) ->
            let esz = sizeof l e in
            for i = 0 to n - 1 do
              go (base + (i * esz)) e
            done
        | Ty.Struct name ->
            let _, _, offs = struct_layout l name in
            let def = Ty.find_struct_exn l.tenv name in
            List.iter2
              (fun (f : Ty.field) (_, fo) -> go (base + fo) f.Ty.fld_ty)
              def.Ty.s_fields offs
        | _ -> invalid_arg (Printf.sprintf "Layout.elems: %s" (Ty.to_string t)))
  in
  go 0 t;
  let byte_of_ord = Array.of_list (List.rev !bytes) in
  let kind_of_ord = Array.of_list (List.rev !kinds) in
  let n = Array.length byte_of_ord in
  let perm = Array.init n Fun.id in
  Array.sort (fun i j -> compare byte_of_ord.(i) byte_of_ord.(j)) perm;
  let sorted_bytes = Array.map (fun i -> byte_of_ord.(i)) perm in
  { ty = t; byte_of_ord; kind_of_ord; sorted_bytes; sorted_ords = perm }

let elem_count e = Array.length e.byte_of_ord

let byte_of_ordinal e ord =
  if ord < 0 || ord >= Array.length e.byte_of_ord then
    invalid_arg (Printf.sprintf "Layout.byte_of_ordinal: ordinal %d out of range" ord);
  e.byte_of_ord.(ord)

let kind_of_ordinal e ord =
  if ord < 0 || ord >= Array.length e.kind_of_ord then
    invalid_arg (Printf.sprintf "Layout.kind_of_ordinal: ordinal %d out of range" ord);
  e.kind_of_ord.(ord)

(** [ordinal_of_byte e off] is the ordinal of the scalar element starting
    exactly at byte [off]; [None] when [off] lands in padding or mid-element.
    A pointer whose value is such an address is malformed (or points past a
    narrowing cast) and collection reports it instead of guessing. *)
let ordinal_of_byte e off =
  let lo = ref 0 and hi = ref (Array.length e.sorted_bytes - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let b = e.sorted_bytes.(mid) in
    if b = off then (
      found := Some e.sorted_ords.(mid);
      lo := !hi + 1)
    else if b < off then lo := mid + 1
    else hi := mid - 1
  done;
  !found
