(** Mini-C abstract syntax.

    The surface language is the migration-safe C subset of the paper: C89
    style (all locals declared at function top), structs, pointers,
    fixed-size arrays, function pointers, [malloc]/[free], and the usual
    statements.  Expressions carry a mutable type slot filled by
    {!Typecheck}; downstream passes (lowering, liveness, the pre-compiler)
    read it and never re-infer. *)

type loc = { line : int; col : int }

let no_loc = { line = 0; col = 0 }
let pp_loc ppf l = Fmt.pf ppf "%d:%d" l.line l.col

type unop =
  | Neg          (** -e *)
  | Not          (** !e *)
  | Bnot         (** ~e *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or                       (** short-circuit && and || *)
  | Band | Bor | Bxor | Shl | Shr

type const =
  | Cint of int64                  (** integer literal (type [Int]) *)
  | Clong of int64                 (** integer literal with L suffix *)
  | Cfloat of float                (** literal with f suffix (type [Float]) *)
  | Cdouble of float
  | Cchar of char
  | Cstr of string                 (** string literal: becomes a global char array *)

type expr = { desc : desc; loc : loc; mutable ety : Ty.t option }

and desc =
  | Const of const
  | Var of string                       (** variable or function name *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr               (** lvalue = rvalue, value is rvalue *)
  | Incr of bool * expr                 (** pre?(true) ++lv / lv++ *)
  | Decr of bool * expr
  | Call of expr * expr list            (** callee is a name or fn-pointer expr *)
  | Index of expr * expr                (** e1[e2] *)
  | Field of expr * string              (** e.f *)
  | Arrow of expr * string              (** e->f *)
  | Deref of expr                       (** *e *)
  | Addr of expr                        (** &lvalue *)
  | Cast of Ty.t * expr
  | Sizeof of Ty.t                      (** sizeof(type); arch-dependent value *)
  | Cond of expr * expr * expr          (** e1 ? e2 : e3 *)

type stmt = { sdesc : sdesc; sloc : loc }

and sdesc =
  | Sexpr of expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr             (** do { .. } while (e); *)
  | Sfor of expr option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sswitch of expr * (int64 list * stmt list) list * stmt list
      (** switch: scrutinee, arms (several case constants may label one
          arm), default body.  C semantics, including fallthrough: an arm
          that does not end in [break]/[return] continues into the next
          arm. *)
  | Sgoto of string                     (** goto LABEL *)
  | Slabel of string                    (** LABEL: — the paper's poll-point label statements *)
  | Spoll of string                     (** explicit user poll-point: [#pragma poll name] *)
  | Sdecl of decl
      (** block-scoped declaration (C89 compound blocks); eliminated by
          {!Scopes.normalize}, which hoists it to the function top with
          renaming — later passes never see it *)

(** A local declaration: [int a, *b;] yields two decls.  Optional scalar
    initializer expressions are sugar for an assignment at function entry. *)
and decl = { d_name : string; d_ty : Ty.t; d_init : expr option; d_loc : loc }

type func = {
  f_name : string;
  f_ret : Ty.t;
  f_params : (string * Ty.t) list;
  f_locals : decl list;
  f_body : stmt list;
  f_loc : loc;
}

type program = {
  tenv : Ty.tenv;
  globals : decl list;
  funcs : func list;
}

let mk ?(loc = no_loc) desc = { desc; loc; ety = None }
let mks ?(loc = no_loc) sdesc = { sdesc; sloc = loc }

(** Type of a checked expression; call only after {!Typecheck.check_program}. *)
let ty_of (e : expr) : Ty.t =
  match e.ety with
  | Some t -> t
  | None ->
      invalid_arg
        (Fmt.str "Ast.ty_of: expression at %a was not type-checked" pp_loc e.loc)

let find_func p name = List.find_opt (fun f -> String.equal f.f_name name) p.funcs

let find_func_exn p name =
  match find_func p name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Ast.find_func_exn: no function %s" name)

(** Structural expression equality, ignoring locations and type
    annotations.  Used to recognize the lvalue duplication produced by
    compound-assignment desugaring even after other passes have rebuilt
    the nodes. *)
let rec expr_equal (a : expr) (b : expr) : bool =
  match (a.desc, b.desc) with
  | Const x, Const y -> x = y
  | Var x, Var y -> String.equal x y
  | Unop (o1, x), Unop (o2, y) -> o1 = o2 && expr_equal x y
  | Binop (o1, x1, y1), Binop (o2, x2, y2) ->
      o1 = o2 && expr_equal x1 x2 && expr_equal y1 y2
  | Assign (x1, y1), Assign (x2, y2) -> expr_equal x1 x2 && expr_equal y1 y2
  | Incr (p1, x), Incr (p2, y) | Decr (p1, x), Decr (p2, y) ->
      p1 = p2 && expr_equal x y
  | Call (f1, a1), Call (f2, a2) ->
      expr_equal f1 f2
      && List.length a1 = List.length a2
      && List.for_all2 expr_equal a1 a2
  | Index (x1, y1), Index (x2, y2) -> expr_equal x1 x2 && expr_equal y1 y2
  | Field (x, f1), Field (y, f2) | Arrow (x, f1), Arrow (y, f2) ->
      String.equal f1 f2 && expr_equal x y
  | Deref x, Deref y | Addr x, Addr y -> expr_equal x y
  | Cast (t1, x), Cast (t2, y) -> Ty.equal t1 t2 && expr_equal x y
  | Sizeof t1, Sizeof t2 -> Ty.equal t1 t2
  | Cond (c1, x1, y1), Cond (c2, x2, y2) ->
      expr_equal c1 c2 && expr_equal x1 x2 && expr_equal y1 y2
  | _ -> false

let unop_to_string = function Neg -> "-" | Not -> "!" | Bnot -> "~"

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
