lib/lang/ast.ml: Fmt List Printf String Ty
