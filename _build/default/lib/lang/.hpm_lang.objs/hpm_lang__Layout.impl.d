lib/lang/layout.ml: Arch Array Fun Hpm_arch List Printf String Ty
