lib/lang/lexer.ml: Array Buffer Fmt Int64 List Printf String
