lib/lang/ty.ml: Fmt List Printf String
