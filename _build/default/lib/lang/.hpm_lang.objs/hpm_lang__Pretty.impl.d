lib/lang/pretty.ml: Ast Fmt Format List Printf String Ty
