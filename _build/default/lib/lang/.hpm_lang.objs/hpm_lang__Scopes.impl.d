lib/lang/scopes.ml: Ast List Option Printf
