lib/lang/parser.ml: Array Ast Char Fmt Fun Int64 Lexer List Ty
