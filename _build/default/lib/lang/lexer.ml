(** Hand-written lexer for Mini-C.

    Produces a token array with source positions.  Comments ([/* */] and
    [//]) and whitespace are skipped.  The only preprocessor-ish construct
    is [#pragma poll NAME], which survives as a token so users can place
    poll-points by hand, as §2 of the paper allows. *)

type token =
  | INT_LIT of int64
  | LONG_LIT of int64
  | FLOAT_LIT of float
  | DOUBLE_LIT of float
  | CHAR_LIT of char
  | STR_LIT of string
  | IDENT of string
  (* keywords *)
  | KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT | KW_DOUBLE
  | KW_STRUCT | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR | KW_RETURN
  | KW_BREAK | KW_CONTINUE | KW_SIZEOF
  | KW_SWITCH | KW_CASE | KW_DEFAULT | KW_GOTO
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW | QUESTION | COLON
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | PLUSPLUS | MINUSMINUS
  | ASSIGN | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | EQ | NE | LT | LE | GT | GE
  | AMPAMP | BARBAR | BANG
  | AMP | BAR | CARET | TILDE | SHL | SHR
  | PRAGMA_POLL of string
  | EOF

type lexed = { tok : token; line : int; col : int }

exception Error of string * int * int

let error line col fmt =
  Fmt.kstr (fun msg -> raise (Error (msg, line, col))) fmt

let keyword_of_string = function
  | "void" -> Some KW_VOID
  | "char" -> Some KW_CHAR
  | "short" -> Some KW_SHORT
  | "int" -> Some KW_INT
  | "long" -> Some KW_LONG
  | "float" -> Some KW_FLOAT
  | "double" -> Some KW_DOUBLE
  | "struct" -> Some KW_STRUCT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "sizeof" -> Some KW_SIZEOF
  | "switch" -> Some KW_SWITCH
  | "case" -> Some KW_CASE
  | "default" -> Some KW_DEFAULT
  | "goto" -> Some KW_GOTO
  | _ -> None

let token_to_string = function
  | INT_LIT n -> Int64.to_string n
  | LONG_LIT n -> Int64.to_string n ^ "L"
  | FLOAT_LIT f -> string_of_float f ^ "f"
  | DOUBLE_LIT f -> string_of_float f
  | CHAR_LIT c -> Printf.sprintf "%C" c
  | STR_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_VOID -> "void" | KW_CHAR -> "char" | KW_SHORT -> "short"
  | KW_INT -> "int" | KW_LONG -> "long" | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double" | KW_STRUCT -> "struct" | KW_IF -> "if"
  | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_DO -> "do" | KW_FOR -> "for"
  | KW_RETURN -> "return" | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | KW_SIZEOF -> "sizeof"
  | KW_SWITCH -> "switch" | KW_CASE -> "case" | KW_DEFAULT -> "default"
  | KW_GOTO -> "goto"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | SEMI -> ";" | COMMA -> ","
  | DOT -> "." | ARROW -> "->" | QUESTION -> "?" | COLON -> ":"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | ASSIGN -> "=" | PLUSEQ -> "+=" | MINUSEQ -> "-=" | STAREQ -> "*=" | SLASHEQ -> "/="
  | EQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | AMPAMP -> "&&" | BARBAR -> "||" | BANG -> "!"
  | AMP -> "&" | BAR -> "|" | CARET -> "^" | TILDE -> "~"
  | SHL -> "<<" | SHR -> ">>"
  | PRAGMA_POLL s -> "#pragma poll " ^ s
  | EOF -> "<eof>"

type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let peek_char st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek_char2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek_char st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws_and_comments st =
  match peek_char st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws_and_comments st
  | Some '/' when peek_char2 st = Some '/' ->
      while peek_char st <> None && peek_char st <> Some '\n' do
        advance st
      done;
      skip_ws_and_comments st
  | Some '/' when peek_char2 st = Some '*' ->
      let line = st.line and col = st.col in
      advance st;
      advance st;
      let rec loop () =
        match (peek_char st, peek_char2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            loop ()
        | None, _ -> error line col "unterminated comment"
      in
      loop ();
      skip_ws_and_comments st
  | _ -> ()

let lex_number st =
  let line = st.line and col = st.col in
  let start = st.pos in
  while (match peek_char st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float = ref false in
  (match (peek_char st, peek_char2 st) with
  | Some '.', Some c when is_digit c ->
      is_float := true;
      advance st;
      while (match peek_char st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | Some '.', (Some _ | None) when peek_char2 st <> Some '.' ->
      (* trailing "1." — accept as double *)
      is_float := true;
      advance st
  | _ -> ());
  (match peek_char st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek_char st with Some ('+' | '-') -> advance st | _ -> ());
      while (match peek_char st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match peek_char st with
    | Some ('f' | 'F') ->
        advance st;
        { tok = FLOAT_LIT (float_of_string text); line; col }
    | _ -> { tok = DOUBLE_LIT (float_of_string text); line; col }
  else
    match peek_char st with
    | Some ('l' | 'L') ->
        advance st;
        { tok = LONG_LIT (Int64.of_string text); line; col }
    | _ -> { tok = INT_LIT (Int64.of_string text); line; col }

let lex_escaped st line col =
  match peek_char st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some c -> error line col "unknown escape \\%c" c
  | None -> error line col "unterminated escape"

let lex_string st =
  let line = st.line and col = st.col in
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek_char st with
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        Buffer.add_char buf (lex_escaped st line col);
        loop ()
    | Some '\n' | None -> error line col "unterminated string literal"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  { tok = STR_LIT (Buffer.contents buf); line; col }

let lex_char st =
  let line = st.line and col = st.col in
  advance st;
  let c =
    match peek_char st with
    | Some '\\' ->
        advance st;
        lex_escaped st line col
    | Some c ->
        advance st;
        c
    | None -> error line col "unterminated char literal"
  in
  (match peek_char st with
  | Some '\'' -> advance st
  | _ -> error line col "unterminated char literal");
  { tok = CHAR_LIT c; line; col }

let lex_pragma st =
  (* at '#'; only "#pragma poll IDENT" is accepted *)
  let line = st.line and col = st.col in
  let start = st.pos in
  while peek_char st <> None && peek_char st <> Some '\n' do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match String.split_on_char ' ' text |> List.filter (fun s -> s <> "") with
  | [ "#pragma"; "poll"; name ] -> { tok = PRAGMA_POLL name; line; col }
  | _ -> error line col "unsupported directive %S (only '#pragma poll NAME')" text

let lex_ident st =
  let line = st.line and col = st.col in
  let start = st.pos in
  while (match peek_char st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match keyword_of_string text with
  | Some kw -> { tok = kw; line; col }
  | None -> { tok = IDENT text; line; col }

let lex_op st =
  let line = st.line and col = st.col in
  let one tok = advance st; { tok; line; col } in
  let two tok = advance st; advance st; { tok; line; col } in
  match (peek_char st, peek_char2 st) with
  | Some '+', Some '+' -> two PLUSPLUS
  | Some '+', Some '=' -> two PLUSEQ
  | Some '+', _ -> one PLUS
  | Some '-', Some '-' -> two MINUSMINUS
  | Some '-', Some '=' -> two MINUSEQ
  | Some '-', Some '>' -> two ARROW
  | Some '-', _ -> one MINUS
  | Some '*', Some '=' -> two STAREQ
  | Some '*', _ -> one STAR
  | Some '/', Some '=' -> two SLASHEQ
  | Some '/', _ -> one SLASH
  | Some '%', _ -> one PERCENT
  | Some '=', Some '=' -> two EQ
  | Some '=', _ -> one ASSIGN
  | Some '!', Some '=' -> two NE
  | Some '!', _ -> one BANG
  | Some '<', Some '<' -> two SHL
  | Some '<', Some '=' -> two LE
  | Some '<', _ -> one LT
  | Some '>', Some '>' -> two SHR
  | Some '>', Some '=' -> two GE
  | Some '>', _ -> one GT
  | Some '&', Some '&' -> two AMPAMP
  | Some '&', _ -> one AMP
  | Some '|', Some '|' -> two BARBAR
  | Some '|', _ -> one BAR
  | Some '^', _ -> one CARET
  | Some '~', _ -> one TILDE
  | Some '(', _ -> one LPAREN
  | Some ')', _ -> one RPAREN
  | Some '{', _ -> one LBRACE
  | Some '}', _ -> one RBRACE
  | Some '[', _ -> one LBRACKET
  | Some ']', _ -> one RBRACKET
  | Some ';', _ -> one SEMI
  | Some ',', _ -> one COMMA
  | Some '.', _ -> one DOT
  | Some '?', _ -> one QUESTION
  | Some ':', _ -> one COLON
  | Some c, _ -> error line col "unexpected character %C" c
  | None, _ -> { tok = EOF; line; col }

(** [tokenize src] lexes the whole source, raising {!Error} on bad input. *)
let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let out = ref [] in
  let rec loop () =
    skip_ws_and_comments st;
    match peek_char st with
    | None -> out := { tok = EOF; line = st.line; col = st.col } :: !out
    | Some c ->
        let t =
          if is_digit c then lex_number st
          else if is_ident_start c then lex_ident st
          else if c = '"' then lex_string st
          else if c = '\'' then lex_char st
          else if c = '#' then lex_pragma st
          else lex_op st
        in
        out := t :: !out;
        loop ()
  in
  loop ();
  Array.of_list (List.rev !out)
