(** Recursive-descent parser for Mini-C.

    Full C declarator syntax is supported — [struct node *parray[10]] is an
    array of ten pointers, and function-pointer declarators work — because
    the paper's example program and the TUI-style type analysis depend on
    it.  There are no typedefs, so the classic cast/paren ambiguity
    resolves by one token of lookahead. *)

open Lexer

exception Error of string * int * int

type st = { toks : lexed array; mutable pos : int }

let error st fmt =
  let ({ line; col; _ } : lexed) = st.toks.(st.pos) in
  Fmt.kstr (fun msg -> raise (Error (msg, line, col))) fmt

let cur st = st.toks.(st.pos).tok

let cur_loc st : Ast.loc =
  let ({ line; col; _ } : lexed) = st.toks.(st.pos) in
  { line; col }

let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).tok else EOF

let advance st = if st.pos + 1 < Array.length st.toks then st.pos <- st.pos + 1

let accept st tok =
  if cur st = tok then (
    advance st;
    true)
  else false

let expect st tok =
  if not (accept st tok) then
    error st "expected %s but found %s" (token_to_string tok)
      (token_to_string (cur st))

let expect_ident st =
  match cur st with
  | IDENT s ->
      advance st;
      s
  | t -> error st "expected identifier but found %s" (token_to_string t)

let is_type_start = function
  | KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT | KW_DOUBLE
  | KW_STRUCT ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Types and declarators                                               *)
(* ------------------------------------------------------------------ *)

let parse_base_type st : Ty.t =
  match cur st with
  | KW_VOID -> advance st; Ty.Void
  | KW_CHAR -> advance st; Ty.Char
  | KW_SHORT -> advance st; Ty.Short
  | KW_INT -> advance st; Ty.Int
  | KW_LONG ->
      advance st;
      (* accept "long int" *)
      if cur st = KW_INT then advance st;
      Ty.Long
  | KW_FLOAT -> advance st; Ty.Float
  | KW_DOUBLE -> advance st; Ty.Double
  | KW_STRUCT ->
      advance st;
      let name = expect_ident st in
      Ty.Struct name
  | t -> error st "expected a type but found %s" (token_to_string t)

(* A declarator yields the declared name (possibly "" for abstract
   declarators in casts / parameter lists) and a transformer applied to the
   base type. *)
let rec parse_declarator st : string * (Ty.t -> Ty.t) =
  if accept st STAR then
    let name, wrap = parse_declarator st in
    (name, fun t -> wrap (Ty.Ptr t))
  else parse_direct_declarator st

and parse_direct_declarator st =
  let name, wrap =
    match cur st with
    | LPAREN when declarator_paren st ->
        advance st;
        let d = parse_declarator st in
        expect st RPAREN;
        d
    | IDENT n ->
        advance st;
        (n, Fun.id)
    | _ -> ("", Fun.id) (* abstract declarator *)
  in
  parse_suffixes st (name, wrap)

(* Distinguish "(*f)(...)" grouping parens from a parameter list "(int)".
   A grouping paren is followed by '*', an identifier, or another paren. *)
and declarator_paren st =
  match peek2 st with STAR | IDENT _ | LPAREN -> true | _ -> false

and parse_suffixes st (name, wrap) =
  if accept st LBRACKET then (
    let n =
      match cur st with
      | INT_LIT v ->
          advance st;
          Int64.to_int v
      | t -> error st "expected array size but found %s" (token_to_string t)
    in
    expect st RBRACKET;
    parse_suffixes st (name, fun t -> wrap (Ty.Array (t, n))))
  else if cur st = LPAREN && not (declarator_paren st) then (
    advance st;
    let params = parse_param_types st in
    expect st RPAREN;
    parse_suffixes st (name, fun t -> wrap (Ty.Func (t, params))))
  else (name, wrap)

and parse_param_types st =
  if cur st = RPAREN then []
  else if cur st = KW_VOID && peek2 st = RPAREN then (
    advance st;
    [])
  else
    let rec loop acc =
      let base = parse_base_type st in
      let _, wrap = parse_declarator st in
      let acc = wrap base :: acc in
      if accept st COMMA then loop acc else List.rev acc
    in
    loop []

(** Parse a complete type name, e.g. in a cast or sizeof: base type followed
    by an abstract declarator. *)
let parse_type_name st =
  let base = parse_base_type st in
  let name, wrap = parse_declarator st in
  if name <> "" then error st "unexpected identifier %s in type name" name;
  wrap base

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st : Ast.expr = parse_assign st

and parse_assign st =
  let loc = cur_loc st in
  let lhs = parse_cond st in
  match cur st with
  | ASSIGN ->
      advance st;
      let rhs = parse_assign st in
      Ast.mk ~loc (Ast.Assign (lhs, rhs))
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ ->
      let op =
        match cur st with
        | PLUSEQ -> Ast.Add
        | MINUSEQ -> Ast.Sub
        | STAREQ -> Ast.Mul
        | SLASHEQ -> Ast.Div
        | _ -> assert false
      in
      advance st;
      let rhs = parse_assign st in
      (* Desugar [lv op= e] to [lv = lv op e]; Mini-C lvalues are pure so
         the duplication is safe (side effects in lvalue positions of
         compound assignments are rejected by the type checker). *)
      Ast.mk ~loc (Ast.Assign (lhs, Ast.mk ~loc (Ast.Binop (op, lhs, rhs))))
  | _ -> lhs

and parse_cond st =
  let loc = cur_loc st in
  let c = parse_binary st 0 in
  if accept st QUESTION then (
    let t = parse_expr st in
    expect st COLON;
    let f = parse_cond st in
    Ast.mk ~loc (Ast.Cond (c, t, f)))
  else c

(* Binary operators by increasing precedence level. *)
and binop_at_level level tok =
  match (level, tok) with
  | 0, BARBAR -> Some Ast.Or
  | 1, AMPAMP -> Some Ast.And
  | 2, BAR -> Some Ast.Bor
  | 3, CARET -> Some Ast.Bxor
  | 4, AMP -> Some Ast.Band
  | 5, EQ -> Some Ast.Eq
  | 5, NE -> Some Ast.Ne
  | 6, LT -> Some Ast.Lt
  | 6, LE -> Some Ast.Le
  | 6, GT -> Some Ast.Gt
  | 6, GE -> Some Ast.Ge
  | 7, SHL -> Some Ast.Shl
  | 7, SHR -> Some Ast.Shr
  | 8, PLUS -> Some Ast.Add
  | 8, MINUS -> Some Ast.Sub
  | 9, STAR -> Some Ast.Mul
  | 9, SLASH -> Some Ast.Div
  | 9, PERCENT -> Some Ast.Mod
  | _ -> None

and parse_binary st level =
  if level > 9 then parse_unary st
  else
    let loc = cur_loc st in
    let lhs = ref (parse_binary st (level + 1)) in
    let continue = ref true in
    while !continue do
      match binop_at_level level (cur st) with
      | Some op ->
          advance st;
          let rhs = parse_binary st (level + 1) in
          lhs := Ast.mk ~loc (Ast.Binop (op, !lhs, rhs))
      | None -> continue := false
    done;
    !lhs

and parse_unary st =
  let loc = cur_loc st in
  match cur st with
  | MINUS ->
      advance st;
      Ast.mk ~loc (Ast.Unop (Ast.Neg, parse_unary st))
  | BANG ->
      advance st;
      Ast.mk ~loc (Ast.Unop (Ast.Not, parse_unary st))
  | TILDE ->
      advance st;
      Ast.mk ~loc (Ast.Unop (Ast.Bnot, parse_unary st))
  | STAR ->
      advance st;
      Ast.mk ~loc (Ast.Deref (parse_unary st))
  | AMP ->
      advance st;
      Ast.mk ~loc (Ast.Addr (parse_unary st))
  | PLUSPLUS ->
      advance st;
      Ast.mk ~loc (Ast.Incr (true, parse_unary st))
  | MINUSMINUS ->
      advance st;
      Ast.mk ~loc (Ast.Decr (true, parse_unary st))
  | KW_SIZEOF ->
      advance st;
      expect st LPAREN;
      let t = parse_type_name st in
      expect st RPAREN;
      Ast.mk ~loc (Ast.Sizeof t)
  | LPAREN when is_type_start (peek2 st) ->
      advance st;
      let t = parse_type_name st in
      expect st RPAREN;
      Ast.mk ~loc (Ast.Cast (t, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    let loc = cur_loc st in
    match cur st with
    | LPAREN ->
        advance st;
        let args = parse_args st in
        expect st RPAREN;
        e := Ast.mk ~loc (Ast.Call (!e, args))
    | LBRACKET ->
        advance st;
        let idx = parse_expr st in
        expect st RBRACKET;
        e := Ast.mk ~loc (Ast.Index (!e, idx))
    | DOT ->
        advance st;
        let f = expect_ident st in
        e := Ast.mk ~loc (Ast.Field (!e, f))
    | ARROW ->
        advance st;
        let f = expect_ident st in
        e := Ast.mk ~loc (Ast.Arrow (!e, f))
    | PLUSPLUS ->
        advance st;
        e := Ast.mk ~loc (Ast.Incr (false, !e))
    | MINUSMINUS ->
        advance st;
        e := Ast.mk ~loc (Ast.Decr (false, !e))
    | _ -> continue := false
  done;
  !e

and parse_args st =
  if cur st = RPAREN then []
  else
    let rec loop acc =
      let a = parse_assign st in
      if accept st COMMA then loop (a :: acc) else List.rev (a :: acc)
    in
    loop []

and parse_primary st =
  let loc = cur_loc st in
  match cur st with
  | INT_LIT v -> advance st; Ast.mk ~loc (Ast.Const (Ast.Cint v))
  | LONG_LIT v -> advance st; Ast.mk ~loc (Ast.Const (Ast.Clong v))
  | FLOAT_LIT v -> advance st; Ast.mk ~loc (Ast.Const (Ast.Cfloat v))
  | DOUBLE_LIT v -> advance st; Ast.mk ~loc (Ast.Const (Ast.Cdouble v))
  | CHAR_LIT c -> advance st; Ast.mk ~loc (Ast.Const (Ast.Cchar c))
  | STR_LIT s -> advance st; Ast.mk ~loc (Ast.Const (Ast.Cstr s))
  | IDENT n -> advance st; Ast.mk ~loc (Ast.Var n)
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | t -> error st "expected an expression but found %s" (token_to_string t)

(* Parse declarators for one declaration line: "int a, *b;". *)
let parse_decl_line st base : Ast.decl list =
  let rec loop acc =
    let loc = cur_loc st in
    let name, wrap = parse_declarator st in
    if name = "" then error st "expected a name in declaration";
    let init = if accept st ASSIGN then Some (parse_assign st) else None in
    let d = { Ast.d_name = name; d_ty = wrap base; d_init = init; d_loc = loc } in
    if accept st COMMA then loop (d :: acc)
    else (
      expect st SEMI;
      List.rev (d :: acc))
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st : Ast.stmt =
  let loc = cur_loc st in
  match cur st with
  | SEMI ->
      advance st;
      Ast.mks ~loc (Ast.Sblock [])
  | LBRACE ->
      advance st;
      (* C89: declarations at the head of any compound block *)
      let decls = ref [] in
      while is_type_start (cur st) do
        let base = parse_base_type st in
        List.iter
          (fun d -> decls := Ast.mks ~loc:d.Ast.d_loc (Ast.Sdecl d) :: !decls)
          (parse_decl_line st base)
      done;
      let body = parse_stmts_until st RBRACE in
      expect st RBRACE;
      Ast.mks ~loc (Ast.Sblock (List.rev !decls @ body))
  | KW_IF ->
      advance st;
      expect st LPAREN;
      let c = parse_expr st in
      expect st RPAREN;
      let then_ = parse_branch st in
      let else_ = if accept st KW_ELSE then parse_branch st else [] in
      Ast.mks ~loc (Ast.Sif (c, then_, else_))
  | KW_WHILE ->
      advance st;
      expect st LPAREN;
      let c = parse_expr st in
      expect st RPAREN;
      Ast.mks ~loc (Ast.Swhile (c, parse_branch st))
  | KW_DO ->
      advance st;
      let body = parse_branch st in
      expect st KW_WHILE;
      expect st LPAREN;
      let c = parse_expr st in
      expect st RPAREN;
      expect st SEMI;
      Ast.mks ~loc (Ast.Sdo (body, c))
  | KW_FOR ->
      advance st;
      expect st LPAREN;
      let init = if cur st = SEMI then None else Some (parse_expr st) in
      expect st SEMI;
      let cond = if cur st = SEMI then None else Some (parse_expr st) in
      expect st SEMI;
      let step = if cur st = RPAREN then None else Some (parse_expr st) in
      expect st RPAREN;
      Ast.mks ~loc (Ast.Sfor (init, cond, step, parse_branch st))
  | KW_RETURN ->
      advance st;
      let e = if cur st = SEMI then None else Some (parse_expr st) in
      expect st SEMI;
      Ast.mks ~loc (Ast.Sreturn e)
  | KW_BREAK ->
      advance st;
      expect st SEMI;
      Ast.mks ~loc Ast.Sbreak
  | KW_CONTINUE ->
      advance st;
      expect st SEMI;
      Ast.mks ~loc Ast.Scontinue
  | PRAGMA_POLL name ->
      advance st;
      Ast.mks ~loc (Ast.Spoll name)
  | KW_SWITCH ->
      advance st;
      expect st LPAREN;
      let scrut = parse_expr st in
      expect st RPAREN;
      expect st LBRACE;
      let arms = ref [] in
      let default = ref [] in
      let case_const () =
        match cur st with
        | INT_LIT v -> advance st; v
        | CHAR_LIT c -> advance st; Int64.of_int (Char.code c)
        | MINUS -> (
            advance st;
            match cur st with
            | INT_LIT v -> advance st; Int64.neg v
            | t -> error st "expected case constant but found %s" (token_to_string t))
        | t -> error st "expected case constant but found %s" (token_to_string t)
      in
      let arm_body () =
        let acc = ref [] in
        while cur st <> KW_CASE && cur st <> KW_DEFAULT && cur st <> RBRACE do
          acc := parse_stmt st :: !acc
        done;
        List.rev !acc
      in
      let seen_default = ref false in
      while cur st <> RBRACE do
        if accept st KW_CASE then (
          let consts = ref [ case_const () ] in
          expect st COLON;
          while accept st KW_CASE do
            consts := case_const () :: !consts;
            expect st COLON
          done;
          arms := (List.rev !consts, arm_body ()) :: !arms)
        else if accept st KW_DEFAULT then (
          if !seen_default then error st "duplicate default label";
          seen_default := true;
          expect st COLON;
          default := arm_body ())
        else error st "expected case, default, or } in switch"
      done;
      expect st RBRACE;
      Ast.mks ~loc (Ast.Sswitch (scrut, List.rev !arms, !default))
  | KW_GOTO ->
      advance st;
      let label = expect_ident st in
      expect st SEMI;
      Ast.mks ~loc (Ast.Sgoto label)
  | IDENT name when peek2 st = COLON ->
      advance st;
      advance st;
      Ast.mks ~loc (Ast.Slabel name)
  | _ ->
      let e = parse_expr st in
      expect st SEMI;
      Ast.mks ~loc (Ast.Sexpr e)

and parse_branch st =
  match parse_stmt st with
  | { Ast.sdesc = Ast.Sblock body; _ } -> body
  | s -> [ s ]

and parse_stmts_until st stop =
  let acc = ref [] in
  while cur st <> stop && cur st <> EOF do
    acc := parse_stmt st :: !acc
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Declarations and top level                                          *)
(* ------------------------------------------------------------------ *)

let parse_local_decls st =
  let acc = ref [] in
  while is_type_start (cur st) do
    let base = parse_base_type st in
    acc := !acc @ parse_decl_line st base
  done;
  !acc

let parse_struct_def st : Ty.struct_def =
  (* cursor after "struct NAME", at '{' *)
  expect st LBRACE;
  let fields = ref [] in
  while cur st <> RBRACE do
    let base = parse_base_type st in
    let rec loop () =
      let name, wrap = parse_declarator st in
      if name = "" then error st "expected a field name";
      fields := { Ty.fld_name = name; fld_ty = wrap base } :: !fields;
      if accept st COMMA then loop () else expect st SEMI
    in
    loop ()
  done;
  expect st RBRACE;
  expect st SEMI;
  { Ty.s_name = ""; s_fields = List.rev !fields }

(* Parameters with names, for function definitions. *)
let parse_named_params st =
  if cur st = RPAREN then []
  else if cur st = KW_VOID && peek2 st = RPAREN then (
    advance st;
    [])
  else
    let rec loop acc =
      let base = parse_base_type st in
      let name, wrap = parse_declarator st in
      if name = "" then error st "parameter requires a name";
      let acc = (name, wrap base) :: acc in
      if accept st COMMA then loop acc else List.rev acc
    in
    loop []

(* Decide whether the upcoming declaration (cursor just past the base type)
   is a function definition or prototype: a run of '*'s, an identifier, then
   '('.  Anything else (arrays, fn-pointer variables, plain scalars) is a
   global variable line.  Token positions are plain ints, so we peek by
   saving and restoring [st.pos]. *)
let looks_like_function st =
  let saved = st.pos in
  while cur st = STAR do
    advance st
  done;
  let r = (match cur st with IDENT _ -> true | _ -> false) && peek2 st = LPAREN in
  st.pos <- saved;
  r

let parse_program_tokens toks : Ast.program =
  let st = { toks; pos = 0 } in
  let tenv = ref Ty.empty_tenv in
  let globals = ref [] in
  let funcs = ref [] in
  while cur st <> EOF do
    let loc = cur_loc st in
    (* struct definition: "struct NAME {" *)
    match (cur st, peek2 st) with
    | KW_STRUCT, IDENT name
      when st.pos + 2 < Array.length toks && toks.(st.pos + 2).tok = LBRACE ->
        advance st;
        advance st;
        let def = { (parse_struct_def st) with Ty.s_name = name } in
        tenv := Ty.add_struct !tenv def
    | _ ->
        (* K&R default-int for functions: "name(" with no leading type. *)
        let base = if is_type_start (cur st) then parse_base_type st else Ty.Int in
        if looks_like_function st then (
          let ret = ref base in
          while accept st STAR do
            ret := Ty.Ptr !ret
          done;
          let name = expect_ident st in
          expect st LPAREN;
          let params = parse_named_params st in
          expect st RPAREN;
          if accept st SEMI then () (* prototype: signatures are nominal *)
          else (
            expect st LBRACE;
            let locals = parse_local_decls st in
            let body = parse_stmts_until st RBRACE in
            expect st RBRACE;
            funcs :=
              !funcs
              @ [
                  {
                    Ast.f_name = name;
                    f_ret = !ret;
                    f_params = params;
                    f_locals = locals;
                    f_body = body;
                    f_loc = loc;
                  };
                ]))
        else globals := !globals @ parse_decl_line st base
  done;
  { Ast.tenv = !tenv; globals = !globals; funcs = !funcs }

(** [parse_string src] parses a full translation unit.
    @raise Lexer.Error on lexical errors
    @raise Error on syntax errors *)
let parse_string src = parse_program_tokens (Lexer.tokenize src)
