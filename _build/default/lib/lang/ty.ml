(** Mini-C types.

    The type language is the migration-safe C subset of the paper: scalar
    arithmetic types, pointers, fixed-size arrays, named structs, and
    function types (for function pointers, which are migratable because we
    encode them by name).  Unions, varargs and bit-fields — the
    migration-unsafe features catalogued by Smith & Hutchinson — are simply
    absent from the language. *)

type t =
  | Void
  | Char                       (** 1 byte, signed *)
  | Short                      (** arch [short_size], signed *)
  | Int                        (** arch [int_size], signed *)
  | Long                       (** arch [long_size], signed *)
  | Float                      (** IEEE-754 single *)
  | Double                     (** IEEE-754 double *)
  | Ptr of t
  | Array of t * int           (** element type, element count (>= 1) *)
  | Struct of string           (** by name; definition in the {!tenv} *)
  | Func of t * t list         (** return type, parameter types *)

type field = { fld_name : string; fld_ty : t }

type struct_def = { s_name : string; s_fields : field list }

(** A type environment maps struct names to their definitions.  Struct
    definitions are collected by the parser in declaration order; order is
    significant because the TI table numbers types deterministically on
    source and destination machines. *)
type tenv = { structs : (string * struct_def) list }

let empty_tenv = { structs = [] }

let add_struct tenv def =
  if List.mem_assoc def.s_name tenv.structs then
    invalid_arg (Printf.sprintf "Ty.add_struct: duplicate struct %s" def.s_name);
  { structs = tenv.structs @ [ (def.s_name, def) ] }

let find_struct tenv name = List.assoc_opt name tenv.structs

let find_struct_exn tenv name =
  match find_struct tenv name with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Ty.find_struct_exn: unknown struct %s" name)

let rec equal a b =
  match (a, b) with
  | Void, Void | Char, Char | Short, Short | Int, Int | Long, Long
  | Float, Float | Double, Double ->
      true
  | Ptr a, Ptr b -> equal a b
  | Array (a, n), Array (b, m) -> n = m && equal a b
  | Struct a, Struct b -> String.equal a b
  | Func (r1, p1), Func (r2, p2) ->
      equal r1 r2
      && List.length p1 = List.length p2
      && List.for_all2 equal p1 p2
  | _ -> false

let is_integer = function Char | Short | Int | Long -> true | _ -> false
let is_float = function Float | Double -> true | _ -> false
let is_arith t = is_integer t || is_float t
let is_pointer = function Ptr _ -> true | _ -> false
let is_scalar t = is_arith t || is_pointer t

(** [contains_pointer tenv t] decides whether a value of type [t] embeds any
    pointer — the criterion the paper uses to pick between the XDR fast
    path ([Save_variable]) and the traversing path ([Save_pointer]). *)
let rec contains_pointer tenv t =
  match t with
  | Ptr _ -> true
  | Array (e, _) -> contains_pointer tenv e
  | Struct name ->
      let def = find_struct_exn tenv name in
      List.exists (fun f -> contains_pointer tenv f.fld_ty) def.s_fields
  | _ -> false

(** Well-formedness: array lengths positive, struct fields resolvable and
    non-recursive except through pointers (a struct may contain [Ptr
    (Struct self)] — the linked-list pattern — but not [Struct self]). *)
let rec check ?(stack = []) tenv t =
  match t with
  | Void -> Error "void is not a value type"
  | Char | Short | Int | Long | Float | Double -> Ok ()
  | Ptr (Struct name) when find_struct tenv name = None ->
      Error (Printf.sprintf "pointer to undefined struct %s" name)
  | Ptr _ -> Ok ()
  | Array (_, n) when n <= 0 ->
      Error (Printf.sprintf "array length %d must be positive" n)
  | Array (e, _) -> check ~stack tenv e
  | Struct name when List.mem name stack ->
      Error (Printf.sprintf "struct %s recursively contains itself" name)
  | Struct name -> (
      match find_struct tenv name with
      | None -> Error (Printf.sprintf "undefined struct %s" name)
      | Some def ->
          let stack = name :: stack in
          List.fold_left
            (fun acc f -> match acc with Error _ -> acc | Ok () -> check ~stack tenv f.fld_ty)
            (Ok ()) def.s_fields)
  | Func _ -> Ok ()

let rec pp ppf = function
  | Void -> Fmt.string ppf "void"
  | Char -> Fmt.string ppf "char"
  | Short -> Fmt.string ppf "short"
  | Int -> Fmt.string ppf "int"
  | Long -> Fmt.string ppf "long"
  | Float -> Fmt.string ppf "float"
  | Double -> Fmt.string ppf "double"
  | Ptr t -> Fmt.pf ppf "%a*" pp t
  | Array (t, n) -> Fmt.pf ppf "%a[%d]" pp t n
  | Struct name -> Fmt.pf ppf "struct %s" name
  | Func (r, ps) ->
      Fmt.pf ppf "%a(*)(%a)" pp r (Fmt.list ~sep:(Fmt.any ", ") pp) ps

let to_string t = Fmt.str "%a" pp t

(** Scalar kinds: the alphabet of the flattened-element view.  Every value
    type flattens to a sequence of these; the migration stream is (modulo
    framing) a sequence of XDR-encoded scalar kinds. *)
type scalar_kind =
  | KChar
  | KShort
  | KInt
  | KLong
  | KFloat
  | KDouble
  | KPtr of t     (** pointee type *)
  | KFunc of t    (** function-pointer type *)

let scalar_kind_of_ty = function
  | Char -> Some KChar
  | Short -> Some KShort
  | Int -> Some KInt
  | Long -> Some KLong
  | Float -> Some KFloat
  | Double -> Some KDouble
  | Ptr (Func _ as f) -> Some (KFunc f)
  | Ptr p -> Some (KPtr p)
  | _ -> None

let ty_of_scalar_kind = function
  | KChar -> Char
  | KShort -> Short
  | KInt -> Int
  | KLong -> Long
  | KFloat -> Float
  | KDouble -> Double
  | KPtr p -> Ptr p
  | KFunc f -> Ptr f

(** [flatten tenv t] lists the scalar elements of [t] in declaration order,
    recursing through arrays and structs.  The index of an element in this
    list is its machine-independent *ordinal*: identical on every
    architecture, because it depends only on the type structure, never on
    sizes or padding.  This is the "offset" half of the paper's
    pointer-header/offset encoding. *)
let flatten tenv t =
  let rec go acc t =
    match scalar_kind_of_ty t with
    | Some k -> k :: acc
    | None -> (
        match t with
        | Array (e, n) ->
            let rec rep acc i = if i = 0 then acc else rep (go acc e) (i - 1) in
            rep acc n
        | Struct name ->
            let def = find_struct_exn tenv name in
            List.fold_left (fun acc f -> go acc f.fld_ty) acc def.s_fields
        | Void | Func _ ->
            invalid_arg (Printf.sprintf "Ty.flatten: %s has no value layout" (to_string t))
        | _ -> assert false)
  in
  List.rev (go [] t)

(** Number of scalar elements of [t]; [flatten] length without building the
    list (arrays multiply instead of unrolling). *)
let rec elem_count tenv t =
  match scalar_kind_of_ty t with
  | Some _ -> 1
  | None -> (
      match t with
      | Array (e, n) -> n * elem_count tenv e
      | Struct name ->
          let def = find_struct_exn tenv name in
          List.fold_left (fun acc f -> acc + elem_count tenv f.fld_ty) 0 def.s_fields
      | _ -> invalid_arg (Printf.sprintf "Ty.elem_count: %s" (to_string t)))
