(** Block-scope normalization.

    Mini-C's back end (frames, liveness, migration identities) works with
    one flat set of locals per function, like the paper's per-function
    live-variable lists.  C89, however, allows declarations at the head of
    any compound block.  This pass reconciles the two: every block-scoped
    declaration ({!Ast.Sdecl}) is hoisted to the function top, renamed
    with a [__k] suffix when it would collide with or shadow another
    binding, and its initializer is left in place as a plain assignment —
    preserving C's order of evaluation and scoping exactly.

    [Migration.prepare] runs this right after parsing, so the rest of the
    pipeline (and the migratable IR on both ends of a migration — the
    renaming is deterministic) never sees [Sdecl]. *)

open Ast

(* Rename free variable occurrences per the scope environment. *)
let rec rename_expr env (e : expr) : expr =
  let re = rename_expr env in
  let desc =
    match e.desc with
    | Var name -> (
        match List.assoc_opt name env with Some n -> Var n | None -> Var name)
    | Const _ | Sizeof _ -> e.desc
    | Unop (op, a) -> Unop (op, re a)
    | Binop (op, a, b) -> Binop (op, re a, re b)
    | Assign (a, b) -> Assign (re a, re b)
    | Incr (p, a) -> Incr (p, re a)
    | Decr (p, a) -> Decr (p, re a)
    | Call (f, args) -> Call (re f, List.map re args)
    | Index (a, i) -> Index (re a, re i)
    | Field (a, f) -> Field (re a, f)
    | Arrow (a, f) -> Arrow (re a, f)
    | Deref a -> Deref (re a)
    | Addr a -> Addr (re a)
    | Cast (t, a) -> Cast (t, re a)
    | Cond (a, b, c) -> Cond (re a, re b, re c)
  in
  { e with desc }

type ctx = {
  mutable taken : string list;  (** names already used at function level *)
  mutable hoisted : decl list;  (** collected block declarations, in order *)
}

let fresh_name ctx base =
  if not (List.mem base ctx.taken) then (
    ctx.taken <- base :: ctx.taken;
    base)
  else
    let rec go k =
      let cand = Printf.sprintf "%s__%d" base k in
      if List.mem cand ctx.taken then go (k + 1)
      else (
        ctx.taken <- cand :: ctx.taken;
        cand)
    in
    go 1

(* Process a statement sequence; [env] maps source names to current
   (possibly renamed) names and grows as declarations appear.  Returns the
   rewritten statements (declarations replaced by their initializing
   assignments, or dropped). *)
let rec norm_stmts ctx env (body : stmt list) : stmt list =
  match body with
  | [] -> []
  | s :: rest -> (
      match s.sdesc with
      | Sdecl d ->
          let fresh = fresh_name ctx d.d_name in
          ctx.hoisted <-
            ctx.hoisted @ [ { d with d_name = fresh; d_init = None } ];
          let env' = (d.d_name, fresh) :: env in
          let init_stmt =
            match d.d_init with
            | None -> []
            | Some e ->
                [
                  Ast.mks ~loc:d.d_loc
                    (Sexpr
                       (Ast.mk ~loc:d.d_loc
                          (Assign (Ast.mk ~loc:d.d_loc (Var fresh), rename_expr env e))));
                ]
          in
          init_stmt @ norm_stmts ctx env' rest
      | _ -> norm_stmt ctx env s :: norm_stmts ctx env rest)

and norm_stmt ctx env (s : stmt) : stmt =
  let ns body = norm_stmts ctx env body in
  let re = rename_expr env in
  let desc =
    match s.sdesc with
    | Sdecl _ -> assert false (* handled in norm_stmts *)
    | Sexpr e -> Sexpr (re e)
    | Sif (c, a, b) -> Sif (re c, ns a, ns b)
    | Swhile (c, b) -> Swhile (re c, ns b)
    | Sdo (b, c) -> Sdo (ns b, re c)
    | Sfor (i, c, st, b) ->
        Sfor (Option.map re i, Option.map re c, Option.map re st, ns b)
    | Sreturn e -> Sreturn (Option.map re e)
    | Sswitch (scrut, arms, d) ->
        Sswitch (re scrut, List.map (fun (cs, b) -> (cs, ns b)) arms, ns d)
    | Sblock b -> Sblock (ns b)
    | (Sbreak | Scontinue | Spoll _ | Sgoto _ | Slabel _) as d -> d
  in
  { s with sdesc = desc }

(* All identifiers appearing in a function body (variable references and
   declared names): a hoisted block variable must avoid every one of them
   and every program-level name, or it could capture a reference that was
   meant to bind elsewhere (e.g. a local [x] capturing uses of a global
   [x] after its block ends). *)
let rec idents_expr acc (e : expr) =
  match e.desc with
  | Var n -> n :: acc
  | Const _ | Sizeof _ -> acc
  | Unop (_, a) | Incr (_, a) | Decr (_, a) | Deref a | Addr a | Cast (_, a)
  | Field (a, _) | Arrow (a, _) ->
      idents_expr acc a
  | Binop (_, a, b) | Assign (a, b) | Index (a, b) -> idents_expr (idents_expr acc a) b
  | Call (f, args) -> List.fold_left idents_expr (idents_expr acc f) args
  | Cond (a, b, c) -> idents_expr (idents_expr (idents_expr acc a) b) c

let rec idents_stmt acc (s : stmt) =
  match s.sdesc with
  | Sexpr e -> idents_expr acc e
  | Sdecl d -> (
      let acc = d.d_name :: acc in
      match d.d_init with Some e -> idents_expr acc e | None -> acc)
  | Sif (c, a, b) -> idents_stmts (idents_stmts (idents_expr acc c) a) b
  | Swhile (c, b) -> idents_stmts (idents_expr acc c) b
  | Sdo (b, c) -> idents_expr (idents_stmts acc b) c
  | Sfor (i, c, st, b) ->
      let acc = Option.fold ~none:acc ~some:(idents_expr acc) i in
      let acc = Option.fold ~none:acc ~some:(idents_expr acc) c in
      let acc = Option.fold ~none:acc ~some:(idents_expr acc) st in
      idents_stmts acc b
  | Sreturn (Some e) -> idents_expr acc e
  | Sswitch (scrut, arms, d) ->
      let acc = idents_expr acc scrut in
      idents_stmts (List.fold_left (fun acc (_, b) -> idents_stmts acc b) acc arms) d
  | Sblock b -> idents_stmts acc b
  | Sreturn None | Sbreak | Scontinue | Spoll _ | Sgoto _ | Slabel _ -> acc

and idents_stmts acc body = List.fold_left idents_stmt acc body

let normalize_func (globals : string list) (f : func) : func =
  let ctx =
    {
      taken =
        List.map fst f.f_params
        @ List.map (fun d -> d.d_name) f.f_locals
        @ globals
        @ idents_stmts [] f.f_body;
      hoisted = [];
    }
  in
  let body = norm_stmts ctx [] f.f_body in
  { f with f_locals = f.f_locals @ ctx.hoisted; f_body = body }

(** Hoist all block-scoped declarations in [p].  Idempotent; deterministic
    (both ends of a migration derive identical renamings). *)
let normalize (p : program) : program =
  let globals =
    List.map (fun d -> d.d_name) p.globals
    @ List.map (fun (f : func) -> f.f_name) p.funcs
  in
  { p with funcs = List.map (normalize_func globals) p.funcs }
