lib/xdr/xdr.ml: Buffer Bytes Char Endian Hpm_arch Int32 Int64 Printf String
