lib/xdr/xdr.mli: Buffer Bytes
