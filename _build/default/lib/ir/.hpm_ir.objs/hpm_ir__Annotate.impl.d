lib/ir/annotate.ml: Ast Hpm_lang List Parser Pollpoint Pretty Printf
