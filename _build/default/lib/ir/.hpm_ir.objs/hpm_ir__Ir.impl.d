lib/ir/ir.ml: Array Ast Fmt Hpm_lang List Printf String Ty
