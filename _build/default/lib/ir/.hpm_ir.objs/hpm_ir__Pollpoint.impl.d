lib/ir/pollpoint.ml: Array Cfg Fmt Ir List Liveness Printf
