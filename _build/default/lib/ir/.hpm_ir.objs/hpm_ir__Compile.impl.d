lib/ir/compile.ml: Array Ast Char Fmt Hashtbl Hpm_lang Int64 Ir List Option Printf String Ty Typecheck
