lib/ir/liveness.ml: Array Cfg Ir List Set String
