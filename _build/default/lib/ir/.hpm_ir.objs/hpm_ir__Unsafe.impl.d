lib/ir/unsafe.ml: Ast Fmt Hpm_lang List Option Ty
