(** Control-flow graph utilities over {!Ir.func}.

    Provides successor/predecessor maps, reverse-postorder, back-edge and
    loop-header detection.  Loop headers are where the pre-compiler's
    automatic strategy places poll-points (§2 of the paper: poll-points on
    locations reached repeatedly, so a migration request is noticed
    promptly), and loop depth feeds its static frequency heuristic. *)

let successors (t : Ir.term) =
  match t with
  | Ir.Tgoto b -> [ b ]
  | Ir.Tif (_, a, b) -> if a = b then [ a ] else [ a; b ]
  | Ir.Tret _ -> []

let succ_map (f : Ir.func) : int list array =
  Array.map (fun (b : Ir.block) -> successors b.Ir.term) f.Ir.blocks

let pred_map (f : Ir.func) : int list array =
  let preds = Array.make (Array.length f.Ir.blocks) [] in
  Array.iteri
    (fun i (b : Ir.block) ->
      List.iter (fun s -> preds.(s) <- i :: preds.(s)) (successors b.Ir.term))
    f.Ir.blocks;
  preds

(** Blocks in reverse postorder from the entry; unreachable blocks (e.g.
    sealed dead blocks after [return]) are excluded. *)
let reverse_postorder (f : Ir.func) : int list =
  let n = Array.length f.Ir.blocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then (
      visited.(b) <- true;
      List.iter dfs (successors f.Ir.blocks.(b).Ir.term);
      order := b :: !order)
  in
  dfs f.Ir.entry;
  !order

let reachable (f : Ir.func) : bool array =
  let n = Array.length f.Ir.blocks in
  let r = Array.make n false in
  List.iter (fun b -> r.(b) <- true) (reverse_postorder f);
  r

(** [back_edges f] lists (src, dst) edges where [dst] is an ancestor of
    [src] in the DFS tree.  CFGs lowered from structured Mini-C are
    reducible, so each such [dst] is a natural-loop header. *)
let back_edges (f : Ir.func) : (int * int) list =
  let n = Array.length f.Ir.blocks in
  let color = Array.make n 0 in
  (* 0 = white, 1 = on stack, 2 = done *)
  let edges = ref [] in
  let rec dfs b =
    color.(b) <- 1;
    List.iter
      (fun s ->
        if color.(s) = 1 then edges := (b, s) :: !edges
        else if color.(s) = 0 then dfs s)
      (successors f.Ir.blocks.(b).Ir.term);
    color.(b) <- 2
  in
  dfs f.Ir.entry;
  List.rev !edges

let loop_headers (f : Ir.func) : int list =
  List.sort_uniq compare (List.map snd (back_edges f))

(** Natural loop of a back edge (src, header): header plus all blocks that
    reach [src] without passing through [header]. *)
let natural_loop (f : Ir.func) (src, header) : int list =
  let preds = pred_map f in
  let inloop = Hashtbl.create 8 in
  Hashtbl.replace inloop header ();
  let rec add b =
    if not (Hashtbl.mem inloop b) then (
      Hashtbl.replace inloop b ();
      List.iter add preds.(b))
  in
  add src;
  Hashtbl.fold (fun b () acc -> b :: acc) inloop [] |> List.sort compare

(** Loop-nesting depth of every block: number of natural loops containing
    it.  Used by the poll-point cost heuristic (§4.3: a poll in a hot inner
    kernel is where the overhead comes from). *)
let loop_depth (f : Ir.func) : int array =
  let depth = Array.make (Array.length f.Ir.blocks) 0 in
  List.iter
    (fun edge ->
      List.iter (fun b -> depth.(b) <- depth.(b) + 1) (natural_loop f edge))
    (back_edges f);
  depth

(** Instruction count, for reports. *)
let instr_count (f : Ir.func) =
  Array.fold_left (fun acc (b : Ir.block) -> acc + Array.length b.Ir.instrs + 1) 0 f.Ir.blocks
