(** Source-to-source annotation — the visible face of the pre-compiler.

    The paper's §2 describes the migratable format as *annotated source*:
    "at each poll-point, a label statement and a specific macro containing
    migration operations are inserted", produced "automatically by a
    source-to-source transformation software (or a pre-compiler)".

    Internally this implementation inserts polls in the IR (deterministic
    and exact); this pass produces the equivalent annotated Mini-C source
    for humans and for interoperability: [#pragma poll NAME] markers are
    placed at function entries and loop-body heads according to the same
    {!Pollpoint.strategy}.  Re-running the pipeline on the annotated
    source with {!Pollpoint.user_only_strategy} yields a migratable
    program whose polls sit at the equivalent locations — a property the
    test suite checks end to end. *)

open Hpm_lang

(* Statement weight, as a proxy for the IR instruction count used by the
   hot-function heuristic. *)
let rec stmt_weight (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Sexpr _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue | Ast.Spoll _
  | Ast.Sgoto _ | Ast.Slabel _ | Ast.Sdecl _ ->
      2
  | Ast.Sif (_, a, b) -> 2 + weight a + weight b
  | Ast.Swhile (_, body) | Ast.Sdo (body, _) -> 3 + weight body
  | Ast.Sfor (_, _, _, body) -> 4 + weight body
  | Ast.Sswitch (_, arms, d) ->
      2 + List.fold_left (fun acc (_, b) -> acc + weight b) (weight d) arms
  | Ast.Sblock body -> weight body

and weight body = List.fold_left (fun acc s -> acc + stmt_weight s) 0 body

let poll name = Ast.mks (Ast.Spoll name)

(* Insert a poll at the head of each loop body, respecting nesting depth. *)
let rec annotate_stmt (strategy : Pollpoint.strategy) fname counter depth
    (s : Ast.stmt) : Ast.stmt =
  let recurse body = List.map (annotate_stmt strategy fname counter depth) body in
  let loop_body body =
    let inner = List.map (annotate_stmt strategy fname counter (depth + 1)) body in
    if
      strategy.Pollpoint.loop_headers
      && (strategy.Pollpoint.max_loop_depth = 0
         || depth + 1 <= strategy.Pollpoint.max_loop_depth)
    then (
      incr counter;
      poll (Printf.sprintf "auto_%s_loop%d" fname !counter) :: inner)
    else inner
  in
  match s.Ast.sdesc with
  | Ast.Sif (c, a, b) -> Ast.mks ~loc:s.Ast.sloc (Ast.Sif (c, recurse a, recurse b))
  | Ast.Swhile (c, body) -> Ast.mks ~loc:s.Ast.sloc (Ast.Swhile (c, loop_body body))
  | Ast.Sdo (body, c) -> Ast.mks ~loc:s.Ast.sloc (Ast.Sdo (loop_body body, c))
  | Ast.Sfor (i, c, st, body) ->
      Ast.mks ~loc:s.Ast.sloc (Ast.Sfor (i, c, st, loop_body body))
  | Ast.Sblock body -> Ast.mks ~loc:s.Ast.sloc (Ast.Sblock (recurse body))
  | Ast.Sswitch (scrut, arms, d) ->
      Ast.mks ~loc:s.Ast.sloc
        (Ast.Sswitch (scrut, List.map (fun (c, b) -> (c, recurse b)) arms, recurse d))
  | _ -> s

(** Annotate a (parsed, not necessarily type-checked) program per
    [strategy].  Functions below the hot threshold receive no automatic
    polls, mirroring {!Pollpoint.insert}. *)
let program ?(strategy = Pollpoint.default_strategy) (p : Ast.program) : Ast.program =
  let annotate_func (f : Ast.func) =
    let eligible =
      (match strategy.Pollpoint.only_funcs with
      | Some names -> List.mem f.Ast.f_name names
      | None -> true)
      && (strategy.Pollpoint.hot_threshold = 0
         || weight f.Ast.f_body >= strategy.Pollpoint.hot_threshold / 4)
    in
    if not eligible then f
    else
      let counter = ref 0 in
      let body =
        List.map (annotate_stmt strategy f.Ast.f_name counter 0) f.Ast.f_body
      in
      let body =
        if strategy.Pollpoint.fn_entries then
          poll (Printf.sprintf "auto_%s_entry" f.Ast.f_name) :: body
        else body
      in
      { f with Ast.f_body = body }
  in
  { p with Ast.funcs = List.map annotate_func p.Ast.funcs }

(** Annotated source text for [src]: the paper's migratable format,
    printable and re-parsable. *)
let source ?(strategy = Pollpoint.default_strategy) (src : string) : string =
  let p = Parser.parse_string src in
  Pretty.program_to_string (program ~strategy p)
