lib/msr/ti.mli: Format Hashtbl Hpm_arch Hpm_ir Hpm_lang Layout Ty
