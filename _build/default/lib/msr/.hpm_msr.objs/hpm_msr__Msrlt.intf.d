lib/msr/msrlt.mli: Hashtbl Hpm_machine Mem
