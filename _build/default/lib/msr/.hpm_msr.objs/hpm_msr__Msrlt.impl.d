lib/msr/msrlt.ml: Array Hashtbl Hpm_machine Mem Printf
