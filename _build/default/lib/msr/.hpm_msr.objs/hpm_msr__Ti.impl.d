lib/msr/ti.ml: Array Fmt Hashtbl Hpm_arch Hpm_ir Hpm_lang Ir Layout List Printf String Ty
