lib/msr/graph.ml: Array Buffer Fmt Hashtbl Hpm_lang Hpm_machine Int64 Interp Layout List Mem Option Printf String Ty
