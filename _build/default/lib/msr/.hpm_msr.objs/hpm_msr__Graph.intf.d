lib/msr/graph.mli: Format Hpm_lang Hpm_machine Interp Mem Ty
