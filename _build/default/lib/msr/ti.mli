(** The Type Information (TI) table: one entry per type that can describe
    a memory block or scalar element, numbered deterministically from the
    program text so both endpoints of a migration agree on type ids.
    Carries each type's flattened element view and per-architecture
    element-table caches — the moral equivalent of the paper's generated
    per-type saving/restoring functions. *)

open Hpm_lang

type entry = {
  tid : int;
  ty : Ty.t;
  key : string;                     (** canonical name, e.g. "struct node*" *)
  elem_kinds : Ty.scalar_kind list; (** flattened element kinds *)
  has_pointer : bool;               (** needs the traversing save path *)
}

type t = {
  tenv : Ty.tenv;
  entries : entry array;
  by_key : (string, entry) Hashtbl.t;
  elems_cache : (string * int, Layout.elems) Hashtbl.t;
}

(** Build the table for a lowered program: scalars first (stable primitive
    ids), then struct definitions, globals, string-literal arrays, and
    function-local/malloc types in program order. *)
val build : Hpm_ir.Ir.prog -> t

val entry_count : t -> int
val find : t -> Ty.t -> entry option

(** @raise Invalid_argument when the type has no entry. *)
val find_exn : t -> Ty.t -> entry

(** @raise Invalid_argument on out-of-range ids (corrupted streams). *)
val by_tid : t -> int -> entry

(** Cached ordinal↔byte element table of an entry under an architecture. *)
val elems : t -> Hpm_arch.Arch.t -> entry -> Layout.elems

(** Wire encoding of a block type as (tid, count): arrays whose element
    type is in the table travel as (element tid, length), so heap blocks
    of runtime-dependent length need no entry of their own. *)
val encode_block_ty : t -> Ty.t -> int * int

val decode_block_ty : t -> int * int -> Ty.t
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
