(** The Memory Space Representation graph, G = (V, E) — the paper's §3
    logical model, materialized for inspection: vertices are memory
    blocks, edges run from non-null pointer elements to the block and
    element they reference.  Collection never builds this (it is a fused
    DFS); tests, the Figure-1 example, and `migratec graph` do. *)

open Hpm_lang
open Hpm_machine

type vertex = {
  v_bid : int;          (** runtime block id *)
  v_ident : Mem.ident;
  v_ty : Ty.t;
  v_size : int;
  v_seg : Mem.seg;
}

type edge = {
  e_src : int;      (** source block id *)
  e_src_ord : int;  (** ordinal of the pointer element in the source *)
  e_dst : int;      (** destination block id *)
  e_dst_ord : int;  (** ordinal of the referenced element (count = one past
                        the end; -1 marks a misaligned interior address) *)
}

type t = { vertices : vertex list; edges : edge list }

val vertex_count : t -> int
val edge_count : t -> int

(** Graph over the whole live memory of a (typically suspended) process.
    Dangling/wild pointer values contribute no edge — the inspection view
    is tolerant where collection would fault. *)
val snapshot : Interp.t -> t

(** Restrict to blocks reachable from the roots (globals, string
    literals, live frame locals): the sub-graph a migration moves. *)
val reachable_from_roots : Interp.t -> t -> t

(** Drop compiler temporaries ([$]-prefixed locals): the source-level
    view the paper's Figure 1 draws. *)
val user_only : t -> t

(** Σ Dᵢ of §4.2: total bytes over the vertices. *)
val total_bytes : t -> int

val pp_vertex : Format.formatter -> vertex -> unit
val pp : Format.formatter -> t -> unit

(** Graphviz rendering, clustered by segment like Figure 1. *)
val to_dot : t -> string
