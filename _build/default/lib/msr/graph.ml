(** The Memory Space Representation graph, G = (V, E).

    A snapshot of a suspended process's memory as the paper's §3 logical
    model: vertices are memory blocks, edges run from each non-null
    pointer element to the block (and element) it references.  The
    migration machinery itself never materializes this graph — collection
    is a fused depth-first traversal — but the explicit structure is what
    tests, the Fig. 1 example, and the graph statistics in the benchmarks
    inspect, and [to_dot] renders it for humans. *)

open Hpm_lang
open Hpm_machine

type vertex = {
  v_bid : int;              (** runtime block id *)
  v_ident : Mem.ident;
  v_ty : Ty.t;
  v_size : int;
  v_seg : Mem.seg;
}

type edge = {
  e_src : int;              (** source block id *)
  e_src_ord : int;          (** ordinal of the pointer element in the source *)
  e_dst : int;              (** destination block id *)
  e_dst_ord : int;          (** ordinal of the referenced element *)
}

type t = { vertices : vertex list; edges : edge list }

let vertex_count g = List.length g.vertices
let edge_count g = List.length g.edges

let vertex_of_block (b : Mem.block) =
  { v_bid = b.Mem.bid; v_ident = b.Mem.ident; v_ty = b.Mem.ty; v_size = b.Mem.size; v_seg = b.Mem.seg }

(** Build the MSR graph of the whole live memory of [interp]'s process:
    every live block is a vertex; every well-formed non-null pointer
    element yields an edge.  Dangling and wild pointer values contribute
    no edge (collection would fault on them; the graph view is used for
    inspection and is deliberately tolerant). *)
let snapshot (interp : Interp.t) : t =
  let mem = interp.Interp.mem in
  let layout = mem.Mem.layout in
  let blocks = Mem.live_blocks mem in
  let vertices = List.map vertex_of_block blocks in
  let edges = ref [] in
  List.iter
    (fun (b : Mem.block) ->
      let elems = Layout.elems layout b.Mem.ty in
      let n = Layout.elem_count elems in
      for ord = 0 to n - 1 do
        match Layout.kind_of_ordinal elems ord with
        | Ty.KPtr _ -> (
            let off = Layout.byte_of_ordinal elems ord in
            match Mem.load_scalar mem b off (Layout.kind_of_ordinal elems ord) with
            | Mem.Vptr 0L -> ()
            | Mem.Vptr addr -> (
                match Mem.find_block_opt mem addr with
                | None -> () (* dangling: no edge *)
                | Some dst ->
                    let doff = Int64.to_int (Int64.sub addr dst.Mem.base) in
                    let delems = Layout.elems layout dst.Mem.ty in
                    let dord =
                      if doff = dst.Mem.size then Layout.elem_count delems
                      else
                        match Layout.ordinal_of_byte delems doff with
                        | Some o -> o
                        | None -> -1 (* misaligned interior pointer *)
                    in
                    edges :=
                      { e_src = b.Mem.bid; e_src_ord = ord; e_dst = dst.Mem.bid; e_dst_ord = dord }
                      :: !edges)
            | _ -> ())
        | Ty.KFunc _ | _ -> ()
      done)
    blocks;
  { vertices; edges = List.rev !edges }

(** Restrict to the component reachable from roots: globals, string
    literals, and the locals of live frames.  This is the sub-graph a
    migration actually has to move. *)
let reachable_from_roots (interp : Interp.t) (g : t) : t =
  let adj = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Hashtbl.replace adj e.e_src (e.e_dst :: (Option.value ~default:[] (Hashtbl.find_opt adj e.e_src))))
    g.edges;
  let roots = ref [] in
  Hashtbl.iter (fun _ (b : Mem.block) -> roots := b.Mem.bid :: !roots) interp.Interp.globals;
  Array.iter (fun (b : Mem.block) -> roots := b.Mem.bid :: !roots) interp.Interp.string_blocks;
  List.iter
    (fun (fr : Interp.frame) ->
      Hashtbl.iter (fun _ (b : Mem.block) -> roots := b.Mem.bid :: !roots) fr.Interp.locals)
    interp.Interp.stack;
  let mark = Hashtbl.create 64 in
  let rec dfs v =
    if not (Hashtbl.mem mark v) then (
      Hashtbl.replace mark v ();
      List.iter dfs (Option.value ~default:[] (Hashtbl.find_opt adj v)))
  in
  List.iter dfs !roots;
  {
    vertices = List.filter (fun v -> Hashtbl.mem mark v.v_bid) g.vertices;
    edges = List.filter (fun e -> Hashtbl.mem mark e.e_src) g.edges;
  }

(** Drop compiler temporaries ([$]-prefixed locals) and their edges: the
    paper's Figure 1 draws source-level variables only. *)
let user_only (g : t) : t =
  let is_temp v =
    match v.v_ident with
    | Mem.Ilocal (_, name) -> String.length name > 0 && name.[0] = '$'
    | _ -> false
  in
  let dropped = Hashtbl.create 8 in
  List.iter (fun v -> if is_temp v then Hashtbl.replace dropped v.v_bid ()) g.vertices;
  {
    vertices = List.filter (fun v -> not (Hashtbl.mem dropped v.v_bid)) g.vertices;
    edges =
      List.filter
        (fun e -> not (Hashtbl.mem dropped e.e_src || Hashtbl.mem dropped e.e_dst))
        g.edges;
  }

(** Total bytes over the graph's vertices — the Σ Dᵢ of §4.2. *)
let total_bytes g = List.fold_left (fun acc v -> acc + v.v_size) 0 g.vertices

let pp_vertex ppf v =
  Fmt.pf ppf "v%d(%s: %s, %dB, %s)" v.v_bid
    (Fmt.str "%a" Mem.pp_ident v.v_ident)
    (Ty.to_string v.v_ty) v.v_size (Mem.seg_to_string v.v_seg)

let pp ppf g =
  Fmt.pf ppf "MSR graph: %d vertices, %d edges@." (vertex_count g) (edge_count g);
  List.iter (fun v -> Fmt.pf ppf "  %a@." pp_vertex v) g.vertices;
  List.iter
    (fun e -> Fmt.pf ppf "  v%d[%d] -> v%d[%d]@." e.e_src e.e_src_ord e.e_dst e.e_dst_ord)
    g.edges

(** Graphviz rendering, grouping vertices by segment like the paper's
    Figure 1. *)
let to_dot g : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph msr {\n  rankdir=LR;\n  node [shape=box];\n";
  let seg_cluster seg label =
    let vs = List.filter (fun v -> v.v_seg = seg) g.vertices in
    if vs <> [] then (
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_%s {\n    label=\"%s\";\n" label label);
      List.iter
        (fun v ->
          Buffer.add_string buf
            (Printf.sprintf "    v%d [label=\"v%d %s\\n%s\"];\n" v.v_bid v.v_bid
               (String.concat ""
                  (String.split_on_char '"' (Fmt.str "%a" Mem.pp_ident v.v_ident)))
               (Ty.to_string v.v_ty)))
        vs;
      Buffer.add_string buf "  }\n")
  in
  seg_cluster Mem.Global "global";
  seg_cluster Mem.Stack "stack";
  seg_cluster Mem.Heap "heap";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  v%d -> v%d [label=\"%d:%d\"];\n" e.e_src e.e_dst e.e_src_ord
           e.e_dst_ord))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
