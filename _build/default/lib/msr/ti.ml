(** The Type Information (TI) table.

    One entry per type that can describe a memory block or a scalar
    element in the program: struct definitions, every global/local/heap
    block type, pointer and array types reachable from those.  The table
    is built *deterministically from the program text alone*, so the
    source and destination processes — which were generated from the same
    pre-distributed migratable source — assign identical type ids and can
    name types across the wire by index.

    Each entry carries the type, its flattened scalar-element view, and a
    per-architecture cache of {!Hpm_lang.Layout.elems} (ordinal ↔ byte
    offset maps).  The paper's per-type "memory block saving and restoring
    functions" correspond to {!Hpm_core.Collect}/[Restore] walking these
    element tables; building them here once per (type, arch) is the moral
    equivalent of generating the functions at compile time. *)

open Hpm_lang
open Hpm_ir

type entry = {
  tid : int;
  ty : Ty.t;
  key : string;                    (** canonical name, e.g. "struct node*" *)
  elem_kinds : Ty.scalar_kind list; (** flattened element kinds *)
  has_pointer : bool;              (** needs the traversing save path *)
}

type t = {
  tenv : Ty.tenv;
  entries : entry array;
  by_key : (string, entry) Hashtbl.t;
  (* (arch name, tid) -> elems cache *)
  elems_cache : (string * int, Layout.elems) Hashtbl.t;
}

let entry_count t = Array.length t.entries

let find t (ty : Ty.t) : entry option = Hashtbl.find_opt t.by_key (Ty.to_string ty)

let find_exn t ty =
  match find t ty with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "Ti.find_exn: type %s is not in the TI table" (Ty.to_string ty))

let by_tid t tid =
  if tid < 0 || tid >= Array.length t.entries then
    invalid_arg (Printf.sprintf "Ti.by_tid: invalid type id %d" tid)
  else t.entries.(tid)

(** Element table of [ty] under [arch]'s layout, cached. *)
let elems t (arch : Hpm_arch.Arch.t) (entry : entry) : Layout.elems =
  let key = (arch.Hpm_arch.Arch.name, entry.tid) in
  match Hashtbl.find_opt t.elems_cache key with
  | Some e -> e
  | None ->
      let layout = Layout.make arch t.tenv in
      let e = Layout.elems layout entry.ty in
      Hashtbl.add t.elems_cache key e;
      e

(* Deterministic enumeration: collect types in program order. *)
let collect_types (prog : Ir.prog) : Ty.t list =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let rec add (ty : Ty.t) =
    match ty with
    | Ty.Void | Ty.Func _ -> ()
    | _ ->
        let key = Ty.to_string ty in
        if not (Hashtbl.mem seen key) then (
          Hashtbl.add seen key ();
          out := ty :: !out;
          (* reachable component types *)
          match ty with
          | Ty.Ptr inner -> add inner
          | Ty.Array (inner, _) -> add inner
          | Ty.Struct name ->
              let def = Ty.find_struct_exn prog.Ir.tenv name in
              List.iter (fun (f : Ty.field) -> add f.Ty.fld_ty) def.Ty.s_fields
          | _ -> ())
  in
  (* scalars first so primitive tids are stable across programs *)
  List.iter add [ Ty.Char; Ty.Short; Ty.Int; Ty.Long; Ty.Float; Ty.Double ];
  (* struct definitions in declaration order *)
  List.iter (fun (name, _) -> add (Ty.Struct name)) prog.Ir.tenv.Ty.structs;
  (* globals *)
  List.iter (fun (_, ty, _) -> add ty) prog.Ir.globals;
  (* string literals *)
  Array.iter (fun s -> add (Ty.Array (Ty.Char, String.length s + 1))) prog.Ir.strings;
  (* functions: params, locals, and malloc element types in body order *)
  List.iter
    (fun (f : Ir.func) ->
      List.iter (fun (_, ty) -> add ty) f.Ir.params;
      List.iter (fun (_, ty) -> add ty) f.Ir.locals;
      Array.iter
        (fun (b : Ir.block) ->
          Array.iter
            (fun ins -> match ins with Ir.Imalloc (_, ty, _) -> add ty | _ -> ())
            b.Ir.instrs)
        f.Ir.blocks)
    prog.Ir.funcs;
  List.rev !out

let build (prog : Ir.prog) : t =
  let tys = collect_types prog in
  let entries =
    Array.of_list
      (List.mapi
         (fun tid ty ->
           {
             tid;
             ty;
             key = Ty.to_string ty;
             elem_kinds = Ty.flatten prog.Ir.tenv ty;
             has_pointer = Ty.contains_pointer prog.Ir.tenv ty;
           })
         tys)
  in
  let by_key = Hashtbl.create (Array.length entries) in
  Array.iter (fun e -> Hashtbl.replace by_key e.key e) entries;
  { tenv = prog.Ir.tenv; entries; by_key; elems_cache = Hashtbl.create 32 }

(** Wire encoding of a block type: (tid, count).  Fixed-size arrays whose
    element type is in the table are sent as (element tid, length) so heap
    blocks of runtime-dependent length need no table entry of their own. *)
let encode_block_ty t (ty : Ty.t) : int * int =
  match ty with
  | Ty.Array (elem, n) when find t elem <> None -> ((find_exn t elem).tid, n)
  | _ -> ((find_exn t ty).tid, 1)

let decode_block_ty t (tid, count) : Ty.t =
  let e = by_tid t tid in
  if count = 1 then e.ty else Ty.Array (e.ty, count)

let pp_entry ppf e =
  Fmt.pf ppf "#%d %s (%d elems%s)" e.tid e.key (List.length e.elem_kinds)
    (if e.has_pointer then ", pointers" else "")

let pp ppf t =
  Array.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) t.entries
