lib/sched/sched.ml: Arch Buffer Collect Fmt Hpm_arch Hpm_core Hpm_machine Hpm_net Interp List Mem Migration Netsim Restore String
