(** Byte-order primitives: fixed-width integer and IEEE-754 accessors over
    [Bytes.t] in an explicit byte order.  The bottom of the heterogeneity
    stack — simulated machine memory uses these with the machine's own
    order, the migration stream with {!Big} (XDR canonical). *)

type order =
  | Big     (** most-significant byte first (SPARC, XDR canonical) *)
  | Little  (** least-significant byte first (MIPS-LE, x86) *)

val pp_order : Format.formatter -> order -> unit
val order_to_string : order -> string
val order_of_string : string -> order option

val get_u8 : Bytes.t -> int -> int
val set_u8 : Bytes.t -> int -> int -> unit
val get_u16 : order -> Bytes.t -> int -> int
val set_u16 : order -> Bytes.t -> int -> int -> unit
val get_i32 : order -> Bytes.t -> int -> int32
val set_i32 : order -> Bytes.t -> int -> int32 -> unit
val get_i64 : order -> Bytes.t -> int -> int64
val set_i64 : order -> Bytes.t -> int -> int64 -> unit

(** [get_uint order width b off] reads an unsigned integer of [width]
    bytes (1..8) as a non-negative [Int64.t].
    @raise Invalid_argument outside 1..8. *)
val get_uint : order -> int -> Bytes.t -> int -> int64

(** [set_uint order width b off v] writes the low [width] bytes of [v];
    higher bytes are silently truncated, as a narrowing store does. *)
val set_uint : order -> int -> Bytes.t -> int -> int64 -> unit

(** [sign_extend width v]: interpret the low [width] bytes of [v] as
    signed two's complement and extend to 64 bits. *)
val sign_extend : int -> int64 -> int64

(** [truncate width v]: keep only the low [width] bytes (zero-fill). *)
val truncate : int -> int64 -> int64

(** Signed read: {!get_uint} followed by {!sign_extend}. *)
val get_int : order -> int -> Bytes.t -> int -> int64

val set_int : order -> int -> Bytes.t -> int -> int64 -> unit

(** IEEE-754 bit patterns stored in the given byte order.  Single
    precision round-trips through the OCaml [float] detour bit-exactly
    for all non-NaN values. *)
val get_f32 : order -> Bytes.t -> int -> float

val set_f32 : order -> Bytes.t -> int -> float -> unit
val get_f64 : order -> Bytes.t -> int -> float
val set_f64 : order -> Bytes.t -> int -> float -> unit

(** Reverse [len] bytes in place (test helper: LE = byte-swapped BE). *)
val swap_bytes : Bytes.t -> int -> int -> unit
