(** Byte-order primitives.

    Low-level reads and writes of fixed-width integers in an explicit byte
    order, over [Bytes.t] buffers.  This is the bottom of the heterogeneity
    stack: every scalar stored in a simulated machine's memory goes through
    these functions with the machine's own byte order, and every scalar in
    the machine-independent migration stream goes through them with
    {!Big} (the XDR canonical order). *)

type order =
  | Big     (** most-significant byte first (SPARC, XDR canonical) *)
  | Little  (** least-significant byte first (MIPS-LE, x86) *)

let pp_order ppf = function
  | Big -> Fmt.string ppf "big-endian"
  | Little -> Fmt.string ppf "little-endian"

let order_to_string = function Big -> "big" | Little -> "little"

let order_of_string = function
  | "big" -> Some Big
  | "little" -> Some Little
  | _ -> None

(* All multi-byte accessors take an explicit [order]; widths not covered by
   the [Bytes] stdlib accessors (e.g. arbitrary-width reads used for
   pointer-size-agnostic loads) are composed from byte loops. *)

let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let get_u16 order b off =
  match order with
  | Big -> Bytes.get_uint16_be b off
  | Little -> Bytes.get_uint16_le b off

let set_u16 order b off v =
  match order with
  | Big -> Bytes.set_uint16_be b off v
  | Little -> Bytes.set_uint16_le b off v

let get_i32 order b off =
  match order with
  | Big -> Bytes.get_int32_be b off
  | Little -> Bytes.get_int32_le b off

let set_i32 order b off v =
  match order with
  | Big -> Bytes.set_int32_be b off v
  | Little -> Bytes.set_int32_le b off v

let get_i64 order b off =
  match order with
  | Big -> Bytes.get_int64_be b off
  | Little -> Bytes.get_int64_le b off

let set_i64 order b off v =
  match order with
  | Big -> Bytes.set_int64_be b off v
  | Little -> Bytes.set_int64_le b off v

(** [get_uint order width b off] reads an unsigned integer of [width] bytes
    (1..8) as a non-negative [Int64.t].  Widths above 8 are rejected. *)
let get_uint order width b off =
  if width < 1 || width > 8 then
    invalid_arg (Printf.sprintf "Endian.get_uint: width %d" width);
  let v = ref 0L in
  (match order with
  | Big ->
      for i = 0 to width - 1 do
        v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 b (off + i)))
      done
  | Little ->
      for i = width - 1 downto 0 do
        v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 b (off + i)))
      done);
  !v

(** [set_uint order width b off v] writes the low [width] bytes of [v].
    High-order bits beyond [width] bytes are silently truncated, exactly as a
    narrowing store does on real hardware. *)
let set_uint order width b off v =
  if width < 1 || width > 8 then
    invalid_arg (Printf.sprintf "Endian.set_uint: width %d" width);
  (match order with
  | Big ->
      for i = 0 to width - 1 do
        let shift = 8 * (width - 1 - i) in
        set_u8 b (off + i) (Int64.to_int (Int64.shift_right_logical v shift))
      done
  | Little ->
      for i = 0 to width - 1 do
        let shift = 8 * i in
        set_u8 b (off + i) (Int64.to_int (Int64.shift_right_logical v shift))
      done)

(** [sign_extend width v] interprets the low [width] bytes of [v] as a signed
    two's-complement value and extends the sign to 64 bits. *)
let sign_extend width v =
  if width >= 8 then v
  else
    let shift = 64 - (8 * width) in
    Int64.shift_right (Int64.shift_left v shift) shift

(** [truncate width v] keeps only the low [width] bytes of [v] (zero-fill). *)
let truncate width v =
  if width >= 8 then v
  else
    let shift = 64 - (8 * width) in
    Int64.shift_right_logical (Int64.shift_left v shift) shift

let get_int order width b off = sign_extend width (get_uint order width b off)

let set_int = set_uint

(** IEEE-754 accessors: the bit pattern is stored in the given byte order.
    Both single and double precision are modelled faithfully; a [float]
    round-tripped through [get_f32]/[set_f32] loses precision exactly as a C
    [float] does. *)

let get_f32 order b off = Int32.float_of_bits (get_i32 order b off)
let set_f32 order b off v = set_i32 order b off (Int32.bits_of_float v)
let get_f64 order b off = Int64.float_of_bits (get_i64 order b off)
let set_f64 order b off v = set_i64 order b off (Int64.bits_of_float v)

(** [swap_bytes buf off len] reverses [len] bytes in place — used by tests to
    cross-check that a little-endian store equals a byte-swapped big-endian
    store. *)
let swap_bytes buf off len =
  let i = ref off and j = ref (off + len - 1) in
  while !i < !j do
    let t = Bytes.get buf !i in
    Bytes.set buf !i (Bytes.get buf !j);
    Bytes.set buf !j t;
    incr i;
    decr j
  done
