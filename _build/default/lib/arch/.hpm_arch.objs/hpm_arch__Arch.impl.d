lib/arch/arch.ml: Endian Fmt List Printf String
