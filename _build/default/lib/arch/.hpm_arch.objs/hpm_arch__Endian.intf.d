lib/arch/endian.mli: Bytes Format
