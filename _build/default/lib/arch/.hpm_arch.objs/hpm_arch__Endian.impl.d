lib/arch/endian.ml: Bytes Char Fmt Int32 Int64 Printf
