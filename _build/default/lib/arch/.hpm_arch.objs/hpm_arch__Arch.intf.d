lib/arch/arch.mli: Endian Format
