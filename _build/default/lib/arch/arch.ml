(** Simulated architecture descriptors.

    An {!t} captures everything about a target machine that affects the
    in-memory representation of a process: byte order, the width of each C
    scalar type, alignment rules, and where the global / stack / heap
    segments live in the (simulated) address space.

    The descriptors below model the machines of the paper's evaluation —
    a DEC 5000/120 (little-endian MIPS, ILP32) and Sun SPARCstation 20 /
    Ultra 5 (big-endian, ILP32) — plus two modern profiles (x86-64 LP64 and
    i386 with 4-byte double alignment) that exercise pointer-width and
    padding heterogeneity beyond what the paper had available. *)

type t = {
  name : string;  (** unique short name, used in streams and CLIs *)
  endian : Endian.order;
  short_size : int;
  int_size : int;
  long_size : int;
  ptr_size : int;
  float_size : int;
  double_size : int;
  (* Alignment of a scalar may be smaller than its size (i386 aligns
     [double] to 4).  [align_of_size] caps alignment at [max_align]. *)
  double_align : int;
  long_align : int;
  max_align : int;
  (* Segment base addresses.  They only need to be disjoint and nonzero;
     values echo classic Unix layouts (text low, stack high). *)
  global_base : int64;
  heap_base : int64;
  stack_base : int64;
  (* Relative execution speed, used by the scheduler simulation to model
     heterogeneous node performance (instructions per simulated second). *)
  speed : float;
}

let pp ppf a =
  Fmt.pf ppf "%s(%a, int=%d, long=%d, ptr=%d)" a.name Endian.pp_order a.endian
    a.int_size a.long_size a.ptr_size

(** DEC 5000/120 running Ultrix: MIPS R3000 in little-endian mode, ILP32.
    The migration *source* machine of the paper's heterogeneous runs. *)
let dec5000 = {
  name = "dec5000";
  endian = Endian.Little;
  short_size = 2; int_size = 4; long_size = 4; ptr_size = 4;
  float_size = 4; double_size = 8;
  double_align = 8; long_align = 4; max_align = 8;
  global_base = 0x0040_0000L;
  heap_base = 0x1000_0000L;
  stack_base = 0x7fff_0000L;
  speed = 0.25;
}

(** Sun SPARCstation 20 running Solaris 2.5: big-endian, ILP32.
    The migration *destination* machine of the paper's heterogeneous runs. *)
let sparc20 = {
  name = "sparc20";
  endian = Endian.Big;
  short_size = 2; int_size = 4; long_size = 4; ptr_size = 4;
  float_size = 4; double_size = 8;
  double_align = 8; long_align = 4; max_align = 8;
  global_base = 0x0002_0000L;
  heap_base = 0x2000_0000L;
  stack_base = 0xeffe_0000L;
  speed = 0.35;
}

(** Sun Ultra 5: the homogeneous pair of Table 1 / Figure 2 (big-endian,
    ILP32 user processes under Solaris). *)
let ultra5 = {
  sparc20 with
  name = "ultra5";
  speed = 1.0;
}

(** Modern 64-bit little-endian profile (LP64): exercises pointer- and
    long-width translation, which the paper lists as future heterogeneity. *)
let x86_64 = {
  name = "x86_64";
  endian = Endian.Little;
  short_size = 2; int_size = 4; long_size = 8; ptr_size = 8;
  float_size = 4; double_size = 8;
  double_align = 8; long_align = 8; max_align = 16;
  global_base = 0x0060_0000L;
  heap_base = 0x0000_7f00_0000_0000L;
  stack_base = 0x0000_7fff_ff00_0000L;
  speed = 40.0;
}

(** Classic i386 System V ABI: little-endian ILP32 with [double] aligned to
    only 4 bytes — a struct-padding profile distinct from all the RISC
    machines, so layout translation is nontrivial even between two
    little-endian 32-bit arches. *)
let i386 = {
  name = "i386";
  endian = Endian.Little;
  short_size = 2; int_size = 4; long_size = 4; ptr_size = 4;
  float_size = 4; double_size = 8;
  double_align = 4; long_align = 4; max_align = 4;
  global_base = 0x0804_8000L;
  heap_base = 0x0900_0000L;
  stack_base = 0xbfff_0000L;
  speed = 8.0;
}

let all = [ dec5000; sparc20; ultra5; x86_64; i386 ]

let by_name name = List.find_opt (fun a -> String.equal a.name name) all

let by_name_exn name =
  match by_name name with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "Arch.by_name_exn: unknown architecture %S (known: %s)"
           name
           (String.concat ", " (List.map (fun a -> a.name) all)))

(** [heterogeneous a b] is true when migrating between [a] and [b] requires
    nontrivial data translation (differing byte order or any scalar width
    or alignment difference). *)
let heterogeneous a b =
  a.endian <> b.endian || a.int_size <> b.int_size || a.long_size <> b.long_size
  || a.ptr_size <> b.ptr_size || a.double_align <> b.double_align
