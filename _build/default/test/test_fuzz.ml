(** Differential fuzzing.

    1. Random [int] expressions are rendered to Mini-C, executed by the
       interpreter on several architectures, and compared against an
       independent OCaml reference evaluator implementing C's 32-bit
       wrap-around semantics.  Any divergence is an interpreter or
       lowering bug.

    2. Random structured programs (assignments, if/while/for/switch over a
       small variable pool) are run plain and under migration at random
       poll events across architecture pairs.  The oracle is
       migrate-anywhere equivalence — no reference semantics needed,
       determinism plus the migration machinery check each other. *)

open Util

(* ---------- 1. expression differential ---------- *)

(* Expression skeletons: a closed description rendered both to Mini-C text
   and to an Int32 reference value. *)
type ex =
  | Num of int32
  | Bin of string * ex * ex
  | Neg of ex
  | Bnot of ex
  | Cond of ex * ex * ex

let rec render = function
  | Num n ->
      (* negative literals need parens to survive re-parsing as unary minus *)
      if Int32.compare n 0l < 0 then Printf.sprintf "(%ld)" n else Int32.to_string n
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (render a) op (render b)
  | Neg a -> Printf.sprintf "(-%s)" (render a)
  | Bnot a -> Printf.sprintf "(~%s)" (render a)
  | Cond (c, a, b) -> Printf.sprintf "(%s ? %s : %s)" (render c) (render a) (render b)

let rec eval = function
  | Num n -> n
  | Neg a -> Int32.neg (eval a)
  | Bnot a -> Int32.lognot (eval a)
  | Cond (c, a, b) -> if eval c <> 0l then eval a else eval b
  | Bin (op, a, b) -> (
      let x = eval a and y = eval b in
      let bool v = if v then 1l else 0l in
      match op with
      | "+" -> Int32.add x y
      | "-" -> Int32.sub x y
      | "*" -> Int32.mul x y
      | "/" -> if y = 0l then 1l (* generator avoids this *) else Int32.div x y
      | "%" -> if y = 0l then 1l else Int32.rem x y
      | "&" -> Int32.logand x y
      | "|" -> Int32.logor x y
      | "^" -> Int32.logxor x y
      | "<<" -> Int32.shift_left x (Int32.to_int y land 31)
      | ">>" -> Int32.shift_right x (Int32.to_int y land 31)
      | "==" -> bool (Int32.equal x y)
      | "!=" -> bool (not (Int32.equal x y))
      | "<" -> bool (Int32.compare x y < 0)
      | "<=" -> bool (Int32.compare x y <= 0)
      | ">" -> bool (Int32.compare x y > 0)
      | ">=" -> bool (Int32.compare x y >= 0)
      | "&&" -> bool (x <> 0l && y <> 0l)
      | "||" -> bool (x <> 0l || y <> 0l)
      | _ -> assert false)

(* C's shift semantics used above: count masked to 0..31 (the interpreter
   masks to 63, but the generator keeps counts in 0..31 so both agree) *)

let gen_ex : ex QCheck.Gen.t =
  let open QCheck.Gen in
  let num = map (fun n -> Num (Int32.of_int n)) (int_range (-1000) 1000) in
  let ops = [ "+"; "-"; "*"; "&"; "|"; "^"; "=="; "!="; "<"; "<="; ">"; ">="; "&&"; "||" ] in
  fix
    (fun self depth ->
      if depth = 0 then num
      else
        frequency
          [
            (2, num);
            ( 6,
              map3
                (fun op a b -> Bin (op, a, b))
                (oneofl ops) (self (depth - 1)) (self (depth - 1)) );
            (* division by a guaranteed-nonzero value *)
            ( 1,
              map2
                (fun a b -> Bin ("/", a, Bin ("|", b, Num 1l)))
                (self (depth - 1)) (self (depth - 1)) );
            ( 1,
              map2
                (fun a b -> Bin ("%", a, Bin ("|", b, Num 1l)))
                (self (depth - 1)) (self (depth - 1)) );
            (* shift by a small constant *)
            ( 1,
              map2 (fun a k -> Bin ("<<", a, Num (Int32.of_int k))) (self (depth - 1))
                (int_range 0 31) );
            ( 1,
              map2 (fun a k -> Bin (">>", a, Num (Int32.of_int k))) (self (depth - 1))
                (int_range 0 31) );
            (1, map (fun a -> Neg a) (self (depth - 1)));
            (1, map (fun a -> Bnot a) (self (depth - 1)));
            ( 1,
              map3 (fun c a b -> Cond (c, a, b)) (self (depth - 1)) (self (depth - 1))
                (self (depth - 1)) );
          ])
    4

(* C's INT_MIN/-1 and INT_MIN%-1 are UB; our interpreter computes them in
   64-bit then wraps, while Int32.div overflows — exclude those cases. *)
let rec has_div_overflow = function
  | Num _ -> false
  | Neg a | Bnot a -> has_div_overflow a
  | Cond (a, b, c) -> has_div_overflow a || has_div_overflow b || has_div_overflow c
  | Bin (op, a, b) ->
      ((op = "/" || op = "%") && Int32.equal (eval a) Int32.min_int
       && Int32.equal (eval b) (-1l))
      || has_div_overflow a || has_div_overflow b

let prop_expr_differential =
  qt ~count:150 "random int expressions match the Int32 reference"
    (QCheck.make ~print:render gen_ex)
    (fun e ->
      QCheck.assume (not (has_div_overflow e));
      let src = Printf.sprintf "int main() { print_int(%s); return 0; }" (render e) in
      let expected = Int32.to_string (eval e) ^ "\n" in
      List.for_all
        (fun arch -> String.equal expected (run_on ~arch src))
        [ Hpm_arch.Arch.dec5000; Hpm_arch.Arch.sparc20; Hpm_arch.Arch.x86_64 ])

(* ---------- 2. random structured programs ---------- *)

(* A tiny program generator over int variables v0..v4: straight-line
   assignments, bounded loops, conditionals, and switches.  Every loop is
   bounded by construction (fixed iteration counts), so all programs
   terminate. *)
type prog_stmt =
  | Asgn of int * ex_v
  | If of ex_v * prog_stmt list * prog_stmt list
  | ForN of int * int * prog_stmt list  (* level, count: repeat body, counter l<level> *)
  | Switch of ex_v * prog_stmt list * prog_stmt list * prog_stmt list
  | Print of int

and ex_v = V of int | K of int | Add of ex_v * ex_v | Mul of ex_v * ex_v | Xor of ex_v * ex_v

let rec render_ev = function
  | V i -> Printf.sprintf "v%d" i
  | K n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (render_ev a) (render_ev b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (render_ev a) (render_ev b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (render_ev a) (render_ev b)

let rec render_ps buf indent = function
  | Asgn (i, e) ->
      Buffer.add_string buf
        (Printf.sprintf "%sv%d = %s;\n" indent i (render_ev e))
  | Print i -> Buffer.add_string buf (Printf.sprintf "%sprint_int(v%d);\n" indent i)
  | If (c, a, b) ->
      Buffer.add_string buf (Printf.sprintf "%sif (%s > 0) {\n" indent (render_ev c));
      List.iter (render_ps buf (indent ^ "  ")) a;
      Buffer.add_string buf (Printf.sprintf "%s} else {\n" indent);
      List.iter (render_ps buf (indent ^ "  ")) b;
      Buffer.add_string buf (Printf.sprintf "%s}\n" indent)
  | ForN (level, k, body) ->
      Buffer.add_string buf
        (Printf.sprintf "%sfor (l%d = 0; l%d < %d; l%d++) {\n" indent level level k level);
      List.iter (render_ps buf (indent ^ "  ")) body;
      Buffer.add_string buf (Printf.sprintf "%s}\n" indent)
  | Switch (c, a, b, d) ->
      Buffer.add_string buf
        (Printf.sprintf "%sswitch (%s & 3) {\n" indent (render_ev c));
      Buffer.add_string buf (Printf.sprintf "%s  case 0:\n" indent);
      List.iter (render_ps buf (indent ^ "    ")) a;
      Buffer.add_string buf (Printf.sprintf "%s    break;\n%s  case 1:\n" indent indent);
      List.iter (render_ps buf (indent ^ "    ")) b;
      Buffer.add_string buf (Printf.sprintf "%s  default:\n" indent);
      List.iter (render_ps buf (indent ^ "    ")) d;
      Buffer.add_string buf (Printf.sprintf "%s}\n" indent)

let render_prog stmts =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "int main() {\n  int v0; int v1; int v2; int v3;\n  int l0; int l1; int l2;\n";
  Buffer.add_string buf "  v0 = 1; v1 = 2; v2 = 3; v3 = 4;\n";
  List.iter (render_ps buf "  ") stmts;
  Buffer.add_string buf "  print_int(v0); print_int(v1); print_int(v2); print_int(v3);\n";
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf

let gen_ev : ex_v QCheck.Gen.t =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      if depth = 0 then
        oneof [ map (fun i -> V i) (int_range 0 3); map (fun k -> K k) (int_range (-9) 9) ]
      else
        frequency
          [
            (2, map (fun i -> V i) (int_range 0 3));
            (1, map (fun k -> K k) (int_range (-9) 9));
            (2, map2 (fun a b -> Add (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Mul (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Xor (a, b)) (self (depth - 1)) (self (depth - 1)));
          ])
    2

let gen_prog : prog_stmt list QCheck.Gen.t =
  let open QCheck.Gen in
  let stmt =
    fix
      (fun self depth ->
        let leaf =
          oneof
            [
              map2 (fun i e -> Asgn (i, e)) (int_range 0 3) gen_ev;
              map (fun i -> Print i) (int_range 0 3);
            ]
        in
        if depth = 0 then leaf
        else
          frequency
            [
              (4, leaf);
              ( 1,
                map3 (fun c a b -> If (c, a, b)) gen_ev
                  (list_size (int_range 1 3) (self (depth - 1)))
                  (list_size (int_range 0 2) (self (depth - 1))) );
              ( 1,
                (* the loop counter index is the generator depth, so
                   nested loops never share a counter *)
                map2
                  (fun k body -> ForN (depth, k, body))
                  (int_range 1 6)
                  (list_size (int_range 1 3) (self (depth - 1))) );
              ( 1,
                map3 (fun c a b -> Switch (c, a, b, [ Asgn (0, K 7) ])) gen_ev
                  (list_size (int_range 0 2) (self (depth - 1)))
                  (list_size (int_range 0 2) (self (depth - 1))) );
            ])
      2
  in
  list_size (int_range 2 8) stmt

let prop_random_programs =
  qt ~count:40 "random structured programs migrate anywhere"
    (QCheck.make ~print:render_prog gen_prog)
    (fun stmts ->
      let src = render_prog stmts in
      let m = prepare src in
      let ref_out, _, _ = Hpm_core.Migration.run_plain m Hpm_arch.Arch.ultra5 in
      List.for_all
        (fun (a, b, after) ->
          let o =
            Hpm_core.Migration.run_migrating m ~src_arch:a ~dst_arch:b
              ~after_polls:after ()
          in
          String.equal ref_out o.Hpm_core.Migration.output)
        [
          (Hpm_arch.Arch.dec5000, Hpm_arch.Arch.sparc20, 0);
          (Hpm_arch.Arch.sparc20, Hpm_arch.Arch.x86_64, 3);
          (Hpm_arch.Arch.x86_64, Hpm_arch.Arch.i386, 11);
        ])

let suite = [ prop_expr_differential; prop_random_programs ]
