(** Simulated memory tests: blocks, the address→block search, byte-level
    representation, and faults. *)

open Hpm_arch
open Hpm_lang
open Hpm_machine
open Util

let tenv =
  Ty.add_struct Ty.empty_tenv
    {
      Ty.s_name = "node";
      s_fields =
        [ { Ty.fld_name = "data"; fld_ty = Ty.Float }; { Ty.fld_name = "link"; fld_ty = Ty.Ptr (Ty.Struct "node") } ];
    }

let fresh ?(arch = Arch.sparc20) () = Mem.create arch tenv

let test_alloc_find () =
  let m = fresh () in
  let b1 = Mem.alloc m Mem.Heap Ty.Int Mem.Iheap in
  let b2 = Mem.alloc m Mem.Heap (Ty.Array (Ty.Double, 10)) Mem.Iheap in
  check_bool "distinct bases" true (not (Int64.equal b1.Mem.base b2.Mem.base));
  check_bool "find base" true (Mem.find_block m b1.Mem.base == b1);
  check_bool "find interior" true
    (Mem.find_block m (Int64.add b2.Mem.base 24L) == b2);
  check_int "sizes" 80 b2.Mem.size;
  check_int "live blocks" 2 m.Mem.live_blocks

let fault = function Mem.Fault _ -> true | _ -> false

let test_wild_and_dangling () =
  let m = fresh () in
  let b = Mem.alloc m Mem.Heap Ty.Int Mem.Iheap in
  expect_raise "wild" fault (fun () -> Mem.find_block m 0xdead0000L);
  expect_raise "guard gap is wild" fault (fun () ->
      Mem.find_block m (Int64.add b.Mem.base 4L));
  Mem.free m b;
  expect_raise "dangling" fault (fun () -> Mem.find_block m b.Mem.base);
  expect_raise "double free" fault (fun () -> Mem.free m b)

let test_zero_init () =
  let m = fresh () in
  let b = Mem.alloc m Mem.Stack (Ty.Array (Ty.Int, 4)) (Mem.Ilocal (0, "x")) in
  check_bool "zeroed" true
    (Mem.load_scalar m b 0 Ty.KInt = Mem.Vint 0L
    && Mem.load_scalar m b 12 Ty.KInt = Mem.Vint 0L)

let test_representation_is_endian () =
  (* the same store leaves opposite byte orders on LE and BE machines *)
  let mle = fresh ~arch:Arch.dec5000 () and mbe = fresh ~arch:Arch.sparc20 () in
  let ble = Mem.alloc mle Mem.Heap Ty.Int Mem.Iheap in
  let bbe = Mem.alloc mbe Mem.Heap Ty.Int Mem.Iheap in
  Mem.store_scalar mle ble 0 Ty.KInt (Mem.Vint 0x11223344L);
  Mem.store_scalar mbe bbe 0 Ty.KInt (Mem.Vint 0x11223344L);
  check_int "LE low byte first" 0x44 (Char.code (Bytes.get ble.Mem.bytes 0));
  check_int "BE high byte first" 0x11 (Char.code (Bytes.get bbe.Mem.bytes 0));
  check_bool "same value reads back" true
    (Mem.load_scalar mle ble 0 Ty.KInt = Mem.load_scalar mbe bbe 0 Ty.KInt)

let test_pointer_width () =
  let m32 = fresh ~arch:Arch.sparc20 () and m64 = fresh ~arch:Arch.x86_64 () in
  let t = Ty.Ptr Ty.Int in
  let b32 = Mem.alloc m32 Mem.Heap t Mem.Iheap in
  let b64 = Mem.alloc m64 Mem.Heap t Mem.Iheap in
  check_int "4-byte pointer block" 4 b32.Mem.size;
  check_int "8-byte pointer block" 8 b64.Mem.size

let test_bounds () =
  let m = fresh () in
  let b = Mem.alloc m Mem.Heap (Ty.Array (Ty.Int, 2)) Mem.Iheap in
  expect_raise "load past end" fault (fun () -> Mem.load_scalar m b 8 Ty.KInt);
  expect_raise "store before start" fault (fun () ->
      Mem.store_scalar m b (-4) Ty.KInt (Mem.Vint 0L));
  expect_raise "straddling load" fault (fun () -> Mem.load_scalar m b 6 Ty.KInt)

let test_copy_region () =
  let m = fresh () in
  let a = Mem.alloc m Mem.Heap (Ty.Array (Ty.Int, 4)) Mem.Iheap in
  let b = Mem.alloc m Mem.Heap (Ty.Array (Ty.Int, 4)) Mem.Iheap in
  Mem.store_scalar m a 4 Ty.KInt (Mem.Vint 7L);
  Mem.copy_region m ~dst:b.Mem.base ~src:a.Mem.base ~len:16;
  check_bool "copied" true (Mem.load_scalar m b 4 Ty.KInt = Mem.Vint 7L)

let test_cstring () =
  let m = fresh () in
  let b = Mem.alloc m Mem.Global (Ty.Array (Ty.Char, 6)) (Mem.Istring 0) in
  String.iteri (fun i c -> Bytes.set b.Mem.bytes i c) "hi\000xx";
  check_string "reads to NUL" "hi" (Mem.read_cstring m b.Mem.base);
  check_string "from offset" "i" (Mem.read_cstring m (Int64.add b.Mem.base 1L))

let test_stack_removal () =
  let m = fresh () in
  let sp = Mem.stack_top m in
  let b = Mem.alloc m Mem.Stack Ty.Int (Mem.Ilocal (0, "x")) in
  Mem.remove_block m b;
  Mem.set_stack_top m sp;
  check_int "no live blocks" 0 m.Mem.live_blocks;
  expect_raise "removed is wild" fault (fun () -> Mem.find_block m b.Mem.base);
  (* the address range is reusable *)
  let b2 = Mem.alloc m Mem.Stack Ty.Int (Mem.Ilocal (0, "y")) in
  check_bool "address reused" true (Int64.equal b2.Mem.base b.Mem.base)

let test_search_counted () =
  let m = fresh () in
  let b = Mem.alloc m Mem.Heap Ty.Int Mem.Iheap in
  let before = m.Mem.stats.Mstats.searches in
  ignore (Mem.find_block m b.Mem.base);
  ignore (Mem.find_block m b.Mem.base);
  check_int "searches counted" (before + 2) m.Mem.stats.Mstats.searches

(* property: scalar store/load round trip per kind, arch, offset *)
let prop_scalar_roundtrip =
  qt ~count:300 "scalar store/load roundtrip"
    QCheck.(triple int64 (int_range 0 4) (int_range 0 2))
    (fun (v, arch_i, kind_i) ->
      let arch = List.nth Arch.all arch_i in
      let kind = List.nth [ Ty.KInt; Ty.KLong; Ty.KDouble ] kind_i in
      let m = fresh ~arch () in
      let b = Mem.alloc m Mem.Heap (Ty.Array (Ty.Long, 4)) Mem.Iheap in
      match kind with
      | Ty.KDouble ->
          let f = Int64.float_of_bits v in
          Mem.store_scalar m b 8 kind (Mem.Vfloat f);
          Mem.load_scalar m b 8 kind = Mem.Vfloat f
          || Int64.bits_of_float
               (match Mem.load_scalar m b 8 kind with Mem.Vfloat g -> g | _ -> 0.0)
             = v
      | _ ->
          let width = Layout.scalar_size m.Mem.layout kind in
          Mem.store_scalar m b 8 kind (Mem.Vint v);
          Mem.load_scalar m b 8 kind = Mem.Vint (Hpm_arch.Endian.sign_extend width v))

let suite =
  [
    tc "alloc and find" test_alloc_find;
    tc "wild and dangling pointers fault" test_wild_and_dangling;
    tc "fresh blocks zeroed" test_zero_init;
    tc "representation is endian" test_representation_is_endian;
    tc "pointer width per arch" test_pointer_width;
    tc "bounds checking" test_bounds;
    tc "copy region" test_copy_region;
    tc "C strings" test_cstring;
    tc "stack block removal and reuse" test_stack_removal;
    tc "searches counted" test_search_counted;
    prop_scalar_roundtrip;
  ]
