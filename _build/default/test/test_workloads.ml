(** Workload correctness on every architecture (no migration): the
    workloads themselves must be right before migration claims mean
    anything. *)

open Util

let test_linpack () =
  List.iter
    (fun arch ->
      let out = run_on ~arch (Hpm_workloads.Linpack.source 16) in
      check_bool ("linpack PASS on " ^ arch.Hpm_arch.Arch.name) true
        (contains_sub out "linpack: PASS"))
    arches

let test_bitonic () =
  List.iter
    (fun arch ->
      let out = run_on ~arch (Hpm_workloads.Bitonic.source 300) in
      check_bool ("bitonic PASS on " ^ arch.Hpm_arch.Arch.name) true
        (contains_sub out "bitonic: PASS");
      check_bool "counts all" true (contains_sub out "300"))
    arches

let test_bitonic_duplicates_sorted () =
  (* BSTs with duplicate keys must still produce a sorted traversal *)
  let out = run_on (Hpm_workloads.Bitonic.source 1000) in
  check_bool "large input sorted" true (contains_sub out "bitonic: PASS")

let test_nqueens_table () =
  List.iter
    (fun (n, expected) ->
      check_string
        (Printf.sprintf "queens(%d)" n)
        (string_of_int expected ^ "\n")
        (run_on (Hpm_workloads.Nqueens.source n)))
    (List.filter (fun (n, _) -> n <= 8) Hpm_workloads.Nqueens.solutions)

let test_test_pointer_plain () =
  List.iter
    (fun arch ->
      check_string
        ("test_pointer on " ^ arch.Hpm_arch.Arch.name)
        Hpm_workloads.Test_pointer.expected_output
        (run_on ~arch (Hpm_workloads.Test_pointer.source 0)))
    arches

let test_listops () =
  let out = run_on (Hpm_workloads.Listops.source 40) in
  (* oracle: list 0..39 reversed then every 2nd dropped leaves 0,2,..38;
     sum of values + shared[v mod 8] values *)
  let expected =
    let values = List.init 20 (fun i -> 2 * i) in
    List.fold_left (fun acc v -> acc + v + (100 + (v mod 8))) 0 values
  in
  check_string "listops sum" (string_of_int expected ^ "\n") out

let test_pooled_same_answer () =
  (* the pooled variant computes the identical result with ~100x fewer
     heap blocks *)
  let n = 800 in
  let naive = run_on (Hpm_workloads.Bitonic.source n) in
  let pooled = run_on (Hpm_workloads.Bitonic_pooled.source n) in
  check_string "same output" naive pooled;
  let m = prepare (Hpm_workloads.Bitonic_pooled.source n) in
  let _, _, stats = Hpm_core.Migration.run_plain m Hpm_arch.Arch.ultra5 in
  check_bool "few heap blocks" true (stats.Hpm_machine.Mstats.heap_allocs < 10)

let test_qsort () =
  List.iter
    (fun arch ->
      let out = run_on ~arch (Hpm_workloads.Qsort.source 1_000) in
      check_bool ("qsort PASS on " ^ arch.Hpm_arch.Arch.name) true
        (contains_sub out "qsort: PASS"))
    arches

let test_hashtab_oracle () =
  (* differential oracle: replay the same operation stream against an
     OCaml hash table and compare the final fold *)
  let n = 1_500 in
  let out = run_on (Hpm_workloads.Hashtab.source n) in
  let rng = Hpm_machine.Rng.create 1 in
  Hpm_machine.Rng.seed rng 777;
  let tbl = Hashtbl.create 64 in
  let acc = ref 0L in
  for i = 0 to n - 1 do
    let k = Int64.of_int (Hpm_machine.Rng.next_int rng mod 5000) in
    match i mod 4 with
    | 0 | 1 -> Hashtbl.replace tbl k (Int64.of_int i)
    | 2 ->
        let v = try Hashtbl.find tbl k with Not_found -> -1L in
        acc := Int64.add !acc v
    | _ -> Hashtbl.remove tbl k
  done;
  let pop = Hashtbl.length tbl in
  Hashtbl.iter
    (fun k v -> acc := Int64.add !acc (Int64.add (Int64.mul k 3L) v))
    tbl;
  (* the Mini-C fold iterates chains in bucket order; addition commutes,
     so only the totals are compared *)
  match String.split_on_char '\n' out with
  | acc_line :: pop_line :: _ ->
      check_string "hashtab sum" (Int64.to_string !acc) acc_line;
      check_string "hashtab population" (string_of_int pop) pop_line
  | _ -> Alcotest.fail "unexpected hashtab output"

let test_jacobi_conserves () =
  (* the hot edge is fixed; the interior total grows monotonically toward
     equilibrium, and the run is deterministic across arches *)
  let a = run_on ~arch:Hpm_arch.Arch.dec5000 (Hpm_workloads.Jacobi.source 6) in
  let b = run_on ~arch:Hpm_arch.Arch.x86_64 (Hpm_workloads.Jacobi.source 6) in
  check_string "deterministic across arches" a b;
  check_bool "positive heat" true (float_of_string (String.trim a) > 0.0)

let test_registry () =
  check_int "nine workloads" 9 (List.length Hpm_workloads.Registry.all);
  check_bool "find" true (Hpm_workloads.Registry.find "linpack" <> None);
  check_bool "find missing" true (Hpm_workloads.Registry.find "nope" = None);
  expect_raise "find_exn" (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Hpm_workloads.Registry.find_exn "nope")

let test_linpack_residual_small () =
  (* the residual line is a tiny number: |x - 1| < 1e-4 enforced by PASS,
     and typically far smaller; parse and check < 1e-6 for n=16 *)
  let out = run_on (Hpm_workloads.Linpack.source 16) in
  match String.split_on_char '\n' out with
  | _pass :: res :: _ ->
      check_bool "residual tiny" true (float_of_string res < 1e-6)
  | _ -> Alcotest.fail "unexpected linpack output"

let suite =
  [
    tc "linpack solves correctly everywhere" test_linpack;
    tc "bitonic sorts everywhere" test_bitonic;
    tc_slow "bitonic large input" test_bitonic_duplicates_sorted;
    tc_slow "n-queens solution counts" test_nqueens_table;
    tc "test_pointer oracle" test_test_pointer_plain;
    tc "listops oracle" test_listops;
    tc "pooled bitonic matches naive" test_pooled_same_answer;
    tc "qsort sorts everywhere" test_qsort;
    tc "hashtab differential oracle" test_hashtab_oracle;
    tc "jacobi deterministic" test_jacobi_conserves;
    tc "registry" test_registry;
    tc "linpack residual accuracy" test_linpack_residual_small;
  ]
