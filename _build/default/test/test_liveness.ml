(** Liveness tests, including the exact live sets the paper's example
    needs at its migration point. *)

open Hpm_ir
open Util

let lower src =
  let ast = check_src src in
  Compile.lower ast

let analyzed src name =
  let prog, _ = lower src in
  let f = Ir.find_func_exn prog name in
  (f, Liveness.analyze f)

(* live set at the first user poll of [name] *)
let live_at_poll src name =
  let ast = check_src src in
  let prog, user_polls = Compile.lower ast in
  let table = Pollpoint.insert prog user_polls Pollpoint.user_only_strategy in
  match
    List.find_opt (fun p -> String.equal p.Pollpoint.fn name) table.Pollpoint.polls
  with
  | Some p -> p.Pollpoint.live
  | None -> Alcotest.failf "no poll in %s" name

let test_dead_excluded () =
  let live =
    live_at_poll
      {|
int main() {
  int used; int dead;
  used = 1; dead = 2;
  #pragma poll here
  print_int(used);
  return 0;
}
|}
      "main"
  in
  check_bool "used live" true (List.mem "used" live);
  check_bool "dead not live" false (List.mem "dead" live)

let test_redefined_excluded () =
  let live =
    live_at_poll
      {|
int main() {
  int x;
  x = 1;
  #pragma poll here
  x = 2;              /* killed before use: old value not needed */
  print_int(x);
  return 0;
}
|}
      "main"
  in
  check_bool "redefined not live" false (List.mem "x" live)

let test_loop_carried () =
  let live =
    live_at_poll
      {|
int main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 10; i++) {
    #pragma poll here
    acc = acc + i;
  }
  print_int(acc);
  return 0;
}
|}
      "main"
  in
  check_bool "i live" true (List.mem "i" live);
  check_bool "acc live" true (List.mem "acc" live)

let test_address_taken_is_use () =
  (* b's content is read later through the alias, so taking &b keeps it live *)
  let live =
    live_at_poll
      {|
void bump(int **q) { (**q)++; }
int main() {
  int a; int *b;
  a = 1;
  b = &a;
  #pragma poll here
  bump(&b);
  print_int(a);
  return 0;
}
|}
      "main"
  in
  check_bool "b live (address escapes later)" true (List.mem "b" live);
  check_bool "a live (address taken then read)" true (List.mem "a" live)

let test_partial_write_keeps_base () =
  (* writing one element must not kill the array: other elements survive *)
  let live =
    live_at_poll
      {|
int main() {
  int a[4];
  int i;
  a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
  i = 0;
  #pragma poll here
  a[2] = 99;
  for (i = 0; i < 4; i++) print_int(a[i]);
  return 0;
}
|}
      "main"
  in
  check_bool "array live across partial write" true (List.mem "a" live)

let test_paper_example_live_sets () =
  (* Fig. 1: at the poll in foo, both parameters are needed afterwards *)
  let src =
    {|
struct node { float data; struct node *link; };
struct node *first, *last;
void foo(struct node **p, int **q) {
  #pragma poll before_malloc
  *p = (struct node *) malloc(sizeof(struct node));
  (*p)->data = 10.0;
  (**q)++;
}
int main() {
  int i; int a, *b;
  struct node *parray[10];
  a = 1; b = &a;
  for (i = 0; i < 10; i++) {
    foo(parray + i, &b);
    first = parray[0];
    last = parray[i];
    first->link = last;
    if (i > 0) parray[i]->link = parray[i - 1];
  }
  return 0;
}
|}
  in
  let live_foo = live_at_poll src "foo" in
  check_bool "p live in foo" true (List.mem "p" live_foo);
  check_bool "q live in foo" true (List.mem "q" live_foo);
  (* at main's suspended call site, parray, i and b are needed beyond *)
  let ast = check_src src in
  let prog, _ = Compile.lower ast in
  let main = Ir.find_func_exn prog "main" in
  let live = Liveness.analyze main in
  let found = ref false in
  Array.iteri
    (fun bi (b : Ir.block) ->
      Array.iteri
        (fun ii ins ->
          match ins with
          | Ir.Icall (_, Ir.Cfun "foo", _) ->
              found := true;
              let s = Liveness.live_suspended_call live ~block:bi ~index:ii in
              check_bool "parray live at call" true (Liveness.SS.mem "parray" s);
              check_bool "i live at call" true (Liveness.SS.mem "i" s);
              check_bool "b live at call" true (Liveness.SS.mem "b" s)
          | _ -> ())
        b.Ir.instrs)
    main.Ir.blocks;
  check_bool "found the call" true !found

let test_call_dst_not_saved () =
  (* the destination of a suspended call is re-defined by the return *)
  let src =
    {|
int id(int x) { return x; }
int main() {
  int r;
  r = id(5);
  print_int(r);
  return 0;
}
|}
  in
  let prog, _ = lower src in
  let main = Ir.find_func_exn prog "main" in
  let live = Liveness.analyze main in
  Array.iteri
    (fun bi (b : Ir.block) ->
      Array.iteri
        (fun ii ins ->
          match ins with
          | Ir.Icall (Some (Ir.Lvar dst), Ir.Cfun "id", _) ->
              let s = Liveness.live_suspended_call live ~block:bi ~index:ii in
              check_bool "call dst excluded" false (Liveness.SS.mem dst s)
          | _ -> ())
        b.Ir.instrs)
    main.Ir.blocks

let test_params_live_at_entry () =
  let f, live = analyzed "int add(int a, int b) { return a + b; } int main() { return add(1,2); }" "add" in
  let s = Liveness.live_before live ~block:f.Ir.entry ~index:0 in
  check_bool "a live at entry" true (Liveness.SS.mem "a" s);
  check_bool "b live at entry" true (Liveness.SS.mem "b" s)

let test_globals_not_tracked () =
  let _, live =
    analyzed "int g; int main() { g = 1; print_int(g); return 0; }" "main"
  in
  let s = Liveness.live_before live ~block:0 ~index:0 in
  check_bool "globals excluded from live sets" false (Liveness.SS.mem "g" s)

let test_switch_liveness () =
  let live =
    live_at_poll
      {|
int main() {
  int x; int used_in_case; int dead_after;
  x = 2; used_in_case = 10; dead_after = 5;
  print_int(dead_after);
  #pragma poll here
  switch (x) {
    case 1: print_int(0); break;
    case 2: print_int(used_in_case); break;
    default: ;
  }
  return 0;
}
|}
      "main"
  in
  check_bool "scrutinee live" true (List.mem "x" live);
  check_bool "case body var live" true (List.mem "used_in_case" live);
  check_bool "finished var dead" false (List.mem "dead_after" live)

let test_goto_liveness () =
  (* a variable used only after a backward goto target is loop-carried *)
  let live =
    live_at_poll
      {|
int main() {
  int n; int acc;
  n = 10; acc = 0;
again:
  #pragma poll here
  acc = acc + n;
  n = n - 1;
  if (n > 0) goto again;
  print_int(acc);
  return 0;
}
|}
      "main"
  in
  check_bool "n live across goto loop" true (List.mem "n" live);
  check_bool "acc live across goto loop" true (List.mem "acc" live)

let suite =
  [
    tc "dead variables excluded" test_dead_excluded;
    tc "redefined-before-use excluded" test_redefined_excluded;
    tc "loop-carried variables live" test_loop_carried;
    tc "address-taken counts as use" test_address_taken_is_use;
    tc "partial writes keep base live" test_partial_write_keeps_base;
    tc "paper Figure 1 live sets" test_paper_example_live_sets;
    tc "suspended call dst excluded" test_call_dst_not_saved;
    tc "parameters live at entry" test_params_live_at_entry;
    tc "globals not tracked" test_globals_not_tracked;
    tc "liveness through switch" test_switch_liveness;
    tc "liveness through goto loops" test_goto_liveness;
  ]
