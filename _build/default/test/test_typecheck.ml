(** Type checker tests: acceptance, rejection, and elaboration. *)

open Hpm_lang
open Util

let accepts src =
  match check_src src with _ -> true | exception Typecheck.Error _ -> false

let rejects src = not (accepts src)

let wrap body = Printf.sprintf "int main() { %s return 0; }" body
let wrapd decls body = Printf.sprintf "int main() { %s %s return 0; }" decls body

let test_accepts () =
  check_bool "arith promo" true (accepts (wrapd "int i; double d;" "d = i + 2.5;"));
  check_bool "ptr arith" true (accepts (wrapd "int a[5]; int *p;" "p = a + 2; p = p - 1;"));
  check_bool "ptr diff" true (accepts (wrapd "int a[5]; long n;" "n = &a[4] - &a[0];"));
  check_bool "null assign" true (accepts (wrapd "int *p;" "p = 0;"));
  check_bool "null compare" true (accepts (wrapd "int *p;" "if (p == 0) p = 0;"));
  check_bool "void fn" true (accepts "void f() { return; } int main() { f(); return 0; }");
  check_bool "struct copy" true
    (accepts "struct s { int a; double b; }; int main() { struct s x; struct s y; x = y; return 0; }");
  check_bool "fn ptr" true
    (accepts "int g(int x) { return x; } int main() { int (*f)(int); f = g; return f(1); }");
  check_bool "string literal" true (accepts (wrap "print_str(\"hi\");"));
  check_bool "scalar init" true (accepts (wrapd "int n = 3, m = n + 1;" "print_int(m);"))

let test_rejects () =
  check_bool "undefined var" true (rejects (wrap "x = 1;"));
  check_bool "undefined fn" true (rejects (wrap "nope();"));
  check_bool "wrong arity" true (rejects (wrap "print_int(1, 2);"));
  check_bool "assign to array" true (rejects (wrapd "int a[3]; int b[3];" "a = b;"));
  check_bool "assign to literal" true (rejects (wrap "3 = 4;"));
  check_bool "deref int" true (rejects (wrapd "int i;" "i = *i;"));
  check_bool "deref void*" true (rejects (wrapd "int i;" "i = *malloc(4L);"));
  check_bool "bad field" true
    (rejects "struct s { int a; }; int main() { struct s x; x.b = 1; return 0; }");
  check_bool "arrow on struct" true
    (rejects "struct s { int a; }; int main() { struct s x; x->a = 1; return 0; }");
  check_bool "ptr mismatch" true (rejects (wrapd "int *p; double *q;" "p = q;"));
  check_bool "non-null int to ptr" true (rejects (wrapd "int *p;" "p = 5;"));
  check_bool "mod on double" true (rejects (wrapd "double d;" "d = d % 2.0;"));
  check_bool "return value from void" true
    (rejects "void f() { return 3; } int main() { return 0; }");
  check_bool "missing return value" true
    (rejects "int f() { return; } int main() { return 0; }");
  check_bool "duplicate local" true (rejects (wrapd "int x; int x;" ""));
  check_bool "duplicate function" true
    (rejects "int f() { return 1; } int f() { return 2; } int main() { return 0; }");
  check_bool "shadow builtin" true (rejects "int rand() { return 4; } int main() { return 0; }");
  check_bool "no main" true (rejects "int f() { return 1; }");
  check_bool "undefined struct" true (rejects "struct nope x; int main() { return 0; }");
  check_bool "recursive struct by value" true
    (rejects "struct s { int a; struct s inner; }; int main() { return 0; }");
  check_bool "struct condition" true
    (rejects "struct s { int a; }; int main() { struct s x; if (x) { } return 0; }")

let test_param_adjustment () =
  check_bool "struct param rejected" true
    (rejects "struct s { int a; }; void f(struct s x) { } int main() { return 0; }");
  check_bool "struct return rejected" true
    (rejects "struct s { int a; }; struct s f() { } int main() { return 0; }");
  (* array parameter adjusts to a pointer, so passing an array works *)
  check_bool "array param adjusts" true
    (accepts "int sum(int a[10]) { return a[0]; } int main() { int xs[10]; return sum(xs); }")

let test_recursive_struct_via_ptr () =
  check_bool "linked struct ok" true
    (accepts "struct s { int a; struct s *next; }; int main() { return 0; }")

(* elaboration: implicit conversions become explicit casts *)
let body_expr src =
  let p = check_src src in
  match (Ast.find_func_exn p "main").Ast.f_body with
  | { Ast.sdesc = Ast.Sexpr e; _ } :: _ -> e
  | _ -> Alcotest.fail "expected expression statement"

let test_elaboration () =
  (* int + double: the int operand gets a cast to double *)
  let e = body_expr "int main() { double d; int i; d + i; return 0; }" in
  (match e.Ast.desc with
  | Ast.Binop (Ast.Add, _, { Ast.desc = Ast.Cast (Ty.Double, _); _ }) -> ()
  | _ -> Alcotest.fail "expected cast on the int operand");
  check_bool "result typed double" true (Ty.equal (Ast.ty_of e) Ty.Double);
  (* array decays to pointer when passed *)
  let e2 = body_expr "void f(int *p) { } int main() { int a[3]; f(a); return 0; }" in
  (match e2.Ast.desc with
  | Ast.Call (_, [ arg ]) -> check_bool "decayed arg" true (Ty.equal (Ast.ty_of arg) (Ty.Ptr Ty.Int))
  | _ -> Alcotest.fail "expected call");
  (* null constant converts to the pointer type *)
  let e3 = body_expr "int main() { int *p; p = 0; return 0; }" in
  match e3.Ast.desc with
  | Ast.Assign (_, rhs) -> check_bool "null typed" true (Ty.equal (Ast.ty_of rhs) (Ty.Ptr Ty.Int))
  | _ -> Alcotest.fail "expected assignment"

let test_cond_unify () =
  let e = body_expr "int main() { int i; double d; i > 0 ? i : d; return 0; }" in
  check_bool "?: joins to double" true (Ty.equal (Ast.ty_of e) Ty.Double)

let test_compound_effect_rejected () =
  check_bool "effectful compound lvalue" true
    (rejects "int main() { int a[3]; int i; a[i++] += 1; return 0; }")

let suite =
  [
    tc "well-typed programs accepted" test_accepts;
    tc "ill-typed programs rejected" test_rejects;
    tc "parameter adjustment" test_param_adjustment;
    tc "recursive struct through pointer" test_recursive_struct_via_ptr;
    tc "elaboration inserts casts" test_elaboration;
    tc "conditional type unification" test_cond_unify;
    tc "compound assignment with effects rejected" test_compound_effect_rejected;
  ]
