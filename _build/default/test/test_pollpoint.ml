(** Poll-point insertion tests. *)

open Hpm_ir
open Util

let table ?(strategy = Pollpoint.default_strategy) src =
  let ast = check_src src in
  let prog, user_polls = Compile.lower ast in
  (prog, Pollpoint.insert prog user_polls strategy)

let src_loops =
  {|
int work(int n) {
  int i; int s;
  s = 0;
  for (i = 0; i < n; i++) { s = s + i; }
  return s;
}
int main() {
  int i;
  for (i = 0; i < 3; i++) { print_int(work(i)); }
  return 0;
}
|}

let test_default_strategy () =
  let _, t = table src_loops in
  (* 2 loop headers + 2 function entries *)
  check_int "poll count" 4 (List.length t.Pollpoint.polls);
  let kinds = List.map (fun p -> p.Pollpoint.kind) t.Pollpoint.polls in
  check_int "loop polls" 2
    (List.length (List.filter (function Pollpoint.Kloop -> true | _ -> false) kinds));
  check_int "entry polls" 2
    (List.length (List.filter (function Pollpoint.Kentry -> true | _ -> false) kinds))

let test_user_only () =
  let _, t = table ~strategy:Pollpoint.user_only_strategy src_loops in
  check_int "no automatic polls" 0 (List.length t.Pollpoint.polls);
  let _, t2 =
    table ~strategy:Pollpoint.user_only_strategy
      "int main() { int i; #pragma poll one\n for (i = 0; i < 3; i++) { #pragma poll two\n } return 0; }"
  in
  check_int "two user polls" 2 (List.length t2.Pollpoint.polls);
  check_bool "names kept" true
    (List.for_all
       (fun p -> match p.Pollpoint.kind with Pollpoint.Kuser _ -> true | _ -> false)
       t2.Pollpoint.polls)

let test_ids_unique_and_dense () =
  let _, t = table src_loops in
  let ids = List.map (fun p -> p.Pollpoint.id) t.Pollpoint.polls in
  check_int "dense ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_determinism () =
  let _, t1 = table src_loops in
  let _, t2 = table src_loops in
  check_bool "identical tables" true
    (List.for_all2
       (fun a b ->
         a.Pollpoint.id = b.Pollpoint.id
         && String.equal a.Pollpoint.fn b.Pollpoint.fn
         && a.Pollpoint.block = b.Pollpoint.block
         && a.Pollpoint.index = b.Pollpoint.index
         && a.Pollpoint.live = b.Pollpoint.live)
       t1.Pollpoint.polls t2.Pollpoint.polls)

let test_hot_threshold () =
  let strategy = { Pollpoint.default_strategy with Pollpoint.hot_threshold = 1000 } in
  let _, t = table ~strategy src_loops in
  check_int "tiny functions skipped" 0 (List.length t.Pollpoint.polls)

let test_max_loop_depth () =
  let src =
    {|
int main() {
  int i; int j; int s;
  s = 0;
  for (i = 0; i < 3; i++) {
    for (j = 0; j < 3; j++) { s = s + 1; }
  }
  print_int(s);
  return 0;
}
|}
  in
  let strategy =
    { Pollpoint.default_strategy with Pollpoint.max_loop_depth = 1; fn_entries = false }
  in
  let _, t = table ~strategy src in
  check_int "outer loop only" 1 (List.length t.Pollpoint.polls)

let test_only_funcs () =
  let strategy = { Pollpoint.default_strategy with Pollpoint.only_funcs = Some [ "work" ] } in
  let _, t = table ~strategy src_loops in
  check_bool "restricted to work" true
    (List.for_all (fun p -> String.equal p.Pollpoint.fn "work") t.Pollpoint.polls)

let test_polls_execute () =
  (* inserted polls must actually fire during execution *)
  let m = prepare src_loops in
  let out, _, stats = Hpm_core.Migration.run_plain m Hpm_arch.Arch.ultra5 in
  check_string "output unaffected" "0\n0\n1\n" out;
  check_bool "polls executed" true (stats.Hpm_machine.Mstats.polls > 0)

let test_live_sets_attached () =
  let _, t = table src_loops in
  let loop_poll_in_work =
    List.find
      (fun p -> String.equal p.Pollpoint.fn "work" && p.Pollpoint.kind = Pollpoint.Kloop)
      t.Pollpoint.polls
  in
  check_bool "s and i live at work's loop" true
    (List.mem "s" loop_poll_in_work.Pollpoint.live
    && List.mem "i" loop_poll_in_work.Pollpoint.live)

let suite =
  [
    tc "default strategy places loop+entry polls" test_default_strategy;
    tc "user-only strategy" test_user_only;
    tc "ids unique" test_ids_unique_and_dense;
    tc "insertion is deterministic" test_determinism;
    tc "hot-function threshold" test_hot_threshold;
    tc "max loop depth" test_max_loop_depth;
    tc "function restriction" test_only_funcs;
    tc "inserted polls fire at run time" test_polls_execute;
    tc "live sets attached to polls" test_live_sets_attached;
  ]
