(** Source-to-source annotation tests. *)

open Hpm_ir
open Util

let count_polls src =
  let rec stmt (s : Hpm_lang.Ast.stmt) =
    match s.Hpm_lang.Ast.sdesc with
    | Hpm_lang.Ast.Spoll _ -> 1
    | Hpm_lang.Ast.Sif (_, a, b) -> stmts a + stmts b
    | Hpm_lang.Ast.Swhile (_, b) | Hpm_lang.Ast.Sdo (b, _) -> stmts b
    | Hpm_lang.Ast.Sfor (_, _, _, b) -> stmts b
    | Hpm_lang.Ast.Sblock b -> stmts b
    | _ -> 0
  and stmts body = List.fold_left (fun acc s -> acc + stmt s) 0 body
  in
  let p = Hpm_lang.Parser.parse_string src in
  List.fold_left (fun acc f -> acc + stmts f.Hpm_lang.Ast.f_body) 0 p.Hpm_lang.Ast.funcs

let simple =
  {|
int work(int n) {
  int i; int s;
  s = 0;
  for (i = 0; i < n; i++) { s = s + i; }
  return s;
}
int main() {
  int i;
  for (i = 0; i < 3; i++) { print_int(work(i)); }
  return 0;
}
|}

let test_inserts_pragmas () =
  let annotated = Annotate.source simple in
  (* 2 loop bodies + 2 function entries *)
  check_int "four pragmas" 4 (count_polls annotated);
  check_bool "entry marker named" true (contains_sub annotated "auto_main_entry");
  check_bool "loop marker named" true (contains_sub annotated "auto_work_loop1")

let test_annotated_reparses_and_runs () =
  let annotated = Annotate.source simple in
  let plain_out = run_on simple in
  let ann_out = run_on annotated in
  check_string "annotation preserves behaviour" plain_out ann_out

let test_annotated_migrates () =
  (* the annotated source, compiled with user-only polls (as the paper's
     pre-distributed migratable format would be), migrates correctly *)
  let annotated = Annotate.source (Hpm_workloads.Bitonic.source 400) in
  let m = prepare_user annotated in
  let ref_out, _, _ = Hpm_core.Migration.run_plain m Hpm_arch.Arch.ultra5 in
  let o =
    Hpm_core.Migration.run_migrating m ~src_arch:Hpm_arch.Arch.dec5000
      ~dst_arch:Hpm_arch.Arch.sparc20 ~after_polls:700 ()
  in
  check_bool "migrated at an auto pragma" true o.Hpm_core.Migration.migrated;
  check_string "equivalent output" ref_out o.Hpm_core.Migration.output

let test_user_only_strategy_no_autos () =
  let annotated = Annotate.source ~strategy:Pollpoint.user_only_strategy simple in
  check_int "no pragmas" 0 (count_polls annotated)

let test_depth_limit () =
  let nested =
    {|
int main() {
  int i; int j; int s;
  s = 0;
  for (i = 0; i < 3; i++) {
    for (j = 0; j < 3; j++) { s = s + 1; }
  }
  print_int(s);
  return 0;
}
|}
  in
  let strategy =
    { Pollpoint.default_strategy with Pollpoint.max_loop_depth = 1; fn_entries = false }
  in
  check_int "outer loop only" 1 (count_polls (Annotate.source ~strategy nested))

let test_idempotent_behaviour () =
  (* annotating twice adds more pragmas but never changes program output *)
  let once = Annotate.source simple in
  let twice = Annotate.source once in
  check_string "still correct" (run_on simple) (run_on twice)

let suite =
  [
    tc "inserts named pragmas" test_inserts_pragmas;
    tc "annotation preserves behaviour" test_annotated_reparses_and_runs;
    tc "annotated source migrates" test_annotated_migrates;
    tc "user-only strategy adds nothing" test_user_only_strategy_no_autos;
    tc "loop-depth limit respected" test_depth_limit;
    tc "double annotation harmless" test_idempotent_behaviour;
  ]
