(** Targeted collection/restoration tests at the datum level: the corner
    cases of the pointer encoding (interior, one-past-the-end, shared,
    cyclic, null, function pointers, cross-frame), plus the §4.2 counter
    semantics. *)

open Hpm_core
open Util

let migrate_src ?(src_arch = Hpm_arch.Arch.dec5000) ?(dst_arch = Hpm_arch.Arch.x86_64)
    ?(after = 0) src =
  let m = prepare_user src in
  let o = Migration.run_migrating m ~src_arch ~dst_arch ~after_polls:after () in
  check_bool "migrated" true o.Migration.migrated;
  (o.Migration.output, o.Migration.report)

let test_one_past_end () =
  let out, _ =
    migrate_src
      {|
int main() {
  int a[10];
  int *end;
  int i;
  for (i = 0; i < 10; i++) a[i] = i * 3;
  end = a + 10;                  /* legal C: one past the end */
  #pragma poll here
  print_int(*(end - 1));
  print_long(end - a);
  return 0;
}
|}
  in
  check_string "one-past-end survives" "27\n10\n" out

let test_interior_pointer () =
  let out, _ =
    migrate_src
      {|
struct trio { char tag; double mid; int last; };
int main() {
  struct trio t;
  double *pm;
  int *pl;
  t.tag = 'x'; t.mid = 2.5; t.last = 77;
  pm = &t.mid;
  pl = &t.last;
  #pragma poll here
  print_double(*pm);
  print_int(*pl);
  return 0;
}
|}
  in
  (* dec5000 puts mid at byte 8, x86_64 also 8, i386 at 4: the ordinal
     encoding must re-derive the right byte on the destination *)
  check_string "interior pointers into struct" "2.5\n77\n" out;
  let out2, _ =
    migrate_src ~src_arch:Hpm_arch.Arch.sparc20 ~dst_arch:Hpm_arch.Arch.i386
      {|
struct trio { char tag; double mid; int last; };
int main() {
  struct trio t;
  double *pm;
  t.tag = 'x'; t.mid = 2.5; t.last = 77;
  pm = &t.mid;
  #pragma poll here
  print_double(*pm);
  return 0;
}
|}
  in
  check_string "offset 8 becomes offset 4 on i386" "2.5\n" out2

let test_shared_block_saved_once () =
  let src =
    {|
int main() {
  int *a;
  int *b;
  int *c;
  a = (int *) malloc(sizeof(int));
  *a = 42;
  b = a;
  c = a;
  #pragma poll here
  print_int(*a + *b + *c);
  return 0;
}
|}
  in
  let m = prepare_user src in
  let p, _ = suspend m Hpm_arch.Arch.dec5000 0 in
  let _, stats = Collect.collect p m.Migration.ti in
  (* a, b, c blocks + ONE heap block + main's temps/locals; the heap block
     appears once even though three pointers reach it *)
  let o = Migration.run_migrating m ~src_arch:Hpm_arch.Arch.dec5000
      ~dst_arch:Hpm_arch.Arch.sparc20 () in
  check_string "sum" "126\n" o.Migration.output;
  (match o.Migration.report with
  | Some r -> check_int "one heap alloc on restore" 1 r.Migration.restore_stats.Cstats.r_heap_allocs
  | None -> Alcotest.fail "no report");
  (* a, b, c and ONE heap block; three pointer elements all reach it *)
  check_int "four blocks" 4 stats.Cstats.c_blocks;
  check_int "three pointers" 3 stats.Cstats.c_pointers

let test_cycle () =
  let out, _ =
    migrate_src
      {|
struct ring { int v; struct ring *next; };
int main() {
  struct ring *a; struct ring *b; struct ring *c;
  struct ring *p;
  int i; int sum;
  a = (struct ring *) malloc(sizeof(struct ring));
  b = (struct ring *) malloc(sizeof(struct ring));
  c = (struct ring *) malloc(sizeof(struct ring));
  a->v = 1; b->v = 2; c->v = 4;
  a->next = b; b->next = c; c->next = a;    /* cycle */
  #pragma poll here
  sum = 0;
  p = a;
  for (i = 0; i < 7; i++) { sum = sum + p->v; p = p->next; }
  print_int(sum);
  if (c->next == a) print_str("ring closed\n");
  return 0;
}
|}
  in
  check_string "cycle walks after migration" "15\nring closed\n" out

let test_null_pointers () =
  let out, _ =
    migrate_src
      {|
struct opt { int v; struct opt *some; };
int main() {
  struct opt o;
  int *nothing;
  o.v = 9; o.some = 0;
  nothing = 0;
  #pragma poll here
  if (o.some == 0 && nothing == 0) print_int(o.v);
  return 0;
}
|}
  in
  check_string "nulls stay null" "9\n" out

let test_function_pointer_across () =
  let out, _ =
    migrate_src
      {|
int half(int x) { return x / 2; }
int twice(int x) { return x * 2; }
int main() {
  int (*f)(int);
  int (*g)(int);
  int (*z)(int);
  f = half; g = twice; z = 0;
  #pragma poll here
  if (z == 0) print_int(f(10) + g(10));
  return 0;
}
|}
  in
  check_string "function pointers rebound by name" "25\n" out

let test_cross_frame_pointer () =
  (* the paper's q = &b situation: a callee holds a pointer into the
     caller's frame at migration time *)
  let out, _ =
    migrate_src
      {|
void bump(int **q) {
  #pragma poll inside
  (**q)++;
}
int main() {
  int a; int *b;
  a = 41;
  b = &a;
  bump(&b);
  print_int(a);
  return 0;
}
|}
  in
  check_string "cross-frame pointer rebinds" "42\n" out

let test_global_pointing_to_stack () =
  let out, _ =
    migrate_src
      {|
int *gp;
int main() {
  int local;
  local = 13;
  gp = &local;           /* global points into main's frame */
  #pragma poll here
  print_int(*gp);
  return 0;
}
|}
  in
  check_string "global -> stack pointer" "13\n" out

let test_stack_pointing_to_global () =
  let out, _ =
    migrate_src
      {|
double table[4];
int main() {
  double *p;
  table[2] = 6.25;
  p = &table[2];
  #pragma poll here
  print_double(*p);
  return 0;
}
|}
  in
  check_string "stack -> global interior pointer" "6.25\n" out

let test_string_literal_pointer () =
  let out, _ =
    migrate_src
      {|
char *msg;
int main() {
  char *local;
  msg = "hello";
  local = msg + 1;        /* interior pointer into a string literal */
  #pragma poll here
  print_str(local);
  print_char('\n');
  return 0;
}
|}
  in
  check_string "string literals rebind" "ello\n" out

let test_misaligned_pointer_refused () =
  (* a char* into the middle of a double has no element ordinal: the MSR
     model cannot express it, and collection says so *)
  let src =
    {|
int main() {
  double d;
  char *c;
  d = 1.0;
  c = (char *) &d;
  c = c + 3;
  #pragma poll here
  print_int((int)*c);
  return 0;
}
|}
  in
  let m = prepare_user src in
  let p, _ = suspend m Hpm_arch.Arch.ultra5 0 in
  expect_raise "misaligned interior pointer"
    (function Collect.Error _ -> true | _ -> false)
    (fun () -> Collect.collect p m.Migration.ti)

let test_char_pointer_to_char_array_ok () =
  (* ... but char* at a char-element boundary is fine *)
  let out, _ =
    migrate_src
      {|
int main() {
  char buf[8];
  char *p;
  buf[0] = 'a'; buf[1] = 'b'; buf[2] = 'c'; buf[3] = 0;
  p = buf + 1;
  #pragma poll here
  print_str(p);
  print_char('\n');
  return 0;
}
|}
  in
  check_string "char interior ok" "bc\n" out

let test_every_scalar_kind () =
  (* one struct holding every scalar kind, including short (2 bytes) and
     float (single precision), migrated across all heterogeneity axes *)
  let src =
    {|
struct kinds {
  char c;
  short s;
  int i;
  long l;
  float f;
  double d;
  int *p;
  int (*fn)(int);
};
int idf(int x) { return x; }
int main() {
  struct kinds k;
  int target;
  target = 55;
  k.c = (char)(-7);
  k.s = (short)(-30000);
  k.i = 123456789;
  k.l = 2000000000L;
  k.f = 1.5f;
  k.d = 0.333333333333;
  k.p = &target;
  k.fn = idf;
  #pragma poll here
  print_int((int)k.c);
  print_int((int)k.s);
  print_int(k.i);
  print_long(k.l);
  print_double((double)k.f);
  print_double(k.d);
  print_int(*k.p);
  print_int(k.fn(9));
  return 0;
}
|}
  in
  let expected = "-7
-30000
123456789
2000000000
1.5
0.333333333333
55
9
" in
  List.iter
    (fun (a, b) ->
      let out, _ = migrate_src ~src_arch:a ~dst_arch:b src in
      check_string
        (Printf.sprintf "kinds %s->%s" a.Hpm_arch.Arch.name b.Hpm_arch.Arch.name)
        expected out)
    (same_width_pairs @ cross_width_pairs)

let test_short_arrays () =
  let out, _ =
    migrate_src
      {|
int main() {
  short xs[6];
  short *mid;
  int i;
  for (i = 0; i < 6; i++) xs[i] = (short)(i * 1000 - 2500);
  mid = &xs[3];
  #pragma poll here
  print_int((int)xs[0] + (int)*mid);
  return 0;
}
|}
  in
  check_string "short arrays and interior short*" "-2000
" (out)

let test_counters_match_both_sides () =
  let m = prepare (Hpm_workloads.Bitonic.source 400) in
  let p, _ = suspend m Hpm_arch.Arch.dec5000 900 in
  let data, cs = Collect.collect p m.Migration.ti in
  let _, rs = Restore.restore m.Migration.prog Hpm_arch.Arch.x86_64 m.Migration.ti data in
  check_int "blocks equal" cs.Cstats.c_blocks rs.Cstats.r_blocks;
  (* every datum (live var or global) is one extra restore_ptr call *)
  check_int "pointer counts equal" cs.Cstats.c_pointers
    (rs.Cstats.r_pointers - cs.Cstats.c_live_vars);
  (* updates = one bind per block *)
  check_int "updates = blocks" rs.Cstats.r_blocks rs.Cstats.r_updates;
  (* searches happen only on the collect side, at most one per pointer *)
  check_bool "searches <= pointers" true (cs.Cstats.c_searches <= cs.Cstats.c_pointers)

let suite =
  [
    tc "one-past-the-end pointer" test_one_past_end;
    tc "interior pointers re-derive byte offsets" test_interior_pointer;
    tc "shared blocks saved once" test_shared_block_saved_once;
    tc "cycles survive" test_cycle;
    tc "null pointers stay null" test_null_pointers;
    tc "function pointers rebind by identity" test_function_pointer_across;
    tc "cross-frame pointers rebind" test_cross_frame_pointer;
    tc "global pointing into the stack" test_global_pointing_to_stack;
    tc "stack pointing into a global" test_stack_pointing_to_global;
    tc "string-literal pointers" test_string_literal_pointer;
    tc "misaligned interior pointer refused" test_misaligned_pointer_refused;
    tc "char-boundary interior pointer ok" test_char_pointer_to_char_array_ok;
    tc "every scalar kind migrates" test_every_scalar_kind;
    tc "short arrays" test_short_arrays;
    tc "collect/restore counters agree" test_counters_match_both_sides;
  ]
