(** Stream-inspector tests: the read-only walker must accept exactly what
    Restore accepts, with matching structural counts. *)

open Hpm_core
open Util

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let stream_of ?(n = 300) ?(after = 500) name =
  let w = Hpm_workloads.Registry.find_exn name in
  let m = prepare (w.Hpm_workloads.Registry.source n) in
  let p, _ = suspend m Hpm_arch.Arch.dec5000 after in
  let data, cs = Collect.collect p m.Migration.ti in
  (m, data, cs)

let test_counts_match_collect () =
  List.iter
    (fun name ->
      let m, data, cs = stream_of name in
      let blocks, pointers = Inspect.dump ~ppf:null_ppf m.Migration.prog m.Migration.ti data in
      check_int (name ^ " blocks") cs.Cstats.c_blocks blocks;
      check_int (name ^ " pointers")
        (cs.Cstats.c_pointers + cs.Cstats.c_live_vars)
        pointers)
    [ "bitonic"; "listops"; "hashtab" ]

let test_agrees_with_restore () =
  (* cross-check: anything Restore accepts, Inspect walks, and their
     block counts agree *)
  let m, data, _ = stream_of "qsort" ~n:500 ~after:300 in
  let _, rs = Restore.restore m.Migration.prog Hpm_arch.Arch.x86_64 m.Migration.ti data in
  let blocks, _ = Inspect.dump ~ppf:null_ppf m.Migration.prog m.Migration.ti data in
  check_int "restore and inspect agree" rs.Cstats.r_blocks blocks

let test_output_readable () =
  (* suspend test_pointer at its own midpoint pragma: everything is built *)
  let w = Hpm_workloads.Registry.find_exn "test_pointer" in
  let m = prepare_user (w.Hpm_workloads.Registry.source 0) in
  let p, _ = suspend m Hpm_arch.Arch.dec5000 0 in
  let data, _ = Collect.collect p m.Migration.ti in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  ignore (Inspect.dump ~ppf m.Migration.prog m.Migration.ti data);
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  check_bool "shows stack" true (contains_sub out "call stack");
  check_bool "shows identities" true (contains_sub out "local:0:");
  check_bool "shows heap blocks" true (contains_sub out ": heap");
  check_bool "shows globals" true (contains_sub out "globals:")

let test_rejects_corrupt () =
  let m, data, _ = stream_of "listops" ~n:30 ~after:10 in
  let n = String.length data in
  List.iter
    (fun cut ->
      match Inspect.dump ~ppf:null_ppf m.Migration.prog m.Migration.ti (String.sub data 0 cut) with
      | _ -> Alcotest.failf "truncation to %d accepted" cut
      | exception (Inspect.Error _ | Stream.Corrupt _ | Hpm_xdr.Xdr.Underflow _) -> ())
    [ 2; 20; n / 2; n - 2 ]

let test_warns_wrong_program () =
  let m1, data, _ = stream_of "listops" ~n:30 ~after:10 in
  ignore m1;
  let m2 = prepare (Hpm_workloads.Nqueens.source 5) in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  (* inspect tolerates a fingerprint mismatch (it only warns): useful for
     post-mortem debugging of stale checkpoints *)
  (match Inspect.dump ~ppf m2.Migration.prog m2.Migration.ti data with
  | _ -> ()
  | exception _ -> () (* type tables differ: structural error is fine too *));
  Format.pp_print_flush ppf ();
  check_bool "warned" true (contains_sub (Buffer.contents buf) "WARNING")

let suite =
  [
    tc "counts match collection stats" test_counts_match_collect;
    tc "agrees with restore" test_agrees_with_restore;
    tc "listing is readable" test_output_readable;
    tc "corrupt streams rejected" test_rejects_corrupt;
    tc "wrong program warns" test_warns_wrong_program;
  ]
