(** Shared helpers for the test suite. *)

open Hpm_core

let arches = Hpm_arch.Arch.all

(* architecture pairs with equal long/pointer widths: full output
   equivalence under migration holds for any program on these; programs
   whose long arithmetic overflows 32 bits are width-dependent (faithful C
   behaviour), so cross-width checks use overflow-free programs only *)
let same_width_pairs =
  let open Hpm_arch.Arch in
  [
    (dec5000, sparc20);
    (sparc20, dec5000);
    (sparc20, ultra5);
    (dec5000, i386);
    (i386, sparc20);
  ]

let cross_width_pairs =
  let open Hpm_arch.Arch in
  [ (dec5000, x86_64); (x86_64, sparc20); (ultra5, x86_64); (x86_64, i386) ]

let prepare = Migration.prepare
let prepare_user = Migration.prepare ~strategy:Hpm_ir.Pollpoint.user_only_strategy

(** Parse + scope-normalize + typecheck only. *)
let check_src src =
  Hpm_lang.Typecheck.check_program
    (Hpm_lang.Scopes.normalize (Hpm_lang.Parser.parse_string src))

(** Run a program (source text) to completion on [arch], returning output. *)
let run_on ?(arch = Hpm_arch.Arch.ultra5) src =
  let m = prepare src in
  let out, _, _ = Migration.run_plain m arch in
  out

(** Run with a migration after [after] poll events; return combined output. *)
let run_migrated ?(src_arch = Hpm_arch.Arch.dec5000) ?(dst_arch = Hpm_arch.Arch.sparc20)
    ?(after = 0) src =
  let m = prepare src in
  let o = Migration.run_migrating m ~src_arch ~dst_arch ~after_polls:after () in
  o.Migration.output

(** Suspend a prepared program at the (k+1)-th poll event. *)
let suspend m arch after =
  let p = Migration.start m arch in
  Hpm_machine.Interp.request_migration_after p after;
  match Hpm_machine.Interp.run p with
  | Hpm_machine.Interp.RPolled id -> (p, id)
  | Hpm_machine.Interp.RDone _ -> Alcotest.fail "program finished before the poll"
  | Hpm_machine.Interp.RFuel -> Alcotest.fail "out of fuel"

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

let qt ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(** Substring test. *)
let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(** Expect that [f ()] raises an exception matching [pred]. *)
let expect_raise name pred f =
  match f () with
  | _ -> Alcotest.failf "%s: expected an exception" name
  | exception e ->
      if not (pred e) then
        Alcotest.failf "%s: unexpected exception %s" name (Printexc.to_string e)
