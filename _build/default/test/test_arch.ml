(** Architecture descriptor tests. *)

open Hpm_arch
open Util

let test_catalog () =
  check_int "five architectures" 5 (List.length Arch.all);
  List.iter
    (fun (a : Arch.t) ->
      check_bool (a.Arch.name ^ " lookup") true (Arch.by_name a.Arch.name = Some a))
    Arch.all;
  check_bool "unknown arch" true (Arch.by_name "vax" = None);
  expect_raise "by_name_exn" (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Arch.by_name_exn "vax")

let test_paper_machines () =
  let dec = Arch.dec5000 and sparc = Arch.sparc20 in
  (* §4.1: "It is truly heterogeneous because both systems use different
     endianness" *)
  check_bool "dec5000 little-endian" true (dec.Arch.endian = Endian.Little);
  check_bool "sparc20 big-endian" true (sparc.Arch.endian = Endian.Big);
  check_bool "dec<->sparc heterogeneous" true (Arch.heterogeneous dec sparc);
  (* both are ILP32 *)
  check_int "dec ptr" 4 dec.Arch.ptr_size;
  check_int "sparc ptr" 4 sparc.Arch.ptr_size;
  check_int "dec long" 4 dec.Arch.long_size

let test_width_axes () =
  check_int "x86_64 ptr" 8 Arch.x86_64.Arch.ptr_size;
  check_int "x86_64 long" 8 Arch.x86_64.Arch.long_size;
  check_int "i386 double align" 4 Arch.i386.Arch.double_align;
  check_bool "sparc20/ultra5 homogeneous" false
    (Arch.heterogeneous Arch.sparc20 Arch.ultra5);
  (* i386 differs from dec5000 only in alignment — still heterogeneous *)
  check_bool "i386/dec5000 heterogeneous" true (Arch.heterogeneous Arch.i386 Arch.dec5000)

let test_segments_disjoint () =
  List.iter
    (fun (a : Arch.t) ->
      let name = a.Arch.name in
      check_bool (name ^ " globals below heap") true
        (Int64.compare a.Arch.global_base a.Arch.heap_base < 0);
      check_bool (name ^ " heap below stack") true
        (Int64.compare a.Arch.heap_base a.Arch.stack_base < 0))
    Arch.all

let suite =
  [
    tc "catalog and lookup" test_catalog;
    tc "the paper's machines" test_paper_machines;
    tc "width and alignment axes" test_width_axes;
    tc "segment bases are ordered" test_segments_disjoint;
  ]
