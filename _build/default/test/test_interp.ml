(** Interpreter semantics tests (which also exercise the AST→IR lowering:
    every construct below goes through Compile).  Programs are run on
    several architectures; unless the program plays width games, output
    must be identical everywhere. *)

open Util

let out ?arch body = run_on ?arch (Printf.sprintf "int main() { %s return 0; }" body)
let outd ?arch decls body = run_on ?arch (Printf.sprintf "int main() { %s %s return 0; }" decls body)

let everywhere name body expected =
  List.iter
    (fun arch ->
      check_string (name ^ " on " ^ arch.Hpm_arch.Arch.name) expected (out ~arch body))
    arches

(* variant with local declarations (Mini-C is C89: decls at function top) *)
let everywhere2 name decls body expected =
  List.iter
    (fun arch ->
      check_string
        (name ^ " on " ^ arch.Hpm_arch.Arch.name)
        expected
        (outd ~arch decls body))
    arches

let test_arith () =
  everywhere "add" "print_int(2 + 3 * 4);" "14\n";
  everywhere "div trunc" "print_int(-7 / 2);" "-3\n";
  everywhere "mod sign" "print_int(-7 % 2);" "-1\n";
  everywhere "bitops" "print_int((12 & 10) | (1 << 4) ^ 5);" "29\n";
  everywhere "shr" "print_int(-16 >> 2);" "-4\n";
  everywhere "cmp" "print_int(3 < 4);" "1\n";
  everywhere "double" "print_double(1.5 * 4.0 - 0.25);" "5.75\n";
  everywhere "neg" "print_int(-(3 - 10));" "7\n";
  everywhere "not" "print_int(!0 + !7);" "1\n";
  everywhere "bnot" "print_int(~5);" "-6\n"

let test_int_wrapping () =
  (* int is 4 bytes everywhere in our catalog: wraps identically *)
  everywhere "int overflow wraps" "print_int(2147483647 + 1);" "-2147483648\n";
  (* char narrowing through a store *)
  check_string "char store narrows" "-56\n"
    (outd "char c;" "c = (char)200; print_int((int)c);");
  (* long differs: 32-bit wraps, 64-bit doesn't *)
  check_string "long on ilp32 wraps" "2\n"
    (outd ~arch:Hpm_arch.Arch.sparc20 "long l;" "l = 2147483647L; l = l + l + 4L; print_long(l);");
  check_string "long on lp64 doesn't" "4294967298\n"
    (outd ~arch:Hpm_arch.Arch.x86_64 "long l;" "l = 2147483647L; l = l + l + 4L; print_long(l);")

let test_float_precision () =
  (* float truncates to single precision on assignment *)
  everywhere2 "float rounds" "float f;" "f = 0.1f; print_double((double)f * 10.0);"
    "1.0000000149\n"

let test_control_flow () =
  everywhere "if else" "if (3 > 2) { print_int(1); } else { print_int(2); }" "1\n";
  everywhere2 "while" "int i; int s;" "i = 0; s = 0; while (i < 5) { s = s + i; i++; } print_int(s);" "10\n";
  everywhere2 "do while" "int i;" "i = 10; do { i--; } while (i > 7); print_int(i);" "7\n";
  everywhere2 "for with break/continue" "int i; int s;"
    "s = 0; for (i = 0; i < 10; i++) { if (i % 2) continue; if (i > 6) break; s = s + i; } print_int(s);"
    "12\n";
  everywhere2 "nested loops" "int i; int j; int s;"
    "s = 0; for (i = 0; i < 3; i++) for (j = 0; j < 3; j++) s = s + i * j; print_int(s);"
    "9\n"

let test_short_circuit () =
  (* the right operand must not evaluate when the left decides *)
  let src =
    {|
int hits;
int bump() { hits = hits + 1; return 1; }
int main() {
  hits = 0;
  if (0 && bump()) { }
  if (1 || bump()) { }
  print_int(hits);
  if (1 && bump()) { }
  if (0 || bump()) { }
  print_int(hits);
  print_int(2 && 3);
  return 0;
}
|}
  in
  check_string "short circuit" "0\n2\n1\n" (run_on src)

let test_ternary () =
  everywhere2 "cond expr" "int x;" "x = 5; print_int(x > 3 ? x * 2 : -1);" "10\n";
  everywhere2 "cond side" "int x;" "x = 1; print_int(x ? 7 : 1 / 0);" "7\n"

let test_incr_decr () =
  everywhere2 "post" "int i;" "i = 5; print_int(i++); print_int(i);" "5\n6\n";
  everywhere2 "pre" "int i;" "i = 5; print_int(--i); print_int(i);" "4\n4\n";
  everywhere2 "ptr incr" "int a[3]; int *p;"
    "a[0] = 10; a[1] = 20; p = a; p++; print_int(*p);" "20\n"

let test_functions () =
  let src =
    {|
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int add3(int a, int b, int c) { return a + b + c; }
void noret(int x) { print_int(x); }
int main() {
  print_int(fib(15));
  print_int(add3(1, 2, 3));
  noret(9);
  return 0;
}
|}
  in
  check_string "functions" "610\n6\n9\n" (run_on src)

let test_function_pointers () =
  let src =
    {|
int dbl(int x) { return 2 * x; }
int neg(int x) { return -x; }
int apply(int (*f)(int), int v) { return f(v); }
int main() {
  int (*ops[2])(int);
  ops[0] = dbl;
  ops[1] = neg;
  print_int(apply(ops[0], 21));
  print_int(apply(ops[1], 21));
  print_int(ops[0](5) + ops[1](2));
  return 0;
}
|}
  in
  check_string "function pointers" "42\n-21\n8\n" (run_on src)

let test_pointers_and_arrays () =
  everywhere2 "swap via ptrs" "int a; int b; int *p; int *q; int t;"
    "a = 1; b = 2; p = &a; q = &b; t = *p; *p = *q; *q = t; print_int(a); print_int(b);"
    "2\n1\n";
  everywhere2 "ptr arith over array" "int a[5]; int *p; int s; int i;"
    "for (i = 0; i < 5; i++) a[i] = i + 1; s = 0; for (p = a; p < a + 5; p++) s = s + *p; print_int(s);"
    "15\n";
  everywhere2 "ptr difference" "double a[8];" "print_long(&a[6] - &a[1]);" "5\n";
  everywhere2 "2d array" "int g[3][4]; int i; int j;"
    "for (i = 0; i < 3; i++) for (j = 0; j < 4; j++) g[i][j] = i * 4 + j; print_int(g[2][3]);"
    "11\n"

let test_structs () =
  let src =
    {|
struct vec { double x; double y; };
struct seg { struct vec a; struct vec b; };
int main() {
  struct seg s;
  struct seg t;
  struct vec *pv;
  s.a.x = 1.0; s.a.y = 2.0; s.b.x = 4.0; s.b.y = 6.0;
  t = s;                       /* whole struct copy */
  s.a.x = 99.0;                /* t must be unaffected */
  pv = &t.b;
  print_double(t.a.x + pv->y);
  return 0;
}
|}
  in
  List.iter
    (fun arch -> check_string ("structs on " ^ arch.Hpm_arch.Arch.name) "7\n" (run_on ~arch src))
    arches

let test_heap () =
  let src =
    {|
int main() {
  int *xs;
  int i;
  long sum;
  xs = (int *) malloc(100 * sizeof(int));
  for (i = 0; i < 100; i++) xs[i] = i;
  sum = 0L;
  for (i = 0; i < 100; i++) sum = sum + (long)xs[i];
  free(xs);
  free(0);                    /* free(NULL) is a no-op */
  print_long(sum);
  return 0;
}
|}
  in
  check_string "heap array" "4950\n" (run_on src)

let test_strings_and_builtins () =
  check_string "print_str" "hello\n" (out "print_str(\"hello\\n\");");
  check_string "print_char" "AB" (out "print_char('A'); print_char(66);");
  check_string "abs/fabs/sqrt" "5\n2.5\n3\n"
    (out "print_int(abs(-5)); print_double(fabs(-2.5)); print_double(sqrt(9.0));");
  check_string "rand deterministic" (out "srand(7); print_int(rand() % 100);")
    (out "srand(7); print_int(rand() % 100);")

let test_sizeof_is_arch_dependent () =
  check_string "sizeof long ilp32" "4\n" (out ~arch:Hpm_arch.Arch.dec5000 "print_long(sizeof(long));");
  check_string "sizeof long lp64" "8\n" (out ~arch:Hpm_arch.Arch.x86_64 "print_long(sizeof(long));");
  check_string "sizeof struct padding" "16\n"
    (run_on ~arch:Hpm_arch.Arch.i386
       "struct s { char c; double d; int i; }; int main() { print_long(sizeof(struct s)); return 0; }")

let trap = function Hpm_machine.Interp.Trap _ | Hpm_machine.Mem.Fault _ -> true | _ -> false

let test_traps () =
  expect_raise "div by zero" trap (fun () -> outd "int z;" "z = 0; print_int(1 / z);");
  expect_raise "mod by zero" trap (fun () -> outd "int z;" "z = 0; print_int(1 % z);");
  expect_raise "null deref" trap (fun () -> outd "int *p;" "p = 0; print_int(*p);");
  expect_raise "out of bounds" trap (fun () ->
      outd "int a[3]; int *p;" "p = a; print_int(*(p + 7));");
  expect_raise "double free" trap (fun () ->
      outd "int *p;" "p = (int *) malloc(sizeof(int)); free(p); free(p);");
  expect_raise "interior free" trap (fun () ->
      outd "int *p;" "p = (int *) malloc(4 * sizeof(int)); free(p + 1);");
  expect_raise "free stack" trap (fun () -> outd "int x;" "free(&x);");
  expect_raise "dangling read" trap (fun () ->
      outd "int *p;" "p = (int *) malloc(sizeof(int)); free(p); print_int(*p);");
  expect_raise "negative malloc" trap (fun () ->
      outd "int *p; int n;" "n = -3; p = (int *) malloc(n * sizeof(int));")

let everywhere_src name src expected =
  List.iter
    (fun arch ->
      check_string (name ^ " on " ^ arch.Hpm_arch.Arch.name) expected (run_on ~arch src))
    arches

let test_globals_and_init () =
  let src =
    {|
int counter = 10;
double scale = 2.5;
long big = 1000000L;
char letter = 'x';
int *nullp = 0;
int main() {
  counter = counter + 1;
  if (nullp == 0) print_int(counter);
  print_double(scale);
  print_long(big);
  print_char(letter);
  print_char('\n');
  return 0;
}
|}
  in
  everywhere_src "global initializers" src "11\n2.5\n1000000\nx\n"

let test_stack_reuse () =
  (* deep call chains must reuse stack addresses (no leak of dead blocks) *)
  let src =
    {|
int deep(int n) { int pad[50]; pad[0] = n; if (n == 0) return 0; return deep(n - 1) + pad[0]; }
int main() {
  int i;
  long total;
  total = 0L;
  for (i = 0; i < 200; i++) total = total + (long)deep(30);
  print_long(total);
  return 0;
}
|}
  in
  let m = prepare src in
  let p = Hpm_core.Migration.start m Hpm_arch.Arch.ultra5 in
  ignore (Hpm_machine.Interp.run_to_completion p);
  let mem = p.Hpm_machine.Interp.mem in
  check_string "output" "93000\n" (Hpm_machine.Interp.output p);
  check_bool "few live blocks after return" true (mem.Hpm_machine.Mem.live_blocks < 50)

let suite =
  [
    tc "integer and float arithmetic" test_arith;
    tc "width-faithful wrapping" test_int_wrapping;
    tc "float precision" test_float_precision;
    tc "control flow" test_control_flow;
    tc "short-circuit evaluation" test_short_circuit;
    tc "conditional expressions" test_ternary;
    tc "increment/decrement" test_incr_decr;
    tc "functions and recursion" test_functions;
    tc "function pointers" test_function_pointers;
    tc "pointers and arrays" test_pointers_and_arrays;
    tc "structs and struct copy" test_structs;
    tc "heap allocation" test_heap;
    tc "strings and builtins" test_strings_and_builtins;
    tc "sizeof is architecture-dependent" test_sizeof_is_arch_dependent;
    tc "runtime traps" test_traps;
    tc "globals with initializers" test_globals_and_init;
    tc "stack address reuse" test_stack_reuse;
  ]
