(** Byte-order primitive tests. *)

open Hpm_arch
open Util

let test_u8 () =
  let b = Bytes.create 4 in
  Endian.set_u8 b 0 0xab;
  check_int "u8" 0xab (Endian.get_u8 b 0);
  Endian.set_u8 b 1 0x1ff;
  check_int "u8 truncates" 0xff (Endian.get_u8 b 1)

let test_known_patterns () =
  let b = Bytes.create 8 in
  Endian.set_uint Endian.Big 4 b 0 0x12345678L;
  check_int "BE byte 0" 0x12 (Endian.get_u8 b 0);
  check_int "BE byte 3" 0x78 (Endian.get_u8 b 3);
  Endian.set_uint Endian.Little 4 b 0 0x12345678L;
  check_int "LE byte 0" 0x78 (Endian.get_u8 b 0);
  check_int "LE byte 3" 0x12 (Endian.get_u8 b 3)

let test_swap_equivalence () =
  let b1 = Bytes.create 8 and b2 = Bytes.create 8 in
  Endian.set_uint Endian.Big 8 b1 0 0x0123456789abcdefL;
  Endian.set_uint Endian.Little 8 b2 0 0x0123456789abcdefL;
  Endian.swap_bytes b2 0 8;
  check_bool "LE + swap = BE" true (Bytes.equal b1 b2)

let test_sign_extend () =
  Alcotest.(check int64) "char -1" (-1L) (Endian.sign_extend 1 0xffL);
  Alcotest.(check int64) "char 127" 127L (Endian.sign_extend 1 0x7fL);
  Alcotest.(check int64) "short -2" (-2L) (Endian.sign_extend 2 0xfffeL);
  Alcotest.(check int64) "int min" (-2147483648L) (Endian.sign_extend 4 0x80000000L);
  Alcotest.(check int64) "full width" (-5L) (Endian.sign_extend 8 (-5L));
  Alcotest.(check int64) "truncate" 0xfeL (Endian.truncate 1 0x1feL)

let test_floats () =
  let b = Bytes.create 8 in
  Endian.set_f64 Endian.Big b 0 1.5;
  Alcotest.(check (float 0.0)) "f64 BE" 1.5 (Endian.get_f64 Endian.Big b 0);
  Endian.set_f32 Endian.Little b 0 (-0.25);
  Alcotest.(check (float 0.0)) "f32 LE" (-0.25) (Endian.get_f32 Endian.Little b 0);
  (* bit pattern check: 1.0 as f64 BE starts 0x3f 0xf0 *)
  Endian.set_f64 Endian.Big b 0 1.0;
  check_int "f64 1.0 byte0" 0x3f (Endian.get_u8 b 0);
  check_int "f64 1.0 byte1" 0xf0 (Endian.get_u8 b 1)

let test_invalid_width () =
  expect_raise "width 0" (function Invalid_argument _ -> true | _ -> false) (fun () ->
      Endian.get_uint Endian.Big 0 (Bytes.create 8) 0);
  expect_raise "width 9" (function Invalid_argument _ -> true | _ -> false) (fun () ->
      Endian.set_uint Endian.Little 9 (Bytes.create 16) 0 0L)

let prop_roundtrip_signed =
  qt "signed roundtrip at every width/order"
    QCheck.(triple int64 (int_range 1 8) bool)
    (fun (v, width, big) ->
      let order = if big then Endian.Big else Endian.Little in
      let b = Bytes.create 8 in
      Endian.set_int order width b 0 v;
      let got = Endian.get_int order width b 0 in
      Int64.equal got (Endian.sign_extend width v))

let prop_roundtrip_unsigned =
  qt "unsigned roundtrip at every width/order"
    QCheck.(triple int64 (int_range 1 8) bool)
    (fun (v, width, big) ->
      let order = if big then Endian.Big else Endian.Little in
      let b = Bytes.create 8 in
      Endian.set_uint order width b 0 v;
      Int64.equal (Endian.get_uint order width b 0) (Endian.truncate width v))

let prop_f64_bits =
  qt "f64 preserves bit patterns (incl. nan payloads)" QCheck.int64 (fun bits ->
      let v = Int64.float_of_bits bits in
      let b = Bytes.create 8 in
      Endian.set_f64 Endian.Big b 0 v;
      Int64.equal (Int64.bits_of_float (Endian.get_f64 Endian.Big b 0)) bits)

let prop_f32_roundtrip =
  qt "f32 roundtrip of representable values" QCheck.int32 (fun bits ->
      let v = Int32.float_of_bits bits in
      let b = Bytes.create 4 in
      Endian.set_f32 Endian.Little b 0 v;
      let back = Endian.get_f32 Endian.Little b 0 in
      if Float.is_nan v then
        (* NaN payloads may canonicalize through the OCaml float detour *)
        Float.is_nan back
      else Int32.equal (Int32.bits_of_float back) bits)

let suite =
  [
    tc "u8 accessors" test_u8;
    tc "known byte patterns" test_known_patterns;
    tc "little-endian is byte-swapped big-endian" test_swap_equivalence;
    tc "sign extension and truncation" test_sign_extend;
    tc "IEEE-754 accessors" test_floats;
    tc "invalid widths rejected" test_invalid_width;
    prop_roundtrip_signed;
    prop_roundtrip_unsigned;
    prop_f64_bits;
    prop_f32_roundtrip;
  ]
