(** Parser tests: declarators, precedence, statements, round trips. *)

open Hpm_lang
open Util

let parse = Parser.parse_string

let first_global src =
  match (parse src).Ast.globals with
  | d :: _ -> d
  | [] -> Alcotest.fail "no global parsed"

let test_declarators () =
  check_bool "plain" true (Ty.equal (first_global "int x; int main(){}").Ast.d_ty Ty.Int);
  check_bool "pointer" true (Ty.equal (first_global "int *x; int main(){}").Ast.d_ty (Ty.Ptr Ty.Int));
  check_bool "array" true
    (Ty.equal (first_global "int x[10]; int main(){}").Ast.d_ty (Ty.Array (Ty.Int, 10)));
  check_bool "array of pointers" true
    (Ty.equal (first_global "struct n { int v; }; struct n *x[10]; int main(){}").Ast.d_ty
       (Ty.Array (Ty.Ptr (Ty.Struct "n"), 10)));
  check_bool "pointer to array" true
    (Ty.equal (first_global "int (*x)[10]; int main(){}").Ast.d_ty
       (Ty.Ptr (Ty.Array (Ty.Int, 10))));
  check_bool "function pointer" true
    (Ty.equal (first_global "int (*f)(int, double); int main(){}").Ast.d_ty
       (Ty.Ptr (Ty.Func (Ty.Int, [ Ty.Int; Ty.Double ]))));
  check_bool "2d array" true
    (Ty.equal (first_global "double a[3][4]; int main(){}").Ast.d_ty
       (Ty.Array (Ty.Array (Ty.Double, 4), 3)));
  check_bool "multi declarators" true
    (let p = parse "int a, *b, c[2]; int main(){}" in
     List.map (fun d -> d.Ast.d_ty) p.Ast.globals
     = [ Ty.Int; Ty.Ptr Ty.Int; Ty.Array (Ty.Int, 2) ])

let expr_of src =
  let p = parse (Printf.sprintf "int main() { %s; }" src) in
  match (List.hd p.Ast.funcs).Ast.f_body with
  | [ { Ast.sdesc = Ast.Sexpr e; _ } ] -> e
  | _ -> Alcotest.fail "expected a single expression statement"

let rec skeleton (e : Ast.expr) : string =
  match e.Ast.desc with
  | Ast.Const _ -> "k"
  | Ast.Var v -> v
  | Ast.Binop (op, a, b) -> Printf.sprintf "(%s%s%s)" (skeleton a) (Ast.binop_to_string op) (skeleton b)
  | Ast.Unop (op, a) -> Printf.sprintf "(%s%s)" (Ast.unop_to_string op) (skeleton a)
  | Ast.Assign (a, b) -> Printf.sprintf "(%s=%s)" (skeleton a) (skeleton b)
  | Ast.Index (a, b) -> Printf.sprintf "%s[%s]" (skeleton a) (skeleton b)
  | Ast.Deref a -> Printf.sprintf "(*%s)" (skeleton a)
  | Ast.Addr a -> Printf.sprintf "(&%s)" (skeleton a)
  | Ast.Cond (a, b, c) -> Printf.sprintf "(%s?%s:%s)" (skeleton a) (skeleton b) (skeleton c)
  | Ast.Call (f, args) -> Printf.sprintf "%s(%s)" (skeleton f) (String.concat "," (List.map skeleton args))
  | Ast.Field (a, f) -> Printf.sprintf "%s.%s" (skeleton a) f
  | Ast.Arrow (a, f) -> Printf.sprintf "%s->%s" (skeleton a) f
  | Ast.Cast (_, a) -> Printf.sprintf "(cast %s)" (skeleton a)
  | Ast.Incr (true, a) -> Printf.sprintf "(++%s)" (skeleton a)
  | Ast.Incr (false, a) -> Printf.sprintf "(%s++)" (skeleton a)
  | Ast.Decr (true, a) -> Printf.sprintf "(--%s)" (skeleton a)
  | Ast.Decr (false, a) -> Printf.sprintf "(%s--)" (skeleton a)
  | Ast.Sizeof _ -> "sizeof"

let test_precedence () =
  check_string "mul over add" "(a+(b*c))" (skeleton (expr_of "a + b * c"));
  check_string "left assoc" "((a-b)-c)" (skeleton (expr_of "a - b - c"));
  check_string "cmp over and" "((a<b)&&(c>k))" (skeleton (expr_of "a < b && c > 1"));
  check_string "or lowest" "((a&&b)||c)" (skeleton (expr_of "a && b || c"));
  check_string "assign right assoc" "(a=(b=c))" (skeleton (expr_of "a = b = c"));
  check_string "unary binds tight" "((-a)*b)" (skeleton (expr_of "-a * b"));
  check_string "deref then index" "(*a)[b]" (skeleton (expr_of "(*a)[b]"));
  check_string "postfix chain" "a->b.c" (skeleton (expr_of "a->b.c"));
  check_string "ternary right assoc" "(a?b:(c?k:k))" (skeleton (expr_of "a ? b : c ? 1 : 2"))

let test_compound_assign () =
  check_string "plus-eq desugars" "(a=(a+b))" (skeleton (expr_of "a += b"));
  check_string "star-eq desugars" "(a=(a*k))" (skeleton (expr_of "a *= 2"))

let test_statements () =
  let p =
    parse
      {|
int main() {
  int i;
  for (i = 0; i < 10; i++) { if (i > 5) break; else continue; }
  while (i) { i--; }
  do { i++; } while (i < 3);
  #pragma poll spot
  return 0;
}
|}
  in
  let f = List.hd p.Ast.funcs in
  check_int "five statements" 5 (List.length f.Ast.f_body);
  check_int "one local" 1 (List.length f.Ast.f_locals)

let test_struct_and_protos () =
  let p =
    parse
      {|
struct pair { int a; int b; };
struct pair *make(int a, int b);
struct pair *make(int a, int b) {
  struct pair *p;
  p = (struct pair *) malloc(sizeof(struct pair));
  p->a = a; p->b = b;
  return p;
}
int main() { return 0; }
|}
  in
  check_int "one struct" 1 (List.length p.Ast.tenv.Ty.structs);
  check_int "prototype not duplicated" 2 (List.length p.Ast.funcs)

let test_kr_default_int () =
  let p = parse "main() { return 0; }" in
  check_bool "K&R main returns int" true (Ty.equal (List.hd p.Ast.funcs).Ast.f_ret Ty.Int)

let parse_error = function Parser.Error _ -> true | _ -> false

let test_errors () =
  expect_raise "missing semi" parse_error (fun () -> parse "int main() { int x x }");
  expect_raise "unbalanced paren" parse_error (fun () -> parse "int main() { return (1; }");
  expect_raise "bad array size" parse_error (fun () -> parse "int a[x]; int main(){}");
  expect_raise "decl after stmt" parse_error (fun () ->
      (* C89 scoping: locals precede statements; a type name mid-body fails *)
      parse "int main() { f(); int x; return 0; }")

(* print -> reparse -> print fixpoint over a corpus incl. all workloads *)
let corpus () =
  List.map
    (fun (w : Hpm_workloads.Registry.t) ->
      (w.Hpm_workloads.Registry.name, w.Hpm_workloads.Registry.source w.Hpm_workloads.Registry.default_n))
    Hpm_workloads.Registry.all

let test_roundtrip () =
  List.iter
    (fun (name, src) ->
      let printed = Pretty.program_to_string (check_src src) in
      let reparsed = Pretty.program_to_string (check_src printed) in
      check_string (name ^ " print fixpoint") printed reparsed)
    (corpus ())

let suite =
  [
    tc "declarators" test_declarators;
    tc "operator precedence" test_precedence;
    tc "compound assignment desugaring" test_compound_assign;
    tc "statements" test_statements;
    tc "structs and prototypes" test_struct_and_protos;
    tc "K&R default-int functions" test_kr_default_int;
    tc "syntax errors" test_errors;
    tc "pretty-print round trip on all workloads" test_roundtrip;
  ]
