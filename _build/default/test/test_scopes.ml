(** Scope-normalization unit tests (the hoisting pass itself; behavioural
    tests live in test_lang_ext). *)

open Hpm_lang
open Util

let normalize src = Scopes.normalize (Parser.parse_string src)

let main_of p = Ast.find_func_exn p "main"

let local_names p = List.map (fun d -> d.Ast.d_name) (main_of p).Ast.f_locals

let rec has_sdecl_stmt (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Sdecl _ -> true
  | Ast.Sif (_, a, b) -> List.exists has_sdecl_stmt a || List.exists has_sdecl_stmt b
  | Ast.Swhile (_, b) | Ast.Sdo (b, _) | Ast.Sfor (_, _, _, b) | Ast.Sblock b ->
      List.exists has_sdecl_stmt b
  | Ast.Sswitch (_, arms, d) ->
      List.exists (fun (_, b) -> List.exists has_sdecl_stmt b) arms
      || List.exists has_sdecl_stmt d
  | _ -> false

let test_hoists_all () =
  let p =
    normalize
      {|
int main() {
  int a;
  { int b; { int c; c = 1; } b = 2; }
  while (a) { int d; d = 3; }
  return 0;
}
|}
  in
  check_bool "no Sdecl remains" false
    (List.exists has_sdecl_stmt (main_of p).Ast.f_body);
  (* block names may be suffixed; one hoisted local per declaration *)
  let names = local_names p in
  check_int "four locals" 4 (List.length names);
  List.iter
    (fun base ->
      check_bool (base ^ " hoisted") true
        (List.exists
           (fun n -> String.equal n base || String.length n > String.length base
                     && String.sub n 0 (String.length base) = base)
           names))
    [ "a"; "b"; "c"; "d" ]

let test_renames_on_collision () =
  let p =
    normalize
      {|
int main() {
  int x;
  { int x; x = 1; }
  { int x; x = 2; }
  return 0;
}
|}
  in
  let names = local_names p in
  check_int "three distinct locals" 3 (List.length (List.sort_uniq compare names));
  check_bool "original kept" true (List.mem "x" names)

let test_avoids_global_capture () =
  let p =
    normalize
      {|
int g;
int main() {
  { int g; g = 1; }
  g = 2;
  return 0;
}
|}
  in
  (* the block-local g must NOT be hoisted under the name "g", or the
     later global assignment would bind to it *)
  check_bool "renamed away from the global" false (List.mem "g" (local_names p))

let test_initializer_becomes_assignment () =
  let p =
    normalize
      {|
int main() {
  { int y = 41; print_int(y + 1); }
  return 0;
}
|}
  in
  (* hoisted decl has no initializer; an assignment stays in the block *)
  let d =
    List.find
      (fun d -> String.length d.Ast.d_name >= 1 && d.Ast.d_name.[0] = 'y')
      (main_of p).Ast.f_locals
  in
  check_bool "initializer stripped" true (d.Ast.d_init = None);
  check_string "behaviour preserved" "42\n"
    (run_on "int main() { { int y = 41; print_int(y + 1); } return 0; }")

let test_idempotent () =
  let src =
    {|
int main() {
  int a;
  { int a; a = 1; { int b = a; print_int(b); } }
  return 0;
}
|}
  in
  let once = Pretty.program_to_string (normalize src) in
  let twice = Pretty.program_to_string (Scopes.normalize (Parser.parse_string once)) in
  check_string "normalize is idempotent on its output" once twice

let test_user_name_collision_with_suffix () =
  (* a user variable already named like the hoister's suffix scheme *)
  check_string "suffix collision handled" "1\n2\n"
    (run_on
       {|
int main() {
  int a__1;
  a__1 = 1;
  { int a = 2; print_int(a__1); print_int(a); }
  return 0;
}
|})

let suite =
  [
    tc "hoists every block decl" test_hoists_all;
    tc "renames on collision" test_renames_on_collision;
    tc "avoids capturing globals" test_avoids_global_capture;
    tc "initializers become assignments" test_initializer_becomes_assignment;
    tc "idempotent" test_idempotent;
    tc "user names colliding with suffixes" test_user_name_collision_with_suffix;
  ]
