(** Lexer tests. *)

open Hpm_lang
open Util

let toks src = Array.to_list (Array.map (fun l -> l.Lexer.tok) (Lexer.tokenize src))

let test_numbers () =
  check_bool "int" true (toks "42" = [ Lexer.INT_LIT 42L; Lexer.EOF ]);
  check_bool "long" true (toks "42L" = [ Lexer.LONG_LIT 42L; Lexer.EOF ]);
  check_bool "double" true (toks "1.5" = [ Lexer.DOUBLE_LIT 1.5; Lexer.EOF ]);
  check_bool "float suffix" true (toks "1.5f" = [ Lexer.FLOAT_LIT 1.5; Lexer.EOF ]);
  check_bool "exponent" true (toks "2e3" = [ Lexer.DOUBLE_LIT 2000.0; Lexer.EOF ]);
  check_bool "neg exponent" true (toks "1e-2" = [ Lexer.DOUBLE_LIT 0.01; Lexer.EOF ]);
  check_bool "trailing dot" true (toks "3." = [ Lexer.DOUBLE_LIT 3.0; Lexer.EOF ])

let test_idents_keywords () =
  check_bool "keywords" true
    (toks "while sizeof struct" = [ Lexer.KW_WHILE; Lexer.KW_SIZEOF; Lexer.KW_STRUCT; Lexer.EOF ]);
  check_bool "ident" true (toks "foo_1" = [ Lexer.IDENT "foo_1"; Lexer.EOF ]);
  check_bool "ident prefix of keyword" true (toks "iff" = [ Lexer.IDENT "iff"; Lexer.EOF ])

let test_operators () =
  check_bool "compound" true
    (toks "a += b" = [ Lexer.IDENT "a"; Lexer.PLUSEQ; Lexer.IDENT "b"; Lexer.EOF ]);
  check_bool "arrow vs minus" true
    (toks "a->b - c" = [ Lexer.IDENT "a"; Lexer.ARROW; Lexer.IDENT "b"; Lexer.MINUS; Lexer.IDENT "c"; Lexer.EOF ]);
  check_bool "shifts" true (toks "<< >>" = [ Lexer.SHL; Lexer.SHR; Lexer.EOF ]);
  check_bool "incr" true (toks "++ --" = [ Lexer.PLUSPLUS; Lexer.MINUSMINUS; Lexer.EOF ]);
  check_bool "relops" true (toks "< <= == !=" = [ Lexer.LT; Lexer.LE; Lexer.EQ; Lexer.NE; Lexer.EOF ])

let test_strings_chars () =
  check_bool "string" true (toks {|"hi"|} = [ Lexer.STR_LIT "hi"; Lexer.EOF ]);
  check_bool "escapes" true (toks {|"a\nb\t\\"|} = [ Lexer.STR_LIT "a\nb\t\\"; Lexer.EOF ]);
  check_bool "char" true (toks "'x'" = [ Lexer.CHAR_LIT 'x'; Lexer.EOF ]);
  check_bool "char escape" true (toks {|'\n'|} = [ Lexer.CHAR_LIT '\n'; Lexer.EOF ])

let test_comments () =
  check_bool "line comment" true (toks "a // b c\nd" = [ Lexer.IDENT "a"; Lexer.IDENT "d"; Lexer.EOF ]);
  check_bool "block comment" true (toks "a /* b\nc */ d" = [ Lexer.IDENT "a"; Lexer.IDENT "d"; Lexer.EOF ])

let test_pragma () =
  check_bool "poll pragma" true (toks "#pragma poll here" = [ Lexer.PRAGMA_POLL "here"; Lexer.EOF ])

let test_positions () =
  let ls = Lexer.tokenize "a\n  b" in
  check_int "line of b" 2 ls.(1).Lexer.line;
  check_int "col of b" 3 ls.(1).Lexer.col

let lex_error = function Lexer.Error _ -> true | _ -> false

let test_errors () =
  expect_raise "unterminated string" lex_error (fun () -> toks "\"abc");
  expect_raise "unterminated comment" lex_error (fun () -> toks "/* abc");
  expect_raise "bad escape" lex_error (fun () -> toks {|"\q"|});
  expect_raise "stray char" lex_error (fun () -> toks "@");
  expect_raise "bad pragma" lex_error (fun () -> toks "#include <stdio.h>")

let suite =
  [
    tc "numeric literals" test_numbers;
    tc "identifiers and keywords" test_idents_keywords;
    tc "operators" test_operators;
    tc "strings and chars" test_strings_chars;
    tc "comments" test_comments;
    tc "poll pragma" test_pragma;
    tc "source positions" test_positions;
    tc "lexical errors" test_errors;
  ]
