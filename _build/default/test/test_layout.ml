(** Layout tests: sizes, alignment, field offsets, and the machine-
    independent ordinal <-> machine-specific byte-offset maps. *)

open Hpm_arch
open Hpm_lang
open Util

let node_def =
  {
    Ty.s_name = "node";
    s_fields =
      [ { Ty.fld_name = "data"; fld_ty = Ty.Float }; { Ty.fld_name = "link"; fld_ty = Ty.Ptr (Ty.Struct "node") } ];
  }

(* char, then double: forces padding that differs between i386 (4-byte
   double alignment) and everything else (8-byte) *)
let padded_def =
  {
    Ty.s_name = "padded";
    s_fields =
      [ { Ty.fld_name = "c"; fld_ty = Ty.Char }; { Ty.fld_name = "d"; fld_ty = Ty.Double }; { Ty.fld_name = "i"; fld_ty = Ty.Int } ];
  }

let tenv = Ty.add_struct (Ty.add_struct Ty.empty_tenv node_def) padded_def

let layout arch = Layout.make arch tenv

let test_scalar_sizes () =
  let l32 = layout Arch.sparc20 and l64 = layout Arch.x86_64 in
  check_int "int on ilp32" 4 (Layout.sizeof l32 Ty.Int);
  check_int "long on ilp32" 4 (Layout.sizeof l32 Ty.Long);
  check_int "long on lp64" 8 (Layout.sizeof l64 Ty.Long);
  check_int "ptr on ilp32" 4 (Layout.sizeof l32 (Ty.Ptr Ty.Int));
  check_int "ptr on lp64" 8 (Layout.sizeof l64 (Ty.Ptr Ty.Int));
  check_int "double everywhere" 8 (Layout.sizeof l32 Ty.Double);
  check_int "char" 1 (Layout.sizeof l64 Ty.Char)

let test_struct_layout () =
  (* struct node { float; ptr } : 8 bytes on ILP32, 16 on LP64 (4 pad) *)
  check_int "node on sparc20" 8 (Layout.sizeof (layout Arch.sparc20) (Ty.Struct "node"));
  check_int "node on x86_64" 16 (Layout.sizeof (layout Arch.x86_64) (Ty.Struct "node"));
  check_int "link offset ilp32" 4 (Layout.field_offset (layout Arch.sparc20) "node" "link");
  check_int "link offset lp64" 8 (Layout.field_offset (layout Arch.x86_64) "node" "link")

let test_padding_differs () =
  (* { char; double; int }:
       8-byte double alignment: c@0, d@8, i@16 -> 24
       4-byte (i386):           c@0, d@4, i@12 -> 16 *)
  check_int "padded on sparc" 24 (Layout.sizeof (layout Arch.sparc20) (Ty.Struct "padded"));
  check_int "padded on i386" 16 (Layout.sizeof (layout Arch.i386) (Ty.Struct "padded"));
  check_int "d offset sparc" 8 (Layout.field_offset (layout Arch.sparc20) "padded" "d");
  check_int "d offset i386" 4 (Layout.field_offset (layout Arch.i386) "padded" "d")

let test_arrays () =
  let l = layout Arch.sparc20 in
  check_int "int[10]" 40 (Layout.sizeof l (Ty.Array (Ty.Int, 10)));
  check_int "node[3]" 24 (Layout.sizeof l (Ty.Array (Ty.Struct "node", 3)));
  check_int "2d array" 24 (Layout.sizeof l (Ty.Array (Ty.Array (Ty.Int, 3), 2)))

let test_field_errors () =
  expect_raise "unknown field" (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Layout.field_offset (layout Arch.sparc20) "node" "nope")

let test_elems_ordinals () =
  (* node[2] flattens to [float; ptr; float; ptr] on every arch *)
  let t = Ty.Array (Ty.Struct "node", 2) in
  List.iter
    (fun arch ->
      let e = Layout.elems (layout arch) t in
      check_int (arch.Arch.name ^ " elem count") 4 (Layout.elem_count e);
      check_bool (arch.Arch.name ^ " kinds") true
        (Layout.kind_of_ordinal e 0 = Ty.KFloat
        && Layout.kind_of_ordinal e 1 = Ty.KPtr (Ty.Struct "node")
        && Layout.kind_of_ordinal e 2 = Ty.KFloat))
    arches;
  (* byte offsets differ per arch but ordinals agree *)
  let e32 = Layout.elems (layout Arch.sparc20) t in
  let e64 = Layout.elems (layout Arch.x86_64) t in
  check_int "ord 2 byte on ilp32" 8 (Layout.byte_of_ordinal e32 2);
  check_int "ord 2 byte on lp64" 16 (Layout.byte_of_ordinal e64 2)

let test_ordinal_of_byte () =
  let e = Layout.elems (layout Arch.x86_64) (Ty.Struct "padded") in
  (* c@0, d@8, i@16 on lp64-ish (max_align 16 doesn't change this) *)
  check_bool "byte 0 -> ord 0" true (Layout.ordinal_of_byte e 0 = Some 0);
  check_bool "byte 8 -> ord 1" true (Layout.ordinal_of_byte e 8 = Some 1);
  check_bool "byte 16 -> ord 2" true (Layout.ordinal_of_byte e 16 = Some 2);
  check_bool "padding byte -> None" true (Layout.ordinal_of_byte e 3 = None);
  check_bool "mid-element -> None" true (Layout.ordinal_of_byte e 10 = None)

(* random type generator for the bijection property *)
let rec gen_ty depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneofl [ Ty.Char; Ty.Short; Ty.Int; Ty.Long; Ty.Float; Ty.Double; Ty.Ptr Ty.Int; Ty.Ptr (Ty.Struct "node") ]
  else
    frequency
      [
        (3, oneofl [ Ty.Char; Ty.Int; Ty.Double; Ty.Ptr (Ty.Struct "node") ]);
        (1, map2 (fun t n -> Ty.Array (t, 1 + (n mod 4))) (gen_ty (depth - 1)) small_nat);
        (1, return (Ty.Struct "padded"));
        (1, return (Ty.Struct "node"));
      ]

let prop_ordinal_bijection =
  qt ~count:200 "ordinal <-> byte bijection on random types"
    (QCheck.make (gen_ty 3))
    (fun ty ->
      List.for_all
        (fun arch ->
          let e = Layout.elems (layout arch) ty in
          let n = Layout.elem_count e in
          let ok = ref true in
          for ord = 0 to n - 1 do
            let b = Layout.byte_of_ordinal e ord in
            if Layout.ordinal_of_byte e b <> Some ord then ok := false;
            (* alignment invariant: offset divisible by the element's alignment *)
            let k = Layout.kind_of_ordinal e ord in
            let al = Layout.scalar_align (layout arch) k in
            if b mod al <> 0 then ok := false
          done;
          !ok)
        arches)

let prop_flatten_agrees =
  qt ~count:200 "Ty.flatten agrees with Layout.elems kinds"
    (QCheck.make (gen_ty 3))
    (fun ty ->
      let kinds = Ty.flatten tenv ty in
      let e = Layout.elems (layout Arch.dec5000) ty in
      List.length kinds = Layout.elem_count e
      && List.for_all2 ( = ) kinds (List.init (Layout.elem_count e) (Layout.kind_of_ordinal e)))

let prop_size_positive =
  qt ~count:200 "sizeof positive and divisible by alignof"
    (QCheck.make (gen_ty 3))
    (fun ty ->
      List.for_all
        (fun arch ->
          let l = layout arch in
          let s = Layout.sizeof l ty and a = Layout.alignof l ty in
          s > 0 && a > 0 && s mod a = 0)
        arches)

let suite =
  [
    tc "scalar sizes per arch" test_scalar_sizes;
    tc "struct layout and field offsets" test_struct_layout;
    tc "padding differs across arches" test_padding_differs;
    tc "array sizes" test_arrays;
    tc "field lookup errors" test_field_errors;
    tc "element tables agree on ordinals" test_elems_ordinals;
    tc "ordinal_of_byte hits and misses" test_ordinal_of_byte;
    prop_ordinal_bijection;
    prop_flatten_agrees;
    prop_size_positive;
  ]
