(** Migration-unsafe feature detection tests. *)

open Hpm_ir
open Util

let diags src = Unsafe.check (check_src src)
let nerrors src = List.length (Unsafe.errors (diags src))
let nwarnings src = List.length (Unsafe.warnings (diags src))

let test_int_to_ptr () =
  check_int "int to ptr" 1
    (nerrors "int main() { int *p; p = (int *) 4096; return 0; }");
  check_int "null cast ok" 0 (nerrors "int main() { int *p; p = (int *) 0; return 0; }")

let test_ptr_to_int () =
  check_int "ptr to long" 1
    (nerrors "int main() { int x; long a; a = (long) &x; return 0; }")

let test_untyped_malloc () =
  check_int "uncast malloc" 1
    (nerrors "int main() { int *p; long a; a = 0L; malloc(8L); return 0; }");
  check_int "typed malloc ok" 0
    (nerrors "int main() { int *p; p = (int *) malloc(4 * sizeof(int)); return 0; }");
  check_int "char malloc ok" 0
    (nerrors "int main() { char *p; p = (char *) malloc(32L); return 0; }")

let test_unrelated_ptr_cast () =
  check_int "double* as int*" 1
    (nwarnings "int main() { double d; int *p; p = (int *) &d; return 0; }");
  check_int "via void* ok" 0
    (nwarnings
       "int main() { double d; int *p; char *c; c = (char *) &d; return 0; }")

let test_long_narrowing () =
  check_int "long to int warning" 1
    (nwarnings "int main() { long l; int i; l = 5L; i = (int) l; return 0; }")

let test_clean_program () =
  List.iter
    (fun (w : Hpm_workloads.Registry.t) ->
      check_int
        (w.Hpm_workloads.Registry.name ^ " has no unsafe errors")
        0
        (nerrors (w.Hpm_workloads.Registry.source w.Hpm_workloads.Registry.default_n)))
    Hpm_workloads.Registry.all

let test_check_exn () =
  expect_raise "rejects" (function Unsafe.Rejected _ -> true | _ -> false) (fun () ->
      Unsafe.check_exn (check_src "int main() { int *p; p = (int *) 4096; return 0; }"));
  (* prepare refuses unsafe programs end to end *)
  expect_raise "prepare rejects" (function Unsafe.Rejected _ -> true | _ -> false)
    (fun () -> prepare "int main() { long a; int x; a = (long) &x; return 0; }")

let test_locations_reported () =
  match diags "int main() { int *p;\n  p = (int *) 4096;\n  return 0; }" with
  | [ d ] -> check_int "line number" 2 d.Unsafe.loc.Hpm_lang.Ast.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let suite =
  [
    tc "integer-to-pointer casts" test_int_to_ptr;
    tc "pointer-to-integer casts" test_ptr_to_int;
    tc "untyped malloc" test_untyped_malloc;
    tc "unrelated pointer casts warn" test_unrelated_ptr_cast;
    tc "long narrowing warns" test_long_narrowing;
    tc "all workloads are migration-safe" test_clean_program;
    tc "check_exn and prepare reject" test_check_exn;
    tc "diagnostics carry locations" test_locations_reported;
  ]
