test/test_annotate.ml: Annotate Hpm_arch Hpm_core Hpm_ir Hpm_lang Hpm_workloads List Pollpoint Util
