test/test_sched.ml: Hpm_arch Hpm_net Hpm_sched Hpm_workloads List Option Printf Sched Util
