test/test_collect_restore.ml: Alcotest Collect Cstats Hpm_arch Hpm_core Hpm_workloads List Migration Printf Restore Util
