test/test_migration.ml: Alcotest Collect Cstats Hpm_arch Hpm_core Hpm_machine Hpm_workloads List Migration Printf QCheck Restore String Util
