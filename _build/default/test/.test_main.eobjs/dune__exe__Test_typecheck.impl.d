test/test_typecheck.ml: Alcotest Ast Hpm_lang Printf Ty Typecheck Util
