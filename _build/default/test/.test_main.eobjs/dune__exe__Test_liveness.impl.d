test/test_liveness.ml: Alcotest Array Compile Hpm_ir Ir List Liveness Pollpoint String Util
