test/test_stream.ml: Alcotest Buffer Hpm_core Hpm_lang Hpm_machine Hpm_workloads Hpm_xdr Int64 Mem Migration Stream Ty Util
