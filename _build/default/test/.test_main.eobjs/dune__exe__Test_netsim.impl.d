test/test_netsim.ml: Alcotest Hpm_net Netsim String Util
