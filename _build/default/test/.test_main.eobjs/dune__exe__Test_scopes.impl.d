test/test_scopes.ml: Ast Hpm_lang List Parser Pretty Scopes String Util
