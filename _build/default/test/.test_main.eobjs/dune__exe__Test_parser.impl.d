test/test_parser.ml: Alcotest Ast Hpm_lang Hpm_workloads List Parser Pretty Printf String Ty Util
