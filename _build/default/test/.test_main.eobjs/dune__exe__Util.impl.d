test/util.ml: Alcotest Hpm_arch Hpm_core Hpm_ir Hpm_lang Hpm_machine Migration Printexc QCheck QCheck_alcotest String
