test/test_pollpoint.ml: Compile Hpm_arch Hpm_core Hpm_ir Hpm_machine List Pollpoint String Util
