test/test_interp.ml: Hpm_arch Hpm_core Hpm_machine List Printf Util
