test/test_unsafe.ml: Alcotest Hpm_ir Hpm_lang Hpm_workloads List Unsafe Util
