test/test_lang_ext.ml: Hpm_arch Hpm_core Hpm_lang Hpm_machine List Printf Util
