test/test_checkpoint.ml: Checkpoint Filename Fun Hpm_arch Hpm_core Hpm_workloads Hpm_xdr Migration Restore Stream Sys Unix Util
