test/test_msr.ml: Compile Graph Hpm_arch Hpm_ir Hpm_lang Hpm_machine Hpm_msr List Msrlt String Ti Ty Util
