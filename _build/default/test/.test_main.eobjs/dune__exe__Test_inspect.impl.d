test/test_inspect.ml: Alcotest Buffer Collect Cstats Format Hpm_arch Hpm_core Hpm_workloads Hpm_xdr Inspect List Migration Restore Stream String Util
