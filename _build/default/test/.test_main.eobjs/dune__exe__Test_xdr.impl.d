test/test_xdr.ml: Alcotest Buffer Char Float Hpm_arch Hpm_xdr Int64 QCheck String Util Xdr
