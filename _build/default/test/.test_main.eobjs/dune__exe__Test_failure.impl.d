test/test_failure.ml: Bytes Char Collect Hpm_arch Hpm_core Hpm_machine Hpm_net Hpm_workloads Hpm_xdr List Migration Printf Restore Stream String Util
