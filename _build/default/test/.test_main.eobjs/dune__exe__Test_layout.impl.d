test/test_layout.ml: Arch Hpm_arch Hpm_lang Layout List QCheck Ty Util
