test/test_workloads.ml: Alcotest Hashtbl Hpm_arch Hpm_core Hpm_machine Hpm_workloads Int64 List Printf String Util
