test/test_fuzz.ml: Buffer Hpm_arch Hpm_core Int32 List Printf QCheck String Util
