test/test_arch.ml: Arch Endian Hpm_arch Int64 List Util
