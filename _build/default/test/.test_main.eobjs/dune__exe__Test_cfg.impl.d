test/test_cfg.ml: Alcotest Array Cfg Compile Hpm_ir Ir List Util
