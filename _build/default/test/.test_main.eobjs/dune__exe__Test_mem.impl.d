test/test_mem.ml: Arch Bytes Char Hpm_arch Hpm_lang Hpm_machine Int64 Layout List Mem Mstats QCheck String Ty Util
