test/test_lexer.ml: Array Hpm_lang Lexer Util
