test/test_endian.ml: Alcotest Bytes Endian Float Hpm_arch Int32 Int64 QCheck Util
