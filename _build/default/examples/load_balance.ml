(* The distributed environment of §2: a scheduler managing processes on a
   small heterogeneous network, migrating them to balance load.

   Three machines (a fast x86_64, a Sparc 20, a slow DEC 5000) share a
   10 Mb/s Ethernet.  Six n-queens jobs all start on the slow DECstation;
   the load-balancing policy spreads them out, and the fastest-machine
   policy is shown for comparison against no policy at all.

     dune exec examples/load_balance.exe
*)

open Hpm_core
open Hpm_sched

let jobs = 6
let queens = 8

let run_policy name policy =
  let n1 = Sched.node "decbox" Hpm_arch.Arch.dec5000 in
  let n2 = Sched.node "sparcbox" Hpm_arch.Arch.sparc20 in
  let n3 = Sched.node "fastbox" Hpm_arch.Arch.x86_64 in
  let sim = Sched.create ~channel:(Hpm_net.Netsim.ethernet_10 ()) [ n1; n2; n3 ] in
  let m = Migration.prepare (Hpm_workloads.Nqueens.source queens) in
  let procs =
    List.init jobs (fun i -> Sched.spawn sim n1 (Printf.sprintf "queens-%d" i) m)
  in
  let _ticks = Sched.run ~policy sim in
  Fmt.pr "@.=== policy: %s ===@." name;
  List.iter (fun e -> Fmt.pr "%a@." Sched.pp_event e) (Sched.events sim);
  List.iter
    (fun p ->
      Fmt.pr "%s: output=%s migrations=%d finished at %.2fs on %s@."
        p.Sched.p_name
        (String.trim (Sched.output p))
        p.Sched.p_migrations
        (Option.value ~default:nan p.Sched.p_finish_time)
        p.Sched.p_node.Sched.n_name)
    procs;
  let makespan =
    List.fold_left
      (fun acc p -> max acc (Option.value ~default:nan p.Sched.p_finish_time))
      0. procs
  in
  Fmt.pr "makespan: %.2f simulated seconds@." makespan;
  makespan

let () =
  let none = run_policy "none (all jobs stay on the slow node)" (fun _ -> ()) in
  let lb = run_policy "load-balance" Sched.load_balance in
  Fmt.pr "@.migration speedup from load balancing: %.2fx@." (none /. lb)
