(* Bitonic-sort under migration (the §4.1 heterogeneity experiment,
   bitonic row).

   Builds a binary search tree of random integers on one machine, migrates
   the whole pointer structure to a machine with the opposite byte order,
   and finishes the sort there.  "Despite multiple references to MSR's
   significant nodes, all memory blocks and pointers are collected and
   restored without duplication" — the report's block count equals the
   number of live heap nodes plus the named variables, each exactly once.

     dune exec examples/bitonic_migration.exe [-- N]
*)

open Hpm_core

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2_000
  in
  let m = Migration.prepare (Hpm_workloads.Bitonic.source n) in
  let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.ultra5 in
  Fmt.pr "bitonic n=%d, no migration:@.%s@." n expected;
  (* migrate when most of the tree is built: poll events are dominated by
     tree_insert entries, so ~4n/5 events is late in construction *)
  let o =
    Migration.run_migrating m ~src_arch:Hpm_arch.Arch.sparc20
      ~dst_arch:Hpm_arch.Arch.dec5000 ~after_polls:(4 * n) ()
  in
  Fmt.pr "with migration sparc20 -> dec5000 late in construction:@.%s@."
    o.Migration.output;
  (match o.Migration.report with
  | Some r ->
      Fmt.pr "%a@." Migration.pp_report r;
      Fmt.pr "heap nodes moved: %d (each tree node exactly once)@."
        r.Migration.restore_stats.Cstats.r_heap_allocs
  | None -> Fmt.pr "(finished before migration)@.");
  Fmt.pr "outputs %s@."
    (if String.equal expected o.Migration.output then "MATCH" else "DIFFER")
