(* Quickstart: the whole public API in one page.

   Write a Mini-C program, run the pre-compiler, start it on a simulated
   little-endian DECstation, migrate it mid-loop to a big-endian SPARC,
   and watch it finish there with all of its heap intact.

     dune exec examples/quickstart.exe
*)

open Hpm_core

let source =
  {|
struct point { double x; double y; struct point *next; };

struct point *path;

double length(struct point *p) {
  double d;
  d = 0.0;
  while (p != 0 && p->next != 0) {
    d = d + sqrt((p->x - p->next->x) * (p->x - p->next->x)
               + (p->y - p->next->y) * (p->y - p->next->y));
    p = p->next;
  }
  return d;
}

int main() {
  struct point *p;
  int i;
  path = 0;
  for (i = 0; i < 1000; i++) {
    p = (struct point *) malloc(sizeof(struct point));
    p->x = (double)(i % 97);
    p->y = (double)((i * 7) % 89);
    p->next = path;
    path = p;
  }
  print_str("path length:\n");
  print_double(length(path));
  return 0;
}
|}

let () =
  (* 1. Pre-compile into the migratable format: type check, reject
        migration-unsafe features, lower to IR, insert poll-points. *)
  let m = Migration.prepare source in
  Fmt.pr "pre-compiled: %d poll-points, %d TI entries@."
    (List.length m.Migration.polls.Hpm_ir.Pollpoint.polls)
    (Hpm_msr.Ti.entry_count m.Migration.ti);

  (* 2. Reference run, no migration, on one machine. *)
  let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.ultra5 in
  Fmt.pr "@.reference run on ultra5:@.%s" expected;

  (* 3. Start on a little-endian machine; migrate to a big-endian one
        after 500 poll events (mid-construction). *)
  let outcome =
    Migration.run_migrating m ~src_arch:Hpm_arch.Arch.dec5000
      ~dst_arch:Hpm_arch.Arch.sparc20 ~after_polls:500 ()
  in
  (match outcome.Migration.report with
  | Some r -> Fmt.pr "@.%a@." Migration.pp_report r
  | None -> ());
  Fmt.pr "@.migrated run (dec5000 -> sparc20):@.%s" outcome.Migration.output;
  Fmt.pr "@.outputs %s@."
    (if String.equal expected outcome.Migration.output then "MATCH" else "DIFFER")
