(* Heterogeneous checkpoint / restart.

   The migration stream is a complete machine-independent process image,
   so writing it to disk gives checkpointing for free: this demo runs a
   quicksort on a little-endian DECstation, checkpoints it mid-sort to a
   file, then restarts the same file twice — once on a big-endian SPARC
   and once on an LP64 x86-64 box — and shows both completions agree with
   an uninterrupted run.  (qsort's arithmetic stays within 32 bits, so
   even the ILP32 -> LP64 restart is output-identical; see README on
   width-dependent programs.)

     dune exec examples/checkpoint_demo.exe
*)

open Hpm_core

let () =
  let m = Migration.prepare (Hpm_workloads.Qsort.source 4_000) in
  let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.ultra5 in
  let path = Filename.temp_file "hpm_demo" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fmt.pr "running on dec5000, checkpointing to %s mid-build...@." path;
      let before = Checkpoint.run_and_save m Hpm_arch.Arch.dec5000 ~after_polls:2500 path in
      Fmt.pr "checkpoint written: %d bytes@." (Unix.stat path).Unix.st_size;
      Fmt.pr "@.decoded image (first lines):@.";
      let data =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let buf = Buffer.create 4096 in
      let ppf = Format.formatter_of_buffer buf in
      ignore (Inspect.dump ~ppf m.Migration.prog m.Migration.ti data);
      Format.pp_print_flush ppf ();
      String.split_on_char '\n' (Buffer.contents buf)
      |> List.filteri (fun i _ -> i < 8)
      |> List.iter (Fmt.pr "  %s@.");
      Fmt.pr "  ...@.@.";
      let on_sparc = Checkpoint.resume_and_finish m Hpm_arch.Arch.sparc20 path in
      Fmt.pr "restarted on sparc20 (big-endian):    %s@."
        (if String.equal expected (before ^ on_sparc) then "completed, output MATCHES"
         else "OUTPUT DIFFERS");
      let on_x86 = Checkpoint.resume_and_finish m Hpm_arch.Arch.x86_64 path in
      Fmt.pr "restarted on x86_64 (LP64):           %s@."
        (if String.equal expected (before ^ on_x86) then "completed, output MATCHES"
         else "OUTPUT DIFFERS"))
