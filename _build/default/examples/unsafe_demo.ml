(* Migration-unsafe feature detection (§1: "identify the subset of
   language features which do not prevent process migration", after Smith
   & Hutchinson).

   Feeds the pre-compiler a program full of hazards and shows the
   diagnostics; then shows that the same program with the hazards removed
   is accepted.

     dune exec examples/unsafe_demo.exe
*)

let bad_source =
  {|
int main() {
  int x;
  int *p;
  long addr;
  char *raw;

  p = (int *) 4096;          /* int -> pointer cast: meaningless after migration */
  x = 5;
  addr = (long) &x;          /* pointer -> int cast: address leaks into data */
  raw = (char *) malloc(8);  /* fine: char buffer */
  p = (int *) raw;           /* unrelated pointer cast: collected under char type */
  print_int(x);
  return 0;
}
|}

let good_source =
  {|
int main() {
  int x;
  int *p;
  x = 5;
  p = &x;                      /* addresses may flow through pointers... */
  print_int(*p);               /* ...because the MSR model translates them */
  return 0;
}
|}

let () =
  Fmt.pr "=== scanning the hazardous program ===@.";
  let ast = Hpm_lang.Typecheck.check_program (Hpm_lang.Parser.parse_string bad_source) in
  let diags = Hpm_ir.Unsafe.check ast in
  List.iter (fun d -> Fmt.pr "  %a@." Hpm_ir.Unsafe.pp_diag d) diags;
  Fmt.pr "=> %d errors, %d warnings: rejected by the pre-compiler@.@."
    (List.length (Hpm_ir.Unsafe.errors diags))
    (List.length (Hpm_ir.Unsafe.warnings diags));
  Fmt.pr "=== scanning the safe version ===@.";
  let m = Hpm_core.Migration.prepare good_source in
  Fmt.pr "accepted: %d poll-points inserted; running with migration...@."
    (List.length m.Hpm_core.Migration.polls.Hpm_ir.Pollpoint.polls);
  let o =
    Hpm_core.Migration.run_migrating m ~src_arch:Hpm_arch.Arch.dec5000
      ~dst_arch:Hpm_arch.Arch.sparc20 ()
  in
  Fmt.pr "output: %s@." (String.trim o.Hpm_core.Migration.output)
