(* Linpack under migration (the §4.1 heterogeneity experiment, linpack row).

   Solves a small dense system, migrating DEC 5000 -> Sparc 20 in the
   middle of the factorization.  The solution is checked on the
   destination machine: "large floating-point data are correctly
   transferred [and] the data collection and restoration process preserves
   the high-order floating point accuracy."

     dune exec examples/linpack_migration.exe [-- N]
*)

open Hpm_core

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1)
    else Hpm_workloads.Linpack.test_size
  in
  let m = Migration.prepare (Hpm_workloads.Linpack.source n) in
  let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.ultra5 in
  Fmt.pr "linpack %dx%d, no migration:@.%s@." n n expected;
  (* migrate somewhere inside dgefa: after ~n poll events the outer
     elimination loop is underway *)
  let o =
    Migration.run_migrating m ~src_arch:Hpm_arch.Arch.dec5000
      ~dst_arch:Hpm_arch.Arch.sparc20 ~after_polls:(3 * n) ()
  in
  Fmt.pr "with migration dec5000 -> sparc20 mid-factorization:@.%s@." o.Migration.output;
  (match o.Migration.report with
  | Some r ->
      Fmt.pr "%a@." Migration.pp_report r;
      let ch = Hpm_net.Netsim.ethernet_100 () in
      Fmt.pr "simulated Tx over %s: %.4f s@." ch.Hpm_net.Netsim.name
        (Hpm_net.Netsim.tx_time ch r.Migration.stream_bytes)
  | None -> Fmt.pr "(finished before migration)@.");
  Fmt.pr "floating-point results %s@."
    (if String.equal expected o.Migration.output then "IDENTICAL" else "DIFFER")
