(* The paper's Figure 1, reproduced.

   Runs the example program of §3.2, suspends it exactly where the paper
   takes its snapshot — in foo, just before the malloc at line 20, with
   the for loop having completed four iterations — and prints the MSR
   graph.  The paper's figure shows 12 vertices; this prints the graph so
   you can compare, plus Graphviz dot on request.

     dune exec examples/fig1_example.exe [-- --dot]
*)

open Hpm_core

(* The program of Figure 1(a), verbatim up to formatting.  A user
   poll-point marks the paper's snapshot location (right before line 20);
   automatic insertion is disabled so poll events count foo invocations
   exactly. *)
let source =
  {|
struct node {
  float data;
  struct node *link;
};
struct node *first, *last;

void foo(struct node **p, int **q) {
  #pragma poll before_malloc
  *p = (struct node *) malloc(sizeof(struct node));
  (*p)->data = 10.0;
  (**q)++;
}

int main() {
  int i;
  int a, *b;
  struct node *parray[10];
  a = 1;
  b = &a;
  for (i = 0; i < 10; i++) {
    foo(parray + i, &b);
    first = parray[0];
    last = parray[i];
    first->link = last;
    if (i > 0) {
      parray[i]->link = parray[i - 1];
    }
  }
  return 0;
}
|}

let () =
  let dot = Array.exists (String.equal "--dot") Sys.argv in
  let m = Migration.prepare ~strategy:Hpm_ir.Pollpoint.user_only_strategy source in
  let p = Migration.start m Hpm_arch.Arch.dec5000 in
  (* the paper: "the for loop at line 12 had been executed four times
     before the snapshot" — suspend at foo's 5th invocation *)
  Hpm_machine.Interp.request_migration_after p 4;
  match Hpm_machine.Interp.run p with
  | Hpm_machine.Interp.RPolled _ ->
      let g = Hpm_msr.Graph.snapshot p in
      let g = Hpm_msr.Graph.user_only (Hpm_msr.Graph.reachable_from_roots p g) in
      if dot then print_string (Hpm_msr.Graph.to_dot g)
      else (
        Fmt.pr "%a" Hpm_msr.Graph.pp g;
        Fmt.pr
          "@.The paper's Figure 1(b) shows 12 vertices (first, last, i, a, b,@.\
           parray, addr1-addr4, p, q) — check them above.  Now migrating the@.\
           snapshot dec5000 -> sparc20 and finishing there...@.";
        let dst, report = Migration.migrate m p Hpm_arch.Arch.sparc20 in
        (match Hpm_machine.Interp.run dst with
        | Hpm_machine.Interp.RDone _ -> Fmt.pr "@.resumed and finished OK@."
        | _ -> Fmt.pr "@.unexpected suspension@.");
        Fmt.pr "%a@." Migration.pp_report report)
  | _ -> Fmt.epr "program ended before the snapshot point@."
