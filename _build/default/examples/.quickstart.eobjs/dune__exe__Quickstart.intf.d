examples/quickstart.mli:
