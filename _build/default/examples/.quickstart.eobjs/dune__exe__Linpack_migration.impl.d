examples/linpack_migration.ml: Array Fmt Hpm_arch Hpm_core Hpm_net Hpm_workloads Migration String Sys
