examples/checkpoint_demo.ml: Buffer Checkpoint Filename Fmt Format Fun Hpm_arch Hpm_core Hpm_workloads Inspect List Migration String Sys Unix
