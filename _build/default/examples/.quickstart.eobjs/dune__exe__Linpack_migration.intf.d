examples/linpack_migration.mli:
