examples/bitonic_migration.ml: Array Cstats Fmt Hpm_arch Hpm_core Hpm_workloads Migration String Sys
