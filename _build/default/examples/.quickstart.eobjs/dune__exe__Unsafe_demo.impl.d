examples/unsafe_demo.ml: Fmt Hpm_arch Hpm_core Hpm_ir Hpm_lang List String
