examples/load_balance.ml: Fmt Hpm_arch Hpm_core Hpm_net Hpm_sched Hpm_workloads List Migration Option Printf Sched String
