examples/bitonic_migration.mli:
