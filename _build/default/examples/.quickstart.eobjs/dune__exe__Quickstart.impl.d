examples/quickstart.ml: Fmt Hpm_arch Hpm_core Hpm_ir Hpm_msr List Migration String
