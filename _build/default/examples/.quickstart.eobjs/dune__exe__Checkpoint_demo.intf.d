examples/checkpoint_demo.mli:
