examples/fig1_example.ml: Array Fmt Hpm_arch Hpm_core Hpm_ir Hpm_machine Hpm_msr Migration String Sys
