examples/unsafe_demo.mli:
