(* migratec: the pre-compiler CLI.

   Subcommands:
     check FILE     - parse, type-check, and report migration-unsafe features
     lint FILE      - the full static analysis: unsafe features plus the
                      flow-sensitive checks (uninitialized/dangling values
                      live at poll-points, double frees, dead stores) and
                      an optional per-poll migration-footprint report
     compat FILE    - arch-pair compatibility matrix: per ordered pair and
                      poll-point, legal / lossy / illegal
     ir FILE        - dump the annotated IR (after poll-point insertion)
     polls FILE     - list poll-points with their live-variable sets
     graph FILE     - run to a poll-point and print the MSR graph (or dot)
     source FILE    - re-print the parsed program (pretty-printer round trip)

   FILE may also be "workload:NAME[:N]" to use a built-in workload. *)

open Cmdliner
open Hpm_core

let read_input (spec : string) : string =
  match String.split_on_char ':' spec with
  | [ "workload"; name ] ->
      let w = Hpm_workloads.Registry.find_exn name in
      w.Hpm_workloads.Registry.source w.Hpm_workloads.Registry.default_n
  | [ "workload"; name; n ] ->
      let w = Hpm_workloads.Registry.find_exn name in
      w.Hpm_workloads.Registry.source (int_of_string n)
  | _ ->
      let ic = open_in_bin spec in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s

let strategy_of_string = function
  | "default" -> Hpm_ir.Pollpoint.default_strategy
  | "outer" -> Hpm_ir.Pollpoint.outer_loops_strategy
  | "user" -> Hpm_ir.Pollpoint.user_only_strategy
  | s -> failwith (Printf.sprintf "unknown strategy %S (default|outer|user)" s)

let with_errors f =
  try f () with
  | Hpm_lang.Lexer.Error (m, l, c) ->
      Fmt.epr "lexical error at %d:%d: %s@." l c m;
      exit 1
  | Hpm_lang.Parser.Error (m, l, c) ->
      Fmt.epr "syntax error at %d:%d: %s@." l c m;
      exit 1
  | Hpm_lang.Typecheck.Error (m, loc) ->
      Fmt.epr "type error at %a: %s@." Hpm_lang.Ast.pp_loc loc m;
      exit 1
  | Hpm_ir.Diag.Rejected diags ->
      Fmt.epr "program rejected by static analysis:@.";
      List.iter (fun d -> Fmt.epr "  %a@." Hpm_ir.Diag.pp d) diags;
      exit 1
  | Invalid_argument m ->
      Fmt.epr "error: %s@." m;
      exit 2

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Mini-C source file, or workload:NAME[:N]")

let strategy_arg =
  Arg.(value & opt string "default" & info [ "strategy" ] ~docv:"S" ~doc:"poll-point strategy: default, outer, or user")

let werror_arg =
  Arg.(value & flag & info [ "werror" ] ~doc:"treat warnings as errors (exit 1)")

let suppress_arg =
  Arg.(
    value & opt_all string []
    & info [ "suppress" ] ~docv:"CODE"
        ~doc:"suppress a diagnostic code (repeatable; comma-separated lists accepted)")

let no_lint_arg =
  Arg.(
    value & flag
    & info [ "no-lint" ]
        ~doc:"skip the flow-sensitive lint gate (accept programs the lint would reject)")

let diag_config werror suppress =
  {
    Hpm_ir.Diag.werror;
    suppress = List.concat_map (String.split_on_char ',') suppress;
  }

let cmd_check =
  let run file werror suppress =
    with_errors (fun () ->
        let src = read_input file in
        let ast = Hpm_lang.Parser.parse_string src in
        let ast = Hpm_lang.Typecheck.check_program ast in
        let diags =
          Hpm_ir.Diag.apply (diag_config werror suppress) (Hpm_ir.Unsafe.check ast)
        in
        if diags = [] then Fmt.pr "%s: migration-safe, no warnings@." file
        else List.iter (fun d -> Fmt.pr "%a@." Hpm_ir.Diag.pp d) diags;
        exit (Hpm_ir.Diag.exit_code diags))
  in
  Cmd.v (Cmd.info "check" ~doc:"type-check and scan for migration-unsafe features")
    Term.(const run $ file_arg $ werror_arg $ suppress_arg)

let cmd_lint =
  let format_arg =
    Arg.(
      value & opt string "text"
      & info [ "format" ] ~docv:"F" ~doc:"output format: text or json")
  in
  let footprint_arg =
    Arg.(
      value & flag
      & info [ "footprint" ] ~doc:"also report per-poll migration footprints (live bytes)")
  in
  let arch_arg =
    Arg.(
      value & opt string "ultra5"
      & info [ "arch" ] ~docv:"A" ~doc:"architecture for footprint sizes")
  in
  let run file strategy format werror suppress footprint archname =
    with_errors (fun () ->
        let a =
          Hpm_ir.Lint.analyze_source ~strategy:(strategy_of_string strategy)
            (read_input file)
        in
        let diags = Hpm_ir.Diag.apply (diag_config werror suppress) a.Hpm_ir.Lint.a_diags in
        let fp =
          match (footprint, a.Hpm_ir.Lint.a_prog) with
          | true, Some (prog, polls) ->
              Some (Hpm_ir.Lint.footprint prog polls (Hpm_arch.Arch.by_name_exn archname))
          | _ -> None
        in
        (match format with
        | "json" -> print_endline (Hpm_ir.Lint.report_json ~file diags fp)
        | "text" ->
            List.iter (fun d -> Fmt.pr "%a@." Hpm_ir.Diag.pp d) diags;
            Option.iter
              (List.iter (fun e -> Fmt.pr "%a@." Hpm_ir.Lint.pp_footprint_entry e))
              fp;
            Fmt.pr "%s: %d error(s), %d warning(s)@." file
              (List.length (Hpm_ir.Diag.errors diags))
              (List.length (Hpm_ir.Diag.warnings diags))
        | f -> failwith (Printf.sprintf "unknown format %S (text|json)" f));
        exit (Hpm_ir.Diag.exit_code diags))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "run the full static analysis: unsafe features plus flow-sensitive \
          migratability checks")
    Term.(
      const run $ file_arg $ strategy_arg $ format_arg $ werror_arg $ suppress_arg
      $ footprint_arg $ arch_arg)

let cmd_ir =
  let run file strategy no_lint =
    with_errors (fun () ->
        let m =
          Migration.prepare ~strategy:(strategy_of_string strategy) ~lint:(not no_lint)
            (read_input file)
        in
        Fmt.pr "%a@." Hpm_ir.Ir.pp_prog m.Migration.prog)
  in
  Cmd.v (Cmd.info "ir" ~doc:"dump annotated IR")
    Term.(const run $ file_arg $ strategy_arg $ no_lint_arg)

let cmd_polls =
  let run file strategy no_lint =
    with_errors (fun () ->
        let m =
          Migration.prepare ~strategy:(strategy_of_string strategy) ~lint:(not no_lint)
            (read_input file)
        in
        List.iter
          (fun p -> Fmt.pr "%a@." Hpm_ir.Pollpoint.pp_info p)
          m.Migration.polls.Hpm_ir.Pollpoint.polls;
        Fmt.pr "%d poll-points@." (List.length m.Migration.polls.Hpm_ir.Pollpoint.polls))
  in
  Cmd.v (Cmd.info "polls" ~doc:"list poll-points and live sets")
    Term.(const run $ file_arg $ strategy_arg $ no_lint_arg)

let cmd_source =
  let run file =
    with_errors (fun () ->
        let ast = Hpm_lang.Parser.parse_string (read_input file) in
        let ast = Hpm_lang.Typecheck.check_program ast in
        Fmt.pr "%a" Hpm_lang.Pretty.pp_program ast)
  in
  Cmd.v (Cmd.info "source" ~doc:"pretty-print the parsed program") Term.(const run $ file_arg)

let cmd_annotate =
  let run file strategy =
    with_errors (fun () ->
        print_string
          (Hpm_ir.Annotate.source ~strategy:(strategy_of_string strategy) (read_input file)))
  in
  Cmd.v
    (Cmd.info "annotate" ~doc:"emit the annotated (migratable-format) source")
    Term.(const run $ file_arg $ strategy_arg)

let cmd_graph =
  let after_arg =
    Arg.(value & opt int 0 & info [ "after-polls" ] ~docv:"K" ~doc:"suspend at the (K+1)-th poll event")
  in
  let dot_arg = Arg.(value & flag & info [ "dot" ] ~doc:"emit Graphviz dot") in
  let arch_arg =
    Arg.(value & opt string "ultra5" & info [ "arch" ] ~docv:"A" ~doc:"architecture to run on")
  in
  let reachable_arg =
    Arg.(value & flag & info [ "reachable" ] ~doc:"restrict to blocks reachable from roots")
  in
  let run file after dot archname reachable no_lint =
    with_errors (fun () ->
        let arch = Hpm_arch.Arch.by_name_exn archname in
        let m = Migration.prepare ~lint:(not no_lint) (read_input file) in
        let p = Migration.start m arch in
        Hpm_machine.Interp.request_migration_after p after;
        match Hpm_machine.Interp.run p with
        | Hpm_machine.Interp.RDone _ ->
            Fmt.epr "process finished before reaching poll event %d@." after;
            exit 1
        | Hpm_machine.Interp.RFuel -> assert false
        | Hpm_machine.Interp.RPolled id ->
            let g = Hpm_msr.Graph.snapshot p in
            let g = if reachable then Hpm_msr.Graph.reachable_from_roots p g else g in
            if dot then print_string (Hpm_msr.Graph.to_dot g)
            else (
              Fmt.pr "suspended at poll #%d@." id;
              Fmt.pr "%a" Hpm_msr.Graph.pp g))
  in
  Cmd.v (Cmd.info "graph" ~doc:"print the MSR graph at a poll-point")
    Term.(const run $ file_arg $ after_arg $ dot_arg $ arch_arg $ reachable_arg $ no_lint_arg)

let cmd_compat =
  let format_arg =
    Arg.(
      value & opt string "text"
      & info [ "format" ] ~docv:"F" ~doc:"output format: text or json")
  in
  let arches_arg =
    Arg.(
      value & opt string ""
      & info [ "arches" ] ~docv:"A,B,..."
          ~doc:"restrict the matrix to these architectures (default: all)")
  in
  let run file strategy format arches no_lint =
    with_errors (fun () ->
        let m =
          Migration.prepare ~strategy:(strategy_of_string strategy)
            ~lint:(not no_lint) (read_input file)
        in
        let arches =
          match arches with
          | "" -> Hpm_arch.Arch.all
          | s -> List.map Hpm_arch.Arch.by_name_exn (String.split_on_char ',' s)
        in
        let c = Compat.create m.Migration.prog m.Migration.polls in
        match format with
        | "json" -> print_endline (Compat.render_json c ~arches ~workload:file ())
        | "text" -> print_string (Compat.render_text c ~arches ~workload:file ())
        | f -> failwith (Printf.sprintf "unknown format %S (text|json)" f))
  in
  Cmd.v
    (Cmd.info "compat"
       ~doc:
         "compute the arch-pair compatibility matrix: for every ordered \
          architecture pair and poll-point, whether the collected state \
          survives the trip (legal), survives with value-dependent hazards \
          (lossy), or provably cannot (illegal)")
    Term.(const run $ file_arg $ strategy_arg $ format_arg $ arches_arg $ no_lint_arg)

let cmd_stream =
  let after_arg =
    Arg.(value & opt int 0 & info [ "after-polls" ] ~docv:"K" ~doc:"suspend at the (K+1)-th poll event")
  in
  let arch_arg =
    Arg.(value & opt string "ultra5" & info [ "arch" ] ~docv:"A" ~doc:"architecture to run on")
  in
  let run file after archname no_lint =
    with_errors (fun () ->
        let arch = Hpm_arch.Arch.by_name_exn archname in
        let m = Migration.prepare ~lint:(not no_lint) (read_input file) in
        let p = Migration.start m arch in
        Hpm_machine.Interp.request_migration_after p after;
        match Hpm_machine.Interp.run p with
        | Hpm_machine.Interp.RDone _ ->
            Fmt.epr "process finished before reaching poll event %d@." after;
            exit 1
        | Hpm_machine.Interp.RFuel -> assert false
        | Hpm_machine.Interp.RPolled _ ->
            let data, _ = Collect.collect p m.Migration.ti in
            ignore (Inspect.dump m.Migration.prog m.Migration.ti data))
  in
  Cmd.v
    (Cmd.info "stream" ~doc:"collect at a poll-point and dump the decoded migration stream")
    Term.(const run $ file_arg $ after_arg $ arch_arg $ no_lint_arg)

(* the shared query CLI returns an exit code; fold it into this
   binary's unit-term convention *)
let cmd_query =
  Cmd.v Hpm_query.Qcli.info
    Term.(const (fun rc -> if rc <> 0 then Stdlib.exit rc) $ Hpm_query.Qcli.term)

let () =
  let doc = "pre-compiler for heterogeneous process migration" in
  exit (Cmd.eval (Cmd.group (Cmd.info "migratec" ~doc) [ cmd_check; cmd_lint; cmd_compat; cmd_ir; cmd_polls; cmd_source; cmd_annotate; cmd_graph; cmd_stream; cmd_query ]))
