(* hpmrun: run a Mini-C program, optionally migrating it between two
   simulated machines mid-execution.

     hpmrun FILE                          run on ultra5, no migration
     hpmrun FILE --from dec5000 --to sparc20 --after-polls 100
     hpmrun workload:bitonic:5000 --from sparc20 --to x86_64 --report
     hpmrun workload:nqueens:6 --to x86_64 --crash-dst-after restore --report

   FILE may be "workload:NAME[:N]" for a built-in workload.  Node-fault
   flags (--crash-src-after, --crash-dst-after, --drop-ack, --drop-probe)
   route the migration through the crash-consistent two-phase handoff
   (docs/PROTOCOL.md) and print the protocol trace under --report. *)

open Cmdliner
open Hpm_core
open Hpm_net
open Hpm_store

let read_input (spec : string) : string =
  match String.split_on_char ':' spec with
  | [ "workload"; name ] ->
      let w = Hpm_workloads.Registry.find_exn name in
      w.Hpm_workloads.Registry.source w.Hpm_workloads.Registry.default_n
  | [ "workload"; name; n ] ->
      let w = Hpm_workloads.Registry.find_exn name in
      w.Hpm_workloads.Registry.source (int_of_string n)
  | _ ->
      let ic = open_in_bin spec in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s

(* Store process names mirror the file spec with anything outside the
   manifest-safe alphabet mapped to '_'. *)
let store_proc_name (spec : string) : string =
  String.map
    (function ('A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '-') as c -> c | _ -> '_')
    spec

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let parse_phase flag = function
  | None -> None
  | Some s -> (
      match Netsim.phase_of_string s with
      | Some p -> Some p
      | None ->
          Fmt.epr "hpmrun: %s must be one of %s (got %S)@." flag
            (String.concat ", " (List.map Netsim.phase_name Netsim.all_phases))
            s;
          exit 1)

(* Print the handoff trace and outcome, then finish the surviving copy
   and print its output.  [p] is the (suspended) source interpreter. *)
let conclude_handoff m ~src_arch p (res : Handoff.result) ~report =
  if report then Fmt.pr "%a" Handoff.pp_trace res.Handoff.trace;
  Fmt.pr "; %a@." Handoff.pp_outcome res.Handoff.outcome;
  (* output produced before the handoff, on the source *)
  print_string (Hpm_machine.Interp.output p);
  let finish interp =
    match Hpm_machine.Interp.run interp with
    | Hpm_machine.Interp.RDone _ ->
        print_string (Hpm_machine.Interp.output interp);
        0
    | _ ->
        Fmt.epr "hpmrun: process did not run to completion after the handoff@.";
        2
  in
  match res.Handoff.outcome with
  | Handoff.Committed c ->
      if report then
        Fmt.pr "; %a@.; %a@.; %a@." Hpm_core.Cstats.pp_collect c.Handoff.c_cstats
          Hpm_core.Cstats.pp_restore c.Handoff.c_rstats Transport.pp_stats
          c.Handoff.c_tstats;
      finish c.Handoff.c_dst
  | Handoff.Source_recovered r -> finish r.Handoff.r_interp
  | Handoff.Abort_requeue q ->
      Fmt.pr "; source copy resumes locally@.";
      let interp, _ =
        Handoff.resume_from_checkpoint m src_arch ~epoch:q.Handoff.q_epoch
          q.Handoff.q_ckpt
      in
      finish interp
  | Handoff.Stalled { s_ckpt; s_epoch; _ } ->
      Fmt.pr "; resuming retained checkpoint on the source@.";
      let interp, _ = Handoff.resume_from_checkpoint m src_arch ~epoch:s_epoch s_ckpt in
      finish interp
  | Handoff.Link_failed _ ->
      Hpm_machine.Interp.clear_migration_request p;
      finish p

(* Run to the poll-point on the source, hand off under the two-phase
   protocol, then finish the surviving copy and print its output. *)
let run_handoff m ~src_arch ~dst_arch ~after ~channel ~config ~report =
  let p = Migration.start m src_arch in
  Hpm_machine.Interp.request_migration_after p after;
  match Hpm_machine.Interp.run p with
  | Hpm_machine.Interp.RDone _ ->
      print_string (Hpm_machine.Interp.output p);
      Fmt.pr "; process finished before the migration triggered@.";
      0
  | Hpm_machine.Interp.RFuel -> assert false
  | Hpm_machine.Interp.RPolled _ ->
      let res = Handoff.execute ~config ~channel ~epoch:1 m p dst_arch in
      conclude_handoff m ~src_arch p res ~report

(* Iterative pre-copy migration through the store: ship a full snapshot
   and converging deltas while the source runs, then hand off under the
   two-phase protocol carrying only the final delta on the wire. *)
let run_precopy m ~src_arch ~dst_arch ~after ~channel ~config ~report ~st ~proc
    ~rounds ~threshold =
  let p = Migration.start m src_arch in
  Hpm_machine.Interp.request_migration_after p after;
  match Hpm_machine.Interp.run p with
  | Hpm_machine.Interp.RDone _ ->
      print_string (Hpm_machine.Interp.output p);
      Fmt.pr "; process finished before the migration triggered@.";
      0
  | Hpm_machine.Interp.RFuel -> assert false
  | Hpm_machine.Interp.RPolled _ -> (
      let epoch0 =
        match Store.latest_manifest st ~proc with
        | Some mf -> mf.Store.mf_epoch + 1
        | None -> 1
      in
      let pconfig =
        { Precopy.default_config with Precopy.rounds; threshold; handoff = config }
      in
      let pres =
        Precopy.execute ~config:pconfig ~channel ~dst_store:st ~proc ~epoch0 m p
          dst_arch
      in
      if report then (
        List.iter (fun r -> Fmt.pr "; %a@." Precopy.pp_round r) pres.Precopy.p_rounds;
        Fmt.pr "; pre-copy %s after %d round(s); %a@."
          (if pres.Precopy.p_converged then "converged" else "did not converge")
          (List.length pres.Precopy.p_rounds)
          Hpm_core.Cstats.pp_delta pres.Precopy.p_stats);
      match pres.Precopy.p_outcome with
      | Precopy.Handed_off hres -> conclude_handoff m ~src_arch p hres ~report
      | Precopy.Finished_before_handoff ->
          print_string (Hpm_machine.Interp.output p);
          Fmt.pr "; process finished during pre-copy; nothing migrated@.";
          0
      | Precopy.Round_link_failed { rl_round; rl_reason; _ } -> (
          Fmt.pr "; pre-copy round %d failed (%s); source copy resumes locally@."
            rl_round rl_reason;
          match Hpm_machine.Interp.run p with
          | Hpm_machine.Interp.RDone _ ->
              print_string (Hpm_machine.Interp.output p);
              0
          | _ ->
              Fmt.epr "hpmrun: process did not run to completion after the failed round@.";
              2))

let run file from_ to_ after report show_net save_ckpt load_ckpt loss corrupt
    max_retries net_seed crash_src crash_dst drop_ack drop_probe ack_deadline
    probe_retries store_dir delta precopy_rounds precopy_threshold restore_store
    store_gc gc_dry_run journal_file trace_file metrics_file standby
    replica_epochs promote =
  let module Obs = Hpm_obs.Obs in
  let obs_on = trace_file <> None || metrics_file <> None in
  if obs_on then begin
    if trace_file <> None then Obs.set_trace (Some (Obs.Trace.create ()));
    if metrics_file <> None then Obs.set_metrics (Some (Obs.Metrics.create ()));
    Hpm_xdr.Xdr.reset_io_counters ();
    Hpm_xdr.Xdr.count_io := true;
    match file with
    | Some f -> Obs.set_labels [ ("proc", store_proc_name f) ]
    | None -> ()
  end;
  (* On exit, fold the XDR byte counters into the registry and write the
     requested sinks.  Error paths that [exit] early skip the dump. *)
  let finish_obs rc =
    if obs_on then begin
      if Obs.metrics_on () then begin
        Obs.inc "hpm_xdr_encoded_bytes_total" []
          ~by:(float_of_int !Hpm_xdr.Xdr.encoded_bytes);
        Obs.inc "hpm_xdr_decoded_bytes_total" []
          ~by:(float_of_int !Hpm_xdr.Xdr.decoded_bytes)
      end;
      (match (metrics_file, !Obs.cur_metrics) with
      | Some path, Some reg -> write_file path (Obs.Metrics.render reg)
      | _ -> ());
      (match (trace_file, !Obs.cur_trace) with
      | Some path, Some tr -> write_file path (Obs.Trace.to_json tr)
      | _ -> ());
      Hpm_xdr.Xdr.count_io := false;
      Obs.reset ()
    end;
    rc
  in
  finish_obs
  @@ (
  if loss < 0.0 || loss > 1.0 then (
    Fmt.epr "hpmrun: --loss must be in [0,1] (got %g)@." loss;
    exit 1);
  if corrupt < 0.0 || corrupt > 1.0 then (
    Fmt.epr "hpmrun: --corrupt must be in [0,1] (got %g)@." corrupt;
    exit 1);
  if max_retries < 0 then (
    Fmt.epr "hpmrun: --max-retries must be non-negative (got %d)@." max_retries;
    exit 1);
  if drop_ack < 0 then (
    Fmt.epr "hpmrun: --drop-ack must be non-negative (got %d)@." drop_ack;
    exit 1);
  if drop_probe < 0 then (
    Fmt.epr "hpmrun: --drop-probe must be non-negative (got %d)@." drop_probe;
    exit 1);
  if ack_deadline <= 0.0 then (
    Fmt.epr "hpmrun: --ack-deadline must be positive (got %g)@." ack_deadline;
    exit 1);
  if probe_retries < 0 then (
    Fmt.epr "hpmrun: --probe-retries must be non-negative (got %d)@." probe_retries;
    exit 1);
  (match precopy_rounds with
  | Some r when r < 1 ->
      Fmt.epr "hpmrun: --precopy-rounds must be >= 1 (got %d)@." r;
      exit 1
  | _ -> ());
  if precopy_threshold < 0.0 then (
    Fmt.epr "hpmrun: --precopy-threshold must be non-negative (got %g)@."
      precopy_threshold;
    exit 1);
  (match store_gc with
  | Some k when k < 0 ->
      Fmt.epr "hpmrun: --store-gc must be non-negative (got %d)@." k;
      exit 1
  | _ -> ());
  if
    store_dir = None
    && (delta || restore_store || precopy_rounds <> None || store_gc <> None
       || standby > 0)
  then (
    Fmt.epr
      "hpmrun: --delta, --restore-latest, --precopy-rounds, --standby and \
       --store-gc need --store-dir@.";
    exit 1);
  if precopy_rounds <> None && to_ = None then (
    Fmt.epr "hpmrun: --precopy-rounds needs --to@.";
    exit 1);
  if standby < 0 then (
    Fmt.epr "hpmrun: --standby must be non-negative (got %d)@." standby;
    exit 1);
  if replica_epochs < 1 then (
    Fmt.epr "hpmrun: --replica-epochs must be >= 1 (got %d)@." replica_epochs;
    exit 1);
  if promote && standby = 0 then (
    Fmt.epr "hpmrun: --promote needs --standby@.";
    exit 1);
  (* with --standby, --crash-src-after names a replication phase rather
     than a handoff phase *)
  let rep_crash =
    if standby = 0 then None
    else
      match crash_src with
      | None -> None
      | Some s -> (
          match Netsim.rep_phase_of_string s with
          | Some p -> Some p
          | None ->
              Fmt.epr
                "hpmrun: with --standby, --crash-src-after must be one of %s (got %S)@."
                (String.concat ", "
                   (List.map Netsim.rep_phase_name Netsim.all_rep_phases))
                s;
              exit 1)
  in
  let crash_src =
    if standby > 0 then None else parse_phase "--crash-src-after" crash_src
  in
  let crash_dst = parse_phase "--crash-dst-after" crash_dst in
  let node_faulty = crash_src <> None || crash_dst <> None || drop_ack > 0 || drop_probe > 0 in
  let store =
    match store_dir with
    | None -> None
    | Some dir -> (
        try Some (Store.open_store dir)
        with Store.Error msg ->
          Fmt.epr "hpmrun: %s@." msg;
          exit 1)
  in
  if gc_dry_run && store_gc = None then (
    Fmt.epr "hpmrun: --gc-dry-run needs --store-gc@.";
    exit 1);
  match (store_gc, store) with
  | Some keep, Some st when gc_dry_run ->
      (* dry run: the same retention predicate `query gc-candidates`
         applies, printed instead of enforced — nothing is deleted *)
      let journal =
        match journal_file with
        | Some p -> Some (Hpm_store.Journal.load p)
        | None -> None
      in
      let victims =
        Hpm_query.Report.retention_victims ~store:st ?journal ~keep_last:keep ()
      in
      List.iter
        (fun (proc, epoch, _) -> Fmt.pr "would drop %s epoch %d@." proc epoch)
        victims;
      Fmt.pr "gc dry run: %d candidate manifest(s), nothing deleted@."
        (List.length victims);
      0
  | Some keep, Some st ->
      (* maintenance mode: no program involved *)
      List.iter (fun proc -> ignore (Store.retain st ~proc ~keep : int)) (Store.procs st);
      Fmt.pr "%a@." Store.pp_gc (Store.gc st);
      0
  | _ -> (
  let file =
    match file with
    | Some f -> f
    | None ->
        Fmt.epr "hpmrun: FILE is required@.";
        exit 1
  in
  try
    let m = Migration.prepare (read_input file) in
    let proc = store_proc_name file in
    match store with
    | Some st when restore_store -> (
        (* resume the newest committed snapshot on --from *)
        let arch = Hpm_arch.Arch.by_name_exn from_ in
        match Snapshot.restore_latest m arch st ~proc with
        | None ->
            Fmt.epr "hpmrun: no recoverable snapshot for %s in the store@." proc;
            3
        | Some (interp, rstats, mf) -> (
            if report || delta then
              Fmt.pr "; restored store epoch %d@.; %a@." mf.Store.mf_epoch
                Hpm_core.Cstats.pp_restore rstats;
            match Hpm_machine.Interp.run interp with
            | Hpm_machine.Interp.RDone _ ->
                print_string (Hpm_machine.Interp.output interp);
                0
            | _ ->
                Fmt.epr "hpmrun: process did not run to completion after the restore@.";
                2))
    | Some st when standby > 0 -> (
        (* continuous delta replication: stream wgen-dirty deltas to the
           store and N warm standbys each epoch; --promote fails over to
           the freshest committed standby after a source crash *)
        let src_arch = Hpm_arch.Arch.by_name_exn from_ in
        let sb_arch =
          match to_ with
          | Some t -> Hpm_arch.Arch.by_name_exn t
          | None -> src_arch
        in
        let channel = Hpm_net.Netsim.ethernet_10 () in
        let standbys =
          List.init standby (fun i -> (Printf.sprintf "sb%d" i, sb_arch))
        in
        let faults =
          match rep_crash with
          | Some (Netsim.Rp_stream as ph) ->
              Some (Netsim.rep_faults ~crash_source_at:(ph, replica_epochs) ())
          | Some (Netsim.Rp_final_delta as ph) ->
              (* the final delta ships as epoch replica_epochs+1, during
                 the planned migration *)
              Some
                (Netsim.rep_faults ~crash_source_at:(ph, replica_epochs + 1) ())
          | Some Netsim.Rp_commit | None ->
              (* commit crashes are a handoff-protocol fault, injected
                 below through the two-phase machinery *)
              None
        in
        let p = Migration.start m src_arch in
        Hpm_machine.Interp.request_migration_after p after;
        match Hpm_machine.Interp.run p with
        | Hpm_machine.Interp.RDone _ ->
            print_string (Hpm_machine.Interp.output p);
            Fmt.pr "; process finished before replication started@.";
            0
        | Hpm_machine.Interp.RFuel -> assert false
        | Hpm_machine.Interp.RPolled _ -> (
            let journal =
              match journal_file with
              | Some path -> Some (Hpm_store.Journal.open_journal path)
              | None -> None
            in
            let r =
              Replica.create ?faults ?journal ~channel ~store:st ~proc ~standbys
                m p
            in
            let print_events () =
              if report then
                List.iter
                  (fun e -> Fmt.pr "; %a@." Replica.pp_event e)
                  (Replica.events r)
            in
            let finish interp =
              match Hpm_machine.Interp.run interp with
              | Hpm_machine.Interp.RDone _ ->
                  print_string (Hpm_machine.Interp.output interp);
                  0
              | _ ->
                  Fmt.epr
                    "hpmrun: process did not run to completion after the \
                     failover@.";
                  2
            in
            let do_promote ~why =
              let pm = Replica.promote r in
              print_events ();
              Fmt.pr
                "; %s; promoted %s at epoch %d (catch-up %d epoch(s), \
                 incarnation %d)@."
                why pm.Replica.pm_sub pm.Replica.pm_epoch pm.Replica.pm_catchup
                pm.Replica.pm_incarnation;
              print_string (Replica.released_output r);
              finish pm.Replica.pm_interp
            in
            let crashed ph =
              if promote then
                do_promote
                  ~why:
                    (Printf.sprintf "source crashed during %s"
                       (Netsim.rep_phase_name ph))
              else (
                print_events ();
                Fmt.epr
                  "hpmrun: source crashed during %s; re-run with --promote to \
                   fail over@."
                  (Netsim.rep_phase_name ph);
                3)
            in
            match Replica.run r ~epochs:replica_epochs with
            | Replica.Source_finished ->
                print_events ();
                Fmt.pr "; process finished after %d replication epoch(s)@."
                  (Replica.epoch r);
                print_string (Replica.output r);
                0
            | Replica.Source_crashed ph -> crashed ph
            | Replica.Streamed _ -> (
                let wants_migration =
                  to_ <> None
                  ||
                  match rep_crash with
                  | Some (Netsim.Rp_final_delta | Netsim.Rp_commit) -> true
                  | _ -> false
                in
                if wants_migration then (
                  (* planned migration onto a standby: catch it up, ship
                     only the final delta, hand off under the two-phase
                     protocol *)
                  let hfaults =
                    match rep_crash with
                    | Some Netsim.Rp_commit ->
                        Some
                          (Netsim.node_faults
                             ~crash_source_after:Netsim.Ph_commit ())
                    | _ -> None
                  in
                  match Replica.migrate ?faults:hfaults r ~sub:"sb0" with
                  | Replica.Crashed_before_handoff ph -> crashed ph
                  | Replica.Finished_before_migration ->
                      print_events ();
                      print_string (Replica.output r);
                      Fmt.pr "; process finished before the final delta@.";
                      0
                  | Replica.Migrated res -> (
                      print_events ();
                      if report then Fmt.pr "%a" Handoff.pp_trace res.Handoff.trace;
                      Fmt.pr "; %a@." Handoff.pp_outcome res.Handoff.outcome;
                      match res.Handoff.outcome with
                      | Handoff.Committed c ->
                          if c.Handoff.c_src_crashed then
                            Fmt.pr
                              "; source crashed after commit; standby sb0 owns \
                               the process@.";
                          print_string (Replica.released_output r);
                          finish c.Handoff.c_dst
                      | _ ->
                          Fmt.epr
                            "hpmrun: planned migration did not commit@.";
                          2))
                else if promote then
                  (* operator-initiated failover drill: fence the live
                     source and continue on the freshest standby *)
                  do_promote ~why:"operator failover requested"
                else (
                  print_events ();
                  Fmt.pr
                    "; replicated %d epoch(s) to %d standby(s); store at epoch \
                     %d@."
                    (Replica.epoch r) standby (Replica.epoch r);
                  print_string (Replica.released_output r);
                  0))))
    | Some st when to_ = None && save_ckpt = None && load_ckpt = None -> (
        (* incremental snapshot mode: run to the poll, commit, stop *)
        let arch = Hpm_arch.Arch.by_name_exn from_ in
        let p = Migration.start m arch in
        Hpm_machine.Interp.request_migration_after p after;
        match Hpm_machine.Interp.run p with
        | Hpm_machine.Interp.RDone _ ->
            print_string (Hpm_machine.Interp.output p);
            Fmt.pr "; process finished before the snapshot point@.";
            0
        | Hpm_machine.Interp.RFuel -> assert false
        | Hpm_machine.Interp.RPolled _ ->
            let epoch =
              match Store.latest_manifest st ~proc with
              | Some mf -> mf.Store.mf_epoch + 1
              | None -> 1
            in
            let mf, chunks, stats = Snapshot.collect ~epoch ~proc p m.Migration.ti in
            Snapshot.persist st mf chunks stats;
            print_string (Hpm_machine.Interp.output p);
            Fmt.pr "; snapshot epoch %d committed (manifest %s)@." epoch
              (Store.hash_hex (Store.manifest_hash mf));
            if report || delta then Fmt.pr "; %a@." Hpm_core.Cstats.pp_delta stats;
            0)
    | Some st when precopy_rounds <> None ->
        let rounds = Option.get precopy_rounds in
        let src_arch = Hpm_arch.Arch.by_name_exn from_ in
        let dst_arch = Hpm_arch.Arch.by_name_exn (Option.get to_) in
        let channel =
          Hpm_net.Netsim.ethernet_10
            ~faults:
              (Hpm_net.Netsim.fault_model ~loss_rate:loss ~corrupt_rate:corrupt
                 ~seed:net_seed ())
            ()
        in
        if node_faulty then
          Netsim.set_node_faults channel
            (Some
               (Netsim.node_faults ?crash_source_after:crash_src
                  ?crash_dest_after:crash_dst ~drop_commit_acks:drop_ack
                  ~drop_probe_replies:drop_probe ()));
        let transport = { Hpm_net.Transport.default_config with max_retries } in
        let config =
          {
            Handoff.default_config with
            Handoff.transport;
            ack_deadline_s = ack_deadline;
            probe_retries;
          }
        in
        run_precopy m ~src_arch ~dst_arch ~after ~channel ~config ~report ~st ~proc
          ~rounds ~threshold:precopy_threshold
    | Some _ | None -> (
    match (save_ckpt, load_ckpt) with
    | Some path, _ ->
        (* run on --from, checkpoint at the poll, stop *)
        let arch = Hpm_arch.Arch.by_name_exn from_ in
        let out = Checkpoint.run_and_save m arch ~after_polls:after path in
        print_string out;
        Fmt.pr "; checkpointed to %s@." path;
        0
    | None, Some path ->
        (* resume a checkpoint on --from and run to completion *)
        let arch = Hpm_arch.Arch.by_name_exn from_ in
        print_string (Checkpoint.resume_and_finish m arch path);
        0
    | None, None ->
    match to_ with
    | None ->
        let arch = Hpm_arch.Arch.by_name_exn from_ in
        let out, ret, stats = Migration.run_plain m arch in
        print_string out;
        if report then (
          Fmt.pr "; exit=%s@."
            (match ret with
            | Some (Hpm_machine.Mem.Vint v) -> Int64.to_string v
            | _ -> "void");
          Fmt.pr "; %a@." Hpm_machine.Mstats.pp stats);
        0
    | Some toname ->
        let src_arch = Hpm_arch.Arch.by_name_exn from_ in
        let dst_arch = Hpm_arch.Arch.by_name_exn toname in
        (* any fault flag routes the stream through the chunked transport
           over the paper's §4.1 10 Mb/s link, with a seeded (replayable)
           fault schedule *)
        let use_net = loss > 0.0 || corrupt > 0.0 in
        let channel =
          if use_net || node_faulty || obs_on then
            Some
              (Hpm_net.Netsim.ethernet_10
                 ~faults:
                   (Hpm_net.Netsim.fault_model ~loss_rate:loss ~corrupt_rate:corrupt
                      ~seed:net_seed ())
                 ())
          else None
        in
        let transport = { Hpm_net.Transport.default_config with max_retries } in
        (* node faults need the two-phase protocol; so does observability,
           which traces the handoff state machine end to end *)
        if node_faulty || obs_on then (
          let channel = Option.get channel in
          if node_faulty then
            Netsim.set_node_faults channel
              (Some
                 (Netsim.node_faults ?crash_source_after:crash_src
                    ?crash_dest_after:crash_dst ~drop_commit_acks:drop_ack
                    ~drop_probe_replies:drop_probe ()));
          let config =
            {
              Handoff.default_config with
              Handoff.transport;
              ack_deadline_s = ack_deadline;
              probe_retries;
            }
          in
          run_handoff m ~src_arch ~dst_arch ~after ~channel ~config ~report)
        else
        let o =
          Migration.run_migrating m ~src_arch ~dst_arch ~after_polls:after ?channel
            ~transport ()
        in
        print_string o.Migration.output;
        (match o.Migration.transfer_failure with
        | Some f ->
            Fmt.pr "; %a@." Migration.pp_transfer_failure f;
            Fmt.pr "; process resumed on %s and completed locally@." from_
        | None ->
            if use_net then
              match o.Migration.report with
              | Some { Migration.transport_stats = Some ts; _ } ->
                  Fmt.pr "; %a@." Hpm_net.Transport.pp_stats ts
              | _ -> ());
        (if report then
           match o.Migration.report with
           | Some r ->
               Fmt.pr "; %a@." Migration.pp_report r;
               if show_net then (
                 let ch10 = Hpm_net.Netsim.ethernet_10 () in
                 let ch100 = Hpm_net.Netsim.ethernet_100 () in
                 Fmt.pr "; Tx over 10Mb Ethernet : %.4f s@."
                   (Hpm_net.Netsim.tx_time ch10 r.Migration.stream_bytes);
                 Fmt.pr "; Tx over 100Mb Ethernet: %.4f s@."
                   (Hpm_net.Netsim.tx_time ch100 r.Migration.stream_bytes))
           | None ->
               if o.Migration.transfer_failure = None then
                 Fmt.pr "; process finished before the migration triggered@.");
        0)
  with
  | Hpm_lang.Lexer.Error (m, l, c) ->
      Fmt.epr "lexical error at %d:%d: %s@." l c m;
      1
  | Hpm_lang.Parser.Error (m, l, c) ->
      Fmt.epr "syntax error at %d:%d: %s@." l c m;
      1
  | Hpm_lang.Typecheck.Error (m, loc) ->
      Fmt.epr "type error at %a: %s@." Hpm_lang.Ast.pp_loc loc m;
      1
  | Hpm_ir.Diag.Rejected diags ->
      Fmt.epr "program rejected by static analysis:@.";
      List.iter (fun d -> Fmt.epr "  %a@." Hpm_ir.Diag.pp d) diags;
      1
  | Hpm_machine.Interp.Trap m | Hpm_machine.Mem.Fault m ->
      Fmt.epr "runtime fault: %s@." m;
      2
  | Checkpoint.Error m | Restore.Error m | Collect.Error m ->
      Fmt.epr "migration error: %s@." m;
      3
  | Store.Error m | Store.Corrupt m ->
      Fmt.epr "store error: %s@." m;
      3
  | Store.Base_mismatch (want, got) ->
      Fmt.epr "store error: delta base mismatch (destination holds %s, delta against %s)@."
        want got;
      3))

let () =
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"source file or workload:NAME[:N] (optional under --store-gc)")
  in
  let from_ =
    Arg.(value & opt string "ultra5" & info [ "from" ] ~docv:"ARCH" ~doc:"source machine")
  in
  let to_ =
    Arg.(value & opt (some string) None & info [ "to" ] ~docv:"ARCH" ~doc:"destination machine (enables migration)")
  in
  let after =
    Arg.(value & opt int 0 & info [ "after-polls" ] ~docv:"K" ~doc:"migrate at the (K+1)-th poll event")
  in
  let report = Arg.(value & flag & info [ "report" ] ~doc:"print migration statistics (and the handoff trace under node faults)") in
  let show_net = Arg.(value & flag & info [ "net" ] ~doc:"print simulated network transfer times") in
  let save_ckpt =
    Arg.(value & opt (some string) None
         & info [ "checkpoint-to" ] ~docv:"FILE"
             ~doc:"run on --from, write a checkpoint at the poll, and stop")
  in
  let load_ckpt =
    Arg.(value & opt (some string) None
         & info [ "restore-from" ] ~docv:"FILE"
             ~doc:"resume a checkpoint file on --from and run to completion")
  in
  let loss =
    Arg.(value & opt float 0.0
         & info [ "loss" ] ~docv:"P"
             ~doc:"per-chunk truncation probability; routes the migration through \
                   the chunked transport over a lossy 10 Mb/s link")
  in
  let corrupt =
    Arg.(value & opt float 0.0
         & info [ "corrupt" ] ~docv:"P"
             ~doc:"per-chunk byte-flip probability on the simulated link")
  in
  let max_retries =
    Arg.(value & opt int Hpm_net.Transport.default_config.Hpm_net.Transport.max_retries
         & info [ "max-retries" ] ~docv:"N"
             ~doc:"retransmissions per chunk before the transfer aborts and the \
                   process resumes on the source machine")
  in
  let net_seed =
    Arg.(value & opt int 1
         & info [ "net-seed" ] ~docv:"SEED"
             ~doc:"seed of the deterministic fault schedule (replays exactly)")
  in
  let crash_src =
    Arg.(value & opt (some string) None
         & info [ "crash-src-after" ] ~docv:"PHASE"
             ~doc:"crash the source node after PHASE (collect, transfer, restore, \
                   commit, release); it restarts and recovers per the handoff protocol")
  in
  let crash_dst =
    Arg.(value & opt (some string) None
         & info [ "crash-dst-after" ] ~docv:"PHASE"
             ~doc:"crash the destination node after PHASE; a pre-commit crash aborts \
                   the epoch, a post-commit crash restarts from the durable image")
  in
  let drop_ack =
    Arg.(value & opt int 0
         & info [ "drop-ack" ] ~docv:"N"
             ~doc:"drop the first N COMMIT acks (the lost-ack ambiguity, resolved by \
                   epoch probes)")
  in
  let drop_probe =
    Arg.(value & opt int 0
         & info [ "drop-probe" ] ~docv:"N"
             ~doc:"drop the first N epoch-probe replies; exhausting every probe \
                   stalls the handoff with the checkpoint retained")
  in
  let ack_deadline =
    Arg.(value & opt float Hpm_core.Handoff.default_config.Hpm_core.Handoff.ack_deadline_s
         & info [ "ack-deadline" ] ~docv:"S"
             ~doc:"watchdog: simulated seconds the source waits for the COMMIT ack")
  in
  let probe_retries =
    Arg.(value & opt int Hpm_core.Handoff.default_config.Hpm_core.Handoff.probe_retries
         & info [ "probe-retries" ] ~docv:"N"
             ~doc:"epoch probes after a watchdog timeout before declaring the \
                   handoff stalled")
  in
  let store_dir =
    Arg.(value & opt (some string) None
         & info [ "store-dir" ] ~docv:"DIR"
             ~doc:"content-addressed checkpoint store; without --to, commit an \
                   incremental snapshot at the poll and stop")
  in
  let delta =
    Arg.(value & flag
         & info [ "delta" ]
             ~doc:"print incremental checkpoint statistics (needs --store-dir)")
  in
  let precopy_rounds =
    Arg.(value & opt (some int) None
         & info [ "precopy-rounds" ] ~docv:"N"
             ~doc:"migrate by iterative pre-copy: up to N delta rounds while the \
                   source keeps running, then a final two-phase handoff shipping \
                   only the last delta (needs --store-dir and --to)")
  in
  let precopy_threshold =
    Arg.(value & opt float Precopy.default_config.Precopy.threshold
         & info [ "precopy-threshold" ] ~docv:"F"
             ~doc:"stop pre-copying once a round's wire size falls below F times \
                   the full snapshot's")
  in
  let restore_store =
    Arg.(value & flag
         & info [ "restore-latest" ]
             ~doc:"resume the newest committed snapshot in --store-dir on --from \
                   and run to completion")
  in
  let store_gc =
    Arg.(value & opt (some int) None
         & info [ "store-gc" ] ~docv:"KEEP"
             ~doc:"retain the newest KEEP epochs per process in --store-dir, sweep \
                   unreferenced chunks, and print the report (FILE not needed)")
  in
  let gc_dry_run =
    Arg.(value & flag
         & info [ "gc-dry-run" ]
             ~doc:"with --store-gc, print the manifests the retention policy \
                   would drop (the same predicate `query gc-candidates` uses, \
                   pins respected) and delete nothing")
  in
  let journal_file =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"append fleet events (HPMJ records, docs/FORMAT.md) to FILE; \
                   with --store-gc --gc-dry-run, also date retention candidates \
                   from it")
  in
  let trace_file =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"write a Chrome trace_event JSON trace of the run to FILE; \
                   timestamps come from the simulated clock, so same-seed runs \
                   produce byte-identical traces (routes --to migrations through \
                   the two-phase handoff)")
  in
  let metrics_file =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"write the metrics registry to FILE in Prometheus text format \
                   on exit (see docs/OBSERVABILITY.md for the catalogue)")
  in
  let standby =
    Arg.(value & opt int 0
         & info [ "standby" ] ~docv:"N"
             ~doc:"replicate continuously to N warm standbys: each epoch the \
                   source commits a wgen-dirty delta to --store-dir and streams \
                   it to every standby; with --standby, --crash-src-after names \
                   a replication phase (stream, final-delta, commit)")
  in
  let replica_epochs =
    Arg.(value & opt int 3
         & info [ "replica-epochs" ] ~docv:"K"
             ~doc:"stream K replication epochs before finishing, migrating \
                   (--to) or failing over (--promote)")
  in
  let promote =
    Arg.(value & flag
         & info [ "promote" ]
             ~doc:"after a source crash (or as an operator drill without one), \
                   promote the freshest committed standby, fence the dead \
                   incarnation, and run the survivor to completion")
  in
  let run_term =
    Term.(const run $ file $ from_ $ to_ $ after $ report $ show_net $ save_ckpt
          $ load_ckpt $ loss $ corrupt $ max_retries $ net_seed $ crash_src
          $ crash_dst $ drop_ack $ drop_probe $ ack_deadline $ probe_retries
          $ store_dir $ delta $ precopy_rounds $ precopy_threshold $ restore_store
          $ store_gc $ gc_dry_run $ journal_file $ trace_file $ metrics_file
          $ standby $ replica_epochs $ promote)
  in
  let cmd =
    Cmd.v
      (Cmd.info "hpmrun"
         ~doc:
           "run Mini-C programs with heterogeneous process migration (see \
            also: hpmrun query, the fleet console over store/journal/trace \
            artifacts)")
      run_term
  in
  (* `hpmrun sched ...`: run a seeded cluster-churn scenario on the
     discrete-event engine (docs/SCHED.md) and print its stats.  With
     --journal the full history lands in an HPMJ log that `hpmrun
     query` reads back. *)
  let sched_cmd =
    let module C = Hpm_sched.Cluster in
    let run_sched nodes procs seed crash_nodes max_moves journal_file
        trace_file metrics_file show_events =
      let module Obs = Hpm_obs.Obs in
      let cfg =
        {
          C.default_churn with
          C.c_nodes = nodes;
          c_procs = procs;
          c_seed = seed;
          c_sites = min C.default_churn.C.c_sites nodes;
          c_crash_nodes = min crash_nodes (nodes / 2);
          c_max_moves = max_moves;
        }
      in
      let obs_on = trace_file <> None || metrics_file <> None in
      if obs_on then (
        if trace_file <> None then Obs.set_trace (Some (Obs.Trace.create ()));
        if metrics_file <> None then
          Obs.set_metrics (Some (Obs.Metrics.create ())));
      let journal = Option.map Hpm_store.Journal.open_journal journal_file in
      let t = C.run (C.create ?journal cfg) in
      let s = C.stats t in
      Option.iter Hpm_store.Journal.close journal;
      if show_events then
        List.iter (fun l -> Fmt.pr "%s@." l) (C.events t);
      Fmt.pr "sched: nodes=%d procs=%d seed=%d@." nodes procs seed;
      Fmt.pr "sched: %a@." C.pp_stats s;
      (match (metrics_file, !Obs.cur_metrics) with
      | Some path, Some reg -> write_file path (Obs.Metrics.render reg)
      | _ -> ());
      (match (trace_file, !Obs.cur_trace) with
      | Some path, Some tr -> write_file path (Obs.Trace.to_json tr)
      | _ -> ());
      if obs_on then Obs.reset ();
      if s.C.cs_finished <> procs then (
        Fmt.epr "hpmrun sched: %d/%d processes unfinished@."
          (procs - s.C.cs_finished) procs;
        1)
      else 0
    in
    let nodes =
      Arg.(value & opt int 100
           & info [ "nodes" ] ~docv:"N" ~doc:"cluster size (default 100)")
    in
    let procs =
      Arg.(value & opt int 1000
           & info [ "procs" ] ~docv:"N" ~doc:"process count (default 1000)")
    in
    let seed =
      Arg.(value & opt int C.default_churn.C.c_seed
           & info [ "seed" ] ~docv:"S"
               ~doc:"churn seed; same seed, same bytes")
    in
    let crash_nodes =
      Arg.(value & opt int C.default_churn.C.c_crash_nodes
           & info [ "crash-nodes" ] ~docv:"K"
               ~doc:"nodes the seeded fault plan kills (clamped to N/2)")
    in
    let max_moves =
      Arg.(value & opt int C.default_churn.C.c_max_moves
           & info [ "max-moves" ] ~docv:"K"
               ~doc:"migrations the policy may request per round")
    in
    let journal_file =
      Arg.(value & opt (some string) None
           & info [ "journal" ] ~docv:"FILE"
               ~doc:"append the run's history as an HPMJ journal (segmented; \
                     readable with hpmrun query journal --journal FILE)")
    in
    let trace_file =
      Arg.(value & opt (some string) None
           & info [ "trace" ] ~docv:"FILE"
               ~doc:"write a Chrome trace of the churn (simulated clock)")
    in
    let metrics_file =
      Arg.(value & opt (some string) None
           & info [ "metrics" ] ~docv:"FILE"
               ~doc:"write Prometheus-style metrics after the run")
    in
    let show_events =
      Arg.(value & flag
           & info [ "events" ]
               ~doc:"print the full deterministic event log before the stats")
    in
    Cmd.v
      (Cmd.info "hpmrun-sched"
         ~doc:
           "run a seeded cluster-churn scenario on the discrete-event \
            scheduler (docs/SCHED.md)")
      Term.(const run_sched $ nodes $ procs $ seed $ crash_nodes $ max_moves
            $ journal_file $ trace_file $ metrics_file $ show_events)
  in
  (* `hpmrun query ...` / `hpmrun sched ...` dispatch to their own
     grammars; everything else keeps the historical single-command
     grammar, where FILE is a positional argument a Cmd.group would
     misread as a command name. *)
  let argv = Sys.argv in
  if Array.length argv > 1 && argv.(1) = "query" then
    let argv' =
      Array.append [| argv.(0) |] (Array.sub argv 2 (Array.length argv - 2))
    in
    exit (Cmd.eval' ~argv:argv' Hpm_query.Qcli.cmd)
  else if Array.length argv > 1 && argv.(1) = "sched" then
    let argv' =
      Array.append [| argv.(0) |] (Array.sub argv 2 (Array.length argv - 2))
    in
    exit (Cmd.eval' ~argv:argv' sched_cmd)
  else exit (Cmd.eval' cmd)
