(* hpmrun: run a Mini-C program, optionally migrating it between two
   simulated machines mid-execution.

     hpmrun FILE                          run on ultra5, no migration
     hpmrun FILE --from dec5000 --to sparc20 --after-polls 100
     hpmrun workload:bitonic:5000 --from sparc20 --to x86_64 --report

   FILE may be "workload:NAME[:N]" for a built-in workload. *)

open Cmdliner
open Hpm_core

let read_input (spec : string) : string =
  match String.split_on_char ':' spec with
  | [ "workload"; name ] ->
      let w = Hpm_workloads.Registry.find_exn name in
      w.Hpm_workloads.Registry.source w.Hpm_workloads.Registry.default_n
  | [ "workload"; name; n ] ->
      let w = Hpm_workloads.Registry.find_exn name in
      w.Hpm_workloads.Registry.source (int_of_string n)
  | _ ->
      let ic = open_in_bin spec in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s

let run file from_ to_ after report show_net save_ckpt load_ckpt loss corrupt
    max_retries net_seed =
  if loss < 0.0 || loss > 1.0 then (
    Fmt.epr "hpmrun: --loss must be in [0,1] (got %g)@." loss;
    exit 1);
  if corrupt < 0.0 || corrupt > 1.0 then (
    Fmt.epr "hpmrun: --corrupt must be in [0,1] (got %g)@." corrupt;
    exit 1);
  if max_retries < 0 then (
    Fmt.epr "hpmrun: --max-retries must be non-negative (got %d)@." max_retries;
    exit 1);
  try
    let m = Migration.prepare (read_input file) in
    match (save_ckpt, load_ckpt) with
    | Some path, _ ->
        (* run on --from, checkpoint at the poll, stop *)
        let arch = Hpm_arch.Arch.by_name_exn from_ in
        let out = Checkpoint.run_and_save m arch ~after_polls:after path in
        print_string out;
        Fmt.pr "; checkpointed to %s@." path;
        0
    | None, Some path ->
        (* resume a checkpoint on --from and run to completion *)
        let arch = Hpm_arch.Arch.by_name_exn from_ in
        print_string (Checkpoint.resume_and_finish m arch path);
        0
    | None, None ->
    match to_ with
    | None ->
        let arch = Hpm_arch.Arch.by_name_exn from_ in
        let out, ret, stats = Migration.run_plain m arch in
        print_string out;
        if report then (
          Fmt.pr "; exit=%s@."
            (match ret with
            | Some (Hpm_machine.Mem.Vint v) -> Int64.to_string v
            | _ -> "void");
          Fmt.pr "; %a@." Hpm_machine.Mstats.pp stats);
        0
    | Some toname ->
        let src_arch = Hpm_arch.Arch.by_name_exn from_ in
        let dst_arch = Hpm_arch.Arch.by_name_exn toname in
        (* any fault flag routes the stream through the chunked transport
           over the paper's §4.1 10 Mb/s link, with a seeded (replayable)
           fault schedule *)
        let use_net = loss > 0.0 || corrupt > 0.0 in
        let channel =
          if use_net then
            Some
              (Hpm_net.Netsim.ethernet_10
                 ~faults:
                   (Hpm_net.Netsim.fault_model ~loss_rate:loss ~corrupt_rate:corrupt
                      ~seed:net_seed ())
                 ())
          else None
        in
        let transport = { Hpm_net.Transport.default_config with max_retries } in
        let o =
          Migration.run_migrating m ~src_arch ~dst_arch ~after_polls:after ?channel
            ~transport ()
        in
        print_string o.Migration.output;
        (match o.Migration.transfer_failure with
        | Some f ->
            Fmt.pr "; %a@." Migration.pp_transfer_failure f;
            Fmt.pr "; process resumed on %s and completed locally@." from_
        | None ->
            if use_net then
              match o.Migration.report with
              | Some { Migration.transport_stats = Some ts; _ } ->
                  Fmt.pr "; %a@." Hpm_net.Transport.pp_stats ts
              | _ -> ());
        (if report then
           match o.Migration.report with
           | Some r ->
               Fmt.pr "; %a@." Migration.pp_report r;
               if show_net then (
                 let ch10 = Hpm_net.Netsim.ethernet_10 () in
                 let ch100 = Hpm_net.Netsim.ethernet_100 () in
                 Fmt.pr "; Tx over 10Mb Ethernet : %.4f s@."
                   (Hpm_net.Netsim.tx_time ch10 r.Migration.stream_bytes);
                 Fmt.pr "; Tx over 100Mb Ethernet: %.4f s@."
                   (Hpm_net.Netsim.tx_time ch100 r.Migration.stream_bytes))
           | None ->
               if o.Migration.transfer_failure = None then
                 Fmt.pr "; process finished before the migration triggered@.");
        0
  with
  | Hpm_lang.Lexer.Error (m, l, c) ->
      Fmt.epr "lexical error at %d:%d: %s@." l c m;
      1
  | Hpm_lang.Parser.Error (m, l, c) ->
      Fmt.epr "syntax error at %d:%d: %s@." l c m;
      1
  | Hpm_lang.Typecheck.Error (m, loc) ->
      Fmt.epr "type error at %a: %s@." Hpm_lang.Ast.pp_loc loc m;
      1
  | Hpm_ir.Diag.Rejected diags ->
      Fmt.epr "program rejected by static analysis:@.";
      List.iter (fun d -> Fmt.epr "  %a@." Hpm_ir.Diag.pp d) diags;
      1
  | Hpm_machine.Interp.Trap m | Hpm_machine.Mem.Fault m ->
      Fmt.epr "runtime fault: %s@." m;
      2
  | Checkpoint.Error m | Restore.Error m | Collect.Error m ->
      Fmt.epr "migration error: %s@." m;
      3

let () =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"source file or workload:NAME[:N]")
  in
  let from_ =
    Arg.(value & opt string "ultra5" & info [ "from" ] ~docv:"ARCH" ~doc:"source machine")
  in
  let to_ =
    Arg.(value & opt (some string) None & info [ "to" ] ~docv:"ARCH" ~doc:"destination machine (enables migration)")
  in
  let after =
    Arg.(value & opt int 0 & info [ "after-polls" ] ~docv:"K" ~doc:"migrate at the (K+1)-th poll event")
  in
  let report = Arg.(value & flag & info [ "report" ] ~doc:"print migration statistics") in
  let show_net = Arg.(value & flag & info [ "net" ] ~doc:"print simulated network transfer times") in
  let save_ckpt =
    Arg.(value & opt (some string) None
         & info [ "checkpoint-to" ] ~docv:"FILE"
             ~doc:"run on --from, write a checkpoint at the poll, and stop")
  in
  let load_ckpt =
    Arg.(value & opt (some string) None
         & info [ "restore-from" ] ~docv:"FILE"
             ~doc:"resume a checkpoint file on --from and run to completion")
  in
  let loss =
    Arg.(value & opt float 0.0
         & info [ "loss" ] ~docv:"P"
             ~doc:"per-chunk truncation probability; routes the migration through \
                   the chunked transport over a lossy 10 Mb/s link")
  in
  let corrupt =
    Arg.(value & opt float 0.0
         & info [ "corrupt" ] ~docv:"P"
             ~doc:"per-chunk byte-flip probability on the simulated link")
  in
  let max_retries =
    Arg.(value & opt int Hpm_net.Transport.default_config.Hpm_net.Transport.max_retries
         & info [ "max-retries" ] ~docv:"N"
             ~doc:"retransmissions per chunk before the transfer aborts and the \
                   process resumes on the source machine")
  in
  let net_seed =
    Arg.(value & opt int 1
         & info [ "net-seed" ] ~docv:"SEED"
             ~doc:"seed of the deterministic fault schedule (replays exactly)")
  in
  let cmd =
    Cmd.v
      (Cmd.info "hpmrun" ~doc:"run Mini-C programs with heterogeneous process migration")
      Term.(const run $ file $ from_ $ to_ $ after $ report $ show_net $ save_ckpt
            $ load_ckpt $ loss $ corrupt $ max_retries $ net_seed)
  in
  exit (Cmd.eval' cmd)
