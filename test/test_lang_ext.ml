(** Tests for the extended language features: switch/case with C
    fallthrough, goto/labels (the paper's poll-points are literally label
    statements), and C89 block-scoped declarations (hoisted by
    {!Hpm_lang.Scopes}). *)

open Util

let outp src = run_on src

let test_switch_dispatch () =
  let src =
    {|
int classify(int x) {
  switch (x) {
    case 0:
      return 100;
    case 1:
    case 2:
      return 200;
    case -3:
      return 300;
    default:
      return 400;
  }
}
int main() {
  print_int(classify(0));
  print_int(classify(1));
  print_int(classify(2));
  print_int(classify(-3));
  print_int(classify(99));
  return 0;
}
|}
  in
  check_string "switch dispatch" "100\n200\n200\n300\n400\n" (outp src)

let test_switch_fallthrough () =
  let src =
    {|
int main() {
  int x;
  int acc;
  for (x = 0; x < 4; x++) {
    acc = 0;
    switch (x) {
      case 0:
        acc = acc + 1;     /* falls through */
      case 1:
        acc = acc + 10;    /* falls through */
      case 2:
        acc = acc + 100;
        break;
      default:
        acc = acc + 1000;
    }
    print_int(acc);
  }
  return 0;
}
|}
  in
  check_string "fallthrough" "111\n110\n100\n1000\n" (outp src)

let test_switch_break_and_loops () =
  let src =
    {|
int main() {
  int i;
  int hits;
  hits = 0;
  for (i = 0; i < 6; i++) {
    switch (i % 3) {
      case 0:
        continue;         /* continue targets the loop, not the switch */
      case 1:
        hits = hits + 1;
        break;            /* break targets the switch */
      default:
        hits = hits + 10;
    }
    hits = hits + 100;    /* reached for i%3 != 0 */
  }
  print_int(hits);
  return 0;
}
|}
  in
  (* i=1,4: +1+100 each; i=2,5: +10+100 each; i=0,3: skipped *)
  check_string "break/continue in switch" "422\n" (outp src)

let test_switch_on_char_and_long () =
  let src =
    {|
int main() {
  char c;
  c = 'b';
  switch (c) {
    case 'a': print_int(1); break;
    case 'b': print_int(2); break;
    default: print_int(3);
  }
  return 0;
}
|}
  in
  check_string "switch on char" "2\n" (outp src)

let test_goto_forward_backward () =
  let src =
    {|
int main() {
  int i;
  i = 0;
again:
  i = i + 1;
  if (i < 5) goto again;        /* backward: a goto loop */
  if (i == 5) goto done;        /* forward */
  print_int(-1);
done:
  print_int(i);
  return 0;
}
|}
  in
  check_string "goto loop" "5\n" (outp src)

let test_goto_out_of_loop () =
  let src =
    {|
int main() {
  int i; int j = 0;
  for (i = 0; i < 10; i++) {
    for (j = 0; j < 10; j++) {
      if (i * j == 6) goto out;
    }
  }
out:
  print_int(i * 10 + j);
  return 0;
}
|}
  in
  check_string "goto out of nested loops" "16\n" (outp src)

let tc_error src =
  match check_src src with
  | _ -> false
  | exception Hpm_lang.Typecheck.Error _ -> true

let test_switch_goto_errors () =
  check_bool "duplicate case" true
    (tc_error "int main() { switch (1) { case 1: break; case 1: break; default: ; } return 0; }");
  check_bool "float scrutinee" true
    (tc_error "int main() { double d; switch (d) { default: ; } return 0; }");
  check_bool "goto nowhere" true (tc_error "int main() { goto nowhere; return 0; }");
  check_bool "duplicate label" true
    (tc_error "int main() { x: print_int(1); x: return 0; }")

(* ---- block-scoped declarations ---- *)

let test_block_decls_basic () =
  let src =
    {|
int main() {
  int x;
  x = 1;
  {
    int y;
    y = x + 10;
    print_int(y);
  }
  print_int(x);
  return 0;
}
|}
  in
  check_string "block decl" "11\n1\n" (outp src)

let test_block_decl_shadowing () =
  let src =
    {|
int x = 5;
int main() {
  int a;
  a = x;                   /* global x = 5 */
  {
    int x;                 /* shadows the global */
    x = 100;
    a = a + x;
    {
      int x;               /* shadows the shadower */
      x = 1000;
      a = a + x;
    }
    a = a + x;             /* inner shadow gone: 100 again */
  }
  a = a + x;               /* global again */
  print_int(a);
  return 0;
}
|}
  in
  check_string "shadowing" "1210\n" (outp src)

let test_block_decl_initializer_each_entry () =
  let src =
    {|
int main() {
  int i;
  for (i = 0; i < 3; i++) {
    int acc = i * 10;      /* re-initialized every iteration */
    acc = acc + 1;
    print_int(acc);
  }
  return 0;
}
|}
  in
  check_string "initializer re-runs" "1\n11\n21\n" (outp src)

let test_block_decls_in_branches () =
  let src =
    {|
int main() {
  int n;
  n = 7;
  if (n > 3) {
    int big = n * n;
    print_int(big);
  } else {
    int small = -n;
    print_int(small);
  }
  while (n > 5) {
    int step = 1;
    n = n - step;
  }
  print_int(n);
  return 0;
}
|}
  in
  check_string "branch-scoped decls" "49\n5\n" (outp src)

let test_block_decls_migrate () =
  (* hoisting/renaming is deterministic, so renamed locals keep their
     identity across the migration boundary *)
  let src =
    {|
int main() {
  int i;
  long total;
  total = 0L;
  for (i = 0; i < 50; i++) {
    int sq = i * i;
    {
      int sq__1;           /* collides with the hoister's first choice */
      sq__1 = sq + 1;
      total = total + (long)sq__1;
    }
  }
  print_long(total);
  return 0;
}
|}
  in
  let m = prepare src in
  let ref_out, _, _ = Hpm_core.Migration.run_plain m Hpm_arch.Arch.ultra5 in
  List.iter
    (fun after ->
      let o =
        Hpm_core.Migration.run_migrating m ~src_arch:Hpm_arch.Arch.dec5000
          ~dst_arch:Hpm_arch.Arch.x86_64 ~after_polls:after ()
      in
      check_string (Printf.sprintf "migrated at %d" after) ref_out o.Hpm_core.Migration.output)
    [ 0; 7; 31 ]

let test_switch_migrates () =
  let src =
    {|
int main() {
  int i;
  int acc;
  acc = 0;
  for (i = 0; i < 40; i++) {
    switch (i % 4) {
      case 0: acc = acc + 1; break;
      case 1:
      case 2: acc = acc + 20; break;
      default: acc = acc - 3;
    }
  }
  print_int(acc);
  return 0;
}
|}
  in
  let m = prepare src in
  let ref_out, _, _ = Hpm_core.Migration.run_plain m Hpm_arch.Arch.ultra5 in
  List.iter
    (fun after ->
      let o =
        Hpm_core.Migration.run_migrating m ~src_arch:Hpm_arch.Arch.sparc20
          ~dst_arch:Hpm_arch.Arch.i386 ~after_polls:after ()
      in
      check_string (Printf.sprintf "switch migrated at %d" after) ref_out
        o.Hpm_core.Migration.output)
    [ 0; 13; 37 ]

let test_goto_loop_polls () =
  (* a goto-formed loop still gets a loop-header poll (it is a back edge) *)
  let src =
    {|
int main() {
  int i;
  i = 0;
top:
  i = i + 1;
  if (i < 100000) goto top;
  print_int(i);
  return 0;
}
|}
  in
  let m = prepare src in
  let _, _, stats = Hpm_core.Migration.run_plain m Hpm_arch.Arch.ultra5 in
  check_bool "polls fired in goto loop" true (stats.Hpm_machine.Mstats.polls > 10_000);
  (* and migration inside it works *)
  let o =
    Hpm_core.Migration.run_migrating m ~src_arch:Hpm_arch.Arch.dec5000
      ~dst_arch:Hpm_arch.Arch.sparc20 ~after_polls:50_000 ()
  in
  check_bool "migrated mid goto-loop" true o.Hpm_core.Migration.migrated;
  check_string "correct" "100000\n" o.Hpm_core.Migration.output

let test_roundtrip_new_syntax () =
  let src =
    {|
int main() {
  int i;
  switch (i) {
    case 1: print_int(1); break;
    default: ;
  }
  goto fin;
fin:
  return 0;
}
|}
  in
  let p = Hpm_lang.Parser.parse_string src in
  let printed = Hpm_lang.Pretty.program_to_string p in
  let p2 = Hpm_lang.Parser.parse_string printed in
  let printed2 = Hpm_lang.Pretty.program_to_string p2 in
  check_string "print fixpoint with switch/goto" printed printed2

let suite =
  [
    tc "switch dispatch" test_switch_dispatch;
    tc "switch fallthrough" test_switch_fallthrough;
    tc "break/continue inside switch" test_switch_break_and_loops;
    tc "switch on char" test_switch_on_char_and_long;
    tc "goto forward and backward" test_goto_forward_backward;
    tc "goto out of nested loops" test_goto_out_of_loop;
    tc "switch/goto static errors" test_switch_goto_errors;
    tc "block declarations" test_block_decls_basic;
    tc "shadowing" test_block_decl_shadowing;
    tc "initializers re-run per entry" test_block_decl_initializer_each_entry;
    tc "declarations in branches" test_block_decls_in_branches;
    tc "block decls migrate" test_block_decls_migrate;
    tc "switch migrates" test_switch_migrates;
    tc "goto loop polls and migrates" test_goto_loop_polls;
    tc "pretty round trip" test_roundtrip_new_syntax;
  ]
