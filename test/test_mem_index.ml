(** Differential oracle for the sorted flat-array interval index behind
    [Mem.find_block].

    A reference model keeps the [AddrMap] semantics the index replaced
    (base→block map, [find_last_opt] lookup, freed blocks left in place by
    [free] and removed by [remove_block]); random alloc/free/remove churn
    is applied to a real [Mem.t] while the model shadows every operation,
    and every probe address must classify identically — same block
    (physically), same dangling/wild fault — in both. *)

open Hpm_arch
open Hpm_lang
open Hpm_machine
open Util

module AddrMap = Map.Make (Int64)

let tenv = Ty.empty_tenv
let fresh ?(arch = Arch.sparc20) () = Mem.create arch tenv
let fault = function Mem.Fault _ -> true | _ -> false

(* ---- reference model ---- *)

type expect = Found of Mem.block | Dangling of Mem.block | Wild

let model_find (map : Mem.block AddrMap.t) addr : expect =
  match AddrMap.find_last_opt (fun b -> Int64.compare b addr <= 0) map with
  | Some (_, b)
    when Int64.compare addr b.Mem.base >= 0
         && Int64.compare addr (Int64.add b.Mem.base (Int64.of_int b.Mem.size)) < 0
    ->
      if b.Mem.freed then Dangling b else Found b
  | _ -> Wild

(* What the real Mem did for the same probe. *)
type actual = AFound of Mem.block | AFault of string

let real_find m addr : actual =
  match Mem.find_block m addr with
  | b -> AFound b
  | exception Mem.Fault msg -> AFault msg

let agree (e : expect) (a : actual) : bool =
  match (e, a) with
  | Found b, AFound b' -> b == b'
  | Dangling b, AFault msg ->
      contains_sub msg "dangling"
      && contains_sub msg (Printf.sprintf "freed block #%d" b.Mem.bid)
  | Wild, AFault msg -> contains_sub msg "wild"
  | _ -> false

(* find_block_opt must be the option view of find_block *)
let opt_consistent m addr (a : actual) : bool =
  match (Mem.find_block_opt m addr, a) with
  | Some b, AFound b' -> b == b'
  | None, AFault _ -> true
  | _ -> false

(* ---- random churn ---- *)

let alloc_tys =
  [| Ty.Int; Ty.Array (Ty.Double, 3); Ty.Char; Ty.Array (Ty.Int, 7); Ty.Long |]

(* Interpret an op sequence on both the real memory and the model.  Ops
   are (selector, argument) pairs from QCheck; the state tracks every
   block ever allocated (for probing), live heap blocks (for free), and
   the stack as a LIFO (for remove + address reuse). *)
let run_ops (ops : (int * int) list) : bool =
  let m = fresh () in
  let map = ref AddrMap.empty in
  let all = ref [] and heap = ref [] and stack = ref [] in
  let probe addr =
    let a = real_find m addr in
    agree (model_find !map addr) a && opt_consistent m addr a
  in
  let probe_block (b : Mem.block) =
    let base = b.Mem.base and size = Int64.of_int b.Mem.size in
    probe base
    && probe (Int64.add base 1L)
    && probe (Int64.add base (Int64.sub size 1L))
    && probe (Int64.add base size) (* one-past-the-end *)
    && probe (Int64.add base (Int64.add size 5L)) (* guard gap *)
  in
  let step (sel, arg) =
    (match sel mod 5 with
    | 0 | 1 ->
        (* alloc: heap-biased, some stack and global *)
        let ty = alloc_tys.(arg mod Array.length alloc_tys) in
        let seg, ident =
          match arg mod 3 with
          | 0 -> (Mem.Heap, Mem.Iheap)
          | 1 -> (Mem.Stack, Mem.Ilocal (0, "x"))
          | _ -> (Mem.Global, Mem.Iglobal "g")
        in
        let b = Mem.alloc m seg ty ident in
        map := AddrMap.add b.Mem.base b !map;
        all := b :: !all;
        if seg = Mem.Heap then heap := b :: !heap;
        if seg = Mem.Stack then stack := b :: !stack
    | 2 -> (
        (* free a live heap block *)
        match List.filter (fun (b : Mem.block) -> not b.Mem.freed) !heap with
        | [] -> ()
        | live ->
            let b = List.nth live (arg mod List.length live) in
            Mem.free m b (* freed flag is shared: model sees it too *))
    | 3 -> (
        (* pop the newest stack block, reusing its address range *)
        match !stack with
        | [] -> ()
        | b :: rest ->
            let top = Int64.add b.Mem.base (Int64.of_int b.Mem.size) in
            Mem.remove_block m b;
            Mem.set_stack_top m (Int64.add top 16L (* guard *));
            map := AddrMap.remove b.Mem.base !map;
            stack := rest)
    | _ ->
        (* probe a far-away address *)
        ignore (probe (Int64.of_int (0x2000_0000 + (arg * 3)))));
    (* after every op, every block ever allocated still classifies
       identically at its edges *)
    List.for_all probe_block !all
  in
  List.for_all step ops

let prop_differential =
  qt ~count:200 "index ≡ AddrMap model under churn"
    QCheck.(list_of_size (Gen.int_range 1 20) (pair small_nat small_nat))
    run_ops

(* ---- adversarial fixed cases ---- *)

let test_edges () =
  let m = fresh () in
  let a = Mem.alloc m Mem.Heap (Ty.Array (Ty.Int, 4)) Mem.Iheap in
  let b = Mem.alloc m Mem.Heap (Ty.Array (Ty.Int, 4)) Mem.Iheap in
  check_bool "at base" true (Mem.find_block m a.Mem.base == a);
  check_bool "last byte" true
    (Mem.find_block m (Int64.add a.Mem.base 15L) == a);
  expect_raise "one-past-end is wild" fault (fun () ->
      Mem.find_block m (Int64.add a.Mem.base 16L));
  expect_raise "guard gap between blocks" fault (fun () ->
      Mem.find_block m (Int64.sub b.Mem.base 1L));
  check_bool "second block base" true (Mem.find_block m b.Mem.base == b)

let test_cache_safety () =
  let m = fresh () in
  let a = Mem.alloc m Mem.Heap (Ty.Array (Ty.Long, 8)) Mem.Iheap in
  (* warm the cache on [a]... *)
  check_bool "warm" true (Mem.find_block m (Int64.add a.Mem.base 8L) == a);
  (* ...then free it: the cached hit must not survive *)
  Mem.free m a;
  expect_raise "cached block freed" fault (fun () ->
      Mem.find_block m (Int64.add a.Mem.base 8L));
  let b = Mem.alloc m Mem.Heap Ty.Int Mem.Iheap in
  check_bool "fresh block found after churn" true (Mem.find_block m b.Mem.base == b)

let test_realloc_churn () =
  let m = fresh () in
  let sp = Mem.stack_top m in
  let a = Mem.alloc m Mem.Stack (Ty.Array (Ty.Int, 4)) (Mem.Ilocal (0, "x")) in
  check_bool "stack block found" true (Mem.find_block m a.Mem.base == a);
  Mem.remove_block m a;
  Mem.set_stack_top m sp;
  expect_raise "removed is wild" fault (fun () -> Mem.find_block m a.Mem.base);
  (* reallocate the same range: the index entry must be replaced, and
     lookups must resolve to the NEW block *)
  let b = Mem.alloc m Mem.Stack (Ty.Array (Ty.Int, 4)) (Mem.Ilocal (0, "y")) in
  check_bool "range reused" true (Int64.equal b.Mem.base a.Mem.base);
  check_bool "new block wins" true (Mem.find_block m b.Mem.base == b);
  check_bool "interior of new block" true
    (Mem.find_block m (Int64.add b.Mem.base 8L) == b)

let test_many_blocks_ordered () =
  (* grow past the initial table capacity and check every block is still
     found — exercises the doubling + insertion blits *)
  let m = fresh () in
  let blocks = Array.init 100 (fun _ -> Mem.alloc m Mem.Heap Ty.Long Mem.Iheap) in
  Array.iter
    (fun (b : Mem.block) ->
      check_bool "each base resolves" true (Mem.find_block m b.Mem.base == b))
    blocks;
  check_int "live count" 100 m.Mem.live_blocks;
  (* interleave stack blocks below, heap above: segments stay sorted *)
  let s = Mem.alloc m Mem.Stack Ty.Int (Mem.Ilocal (0, "s")) in
  check_bool "stack base resolves" true (Mem.find_block m s.Mem.base == s);
  check_bool "heap unaffected" true
    (Mem.find_block m blocks.(50).Mem.base == blocks.(50))

let test_searches_still_counted () =
  let m = fresh () in
  let b = Mem.alloc m Mem.Heap Ty.Int Mem.Iheap in
  let before = m.Mem.stats.Mstats.searches in
  ignore (Mem.find_block m b.Mem.base);
  ignore (Mem.find_block m b.Mem.base); (* cache hit still counts *)
  ignore (Mem.find_block_opt m 0xdead_0000L);
  check_int "3 searches" (before + 3) m.Mem.stats.Mstats.searches

let suite =
  [
    tc "boundary lookups" test_edges;
    tc "generation-checked cache never returns freed" test_cache_safety;
    tc "free/realloc churn replaces the index entry" test_realloc_churn;
    tc "table growth keeps order" test_many_blocks_ordered;
    tc "searches counter unchanged" test_searches_still_counted;
    prop_differential;
  ]
