(** Seeded-defect corpus for the migratability lint.

    Each entry is a small Mini-C program with a known defect and the
    diagnostics the lint must produce for it: [(code, line)] pairs that
    must all appear, with no diagnostic of any *other* code allowed (the
    same code may legitimately fire at several poll-points).  The [clean]
    list are realistic programs the lint must stay silent on — the
    zero-false-positive half of the contract. *)

type case = {
  c_name : string;
  c_strategy : Hpm_ir.Pollpoint.strategy;
  c_source : string;
  c_expected : (string * int) list;  (** diagnostic code, 1-based line *)
}

let default = Hpm_ir.Pollpoint.default_strategy
let user_only = Hpm_ir.Pollpoint.user_only_strategy

let defects =
  [
    {
      c_name = "uninit-scalar-at-poll";
      c_strategy = default;
      c_source =
        {|int main() {
  int i;
  int sum;
  for (i = 0; i < 10; i = i + 1) {
    sum = sum + i;
  }
  print_int(sum);
  return 0;
}
|};
      (* flagged at the loop-header poll (line 5, first body instruction)
         and at main's entry poll (line 4, the for-init) *)
      c_expected = [ ("HPM-E101", 5); ("HPM-E101", 4) ];
    };
    {
      c_name = "wild-pointer-at-poll";
      c_strategy = default;
      c_source =
        {|int main() {
  int i;
  int *p;
  for (i = 0; i < 10; i = i + 1) {
    print_int(i);
  }
  print_int(*p);
  return 0;
}
|};
      c_expected = [ ("HPM-E103", 5); ("HPM-E103", 4) ];
    };
    {
      c_name = "use-after-free-at-poll";
      c_strategy = default;
      c_source =
        {|int main() {
  int i;
  int *p;
  p = (int *) malloc(4 * sizeof(int));
  p[0] = 7;
  free(p);
  for (i = 0; i < 10; i = i + 1) {
    print_int(i);
  }
  print_int(p[0]);
  return 0;
}
|};
      c_expected = [ ("HPM-E102", 8) ];
    };
    {
      c_name = "use-after-free-at-user-poll";
      c_strategy = user_only;
      c_source =
        {|int main() {
  int *p;
  p = (int *) malloc(sizeof(int));
  *p = 5;
  free(p);
  #pragma poll here
  print_int(*p);
  return 0;
}
|};
      c_expected = [ ("HPM-E102", 6) ];
    };
    {
      c_name = "double-free";
      c_strategy = user_only;
      c_source =
        {|int main() {
  int *p;
  p = (int *) malloc(4 * sizeof(int));
  p[0] = 7;
  print_int(p[0]);
  free(p);
  free(p);
  return 0;
}
|};
      c_expected = [ ("HPM-W104", 7) ];
    };
    {
      c_name = "double-free-in-branch";
      c_strategy = user_only;
      c_source =
        {|int main() {
  int *p;
  p = (int *) malloc(sizeof(int));
  *p = 1;
  if (*p > 0) {
    free(p);
  }
  free(p);
  return 0;
}
|};
      c_expected = [ ("HPM-W104", 8) ];
    };
    {
      c_name = "dead-store-before-poll";
      c_strategy = default;
      c_source =
        {|int main() {
  int i;
  int r;
  r = 42;
  r = 7;
  for (i = 0; i < 10; i = i + 1) {
    print_int(r);
  }
  return 0;
}
|};
      c_expected = [ ("HPM-W105", 4) ];
    };
    {
      c_name = "uninit-at-suspended-call";
      c_strategy = default;
      c_source =
        {|void helper(int n) {
  int j;
  for (j = 0; j < n; j = j + 1) {
    print_int(j);
  }
}
int main() {
  int x;
  helper(3);
  print_int(x);
  return 0;
}
|};
      (* the call to helper may suspend (helper polls); x is garbage in
         main's suspended frame and read after the call returns.  Also
         flagged at main's own entry poll, same line. *)
      c_expected = [ ("HPM-E101", 9) ];
    };
  ]

(** Programs that exercise the idioms most likely to trip a naive
    analysis; the lint must report nothing on any of them. *)
let clean =
  [
    ( "branch-init",
      default,
      {|int main() {
  int i;
  int x;
  if (rand() > 0) { x = 1; } else { x = 2; }
  for (i = 0; i < 10; i = i + 1) {
    x = x + i;
  }
  print_int(x);
  return 0;
}
|} );
    ( "array-fill-in-polled-loop",
      default,
      {|int main() {
  int a[100];
  int i;
  int s;
  s = 0;
  for (i = 0; i < 100; i = i + 1) {
    a[i] = i;
  }
  for (i = 0; i < 100; i = i + 1) {
    s = s + a[i];
  }
  print_int(s);
  return 0;
}
|} );
    ( "out-param-init",
      default,
      {|void init(int *out) {
  *out = 5;
}
int main() {
  int i;
  int x;
  init(&x);
  for (i = 0; i < 10; i = i + 1) {
    x = x + 1;
  }
  print_int(x);
  return 0;
}
|} );
    ( "free-then-reassign",
      default,
      {|int main() {
  int i;
  int *p;
  p = (int *) malloc(sizeof(int));
  *p = 1;
  free(p);
  p = (int *) malloc(sizeof(int));
  *p = 2;
  for (i = 0; i < 5; i = i + 1) {
    *p = *p + i;
  }
  print_int(*p);
  free(p);
  return 0;
}
|} );
    ( "dangling-but-dead",
      user_only,
      {|int main() {
  int *p;
  p = (int *) malloc(sizeof(int));
  *p = 5;
  free(p);
  #pragma poll here
  print_int(7);
  return 0;
}
|} );
  ]
