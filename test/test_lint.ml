(** Migratability-lint tests: the seeded-defect corpus must be flagged
    with the right code at the right location, every workload and example
    program must lint clean, and the diagnostics engine must honor
    [-Werror], suppression and the JSON contract. *)

open Hpm_ir
open Util

let analyze ?(strategy = Pollpoint.default_strategy) src =
  (Lint.analyze_source ~strategy src).Lint.a_diags

let code_lines ds =
  List.map (fun (d : Diag.t) -> (d.Diag.code, d.Diag.loc.Hpm_lang.Ast.line)) ds

let show_code_lines cl =
  String.concat ", " (List.map (fun (c, l) -> Printf.sprintf "%s@%d" c l) cl)

(* --- the seeded-defect corpus --------------------------------------- *)

let test_defect_corpus () =
  List.iter
    (fun (c : Corpus.case) ->
      let actual = code_lines (analyze ~strategy:c.Corpus.c_strategy c.Corpus.c_source) in
      check_bool (c.Corpus.c_name ^ " produces diagnostics") true (actual <> []);
      List.iter
        (fun (code, line) ->
          check_bool
            (Printf.sprintf "%s: %s at line %d (got: %s)" c.Corpus.c_name code
               line (show_code_lines actual))
            true
            (List.mem (code, line) actual))
        c.Corpus.c_expected;
      (* no diagnostic of a code the corpus entry does not predict: the
         lint may flag the same defect at several poll-points, but a
         different code would be a false positive *)
      let allowed = List.map fst c.Corpus.c_expected in
      List.iter
        (fun (code, line) ->
          check_bool
            (Printf.sprintf "%s: unexpected %s at line %d" c.Corpus.c_name code line)
            true (List.mem code allowed))
        actual)
    Corpus.defects

let test_clean_corpus () =
  List.iter
    (fun (name, strategy, src) ->
      let actual = code_lines (analyze ~strategy src) in
      check_bool
        (Printf.sprintf "%s lints clean (got: %s)" name (show_code_lines actual))
        true (actual = []))
    Corpus.clean

(* --- zero false positives on the whole built-in program suite ------- *)

let test_workloads_lint_clean () =
  List.iter
    (fun (w : Hpm_workloads.Registry.t) ->
      let src = w.Hpm_workloads.Registry.source w.Hpm_workloads.Registry.default_n in
      let actual = code_lines (analyze src) in
      check_bool
        (Printf.sprintf "workload %s lints clean (got: %s)"
           w.Hpm_workloads.Registry.name (show_code_lines actual))
        true (actual = []))
    Hpm_workloads.Registry.all

(* The inline sources of examples/quickstart.ml, examples/fig1_example.ml
   and examples/unsafe_demo.ml (good_source), kept in sync by hand; fig1
   is linted under the user-only strategy it actually runs with. *)
let example_sources =
  [
    ( "quickstart",
      Pollpoint.default_strategy,
      {|
struct point { double x; double y; struct point *next; };

struct point *path;

double length(struct point *p) {
  double d;
  d = 0.0;
  while (p != 0 && p->next != 0) {
    d = d + sqrt((p->x - p->next->x) * (p->x - p->next->x)
               + (p->y - p->next->y) * (p->y - p->next->y));
    p = p->next;
  }
  return d;
}

int main() {
  struct point *p;
  int i;
  path = 0;
  for (i = 0; i < 1000; i++) {
    p = (struct point *) malloc(sizeof(struct point));
    p->x = (double)(i % 97);
    p->y = (double)((i * 7) % 89);
    p->next = path;
    path = p;
  }
  print_str("path length:\n");
  print_double(length(path));
  return 0;
}
|} );
    ( "fig1_example",
      Pollpoint.user_only_strategy,
      {|
struct node {
  float data;
  struct node *link;
};
struct node *first, *last;

void foo(struct node **p, int **q) {
  #pragma poll before_malloc
  *p = (struct node *) malloc(sizeof(struct node));
  (*p)->data = 10.0;
  (**q)++;
}

int main() {
  int i;
  int a, *b;
  struct node *parray[10];
  a = 1;
  b = &a;
  for (i = 0; i < 10; i++) {
    foo(parray + i, &b);
    first = parray[0];
    last = parray[i];
    first->link = last;
    if (i > 0) {
      parray[i]->link = parray[i - 1];
    }
  }
  return 0;
}
|} );
    ( "unsafe_demo-good",
      Pollpoint.default_strategy,
      {|
int main() {
  int x;
  int *p;
  x = 5;
  p = &x;
  print_int(*p);
  return 0;
}
|} );
  ]

let test_examples_lint_clean () =
  List.iter
    (fun (name, strategy, src) ->
      let actual = code_lines (analyze ~strategy src) in
      check_bool
        (Printf.sprintf "example %s lints clean (got: %s)" name
           (show_code_lines actual))
        true (actual = []))
    example_sources

(* --- pipeline gate --------------------------------------------------- *)

let defect_src name =
  let c = List.find (fun c -> c.Corpus.c_name = name) Corpus.defects in
  (c.Corpus.c_strategy, c.Corpus.c_source)

let test_prepare_rejects_lint_errors () =
  let strategy, src = defect_src "wild-pointer-at-poll" in
  expect_raise "prepare rejects a wild pointer at a poll"
    (function Diag.Rejected _ -> true | _ -> false)
    (fun () -> Hpm_core.Migration.prepare ~strategy src);
  (* the explicit opt-out accepts the same program *)
  let m = Hpm_core.Migration.prepare ~strategy ~lint:false src in
  check_bool "opt-out prepared it" true (m.Hpm_core.Migration.prog.Ir.funcs <> [])

let test_prepare_keeps_lint_warnings () =
  let strategy, src = defect_src "double-free" in
  let m = Hpm_core.Migration.prepare ~strategy src in
  check_bool "double-free is a warning, program accepted" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "HPM-W104")
       m.Hpm_core.Migration.diags)

(* --- diagnostics engine --------------------------------------------- *)

let some_warning () =
  Diag.make ~code:"HPM-W104" ~loc:{ Hpm_lang.Ast.line = 3; col = 1 } "w"

let test_werror_promotion () =
  let ds = [ some_warning () ] in
  check_int "warning by default" 0 (List.length (Diag.errors ds));
  let ds' = Diag.apply { Diag.werror = true; suppress = [] } ds in
  check_int "promoted to error" 1 (List.length (Diag.errors ds'));
  check_int "werror exit code" 1 (Diag.exit_code ds')

let test_suppression () =
  let ds = [ some_warning () ] in
  check_int "suppressed away" 0
    (List.length (Diag.apply { Diag.werror = false; suppress = [ "HPM-W104" ] } ds));
  check_int "other codes untouched" 1
    (List.length (Diag.apply { Diag.werror = false; suppress = [ "HPM-W105" ] } ds));
  expect_raise "unknown suppress code rejected"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Diag.apply { Diag.werror = false; suppress = [ "HPM-W999" ] } ds)

let test_unregistered_code_rejected () =
  expect_raise "Diag.make checks the registry"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Diag.make ~code:"HPM-E999" ~loc:Hpm_lang.Ast.no_loc "nope")

let test_json_shape () =
  let ds = analyze (snd (defect_src "double-free")) in
  let js = Diag.to_json ~file:"x.c" ds in
  check_bool "has file" true (contains_sub js {|"file":"x.c"|});
  check_bool "has code" true (contains_sub js {|"code":"HPM-W104"|});
  check_bool "has severity" true (contains_sub js {|"severity":"warning"|});
  check_bool "counts errors" true (contains_sub js {|"errors":0|});
  check_bool "counts warnings" true (contains_sub js {|"warnings":1|});
  (* escaping: quotes and newlines in messages stay valid JSON *)
  let d = Diag.make ~code:"HPM-W105" ~loc:Hpm_lang.Ast.no_loc "a %s b" "\"x\"\n" in
  check_bool "escaped" true (contains_sub (Diag.to_json_one d) {|a \"x\"\n b|})

(* --- migration footprint -------------------------------------------- *)

let test_footprint () =
  let src =
    {|int main() {
  int i;
  double d;
  d = 0.0;
  for (i = 0; i < 4; i = i + 1) {
    d = d + 1.0;
  }
  print_double(d);
  return 0;
}
|}
  in
  let a = Lint.analyze_source src in
  check_bool "clean" true (a.Lint.a_diags = []);
  match a.Lint.a_prog with
  | None -> Alcotest.fail "expected a lowered program"
  | Some (prog, polls) ->
      let fp = Lint.footprint prog polls Hpm_arch.Arch.ultra5 in
      check_int "one entry per poll" (List.length polls.Pollpoint.polls)
        (List.length fp);
      (* at the loop-header poll both i (int, 4) and d (double, 8) are
         live: 12 bytes of Save_variable payload *)
      let loop_fp =
        List.find
          (fun (e : Lint.footprint_entry) ->
            e.Lint.fp_poll.Pollpoint.kind = Pollpoint.Kloop)
          fp
      in
      check_int "live vars at loop poll" 2 (List.length loop_fp.Lint.fp_vars);
      check_int "bytes at loop poll" 12 loop_fp.Lint.fp_bytes;
      let js = Lint.report_json ~file:"f.c" a.Lint.a_diags (Some fp) in
      check_bool "json has footprint" true (contains_sub js {|"footprint":[{|});
      check_bool "json has bytes" true (contains_sub js {|"bytes":12|})

(* Regression lock for the footprint JSON schema: each entry must carry
   the poll id and the poll kind, so downstream consumers (the CI compat
   job, the bench harness) can key on them.  The ids must be exactly the
   poll-table ids, in table order. *)
let test_footprint_json_fields () =
  let src =
    {|int work(int n) {
  int i;
  int acc;
  acc = 0;
  for (i = 0; i < n; i = i + 1) {
    acc = acc + i;
  }
  #pragma poll here
  return acc;
}
int main() {
  print_int(work(5));
  return 0;
}
|}
  in
  let a = Lint.analyze_source src in
  match a.Lint.a_prog with
  | None -> Alcotest.fail "expected a lowered program"
  | Some (prog, polls) ->
      let fp = Lint.footprint prog polls Hpm_arch.Arch.ultra5 in
      let js = Lint.report_json ~file:"f.c" a.Lint.a_diags (Some fp) in
      (* every poll id appears as a "poll" key, in poll-table order *)
      let last = ref (-1) in
      List.iter
        (fun (p : Pollpoint.info) ->
          let key = Printf.sprintf {|{"poll":%d,"fn":|} p.Pollpoint.id in
          check_bool (Printf.sprintf "entry for poll %d" p.Pollpoint.id) true
            (contains_sub js key);
          let idx =
            let n = String.length js and kn = String.length key in
            let rec go i = if String.sub js i kn = key then i else go (i + 1) in
            ignore n; go 0
          in
          check_bool "entries in table order" true (idx > !last);
          last := idx)
        polls.Pollpoint.polls;
      (* each entry names its kind with the same rendering pp_kind uses *)
      check_bool "loop kind" true (contains_sub js {|"kind":"loop-header"|});
      check_bool "entry kind" true (contains_sub js {|"kind":"fn-entry"|});
      check_bool "user kind" true (contains_sub js {|"kind":"user:here"|});
      List.iter
        (fun (e : Lint.footprint_entry) ->
          let kind = Fmt.str "%a" Pollpoint.pp_kind e.Lint.fp_poll.Pollpoint.kind in
          check_bool ("kind rendered: " ^ kind) true
            (contains_sub js (Printf.sprintf {|"kind":"%s"|} kind)))
        fp

let suite =
  [
    tc "seeded defects are flagged" test_defect_corpus;
    tc "clean idioms stay quiet" test_clean_corpus;
    tc "all workloads lint clean" test_workloads_lint_clean;
    tc "example programs lint clean" test_examples_lint_clean;
    tc "prepare rejects lint errors (opt-out works)" test_prepare_rejects_lint_errors;
    tc "prepare keeps lint warnings" test_prepare_keeps_lint_warnings;
    tc "-Werror promotes" test_werror_promotion;
    tc "per-code suppression" test_suppression;
    tc "unregistered codes rejected" test_unregistered_code_rejected;
    tc "json report shape" test_json_shape;
    tc "migration footprint" test_footprint;
    tc "footprint json keeps poll ids and kinds" test_footprint_json_fields;
  ]
