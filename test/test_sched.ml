(** Scheduler / distributed-environment tests. *)

open Hpm_sched
open Util

let nqueens n = Util.prepare (Hpm_workloads.Nqueens.source n)

let mk_env () =
  let slow = Sched.node "slow" Hpm_arch.Arch.dec5000 in
  let fast = Sched.node "fast" Hpm_arch.Arch.x86_64 in
  let sim = Sched.create ~channel:(Hpm_net.Netsim.ethernet_10 ()) [ slow; fast ] in
  (sim, slow, fast)

let test_run_to_completion () =
  let sim, slow, _ = mk_env () in
  let p = Sched.spawn sim slow "q6" (nqueens 6) in
  let _ = Sched.run sim in
  check_bool "finished" true (match p.Sched.p_state with Sched.Finished _ -> true | _ -> false);
  check_string "correct output" "4\n" (Sched.output p);
  check_int "no migrations" 0 p.Sched.p_migrations

let test_explicit_migration () =
  let sim, slow, fast = mk_env () in
  let p = Sched.spawn sim slow "q7" (nqueens 7) in
  Sched.request_migration sim p fast;
  let _ = Sched.run sim in
  check_string "output survives" "40\n" (Sched.output p);
  check_int "one migration" 1 p.Sched.p_migrations;
  check_bool "ends on fast" true (p.Sched.p_node == fast);
  (* the event log records request, migrate, finish in order *)
  let evs = Sched.events sim in
  let kinds =
    List.filter_map
      (function
        | Sched.Requested _ -> Some "req"
        | Sched.Migrated _ -> Some "mig"
        | Sched.Migration_failed _ -> Some "fail"
        | Sched.Recovered _ -> Some "rec"
        | Sched.Requeued _ -> Some "requeue"
        | Sched.Finished_ev _ -> Some "fin"
        | Sched.Spawned _ -> Some "spawn"
        | Sched.Compat_rejected _ -> Some "compat-reject"
        | Sched.Checkpointed _ -> Some "ckpt"
        | Sched.Promoted _ -> Some "promote"
        | Sched.Standby_lost _ -> Some "sb-lost"
        | Sched.Resynced _ -> Some "resync")
      evs
  in
  check_bool "event order" true (kinds = [ "spawn"; "req"; "mig"; "fin" ])

let test_migration_to_same_node_ignored () =
  let sim, slow, _ = mk_env () in
  let p = Sched.spawn sim slow "q5" (nqueens 5) in
  Sched.request_migration sim p slow;
  let _ = Sched.run sim in
  check_int "no self-migration" 0 p.Sched.p_migrations;
  check_string "still correct" "10\n" (Sched.output p)

let test_load_balance_beats_none () =
  let run policy =
    let sim, slow, _ = mk_env () in
    let procs = List.init 4 (fun i -> Sched.spawn sim slow (Printf.sprintf "j%d" i) (nqueens 7)) in
    let _ = Sched.run ~policy sim in
    List.iter (fun p -> check_string "each job correct" "40\n" (Sched.output p)) procs;
    List.fold_left
      (fun acc p -> max acc (Option.value ~default:infinity p.Sched.p_finish_time))
      0.0 procs
  in
  let t_none = run (fun _ -> ()) in
  let t_lb = run Sched.load_balance in
  check_bool
    (Printf.sprintf "load balancing helps (%.2f vs %.2f)" t_lb t_none)
    true (t_lb < t_none)

let test_seek_fastest () =
  let sim, slow, fast = mk_env () in
  let p = Sched.spawn sim slow "solo" (nqueens 8) in
  let _ = Sched.run ~policy:Sched.seek_fastest sim in
  check_string "correct" "92\n" (Sched.output p);
  check_bool "moved to the fast node" true (p.Sched.p_node == fast);
  check_int "exactly one migration" 1 p.Sched.p_migrations

let test_heterogeneous_cluster () =
  (* all five architectures in one cluster; a job hops through explicit
     requests and still computes the right answer *)
  let nodes = List.map (fun a -> Sched.node a.Hpm_arch.Arch.name a) Hpm_arch.Arch.all in
  let sim = Sched.create ~channel:(Hpm_net.Netsim.ethernet_100 ()) nodes in
  let p = Sched.spawn sim (List.hd nodes) "tour" (nqueens 8) in
  (* chain requests: after each migration completes, request the next *)
  let rec chase = function
    | [] -> fun _ -> ()
    | nd :: rest ->
        fun sim ->
          if p.Sched.p_node != nd && p.Sched.p_pending_dst = None
             && p.Sched.p_state = Sched.Runnable
          then Sched.request_migration sim p nd
          else if p.Sched.p_node == nd then (chase rest) sim
  in
  let _ = Sched.run ~policy:(chase (List.tl nodes)) sim in
  check_string "toured output" "92\n" (Sched.output p);
  check_bool "migrated several times" true (p.Sched.p_migrations >= 2)

let test_cpu_sharing () =
  (* two processes on one node each get half the CPU: the pair's makespan
     is roughly twice a solo run's *)
  let solo =
    let sim, slow, _ = mk_env () in
    let p = Sched.spawn sim slow "solo" (nqueens 7) in
    let _ = Sched.run sim in
    Option.get p.Sched.p_finish_time
  in
  let paired =
    let sim, slow, _ = mk_env () in
    let ps = List.init 2 (fun i -> Sched.spawn sim slow (Printf.sprintf "p%d" i) (nqueens 7)) in
    let _ = Sched.run sim in
    List.fold_left (fun acc p -> max acc (Option.get p.Sched.p_finish_time)) 0.0 ps
  in
  check_bool
    (Printf.sprintf "timesharing (solo %.2f, paired %.2f)" solo paired)
    true
    (paired > 1.5 *. solo && paired < 3.0 *. solo)

let test_failed_migration_requeues_on_source () =
  (* a dead link: the transfer aborts and the scheduler re-queues the
     process on its source node, which finishes it correctly *)
  let slow = Sched.node "slow" Hpm_arch.Arch.dec5000 in
  let fast = Sched.node "fast" Hpm_arch.Arch.x86_64 in
  let faults = Hpm_net.Netsim.fault_model ~corrupt_rate:1.0 ~seed:7 () in
  let sim =
    Sched.create ~channel:(Hpm_net.Netsim.ethernet_10 ~faults ()) [ slow; fast ]
  in
  let p = Sched.spawn sim slow "doomed" (nqueens 7) in
  Sched.request_migration sim p fast;
  let _ = Sched.run sim in
  check_string "output still correct" "40\n" (Sched.output p);
  check_bool "stayed on source" true (p.Sched.p_node == slow);
  check_int "no migration counted" 0 p.Sched.p_migrations;
  check_int "one failed migration" 1 p.Sched.p_failed_migrations;
  check_bool "failure event logged" true
    (List.exists
       (function Sched.Migration_failed _ -> true | _ -> false)
       (Sched.events sim))

let test_lossy_migration_still_succeeds () =
  (* a merely bad link: retries absorb the faults and the migration lands *)
  let slow = Sched.node "slow" Hpm_arch.Arch.dec5000 in
  let fast = Sched.node "fast" Hpm_arch.Arch.x86_64 in
  let faults = Hpm_net.Netsim.fault_model ~loss_rate:0.15 ~corrupt_rate:0.15 ~seed:11 () in
  let sim =
    Sched.create
      ~channel:(Hpm_net.Netsim.ethernet_10 ~faults ())
      ~transport:{ Hpm_net.Transport.default_config with Hpm_net.Transport.chunk_size = 512 }
      [ slow; fast ]
  in
  let p = Sched.spawn sim slow "bumpy" (nqueens 7) in
  Sched.request_migration sim p fast;
  let _ = Sched.run sim in
  check_string "output survives faults" "40\n" (Sched.output p);
  check_int "migration succeeded" 1 p.Sched.p_migrations;
  check_bool "ends on fast" true (p.Sched.p_node == fast)

let test_compat_gate_blocks_illegal_destination () =
  (* a double-heavy job on an x86_64 node; the cluster also has a
     wasm32-style node that stores doubles at f32 precision.  With the
     compat gate installed the scheduler must refuse to place the job
     there — and still honour a legal request to an aarch64 node. *)
  let src =
    {|int main() {
  double d;
  int i;
  d = 0.1;
  for (i = 0; i < 100; i = i + 1) {
    d = d + 0.1;
  }
  print_int(i);
  return 0;
}
|}
  in
  let fast = Sched.node "fast" Hpm_arch.Arch.x86_64 in
  let cramped = Sched.node "cramped" Hpm_arch.Arch.wasm32_le_ilp32 in
  let arm = Sched.node "arm" Hpm_arch.Arch.aarch64_le_lp64 in
  let compat (m : Hpm_core.Migration.migratable) ~src ~dst =
    let c = Hpm_core.Compat.create m.Hpm_core.Migration.prog m.Hpm_core.Migration.polls in
    Hpm_core.Compat.ok c ~src ~dst
  in
  let sim =
    Sched.create ~compat ~channel:(Hpm_net.Netsim.ethernet_10 ())
      [ fast; cramped; arm ]
  in
  let p = Sched.spawn sim fast "fp" (Util.prepare src) in
  Sched.request_migration sim p cramped;
  check_int "rejection counted" 1 p.Sched.p_compat_rejected;
  check_bool "no pending destination" true (p.Sched.p_pending_dst = None);
  check_bool "rejection event logged" true
    (List.exists
       (function Sched.Compat_rejected _ -> true | _ -> false)
       (Sched.events sim));
  (* the same job may still move to a hard-double machine *)
  Sched.request_migration sim p arm;
  let _ = Sched.run sim in
  check_string "answer survives" "100\n" (Sched.output p);
  check_int "legal migration went through" 1 p.Sched.p_migrations;
  check_bool "ends on arm" true (p.Sched.p_node == arm);
  check_int "still exactly one rejection" 1 p.Sched.p_compat_rejected

let test_network_accounting () =
  let sim, slow, fast = mk_env () in
  let p = Sched.spawn sim slow "acct" (nqueens 7) in
  Sched.request_migration sim p fast;
  let _ = Sched.run sim in
  check_int "one message on the wire" 1 sim.Sched.channel.Hpm_net.Netsim.messages;
  check_bool "bytes accounted" true (sim.Sched.channel.Hpm_net.Netsim.bytes_sent > 100)

(* ---------------------------------------------------------------- *)
(* Continuous replication through the scheduler                      *)
(* ---------------------------------------------------------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hpm_sched_rep_%d_%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  if Sys.is_directory path then (
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path)
  else Sys.remove path

let with_rep_env f =
  let dir = fresh_dir () in
  let st = Hpm_store.Store.open_store dir in
  let src = Sched.node "src" Hpm_arch.Arch.dec5000 in
  let sb0 = Sched.node "sb0" Hpm_arch.Arch.sparc20 in
  let sb1 = Sched.node "sb1" Hpm_arch.Arch.x86_64 in
  let sim =
    Sched.create ~channel:(Hpm_net.Netsim.ethernet_10 ()) ~store:st
      [ src; sb0; sb1 ]
  in
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with _ -> ())
    (fun () -> f sim src (sb0, sb1))

let jacobi n = Util.prepare (Hpm_workloads.Jacobi.source n)

let test_replicate_promote_exactly_once () =
  with_rep_env (fun sim src (sb0, sb1) ->
      let expected, _, _ =
        Hpm_core.Migration.run_plain (jacobi 8) Hpm_arch.Arch.dec5000
      in
      let p = Sched.spawn sim src "j" (jacobi 8) in
      let r =
        Sched.replicate sim p ~standbys:[ sb0; sb1 ]
          ~faults:(Hpm_net.Netsim.rep_faults ~drop:[ ("sb0", 2) ] ())
      in
      (match Sched.stream_replica sim p r ~epochs:3 with
      | Hpm_store.Replica.Streamed 3 -> ()
      | _ -> Alcotest.fail "expected 3 streamed epochs");
      (* the dropped delta surfaced as a scheduler Resynced event *)
      check_int "resync counted on the process" 1 p.Sched.p_resyncs;
      check_bool "Resynced event logged" true
        (List.exists
           (function Sched.Resynced (_, "j", "sb0", _) -> true | _ -> false)
           (Sched.events sim));
      (* the source dies mid-stream; the scheduler fails over *)
      Hpm_store.Replica.set_faults r
        (Some
           (Hpm_net.Netsim.rep_faults
              ~crash_source_at:(Hpm_net.Netsim.Rp_stream, 4) ()));
      (match Sched.stream_replica sim p r ~epochs:1 with
      | Hpm_store.Replica.Source_crashed _ -> ()
      | _ -> Alcotest.fail "expected the injected source crash");
      let pm = Sched.promote_standby sim p r in
      (* the resync healed sb0 before the crash, so both standbys tie at
         epoch 3 and the first one wins *)
      check_string "a fully caught-up standby promoted" "sb0"
        pm.Hpm_store.Replica.pm_sub;
      ignore sb1;
      check_bool "process re-homed onto the standby's node" true
        (p.Sched.p_node == sb0);
      check_int "promotion counted" 1 p.Sched.p_promotions;
      check_bool "Promoted event logged" true
        (List.exists
           (function
             | Sched.Promoted (_, "j", "src", "sb0", 3) -> true
             | _ -> false)
           (Sched.events sim));
      (* the scheduler runs the promoted copy to completion: combined
         output is exactly one program *)
      let _ = Sched.run sim in
      check_string "exactly-once across promotion" expected (Sched.output p);
      check_int "handoff epochs stay monotonic" 4 p.Sched.p_epoch)

let test_replicate_source_finishes () =
  with_rep_env (fun sim src (sb0, _) ->
      let expected, _, _ =
        Hpm_core.Migration.run_plain (jacobi 4) Hpm_arch.Arch.dec5000
      in
      let p = Sched.spawn sim src "jf" (jacobi 4) in
      let r = Sched.replicate sim p ~standbys:[ sb0 ] in
      let rec drain () =
        match Sched.stream_replica sim p r ~epochs:1 with
        | Hpm_store.Replica.Streamed _ -> drain ()
        | s -> s
      in
      (match drain () with
      | Hpm_store.Replica.Source_finished -> ()
      | _ -> Alcotest.fail "source should finish");
      check_bool "process finished" true
        (match p.Sched.p_state with Sched.Finished _ -> true | _ -> false);
      check_string "output exactly once" expected (Sched.output p))

let test_replicate_requires_store () =
  let sim, slow, fast = mk_env () in
  let p = Sched.spawn sim slow "q" (nqueens 5) in
  expect_raise "no store refused"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Sched.replicate sim p ~standbys:[ fast ]))

let suite =
  [
    tc "run to completion" test_run_to_completion;
    tc "explicit migration" test_explicit_migration;
    tc "self-migration ignored" test_migration_to_same_node_ignored;
    tc_slow "load balancing beats no policy" test_load_balance_beats_none;
    tc "seek-fastest policy" test_seek_fastest;
    tc "five-arch cluster tour" test_heterogeneous_cluster;
    tc "CPU timesharing" test_cpu_sharing;
    tc "failed migration re-queues on source" test_failed_migration_requeues_on_source;
    tc "lossy migration still succeeds" test_lossy_migration_still_succeeds;
    tc "compat gate blocks illegal destination" test_compat_gate_blocks_illegal_destination;
    tc "network accounting" test_network_accounting;
    tc "replication: stream, crash, promote, exactly-once"
      test_replicate_promote_exactly_once;
    tc "replication: source completion finishes the process"
      test_replicate_source_finishes;
    tc "replication requires a store" test_replicate_requires_store;
  ]
