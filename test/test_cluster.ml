(** The cluster-scale discrete-event engine and its spine: Eheap
    (time, seq) total order, Policy determinism (tie-breaks, gang,
    hysteresis, locality), Sched's scheduled actions and permuted-node
    regression, the segmented HPMJ journal (rotation, amortized-O(1)
    appends, torn tails, compaction), and the churn scenario's
    guarantees — same-seed byte identity, exactly-once under crashes,
    anti-flap, gang atomicity, and ≥100 concurrent in-flight
    migrations at the 1000-node scale. *)

open Hpm_sched
open Util
module Journal = Hpm_store.Journal
module Obs = Hpm_obs.Obs

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hpm_cluster_%d_%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  if Sys.is_directory path then (
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path)
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

let read_file p = In_channel.with_open_bin p In_channel.input_all

(* The full byte stream of a journal: closed segments then the active
   file — exactly what the single-file era wrote. *)
let journal_bytes path =
  String.concat ""
    (List.map read_file (Journal.segment_paths path @ [ path ]))

(* ---------------------------------------------------------------- *)
(* Eheap                                                             *)
(* ---------------------------------------------------------------- *)

let test_eheap_order () =
  let h = Eheap.create () in
  ignore (Eheap.add h ~time:3.0 "c" : int);
  ignore (Eheap.add h ~time:1.0 "a1" : int);
  ignore (Eheap.add h ~time:2.0 "b" : int);
  ignore (Eheap.add h ~time:1.0 "a2" : int);
  ignore (Eheap.add h ~time:1.0 "a3" : int);
  ignore (Eheap.add h ~time:0.5 "first" : int);
  let popped = ref [] in
  let rec drain () =
    match Eheap.pop h with
    | Some (_, _, v) ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string))
    "pop order is (time, seq)"
    [ "first"; "a1"; "a2"; "a3"; "b"; "c" ]
    (List.rev !popped);
  check_bool "empty after drain" true (Eheap.is_empty h)

let test_eheap_random () =
  let rng = Hpm_machine.Rng.create 7 in
  let h = Eheap.create () in
  let items =
    List.init 500 (fun i ->
        let time =
          float_of_int (Hpm_machine.Rng.next_int rng mod 50) /. 10.0
        in
        let seq = Eheap.add h ~time i in
        (time, seq))
  in
  let expected = List.sort compare items in
  let got = ref [] in
  let rec drain () =
    match Eheap.pop h with
    | Some (time, seq, _) ->
        got := (time, seq) :: !got;
        drain ()
    | None -> ()
  in
  drain ();
  check_bool "500 random inserts pop in (time, seq) order" true
    (expected = List.rev !got)

(* ---------------------------------------------------------------- *)
(* Policy determinism                                                *)
(* ---------------------------------------------------------------- *)

let ni ?(speed = 1.0) ?(site = "") ?(alive = true) name load =
  { Policy.ni_name = name; ni_speed = speed; ni_load = load; ni_site = site;
    ni_alive = alive }

let pi ?(group = "") ?(runnable = true) ?(migrating = false)
    ?(last = neg_infinity) name node =
  { Policy.pi_name = name; pi_node = node; pi_group = group;
    pi_runnable = runnable; pi_migrating = migrating; pi_last_move_s = last }

let decisions_to_pairs ds =
  List.map (fun d -> (d.Policy.d_proc, d.Policy.d_dst)) ds

let test_policy_permutation () =
  (* equal-load ties must resolve to the same node regardless of the
     order nodes were listed (the satellite-2 regression) *)
  let procs = [ pi "p1" "c"; pi "p2" "c" ] in
  let nodes = [ ni "a" 0; ni "b" 0; ni "c" 2 ] in
  let perms =
    [ nodes; List.rev nodes; [ ni "b" 0; ni "c" 2; ni "a" 0 ] ]
  in
  let results =
    List.map
      (fun ns ->
        decisions_to_pairs
          (Policy.decide (Policy.least_loaded ()) ~now:0.0 ns procs))
      perms
  in
  List.iter
    (fun r -> check_bool "same decision under permutation" true
        (r = [ ("p1", "a") ]))
    results;
  (* seek-fastest: equal top speeds resolve by name *)
  let fast_nodes =
    [ ni ~speed:2.0 "zeta" 0; ni ~speed:2.0 "alpha" 0; ni ~speed:1.0 "mid" 1 ]
  in
  let p = [ pi "w" "mid" ] in
  let r1 =
    decisions_to_pairs
      (Policy.decide (Policy.seek_fastest ()) ~now:0.0 fast_nodes p)
  in
  let r2 =
    decisions_to_pairs
      (Policy.decide (Policy.seek_fastest ()) ~now:0.0 (List.rev fast_nodes) p)
  in
  check_bool "fastest tie resolves to alpha either way" true
    (r1 = [ ("w", "alpha") ] && r2 = r1)

let test_policy_hysteresis () =
  let nodes = [ ni "a" 0; ni "b" 3 ] in
  let hot = Policy.with_hysteresis ~cooldown_s:1.0 (Policy.least_loaded ()) in
  (* moved 0.5 s ago: masked *)
  let masked =
    Policy.decide hot ~now:10.0 nodes [ pi ~last:9.5 "p" "b" ]
  in
  check_int "recent mover is invisible" 0 (List.length masked);
  (* moved 2 s ago: eligible again *)
  let ok = Policy.decide hot ~now:10.0 nodes [ pi ~last:8.0 "p" "b" ] in
  check_bool "cooled-down mover is eligible" true
    (decisions_to_pairs ok = [ ("p", "a") ])

let test_policy_gang () =
  let nodes = [ ni "n1" 3; ni "n2" 0 ] in
  let g = Policy.gang (Policy.least_loaded ()) in
  let all_movable =
    [ pi ~group:"g" "a" "n1"; pi ~group:"g" "b" "n1"; pi ~group:"g" "c" "n1" ]
  in
  check_bool "whole gang moves together" true
    (decisions_to_pairs (Policy.decide g ~now:0.0 nodes all_movable)
    = [ ("a", "n2"); ("b", "n2"); ("c", "n2") ]);
  let one_stuck =
    [ pi ~group:"g" "a" "n1"; pi ~group:"g" ~migrating:true "b" "n1";
      pi ~group:"g" "c" "n1" ]
  in
  check_int "gang with a stuck member stays put" 0
    (List.length (Policy.decide g ~now:0.0 nodes one_stuck))

let test_policy_locality () =
  let nodes =
    [ ni ~site:"A" "x" 3; ni ~site:"A" "y" 0; ni ~site:"B" "z" 0 ]
  in
  let procs = [ pi "p1" "x"; pi "p2" "x"; pi "p3" "x" ] in
  let ds = Policy.decide (Policy.locality ()) ~now:0.0 nodes procs in
  check_bool "balance stays inside the site" true
    (decisions_to_pairs ds = [ ("p1", "y") ])

(* ---------------------------------------------------------------- *)
(* Sched: permuted registration + scheduled actions                  *)
(* ---------------------------------------------------------------- *)

let counting = Util.prepare (Hpm_workloads.Nqueens.source 6)

let run_permuted order =
  let mk n = Sched.node n Hpm_arch.Arch.x86_64 in
  let a = mk "a" and b = mk "b" and c = mk "c" in
  let nodes =
    List.map (function "a" -> a | "b" -> b | _ -> c) order
  in
  let sim = Sched.create ~channel:(Hpm_net.Netsim.ethernet_10 ()) nodes in
  let p1 = Sched.spawn sim c "p1" counting in
  let _p2 = Sched.spawn sim c "p2" counting in
  let _ = Sched.run sim ~policy:Sched.load_balance in
  p1.Sched.p_node.Sched.n_name

let test_sched_permuted_nodes () =
  (* two equally idle candidates: the (load, name) tie-break must pick
     "a" no matter how the node list was built *)
  List.iter
    (fun order ->
      check_string
        (Printf.sprintf "registration %s" (String.concat "" order))
        "a" (run_permuted order))
    [ [ "a"; "b"; "c" ]; [ "c"; "b"; "a" ]; [ "b"; "a"; "c" ] ]

let test_sched_at () =
  let fast = Sched.node "fast" Hpm_arch.Arch.x86_64 in
  let slow = Sched.node "slow" Hpm_arch.Arch.dec5000 in
  let sim = Sched.create ~channel:(Hpm_net.Netsim.ethernet_10 ()) [ slow; fast ] in
  let p = Sched.spawn sim slow "q7" (Util.prepare (Hpm_workloads.Nqueens.source 7)) in
  let fired = ref [] in
  Sched.at sim ~time:0.05 (fun _ -> fired := "first" :: !fired);
  Sched.at sim ~time:0.05 (fun _ -> fired := "second" :: !fired);
  Sched.at sim ~time:0.02 (fun s -> Sched.request_migration s p fast);
  let _ = Sched.run sim in
  Alcotest.(check (list string))
    "same-instant actions fire in scheduling order" [ "first"; "second" ]
    (List.rev !fired);
  check_int "scripted migration happened" 1 p.Sched.p_migrations;
  check_bool "landed on fast" true (p.Sched.p_node.Sched.n_name = "fast");
  check_string "output survives the scripted move" "40\n" (Sched.output p)

(* ---------------------------------------------------------------- *)
(* Journal segmentation                                              *)
(* ---------------------------------------------------------------- *)

let mk_entry i =
  Journal.entry ~ts:(float_of_int i *. 0.25)
    ~ev:(if i mod 3 = 0 then Journal.Migrated else Journal.Checkpointed)
    ~proc:(Printf.sprintf "p%04d" (i mod 97))
    ~src:"n1" ~dst:"n2" ~epoch:i ~stream_bytes:(i * 13) ()

let test_journal_rotation () =
  with_dir (fun dir ->
      let path = Filename.concat dir "fleet.hpmj" in
      let j = Journal.open_journal ~segment_bytes:2048 path in
      let entries = List.init 200 mk_entry in
      List.iter (Journal.append j) entries;
      check_bool "rotation happened" true (Journal.rotations j > 0);
      check_bool "closed segments exist" true (Journal.segments j <> []);
      (* the concatenated byte stream is exactly the single-file era's *)
      let expected =
        String.concat ""
          (List.map (fun e -> Journal.encode_entry e ^ "\n") entries)
      in
      check_string "segments + active ≡ monolithic bytes" expected
        (journal_bytes path);
      (* HPMJ v1 load semantics unchanged *)
      check_bool "load sees every entry in order" true
        (Journal.load path = entries);
      check_bool "handle agrees" true (Journal.entries j = entries);
      (* a reopened journal continues the sequence, not restarts it *)
      Journal.close j;
      let j2 = Journal.open_journal ~segment_bytes:2048 path in
      check_int "reopen sees all" 200 (Journal.length j2);
      let extra = mk_entry 200 in
      Journal.append j2 extra;
      check_bool "append after reopen" true
        (Journal.load path = entries @ [ extra ]))

let test_journal_amortized_o1 () =
  with_dir (fun dir ->
      let path = Filename.concat dir "fleet.hpmj" in
      let j = Journal.open_journal ~segment_bytes:(64 * 1024) path in
      let n = 10_000 in
      let encoded = ref 0 in
      for i = 0 to n - 1 do
        let e = mk_entry i in
        encoded := !encoded + String.length (Journal.encode_entry e) + 1;
        Journal.append j e
      done;
      (* append-only: bytes pushed to disk = bytes encoded, not the
         Σ-of-prefixes (~n²/2 entry-writes) the rewrite-per-append
         implementation paid *)
      check_int "bytes written = bytes encoded over 10k appends" !encoded
        (Journal.bytes_written j);
      check_int "all entries live" n (Journal.length j);
      check_bool "rotated well past one segment" true
        (Journal.rotations j > 10))

let test_journal_torn_segment () =
  with_dir (fun dir ->
      let path = Filename.concat dir "fleet.hpmj" in
      let j = Journal.open_journal ~segment_bytes:1024 path in
      List.iter (Journal.append j) (List.init 60 mk_entry);
      Journal.close j;
      (match Journal.segments j with
      | seg :: _ ->
          (* tear the first closed segment's tail *)
          let body = read_file seg in
          let oc = open_out_bin seg in
          output_string oc (String.sub body 0 (String.length body - 7));
          close_out oc
      | [] -> Alcotest.fail "expected a closed segment");
      expect_raise "torn segment tail"
        (function Journal.Corrupt _ -> true | _ -> false)
        (fun () -> ignore (Journal.load path)))

let test_journal_compact () =
  with_dir (fun dir ->
      let path = Filename.concat dir "fleet.hpmj" in
      let j = Journal.open_journal ~segment_bytes:1024 path in
      let entries = List.init 80 mk_entry in
      List.iter (Journal.append j) entries;
      check_bool "pre: segments on disk" true (Journal.segments j <> []);
      Journal.compact j;
      check_bool "post: no segments" true (Journal.segments j = []);
      check_bool "post: load unchanged" true (Journal.load path = entries);
      let extra = mk_entry 999 in
      Journal.append j extra;
      check_bool "append after compaction" true
        (Journal.load path = entries @ [ extra ]))

(* ---------------------------------------------------------------- *)
(* Cluster: the churn scenario's guarantees                          *)
(* ---------------------------------------------------------------- *)

module C = Cluster

(* A fast mid-size churn: 100 nodes / 800 procs, crashes and gangs on. *)
let test_cfg =
  {
    C.default_churn with
    C.c_nodes = 100;
    c_procs = 800;
    c_crash_nodes = 4;
    c_max_moves = 40;
    c_gang_groups = 6;
    c_gang_size = 4;
  }

let with_obs f =
  let tr = Obs.Trace.create () in
  let reg = Obs.Metrics.create () in
  Obs.reset ();
  Obs.set_trace (Some tr);
  Obs.set_metrics (Some reg);
  Fun.protect ~finally:Obs.reset (fun () -> f tr reg)

(* One full observed churn run into [dir]: returns (stats, event-log
   lines, journal bytes, trace json, metrics text). *)
let observed_run dir cfg =
  let path = Filename.concat dir "fleet.hpmj" in
  let j = Journal.open_journal path in
  let t, trace, metrics =
    with_obs (fun tr reg ->
        let t = C.run (C.create ~journal:j cfg) in
        (t, Obs.Trace.to_json tr, Obs.Metrics.render reg))
  in
  Journal.close j;
  (C.stats t, C.events t, journal_bytes path, trace, metrics)

let test_churn_determinism () =
  let run () = with_dir (fun dir -> observed_run dir test_cfg) in
  let s1, ev1, j1, tr1, m1 = run () in
  let s2, ev2, j2, tr2, m2 = run () in
  check_bool "stats identical" true (s1 = s2);
  check_int "same event-log length" (List.length ev1) (List.length ev2);
  check_bool "event logs byte-identical" true (ev1 = ev2);
  check_bool "journals byte-identical" true (j1 = j2);
  check_bool "chrome traces byte-identical" true (tr1 = tr2);
  check_bool "metrics byte-identical" true (m1 = m2);
  (* and the journal really exercised segmentation at this size *)
  check_bool "journal wrote real volume" true
    (String.length j1 > 100_000)

let finished_before journal proc ts =
  List.exists
    (fun e ->
      e.Journal.j_ev = Journal.Finished && e.Journal.j_proc = proc
      && e.Journal.j_ts < ts)
    journal

let test_churn_exactly_once () =
  with_dir (fun dir ->
      let path = Filename.concat dir "fleet.hpmj" in
      let j = Journal.open_journal path in
      let t = C.run (C.create ~journal:j test_cfg) in
      let s = C.stats t in
      check_int "every process finished" test_cfg.C.c_procs s.C.cs_finished;
      check_bool "crashes actually injected" true (s.C.cs_crashes >= 3);
      check_bool "recoveries happened" true (s.C.cs_recovered > 0);
      let entries = Journal.load path in
      let finishes = Hashtbl.create 1024 in
      List.iter
        (fun e ->
          if e.Journal.j_ev = Journal.Finished then
            Hashtbl.replace finishes e.Journal.j_proc
              (1
              + Option.value ~default:0
                  (Hashtbl.find_opt finishes e.Journal.j_proc)))
        entries;
      check_int "distinct finishers" test_cfg.C.c_procs
        (Hashtbl.length finishes);
      Hashtbl.iter
        (fun proc n ->
          if n <> 1 then
            Alcotest.failf "%s finished %d times (exactly-once broken)" proc n)
        finishes)

let test_churn_antiflap () =
  with_dir (fun dir ->
      let path = Filename.concat dir "fleet.hpmj" in
      let j = Journal.open_journal path in
      let t = C.run (C.create ~journal:j test_cfg) in
      ignore (C.stats t);
      let entries = Journal.load path in
      (* per proc: no Requested within the cooldown of its previous
         policy move (Requested or committed Migrated) *)
      let last_move = Hashtbl.create 1024 in
      let cooldown = test_cfg.C.c_cooldown_s -. 1e-9 in
      List.iter
        (fun e ->
          let proc = e.Journal.j_proc in
          match e.Journal.j_ev with
          | Journal.Requested ->
              (match Hashtbl.find_opt last_move proc with
              | Some prev when e.Journal.j_ts -. prev < cooldown ->
                  Alcotest.failf
                    "%s re-selected %.3fs after its last move (cooldown %.3f)"
                    proc (e.Journal.j_ts -. prev) test_cfg.C.c_cooldown_s
              | _ -> ());
              Hashtbl.replace last_move proc e.Journal.j_ts
          | Journal.Migrated -> Hashtbl.replace last_move proc e.Journal.j_ts
          | _ -> ())
        entries)

let test_churn_gang_atomicity () =
  with_dir (fun dir ->
      let path = Filename.concat dir "fleet.hpmj" in
      let j = Journal.open_journal path in
      let t = C.run (C.create ~journal:j test_cfg) in
      let entries = Journal.load path in
      let gangs = C.groups t in
      check_int "gangs configured" test_cfg.C.c_gang_groups (List.length gangs);
      let some_gang_moved = ref false in
      List.iter
        (fun (g, members) ->
          (* all Migrated commits of this gang's members, batched by ts *)
          let moves =
            List.filter
              (fun e ->
                e.Journal.j_ev = Journal.Migrated
                && List.mem e.Journal.j_proc members)
              entries
          in
          let by_ts = Hashtbl.create 8 in
          List.iter
            (fun e ->
              Hashtbl.replace by_ts e.Journal.j_ts
                (e
                :: Option.value ~default:[]
                     (Hashtbl.find_opt by_ts e.Journal.j_ts)))
            moves;
          Hashtbl.iter
            (fun ts batch ->
              some_gang_moved := true;
              (match List.sort_uniq compare (List.map (fun e -> e.Journal.j_dst) batch) with
              | [ _ ] -> ()
              | dsts ->
                  Alcotest.failf "gang %s split across %d destinations" g
                    (List.length dsts));
              (* the batch is the whole still-running gang: members
                 missing from it must have finished earlier *)
              let expected =
                List.filter
                  (fun m -> not (finished_before entries m ts))
                  members
              in
              if List.length batch <> List.length expected then
                Alcotest.failf
                  "gang %s commit at %.6f moved %d members, expected %d" g ts
                  (List.length batch) (List.length expected))
            by_ts)
        gangs;
      check_bool "at least one gang migration happened" true !some_gang_moved)

let test_churn_1k_scale () =
  (* the acceptance pin: the standing 1000-node / 10k-process scenario
     drains its imbalance with ≥100 overlapping migrations and every
     process finishing *)
  let t = C.run (C.create C.default_churn) in
  let s = C.stats t in
  check_int "10k processes all finish" C.default_churn.C.c_procs
    s.C.cs_finished;
  check_bool
    (Printf.sprintf "peak in-flight %d >= 100" s.C.cs_peak_inflight)
    true
    (s.C.cs_peak_inflight >= 100);
  check_bool "thousands of migrations committed" true
    (s.C.cs_migrations > 1000);
  check_bool "crash recovery exercised" true (s.C.cs_recovered > 0)

let suite =
  [
    tc "eheap: (time, seq) pop order with ties" test_eheap_order;
    tc "eheap: 500 random inserts drain sorted" test_eheap_random;
    tc "policy: tie-breaks survive node permutation" test_policy_permutation;
    tc "policy: anti-flap hysteresis masks recent movers"
      test_policy_hysteresis;
    tc "policy: gang moves whole groups or nothing" test_policy_gang;
    tc "policy: locality balances within sites" test_policy_locality;
    tc "sched: permuted registration, same placement"
      test_sched_permuted_nodes;
    tc "sched: at-scheduled actions fire in (time, seq) order" test_sched_at;
    tc "journal: rotation preserves bytes and load order"
      test_journal_rotation;
    tc_slow "journal: 10k appends are append-only (amortized O(1))"
      test_journal_amortized_o1;
    tc "journal: torn segment tail raises Corrupt" test_journal_torn_segment;
    tc "journal: compaction merges segments" test_journal_compact;
    tc_slow "cluster: same-seed churn is byte-identical"
      test_churn_determinism;
    tc_slow "cluster: exactly-once output under node crashes"
      test_churn_exactly_once;
    tc_slow "cluster: anti-flap hysteresis holds in the journal"
      test_churn_antiflap;
    tc_slow "cluster: gang migrations land together or not at all"
      test_churn_gang_atomicity;
    tc_slow "cluster: 1000-node churn sustains >=100 in-flight"
      test_churn_1k_scale;
  ]
