(** Migration-unsafe feature detection tests. *)

open Hpm_ir
open Util

let diags src = Unsafe.check (check_src src)
let nerrors src = List.length (Unsafe.errors (diags src))
let nwarnings src = List.length (Unsafe.warnings (diags src))

let test_int_to_ptr () =
  check_int "int to ptr" 1
    (nerrors "int main() { int *p; p = (int *) 4096; return 0; }");
  check_int "null cast ok" 0 (nerrors "int main() { int *p; p = (int *) 0; return 0; }")

let test_ptr_to_int () =
  check_int "ptr to long" 1
    (nerrors "int main() { int x; long a; a = (long) &x; return 0; }")

let test_untyped_malloc () =
  check_int "uncast malloc" 1
    (nerrors "int main() { int *p; long a; a = 0L; malloc(8L); return 0; }");
  check_int "typed malloc ok" 0
    (nerrors "int main() { int *p; p = (int *) malloc(4 * sizeof(int)); return 0; }");
  check_int "char malloc ok" 0
    (nerrors "int main() { char *p; p = (char *) malloc(32L); return 0; }")

let test_unrelated_ptr_cast () =
  check_int "double* as int*" 1
    (nwarnings "int main() { double d; int *p; p = (int *) &d; return 0; }");
  check_int "via void* ok" 0
    (nwarnings
       "int main() { double d; int *p; char *c; c = (char *) &d; return 0; }")

let test_long_narrowing () =
  check_int "long to int warning" 1
    (nwarnings "int main() { long l; int i; l = 5L; i = (int) l; return 0; }");
  (* narrowing to any shorter integer type warns, not just (int) *)
  check_int "long to short warning" 1
    (nwarnings "int main() { long l; short s; l = 5L; s = (short) l; return 0; }");
  check_int "long to char warning" 1
    (nwarnings "int main() { long l; char c; l = 5L; c = (char) l; return 0; }");
  (* implicit coercions (assignment, initializer, return) warn too *)
  check_int "implicit long-to-int assignment" 1
    (nwarnings "int main() { long l; int i; l = 5L; i = l; return 0; }");
  check_int "implicit narrowing in initializer" 1
    (nwarnings "int main() { long l; l = 70000L; { int i = l; return i; } }");
  check_int "implicit narrowing at return" 1
    (nwarnings "int f(long l) { return l; } int main() { return f(5L); }");
  (* widening and same-width moves stay quiet *)
  check_int "int to long is fine" 0
    (nwarnings "int main() { int i; long l; i = 3; l = i; return 0; }");
  check_int "int to int is fine" 0
    (nwarnings "int main() { int a; int b; a = 1; b = a; return 0; }")

let test_diag_codes () =
  (match diags "int main() { int *p; p = (int *) 4096; return 0; }" with
  | [ d ] -> check_string "int-to-ptr code" "HPM-E002" d.Diag.code
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
  (match diags "int main() { long l; int i; l = 5L; i = l; return 0; }" with
  | [ d ] -> check_string "narrowing code" "HPM-W005" d.Diag.code
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
  match diags "int main() { int x; long a; a = (long) &x; return 0; }" with
  | [ d ] -> check_string "ptr-to-int code" "HPM-E003" d.Diag.code
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_clean_program () =
  List.iter
    (fun (w : Hpm_workloads.Registry.t) ->
      check_int
        (w.Hpm_workloads.Registry.name ^ " has no unsafe errors")
        0
        (nerrors (w.Hpm_workloads.Registry.source w.Hpm_workloads.Registry.default_n)))
    Hpm_workloads.Registry.all

let test_check_exn () =
  expect_raise "rejects" (function Unsafe.Rejected _ -> true | _ -> false) (fun () ->
      Unsafe.check_exn (check_src "int main() { int *p; p = (int *) 4096; return 0; }"));
  (* prepare refuses unsafe programs end to end *)
  expect_raise "prepare rejects" (function Unsafe.Rejected _ -> true | _ -> false)
    (fun () -> prepare "int main() { long a; int x; a = (long) &x; return 0; }")

let test_locations_reported () =
  match diags "int main() { int *p;\n  p = (int *) 4096;\n  return 0; }" with
  | [ d ] -> check_int "line number" 2 d.Unsafe.loc.Hpm_lang.Ast.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let suite =
  [
    tc "integer-to-pointer casts" test_int_to_ptr;
    tc "pointer-to-integer casts" test_ptr_to_int;
    tc "untyped malloc" test_untyped_malloc;
    tc "unrelated pointer casts warn" test_unrelated_ptr_cast;
    tc "long narrowing warns" test_long_narrowing;
    tc "stable diagnostic codes" test_diag_codes;
    tc "all workloads are migration-safe" test_clean_program;
    tc "check_exn and prepare reject" test_check_exn;
    tc "diagnostics carry locations" test_locations_reported;
  ]
