(** Portability-analysis tests: a seeded corpus of Mini-C programs with
    known compatibility verdicts on chosen architecture pairs, one axis
    per program, plus a QCheck soundness property — a [Legal] verdict
    must never be contradicted by an actual migration (no translation
    fault, no value change on an execution-equivalent pair).

    The corpus is the analysis analogue of the lint defect corpus in
    [Test_lint]: each program isolates one hazard axis (long narrowing,
    plain-char signedness, f32 double demotion, byte-reinterpreted
    layout) in both its provably-safe and hazardous form, so a precision
    regression in the interval analysis or the exposure rule flips an
    exact expected verdict. *)

open Hpm_core
open Util
module Portability = Hpm_ir.Portability
module Diag = Hpm_ir.Diag

let x64 = Hpm_arch.Arch.x86_64
let dec = Hpm_arch.Arch.dec5000
let sparc = Hpm_arch.Arch.sparc20
let i386 = Hpm_arch.Arch.i386
let arm = Hpm_arch.Arch.aarch64_le_lp64
let rv = Hpm_arch.Arch.riscv64_le_lp64
let wasm = Hpm_arch.Arch.wasm32_le_ilp32

(* --- corpus ---------------------------------------------------------- *)

(* a loop counter the interval analysis bounds to [0,1000]: narrowing to
   a 32-bit long is provably lossless *)
let p_narrow_safe =
  {|int main() {
  long i;
  for (i = 0; i < 1000; i = i + 1) {
    print_int(0);
  }
  print_long(i);
  return 0;
}
|}

(* repeated doubling escapes every threshold: the value *may* exceed
   2^31-1, so narrowing is a value-dependent hazard, not a hard error *)
let p_narrow_hazard =
  {|int main() {
  long l;
  int i;
  l = 1;
  for (i = 0; i < 40; i = i + 1) {
    l = l * 2;
  }
  print_long(l);
  return 0;
}
|}

(* a constant entirely outside the 32-bit range: narrowing provably
   destroys it *)
let p_narrow_illegal =
  {|int main() {
  long l;
  l = 3000000000L;
  #pragma poll big
  print_long(l);
  return 0;
}
|}

(* 0.1 has no finite binary expansion, so it is not f32-exact: demoting
   to an f32-container machine changes the value *)
let p_f32_wide =
  {|int main() {
  double d;
  d = 0.1;
  #pragma poll fp
  print_double(d);
  return 0;
}
|}

(* 0.5 is f32-exact: the demotion is provably lossless *)
let p_f32_exact =
  {|int main() {
  double d;
  d = 0.5;
  #pragma poll fp
  print_double(d);
  return 0;
}
|}

(* a plain char holding a negative value reads back differently where
   char is unsigned *)
let p_char_hazard =
  {|int main() {
  char c;
  c = 0 - 5;
  #pragma poll ch
  print_int(c);
  return 0;
}
|}

(* interval-proven within [0,127]: signedness cannot matter *)
let p_char_safe =
  {|int main() {
  char c;
  c = 65;
  #pragma poll ch
  print_int(c);
  return 0;
}
|}

(* a struct byte-reinterpreted through a pointer cast: its layout (and
   byte order) must agree between the machines *)
let p_layout_illegal =
  {|struct s { char c; double d; int i; };
int main() {
  struct s v;
  struct s *p;
  int *q;
  v.c = 1;
  v.d = 0.5;
  v.i = 7;
  p = &v;
  q = (int *) p;
  #pragma poll ly
  print_int(v.i);
  return 0;
}
|}

(* small ints only: legal on every ordered pair of every architecture *)
let p_clean =
  {|int main() {
  int i;
  int acc;
  acc = 0;
  for (i = 0; i < 50; i = i + 1) {
    acc = acc + i;
  }
  print_int(acc);
  return 0;
}
|}

let corpus =
  [
    ("narrow_safe", p_narrow_safe);
    ("narrow_hazard", p_narrow_hazard);
    ("narrow_illegal", p_narrow_illegal);
    ("f32_wide", p_f32_wide);
    ("f32_exact", p_f32_exact);
    ("char_hazard", p_char_hazard);
    ("char_safe", p_char_safe);
    ("layout_illegal", p_layout_illegal);
    ("clean", p_clean);
  ]

(* prepared once: (name, migratable, analysis) *)
let prepared =
  lazy
    (List.map
       (fun (name, src) ->
         let m = prepare src in
         (name, m, Portability.create m.Migration.prog m.Migration.polls))
       corpus)

let find name =
  let _, m, a = List.find (fun (n, _, _) -> n = name) (Lazy.force prepared) in
  (m, a)

let verdict name ~src ~dst =
  let _, a = find name in
  (Portability.analyze_pair a ~src ~dst).Portability.p_verdict

let codes name ~src ~dst =
  let _, a = find name in
  let rep = Portability.analyze_pair a ~src ~dst in
  List.concat_map (fun r -> r.Portability.r_diags) rep.Portability.p_polls
  |> List.map (fun (d : Diag.t) -> d.Diag.code)
  |> List.sort_uniq compare

let check_verdict what expected got =
  check_string what
    (Portability.verdict_to_string expected)
    (Portability.verdict_to_string got)

(* --- exact expected verdicts per axis -------------------------------- *)

let test_narrowing () =
  check_verdict "bounded counter narrows safely" Portability.Legal
    (verdict "narrow_safe" ~src:x64 ~dst:dec);
  check_verdict "doubling long may overflow 32 bits" Portability.Lossy
    (verdict "narrow_hazard" ~src:x64 ~dst:dec);
  check_bool "hazard is W211" true
    (List.mem "HPM-W211" (codes "narrow_hazard" ~src:x64 ~dst:dec));
  check_verdict "3e9 cannot narrow" Portability.Illegal
    (verdict "narrow_illegal" ~src:x64 ~dst:dec);
  check_bool "impossibility is E201" true
    (List.mem "HPM-E201" (codes "narrow_illegal" ~src:x64 ~dst:dec));
  (* widening direction is always fine *)
  check_verdict "widening is legal" Portability.Legal
    (verdict "narrow_illegal" ~src:dec ~dst:x64);
  (* so is staying wide *)
  check_verdict "lp64 to lp64" Portability.Legal
    (verdict "narrow_illegal" ~src:x64 ~dst:rv)

let test_f32_demotion () =
  (* the Issue-7 acceptance pair: Illegal for wasm32 but Legal for
     aarch64, from the same program *)
  check_verdict "0.1 cannot demote to f32" Portability.Illegal
    (verdict "f32_wide" ~src:x64 ~dst:wasm);
  check_bool "demotion is E202" true
    (List.mem "HPM-E202" (codes "f32_wide" ~src:x64 ~dst:wasm));
  check_verdict "same program fine on aarch64" Portability.Legal
    (verdict "f32_wide" ~src:x64 ~dst:arm);
  check_verdict "f32-exact double demotes safely" Portability.Legal
    (verdict "f32_exact" ~src:x64 ~dst:wasm);
  (* promotion from the f32 machine loses nothing *)
  check_verdict "promotion is legal" Portability.Legal
    (verdict "f32_wide" ~src:wasm ~dst:dec)

let test_char_signedness () =
  check_verdict "negative char across signedness" Portability.Lossy
    (verdict "char_hazard" ~src:rv ~dst:arm);
  check_bool "hazard is W212" true
    (List.mem "HPM-W212" (codes "char_hazard" ~src:rv ~dst:arm));
  check_verdict "and in the other direction" Portability.Lossy
    (verdict "char_hazard" ~src:arm ~dst:rv);
  check_verdict "provably ascii char is safe" Portability.Legal
    (verdict "char_safe" ~src:rv ~dst:arm);
  (* signedness only matters when it differs *)
  check_verdict "same signedness" Portability.Legal
    (verdict "char_hazard" ~src:x64 ~dst:rv)

let test_layout_exposure () =
  (* i386 packs the double at offset 4, dec5000 at offset 8: a
     byte-reinterpreted struct cannot cross *)
  check_verdict "alignment-only layout change" Portability.Illegal
    (verdict "layout_illegal" ~src:i386 ~dst:dec);
  check_bool "exposure is E203" true
    (List.mem "HPM-E203" (codes "layout_illegal" ~src:i386 ~dst:dec));
  (* same layout but opposite byte order: still illegal once exposed *)
  check_verdict "endian flip of exposed struct" Portability.Illegal
    (verdict "layout_illegal" ~src:dec ~dst:sparc);
  (* without heterogeneity the cast is harmless *)
  check_verdict "self-pair legal" Portability.Legal
    (verdict "layout_illegal" ~src:i386 ~dst:i386)

let test_clean_everywhere () =
  let _, a = find "clean" in
  List.iter
    (fun (rep : Portability.pair_report) ->
      check_verdict
        (Printf.sprintf "clean %s->%s" rep.Portability.p_src.Hpm_arch.Arch.name
           rep.Portability.p_dst.Hpm_arch.Arch.name)
        Portability.Legal rep.Portability.p_verdict)
    (Portability.analyze_matrix a Hpm_arch.Arch.all);
  (* workload idioms must not trip the exposure rule: a void-pointer
     cast feeding [free] and a typed malloc are not byte
     reinterpretation *)
  let m = prepare (Hpm_workloads.Qsort.source 16) in
  let rep =
    Portability.analyze m.Migration.prog m.Migration.polls ~src:dec ~dst:sparc
  in
  check_verdict "qsort crosses endianness" Portability.Legal
    rep.Portability.p_verdict

(* --- soundness: Legal is never contradicted by a real migration ------- *)

let test_soundness_qcheck () =
  let arches = Array.of_list Hpm_arch.Arch.all in
  let progs = Array.of_list (Lazy.force prepared) in
  let gen =
    QCheck.(
      triple (int_bound (Array.length progs - 1))
        (int_bound (Array.length arches - 1))
        (int_bound (Array.length arches - 1)))
  in
  let prop (pi, si, di) =
    let name, m, a = progs.(pi) in
    let src = arches.(si) and dst = arches.(di) in
    match (Portability.analyze_pair a ~src ~dst).Portability.p_verdict with
    | Portability.Lossy | Portability.Illegal -> true
    | Portability.Legal -> (
        (* every poll point of these tiny programs is reachable early *)
        match
          Migration.run_migrating m ~src_arch:src ~dst_arch:dst ~after_polls:0 ()
        with
        | o ->
            (* the migrated run terminates normally... *)
            o.Migration.return_value <> None
            &&
            (* ...and when the pair also executes identically, the answer
               is byte-for-byte the source machine's *)
            let exec_equiv =
              src.Hpm_arch.Arch.long_size = dst.Hpm_arch.Arch.long_size
              && src.Hpm_arch.Arch.double_f32 = dst.Hpm_arch.Arch.double_f32
              && src.Hpm_arch.Arch.char_signed = dst.Hpm_arch.Arch.char_signed
            in
            if exec_equiv then (
              let out, _, _ = Migration.run_plain m src in
              if out <> o.Migration.output then
                QCheck.Test.fail_reportf "%s %s->%s: %S <> %S" name
                  src.Hpm_arch.Arch.name dst.Hpm_arch.Arch.name out
                  o.Migration.output
              else true)
            else true
        | exception e ->
            QCheck.Test.fail_reportf "%s %s->%s raised %s despite Legal" name
              src.Hpm_arch.Arch.name dst.Hpm_arch.Arch.name
              (Printexc.to_string e))
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:120 ~name:"legal verdicts are sound" gen prop)

(* --- the prepare-time gate ------------------------------------------- *)

let test_require_compat_gate () =
  (* Illegal pair: prepare refuses outright *)
  expect_raise "illegal pair rejected"
    (function Diag.Rejected _ -> true | _ -> false)
    (fun () -> Migration.prepare ~require_compat:(x64, wasm) p_f32_wide);
  (* Legal pair: prepare succeeds and the program still runs *)
  let m = Migration.prepare ~require_compat:(x64, arm) p_f32_wide in
  let out, _, _ = Migration.run_plain m x64 in
  check_string "gated program runs" "0.1\n" out;
  (* Lossy pair: warnings survive but do not reject *)
  let m2 = Migration.prepare ~require_compat:(x64, dec) p_narrow_hazard in
  check_bool "lossy pair allowed" true (m2.Migration.prog.Hpm_ir.Ir.funcs <> [])

let suite =
  [
    tc "long narrowing axis" test_narrowing;
    tc "f32 demotion axis" test_f32_demotion;
    tc "char signedness axis" test_char_signedness;
    tc "layout exposure axis" test_layout_exposure;
    tc "clean corpus legal everywhere" test_clean_everywhere;
    tc_slow "qcheck: Legal is sound" test_soundness_qcheck;
    tc "prepare-time compat gate" test_require_compat_gate;
  ]
