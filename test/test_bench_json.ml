(** The BENCH_v1 document: schema shape and determinism.

    The bench gate in CI diffs a freshly generated document against the
    committed baseline (the newest [BENCH_000N.json]), which only works if (a) the
    schema is stable and (b) two runs of the same build emit identical
    bytes.  Both are pinned here on a single fast case; the full suite's
    coverage (workload × arch-pair grid) is checked structurally. *)

open Hpm_bench
open Util

let fast_case =
  match Bench_json.default_cases with
  | c :: _ -> c
  | [] -> Alcotest.fail "default suite is empty"

let entry = lazy (Bench_json.run_case fast_case)

let test_required_keys () =
  let j = Bench_json.to_json [ Lazy.force entry ] in
  List.iter
    (fun key ->
      check_bool (Printf.sprintf "key %s present" key) true
        (contains_sub j (Printf.sprintf "\"%s\"" key)))
    [
      "schema"; "version"; "entries"; "workload"; "n"; "poll"; "src_arch"; "dst_arch";
      "collect"; "model_s"; "searches"; "blocks"; "data_bytes"; "stream_bytes";
      "pointers"; "restore"; "updates"; "handoff"; "sim_s"; "delta"; "full_bytes";
      "incr_bytes"; "cache_hits"; "chunks_shipped"; "compat"; "polls"; "entries";
      "checks"; "illegal_pairs"; "lossy_pairs"; "replication"; "final_delta_bytes";
      "catchup_lag1_bytes"; "catchup_lag3_bytes"; "ship_sim_s";
    ];
  check_bool "schema tag" true (contains_sub j "\"schema\": \"BENCH_v1\"");
  check_bool "version field" true (contains_sub j "\"version\": 1")

let test_values_sane () =
  let e = Lazy.force entry in
  let nonneg name v = check_bool (name ^ " >= 0") true (v >= 0) in
  nonneg "searches" e.Bench_json.c_searches;
  nonneg "blocks" e.Bench_json.c_blocks;
  nonneg "data_bytes" e.Bench_json.c_data_bytes;
  nonneg "pointers" e.Bench_json.c_pointers;
  nonneg "updates" e.Bench_json.r_updates;
  nonneg "cache_hits" e.Bench_json.d_cache_hits;
  nonneg "chunks_shipped" e.Bench_json.d_chunks_shipped;
  check_bool "collect model time positive" true (e.Bench_json.c_model_s > 0.0);
  check_bool "restore model time positive" true (e.Bench_json.r_model_s > 0.0);
  check_bool "handoff simulated time positive" true (e.Bench_json.h_sim_s > 0.0);
  check_bool "stream at least as large as data" true
    (e.Bench_json.c_stream_bytes >= e.Bench_json.c_data_bytes);
  check_bool "incremental delta no larger than full" true
    (e.Bench_json.d_incr_bytes <= e.Bench_json.d_full_bytes);
  check_bool "handoff ships the collected stream" true
    (e.Bench_json.h_stream_bytes = e.Bench_json.c_stream_bytes);
  (* compat: the matrix analysed something, and the verdict census stays
     within the 64 ordered pairs *)
  check_bool "compat model time positive" true (e.Bench_json.p_model_s > 0.0);
  check_bool "compat summarized polls" true (e.Bench_json.p_polls > 0);
  check_bool "compat checked entries" true
    (e.Bench_json.p_checks >= e.Bench_json.p_entries);
  check_bool "verdict census bounded" true
    (e.Bench_json.p_illegal >= 0
    && e.Bench_json.p_lossy >= 0
    && e.Bench_json.p_illegal + e.Bench_json.p_lossy <= 64);
  (* replication: the planned-migration claim and the lag model *)
  check_bool "final delta well below the full state" true
    (e.Bench_json.rep_final_bytes > 0
    && e.Bench_json.rep_final_bytes < e.Bench_json.rep_full_bytes);
  check_bool "lag model monotone" true
    (e.Bench_json.rep_lag1_bytes <= e.Bench_json.rep_lag3_bytes);
  check_bool "lag-1 catch-up is the final delta" true
    (e.Bench_json.rep_lag1_bytes = e.Bench_json.rep_final_bytes);
  check_bool "replication ship time positive" true
    (e.Bench_json.rep_ship_s > 0.0)

let test_deterministic () =
  let j1 = Bench_json.to_json [ Bench_json.run_case fast_case ] in
  let j2 = Bench_json.to_json [ Bench_json.run_case fast_case ] in
  check_string "same-seed runs byte-identical" j1 j2

let test_suite_coverage () =
  (* the default grid: every workload appears with every arch pair, so a
     regression in any cell of the workload × pair matrix is gated *)
  let cases = Bench_json.default_cases in
  let workloads = [ "jacobi"; "hashtab"; "bitonic" ] in
  let pairs =
    List.sort_uniq compare
      (List.map
         (fun (c : Bench_json.case) ->
           (c.Bench_json.src.Hpm_arch.Arch.name, c.Bench_json.dst.Hpm_arch.Arch.name))
         cases)
  in
  check_int "three distinct arch pairs" 3 (List.length pairs);
  List.iter
    (fun w ->
      List.iter
        (fun (s, d) ->
          check_bool
            (Printf.sprintf "%s on %s->%s present" w s d)
            true
            (List.exists
               (fun (c : Bench_json.case) ->
                 String.equal c.Bench_json.w_name w
                 && String.equal c.Bench_json.src.Hpm_arch.Arch.name s
                 && String.equal c.Bench_json.dst.Hpm_arch.Arch.name d)
               cases))
        pairs)
    workloads;
  (* both endianness and width axes are exercised *)
  check_bool "endianness axis" true
    (List.exists
       (fun (c : Bench_json.case) ->
         c.Bench_json.src.Hpm_arch.Arch.endian <> c.Bench_json.dst.Hpm_arch.Arch.endian)
       cases);
  check_bool "ILP32/LP64 axis" true
    (List.exists
       (fun (c : Bench_json.case) ->
         c.Bench_json.src.Hpm_arch.Arch.long_size
         <> c.Bench_json.dst.Hpm_arch.Arch.long_size)
       cases)

let test_json_parses () =
  (* minimal well-formedness: balanced braces/brackets, no trailing comma *)
  let j = Bench_json.to_json [ Lazy.force entry ] in
  let depth = ref 0 and min_depth = ref 0 and in_str = ref false in
  String.iteri
    (fun i ch ->
      if !in_str then (if ch = '"' && j.[i - 1] <> '\\' then in_str := false)
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            min_depth := min !min_depth !depth
        | _ -> ())
    j;
  check_int "braces balanced" 0 !depth;
  check_int "never negative depth" 0 !min_depth;
  check_bool "no trailing comma" false (contains_sub j ",\n  ]")

let suite =
  [
    tc_slow "required keys and version" test_required_keys;
    tc_slow "values sane and non-negative" test_values_sane;
    tc_slow "two same-seed runs emit identical JSON" test_deterministic;
    tc "default grid covers workloads × arch pairs" test_suite_coverage;
    tc_slow "document is well-formed" test_json_parses;
  ]
