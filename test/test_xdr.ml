(** XDR canonical-encoding tests. *)

open Hpm_xdr
open Util

let roundtrip write read v =
  let b = Buffer.create 16 in
  write b v;
  read (Xdr.reader_of_string (Buffer.contents b))

let test_integers () =
  Alcotest.(check int64) "i64" (-123456789012345L)
    (roundtrip Xdr.put_i64 Xdr.get_i64 (-123456789012345L));
  Alcotest.(check int32) "i32" (-70000l) (roundtrip Xdr.put_i32 Xdr.get_i32 (-70000l));
  check_int "u8" 200 (roundtrip Xdr.put_u8 Xdr.get_u8 200)

let test_floats () =
  Alcotest.(check (float 0.0)) "f64" 3.14159 (roundtrip Xdr.put_f64 Xdr.get_f64 3.14159);
  Alcotest.(check (float 0.0)) "f32" 0.5 (roundtrip Xdr.put_f32 Xdr.get_f32 0.5);
  check_bool "f64 nan" true (Float.is_nan (roundtrip Xdr.put_f64 Xdr.get_f64 Float.nan));
  check_bool "f64 inf" true (roundtrip Xdr.put_f64 Xdr.get_f64 Float.infinity = Float.infinity)

let test_strings () =
  check_string "string" "hello world" (roundtrip Xdr.put_string Xdr.get_string "hello world");
  check_string "empty" "" (roundtrip Xdr.put_string Xdr.get_string "");
  check_string "binary" "\000\001\255" (roundtrip Xdr.put_string Xdr.get_string "\000\001\255")

let test_big_endian_on_wire () =
  let b = Buffer.create 4 in
  Xdr.put_i32 b 0x01020304l;
  let s = Buffer.contents b in
  check_int "network byte order" 0x01 (Char.code s.[0]);
  check_int "lsb last" 0x04 (Char.code s.[3])

let underflow = function Xdr.Underflow _ -> true | _ -> false

let test_underflow () =
  expect_raise "empty i64" underflow (fun () -> Xdr.get_i64 (Xdr.reader_of_string ""));
  expect_raise "short i32" underflow (fun () -> Xdr.get_i32 (Xdr.reader_of_string "ab"));
  expect_raise "string length lies" underflow (fun () ->
      let b = Buffer.create 8 in
      Xdr.put_int_as_i32 b 100;
      Buffer.add_string b "short";
      Xdr.get_string (Xdr.reader_of_string (Buffer.contents b)))

(* Hostile length fields (regression): a 32-bit length is read
   sign-extended, so 0xFFFF_FFFF must surface as a negative length, not
   a ~4 GiB allocation; positive lengths must be checked against the
   remaining input before any allocation. *)
let test_hostile_lengths () =
  let neg = "\xFF\xFF\xFF\xFF" in
  check_int "0xFFFFFFFF sign-extends to -1" (-1)
    (Xdr.get_int_of_i32 (Xdr.reader_of_string neg));
  expect_raise "string length 0xFFFFFFFF"
    (function Xdr.Underflow m -> String.equal m "string: negative length" | _ -> false)
    (fun () -> Xdr.get_string (Xdr.reader_of_string neg));
  let big = "\x7F\xFF\xFF\xFF" ^ String.make 8 'x' in
  expect_raise "string length 0x7FFFFFFF past the input" underflow (fun () ->
      Xdr.get_string (Xdr.reader_of_string big));
  expect_raise "skip negative" underflow (fun () ->
      Xdr.skip (Xdr.reader_of_string "abcd") (-1));
  expect_raise "skip past end" underflow (fun () ->
      Xdr.skip (Xdr.reader_of_string "abcd") 5)

let test_sequencing () =
  let b = Buffer.create 32 in
  Xdr.put_u8 b 7;
  Xdr.put_string b "mid";
  Xdr.put_i64 b 42L;
  let r = Xdr.reader_of_string (Buffer.contents b) in
  check_int "first" 7 (Xdr.get_u8 r);
  check_string "second" "mid" (Xdr.get_string r);
  Alcotest.(check int64) "third" 42L (Xdr.get_i64 r);
  check_bool "at end" true (Xdr.at_end r)

let prop_int_widths =
  qt "put_int/get_int roundtrip at canonical widths"
    QCheck.(pair int64 (int_range 1 8))
    (fun (v, w) ->
      let b = Buffer.create 8 in
      Xdr.put_int b w v;
      let got = Xdr.get_int (Xdr.reader_of_string (Buffer.contents b)) w "t" in
      Int64.equal got (Hpm_arch.Endian.sign_extend w v))

let prop_string_any =
  qt "strings roundtrip" QCheck.string (fun s ->
      String.equal s (roundtrip Xdr.put_string Xdr.get_string s))

let prop_f64_bits =
  qt "f64 preserves bits" QCheck.int64 (fun bits ->
      let b = Buffer.create 8 in
      Xdr.put_f64 b (Int64.float_of_bits bits);
      Int64.equal bits
        (Int64.bits_of_float (Xdr.get_f64 (Xdr.reader_of_string (Buffer.contents b)))))

let suite =
  [
    tc "integers" test_integers;
    tc "floats incl. nan and inf" test_floats;
    tc "strings" test_strings;
    tc "wire format is big-endian" test_big_endian_on_wire;
    tc "underflow detection" test_underflow;
    tc "hostile length fields rejected" test_hostile_lengths;
    tc "sequenced reads" test_sequencing;
    prop_int_widths;
    prop_string_any;
    prop_f64_bits;
  ]
