(** Crash-consistent handoff protocol tests: exactly-once semantics under
    node crashes at every protocol phase, lost-ack resolution by epoch
    probe, checkpoint re-queuing, 2PC blocking, and the restore-side MSR
    integrity verifier ({!Hpm_core.Verify}). *)

open Hpm_lang
open Hpm_machine
open Hpm_core
open Hpm_net
open Util

let src_arch = Hpm_arch.Arch.dec5000
let dst_arch = Hpm_arch.Arch.sparc20

(* the three workloads of the crash matrix (all same-width archs, so
   expected output is host-independent) *)
let workloads =
  [
    ("nqueens", Hpm_workloads.Nqueens.source 6);
    ("listops", Hpm_workloads.Listops.source 30);
    ("bitonic", Hpm_workloads.Bitonic.source 64);
  ]

let expected_output src =
  let out, _, _ = Migration.run_plain (prepare src) src_arch in
  out

(* Run a handoff for [src] with the given faults; return (result, pre,
   m, p) where [pre] is the output the source produced before the poll. *)
let handoff ?faults ?config ?tamper src =
  let m = prepare src in
  let p, _ = suspend m src_arch 3 in
  let pre = Interp.output p in
  let channel = Netsim.ethernet_100 () in
  let res = Handoff.execute ?config ?faults ?tamper ~channel ~epoch:1 m p dst_arch in
  (res, pre, m, p)

let finish_output pre (interp : Interp.t) =
  match Interp.run interp with
  | Interp.RDone _ -> pre ^ Interp.output interp
  | _ -> Alcotest.fail "process did not run to completion"

(* ------------------------------------------------------------------ *)
(* Clean path                                                          *)
(* ------------------------------------------------------------------ *)

let test_clean_commit () =
  List.iter
    (fun (name, src) ->
      let res, pre, _, _ = handoff src in
      match res.Handoff.outcome with
      | Handoff.Committed c ->
          check_bool (name ^ " no recovery flags") false
            (c.Handoff.c_ack_recovered || c.Handoff.c_dest_restarted
           || c.Handoff.c_src_crashed);
          check_int (name ^ " epoch") 1 c.Handoff.c_epoch;
          check_bool (name ^ " verified blocks") true (c.Handoff.c_verify.Verify.v_blocks > 0);
          check_bool (name ^ " lands on dst") true
            (c.Handoff.c_dst.Interp.arch == dst_arch);
          check_string (name ^ " exactly-once output") (expected_output src)
            (finish_output pre c.Handoff.c_dst)
      | o -> Alcotest.failf "%s: expected Committed, got %s" name (Handoff.outcome_name o))
    workloads

(* ------------------------------------------------------------------ *)
(* Crash matrix: every crash point × every workload, exactly once      *)
(* ------------------------------------------------------------------ *)

(* resolve a handoff outcome to the single surviving copy *)
let survivor m pre (res : Handoff.result) =
  match res.Handoff.outcome with
  | Handoff.Committed c -> finish_output pre c.Handoff.c_dst
  | Handoff.Source_recovered r -> finish_output pre r.Handoff.r_interp
  | Handoff.Abort_requeue q ->
      let interp, _ =
        Handoff.resume_from_checkpoint m src_arch ~epoch:q.Handoff.q_epoch
          q.Handoff.q_ckpt
      in
      finish_output pre interp
  | Handoff.Stalled { s_ckpt; s_epoch; _ } ->
      let interp, _ = Handoff.resume_from_checkpoint m src_arch ~epoch:s_epoch s_ckpt in
      finish_output pre interp
  | Handoff.Link_failed _ -> Alcotest.fail "unexpected link failure on a clean channel"

let crash_cases =
  [
    (* who, phase, expected outcome head *)
    ("src-collect", `Src, Netsim.Ph_collect, "source-recovered");
    ("src-transfer", `Src, Netsim.Ph_transfer, "committed");
    ("src-commit", `Src, Netsim.Ph_commit, "committed");
    ("src-release", `Src, Netsim.Ph_release, "committed");
    ("dst-transfer", `Dst, Netsim.Ph_transfer, "abort-requeue");
    ("dst-restore", `Dst, Netsim.Ph_restore, "abort-requeue");
    ("dst-commit", `Dst, Netsim.Ph_commit, "committed");
  ]

let test_crash_matrix () =
  List.iter
    (fun (wname, src) ->
      let expected = expected_output src in
      List.iter
        (fun (cname, who, phase, want) ->
          let faults =
            match who with
            | `Src -> Netsim.node_faults ~crash_source_after:phase ()
            | `Dst -> Netsim.node_faults ~crash_dest_after:phase ()
          in
          let res, pre, m, _ = handoff ~faults src in
          let got = Handoff.outcome_name res.Handoff.outcome in
          check_string (Printf.sprintf "%s/%s outcome" wname cname) want got;
          (* one-shot hooks were consumed by the crash *)
          check_bool (Printf.sprintf "%s/%s hook consumed" wname cname) true
            (faults.Netsim.crash_source_after = None
            && faults.Netsim.crash_dest_after = None);
          (* exactly-once: the surviving copy completes with precisely the
             expected output — a doubled or dropped run would change it *)
          check_string (Printf.sprintf "%s/%s exactly-once" wname cname) expected
            (survivor m pre res))
        crash_cases)
    workloads

let test_src_crash_flags () =
  (* a post-transfer source crash still commits, flagged as recovered *)
  let res, _, _, _ =
    handoff ~faults:(Netsim.node_faults ~crash_source_after:Netsim.Ph_transfer ()) (snd (List.hd workloads))
  in
  match res.Handoff.outcome with
  | Handoff.Committed c -> check_bool "src-crashed flag" true c.Handoff.c_src_crashed
  | o -> Alcotest.failf "expected Committed, got %s" (Handoff.outcome_name o)

let test_dst_crash_post_commit_restarts () =
  let res, pre, _, _ =
    handoff ~faults:(Netsim.node_faults ~crash_dest_after:Netsim.Ph_commit ())
      (snd (List.hd workloads))
  in
  match res.Handoff.outcome with
  | Handoff.Committed c ->
      check_bool "dest-restarted flag" true c.Handoff.c_dest_restarted;
      check_string "rebuilt from durable image" (expected_output (snd (List.hd workloads)))
        (finish_output pre c.Handoff.c_dst)
  | o -> Alcotest.failf "expected Committed, got %s" (Handoff.outcome_name o)

(* ------------------------------------------------------------------ *)
(* Lost-ack ambiguity                                                  *)
(* ------------------------------------------------------------------ *)

let test_lost_ack_resolved_by_probe () =
  let src = snd (List.hd workloads) in
  let res, pre, _, _ = handoff ~faults:(Netsim.node_faults ~drop_commit_acks:1 ()) src in
  match res.Handoff.outcome with
  | Handoff.Committed c ->
      check_bool "ack-recovered flag" true c.Handoff.c_ack_recovered;
      check_bool "paid the watchdog deadline" true
        (c.Handoff.c_time_s >= Handoff.default_config.Handoff.ack_deadline_s);
      check_string "exactly-once" (expected_output src) (finish_output pre c.Handoff.c_dst)
  | o -> Alcotest.failf "expected Committed, got %s" (Handoff.outcome_name o)

let test_lost_ack_plus_source_crash () =
  (* the worst ambiguity: ack lost AND the source crashes; the restarted
     source's probe must still find the commit — never run twice *)
  let src = snd (List.hd workloads) in
  let res, pre, _, _ =
    handoff
      ~faults:
        (Netsim.node_faults ~drop_commit_acks:1 ~crash_source_after:Netsim.Ph_commit ())
      src
  in
  match res.Handoff.outcome with
  | Handoff.Committed c ->
      check_bool "src-crashed" true c.Handoff.c_src_crashed;
      check_string "exactly-once" (expected_output src) (finish_output pre c.Handoff.c_dst)
  | o -> Alcotest.failf "expected Committed, got %s" (Handoff.outcome_name o)

let test_stalled_retains_checkpoint () =
  (* destination dead and every probe reply lost: the protocol must block
     with the checkpoint retained, not guess *)
  let src = snd (List.hd workloads) in
  let res, pre, m, _ =
    handoff
      ~faults:
        (Netsim.node_faults ~crash_dest_after:Netsim.Ph_transfer ~drop_probe_replies:99 ())
      src
  in
  match res.Handoff.outcome with
  | Handoff.Stalled { s_ckpt; s_epoch; s_time_s } ->
      check_int "epoch" 1 s_epoch;
      check_bool "checkpoint retained" true (String.length s_ckpt > 0);
      check_bool "waited out the probes" true
        (s_time_s
        >= float_of_int (1 + Handoff.default_config.Handoff.probe_retries)
           *. Handoff.default_config.Handoff.ack_deadline_s);
      (* the retained checkpoint is complete: resuming it finishes the job *)
      let interp, _ = Handoff.resume_from_checkpoint m src_arch ~epoch:s_epoch s_ckpt in
      check_string "checkpoint resumable" (expected_output src) (finish_output pre interp)
  | o -> Alcotest.failf "expected Stalled, got %s" (Handoff.outcome_name o)

let test_link_failure_resumes_source () =
  let src = snd (List.hd workloads) in
  let m = prepare src in
  let p, _ = suspend m src_arch 3 in
  let channel =
    Netsim.ethernet_10 ~faults:(Netsim.fault_model ~corrupt_rate:1.0 ~seed:5 ()) ()
  in
  let res = Handoff.execute ~channel ~epoch:1 m p dst_arch in
  match res.Handoff.outcome with
  | Handoff.Link_failed l ->
      check_bool "retries spent" true (l.Handoff.l_attempts > 1);
      Interp.clear_migration_request p;
      check_string "source resumes" (expected_output src) (finish_output "" p)
  | o -> Alcotest.failf "expected Link_failed, got %s" (Handoff.outcome_name o)

(* ------------------------------------------------------------------ *)
(* Epochs                                                              *)
(* ------------------------------------------------------------------ *)

let test_epoch_stamped_and_checked () =
  let m = prepare (Hpm_workloads.Nqueens.source 6) in
  let p, _ = suspend m src_arch 3 in
  let data, _ = Collect.collect ~epoch:5 p m.Migration.ti in
  let hdr = Stream.get_header (Hpm_xdr.Xdr.reader_of_string data) in
  check_int "epoch in header" 5 hdr.Stream.epoch;
  (* matching epoch restores; a mismatch is refused *)
  let _ = Restore.restore ~expect_epoch:5 m.Migration.prog dst_arch m.Migration.ti data in
  expect_raise "epoch mismatch refused"
    (function Restore.Error msg -> contains_sub msg "epoch mismatch" | _ -> false)
    (fun () -> Restore.restore ~expect_epoch:6 m.Migration.prog dst_arch m.Migration.ti data)

let test_negative_epoch_rejected () =
  let m = prepare (Hpm_workloads.Nqueens.source 6) in
  let p, _ = suspend m src_arch 3 in
  expect_raise "negative epoch"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Collect.collect ~epoch:(-1) p m.Migration.ti)

let test_fault_plan_validation () =
  expect_raise "negative ack drops"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Netsim.node_faults ~drop_commit_acks:(-1) ());
  expect_raise "negative probe drops"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Netsim.node_faults ~drop_probe_replies:(-3) ());
  let m = prepare (Hpm_workloads.Nqueens.source 5) in
  let p, _ = suspend m src_arch 1 in
  expect_raise "non-positive deadline"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () ->
      Handoff.execute
        ~config:{ Handoff.default_config with Handoff.ack_deadline_s = 0.0 }
        ~channel:(Netsim.ethernet_100 ()) ~epoch:1 m p dst_arch)

(* ------------------------------------------------------------------ *)
(* The MSR integrity verifier                                          *)
(* ------------------------------------------------------------------ *)

(* a suspended test_pointer process: a rich pointer web over heap structs
   (the heap is populated by the 20th poll event) *)
let pointer_image () =
  let m = prepare (Hpm_workloads.Test_pointer.source 0) in
  let p, _ = suspend m src_arch 20 in
  (m, p)

(* first initialized data-pointer slot, preferring one whose target is a
   heap block (so the dangling test can free it) *)
let find_ptr_slot ?(want_heap = false) (p : Interp.t) =
  let mem = p.Interp.mem in
  let candidates =
    List.concat_map
      (fun (b : Mem.block) ->
        let elems = Layout.elems mem.Mem.layout b.Mem.ty in
        List.filter_map
          (fun ord ->
            match Layout.kind_of_ordinal elems ord with
            | Ty.KPtr _ as k -> (
                let off = Layout.byte_of_ordinal elems ord in
                match Mem.load_scalar mem b off k with
                | Mem.Vptr a
                  when (not (Int64.equal a 0L))
                       && not (Interp.is_func_addr p.Interp.prog a) -> (
                    match Mem.find_block_opt mem a with
                    | Some dst when (not want_heap) || dst.Mem.seg = Mem.Heap ->
                        Some (b, off, k, dst)
                    | _ -> None)
                | _ -> None)
            | _ -> None)
          (List.init (Layout.elem_count elems) Fun.id))
      (Mem.live_blocks mem)
  in
  match candidates with
  | slot :: _ -> slot
  | [] -> Alcotest.fail "no pointer slot found in the image"

let expect_violation name needle f =
  expect_raise name
    (function Verify.Violation msg -> contains_sub msg needle | _ -> false)
    f

let test_verify_clean_image () =
  let m, p = pointer_image () in
  let r = Verify.check p m.Migration.ti in
  check_bool "blocks checked" true (r.Verify.v_blocks > 0);
  check_bool "edges resolved" true (r.Verify.v_edges > 0);
  (* and a restored copy verifies too *)
  let data, _ = Collect.collect p m.Migration.ti in
  let q, _ = Restore.restore m.Migration.prog dst_arch m.Migration.ti data in
  let r2 = Verify.check q m.Migration.ti in
  check_int "same pointer count after restore" r.Verify.v_pointers r2.Verify.v_pointers

let test_verify_wild_pointer () =
  let m, p = pointer_image () in
  let b, off, k, _ = find_ptr_slot p in
  Mem.store_scalar p.Interp.mem b off k (Mem.Vptr 0x7FFF_FFF0L);
  expect_violation "wild pointer" "not inside any live block" (fun () ->
      Verify.check p m.Migration.ti)

let test_verify_misaligned_interior () =
  let m, p = pointer_image () in
  let b, off, k, _ = find_ptr_slot p in
  (* aim between the element boundaries of a multi-element wide block *)
  let target =
    List.find_opt
      (fun (c : Mem.block) ->
        let elems = Layout.elems p.Interp.mem.Mem.layout c.Mem.ty in
        Layout.elem_count elems >= 2 && Layout.byte_of_ordinal elems 1 >= 4)
      (Mem.live_blocks p.Interp.mem)
  in
  match target with
  | None -> Alcotest.fail "no wide block to misalign into"
  | Some dst ->
      Mem.store_scalar p.Interp.mem b off k (Mem.Vptr (Int64.add dst.Mem.base 2L));
      expect_violation "misaligned pointer" "not an element boundary" (fun () ->
          Verify.check p m.Migration.ti)

let test_verify_dangling_to_freed () =
  let m, p = pointer_image () in
  let _, _, _, dst = find_ptr_slot ~want_heap:true p in
  Mem.free p.Interp.mem dst;
  expect_violation "dangling pointer" "not inside any live block" (fun () ->
      Verify.check p m.Migration.ti)

let test_verify_orphan_heap_block () =
  let m, p = pointer_image () in
  let _ = Mem.alloc p.Interp.mem Mem.Heap Ty.Int Mem.Iheap in
  expect_violation "orphan heap block" "orphan" (fun () -> Verify.check p m.Migration.ti)

let test_verify_type_without_ti_entry () =
  let m, p = pointer_image () in
  let exotic = Ty.Ptr (Ty.Ptr (Ty.Ptr Ty.Double)) in
  let _ = Mem.alloc p.Interp.mem Mem.Heap exotic Mem.Iheap in
  expect_violation "TI-less type" "TI" (fun () -> Verify.check p m.Migration.ti)

let test_verify_one_past_end_accepted () =
  (* q = &a[n] is legal C and collectible; the verifier must accept it *)
  let m, p = pointer_image () in
  let b, off, k, dst = find_ptr_slot p in
  Mem.store_scalar p.Interp.mem b off k
    (Mem.Vptr (Int64.add dst.Mem.base (Int64.of_int dst.Mem.size)));
  let _ = Verify.check p m.Migration.ti in
  ()

let test_tampered_restore_aborts_handoff () =
  (* in-protocol seeded corruption: the verifier must NAK the epoch *)
  let src = Hpm_workloads.Test_pointer.source 0 in
  let tamper (q : Interp.t) =
    let b, off, k, _ = find_ptr_slot q in
    Mem.store_scalar q.Interp.mem b off k (Mem.Vptr 0x7FFF_FFF0L)
  in
  let res, pre, m, _ = handoff ~tamper src in
  match res.Handoff.outcome with
  | Handoff.Abort_requeue q ->
      check_bool "NAK reason names verification" true
        (contains_sub q.Handoff.q_reason "MSR verification failed");
      (* the retained checkpoint is unharmed *)
      let interp, _ =
        Handoff.resume_from_checkpoint m src_arch ~epoch:q.Handoff.q_epoch
          q.Handoff.q_ckpt
      in
      check_string "source copy intact" (expected_output src) (finish_output pre interp)
  | o -> Alcotest.failf "expected Abort_requeue, got %s" (Handoff.outcome_name o)

(* ------------------------------------------------------------------ *)
(* Scheduler recovery                                                  *)
(* ------------------------------------------------------------------ *)

open Hpm_sched

let three_nodes () =
  let a = Sched.node "alpha" Hpm_arch.Arch.dec5000 in
  let b = Sched.node "beta" Hpm_arch.Arch.sparc20 in
  let c = Sched.node "gamma" Hpm_arch.Arch.i386 in
  let channel = Netsim.ethernet_100 () in
  (Sched.create ~channel [ a; b; c ], a, b, c, channel)

let test_sched_requeues_on_dest_crash () =
  let sim, a, b, c, channel = three_nodes () in
  Netsim.set_node_faults channel
    (Some (Netsim.node_faults ~crash_dest_after:Netsim.Ph_restore ()));
  let p = Sched.spawn sim a "victim" (prepare (Hpm_workloads.Nqueens.source 7)) in
  Sched.request_migration sim p b;
  let _ = Sched.run sim in
  check_string "output exactly once" "40\n" (Sched.output p);
  check_int "one requeue" 1 p.Sched.p_requeues;
  check_bool "landed on the third node" true (p.Sched.p_node == c);
  check_bool "requeue event logged" true
    (List.exists (function Sched.Requeued _ -> true | _ -> false) (Sched.events sim))

let test_sched_source_crash_recovers_locally () =
  let sim, a, b, _, channel = three_nodes () in
  Netsim.set_node_faults channel
    (Some (Netsim.node_faults ~crash_source_after:Netsim.Ph_collect ()));
  let p = Sched.spawn sim a "phoenix" (prepare (Hpm_workloads.Nqueens.source 7)) in
  Sched.request_migration sim p b;
  let _ = Sched.run sim in
  check_string "output exactly once" "40\n" (Sched.output p);
  check_int "one recovery" 1 p.Sched.p_recoveries;
  check_bool "still on the source" true (p.Sched.p_node == a);
  check_bool "recovery event logged" true
    (List.exists (function Sched.Recovered _ -> true | _ -> false) (Sched.events sim))

let test_sched_stalled_resumes_checkpoint () =
  let sim, a, b, _, channel = three_nodes () in
  Netsim.set_node_faults channel
    (Some
       (Netsim.node_faults ~crash_dest_after:Netsim.Ph_transfer ~drop_probe_replies:99 ()));
  let p = Sched.spawn sim a "blocked" (prepare (Hpm_workloads.Nqueens.source 7)) in
  Sched.request_migration sim p b;
  let _ = Sched.run sim in
  check_string "output exactly once" "40\n" (Sched.output p);
  check_bool "recovered from the retained checkpoint" true (p.Sched.p_recoveries >= 1);
  check_bool "still on the source" true (p.Sched.p_node == a)

let test_sched_migration_stats_surfaced () =
  let sim, a, b, _, _ = three_nodes () in
  let p = Sched.spawn sim a "clean" (prepare (Hpm_workloads.Nqueens.source 7)) in
  Sched.request_migration sim p b;
  let _ = Sched.run sim in
  check_string "output" "40\n" (Sched.output p);
  check_bool "collected bytes recorded" true (p.Sched.p_bytes_collected > 0);
  check_bool "restored bytes recorded" true (p.Sched.p_bytes_restored > 0);
  let ms =
    List.find_map
      (function Sched.Migrated (_, _, _, _, ms) -> Some ms | _ -> None)
      (Sched.events sim)
  in
  match ms with
  | None -> Alcotest.fail "no Migrated event"
  | Some ms ->
      check_int "epoch surfaced" 1 ms.Sched.ms_epoch;
      check_bool "stream bytes surfaced" true (ms.Sched.ms_stream_bytes > 0);
      check_bool "collected bytes surfaced" true (ms.Sched.ms_collected_bytes > 0);
      check_bool "restored bytes surfaced" true (ms.Sched.ms_restored_bytes > 0);
      check_bool "protocol time surfaced" true (ms.Sched.ms_time_s > 0.0)

let suite =
  [
    tc "clean commit across three workloads" test_clean_commit;
    tc_slow "crash matrix: every phase x workload, exactly once" test_crash_matrix;
    tc "post-transfer source crash still commits" test_src_crash_flags;
    tc "post-commit dest crash restarts from durable image" test_dst_crash_post_commit_restarts;
    tc "lost ack resolved by epoch probe" test_lost_ack_resolved_by_probe;
    tc "lost ack + source crash never runs twice" test_lost_ack_plus_source_crash;
    tc "unreachable destination stalls, checkpoint retained" test_stalled_retains_checkpoint;
    tc "link failure resumes the source" test_link_failure_resumes_source;
    tc "epoch stamped in header and checked on restore" test_epoch_stamped_and_checked;
    tc "negative epoch rejected" test_negative_epoch_rejected;
    tc "fault-plan and config validation" test_fault_plan_validation;
    tc "verifier passes a clean image" test_verify_clean_image;
    tc "verifier rejects a wild pointer" test_verify_wild_pointer;
    tc "verifier rejects a misaligned interior pointer" test_verify_misaligned_interior;
    tc "verifier rejects a dangling pointer to freed storage" test_verify_dangling_to_freed;
    tc "verifier rejects an orphan heap block" test_verify_orphan_heap_block;
    tc "verifier rejects a type with no TI entry" test_verify_type_without_ti_entry;
    tc "verifier accepts one-past-the-end" test_verify_one_past_end_accepted;
    tc "tampered restore NAKs the epoch" test_tampered_restore_aborts_handoff;
    tc "scheduler re-queues on destination crash" test_sched_requeues_on_dest_crash;
    tc "scheduler recovers a crashed source locally" test_sched_source_crash_recovers_locally;
    tc "scheduler resumes a stalled handoff from checkpoint" test_sched_stalled_resumes_checkpoint;
    tc "scheduler surfaces migration stats" test_sched_migration_stats_surfaced;
  ]
