(** Architecture descriptor tests. *)

open Hpm_arch
open Util

let test_catalog () =
  check_int "eight architectures" 8 (List.length Arch.all);
  List.iter
    (fun (a : Arch.t) ->
      check_bool (a.Arch.name ^ " lookup") true (Arch.by_name a.Arch.name = Some a))
    Arch.all;
  check_bool "unknown arch" true (Arch.by_name "vax" = None);
  expect_raise "by_name_exn" (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Arch.by_name_exn "vax")

let test_paper_machines () =
  let dec = Arch.dec5000 and sparc = Arch.sparc20 in
  (* §4.1: "It is truly heterogeneous because both systems use different
     endianness" *)
  check_bool "dec5000 little-endian" true (dec.Arch.endian = Endian.Little);
  check_bool "sparc20 big-endian" true (sparc.Arch.endian = Endian.Big);
  check_bool "dec<->sparc heterogeneous" true (Arch.heterogeneous dec sparc);
  (* both are ILP32 *)
  check_int "dec ptr" 4 dec.Arch.ptr_size;
  check_int "sparc ptr" 4 sparc.Arch.ptr_size;
  check_int "dec long" 4 dec.Arch.long_size

let test_width_axes () =
  check_int "x86_64 ptr" 8 Arch.x86_64.Arch.ptr_size;
  check_int "x86_64 long" 8 Arch.x86_64.Arch.long_size;
  check_int "i386 double align" 4 Arch.i386.Arch.double_align;
  check_bool "sparc20/ultra5 homogeneous" false
    (Arch.heterogeneous Arch.sparc20 Arch.ultra5);
  (* i386 differs from dec5000 only in alignment — still heterogeneous *)
  check_bool "i386/dec5000 heterogeneous" true (Arch.heterogeneous Arch.i386 Arch.dec5000)

let test_portability_axes () =
  (* the three Issue-7 profiles exercise the remaining portability axes *)
  check_bool "aarch64 unsigned char" false Arch.aarch64_le_lp64.Arch.char_signed;
  check_int "aarch64 long" 8 Arch.aarch64_le_lp64.Arch.long_size;
  check_bool "riscv64 signed char" true Arch.riscv64_le_lp64.Arch.char_signed;
  check_int "riscv64 ptr" 8 Arch.riscv64_le_lp64.Arch.ptr_size;
  check_bool "wasm32 f32 doubles" true Arch.wasm32_le_ilp32.Arch.double_f32;
  check_int "wasm32 long" 4 Arch.wasm32_le_ilp32.Arch.long_size;
  (* char signedness alone makes a pair heterogeneous *)
  check_bool "aarch64/riscv64 heterogeneous" true
    (Arch.heterogeneous Arch.aarch64_le_lp64 Arch.riscv64_le_lp64);
  (* the classic catalog keeps signed chars and hard doubles *)
  List.iter
    (fun (a : Arch.t) ->
      check_bool (a.Arch.name ^ " signed char") true a.Arch.char_signed;
      check_bool (a.Arch.name ^ " hard doubles") false a.Arch.double_f32)
    [ Arch.dec5000; Arch.sparc20; Arch.ultra5; Arch.i386; Arch.x86_64 ]

let test_segments_disjoint () =
  List.iter
    (fun (a : Arch.t) ->
      let name = a.Arch.name in
      check_bool (name ^ " globals below heap") true
        (Int64.compare a.Arch.global_base a.Arch.heap_base < 0);
      check_bool (name ^ " heap below stack") true
        (Int64.compare a.Arch.heap_base a.Arch.stack_base < 0))
    Arch.all

let suite =
  [
    tc "catalog and lookup" test_catalog;
    tc "the paper's machines" test_paper_machines;
    tc "width and alignment axes" test_width_axes;
    tc "portability axes of the new profiles" test_portability_axes;
    tc "segment bases are ordered" test_segments_disjoint;
  ]
