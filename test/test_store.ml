(** The incremental checkpoint store: chunked snapshot ≡ monolithic
    collection (bit-for-bit), delta streams, dedup, GC, and damage
    handling. *)

open Util
open Hpm_core
open Hpm_store
open Hpm_machine

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hpm_store_%d_%d" (Unix.getpid ()) !n)
    in
    (* Store.open_store creates it *)
    d

let rec rm_rf path =
  if Sys.is_directory path then (
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path)
  else Sys.remove path

let with_store f =
  let dir = fresh_dir () in
  let st = Store.open_store dir in
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f st)

let workload name = (Hpm_workloads.Registry.find_exn name).Hpm_workloads.Registry.source

(* Advance a suspended process to its next suspension, [polls] poll
   events later; None if it finishes first. *)
let advance p polls =
  Interp.request_migration_after p polls;
  match Interp.run p with
  | Interp.RPolled _ -> Some p
  | Interp.RDone _ -> None
  | Interp.RFuel -> Alcotest.fail "out of fuel"

(* ---------------------------------------------------------------- *)
(* Write-generation tracking                                         *)
(* ---------------------------------------------------------------- *)

let test_write_mark () =
  let m = prepare (workload "jacobi" 4) in
  let p, _ = suspend m Hpm_arch.Arch.ultra5 0 in
  let m1 = Mem.write_mark p.Interp.mem in
  check_bool "mark positive after init" true (m1 > 0);
  match advance p 1 with
  | None -> Alcotest.fail "jacobi finished too early"
  | Some p ->
      let m2 = Mem.write_mark p.Interp.mem in
      check_bool "mark advances with execution" true (m2 > m1)

let test_clean_second_epoch () =
  let m = prepare (workload "jacobi" 4) in
  let p, _ = suspend m Hpm_arch.Arch.ultra5 1 in
  let cache = Snapshot.new_cache () in
  let _, chunks1, s1 = Snapshot.collect ~epoch:1 ~cache p m.Migration.ti in
  check_bool "first epoch serializes blocks" true (Hashtbl.length chunks1 > 0);
  check_int "first epoch: all scanned blocks dirty" s1.Cstats.d_blocks_scanned
    s1.Cstats.d_blocks_dirty;
  (* same suspension, nothing ran: everything is clean and cache-hit *)
  let mf2, chunks2, s2 = Snapshot.collect ~epoch:2 ~cache p m.Migration.ti in
  check_int "no dirty blocks without execution" 0 s2.Cstats.d_blocks_dirty;
  check_int "no fresh chunks without execution" 0 (Hashtbl.length chunks2);
  check_int "every block a cache hit" s2.Cstats.d_blocks_scanned s2.Cstats.d_cache_hits;
  check_int "same block count" s1.Cstats.d_blocks_scanned (Array.length mf2.Store.mf_blocks)

(* ---------------------------------------------------------------- *)
(* Bit-identity with the monolithic collector                        *)
(* ---------------------------------------------------------------- *)

let check_identity name m arch after epoch =
  let p, _ = suspend m arch after in
  let full, _ = Collect.collect ~epoch p m.Migration.ti in
  let mf, chunks, _ = Snapshot.collect ~epoch p m.Migration.ti in
  let stream =
    Snapshot.materialize ~ti:m.Migration.ti
      ~lookup:(fun h ->
        match Hashtbl.find_opt chunks h with
        | Some payload -> payload
        | None -> Alcotest.failf "%s: missing chunk" name)
      mf
  in
  check_bool (name ^ ": materialized stream is byte-identical") true (String.equal full stream)

let test_identity () =
  List.iter
    (fun (wname, n, arch, after) ->
      let m = prepare (workload wname n) in
      check_identity
        (Printf.sprintf "%s/%s/after=%d" wname arch.Hpm_arch.Arch.name after)
        m arch after 3)
    [
      ("test_pointer", 0, Hpm_arch.Arch.dec5000, 0);
      ("test_pointer", 0, Hpm_arch.Arch.x86_64, 2);
      ("jacobi", 4, Hpm_arch.Arch.ultra5, 1);
      ("listops", 30, Hpm_arch.Arch.sparc20, 2);
      ("hashtab", 60, Hpm_arch.Arch.i386, 1);
      ("qsort", 40, Hpm_arch.Arch.x86_64, 1);
    ]

let test_identity_with_cache_chain () =
  (* identity must also hold when chunks come from a warm cache: collect
     at successive suspensions with the same cache and compare each
     materialization against a fresh monolithic collection *)
  List.iter
    (fun (wname, n, gaps) ->
      let m = prepare (workload wname n) in
      let p, _ = suspend m Hpm_arch.Arch.dec5000 0 in
      let cache = Snapshot.new_cache () in
      let all_chunks = Hashtbl.create 64 in
      let rec go p epoch = function
        | [] -> ()
        | gap :: rest -> (
            let full, _ = Collect.collect ~epoch p m.Migration.ti in
            let mf, chunks, _ = Snapshot.collect ~epoch ~cache p m.Migration.ti in
            Hashtbl.iter (Hashtbl.replace all_chunks) chunks;
            let stream =
              Snapshot.materialize ~ti:m.Migration.ti
                ~lookup:(fun h ->
                  match Hashtbl.find_opt all_chunks h with
                  | Some payload -> payload
                  | None -> Alcotest.failf "%s: chunk lost across epochs" wname)
                mf
            in
            check_bool
              (Printf.sprintf "%s epoch %d identical" wname epoch)
              true (String.equal full stream);
            match advance p gap with None -> () | Some p -> go p (epoch + 1) rest)
      in
      go p 1 gaps)
    [ ("jacobi", 4, [ 1; 1; 2 ]); ("hashtab", 80, [ 1; 3; 1 ]); ("listops", 40, [ 2; 2 ]) ]

let test_restore_equivalence () =
  (* a store round-trip must preserve program output across architectures *)
  List.iter
    (fun (src_arch, dst_arch) ->
      with_store (fun st ->
          let m = prepare (workload "hashtab" 100) in
          let p, _ = suspend m src_arch 1 in
          let prefix = Interp.output p in
          let mf, chunks, stats =
            Snapshot.collect ~epoch:1 ~proc:"hashtab" p m.Migration.ti
          in
          Snapshot.persist st mf chunks stats;
          match Snapshot.restore_latest m dst_arch st ~proc:"hashtab" with
          | None -> Alcotest.fail "restore_latest found nothing"
          | Some (q, _, mf') ->
              check_int "restored epoch" 1 mf'.Store.mf_epoch;
              let out =
                match Interp.run q with
                | Interp.RDone _ -> Interp.output q
                | _ -> Alcotest.fail "restored process did not finish"
              in
              let expected, _, _ = Migration.run_plain m src_arch in
              check_string
                (Printf.sprintf "%s→%s output" src_arch.Hpm_arch.Arch.name
                   dst_arch.Hpm_arch.Arch.name)
                expected (prefix ^ out)))
    same_width_pairs

(* ---------------------------------------------------------------- *)
(* QCheck: delta chains equal full collection across arch pairs      *)
(* ---------------------------------------------------------------- *)

let delta_chain_prop =
  let open QCheck in
  let pairs =
    [
      (Hpm_arch.Arch.dec5000, Hpm_arch.Arch.sparc20);
      (Hpm_arch.Arch.sparc20, Hpm_arch.Arch.ultra5);
      (Hpm_arch.Arch.i386, Hpm_arch.Arch.sparc20);
      (Hpm_arch.Arch.dec5000, Hpm_arch.Arch.i386);
    ]
  in
  let gen =
    Gen.(
      triple (int_range 0 3)
        (list_size (int_range 1 3) (int_range 1 3))
        (int_range 0 (List.length pairs - 1)))
  in
  qt ~count:25 "delta chain ≡ full collection (store round-trip, cross-arch)"
    (make
       ~print:(fun (a, g, i) ->
         Printf.sprintf "start=%d gaps=[%s] pair=%d" a
           (String.concat ";" (List.map string_of_int g))
           i)
       gen)
    (fun (start, gaps, pair_i) ->
      let src_arch, dst_arch = List.nth pairs pair_i in
      let m = prepare (workload "hashtab" 80) in
      let sdir = fresh_dir () and ddir = fresh_dir () in
      let src_store = Store.open_store sdir in
      let dst_store = Store.open_store ddir in
      Fun.protect
        ~finally:(fun () ->
          (try rm_rf sdir with _ -> ());
          try rm_rf ddir with _ -> ())
        (fun () ->
          let p = Migration.start m src_arch in
          Interp.request_migration_after p start;
          match Interp.run p with
          | Interp.RDone _ -> true (* finished before first poll: vacuous *)
          | Interp.RFuel -> false
          | Interp.RPolled _ ->
              let cache = Snapshot.new_cache () in
              let chunks_acc = Hashtbl.create 64 in
              let ship ?base epoch p =
                let mf, chunks, stats =
                  Snapshot.collect ~epoch ~proc:"q" ~cache p m.Migration.ti
                in
                Hashtbl.iter (Hashtbl.replace chunks_acc) chunks;
                Snapshot.persist src_store mf chunks stats;
                let wire =
                  Store.encode_delta ?base
                    ~lookup:(fun h ->
                      match Hashtbl.find_opt chunks_acc h with
                      | Some payload -> payload
                      | None -> Store.get_chunk src_store h)
                    mf
                in
                let applied = Store.apply dst_store ?expect_base:base wire in
                (* receiver's materialization must equal a fresh monolithic
                   collection at this very suspension *)
                let full, _ = Collect.collect ~epoch p m.Migration.ti in
                let stream =
                  Snapshot.materialize ~ti:m.Migration.ti
                    ~lookup:(Store.get_chunk dst_store) applied
                in
                if not (String.equal full stream) then
                  QCheck.Test.fail_report "materialized stream diverged";
                applied
              in
              let rec rounds p base epoch = function
                | [] -> (p, base)
                | gap :: rest -> (
                    match advance p gap with
                    | None -> (p, base)
                    | Some p ->
                        let applied = ship ~base epoch p in
                        rounds p applied (epoch + 1) rest)
              in
              let base = ship 1 p in
              let p, final = rounds p base 2 gaps in
              (* and the final image restores to the right output *)
              let prefix = Interp.output p in
              let q, _ =
                Snapshot.restore_manifest m dst_arch
                  ~lookup:(Store.get_chunk dst_store) final
              in
              let out =
                match Interp.run q with
                | Interp.RDone _ -> Interp.output q
                | _ -> QCheck.Test.fail_report "restored process did not finish"
              in
              let expected, _, _ = Migration.run_plain m src_arch in
              String.equal expected (prefix ^ out)))

(* ---------------------------------------------------------------- *)
(* Store mechanics: dedup, refcount, retain, GC                      *)
(* ---------------------------------------------------------------- *)

let two_epoch_store st =
  let m = prepare (workload "jacobi" 4) in
  let p, _ = suspend m Hpm_arch.Arch.ultra5 1 in
  let cache = Snapshot.new_cache () in
  let mf1, c1, s1 = Snapshot.collect ~epoch:1 ~proc:"j" ~cache p m.Migration.ti in
  Snapshot.persist st mf1 c1 s1;
  let p = match advance p 2 with Some p -> p | None -> Alcotest.fail "finished early" in
  let mf2, c2, s2 = Snapshot.collect ~epoch:2 ~proc:"j" ~cache p m.Migration.ti in
  Snapshot.persist st mf2 c2 s2;
  (m, mf1, mf2, s2)

let test_dedup_and_refcount () =
  with_store (fun st ->
      let _, mf1, mf2, s2 = two_epoch_store st in
      check_bool "second epoch reuses chunks" true (s2.Cstats.d_chunks_reused > 0);
      (* a chunk shared by both manifests has refcount 2 *)
      let h1 = List.hd (Store.manifest_hashes mf1) in
      let shared =
        List.exists (fun h -> List.mem h (Store.manifest_hashes mf1)) (Store.manifest_hashes mf2)
      in
      check_bool "some chunk is shared across epochs" true shared;
      check_bool "refcount counts referencing manifests" true (Store.refcount st h1 >= 1);
      check_int "epochs listed" 2 (List.length (Store.manifest_epochs st ~proc:"j"));
      check_int "one proc" 1 (List.length (Store.procs st)))

let test_gc_preserves_referenced () =
  with_store (fun st ->
      let m, _, mf2, _ = two_epoch_store st in
      let removed = Store.retain st ~proc:"j" ~keep:1 in
      check_int "retain dropped the old manifest" 1 removed;
      let g = Store.gc st in
      check_bool "gc reclaimed the old epoch's unique chunks" true (g.Store.gc_reclaimed_chunks > 0);
      check_bool "gc reports reclaimed bytes" true (g.Store.gc_reclaimed_bytes > 0);
      check_int "no damaged manifests" 0 g.Store.gc_damaged_manifests;
      (* every chunk of the surviving manifest is intact *)
      List.iter
        (fun h -> check_bool "live chunk survives gc" true (Store.has_chunk st h))
        (Store.manifest_hashes mf2);
      let q, _ =
        Snapshot.restore_manifest m Hpm_arch.Arch.ultra5 ~lookup:(Store.get_chunk st) mf2
      in
      check_bool "post-gc restore works" true (match Interp.run q with Interp.RDone _ -> true | _ -> false);
      (* idempotent: nothing more to reclaim *)
      let g2 = Store.gc st in
      check_int "second gc reclaims nothing" 0 g2.Store.gc_reclaimed_chunks)

let test_gc_ignores_torn_manifest () =
  with_store (fun st ->
      let _, _, mf2, _ = two_epoch_store st in
      (* a torn (uncommitted) manifest protects nothing and breaks nothing *)
      let mdir = Filename.concat st.Store.dir "manifests" in
      let oc = open_out_bin (Filename.concat mdir "j.00000099.mf") in
      output_string oc (String.sub (Store.serialize_manifest mf2) 0 10);
      close_out oc;
      let g = Store.gc st in
      check_int "damaged manifest counted" 1 g.Store.gc_damaged_manifests;
      check_bool "live chunks kept" true (g.Store.gc_live_chunks > 0);
      match Store.latest_manifest st ~proc:"j" with
      | Some mf -> check_int "latest skips the torn manifest" 2 mf.Store.mf_epoch
      | None -> Alcotest.fail "no committed manifest found")

(* Crash injection: an interrupted [put_chunk] dies between writing
   "<hash>.ck.tmp" and the rename.  gc must neither count the orphan as
   reclaimed nor delete it, and retrying the commit must succeed. *)
let test_gc_ignores_tmp_orphans () =
  with_store (fun st ->
      let payload = "chunk payload whose first commit never finished" in
      let hash, fresh = Store.put_chunk st payload in
      check_bool "first commit writes" true fresh;
      let path = Store.chunk_path st hash in
      (* rewind to mid-crash: the tmp exists, the committed chunk does not *)
      Sys.remove path;
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      output_string oc (String.sub payload 0 10);
      close_out oc;
      let g = Store.gc st in
      check_int "orphan tmp not counted as reclaimed" 0 g.Store.gc_reclaimed_chunks;
      check_int "no reclaimed bytes from the orphan" 0 g.Store.gc_reclaimed_bytes;
      check_bool "orphan tmp left in place" true (Sys.file_exists tmp);
      (* the retried commit overwrites the stale tmp and lands cleanly *)
      let hash2, fresh2 = Store.put_chunk st payload in
      check_bool "same content, same hash" true (String.equal hash hash2);
      check_bool "re-commit writes again" true fresh2;
      check_string "chunk round-trips after the retry" payload (Store.get_chunk st hash);
      check_bool "tmp consumed by the rename" true (not (Sys.file_exists tmp)))

let test_retain_bounds () =
  with_store (fun st ->
      let _, _, _, _ = two_epoch_store st in
      check_int "keep more than present removes nothing" 0 (Store.retain st ~proc:"j" ~keep:5);
      check_int "keep zero removes all" 2 (Store.retain st ~proc:"j" ~keep:0);
      check_bool "no manifests left" true (Store.latest_manifest st ~proc:"j" = None))

let test_unwritable_store () =
  expect_raise "open_store on a non-directory" (function Store.Error _ -> true | _ -> false)
    (fun () -> Store.open_store "/dev/null/foo")

let test_bad_proc_name () =
  with_store (fun st ->
      let m = prepare (workload "test_pointer" 0) in
      let p, _ = suspend m Hpm_arch.Arch.ultra5 0 in
      let mf, chunks, stats = Snapshot.collect ~proc:"evil" p m.Migration.ti in
      let mf = { mf with Store.mf_proc = "../escape" } in
      expect_raise "slashful proc name" (function Store.Error _ -> true | _ -> false)
        (fun () -> Snapshot.persist st mf chunks stats))

(* ---------------------------------------------------------------- *)
(* Delta wire: base checking and damage                              *)
(* ---------------------------------------------------------------- *)

let test_delta_smaller_and_applies () =
  with_store (fun src ->
      with_store (fun dst ->
          let m = prepare (workload "jacobi" 4) in
          let p, _ = suspend m Hpm_arch.Arch.ultra5 1 in
          let cache = Snapshot.new_cache () in
          let acc = Hashtbl.create 64 in
          let collect_ship epoch p =
            let mf, chunks, stats = Snapshot.collect ~epoch ~proc:"j" ~cache p m.Migration.ti in
            Hashtbl.iter (Hashtbl.replace acc) chunks;
            Snapshot.persist src mf chunks stats;
            mf
          in
          let lookup h =
            match Hashtbl.find_opt acc h with
            | Some payload -> payload
            | None -> Store.get_chunk src h
          in
          let mf1 = collect_ship 1 p in
          let full_wire = Store.encode_delta ~lookup mf1 in
          let base = Store.apply dst full_wire in
          check_int "full applies as epoch 1" 1 base.Store.mf_epoch;
          let p = match advance p 1 with Some p -> p | None -> Alcotest.fail "finished" in
          let mf2 = collect_ship 2 p in
          let stats = Cstats.delta_zero () in
          let delta_wire = Store.encode_delta ~base ~stats ~lookup mf2 in
          let full2_wire = Store.encode_delta ~lookup mf2 in
          check_bool "delta ships fewer bytes than full" true
            (String.length delta_wire < String.length full2_wire);
          check_bool "delta reuses base chunks" true (stats.Cstats.d_chunks_reused > 0);
          (* wrong base: a receiver holding epoch-2 state rejects a delta
             against epoch 1 only via hash comparison *)
          expect_raise "base mismatch" (function Store.Base_mismatch _ -> true | _ -> false)
            (fun () -> Store.apply dst ~expect_base:mf2 delta_wire);
          expect_raise "delta without a base" (function Store.Base_mismatch _ -> true | _ -> false)
            (fun () -> Store.apply dst delta_wire);
          let applied = Store.apply dst ~expect_base:base delta_wire in
          check_int "delta applies as epoch 2" 2 applied.Store.mf_epoch;
          (* idempotent re-apply *)
          let again = Store.apply dst ~expect_base:base delta_wire in
          check_string "re-apply is harmless" (Store.hash_hex (Store.manifest_hash applied))
            (Store.hash_hex (Store.manifest_hash again))))

(* every-prefix truncation fuzz, in the style of test_checkpoint *)
let cuts n =
  if n <= 1500 then List.init n Fun.id
  else
    let stride = List.init (n / 3) (fun i -> i * 3) in
    let tail = List.init 64 (fun i -> n - 64 + i) in
    stride @ tail

let test_manifest_truncation () =
  let m = prepare (workload "test_pointer" 0) in
  let p, _ = suspend m Hpm_arch.Arch.dec5000 0 in
  let mf, _, _ = Snapshot.collect ~epoch:1 ~proc:"t" p m.Migration.ti in
  let data = Store.serialize_manifest mf in
  let n = String.length data in
  List.iter
    (fun k ->
      expect_raise
        (Printf.sprintf "manifest prefix %d/%d" k n)
        (function Store.Corrupt _ -> true | _ -> false)
        (fun () -> Store.parse_manifest (String.sub data 0 k)))
    (cuts n);
  let mf' = Store.parse_manifest data in
  check_string "full manifest round-trips" (Store.hash_hex (Store.manifest_hash mf))
    (Store.hash_hex (Store.manifest_hash mf'))

let test_delta_truncation () =
  with_store (fun dst ->
      let m = prepare (workload "test_pointer" 0) in
      let p, _ = suspend m Hpm_arch.Arch.dec5000 0 in
      let mf, chunks, _ = Snapshot.collect ~epoch:1 ~proc:"t" p m.Migration.ti in
      let wire = Store.encode_delta ~lookup:(Hashtbl.find chunks) mf in
      let n = String.length wire in
      List.iter
        (fun k ->
          expect_raise
            (Printf.sprintf "delta prefix %d/%d" k n)
            (function Store.Corrupt _ -> true | _ -> false)
            (fun () -> Store.apply dst (String.sub wire 0 k)))
        (cuts n);
      (* flipping a chunk byte must be caught by the content hash *)
      let flipped = Bytes.of_string wire in
      let mid = n - 10 in
      Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0xff));
      expect_raise "corrupted delta chunk" (function Store.Corrupt _ -> true | _ -> false)
        (fun () -> Store.apply dst (Bytes.to_string flipped));
      ignore (Store.apply dst wire))

let test_chunk_file_damage () =
  with_store (fun st ->
      let m = prepare (workload "test_pointer" 0) in
      let p, _ = suspend m Hpm_arch.Arch.dec5000 0 in
      let mf, chunks, stats = Snapshot.collect ~epoch:1 ~proc:"t" p m.Migration.ti in
      Snapshot.persist st mf chunks stats;
      let h = List.hd (Store.manifest_hashes mf) in
      let path =
        Filename.concat (Filename.concat st.Store.dir "chunks") (Store.hash_hex h ^ ".ck")
      in
      let data = In_channel.with_open_bin path In_channel.input_all in
      List.iter
        (fun k ->
          let oc = open_out_bin path in
          output_string oc (String.sub data 0 k);
          close_out oc;
          expect_raise
            (Printf.sprintf "chunk prefix %d" k)
            (function Store.Corrupt _ -> true | _ -> false)
            (fun () -> Store.get_chunk st h))
        (cuts (String.length data));
      let oc = open_out_bin path in
      output_string oc data;
      close_out oc;
      check_int "restored chunk reads back" (String.length (Store.get_chunk st h))
        (List.find (fun bi -> bi.Store.b_hash = h) (Array.to_list mf.Store.mf_blocks)).Store.b_size)

(* ---- golden v3 manifests and deltas ----

   Manifest hashes and delta-wire MD5s captured from the pre-optimization
   implementation (before the batch encoders, the shared scratch buffer,
   and [put_chunk_hashed]).  The optimized paths must reproduce them
   byte for byte.  Each row: collect a chunked snapshot at a fixed poll
   (epoch 3), encode the full delta, advance 7 polls, collect epoch 4,
   and encode the incremental delta against the first manifest. *)

let golden_deltas =
  [
    ( "jacobi", 40, 8, Hpm_arch.Arch.ultra5,
      "1a4115152ef8fbc90475828b5daf5439",
      ("3b4a0319de91f6b5b0f6c08d0f47affd", 18875),
      ("d0899797bcd11caceb6ff9c2b8fec561", 256) );
    ( "jacobi", 40, 8, Hpm_arch.Arch.dec5000,
      "3e72f7aa8fe9809ee1191a3dcf744062",
      ("1549455f676ceaf3e01cad871bb57198", 18876),
      ("59d0bbe40218fbf5339107b0ee529ea6", 257) );
    ( "hashtab", 2000, 6000, Hpm_arch.Arch.ultra5,
      "fb0f01fd1bf6511c777c22f87d1c38c1",
      ("b3c565448841abc56c13b9a381801920", 31764),
      ("02bf738b2e742469f291fd4852cfa245", 2461) );
    ( "bitonic", 3000, 6000, Hpm_arch.Arch.dec5000,
      "049ec61d9342ba0e185c973222b251ec",
      ("637c196749aa3ce48deacd613b9a3c4b", 37858),
      ("2f1409d1a379111309542ceefed0c5fa", 3985) );
    ( "linpack", 100, 80, Hpm_arch.Arch.x86_64,
      "63f5cc4198b23b80680501b83767569e",
      ("12d423c70d9134d65dac1cbf181577fc", 82030),
      ("c07e2fececa26395c5cdb42f53b8f59b", 80440) );
    ( "test_pointer", 0, 2, Hpm_arch.Arch.i386,
      "799622ddf35bea151168424272b704fe",
      ("4845e11c18115480af879b73d7ceefe6", 578),
      ("3504f4b1d381f8c7ad852790ab0cf787", 533) );
  ]

let test_golden_deltas () =
  List.iter
    (fun (name, n, poll, arch, mf_hex, (full_md5, full_len), (incr_md5, incr_len)) ->
      let label what = Printf.sprintf "%s/%s %s" name arch.Hpm_arch.Arch.name what in
      let m = prepare (workload name n) in
      let p, _ = suspend m arch poll in
      let mf, chunks, _ = Snapshot.collect ~epoch:3 ~proc:name p m.Migration.ti in
      let lookup h =
        match Hashtbl.find_opt chunks h with
        | Some c -> c
        | None -> Alcotest.fail "chunk lost"
      in
      check_string (label "manifest hash") mf_hex
        (Store.hash_hex (Store.manifest_hash mf));
      let full = Store.encode_delta ~lookup mf in
      check_int (label "full delta length") full_len (String.length full);
      check_string (label "full delta md5") full_md5 (Digest.to_hex (Digest.string full));
      match advance p 7 with
      | None -> Alcotest.failf "%s finished before the incremental epoch" name
      | Some p ->
          let mf2, chunks2, _ = Snapshot.collect ~epoch:4 ~proc:name p m.Migration.ti in
          Hashtbl.iter (Hashtbl.replace chunks) chunks2;
          let incr = Store.encode_delta ~base:mf ~lookup mf2 in
          check_int (label "incr delta length") incr_len (String.length incr);
          check_string (label "incr delta md5") incr_md5
            (Digest.to_hex (Digest.string incr)))
    golden_deltas

let suite =
  [
    tc "write mark advances" test_write_mark;
    tc "clean second epoch: zero dirty, all cache hits" test_clean_second_epoch;
    tc "snapshot ≡ collect (bit-identity)" test_identity;
    tc "bit-identity along cached delta chains" test_identity_with_cache_chain;
    tc_slow "store round-trip preserves output (same-width pairs)" test_restore_equivalence;
    delta_chain_prop;
    tc "dedup and refcount across epochs" test_dedup_and_refcount;
    tc "gc never reclaims referenced chunks" test_gc_preserves_referenced;
    tc "gc ignores torn manifests" test_gc_ignores_torn_manifest;
    tc "gc ignores orphan tmp files" test_gc_ignores_tmp_orphans;
    tc "retain bounds manifest history" test_retain_bounds;
    tc "unwritable store directory" test_unwritable_store;
    tc "hostile process name rejected" test_bad_proc_name;
    tc "delta wire: smaller, base-checked, idempotent" test_delta_smaller_and_applies;
    tc "manifest truncation fuzz" test_manifest_truncation;
    tc "delta truncation + bit-flip fuzz" test_delta_truncation;
    tc "chunk file damage fuzz" test_chunk_file_damage;
    tc_slow "golden v3 manifests and deltas unchanged" test_golden_deltas;
  ]
