(** Wire-format codec unit tests (header, ident, prim encodings). *)

open Hpm_core
open Hpm_lang
open Hpm_machine
open Util

let test_header_roundtrip () =
  let b = Buffer.create 64 in
  Stream.put_header b ~src_arch:"dec5000" ~prog_hash:0x1234_5678_9abc_def0L
    ~rng_state:42L ~poll_id:7;
  let h = Stream.get_header (Hpm_xdr.Xdr.reader_of_string (Buffer.contents b)) in
  check_string "arch" "dec5000" h.Stream.src_arch;
  Alcotest.(check int64) "hash" 0x1234_5678_9abc_def0L h.Stream.prog_hash;
  Alcotest.(check int64) "rng" 42L h.Stream.rng_state;
  check_int "poll" 7 h.Stream.poll_id

let test_header_rejects () =
  let corrupt = function Stream.Corrupt _ -> true | _ -> false in
  expect_raise "bad magic" corrupt (fun () ->
      Stream.get_header (Hpm_xdr.Xdr.reader_of_string "NOPE1234567890123456789"));
  expect_raise "empty" corrupt (fun () ->
      Stream.get_header (Hpm_xdr.Xdr.reader_of_string ""));
  (* wrong version *)
  let b = Buffer.create 32 in
  Buffer.add_string b Stream.magic;
  Hpm_xdr.Xdr.put_u8 b 99;
  expect_raise "bad version" corrupt (fun () ->
      Stream.get_header (Hpm_xdr.Xdr.reader_of_string (Buffer.contents b)))

let ident_roundtrip i =
  let b = Buffer.create 16 in
  Stream.put_ident b i;
  Stream.get_ident (Hpm_xdr.Xdr.reader_of_string (Buffer.contents b))

let test_ident_codec () =
  check_bool "global" true (ident_roundtrip (Mem.Iglobal "first") = Mem.Iglobal "first");
  check_bool "local" true
    (ident_roundtrip (Mem.Ilocal (3, "parray")) = Mem.Ilocal (3, "parray"));
  check_bool "heap" true (ident_roundtrip Mem.Iheap = Mem.Iheap);
  check_bool "string" true (ident_roundtrip (Mem.Istring 9) = Mem.Istring 9)

let test_prim_codec () =
  let roundtrip k v =
    let b = Buffer.create 16 in
    Stream.put_prim b k v;
    Stream.get_prim (Hpm_xdr.Xdr.reader_of_string (Buffer.contents b)) k
  in
  check_bool "char" true (roundtrip Ty.KChar (Mem.Vint (-5L)) = Mem.Vint (-5L));
  check_bool "short" true (roundtrip Ty.KShort (Mem.Vint 1234L) = Mem.Vint 1234L);
  check_bool "int" true (roundtrip Ty.KInt (Mem.Vint (-100000L)) = Mem.Vint (-100000L));
  check_bool "long full width" true
    (roundtrip Ty.KLong (Mem.Vint 0x7fff_ffff_ffff_ffffL)
    = Mem.Vint 0x7fff_ffff_ffff_ffffL);
  check_bool "double" true (roundtrip Ty.KDouble (Mem.Vfloat 2.5) = Mem.Vfloat 2.5);
  expect_raise "pointer kinds are structured"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> roundtrip (Ty.KPtr Ty.Int) (Mem.Vptr 0L))

let test_canonical_widths () =
  check_int "char" 1 (Stream.canonical_width Ty.KChar);
  check_int "short" 2 (Stream.canonical_width Ty.KShort);
  check_int "int" 4 (Stream.canonical_width Ty.KInt);
  check_int "long is 8 on the wire" 8 (Stream.canonical_width Ty.KLong);
  check_int "float" 4 (Stream.canonical_width Ty.KFloat);
  check_int "double" 8 (Stream.canonical_width Ty.KDouble)

let test_prog_hash_stability () =
  let m1 = prepare (Hpm_workloads.Nqueens.source 5) in
  let m2 = prepare (Hpm_workloads.Nqueens.source 5) in
  let m3 = prepare (Hpm_workloads.Nqueens.source 6) in
  check_bool "same program, same hash" true
    (Int64.equal (Stream.prog_hash m1.Migration.prog) (Stream.prog_hash m2.Migration.prog));
  check_bool "different program, different hash" false
    (Int64.equal (Stream.prog_hash m1.Migration.prog) (Stream.prog_hash m3.Migration.prog));
  (* the poll strategy is part of the migratable format *)
  let m4 = prepare_user (Hpm_workloads.Nqueens.source 5) in
  check_bool "different annotation, different hash" false
    (Int64.equal (Stream.prog_hash m1.Migration.prog) (Stream.prog_hash m4.Migration.prog))

(* ---- golden v2 streams ----

   MD5 and length of the full migration stream for fixed workloads at
   fixed polls, captured from the pre-batch-encoder implementation.  Any
   change to these bytes is a wire-format break: the batch translators,
   buffer reuse, and the Mem interval index must all be invisible here.
   Regenerate (only for an INTENTIONAL format change) by printing
   [Digest.to_hex (Digest.string stream)] for each row. *)

let golden_streams =
  [
    ("jacobi", 40, 8, Hpm_arch.Arch.ultra5, "e467269955dc7ba665eaeb26cdd61c9c", 37071);
    ("jacobi", 40, 8, Hpm_arch.Arch.dec5000, "a0efc867c2fd406b752f1f1d1d25a6cf", 37072);
    ("hashtab", 2000, 6000, Hpm_arch.Arch.ultra5, "7df18cd4ca9ccf36545c299f1524a81c", 13951);
    ("bitonic", 3000, 6000, Hpm_arch.Arch.dec5000, "26d20dcc9a1a11f4336ebf21bb817e35", 13117);
    ("linpack", 100, 80, Hpm_arch.Arch.x86_64, "b2011c5a638c3f15e6892160e7f696e4", 82417);
    ("test_pointer", 0, 2, Hpm_arch.Arch.i386, "15046215b5a4ec8c431cd769d3a617e9", 316);
  ]

let test_golden_streams () =
  List.iter
    (fun (name, n, poll, arch, md5, len) ->
      let w = Hpm_workloads.Registry.find_exn name in
      let m = prepare (w.Hpm_workloads.Registry.source n) in
      let p, _ = suspend m arch poll in
      let stream, _ = Collect.collect ~epoch:3 p m.Migration.ti in
      check_int (Printf.sprintf "%s/%s length" name arch.Hpm_arch.Arch.name) len
        (String.length stream);
      check_string
        (Printf.sprintf "%s/%s md5" name arch.Hpm_arch.Arch.name)
        md5
        (Digest.to_hex (Digest.string stream)))
    golden_streams

let suite =
  [
    tc "header roundtrip" test_header_roundtrip;
    tc "header rejects corruption" test_header_rejects;
    tc "ident codec" test_ident_codec;
    tc "prim codec" test_prim_codec;
    tc "canonical widths" test_canonical_widths;
    tc "program fingerprint stability" test_prog_hash_stability;
    tc_slow "golden v2 streams unchanged" test_golden_streams;
  ]
