(** The observability layer: metrics registry, trace buffer, and the
    guarantees that matter — instrumentation is inert without a sink,
    deterministic with one, and the exported numbers are the same
    counters the stats records already carry. *)

open Hpm_core
open Hpm_net
open Util
module Obs = Hpm_obs.Obs

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
  go 0

let with_sinks f =
  Obs.reset ();
  let tr = Obs.Trace.create () and reg = Obs.Metrics.create () in
  Obs.set_trace (Some tr);
  Obs.set_metrics (Some reg);
  Fun.protect ~finally:Obs.reset (fun () -> f tr reg)

(* ---- metrics registry ---- *)

let test_metrics_basics () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.inc m "hpm_msrlt_searches_total" [];
  Obs.Metrics.inc m ~by:41.0 "hpm_msrlt_searches_total" [];
  check_bool "counter accumulates" true
    (Obs.Metrics.value m "hpm_msrlt_searches_total" [] = Some 42.0);
  check_bool "untouched series absent" true
    (Obs.Metrics.value m "hpm_msrlt_updates_total" [] = None);
  Obs.Metrics.set m "hpm_store_gc_live_chunks" [ ("proc", "p") ] 7.0;
  Obs.Metrics.set m "hpm_store_gc_live_chunks" [ ("proc", "p") ] 3.0;
  check_bool "gauge overwrites" true
    (Obs.Metrics.value m "hpm_store_gc_live_chunks" [ ("proc", "p") ] = Some 3.0);
  Obs.Metrics.observe m "hpm_handoff_time_seconds" [] 0.5;
  Obs.Metrics.observe m "hpm_handoff_time_seconds" [] 2.0;
  check_bool "histogram counts observations" true
    (Obs.Metrics.value m "hpm_handoff_time_seconds" [] = Some 2.0)

let test_label_canonicalisation () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.inc m "hpm_sched_spawns_total" [ ("b", "2"); ("a", "1") ];
  Obs.Metrics.inc m "hpm_sched_spawns_total" [ ("a", "1"); ("b", "2") ];
  check_bool "label order does not split the series" true
    (Obs.Metrics.value m "hpm_sched_spawns_total" [ ("b", "2"); ("a", "1") ] = Some 2.0);
  Obs.Metrics.inc m "hpm_sched_requests_total" [ ("k", "x"); ("k", "y") ];
  check_bool "duplicate keys: first occurrence wins" true
    (Obs.Metrics.value m "hpm_sched_requests_total" [ ("k", "x") ] = Some 1.0)

let test_render_deterministic () =
  let build order =
    let m = Obs.Metrics.create () in
    List.iter (fun (name, ls, v) -> Obs.Metrics.inc m ~by:v name ls) order;
    Obs.Metrics.render m
  in
  let series =
    [
      ("hpm_xdr_encoded_bytes_total", [], 10.0);
      ("hpm_msrlt_searches_total", [ ("proc", "a") ], 1.0);
      ("hpm_msrlt_searches_total", [ ("proc", "b") ], 2.0);
    ]
  in
  let r = build series in
  check_string "insertion order does not change the text" r (build (List.rev series));
  check_bool "TYPE line" true (contains r "# TYPE hpm_msrlt_searches_total counter");
  check_bool "HELP line" true (contains r "# HELP hpm_msrlt_searches_total");
  check_bool "labelled series" true (contains r "hpm_msrlt_searches_total{proc=\"a\"} 1")

let test_histogram_render () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.observe m "hpm_handoff_time_seconds" [] 0.05;
  Obs.Metrics.observe m "hpm_handoff_time_seconds" [] 5.0;
  let r = Obs.Metrics.render m in
  check_bool "buckets rendered" true
    (contains r "hpm_handoff_time_seconds_bucket{le=\"0.1\"} 1");
  check_bool "+Inf bucket" true (contains r "le=\"+Inf\"} 2");
  check_bool "sum rendered" true (contains r "hpm_handoff_time_seconds_sum 5.05");
  check_bool "count rendered" true (contains r "hpm_handoff_time_seconds_count 2")

let test_label_escaping () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.inc m "hpm_sched_spawns_total" [ ("proc", "a\"b\\c\nd") ];
  let r = Obs.Metrics.render m in
  check_bool "quote, backslash, and newline escaped" true
    (contains r "proc=\"a\\\"b\\\\c\\nd\"")

let test_fmt_float () =
  check_string "integral stays integral" "42" (Obs.fmt_float 42.0);
  check_string "zero" "0" (Obs.fmt_float 0.0);
  check_string "negative integral" "-3" (Obs.fmt_float (-3.0));
  check_string "fraction" "0.5" (Obs.fmt_float 0.5)

(* ---- trace buffer ---- *)

let test_trace_events_and_json () =
  let t = Obs.Trace.create () in
  Obs.Trace.emit_b t ~ts:0.0 ~cat:"handoff" "migration"
    ~args:[ ("epoch", Obs.Trace.I 1) ];
  Obs.Trace.emit_i t ~ts:0.5e-6 ~cat:"sched" "sched.spawned"
    ~args:[ ("proc", Obs.Trace.S "p") ];
  Obs.Trace.emit_e t ~ts:1e-6 "migration";
  check_int "three events" 3 (Obs.Trace.event_count t);
  (match Obs.Trace.events t with
  | [ b; i; e ] ->
      check_bool "emission order preserved" true
        (b.Obs.Trace.e_ph = 'B' && i.Obs.Trace.e_ph = 'i' && e.Obs.Trace.e_ph = 'E')
  | _ -> Alcotest.fail "wrong event list");
  let j = Obs.Trace.to_json t in
  check_bool "traceEvents wrapper" true (contains j "{\"traceEvents\":[");
  check_bool "microsecond timestamps" true (contains j "\"ts\":1,");
  check_bool "instants carry a scope" true (contains j "\"s\":\"t\"");
  check_bool "args serialized" true (contains j "\"args\":{\"epoch\":1}");
  check_bool "simulated-clock marker" true (contains j "\"clock\":\"simulated\"")

(* ---- guarded helpers are inert without sinks ---- *)

let test_inert_without_sinks () =
  Obs.reset ();
  check_bool "no sinks installed" true (not (Obs.on ()));
  Obs.inc "hpm_msrlt_searches_total" [];
  Obs.observe "hpm_handoff_time_seconds" [] 1.0;
  Obs.set_gauge "hpm_store_gc_live_chunks" [] 1.0;
  Obs.span_b ~ts:0.0 ~cat:"x" "x";
  Obs.span_e ~ts:0.0 "x";
  Obs.instant ~ts:0.0 ~cat:"x" "x";
  check_bool "still off, nothing recorded" true (not (Obs.on ()))

let test_ambient_labels () =
  with_sinks (fun _ reg ->
      Obs.set_labels [ ("proc", "p1") ];
      Obs.with_labels
        [ ("epoch", "3") ]
        (fun () -> Obs.inc "hpm_sched_checkpoints_total" []);
      check_bool "ambient + scoped labels applied" true
        (Obs.Metrics.value reg "hpm_sched_checkpoints_total"
           [ ("proc", "p1"); ("epoch", "3") ]
        = Some 1.0);
      Obs.inc "hpm_sched_checkpoints_total" [];
      check_bool "scoped labels popped" true
        (Obs.Metrics.value reg "hpm_sched_checkpoints_total" [ ("proc", "p1") ]
        = Some 1.0))

(* ---- end to end: an instrumented handoff ---- *)

let bitonic =
  lazy
    (Migration.prepare
       ((Hpm_workloads.Registry.find_exn "bitonic").Hpm_workloads.Registry.source 500))

let suspend m after =
  let p = Migration.start m Hpm_arch.Arch.dec5000 in
  Hpm_machine.Interp.request_migration_after p after;
  match Hpm_machine.Interp.run p with
  | Hpm_machine.Interp.RPolled _ -> p
  | _ -> Alcotest.fail "finished before the poll"

let run_handoff () =
  let m = Lazy.force bitonic in
  let src = suspend m 1500 in
  Handoff.execute ~channel:(Netsim.ethernet_10 ()) ~epoch:1 m src Hpm_arch.Arch.sparc20

let test_handoff_spans_and_metrics () =
  let res, phases, reg =
    with_sinks (fun tr reg ->
        let res = run_handoff () in
        let phases =
          List.map (fun e -> (e.Obs.Trace.e_ph, e.Obs.Trace.e_name)) (Obs.Trace.events tr)
        in
        (res, phases, reg))
  in
  let bs = List.filter_map (fun (ph, n) -> if ph = 'B' then Some n else None) phases in
  check_bool "span sequence follows the state machine" true
    (bs = [ "migration"; "collect"; "encode"; "transfer"; "restore"; "verify"; "commit" ]);
  check_int "every span closed"
    (List.length bs)
    (List.length (List.filter (fun (ph, _) -> ph = 'E') phases));
  match res.Handoff.outcome with
  | Handoff.Committed c ->
      let lab = [ ("arch_pair", "dec5000->sparc20"); ("epoch", "1") ] in
      let v n = Obs.Metrics.value reg n lab in
      check_bool "wire-byte metric equals transport stats" true
        (v "hpm_transport_wire_bytes_total"
        = Some (float_of_int c.Handoff.c_tstats.Transport.t_wire_bytes));
      check_bool "search metric equals collect stats" true
        (v "hpm_msrlt_searches_total"
        = Some (float_of_int c.Handoff.c_cstats.Cstats.c_searches));
      check_bool "update metric equals restore stats" true
        (v "hpm_msrlt_updates_total"
        = Some (float_of_int c.Handoff.c_rstats.Cstats.r_updates));
      check_bool "outcome counted" true
        (Obs.Metrics.value reg "hpm_handoff_outcomes_total"
           (("outcome", "committed") :: lab)
        = Some 1.0);
      check_bool "handoff time observed once" true
        (Obs.Metrics.value reg "hpm_handoff_time_seconds" lab = Some 1.0)
  | _ -> Alcotest.fail "handoff did not commit"

let test_handoff_trace_deterministic () =
  let j1 = with_sinks (fun tr _ -> ignore (run_handoff ()); Obs.Trace.to_json tr) in
  let j2 = with_sinks (fun tr _ -> ignore (run_handoff ()); Obs.Trace.to_json tr) in
  check_string "same-seed traces byte-identical" j1 j2

let test_timing_unchanged_by_instrumentation () =
  let t_of r =
    match r.Handoff.outcome with
    | Handoff.Committed c -> c.Handoff.c_time_s
    | _ -> Alcotest.fail "no commit"
  in
  Obs.reset ();
  let plain = t_of (run_handoff ()) in
  let traced = with_sinks (fun _ _ -> t_of (run_handoff ())) in
  check_bool "simulated protocol time identical with and without sinks" true
    (plain = traced)

(* Golden trace: MD5 of the Chrome-JSON export of one fixed instrumented
   handoff (bitonic:2000, dec5000→sparc20, epoch 1, clean 10 Mb/s link,
   trace sink only), captured from the pre-optimization implementation.
   The interval index, batch encoders, and buffer reuse must leave the
   simulated timeline — and therefore these bytes — untouched. *)
let test_golden_trace () =
  Obs.reset ();
  let tr = Obs.Trace.create () in
  Obs.set_trace (Some tr);
  Fun.protect ~finally:Obs.reset (fun () ->
      let m =
        Migration.prepare
          ((Hpm_workloads.Registry.find_exn "bitonic").Hpm_workloads.Registry.source 2000)
      in
      let p = Migration.start m Hpm_arch.Arch.dec5000 in
      Hpm_machine.Interp.request_migration_after p 6000;
      (match Hpm_machine.Interp.run p with
      | Hpm_machine.Interp.RPolled _ -> ()
      | _ -> Alcotest.fail "finished before the poll");
      ignore
        (Handoff.execute ~channel:(Netsim.ethernet_10 ()) ~epoch:1 m p
           Hpm_arch.Arch.sparc20);
      let j = Obs.Trace.to_json tr in
      check_int "trace length" 2368 (String.length j);
      check_string "trace md5" "b8861d2e7adf08e88e0ffff26bf585ee"
        (Digest.to_hex (Digest.string j)))

let suite =
  [
    tc "metrics counters, gauges, histograms" test_metrics_basics;
    tc "label canonicalisation" test_label_canonicalisation;
    tc "render is insertion-order independent" test_render_deterministic;
    tc "histogram exposition" test_histogram_render;
    tc "label escaping" test_label_escaping;
    tc "deterministic float formatting" test_fmt_float;
    tc "trace events and Chrome JSON" test_trace_events_and_json;
    tc "no sink, no effect" test_inert_without_sinks;
    tc "ambient and scoped labels" test_ambient_labels;
    tc "handoff spans and metric identities" test_handoff_spans_and_metrics;
    tc "handoff trace byte-identical across runs" test_handoff_trace_deterministic;
    tc "instrumentation never shifts protocol time" test_timing_unchanged_by_instrumentation;
    tc_slow "golden handoff trace unchanged" test_golden_trace;
  ]
