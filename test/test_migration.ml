(** End-to-end migration tests: the §4.1 heterogeneity claims.

    The oracle is *migrate-anywhere equivalence*: for any program and any
    poll event k, running with a migration at k produces exactly the
    output of an unmigrated run.  Full equivalence holds between machines
    with equal integer widths (the paper's DEC↔SPARC setting); across
    ILP32/LP64 it holds for programs whose [long] arithmetic stays in
    range (C itself promises no more). *)

open Hpm_core
open Util

let fst3 (a, _, _) = a

let workload name =
  let w = Hpm_workloads.Registry.find_exn name in
  w.Hpm_workloads.Registry.source w.Hpm_workloads.Registry.default_n

let equivalence_everywhere ?(polls = [ 0; 1; 5; 23; 77 ]) pairs name src =
  let m = prepare src in
  let ref_out, ref_ret, _ = Migration.run_plain m Hpm_arch.Arch.sparc20 in
  List.iter
    (fun (a, b) ->
      List.iter
        (fun k ->
          let o = Migration.run_migrating m ~src_arch:a ~dst_arch:b ~after_polls:k () in
          check_string
            (Printf.sprintf "%s %s->%s @%d" name a.Hpm_arch.Arch.name
               b.Hpm_arch.Arch.name k)
            ref_out o.Migration.output;
          check_bool (name ^ " return value") true
            (match (ref_ret, o.Migration.return_value) with
            | Some x, Some y -> Hpm_machine.Mem.value_equal x y
            | None, None -> true
            | _ -> false))
        polls)
    pairs

let test_same_width_all_workloads () =
  List.iter
    (fun (w : Hpm_workloads.Registry.t) ->
      equivalence_everywhere same_width_pairs w.Hpm_workloads.Registry.name
        (w.Hpm_workloads.Registry.source w.Hpm_workloads.Registry.default_n))
    Hpm_workloads.Registry.all

let test_cross_width_safe_workloads () =
  (* workloads whose long arithmetic stays within 32 bits, per the
     registry's [wide_safe] flag *)
  List.iter
    (fun (w : Hpm_workloads.Registry.t) ->
      equivalence_everywhere cross_width_pairs w.Hpm_workloads.Registry.name
        (w.Hpm_workloads.Registry.source w.Hpm_workloads.Registry.default_n))
    (List.filter
       (fun (w : Hpm_workloads.Registry.t) -> w.Hpm_workloads.Registry.wide_safe)
       Hpm_workloads.Registry.all)

let test_test_pointer_oracle () =
  (* the full §4.1 consistency checklist, on the destination machine:
     user-only polls, so the migration happens exactly at the program's
     "#pragma poll midpoint" between construction and verification *)
  let m = prepare_user (workload "test_pointer") in
  List.iter
    (fun (a, b) ->
      let o = Migration.run_migrating m ~src_arch:a ~dst_arch:b ~after_polls:0 () in
      check_bool "used the user poll" true o.Migration.migrated;
      check_string
        (Printf.sprintf "oracle %s->%s" a.Hpm_arch.Arch.name b.Hpm_arch.Arch.name)
        Hpm_workloads.Test_pointer.expected_output o.Migration.output)
    (same_width_pairs @ cross_width_pairs)

let test_no_duplication () =
  (* "all memory blocks and pointers are collected and restored without
     duplication": heap blocks restored = live heap blocks at migration *)
  let m = prepare (workload "bitonic") in
  let src = Migration.start m Hpm_arch.Arch.dec5000 in
  Hpm_machine.Interp.request_migration_after src 700;
  (match Hpm_machine.Interp.run src with
  | Hpm_machine.Interp.RPolled _ -> ()
  | _ -> Alcotest.fail "expected suspension");
  let live_heap =
    List.length
      (List.filter
         (fun (b : Hpm_machine.Mem.block) -> b.Hpm_machine.Mem.seg = Hpm_machine.Mem.Heap)
         (Hpm_machine.Mem.live_blocks src.Hpm_machine.Interp.mem))
  in
  let dst, report = Migration.migrate m src Hpm_arch.Arch.sparc20 in
  check_int "heap blocks moved once each" live_heap
    report.Migration.restore_stats.Cstats.r_heap_allocs;
  let dst_heap =
    List.length
      (List.filter
         (fun (b : Hpm_machine.Mem.block) -> b.Hpm_machine.Mem.seg = Hpm_machine.Mem.Heap)
         (Hpm_machine.Mem.live_blocks dst.Hpm_machine.Interp.mem))
  in
  check_int "destination heap equals source heap" live_heap dst_heap

let test_rng_state_travels () =
  (* rand() continues the same sequence on the destination machine *)
  let src =
    {|
int main() {
  int i;
  srand(99);
  for (i = 0; i < 5; i++) print_int(rand() % 1000);
  #pragma poll mid
  for (i = 0; i < 5; i++) print_int(rand() % 1000);
  return 0;
}
|}
  in
  let m = prepare_user src in
  let ref_out = fst3 (Migration.run_plain m Hpm_arch.Arch.ultra5) in
  let o =
    Migration.run_migrating m ~src_arch:Hpm_arch.Arch.x86_64
      ~dst_arch:Hpm_arch.Arch.dec5000 ()
  in
  check_string "rng sequence unbroken" ref_out o.Migration.output

let test_chained_migration () =
  (* A -> B -> C -> A: three hops through three layouts *)
  let m = prepare (workload "bitonic") in
  let p0 = Migration.start m Hpm_arch.Arch.dec5000 in
  Hpm_machine.Interp.request_migration_after p0 100;
  (match Hpm_machine.Interp.run p0 with
  | Hpm_machine.Interp.RPolled _ -> ()
  | _ -> Alcotest.fail "no suspension");
  let p1, _ = Migration.migrate m p0 Hpm_arch.Arch.x86_64 in
  Hpm_machine.Interp.request_migration_after p1 200;
  (match Hpm_machine.Interp.run p1 with
  | Hpm_machine.Interp.RPolled _ -> ()
  | _ -> Alcotest.fail "no second suspension");
  let p2, _ = Migration.migrate m p1 Hpm_arch.Arch.i386 in
  Hpm_machine.Interp.request_migration_after p2 300;
  (match Hpm_machine.Interp.run p2 with
  | Hpm_machine.Interp.RPolled _ -> ()
  | _ -> Alcotest.fail "no third suspension");
  let p3, _ = Migration.migrate m p2 Hpm_arch.Arch.sparc20 in
  (match Hpm_machine.Interp.run p3 with
  | Hpm_machine.Interp.RDone _ -> ()
  | _ -> Alcotest.fail "did not finish");
  let total =
    Hpm_machine.Interp.output p0 ^ Hpm_machine.Interp.output p1
    ^ Hpm_machine.Interp.output p2 ^ Hpm_machine.Interp.output p3
  in
  let ref_out = fst3 (Migration.run_plain m Hpm_arch.Arch.ultra5) in
  check_string "three-hop output" ref_out total

let test_migration_in_deep_recursion () =
  let src =
    {|
long sum_to(int n) {
  if (n == 0) return 0L;
  return (long)n + sum_to(n - 1);
}
int main() {
  print_long(sum_to(300));
  return 0;
}
|}
  in
  let m = prepare src in
  (* suspend deep inside the recursion: each call entry polls once *)
  let o =
    Migration.run_migrating m ~src_arch:Hpm_arch.Arch.dec5000
      ~dst_arch:Hpm_arch.Arch.sparc20 ~after_polls:250 ()
  in
  check_bool "migrated" true o.Migration.migrated;
  check_string "deep stack" "45150\n" o.Migration.output;
  (match o.Migration.report with
  | Some r ->
      check_bool "many frames collected" true (r.Migration.collect_stats.Cstats.c_frames > 200)
  | None -> Alcotest.fail "no report")

let test_wrong_program_rejected () =
  let m1 = prepare (workload "bitonic") in
  let m2 = prepare (workload "nqueens") in
  let p, _ = suspend m1 Hpm_arch.Arch.ultra5 10 in
  let data, _ = Collect.collect p m1.Migration.ti in
  expect_raise "fingerprint mismatch"
    (function Restore.Error _ -> true | _ -> false)
    (fun () -> Restore.restore m2.Migration.prog Hpm_arch.Arch.ultra5 m2.Migration.ti data)

let test_homogeneous_migration () =
  (* Table 1's setting: Ultra 5 to Ultra 5 must of course also work *)
  equivalence_everywhere ~polls:[ 0; 13 ]
    [ (Hpm_arch.Arch.ultra5, Hpm_arch.Arch.ultra5) ]
    "bitonic-homogeneous" (workload "bitonic")

(* ---- randomized chaos-graph property ---- *)

let chaos_template = format_of_string {|
struct gnode {
  int id;
  int mark;
  double w;
  struct gnode *out[3];
};

struct gnode *nodes[64];
long fp;

void visit(struct gnode *g, int pass, int depth) {
  int j;
  if (g == 0) return;
  if (g->mark == pass) return;
  if (depth > 40) return;
  g->mark = pass;
  fp = fp * 31L + (long)g->id + (long)depth;
  fp = fp %% 1000000007L;
  for (j = 0; j < 3; j++) visit(g->out[j], pass, depth + 1);
}

int main() {
  int i; int j; int r;
  int n;
  struct gnode *garbage;
  n = %d;
  srand(%d);
  fp = 0L;
  for (i = 0; i < n; i++) {
    nodes[i] = (struct gnode *) malloc(sizeof(struct gnode));
    nodes[i]->id = i;
    nodes[i]->mark = -1;
    nodes[i]->w = (double)i * 0.25;
    for (j = 0; j < 3; j++) nodes[i]->out[j] = 0;
    /* some garbage that is freed and never referenced again */
    if (i %% 5 == 0) {
      garbage = (struct gnode *) malloc(sizeof(struct gnode));
      free(garbage);
    }
  }
  for (i = 0; i < n; i++) {
    #pragma poll linking
    for (j = 0; j < 3; j++) {
      r = rand() %% (n + 1);
      if (r < n) nodes[i]->out[j] = nodes[r];
    }
  }
  for (i = 0; i < n; i++) {
    #pragma poll walking
    visit(nodes[i], i, 0);
  }
  print_long(fp);
  return 0;
}
|}

let chaos_src ~n ~seed = Printf.sprintf chaos_template n seed

let prop_chaos =
  qt ~count:25 "random shared/cyclic graphs migrate anywhere"
    QCheck.(triple (int_range 2 64) (int_range 0 10_000) (int_range 0 120))
    (fun (n, seed, after) ->
      let src = chaos_src ~n ~seed in
      let m = prepare_user src in
      let ref_out = fst3 (Migration.run_plain m Hpm_arch.Arch.ultra5) in
      List.for_all
        (fun (a, b) ->
          let o = Migration.run_migrating m ~src_arch:a ~dst_arch:b ~after_polls:after () in
          String.equal ref_out o.Migration.output)
        [ (Hpm_arch.Arch.dec5000, Hpm_arch.Arch.sparc20);
          (Hpm_arch.Arch.sparc20, Hpm_arch.Arch.i386) ])

let suite =
  [
    tc_slow "all workloads: same-width equivalence" test_same_width_all_workloads;
    tc_slow "safe workloads: cross-width equivalence" test_cross_width_safe_workloads;
    tc "test_pointer oracle on every pair" test_test_pointer_oracle;
    tc "no duplication of shared blocks" test_no_duplication;
    tc "rng state migrates" test_rng_state_travels;
    tc "chained three-hop migration" test_chained_migration;
    tc "migration in deep recursion" test_migration_in_deep_recursion;
    tc "wrong program rejected" test_wrong_program_rejected;
    tc "homogeneous migration (Table 1 setting)" test_homogeneous_migration;
    prop_chaos;
  ]
