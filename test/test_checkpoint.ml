(** Checkpoint / restart tests (heterogeneous checkpointing on top of the
    migration stream). *)

open Hpm_core
open Util

let tmpfile () = Filename.temp_file "hpm_ckpt" ".img"

let test_roundtrip_heterogeneous () =
  let m = prepare (Hpm_workloads.Bitonic.source 500) in
  let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.ultra5 in
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* save on a little-endian machine, resume on a big-endian one *)
      let before = Checkpoint.run_and_save m Hpm_arch.Arch.dec5000 ~after_polls:800 path in
      check_bool "file exists" true (Sys.file_exists path);
      check_bool "file non-trivial" true ((Unix.stat path).Unix.st_size > 1000);
      let after = Checkpoint.resume_and_finish m Hpm_arch.Arch.sparc20 path in
      check_string "resumed output completes the run" expected (before ^ after))

let test_resume_twice () =
  (* a checkpoint is immutable: it can restart any number of times, on
     different machines *)
  let m = prepare (Hpm_workloads.Nqueens.source 6) in
  let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.ultra5 in
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let before = Checkpoint.run_and_save m Hpm_arch.Arch.sparc20 ~after_polls:50 path in
      let a = Checkpoint.resume_and_finish m Hpm_arch.Arch.dec5000 path in
      let b = Checkpoint.resume_and_finish m Hpm_arch.Arch.i386 path in
      check_string "first restart" expected (before ^ a);
      check_string "second restart" expected (before ^ b))

let test_wrong_program () =
  let m1 = prepare (Hpm_workloads.Nqueens.source 6) in
  let m2 = prepare (Hpm_workloads.Bitonic.source 200) in
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let _ = Checkpoint.run_and_save m1 Hpm_arch.Arch.ultra5 ~after_polls:10 path in
      expect_raise "stale checkpoint rejected"
        (function Restore.Error _ -> true | _ -> false)
        (fun () -> Checkpoint.load m2 Hpm_arch.Arch.ultra5 path))

let test_corrupted_file () =
  let m = prepare (Hpm_workloads.Nqueens.source 6) in
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let _ = Checkpoint.run_and_save m Hpm_arch.Arch.ultra5 ~after_polls:10 path in
      (* truncate the file *)
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let data = really_input_string ic (n / 2) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc data;
      close_out oc;
      expect_raise "truncated checkpoint rejected"
        (function
          | Restore.Error _ | Stream.Corrupt _ | Hpm_xdr.Xdr.Underflow _ -> true
          | _ -> false)
        (fun () -> Checkpoint.load m Hpm_arch.Arch.ultra5 path))

let test_missing_file () =
  let m = prepare (Hpm_workloads.Nqueens.source 6) in
  expect_raise "missing file" (function Checkpoint.Error _ -> true | _ -> false)
    (fun () -> Checkpoint.load m Hpm_arch.Arch.ultra5 "/nonexistent/ckpt.img")

let test_truncation_fuzz () =
  (* exhaustive truncation sweep: EVERY prefix of a checkpoint file either
     restores fully (the whole file) or raises a typed error — never a
     crash, and never a silently partial process *)
  let m = prepare (Hpm_workloads.Nqueens.source 5) in
  let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.ultra5 in
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let before = Checkpoint.run_and_save m Hpm_arch.Arch.dec5000 ~after_polls:5 path in
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let n = String.length data in
      (* every prefix when the image is small; stride-with-boundaries
         otherwise (all tail positions, where truncation is subtlest) *)
      let cuts =
        if n <= 1500 then List.init n Fun.id
        else
          List.init (n / 3) (fun i -> i * 3)
          @ List.init (min 64 n) (fun i -> n - 1 - i)
      in
      List.iter
        (fun k ->
          let oc = open_out_bin path in
          output_string oc (String.sub data 0 k);
          close_out oc;
          match Checkpoint.load m Hpm_arch.Arch.sparc20 path with
          | _ -> Alcotest.failf "prefix of %d/%d bytes restored successfully" k n
          | exception
              ( Checkpoint.Error _ | Restore.Error _ | Stream.Corrupt _
              | Hpm_xdr.Xdr.Underflow _ ) ->
              ()
          | exception e ->
              Alcotest.failf "prefix of %d/%d bytes: untyped exception %s" k n
                (Printexc.to_string e))
        cuts;
      (* and the untruncated file still restores to a correct process *)
      let oc = open_out_bin path in
      output_string oc data;
      close_out oc;
      let after = Checkpoint.resume_and_finish m Hpm_arch.Arch.sparc20 path in
      check_string "full file restores" expected (before ^ after))

let suite =
  [
    tc "save little-endian, resume big-endian" test_roundtrip_heterogeneous;
    tc "one checkpoint, many restarts" test_resume_twice;
    tc "wrong program rejected" test_wrong_program;
    tc "corrupted file rejected" test_corrupted_file;
    tc "missing file" test_missing_file;
    tc_slow "truncation fuzz: every prefix rejected cleanly" test_truncation_fuzz;
  ]
