(** Continuous delta replication: warm standbys, the replication fault
    matrix (partition / drop / dup / reorder / crash-mid-apply /
    heartbeat loss / source crash per phase), promotion-on-failure with
    fencing, and exactly-once output throughout. *)

open Util
open Hpm_core
open Hpm_net
open Hpm_machine
open Hpm_store

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hpm_replica_%d_%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  if Sys.is_directory path then (
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path)
  else Sys.remove path

let with_store f =
  let dir = fresh_dir () in
  let st = Store.open_store dir in
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f st)

let workload name = (Hpm_workloads.Registry.find_exn name).Hpm_workloads.Registry.source

let dec = Hpm_arch.Arch.dec5000
let sparc = Hpm_arch.Arch.sparc20

(* A replica over [standbys] (name, arch) running the jacobi workload. *)
let make_replica ?config ?faults ?(n = 8) ?(standbys = [ ("sb0", sparc) ]) st =
  let m = prepare (workload "jacobi" n) in
  let expected, _, _ = Migration.run_plain m dec in
  let src, _ = suspend m dec 1 in
  let r =
    Replica.create ?config ?faults ~channel:(Netsim.ethernet_10 ())
      ~store:st ~proc:"j" ~standbys m src
  in
  (m, expected, r)

(* Finish the promoted interpreter and check combined output is exactly
   one plain run. *)
let check_exactly_once name expected (r : Replica.t) (pm : Replica.promotion) =
  let rest =
    match Interp.run pm.Replica.pm_interp with
    | Interp.RDone _ -> Interp.output pm.Replica.pm_interp
    | _ -> Alcotest.fail "promoted standby did not finish"
  in
  check_string name expected (Replica.released_output r ^ rest)

(* ---------------------------------------------------------------- *)
(* Streaming basics                                                  *)
(* ---------------------------------------------------------------- *)

let test_stream_ships_and_commits () =
  with_store (fun st ->
      let _m, _expected, r =
        make_replica st ~standbys:[ ("sb0", sparc); ("sb1", dec) ]
      in
      (match Replica.run r ~epochs:4 with
      | Replica.Streamed 4 -> ()
      | _ -> Alcotest.fail "expected 4 streamed epochs");
      check_int "store holds epochs 1..4" 4
        (List.length (Store.manifest_epochs st ~proc:"j"));
      List.iter
        (fun sb ->
          check_int
            (Printf.sprintf "%s caught up" sb.Replica.sb_name)
            4 sb.Replica.sb_epoch;
          check_int
            (Printf.sprintf "%s lag" sb.Replica.sb_name)
            0 (Replica.lag r sb);
          check_int
            (Printf.sprintf "%s applied each epoch once" sb.Replica.sb_name)
            4 sb.Replica.sb_applied;
          (* the standby's materialized state is byte-identical to the
             source's own checkpoint of the same epoch *)
          let mf = Store.load_manifest st ~proc:"j" ~epoch:4 in
          let from_store =
            Snapshot.materialize ~ti:_m.Migration.ti
              ~lookup:(Store.get_chunk st) mf
          in
          check_string
            (Printf.sprintf "%s state byte-identical" sb.Replica.sb_name)
            from_store
            (Replica.standby_stream r sb))
        (Replica.standbys r);
      (* incremental epochs ship less than the initial full snapshot *)
      let full, incr =
        List.fold_left
          (fun (f, i) e ->
            match e with
            | Replica.Ev_delta { ed_kind = `Full; ed_bytes; _ } -> (max f ed_bytes, i)
            | Replica.Ev_delta { ed_kind = `Delta; ed_bytes; _ } -> (f, max i ed_bytes)
            | _ -> (f, i))
          (0, 0) (Replica.events r)
      in
      check_bool "delta epochs ship less than the full epoch" true
        (incr > 0 && full > 0 && incr < full))

let test_source_finish_ends_stream () =
  with_store (fun st ->
      let _, expected, r = make_replica st ~n:4 in
      let rec drain () =
        match Replica.stream_epoch r with
        | Replica.Streamed _ -> drain ()
        | s -> s
      in
      (match drain () with
      | Replica.Source_finished -> ()
      | _ -> Alcotest.fail "stream should end with Source_finished");
      check_string "output exactly once on completion" expected (Replica.output r))

(* ---------------------------------------------------------------- *)
(* The replication fault matrix: every cell resolves to exactly-once  *)
(* ---------------------------------------------------------------- *)

(* Kill the source at its next stream attempt and promote; the promoted
   run must produce exactly one program's output. *)
let kill_and_promote r epochs =
  Replica.set_faults r
    (Some (Netsim.rep_faults ~crash_source_at:(Netsim.Rp_stream, epochs + 1) ()));
  (match Replica.stream_epoch r with
  | Replica.Source_crashed Netsim.Rp_stream -> ()
  | _ -> Alcotest.fail "expected a source crash");
  Replica.promote r

let matrix_cell name faults ?(config = Replica.default_config) ?(epochs = 3) () =
  with_store (fun st ->
      let _, expected, r = make_replica ~config ~faults st in
      (match Replica.run r ~epochs with
      | Replica.Streamed _ -> ()
      | _ -> Alcotest.fail (name ^ ": stream did not survive the fault"));
      let pm = kill_and_promote r epochs in
      check_int (name ^ ": promotion resumes at the newest durable epoch")
        (Replica.epoch r) pm.Replica.pm_epoch;
      check_exactly_once (name ^ ": exactly-once") expected r pm)

let test_cell_drop () =
  matrix_cell "drop" (Netsim.rep_faults ~drop:[ ("sb0", 2) ] ()) ();
  (* the gap surfaced and was answered with a full resync *)
  with_store (fun st ->
      let _, _, r =
        make_replica ~faults:(Netsim.rep_faults ~drop:[ ("sb0", 2) ] ()) st
      in
      ignore (Replica.run r ~epochs:3);
      let evs = Replica.events r in
      check_bool "gap recorded" true
        (List.exists (function Replica.Ev_gap _ -> true | _ -> false) evs);
      check_bool "resync served" true
        (List.exists (function Replica.Ev_resync _ -> true | _ -> false) evs);
      let sb = List.hd (Replica.standbys r) in
      check_int "standby converged" 3 sb.Replica.sb_epoch)

let test_cell_dup () =
  matrix_cell "dup" (Netsim.rep_faults ~dup:[ ("sb0", 2) ] ()) ();
  with_store (fun st ->
      let _, _, r =
        make_replica ~faults:(Netsim.rep_faults ~dup:[ ("sb0", 2) ] ()) st
      in
      ignore (Replica.run r ~epochs:3);
      let sb = List.hd (Replica.standbys r) in
      check_int "duplicate was a no-op" 1 sb.Replica.sb_dups;
      check_int "each epoch applied once" 3 sb.Replica.sb_applied)

let test_cell_reorder () =
  matrix_cell "reorder" (Netsim.rep_faults ~reorder:[ ("sb0", 2) ] ()) ();
  with_store (fun st ->
      let _, _, r =
        make_replica ~faults:(Netsim.rep_faults ~reorder:[ ("sb0", 2) ] ()) st
      in
      ignore (Replica.run r ~epochs:3);
      let evs = Replica.events r in
      (* epoch 3 arrived first (gap -> resync), then the held epoch-2
         delta landed as a duplicate: state never regressed *)
      check_bool "late delta was a duplicate" true
        (List.exists (function Replica.Ev_dup _ -> true | _ -> false) evs);
      let sb = List.hd (Replica.standbys r) in
      check_int "standby at the newest epoch" 3 sb.Replica.sb_epoch)

let test_cell_crash_apply () =
  matrix_cell "crash-apply" (Netsim.rep_faults ~crash_apply:[ ("sb0", 2) ] ()) ();
  with_store (fun st ->
      let _, _, r =
        make_replica ~faults:(Netsim.rep_faults ~crash_apply:[ ("sb0", 2) ] ()) st
      in
      ignore (Replica.run r ~epochs:3);
      let evs = Replica.events r in
      check_bool "standby crash recorded" true
        (List.exists (function Replica.Ev_standby_crash _ -> true | _ -> false) evs);
      check_bool "restart triggered a full resync" true
        (List.exists (function Replica.Ev_resync _ -> true | _ -> false) evs);
      let sb = List.hd (Replica.standbys r) in
      check_int "standby recovered to the newest epoch" 3 sb.Replica.sb_epoch)

let test_cell_partition_heals () =
  (* a short partition queues deltas in the outbox and flushes them in
     order once it heals *)
  let config = { Replica.default_config with Replica.miss_limit = 10 } in
  matrix_cell "partition"
    (Netsim.rep_faults ~partition:[ ("sb0", 2, 2) ] ())
    ~config ~epochs:5 ();
  with_store (fun st ->
      let _, _, r =
        make_replica ~config
          ~faults:(Netsim.rep_faults ~partition:[ ("sb0", 2, 2) ] ())
          st
      in
      ignore (Replica.run r ~epochs:5);
      let evs = Replica.events r in
      check_int "two epochs queued behind the partition" 2
        (List.length
           (List.filter (function Replica.Ev_partition _ -> true | _ -> false) evs));
      check_bool "no degrade within the outbox bound" false
        (List.exists (function Replica.Ev_degraded _ -> true | _ -> false) evs);
      let sb = List.hd (Replica.standbys r) in
      check_int "outbox flushed in order; standby converged" 5 sb.Replica.sb_epoch;
      check_int "nothing left in flight" 0 sb.Replica.sb_outbox_bytes)

let test_cell_partition_degrades () =
  (* a long partition overflows the bounded outbox: the subscriber
     degrades to store-only shipping instead of buffering unboundedly *)
  let config = { Replica.default_config with Replica.miss_limit = 99 } in
  with_store (fun st ->
      let _, expected, r =
        make_replica ~config
          ~faults:(Netsim.rep_faults ~partition:[ ("sb0", 2, 6) ] ())
          st
      in
      ignore (Replica.run r ~epochs:6);
      let sb = List.hd (Replica.standbys r) in
      check_bool "subscriber degraded" true (sb.Replica.sb_state = Replica.Sub_degraded);
      check_bool "degrade event recorded" true
        (List.exists
           (function Replica.Ev_degraded _ -> true | _ -> false)
           (Replica.events r));
      check_int "outbox was dropped, not grown" 0 sb.Replica.sb_outbox_bytes;
      check_bool "standby froze behind" true (sb.Replica.sb_epoch < 6);
      let frozen = sb.Replica.sb_epoch in
      (* the store kept shipping: promotion still resumes at the newest
         durable epoch and replays exactly once *)
      let pm = kill_and_promote r 6 in
      check_int "catch-up covered the degraded lag" (6 - frozen)
        pm.Replica.pm_catchup;
      check_int "resumed at the newest durable epoch" 6 pm.Replica.pm_epoch;
      check_exactly_once "degraded standby still exactly-once" expected r pm)

let test_cell_heartbeat_loss () =
  (* miss_limit consecutive heartbeat losses declare the standby lost *)
  with_store (fun st ->
      let _, expected, r =
        make_replica
          ~standbys:[ ("sb0", sparc); ("sb1", dec) ]
          ~faults:(Netsim.rep_faults ~lose_heartbeat:[ ("sb0", 2); ("sb0", 3) ] ())
          st
      in
      ignore (Replica.run r ~epochs:4);
      let sb0 = Replica.find_standby r "sb0" in
      let sb1 = Replica.find_standby r "sb1" in
      check_bool "sb0 declared lost" true (sb0.Replica.sb_state = Replica.Sub_lost);
      check_bool "loss event recorded" true
        (List.exists
           (function Replica.Ev_standby_lost _ -> true | _ -> false)
           (Replica.events r));
      check_int "sb1 unaffected" 4 sb1.Replica.sb_epoch;
      (* promotion prefers the freshest committed standby: sb1 *)
      let pm = kill_and_promote r 4 in
      check_string "freshest standby promoted" "sb1" pm.Replica.pm_sub;
      check_exactly_once "exactly-once past a lost standby" expected r pm)

let test_single_miss_recovers () =
  with_store (fun st ->
      let _, _, r =
        make_replica ~faults:(Netsim.rep_faults ~lose_heartbeat:[ ("sb0", 2) ] ()) st
      in
      ignore (Replica.run r ~epochs:4);
      let sb = List.hd (Replica.standbys r) in
      check_bool "one miss below the limit stays live" true
        (sb.Replica.sb_state = Replica.Sub_live);
      check_int "miss counter reset by the next heartbeat" 0 sb.Replica.sb_hb_misses)

(* ---------------------------------------------------------------- *)
(* Promotion race matrix: lag x crash phase                           *)
(* ---------------------------------------------------------------- *)

(* Hold sb0 [lag] epochs behind with a partition that never heals, crash
   the source during [phase], and check promotion is exactly-once. *)
let promotion_race ~lag ~phase () =
  with_store (fun st ->
      let epochs = 4 in
      let config =
        { Replica.default_config with Replica.miss_limit = 99; Replica.max_lag = 99;
          Replica.outbox_limit = 99 }
      in
      let faults =
        Netsim.rep_faults
          ?partition:(if lag > 0 then Some [ ("sb0", epochs - lag + 1, 99) ] else None)
          ()
      in
      let _, expected, r = make_replica ~config ~faults st in
      let sb = List.hd (Replica.standbys r) in
      match phase with
      | Netsim.Rp_stream ->
          ignore (Replica.run r ~epochs);
          check_int "standby lags as configured" lag (Replica.lag r sb);
          (match r.Replica.r_faults with
          | Some rf ->
              rf.Netsim.rp_crash_source_at <- Some (Netsim.Rp_stream, epochs + 1)
          | None -> assert false);
          (match Replica.stream_epoch r with
          | Replica.Source_crashed Netsim.Rp_stream -> ()
          | _ -> Alcotest.fail "expected a stream-phase crash");
          let pm = Replica.promote r in
          check_int "caught up from the store" lag pm.Replica.pm_catchup;
          check_int "resumed at the newest durable epoch" epochs pm.Replica.pm_epoch;
          check_exactly_once "stream-crash exactly-once" expected r pm;
          (* the old incarnation is fenced: a recovering source must
             discard itself *)
          (match Replica.source_recover r with
          | Replica.Recovery_fenced 2 -> ()
          | _ -> Alcotest.fail "recovering source should find the fence");
          expect_raise "fenced source cannot stream"
            (function Replica.Fenced 2 -> true | _ -> false)
            (fun () -> ignore (Replica.stream_epoch r))
      | Netsim.Rp_final_delta ->
          ignore (Replica.run r ~epochs);
          (match r.Replica.r_faults with
          | Some rf ->
              rf.Netsim.rp_crash_source_at <- Some (Netsim.Rp_final_delta, epochs + 1)
          | None -> assert false);
          (match Replica.migrate r ~sub:"sb0" with
          | Replica.Crashed_before_handoff Netsim.Rp_final_delta -> ()
          | _ -> Alcotest.fail "expected a final-delta crash");
          (* nothing of the final epoch became durable *)
          check_int "final epoch never committed" epochs (Replica.epoch r);
          let pm = Replica.promote r in
          check_int "resumed at the last committed epoch" epochs pm.Replica.pm_epoch;
          check_exactly_once "final-delta-crash exactly-once" expected r pm
      | Netsim.Rp_commit ->
          ignore (Replica.run r ~epochs);
          (* the commit-phase crash is the two-phase handoff's own cell:
             the destination already holds the final delta, the probe
             discovers the commit, and the migration stands *)
          let nf =
            Netsim.node_faults ~crash_source_after:Netsim.Ph_commit ()
          in
          (match Replica.migrate r ~faults:nf ~sub:"sb0" with
          | Replica.Migrated hres -> (
              match hres.Handoff.outcome with
              | Handoff.Committed c ->
                  check_bool "source crashed after commit" true
                    c.Handoff.c_src_crashed;
                  let rest =
                    match Interp.run c.Handoff.c_dst with
                    | Interp.RDone _ -> Interp.output c.Handoff.c_dst
                    | _ -> Alcotest.fail "destination did not finish"
                  in
                  check_string "commit-crash exactly-once" expected
                    (Replica.released_output r ^ rest)
              | _ -> Alcotest.fail "commit-phase crash must still commit")
          | _ -> Alcotest.fail "expected the migration to run"))

let test_promotion_races () =
  List.iter
    (fun lag ->
      List.iter
        (fun phase -> promotion_race ~lag ~phase ())
        Netsim.all_rep_phases)
    [ 0; 1; 3 ]

let test_promote_requires_committed_standby () =
  with_store (fun st ->
      let _, _, r = make_replica st in
      expect_raise "no committed standby"
        (function Store.Error _ -> true | _ -> false)
        (fun () -> ignore (Replica.promote r)))

(* ---------------------------------------------------------------- *)
(* Planned migration: final delta + two-phase handoff                 *)
(* ---------------------------------------------------------------- *)

let test_planned_migration_final_delta () =
  with_store (fun st ->
      let _, expected, r = make_replica st in
      ignore (Replica.run r ~epochs:3);
      match Replica.migrate r ~sub:"sb0" with
      | Replica.Migrated { Handoff.outcome = Handoff.Committed c; _ } ->
          (* no stop-the-world collect: the final delta is much smaller
             than the standby's full state *)
          let full_bytes =
            match List.hd (Replica.standbys r) with
            | sb -> String.length (Replica.standby_stream r sb)
          in
          let final_bytes =
            List.fold_left
              (fun acc e ->
                match e with
                | Replica.Ev_store { es_epoch = 4; es_bytes } -> es_bytes
                | _ -> acc)
              0 (Replica.events r)
          in
          check_bool
            (Printf.sprintf "final delta %dB < full state %dB" final_bytes full_bytes)
            true
            (final_bytes > 0 && final_bytes < full_bytes);
          check_int "store's newest durable point is the final epoch" 4
            (Replica.epoch r);
          let rest =
            match Interp.run c.Handoff.c_dst with
            | Interp.RDone _ -> Interp.output c.Handoff.c_dst
            | _ -> Alcotest.fail "destination did not finish"
          in
          check_string "planned migration exactly-once" expected
            (Replica.released_output r ^ rest)
      | _ -> Alcotest.fail "planned migration did not commit")

(* ---------------------------------------------------------------- *)
(* Determinism: same seed, same trace                                 *)
(* ---------------------------------------------------------------- *)

let trace_of r =
  String.concat "\n" (List.map (Fmt.str "%a" Replica.pp_event) (Replica.events r))

let test_deterministic_traces () =
  let run_once () =
    with_store (fun st ->
        let faults =
          Netsim.rep_faults ~drop:[ ("sb0", 2) ] ~dup:[ ("sb1", 3) ]
            ~lose_heartbeat:[ ("sb1", 2) ] ()
        in
        let _, _, r =
          make_replica ~faults ~standbys:[ ("sb0", sparc); ("sb1", dec) ] st
        in
        ignore (Replica.run r ~epochs:4);
        let pm = kill_and_promote r 4 in
        (trace_of r, pm.Replica.pm_sub, Replica.time_s r))
  in
  let t1, s1, d1 = run_once () in
  let t2, s2, d2 = run_once () in
  check_string "same seed, same event trace" t1 t2;
  check_string "same promotion choice" s1 s2;
  check_bool "same simulated time" true (d1 = d2)

(* ---------------------------------------------------------------- *)
(* QCheck: out-of-order / duplicate / gapped delta sequences          *)
(* ---------------------------------------------------------------- *)

(* Pre-compute one lineage of delta wires (and reference checkpoints)
   by streaming a real replica, reading the deltas back from the store. *)
let lineage =
  lazy
    (let dir = fresh_dir () in
     let st = Store.open_store dir in
     let m = prepare (workload "jacobi" 8) in
     let src, _ = suspend m dec 1 in
     let r =
       Replica.create ~channel:(Netsim.ethernet_10 ()) ~store:st ~proc:"j"
         ~standbys:[ ("sb0", sparc) ] m src
     in
     ignore (Replica.run r ~epochs:5);
     let wires =
       List.map
         (fun e ->
           let mf = Store.load_manifest st ~proc:"j" ~epoch:e in
           let base =
             if e = 1 then None
             else Some (Store.load_manifest st ~proc:"j" ~epoch:(e - 1))
           in
           (e, Store.encode_delta ?base ~lookup:(Store.get_chunk st) mf))
         (Store.manifest_epochs st ~proc:"j")
     in
     let refs =
       List.map
         (fun e ->
           let mf = Store.load_manifest st ~proc:"j" ~epoch:e in
           (e, Snapshot.materialize ~ti:m.Migration.ti ~lookup:(Store.get_chunk st) mf))
         (Store.manifest_epochs st ~proc:"j")
     in
     (m, wires, refs))

let prop_fuzz_delta_sequences =
  qt ~count:200 "fuzz: any delta sequence leaves byte-identical state or typed resync"
    QCheck.(list_of_size (Gen.int_range 0 12) (int_bound 20))
    (fun picks ->
      let m, wires, refs = Lazy.force lineage in
      let n = List.length wires in
      let sb = Replica.fresh_standby ~arch:sparc "fz" in
      List.iter
        (fun i ->
          let _, wire = List.nth wires (i mod n) in
          match Replica.standby_apply sb wire with
          | Replica.Applied _ | Replica.Duplicate -> ()
          | Replica.Resync_required { rr_have; _ } ->
              (* typed resync: the standby still reports the newest state
                 it holds, and that state (if any) is intact *)
              assert (rr_have = sb.Replica.sb_epoch))
        picks;
      (* invariant: whatever was applied, the standby's materialized
         state is byte-identical to the source's checkpoint of exactly
         that epoch *)
      match sb.Replica.sb_manifest with
      | None -> true
      | Some mf ->
          let reference = List.assoc mf.Store.mf_epoch refs in
          let got =
            Snapshot.materialize ~ti:m.Migration.ti
              ~lookup:(fun h -> Hashtbl.find sb.Replica.sb_chunks h)
              mf
          in
          String.equal reference got)

(* ---------------------------------------------------------------- *)
(* Store pins: GC must not eat an in-flight delta's base              *)
(* ---------------------------------------------------------------- *)

let test_pin_protects_delta_base () =
  with_store (fun st ->
      let m = prepare (workload "jacobi" 8) in
      let src, _ = suspend m dec 1 in
      let cache = Snapshot.new_cache () in
      let mf1, ch1, st1 = Snapshot.collect ~epoch:1 ~proc:"p" ~cache src m.Migration.ti in
      Snapshot.persist st mf1 ch1 st1;
      (* the delta for epoch 2 is in flight: its wire is encoded but not
         yet applied, and nothing else references epoch 1 *)
      Interp.request_migration_after src 0;
      ignore (Interp.run src);
      let mf2, ch2, _ = Snapshot.collect ~epoch:2 ~proc:"p" ~cache src m.Migration.ti in
      Hashtbl.iter (Hashtbl.replace ch1) ch2;
      let wire2 =
        Store.encode_delta ~base:mf1 ~lookup:(Hashtbl.find ch1) mf2
      in
      (* without a pin, retain+gc would collect epoch-1-only chunks and
         the in-flight application could never materialize its manifest *)
      Store.pin st (Store.manifest_hashes mf1);
      let removed_mfs = Store.retain st ~proc:"p" ~keep:0 in
      check_bool "retain dropped the old manifest" true (removed_mfs > 0);
      let g = Store.gc st in
      check_bool "gc kept the pinned base chunks" true (g.Store.gc_pinned_chunks > 0);
      check_int "nothing pinned was collected" 0 g.Store.gc_reclaimed_chunks;
      (* the in-flight delta now applies and materializes *)
      let applied = Store.apply st ~expect_base:mf1 wire2 in
      check_int "delta applied against the pinned base" 2 applied.Store.mf_epoch;
      Store.unpin st (Store.manifest_hashes mf1);
      check_int "pin table drained" 0 (Store.pinned_chunks st);
      (* with the pin gone (and epoch 2 the only retained manifest), the
         epoch-1-only chunks are collectable *)
      ignore (Store.retain st ~proc:"p" ~keep:1);
      ignore (Store.gc st))

let test_pin_released_on_crash () =
  with_store (fun st ->
      let m = prepare (workload "jacobi" 8) in
      let src, _ = suspend m dec 1 in
      let mf, ch, sts = Snapshot.collect ~epoch:1 ~proc:"p" src m.Migration.ti in
      Snapshot.persist st mf ch sts;
      (* a crash in the middle of the pinned window must not leak pins *)
      (try
         Store.with_pins st (Store.manifest_hashes mf) (fun () ->
             check_bool "pins held inside the window" true
               (Store.pinned_chunks st > 0);
             failwith "injected crash")
       with Failure _ -> ());
      check_int "crash released every pin" 0 (Store.pinned_chunks st))

let test_apply_is_pinned_against_gc () =
  (* Replica streaming holds retention pins for the newest manifest and
     every standby base: an operator retain+gc between epochs cannot
     break a later catch-up or resync *)
  with_store (fun st ->
      let _, expected, r = make_replica st in
      ignore (Replica.run r ~epochs:2);
      check_bool "subscription holds retention pins" true
        (Store.pinned_chunks st > 0);
      ignore (Store.retain st ~proc:"j" ~keep:1);
      let g = Store.gc st in
      check_bool "gc ran with pins live" true (g.Store.gc_pinned_chunks >= 0);
      ignore (Replica.run r ~epochs:2);
      let pm = kill_and_promote r 4 in
      check_exactly_once "gc between epochs stays exactly-once" expected r pm;
      Replica.close r;
      check_int "close releases the retention pins" 0 (Store.pinned_chunks st))

let suite =
  [
    tc "stream: ships, commits, standbys byte-identical" test_stream_ships_and_commits;
    tc "stream: source completion ends the stream" test_source_finish_ends_stream;
    tc "matrix: delta drop -> gap -> resync" test_cell_drop;
    tc "matrix: duplicate delta is a no-op" test_cell_dup;
    tc "matrix: reordered delta never regresses state" test_cell_reorder;
    tc "matrix: standby crash mid-apply resyncs" test_cell_crash_apply;
    tc "matrix: short partition queues and flushes" test_cell_partition_heals;
    tc "matrix: long partition degrades to store-only" test_cell_partition_degrades;
    tc "matrix: heartbeat loss declares the standby lost" test_cell_heartbeat_loss;
    tc "matrix: a single miss recovers" test_single_miss_recovers;
    tc_slow "promotion races: lag {0,1,3} x crash {stream,final-delta,commit}"
      test_promotion_races;
    tc "promotion: requires a committed standby" test_promote_requires_committed_standby;
    tc "planned migration: final delta only, no stop-the-world" test_planned_migration_final_delta;
    tc "determinism: same seed, same trace" test_deterministic_traces;
    prop_fuzz_delta_sequences;
    tc "store: pin protects an in-flight delta base from gc" test_pin_protects_delta_base;
    tc "store: crash inside the pin window releases pins" test_pin_released_on_crash;
    tc "store: gc during a live subscription stays exactly-once" test_apply_is_pinned_against_gc;
  ]
