(** Failure injection: corrupted and truncated migration streams must be
    rejected cleanly (never build a half-restored process silently), and
    collection must refuse states it cannot represent faithfully. *)

open Hpm_core
open Util

let bitonic_stream () =
  let w = Hpm_workloads.Registry.find_exn "bitonic" in
  let m = prepare (w.Hpm_workloads.Registry.source 200) in
  let p, _ = suspend m Hpm_arch.Arch.dec5000 300 in
  let data, _ = Collect.collect p m.Migration.ti in
  (m, data)

let restore_raises m data =
  match Restore.restore m.Migration.prog Hpm_arch.Arch.sparc20 m.Migration.ti data with
  | _ -> false
  | exception (Restore.Error _ | Stream.Corrupt _ | Hpm_xdr.Xdr.Underflow _) -> true
  | exception (Hpm_machine.Mem.Fault _ | Hpm_machine.Interp.Trap _) -> true

let test_truncation () =
  let m, data = bitonic_stream () in
  let n = String.length data in
  (* every prefix class: header, frame metadata, mid-data, missing trailer *)
  List.iter
    (fun k ->
      let cut = String.sub data 0 k in
      check_bool (Printf.sprintf "truncated to %d rejected" k) true (restore_raises m cut))
    [ 0; 1; 3; 10; 40; n / 4; n / 2; n - 5; n - 1 ]

let test_bitflips () =
  let m, data = bitonic_stream () in
  let n = String.length data in
  let flipped i =
    let b = Bytes.of_string data in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    Bytes.to_string b
  in
  (* a flip may hit pure payload (a float changes value but the stream
     stays well-formed) — count how many of a sample are caught; all
     structural positions must be *)
  check_bool "magic flip" true (restore_raises m (flipped 0));
  check_bool "version flip" true (restore_raises m (flipped 4));
  let caught = ref 0 and total = ref 0 in
  let rec sample i =
    if i < n then (
      incr total;
      if restore_raises m (flipped i) then incr caught;
      sample (i + 97))
  in
  sample 5;
  check_bool "structural flips detected" true (!caught * 2 > !total)

let test_garbage () =
  let m, _ = bitonic_stream () in
  check_bool "random bytes rejected" true (restore_raises m "this is not a stream");
  check_bool "empty rejected" true (restore_raises m "")

let test_trailing_junk () =
  let m, data = bitonic_stream () in
  check_bool "trailing junk rejected" true (restore_raises m (data ^ "extra"))

let test_collect_not_suspended () =
  let m, _ = bitonic_stream () in
  let p = Migration.start m Hpm_arch.Arch.ultra5 in
  (* fresh process: pc at entry, not after a poll *)
  expect_raise "collect fresh process" (function Collect.Error _ -> true | _ -> false)
    (fun () -> Collect.collect p m.Migration.ti);
  let p2 = Migration.start m Hpm_arch.Arch.ultra5 in
  ignore (Hpm_machine.Interp.run_to_completion p2);
  expect_raise "collect finished process" (function Collect.Error _ -> true | _ -> false)
    (fun () -> Collect.collect p2 m.Migration.ti)

let test_live_dangling_pointer_refused () =
  (* a dangling pointer that is live at the poll cannot be collected *)
  let src =
    {|
int main() {
  int *p;
  p = (int *) malloc(sizeof(int));
  *p = 5;
  free(p);
  #pragma poll here
  print_int(*p);
  return 0;
}
|}
  in
  (* the static lint would reject this at prepare time (HPM-E102); opt
     out to prove the *runtime* collection guard also catches it *)
  let m =
    Migration.prepare ~strategy:Hpm_ir.Pollpoint.user_only_strategy ~lint:false src
  in
  let p, _ = suspend m Hpm_arch.Arch.ultra5 0 in
  expect_raise "dangling live pointer" (function Collect.Error _ -> true | _ -> false)
    (fun () -> Collect.collect p m.Migration.ti)

let test_dead_dangling_pointer_ok () =
  (* the same dangling pointer, dead at the poll: liveness excludes it and
     migration succeeds (this is why the pre-compiler's analysis matters) *)
  let src =
    {|
int main() {
  int *p;
  p = (int *) malloc(sizeof(int));
  *p = 5;
  free(p);
  #pragma poll here
  print_int(7);
  return 0;
}
|}
  in
  let m = prepare_user src in
  let o =
    Migration.run_migrating m ~src_arch:Hpm_arch.Arch.ultra5
      ~dst_arch:Hpm_arch.Arch.dec5000 ()
  in
  check_bool "migrated" true o.Migration.migrated;
  check_string "output" "7\n" o.Migration.output

(* ---- targeted header-field corruption (not just random flips) ---- *)

let patched data off bytes =
  let b = Bytes.of_string data in
  String.iteri (fun i c -> Bytes.set b (off + i) c) bytes;
  Bytes.to_string b

(* header layout: magic(4) version(1) src-arch(i32 len + bytes) hash(8) *)
let version_off = 4
let hash_off data =
  let r = Hpm_xdr.Xdr.reader_of_string data in
  let h = Stream.get_header r in
  5 + 4 + String.length h.Stream.src_arch

let test_wrong_version_byte () =
  let m, data = bitonic_stream () in
  (* every wrong version number, not only a bit-flip of the current one *)
  List.iter
    (fun v ->
      if v <> Stream.version then
        check_bool
          (Printf.sprintf "version byte %d rejected" v)
          true
          (restore_raises m (patched data version_off (String.make 1 (Char.chr v)))))
    [ 0; 2; 3; 127; 255 ]

let test_wrong_prog_hash () =
  let m, data = bitonic_stream () in
  let off = hash_off data in
  (* flip each byte of the fingerprint in turn: every one must matter *)
  for i = 0 to 7 do
    let orig = data.[off + i] in
    let patch = String.make 1 (Char.chr (Char.code orig lxor 0x01)) in
    check_bool
      (Printf.sprintf "prog-hash byte %d rejected" i)
      true
      (restore_raises m (patched data (off + i) patch))
  done

let test_wrong_trailer_magic () =
  let m, data = bitonic_stream () in
  let n = String.length data in
  check_bool "trailer magic rejected" true (restore_raises m (patched data (n - 4) "XEND"));
  (* single-character damage anywhere in the trailer is caught too *)
  for i = 1 to 4 do
    check_bool
      (Printf.sprintf "trailer byte %d rejected" i)
      true
      (restore_raises m (patched data (n - i) "?"))
  done

let test_netsim_fault_injection_path () =
  (* the whole pipeline through the simulated network with faults *)
  let m, data = bitonic_stream () in
  let ch = Hpm_net.Netsim.ethernet_10 () in
  let delivered, _ = Hpm_net.Netsim.send ~fault:(Hpm_net.Netsim.Truncate 50) ch data in
  check_bool "truncated in flight rejected" true (restore_raises m delivered);
  let delivered2, _ = Hpm_net.Netsim.send ch data in
  check_bool "clean delivery restores" false (restore_raises m delivered2)

let suite =
  [
    tc "truncated streams rejected" test_truncation;
    tc "bit flips detected" test_bitflips;
    tc "garbage rejected" test_garbage;
    tc "trailing junk rejected" test_trailing_junk;
    tc "wrong version byte rejected" test_wrong_version_byte;
    tc "wrong prog-hash rejected" test_wrong_prog_hash;
    tc "wrong trailer magic rejected" test_wrong_trailer_magic;
    tc "collecting a non-suspended process fails" test_collect_not_suspended;
    tc "live dangling pointer refused" test_live_dangling_pointer_refused;
    tc "dead dangling pointer tolerated" test_dead_dangling_pointer_ok;
    tc "faults injected on the wire" test_netsim_fault_injection_path;
  ]
