(** Cross-architecture conformance matrix — the systematic version of
    the spot checks in [Test_migration], gated by the {!Portability}
    compatibility verdict.

    Every registry workload is checked across *every* ordered pair of
    the eight architecture profiles (self-pairs included: Table 1's
    homogeneous setting) at an early, middle, and late poll point, with
    the per-pair verdict from {!Hpm_core.Compat} deciding what each cell
    must prove:

    - [Illegal]: the pre-compiler gate refuses the pair up front —
      [Migration.prepare ~require_compat] must raise [Diag.Rejected]
      (and the cell does not migrate);
    - [Legal] on an execution-equivalent pair: migration must be
      semantically invisible — combined output and return value equal an
      unmigrated run on the source machine, byte for byte;
    - [Lossy], or [Legal] across an execution-semantics boundary (see
      below): the migration must still complete into a normal exit.

    Execution-equivalence caveat, faithful to C: the verdict judges the
    {e collected data} at the poll, not the instructions executed after
    restore.  A workload whose [long] arithmetic overflows 32 bits
    behaves width-dependently, and any double arithmetic behaves
    precision-dependently across a [double_f32] boundary — in both cases
    the destination legitimately computes different (still correct-to-C)
    values downstream, so the byte-for-byte oracle applies only when the
    pair agrees on those execution axes (or the workload is insensitive
    to them). *)

open Hpm_core
open Util

let arch_pairs =
  List.concat_map (fun a -> List.map (fun b -> (a, b)) arches) arches

(* early / middle / late migration points; a workload that finishes
   before a point simply completes on the source machine, and the
   equality oracle still applies to that cell *)
let poll_points = [ 0; 19; 67 ]

let width_compatible (a : Hpm_arch.Arch.t) (b : Hpm_arch.Arch.t) =
  a.Hpm_arch.Arch.long_size = b.Hpm_arch.Arch.long_size
  && a.Hpm_arch.Arch.ptr_size = b.Hpm_arch.Arch.ptr_size

(* Does the pair execute doubles identically?  A [double_f32] machine
   rounds every double store, so code running after the migration
   produces different values than the all-source reference unless the
   workload computes no doubles at all. *)
let fp_compatible ~(uses_double : bool) (a : Hpm_arch.Arch.t) (b : Hpm_arch.Arch.t) =
  (not uses_double) || a.Hpm_arch.Arch.double_f32 = b.Hpm_arch.Arch.double_f32

let prog_uses_double (prog : Hpm_ir.Ir.prog) =
  let dbl ty = ty = Hpm_lang.Ty.Double in
  List.exists (fun (_, ty, _) -> dbl ty) prog.Hpm_ir.Ir.globals
  || List.exists
       (fun (f : Hpm_ir.Ir.func) ->
         List.exists (fun (_, ty) -> dbl ty) f.Hpm_ir.Ir.params
         || List.exists (fun (_, ty) -> dbl ty) f.Hpm_ir.Ir.locals
         || dbl f.Hpm_ir.Ir.ret)
       prog.Hpm_ir.Ir.funcs

let cell_name w (a : Hpm_arch.Arch.t) (b : Hpm_arch.Arch.t) k =
  Printf.sprintf "%s %s->%s @%d" w a.Hpm_arch.Arch.name b.Hpm_arch.Arch.name k

let run_matrix_for (w : Hpm_workloads.Registry.t) () =
  let name = w.Hpm_workloads.Registry.name in
  let src = w.Hpm_workloads.Registry.source w.Hpm_workloads.Registry.default_n in
  let m = prepare src in
  let compat = Compat.create m.Migration.prog m.Migration.polls in
  let uses_double = prog_uses_double m.Migration.prog in
  (* one reference output per source machine; equal-width machines agree,
     so the src-arch reference is the right oracle for every exact cell *)
  let refs = Hashtbl.create 8 in
  let ref_on (a : Hpm_arch.Arch.t) =
    match Hashtbl.find_opt refs a.Hpm_arch.Arch.name with
    | Some r -> r
    | None ->
        let out, ret, _ = Migration.run_plain m a in
        Hashtbl.add refs a.Hpm_arch.Arch.name (out, ret);
        (out, ret)
  in
  let cells = ref 0 and exact = ref 0 and rejected = ref 0 in
  List.iter
    (fun (a, b) ->
      match Compat.verdict compat ~src:a ~dst:b with
      | Hpm_ir.Portability.Illegal ->
          (* the pre-compiler gate must refuse the pair outright *)
          expect_raise
            (cell_name name a b 0 ^ " rejected")
            (function Hpm_ir.Diag.Rejected _ -> true | _ -> false)
            (fun () -> Migration.prepare ~require_compat:(a, b) src);
          cells := !cells + List.length poll_points;
          rejected := !rejected + List.length poll_points
      | (Hpm_ir.Portability.Legal | Hpm_ir.Portability.Lossy) as v ->
          List.iter
            (fun k ->
              incr cells;
              let o =
                Migration.run_migrating m ~src_arch:a ~dst_arch:b ~after_polls:k ()
              in
              let exec_equiv =
                (width_compatible a b || w.Hpm_workloads.Registry.wide_safe)
                && fp_compatible ~uses_double a b
              in
              if v = Hpm_ir.Portability.Legal && exec_equiv then (
                incr exact;
                let ref_out, ref_ret = ref_on a in
                check_string (cell_name name a b k) ref_out o.Migration.output;
                check_bool (cell_name name a b k ^ " return") true
                  (match (ref_ret, o.Migration.return_value) with
                  | Some x, Some y -> Hpm_machine.Mem.value_equal x y
                  | None, None -> true
                  | _ -> false))
              else
                (* lossy pair, or legal data across an execution-semantics
                   boundary: the migration must still complete normally *)
                check_bool
                  (cell_name name a b k ^ " completes")
                  true
                  (o.Migration.return_value <> None
                  || String.length o.Migration.output > 0))
            poll_points)
    arch_pairs;
  (* the matrix really is total: 8x8 ordered pairs x 3 poll points *)
  check_int (name ^ " cells") (8 * 8 * List.length poll_points) !cells;
  (* every workload is at least legal on the diagonal *)
  check_bool (name ^ " some exact cells") true (!exact > 0);
  if w.Hpm_workloads.Registry.wide_safe && not uses_double then
    check_int (name ^ " no rejections") 0 !rejected

(* one test case per workload so a failure names its workload and the
   suite parallelizes naturally *)
let suite =
  List.map
    (fun (w : Hpm_workloads.Registry.t) ->
      tc_slow ("matrix " ^ w.Hpm_workloads.Registry.name) (run_matrix_for w))
    Hpm_workloads.Registry.all
