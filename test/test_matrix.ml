(** Cross-architecture conformance matrix — the systematic version of
    the spot checks in [Test_migration].

    Every registry workload is migrated across *every* ordered pair of
    the five architecture profiles (self-pairs included: Table 1's
    homogeneous setting) at an early, middle, and late poll point.  The
    oracle is the §4.1 consistency criterion: combined output equals an
    unmigrated run on the source machine.

    Width caveat, faithful to C: a workload whose [long] arithmetic
    overflows 32 bits is width-dependent, so when such a workload crosses
    an ILP32/LP64 boundary the byte-for-byte oracle does not apply —
    those cells instead assert that the migration itself completes and
    the process runs to a normal exit (no cell may crash, whatever the
    pair). *)

open Hpm_core
open Util

let arch_pairs =
  List.concat_map (fun a -> List.map (fun b -> (a, b)) arches) arches

(* early / middle / late migration points; a workload that finishes
   before a point simply completes on the source machine, and the
   equality oracle still applies to that cell *)
let poll_points = [ 0; 19; 67 ]

let width_compatible (a : Hpm_arch.Arch.t) (b : Hpm_arch.Arch.t) =
  a.Hpm_arch.Arch.long_size = b.Hpm_arch.Arch.long_size
  && a.Hpm_arch.Arch.ptr_size = b.Hpm_arch.Arch.ptr_size

let cell_name w (a : Hpm_arch.Arch.t) (b : Hpm_arch.Arch.t) k =
  Printf.sprintf "%s %s->%s @%d" w a.Hpm_arch.Arch.name b.Hpm_arch.Arch.name k

let run_matrix_for (w : Hpm_workloads.Registry.t) () =
  let name = w.Hpm_workloads.Registry.name in
  let m = prepare (w.Hpm_workloads.Registry.source w.Hpm_workloads.Registry.default_n) in
  (* one reference output per source machine; equal-width machines agree,
     so the src-arch reference is the right oracle for every exact cell *)
  let refs = Hashtbl.create 5 in
  let ref_on (a : Hpm_arch.Arch.t) =
    match Hashtbl.find_opt refs a.Hpm_arch.Arch.name with
    | Some r -> r
    | None ->
        let out, ret, _ = Migration.run_plain m a in
        Hashtbl.add refs a.Hpm_arch.Arch.name (out, ret);
        (out, ret)
  in
  let cells = ref 0 and exact = ref 0 in
  List.iter
    (fun (a, b) ->
      List.iter
        (fun k ->
          incr cells;
          let o = Migration.run_migrating m ~src_arch:a ~dst_arch:b ~after_polls:k () in
          if width_compatible a b || w.Hpm_workloads.Registry.wide_safe then (
            incr exact;
            let ref_out, ref_ret = ref_on a in
            check_string (cell_name name a b k) ref_out o.Migration.output;
            check_bool (cell_name name a b k ^ " return") true
              (match (ref_ret, o.Migration.return_value) with
              | Some x, Some y -> Hpm_machine.Mem.value_equal x y
              | None, None -> true
              | _ -> false))
          else
            (* width-dependent workload across a width boundary: the
               migration must still complete into a normal exit *)
            check_bool (cell_name name a b k ^ " completes") true
              (o.Migration.return_value <> None || String.length o.Migration.output > 0))
        poll_points)
    arch_pairs;
  (* the matrix really is total: 5x5 ordered pairs x 3 poll points *)
  check_int (name ^ " cells") (5 * 5 * List.length poll_points) !cells;
  if w.Hpm_workloads.Registry.wide_safe then
    check_int (name ^ " all cells exact") !cells !exact

(* one test case per workload so a failure names its workload and the
   suite parallelizes naturally *)
let suite =
  List.map
    (fun (w : Hpm_workloads.Registry.t) ->
      tc_slow ("matrix " ^ w.Hpm_workloads.Registry.name) (run_matrix_for w))
    Hpm_workloads.Registry.all
