(** Iterative pre-copy migration and the scheduler's store-backed
    durability: convergence, round failures, crash recovery from the
    newest committed manifest, and exactly-once output throughout. *)

open Util
open Hpm_core
open Hpm_net
open Hpm_machine
open Hpm_store
open Hpm_sched

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hpm_precopy_%d_%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  if Sys.is_directory path then (
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path)
  else Sys.remove path

let with_store f =
  let dir = fresh_dir () in
  let st = Store.open_store dir in
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f st)

let workload name = (Hpm_workloads.Registry.find_exn name).Hpm_workloads.Registry.source

(* ---------------------------------------------------------------- *)
(* Precopy.execute                                                   *)
(* ---------------------------------------------------------------- *)

let test_precopy_commits () =
  with_store (fun st ->
      let m = prepare (workload "jacobi" 8) in
      let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.dec5000 in
      let src, _ = suspend m Hpm_arch.Arch.dec5000 2 in
      let pres =
        Precopy.execute ~channel:(Netsim.ethernet_10 ()) ~dst_store:st ~proc:"j"
          m src Hpm_arch.Arch.sparc20
      in
      check_bool "at least full + final rounds" true (List.length pres.Precopy.p_rounds >= 2);
      (* every non-full round's wire is smaller than round 0's full wire *)
      (match pres.Precopy.p_rounds with
      | first :: rest ->
          check_bool "round 0 is the full snapshot" true (first.Precopy.pr_kind = `Full);
          List.iter
            (fun r ->
              check_bool
                (Printf.sprintf "round %d wire %dB < full %dB" r.Precopy.pr_epoch
                   r.Precopy.pr_wire_bytes first.Precopy.pr_wire_bytes)
                true
                (r.Precopy.pr_wire_bytes < first.Precopy.pr_wire_bytes))
            rest
      | [] -> Alcotest.fail "no rounds recorded");
      match pres.Precopy.p_outcome with
      | Precopy.Handed_off { Handoff.outcome = Handoff.Committed c; _ } -> (
          (* resume the destination copy: combined output is exactly one run *)
          let pre = Interp.output src in
          let out =
            match Interp.run c.Handoff.c_dst with
            | Interp.RDone _ -> Interp.output c.Handoff.c_dst
            | _ -> Alcotest.fail "destination did not finish"
          in
          check_string "output exactly once" expected (pre ^ out);
          (* the destination store holds a committed manifest at the final epoch *)
          match Store.latest_manifest st ~proc:"j" with
          | Some mf ->
              check_int "store manifest at the final epoch" pres.Precopy.p_final_epoch
                mf.Store.mf_epoch
          | None -> Alcotest.fail "no manifest committed")
      | _ -> Alcotest.fail "pre-copy did not commit")

let test_round_failure_source_resumes () =
  with_store (fun st ->
      let m = prepare (workload "jacobi" 8) in
      let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.dec5000 in
      let faults = Netsim.fault_model ~corrupt_rate:1.0 ~seed:3 () in
      let src, _ = suspend m Hpm_arch.Arch.dec5000 2 in
      let pres =
        Precopy.execute ~channel:(Netsim.ethernet_10 ~faults ()) ~dst_store:st
          ~proc:"j" m src Hpm_arch.Arch.sparc20
      in
      (match pres.Precopy.p_outcome with
      | Precopy.Round_link_failed { rl_round; _ } ->
          check_int "round 0 (the full ship) failed" 0 rl_round
      | _ -> Alcotest.fail "expected Round_link_failed");
      (* the source keeps running locally: request cleared, output intact *)
      match Interp.run src with
      | Interp.RDone _ -> check_string "source finishes alone" expected (Interp.output src)
      | _ -> Alcotest.fail "source did not resume to completion")

let test_final_round_dst_crash_recoverable () =
  (* the destination dies in the final two-phase round: the durable
     artifact is the full materialized stream, so the retained checkpoint
     resumes anywhere *)
  with_store (fun st ->
      let m = prepare (workload "jacobi" 8) in
      let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.dec5000 in
      let src, _ = suspend m Hpm_arch.Arch.dec5000 2 in
      let pres =
        Precopy.execute
          ~faults:(Netsim.node_faults ~crash_dest_after:Netsim.Ph_restore ())
          ~channel:(Netsim.ethernet_10 ()) ~dst_store:st ~proc:"j" m src
          Hpm_arch.Arch.sparc20
      in
      match pres.Precopy.p_outcome with
      | Precopy.Handed_off { Handoff.outcome = Handoff.Abort_requeue q; _ } -> (
          let interp, _ =
            Handoff.resume_from_checkpoint m Hpm_arch.Arch.i386
              ~epoch:q.Handoff.q_epoch q.Handoff.q_ckpt
          in
          let pre = Interp.output src in
          match Interp.run interp with
          | Interp.RDone _ ->
              check_string "requeued checkpoint finishes exactly once" expected
                (pre ^ Interp.output interp)
          | _ -> Alcotest.fail "requeued copy did not finish")
      | _ -> Alcotest.fail "expected Abort_requeue from the dead destination")

let test_finished_before_handoff () =
  with_store (fun st ->
      let m = prepare (workload "jacobi" 4) in
      let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.dec5000 in
      let src, _ = suspend m Hpm_arch.Arch.dec5000 0 in
      (* rounds long enough that the program completes mid-pre-copy *)
      let config = { Precopy.default_config with Precopy.round_polls = 1_000_000 } in
      let pres =
        Precopy.execute ~config ~channel:(Netsim.ethernet_10 ()) ~dst_store:st
          ~proc:"j" m src Hpm_arch.Arch.sparc20
      in
      (match pres.Precopy.p_outcome with
      | Precopy.Finished_before_handoff -> ()
      | _ -> Alcotest.fail "expected Finished_before_handoff");
      check_string "source holds the full output" expected (Interp.output src))

(* ---------------------------------------------------------------- *)
(* Scheduler: periodic checkpoints, crash recovery, pre-copy moves   *)
(* ---------------------------------------------------------------- *)

let nqueens n = prepare (Hpm_workloads.Nqueens.source n)

let test_sched_periodic_checkpoints () =
  with_store (fun st ->
      let slow = Sched.node "slow" Hpm_arch.Arch.dec5000 in
      let sim =
        Sched.create ~channel:(Netsim.ethernet_10 ()) ~store:st ~ckpt_every_s:0.05
          [ slow ]
      in
      let p = Sched.spawn sim slow "q7" (nqueens 7) in
      let _ = Sched.run sim in
      check_string "output exactly once" "40\n" (Sched.output p);
      let epochs =
        List.filter_map
          (function Sched.Checkpointed (_, _, e, _) -> Some e | _ -> None)
          (Sched.events sim)
      in
      check_bool
        (Printf.sprintf "several checkpoints taken (%d)" (List.length epochs))
        true
        (List.length epochs >= 2);
      check_bool "epochs strictly increase" true
        (List.for_all (fun x -> x) (List.map2 ( < )
           (List.filteri (fun i _ -> i < List.length epochs - 1) epochs)
           (List.tl epochs)));
      check_bool "manifests committed" true
        (List.length (Store.manifest_epochs st ~proc:"q7") >= 2))

let test_sched_crash_recovery_from_store () =
  with_store (fun st ->
      let slow = Sched.node "slow" Hpm_arch.Arch.dec5000 in
      let sim =
        Sched.create ~channel:(Netsim.ethernet_10 ()) ~store:st ~ckpt_every_s:0.05
          [ slow ]
      in
      let p = Sched.spawn sim slow "q7" (nqueens 7) in
      (* run until at least two checkpoints are durable, then "crash" and
         recover from the store *)
      while List.length (Store.manifest_epochs st ~proc:"q7") < 2 do
        Sched.tick sim
      done;
      check_bool "not finished yet" true
        (match p.Sched.p_state with Sched.Finished _ -> false | _ -> true);
      (* damage the newest manifest: recovery must skip it and use the
         previous committed epoch *)
      let epochs = List.rev (Store.manifest_epochs st ~proc:"q7") in
      let newest = List.hd epochs in
      let path =
        Filename.concat (Filename.concat st.Store.dir "manifests")
          (Printf.sprintf "q7.%08d.mf" newest)
      in
      let oc = open_out path in
      output_string oc "torn write";
      close_out oc;
      check_bool "recovered" true (Sched.recover_from_store sim p ());
      check_int "one recovery counted" 1 p.Sched.p_recoveries;
      let _ = Sched.run sim in
      check_string "output exactly once after crash" "40\n" (Sched.output p);
      check_bool "recovery event names the surviving epoch" true
        (List.exists
           (function
             | Sched.Recovered (_, _, _, why) ->
                 why
                 = Printf.sprintf "crash recovery: store manifest epoch %d"
                     (List.nth epochs 1)
             | _ -> false)
           (Sched.events sim)))

let test_sched_recovery_falls_back_to_legacy () =
  (* no store manifests: recovery uses the legacy monolithic file *)
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with _ -> ())
    (fun () ->
      let m = nqueens 7 in
      let legacy = Filename.concat dir "legacy.ckpt" in
      let _ = Checkpoint.run_and_save m Hpm_arch.Arch.dec5000 ~after_polls:3 legacy in
      let slow = Sched.node "slow" Hpm_arch.Arch.dec5000 in
      let sim = Sched.create ~channel:(Netsim.ethernet_10 ()) [ slow ] in
      let p = Sched.spawn sim slow "q7" m in
      check_bool "no recovery without any durable state" false
        (Sched.recover_from_store sim p ());
      check_bool "legacy file recovers" true (Sched.recover_from_store sim p ~legacy ());
      let _ = Sched.run sim in
      check_string "output correct from legacy resume" "40\n" (Sched.output p))

let test_sched_precopy_migration () =
  with_store (fun st ->
      let slow = Sched.node "slow" Hpm_arch.Arch.dec5000 in
      let fast = Sched.node "fast" Hpm_arch.Arch.x86_64 in
      let sim =
        Sched.create ~channel:(Netsim.ethernet_10 ()) ~store:st
          ~precopy:{ Precopy.default_config with Precopy.round_polls = 5 }
          [ slow; fast ]
      in
      let p = Sched.spawn sim slow "q7" (nqueens 7) in
      Sched.request_migration sim p fast;
      let _ = Sched.run sim in
      check_string "output exactly once" "40\n" (Sched.output p);
      check_int "one migration" 1 p.Sched.p_migrations;
      check_bool "ends on fast" true (p.Sched.p_node == fast);
      match
        List.find_opt
          (function Sched.Migrated _ -> true | _ -> false)
          (Sched.events sim)
      with
      | Some (Sched.Migrated (_, _, _, _, ms)) -> (
          match ms.Sched.ms_delta with
          | Some d ->
              check_bool "pre-copy shipped chunks" true (d.Cstats.d_chunks_shipped > 0)
          | None -> Alcotest.fail "Migrated event lacks pre-copy stats")
      | _ -> Alcotest.fail "no Migrated event")

let suite =
  [
    tc "pre-copy converges and commits" test_precopy_commits;
    tc "failed round resumes the source" test_round_failure_source_resumes;
    tc "final-round destination crash is recoverable" test_final_round_dst_crash_recoverable;
    tc "source finishing mid-pre-copy aborts the move" test_finished_before_handoff;
    tc "scheduler takes periodic checkpoints" test_sched_periodic_checkpoints;
    tc "scheduler crash recovery skips a torn manifest" test_sched_crash_recovery_from_store;
    tc "scheduler recovery falls back to a legacy file" test_sched_recovery_falls_back_to_legacy;
    tc "scheduler pre-copy migration" test_sched_precopy_migration;
  ]
