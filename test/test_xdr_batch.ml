(** Differential oracle for the batch scalar translators.

    The per-field path ([Mem.load_scalar] + [Stream.put_prim], and
    [Stream.get_prim] + [Mem.store_scalar]) is still present as the
    primitive layer; these tests re-run it as the reference against the
    compiled [Batch] programs for the same bytes, across every
    architecture pair — both endiannesses and the ILP32/LP64 width split
    — and assert byte-identical wire output, byte-identical destination
    memory, and identical {!Xdr} byte accounting. *)

open Hpm_arch
open Hpm_lang
open Hpm_machine
open Hpm_core
open Util

let tenv =
  Ty.add_struct Ty.empty_tenv
    {
      Ty.s_name = "mixed";
      s_fields =
        [
          { Ty.fld_name = "c"; fld_ty = Ty.Char };
          { Ty.fld_name = "s"; fld_ty = Ty.Short };
          { Ty.fld_name = "i"; fld_ty = Ty.Int };
          { Ty.fld_name = "l"; fld_ty = Ty.Long };
          { Ty.fld_name = "f"; fld_ty = Ty.Float };
          { Ty.fld_name = "d"; fld_ty = Ty.Double };
        ];
    }

let tenv =
  Ty.add_struct tenv
    {
      Ty.s_name = "linked";
      s_fields =
        [
          { Ty.fld_name = "v"; fld_ty = Ty.Double };
          { Ty.fld_name = "next"; fld_ty = Ty.Ptr (Ty.Struct "linked") };
          { Ty.fld_name = "tag"; fld_ty = Ty.Int };
        ];
    }

(* Prim-only types covering every scalar kind, arrays, and the mixed
   struct (whose layout differs per arch: i386 packs doubles tighter). *)
let prim_tys =
  [
    Ty.Char;
    Ty.Short;
    Ty.Int;
    Ty.Long;
    Ty.Float;
    Ty.Double;
    Ty.Array (Ty.Char, 9);
    Ty.Array (Ty.Short, 3);
    Ty.Array (Ty.Long, 4);
    Ty.Array (Ty.Float, 5);
    Ty.Array (Ty.Double, 5);
    Ty.Struct "mixed";
    Ty.Array (Ty.Struct "mixed", 3);
  ]

let all_pairs =
  List.concat_map (fun a -> List.map (fun b -> (a, b)) Arch.all) Arch.all

(* Deterministic pseudo-random fill so every bit pattern class (incl. NaN
   payloads) shows up without wall-clock randomness. *)
let fill_bytes (b : Bytes.t) (seed : int) : unit =
  let x = ref (seed lxor 0x9e3779b9) in
  for i = 0 to Bytes.length b - 1 do
    x := (!x * 1103515245) + 12345;
    Bytes.set b i (Char.chr ((!x lsr 16) land 0xff))
  done

let mem_for arch = Mem.create arch tenv

(* The pre-batch reference: encode every prim element of [block] with the
   per-field path. *)
let encode_per_field (m : Mem.t) (block : Mem.block) : string =
  let elems = Layout.elems m.Mem.layout block.Mem.ty in
  let buf = Buffer.create 256 in
  for ord = 0 to Layout.elem_count elems - 1 do
    match Layout.kind_of_ordinal elems ord with
    | Ty.KPtr _ | Ty.KFunc _ -> ()
    | k ->
        let off = Layout.byte_of_ordinal elems ord in
        Stream.put_prim buf k (Mem.load_scalar m block off k)
  done;
  Buffer.contents buf

let encode_batch (m : Mem.t) (block : Mem.block) : string =
  let plan = Tplan.build m.Mem.layout (Layout.elems m.Mem.layout block.Mem.ty) in
  let buf = Buffer.create 256 in
  Array.iter
    (function
      | Tplan.Prims p -> Hpm_xdr.Batch.encode p buf block.Mem.bytes
      | Tplan.Ptr _ -> ())
    plan.Tplan.segs;
  Buffer.contents buf

(* The pre-batch reference decode: per-field get_prim + store_scalar. *)
let decode_per_field (m : Mem.t) (block : Mem.block) (wire : string) : unit =
  let elems = Layout.elems m.Mem.layout block.Mem.ty in
  let r = Hpm_xdr.Xdr.reader_of_string wire in
  for ord = 0 to Layout.elem_count elems - 1 do
    match Layout.kind_of_ordinal elems ord with
    | Ty.KPtr _ | Ty.KFunc _ -> ()
    | k ->
        let off = Layout.byte_of_ordinal elems ord in
        Mem.store_scalar m block off k (Stream.get_prim r k)
  done

let decode_batch (m : Mem.t) (block : Mem.block) (wire : string) : unit =
  let plan = Tplan.build m.Mem.layout (Layout.elems m.Mem.layout block.Mem.ty) in
  let r = Hpm_xdr.Xdr.reader_of_string wire in
  Array.iter
    (function
      | Tplan.Prims p -> Hpm_xdr.Batch.decode p r block.Mem.bytes
      | Tplan.Ptr _ -> ())
    plan.Tplan.segs

(* One differential check: random-ish bytes on [src] arch, encode both
   ways, decode both ways on [dst] arch, compare everything. *)
let check_one (src : Arch.t) (dst : Arch.t) (ty : Ty.t) (seed : int) : unit =
  let ms = mem_for src in
  let b = Mem.alloc ms Mem.Heap ty Mem.Iheap in
  fill_bytes b.Mem.bytes seed;
  let wire_pf = encode_per_field ms b in
  let wire_batch = encode_batch ms b in
  if not (String.equal wire_pf wire_batch) then
    Alcotest.failf "encode differs for %s on %s (seed %d)" (Ty.to_string ty)
      src.Arch.name seed;
  let md = mem_for dst in
  let d1 = Mem.alloc md Mem.Heap ty Mem.Iheap in
  let d2 = Mem.alloc md Mem.Heap ty Mem.Iheap in
  decode_per_field md d1 wire_pf;
  decode_batch md d2 wire_pf;
  if not (Bytes.equal d1.Mem.bytes d2.Mem.bytes) then
    Alcotest.failf "decode differs for %s on %s->%s (seed %d)" (Ty.to_string ty)
      src.Arch.name dst.Arch.name seed

let test_all_types_all_pairs () =
  List.iter
    (fun (src, dst) ->
      List.iter (fun ty -> List.iter (check_one src dst ty) [ 1; 2; 77 ]) prim_tys)
    all_pairs

(* byte accounting must match the per-field path exactly *)
let test_io_accounting () =
  let open Hpm_xdr in
  let ms = mem_for Arch.dec5000 in
  let b = Mem.alloc ms Mem.Heap (Ty.Array (Ty.Struct "mixed", 4)) Mem.Iheap in
  fill_bytes b.Mem.bytes 5;
  let count f =
    Xdr.count_io := true;
    Xdr.reset_io_counters ();
    ignore (f () : string);
    let e = !Xdr.encoded_bytes in
    Xdr.count_io := false;
    e
  in
  let e_pf = count (fun () -> encode_per_field ms b) in
  let e_b = count (fun () -> encode_batch ms b) in
  check_int "encoded_bytes identical" e_pf e_b;
  let wire = encode_batch ms b in
  let md = mem_for Arch.x86_64 in
  let d = Mem.alloc md Mem.Heap (Ty.Array (Ty.Struct "mixed", 4)) Mem.Iheap in
  let countd f =
    Xdr.count_io := true;
    Xdr.reset_io_counters ();
    f ();
    let v = !Xdr.decoded_bytes in
    Xdr.count_io := false;
    v
  in
  let d_pf = countd (fun () -> decode_per_field md d wire) in
  let d_b = countd (fun () -> decode_batch md d wire) in
  check_int "decoded_bytes identical" d_pf d_b

(* truncated input still surfaces as Xdr.Underflow *)
let test_truncated_underflow () =
  let ms = mem_for Arch.sparc20 in
  let b = Mem.alloc ms Mem.Heap (Ty.Array (Ty.Double, 4)) Mem.Iheap in
  fill_bytes b.Mem.bytes 9;
  let wire = encode_batch ms b in
  let short = String.sub wire 0 (String.length wire - 3) in
  let md = mem_for Arch.sparc20 in
  let d = Mem.alloc md Mem.Heap (Ty.Array (Ty.Double, 4)) Mem.Iheap in
  expect_raise "truncated run underflows"
    (function Hpm_xdr.Xdr.Underflow _ -> true | _ -> false)
    (fun () -> decode_batch md d short)

(* plan shape: pointers split prim runs; a BE double array is one blit *)
let test_plan_segmentation () =
  let layout_of arch = Layout.make arch tenv in
  let l = layout_of Arch.sparc20 in
  let plan = Tplan.build l (Layout.elems l (Ty.Struct "linked")) in
  (match plan.Tplan.segs with
  | [| Tplan.Prims _; Tplan.Ptr { ord = 1; _ }; Tplan.Prims _ |] -> ()
  | segs -> Alcotest.failf "unexpected segmentation (%d segs)" (Array.length segs));
  check_int "prim fields around the pointer" 2 plan.Tplan.prim_fields;
  (* canonical bytes: double (8) + int (4) *)
  check_int "wire bytes" 12 plan.Tplan.prim_wire_bytes

(* QCheck: encode→decode on the same arch is the identity on block bytes
   up to f32 NaN quieting, which re-encodes identically — so compare the
   re-encoded wire, the canonical form *)
let prop_roundtrip =
  qt ~count:200 "batch encode→decode→encode is stable"
    QCheck.(triple (int_range 0 4) (int_range 0 12) small_nat)
    (fun (arch_i, ty_i, seed) ->
      let arch = List.nth Arch.all arch_i in
      let ty = List.nth prim_tys ty_i in
      let ms = mem_for arch in
      let b = Mem.alloc ms Mem.Heap ty Mem.Iheap in
      fill_bytes b.Mem.bytes seed;
      let wire1 = encode_batch ms b in
      let md = mem_for arch in
      let d = Mem.alloc md Mem.Heap ty Mem.Iheap in
      decode_batch md d wire1;
      let wire2 = encode_batch md d in
      String.equal wire1 wire2)

let suite =
  [
    tc "byte-identical to per-field for all types × arch pairs" test_all_types_all_pairs;
    tc "io accounting identical" test_io_accounting;
    tc "truncated input underflows" test_truncated_underflow;
    tc "plan segmentation around pointers" test_plan_segmentation;
    prop_roundtrip;
  ]
