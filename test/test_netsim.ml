(** Network simulator tests. *)

open Hpm_net
open Util

let test_tx_time () =
  let ch = Netsim.make ~name:"t" ~bandwidth_bps:1e6 ~latency_s:0.001 () in
  (* 1000 bytes = 8000 bits over 1 Mb/s = 8 ms, plus 1 ms latency *)
  Alcotest.(check (float 1e-9)) "tx math" 0.009 (Netsim.tx_time ch 1000);
  Alcotest.(check (float 1e-9)) "latency only" 0.001 (Netsim.tx_time ch 0)

let test_presets () =
  let e10 = Netsim.ethernet_10 () and e100 = Netsim.ethernet_100 () in
  (* 1 MB over 10 Mb/s Ethernet is on the order of a second; over 100 Mb/s
     roughly a tenth of that *)
  let t10 = Netsim.tx_time e10 1_000_000 and t100 = Netsim.tx_time e100 1_000_000 in
  check_bool "e10 order of magnitude" true (t10 > 0.8 && t10 < 2.0);
  check_bool "e100 about 10x faster" true (t100 < t10 /. 5.0);
  check_bool "loopback free" true (Netsim.tx_time (Netsim.loopback ()) 1_000_000 < 1e-4)

let test_delivery () =
  let ch = Netsim.ethernet_100 () in
  let delivered, t = Netsim.send ch "payload" in
  check_string "lossless" "payload" delivered;
  check_bool "positive time" true (t > 0.0);
  check_int "accounting" 7 ch.Netsim.bytes_sent;
  check_int "messages" 1 ch.Netsim.messages

let test_faults () =
  let ch = Netsim.loopback () in
  let d, _ = Netsim.send ~fault:(Netsim.Truncate 3) ch "abcdef" in
  check_string "truncate" "abc" d;
  let d2, _ = Netsim.send ~fault:(Netsim.FlipByte 1) ch "abc" in
  check_bool "flip changed byte" true (d2.[1] <> 'b' && d2.[0] = 'a' && d2.[2] = 'c');
  let d3, _ = Netsim.send ~fault:(Netsim.FlipByte 99) ch "abc" in
  check_string "flip out of range is identity" "abc" d3;
  let d4, _ = Netsim.send ~fault:(Netsim.Truncate 99) ch "abc" in
  check_string "truncate beyond length is identity" "abc" d4

let test_monotone () =
  let ch = Netsim.ethernet_10 () in
  check_bool "more bytes, more time" true
    (Netsim.tx_time ch 2_000 > Netsim.tx_time ch 1_000)

let suite =
  [
    tc "transfer-time arithmetic" test_tx_time;
    tc "ethernet presets" test_presets;
    tc "delivery and accounting" test_delivery;
    tc "fault injection" test_faults;
    tc "monotonicity" test_monotone;
  ]
