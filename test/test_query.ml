(** The fleet console (lib/query): the typed relational engine, the
    HPMJ journal round-trip, canned-report determinism over a seeded
    fleet, the dedup-vs-Cstats oracle, and the retention predicate
    shared with `hpmrun --store-gc --gc-dry-run`. *)

open Util
open Hpm_query
module Store = Hpm_store.Store
module Journal = Hpm_store.Journal
module Obs = Hpm_obs.Obs

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hpm_query_%d_%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  if Sys.is_directory path then (
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path)
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

(* ---------------------------------------------------------------- *)
(* Rel: the engine                                                   *)
(* ---------------------------------------------------------------- *)

let mini () =
  Rel.make ~name:"mini"
    ~schema:
      [ ("proc", Rel.Tstr); ("epoch", Rel.Tint); ("ratio", Rel.Tfloat);
        ("ok", Rel.Tbool) ]
    [
      [| Rel.Str "alpha"; Rel.Int 1; Rel.Float 0.5; Rel.Bool true |];
      [| Rel.Str "b"; Rel.Int 12; Rel.Null; Rel.Bool false |];
    ]

let test_text_golden () =
  check_string "text table bytes"
    "proc   epoch  ratio  ok\n\
     -----  -----  -----  -----\n\
     alpha      1    0.5  true\n\
     b         12      -  false\n\
     (2 rows)\n"
    (Rel.to_text (mini ()))

let test_json_golden () =
  check_string "QUERY_v1 bytes"
    ("{\"schema\":\"QUERY_v1\",\"version\":1,\"report\":\"mini\",\
      \"columns\":[{\"name\":\"proc\",\"type\":\"str\"},\
      {\"name\":\"epoch\",\"type\":\"int\"},\
      {\"name\":\"ratio\",\"type\":\"float\"},\
      {\"name\":\"ok\",\"type\":\"bool\"}],\
      \"rows\":[[\"alpha\",1,0.5,true],[\"b\",12,null,false]]}\n")
    (Rel.to_json (mini ()))

let test_cell_order () =
  let open Rel in
  check_bool "Null < Bool" true (compare_cells Null (Bool false) < 0);
  check_bool "Bool < Int" true (compare_cells (Bool true) (Int (-5)) < 0);
  check_bool "Int < Str" true (compare_cells (Int max_int) (Str "") < 0);
  check_bool "Int/Float numeric" true (compare_cells (Int 2) (Float 2.5) < 0);
  check_bool "Float/Int numeric" true (compare_cells (Float 2.5) (Int 3) < 0);
  check_int "Int/Int exact" 0 (compare_cells (Int 7) (Int 7))

let test_pipeline_ops () =
  let t =
    Rel.make ~name:"t"
      ~schema:[ ("k", Rel.Tstr); ("v", Rel.Tint) ]
      (List.map
         (fun (k, v) -> [| Rel.Str k; Rel.Int v |])
         [ ("a", 3); ("b", 1); ("a", 5); ("b", 2); ("a", 4) ])
  in
  let g =
    t
    |> Rel.group ~by:[ "k" ]
         ~aggs:
           [ ("n", Rel.Count); ("total", Rel.Sum "v"); ("lo", Rel.Min "v");
             ("hi", Rel.Max "v"); ("mean", Rel.Avg "v");
             ("p50", Rel.Percentile (50, "v")) ]
  in
  check_string "grouped table"
    "k  n  total  lo  hi  mean  p50\n\
     -  -  -----  --  --  ----  ---\n\
     a  3     12   3   5     4    4\n\
     b  2      3   1   2   1.5    1\n\
     (2 rows)\n"
    (Rel.to_text g);
  (* filter + sort + limit, stable and deterministic *)
  let top =
    t
    |> Rel.filter (fun r -> match r.(1) with Rel.Int v -> v > 1 | _ -> false)
    |> Rel.sort [ ("v", `Desc) ]
    |> Rel.limit 2
  in
  check_string "filter/sort/limit"
    "k  v\n-  -\na  5\na  4\n(2 rows)\n" (Rel.to_text top)

let test_join () =
  let l =
    Rel.make ~name:"l"
      ~schema:[ ("proc", Rel.Tstr); ("epoch", Rel.Tint) ]
      [ [| Rel.Str "a"; Rel.Int 1 |]; [| Rel.Str "a"; Rel.Int 2 |];
        [| Rel.Str "z"; Rel.Int 9 |] ]
  in
  let r =
    Rel.make ~name:"sizes"
      ~schema:[ ("p", Rel.Tstr); ("epoch", Rel.Tint); ("bytes", Rel.Tint) ]
      [ [| Rel.Str "a"; Rel.Int 2; Rel.Int 40 |];
        [| Rel.Str "a"; Rel.Int 1; Rel.Int 10 |] ]
  in
  let j = Rel.join ~on:[ ("proc", "p"); ("epoch", "epoch") ] l r in
  (* the unmatched "z" row vanishes; right key columns are dropped *)
  check_string "inner equi-join drops right keys, keeps payload"
    "proc  epoch  bytes\n\
     ----  -----  -----\n\
     a         1     10\n\
     a         2     40\n\
     (2 rows)\n"
    (Rel.to_text j);
  check_int "join cardinality" 2 (Rel.cardinality j);
  check_bool "unknown column rejected" true
    (match Rel.col_index j "p" with
    | exception Rel.Error _ -> true
    | _ -> false)

let test_percentile_nearest_rank () =
  let t =
    Rel.make ~name:"t"
      ~schema:[ ("g", Rel.Tstr); ("v", Rel.Tint) ]
      (List.init 10 (fun i -> [| Rel.Str "g"; Rel.Int (i + 1) |]))
  in
  let g =
    Rel.group t ~by:[ "g" ]
      ~aggs:
        [ ("p1", Rel.Percentile (1, "v")); ("p50", Rel.Percentile (50, "v"));
          ("p99", Rel.Percentile (99, "v")) ]
  in
  match Rel.rows g with
  | [ [| _; p1; p50; p99 |] ] ->
      check_int "p1 nearest-rank" 1 (match p1 with Rel.Int i -> i | _ -> -1);
      check_int "p50 nearest-rank" 5 (match p50 with Rel.Int i -> i | _ -> -1);
      check_int "p99 nearest-rank" 10 (match p99 with Rel.Int i -> i | _ -> -1)
  | _ -> Alcotest.fail "expected one group row"

let test_work_counters () =
  Rel.reset_stats ();
  ignore (Rel.scan (mini ()));
  check_int "rows charged" 2 !Rel.rows_scanned;
  check_int "cells charged" 8 !Rel.cells_touched;
  check_bool "model cost positive" true
    (Obs.Model.query_s ~rows:2 ~cells:8 > 0.0)

(* ---------------------------------------------------------------- *)
(* Journal: HPMJ round-trip                                          *)
(* ---------------------------------------------------------------- *)

(* Strings exercising the escaper: quotes, backslashes, control and
   high-bit bytes all travel through the \u escapes of docs/FORMAT.md. *)
let gen_note =
  QCheck.Gen.(
    string_size (int_range 0 10)
      ~gen:(oneofl [ 'a'; 'z'; 'Q'; '_'; ' '; '"'; '\\'; '\n'; '\t'; '\xe9' ]))

(* Eighths render in few digits under %.9g, so parse(encode e) = e holds
   exactly — arbitrary doubles are covered by the canonical-form test. *)
let gen_q8 = QCheck.Gen.(map (fun n -> float_of_int n /. 8.0) (int_range 0 80_000))

let gen_entry =
  QCheck.Gen.(
    gen_note >>= fun proc ->
    gen_note >>= fun note ->
    oneofl Journal.all_evs >>= fun ev ->
    gen_q8 >>= fun ts ->
    gen_q8 >>= fun time_s ->
    int_range 0 1000 >>= fun epoch ->
    int_range 0 5 >>= fun incarnation ->
    int_range 0 100_000 >>= fun stream_bytes ->
    int_range 0 100 >>= fun shipped ->
    int_range 0 100 >>= fun reused ->
    return
      (Journal.entry ~ts ~ev ~proc ~src:"n1" ~dst:"n2" ~node:"n3" ~epoch
         ~incarnation ~stream_bytes ~collected_bytes:7 ~restored_bytes:9
         ~retries:1 ~time_s ~delta_bytes:11 ~chunks_shipped:shipped
         ~chunks_reused:reused ~note ()))

let journal_roundtrip_prop =
  qt ~count:60 "HPMJ: append+load round-trips every field"
    (QCheck.make
       ~print:(fun es -> string_of_int (List.length es) ^ " entries")
       (QCheck.Gen.list_size (QCheck.Gen.int_range 0 8) gen_entry))
    (fun entries ->
      with_dir (fun dir ->
          let path = Filename.concat dir "j.hpmj" in
          let j = Journal.open_journal path in
          List.iter (Journal.append j) entries;
          Journal.load path = entries))

let encode_canonical_prop =
  qt ~count:100 "HPMJ: encode is a fixpoint of parse (any double)"
    (QCheck.make
       ~print:(fun f -> Printf.sprintf "%h" f)
       QCheck.Gen.(map abs_float float))
    (fun f ->
      let f = if Float.is_nan f || f = infinity then 1.5 else f in
      let e = Journal.entry ~ts:f ~ev:Journal.Checkpointed ~proc:"p" ~time_s:f () in
      let line = Journal.encode_entry e in
      Journal.encode_entry (Journal.parse_entry line) = line)

let test_journal_truncated_tail () =
  with_dir (fun dir ->
      let path = Filename.concat dir "j.hpmj" in
      let j = Journal.open_journal path in
      for i = 1 to 3 do
        Journal.append j
          (Journal.entry ~ts:(float_of_int i) ~ev:Journal.Checkpointed
             ~proc:"p" ~epoch:i ())
      done;
      let whole =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic; s
      in
      let oc = open_out_bin path in
      output_string oc (String.sub whole 0 (String.length whole - 4));
      close_out oc;
      check_bool "truncated tail is a typed error" true
        (match Journal.load path with
        | exception Journal.Corrupt _ -> true
        | _ -> false);
      (* a wrong version number is refused, not guessed at *)
      let oc = open_out_bin path in
      output_string oc "{\"hpmj\":9,\"ts\":0,\"ev\":\"spawned\",\"proc\":\"p\"}\n";
      close_out oc;
      check_bool "future version is a typed error" true
        (match Journal.load path with
        | exception Journal.Corrupt _ -> true
        | _ -> false);
      check_bool "absent journal is empty, not an error" true
        (Journal.load (Filename.concat dir "nope.hpmj") = []))

(* ---------------------------------------------------------------- *)
(* A deterministic fleet: migrations + checkpoints + one promotion   *)
(* ---------------------------------------------------------------- *)

let nqueens n = Util.prepare (Hpm_workloads.Nqueens.source n)
let jacobi n = Util.prepare (Hpm_workloads.Jacobi.source n)

(* Run the fixed fleet into [dir]; return the five canned reports
   (text and QUERY_v1 bytes) plus the scheduler's own Cstats totals
   for the dedup oracle. *)
let run_fleet dir =
  let open Hpm_sched in
  let st = Store.open_store (Filename.concat dir "store") in
  let jpath = Filename.concat dir "fleet.hpmj" in
  let journal = Journal.open_journal jpath in
  let now0 = Obs.now () in
  let prev_trace = !Obs.cur_trace in
  let tr = Obs.Trace.create () in
  Obs.set_now 0.0;
  Obs.set_trace (Some tr);
  Fun.protect
    ~finally:(fun () ->
      Obs.set_trace prev_trace;
      Obs.set_now now0)
    (fun () ->
      let src = Sched.node "src" Hpm_arch.Arch.dec5000 in
      let fast = Sched.node "fast" Hpm_arch.Arch.x86_64 in
      let sb0 = Sched.node "sb0" Hpm_arch.Arch.sparc20 in
      let sim =
        Sched.create ~channel:(Hpm_net.Netsim.ethernet_10 ()) ~store:st
          ~journal ~ckpt_every_s:0.05 [ src; fast; sb0 ]
      in
      (* one migration *)
      let p = Sched.spawn sim src "q7" (nqueens 7) in
      Sched.request_migration sim p fast;
      let _ = Sched.run sim in
      (* checkpoints + replication + a promotion drill *)
      let p2 = Sched.spawn sim src "j8" (jacobi 8) in
      let r = Sched.replicate sim p2 ~standbys:[ sb0 ] in
      (match Sched.stream_replica sim p2 r ~epochs:3 with
      | Hpm_store.Replica.Streamed 3 -> ()
      | _ -> Alcotest.fail "fleet: expected 3 streamed epochs");
      let _pm = Sched.promote_standby sim p2 r in
      Hpm_store.Replica.close r;
      let _ = Sched.run sim in
      let shipped, reused =
        List.fold_left
          (fun (s, u) ev ->
            match ev with
            | Sched.Checkpointed (_, _, _, d) ->
                ( s + d.Hpm_core.Cstats.d_chunks_shipped,
                  u + d.Hpm_core.Cstats.d_chunks_reused )
            | Sched.Migrated (_, _, _, _, ms) -> (
                match ms.Sched.ms_delta with
                | Some d ->
                    ( s + d.Hpm_core.Cstats.d_chunks_shipped,
                      u + d.Hpm_core.Cstats.d_chunks_reused )
                | None -> (s, u))
            | _ -> (s, u))
          (0, 0) (Sched.events sim)
      in
      let qsrc =
        {
          Report.empty_sources with
          Report.s_store = Some st;
          s_journal = Some (Journal.load jpath);
          s_trace = Some (Json.parse (Obs.Trace.to_json tr));
        }
      in
      let reports =
        List.map
          (fun name ->
            let t = Report.run ~keep_last:1 qsrc name in
            (name, Rel.to_text t, Rel.to_json ~report:name t))
          Report.canned
      in
      (reports, shipped, reused))

let test_fleet_reports_byte_identical () =
  with_dir (fun d1 ->
      with_dir (fun d2 ->
          let r1, _, _ = run_fleet d1 in
          let r2, _, _ = run_fleet d2 in
          List.iter2
            (fun (n1, txt1, js1) (n2, txt2, js2) ->
              check_string "report name" n1 n2;
              check_string (n1 ^ " text identical across runs") txt1 txt2;
              check_string (n1 ^ " json identical across runs") js1 js2;
              check_bool (n1 ^ " text non-trivial") true
                (String.length txt1 > 0))
            r1 r2))

let test_fleet_reports_have_rows () =
  with_dir (fun dir ->
      let reports, _, _ = run_fleet dir in
      List.iter
        (fun (name, txt, js) ->
          let nonempty = not (contains_sub txt "(0 rows)") in
          (match name with
          | "top-churn" | "dedup" | "handoff-p99" | "promotions" ->
              check_bool (name ^ " found fleet activity") true nonempty
          | _ -> ());
          check_bool (name ^ " is a QUERY_v1 document") true
            (contains_sub js "\"schema\":\"QUERY_v1\""))
        reports)

let test_dedup_report_matches_cstats () =
  with_dir (fun dir ->
      let reports, shipped, reused = run_fleet dir in
      let _, _, js = List.find (fun (n, _, _) -> n = "dedup") reports in
      (* sum the shipped/reused columns back out of the rendered rows *)
      let doc = Json.parse js in
      let cols =
        List.map
          (fun c -> Json.to_string (Json.member "name" c))
          (Json.to_list (Json.member "columns" doc))
      in
      let idx name =
        let rec go i = function
          | [] -> Alcotest.fail ("dedup report lost column " ^ name)
          | c :: _ when c = name -> i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 cols
      in
      let is_, iu = (idx "chunks_shipped", idx "chunks_reused") in
      let ts, tu =
        List.fold_left
          (fun (s, u) row ->
            let cells = Json.to_list row in
            ( s + Json.to_int (List.nth cells is_),
              u + Json.to_int (List.nth cells iu) ))
          (0, 0)
          (Json.to_list (Json.member "rows" doc))
      in
      check_bool "fleet shipped chunks" true (shipped > 0);
      check_int "dedup report shipped ≡ scheduler Cstats" shipped ts;
      check_int "dedup report reused ≡ scheduler Cstats" reused tu)

(* ---------------------------------------------------------------- *)
(* Retention: gc-candidates never lists pinned or retained manifests *)
(* ---------------------------------------------------------------- *)

let test_retention_respects_keep_and_pins () =
  with_dir (fun dir ->
      let st = Store.open_store (Filename.concat dir "store") in
      let m = Util.prepare (Hpm_workloads.Jacobi.source 8) in
      let r =
        Hpm_store.Replica.create ~channel:(Hpm_net.Netsim.ethernet_10 ())
          ~store:st ~proc:"j"
          ~standbys:[ ("sb0", Hpm_arch.Arch.sparc20) ]
          m
          (fst (Util.suspend m Hpm_arch.Arch.dec5000 1))
      in
      (match Hpm_store.Replica.run r ~epochs:4 with
      | Hpm_store.Replica.Streamed 4 -> ()
      | _ -> Alcotest.fail "expected 4 epochs");
      Hpm_store.Replica.close r;
      let epochs = Store.manifest_epochs st ~proc:"j" in
      check_int "store holds 4 epochs" 4 (List.length epochs);
      (* keep_last alone: the newest 2 epochs must never be listed *)
      let victims keep =
        Report.retention_victims ~store:st ~keep_last:keep ()
        |> List.map (fun (_, e, _) -> e)
      in
      check_bool "newest epochs retained" true
        (List.for_all (fun e -> e <= 2) (victims 2));
      check_int "keep 2 of 4 leaves 2 candidates" 2 (List.length (victims 2));
      check_int "keep_last 0 condemns everything unpinned" 4
        (List.length (victims 0));
      (* pin epoch 1's chunks: it must vanish from the candidates *)
      let mf1 = Store.load_manifest st ~proc:"j" ~epoch:1 in
      Store.pin st (Store.manifest_hashes mf1);
      let v = Report.retention_victims ~store:st ~keep_last:1 () in
      List.iter
        (fun (proc, epoch, _) ->
          let mf = Store.load_manifest st ~proc ~epoch in
          check_bool
            (Printf.sprintf "victim %s/%d references no pinned chunk" proc epoch)
            false
            (List.exists (Store.is_pinned st) (Store.manifest_hashes mf)))
        v;
      check_bool "pinned epoch 1 no longer a candidate" true
        (not (List.exists (fun (_, e, _) -> e = 1) v));
      (* chunks are shared across incremental epochs, so pinning epoch 1
         transitively protects neighbours that reference the same chunks;
         release the pins before exercising the time window *)
      Store.unpin st (Store.manifest_hashes mf1);
      check_int "pins released" 0 (Store.pinned_chunks st);
      (* keep_days: a journal dating every epoch recently keeps them all;
         undatable epochs are kept, never silently condemned *)
      let j e ts =
        Journal.entry ~ts ~ev:Journal.Checkpointed ~proc:"j" ~epoch:e ()
      in
      let recent = [ j 1 0.0; j 2 1.0; j 3 2.0; j 4 3.0 ] in
      check_int "all inside the window survive" 0
        (List.length
           (Report.retention_victims ~store:st ~journal:recent ~keep_last:1
              ~keep_days:1.0 ()));
      let stale = [ j 1 0.0; j 2 1.0; j 4 200_000.0 ] in
      let v =
        Report.retention_victims ~store:st ~journal:stale ~keep_last:1
          ~keep_days:1.0 ()
      in
      (* epochs 1,2 aged out (>1 day before the newest record); epoch 3
         is undatable so it is kept *)
      check_bool "undatable epoch kept" true
        (not (List.exists (fun (_, e, _) -> e = 3) v));
      (match v with
      | [ ("j", 1, Some a1); ("j", 2, Some a2) ] ->
          check_bool "ages are newest-record-relative" true
            (a1 > 86_400.0 && a2 > 86_400.0 && a1 > a2)
      | _ -> Alcotest.fail "expected exactly j/1 and j/2 with ages"))

(* ---------------------------------------------------------------- *)
(* Suite                                                             *)
(* ---------------------------------------------------------------- *)

let suite =
  [
    tc "rel: text rendering golden" test_text_golden;
    tc "rel: QUERY_v1 rendering golden" test_json_golden;
    tc "rel: total order over cells" test_cell_order;
    tc "rel: group/aggregate pipeline" test_pipeline_ops;
    tc "rel: inner equi-join" test_join;
    tc "rel: nearest-rank percentiles" test_percentile_nearest_rank;
    tc "rel: work counters feed the cost model" test_work_counters;
    journal_roundtrip_prop;
    encode_canonical_prop;
    tc "journal: truncated tail and bad version are typed errors"
      test_journal_truncated_tail;
    tc_slow "fleet: five canned reports byte-identical across runs"
      test_fleet_reports_byte_identical;
    tc_slow "fleet: reports see the seeded activity" test_fleet_reports_have_rows;
    tc_slow "fleet: dedup report ≡ scheduler Cstats oracle"
      test_dedup_report_matches_cstats;
    tc "retention: keep-last, pins and keep-days" test_retention_respects_keep_and_pins;
  ]
