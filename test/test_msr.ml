(** TI table, MSRLT, and MSR graph tests. *)

open Hpm_lang
open Hpm_ir
open Hpm_msr
open Util

let prog_of src =
  let ast = check_src src in
  fst (Compile.lower ast)

let tree_src =
  {|
struct node { float data; struct node *link; };
struct node *first;
int main() {
  struct node *p;
  double d[4];
  p = (struct node *) malloc(sizeof(struct node));
  first = p;
  d[0] = 1.0;
  print_double(d[0]);
  return 0;
}
|}

(* ---- TI ---- *)

let test_ti_contents () =
  let prog = prog_of tree_src in
  let ti = Ti.build prog in
  check_bool "int present" true (Ti.find ti Ty.Int <> None);
  check_bool "struct present" true (Ti.find ti (Ty.Struct "node") <> None);
  check_bool "ptr present" true (Ti.find ti (Ty.Ptr (Ty.Struct "node")) <> None);
  check_bool "array present" true (Ti.find ti (Ty.Array (Ty.Double, 4)) <> None);
  check_bool "missing type" true (Ti.find ti (Ty.Array (Ty.Int, 77)) = None);
  let e = Ti.find_exn ti (Ty.Struct "node") in
  check_bool "has pointer" true e.Ti.has_pointer;
  check_int "two elems" 2 (List.length e.Ti.elem_kinds);
  let ei = Ti.find_exn ti Ty.Int in
  check_bool "int no pointer" false ei.Ti.has_pointer

let test_ti_deterministic () =
  let p1 = prog_of tree_src and p2 = prog_of tree_src in
  let t1 = Ti.build p1 and t2 = Ti.build p2 in
  check_int "same count" (Ti.entry_count t1) (Ti.entry_count t2);
  for i = 0 to Ti.entry_count t1 - 1 do
    check_string "same key" (Ti.by_tid t1 i).Ti.key (Ti.by_tid t2 i).Ti.key
  done

let test_ti_primitive_ids_stable () =
  (* primitive tids do not depend on the program *)
  let t1 = Ti.build (prog_of tree_src) in
  let t2 = Ti.build (prog_of "int main() { return 0; }") in
  List.iter
    (fun ty ->
      check_int (Ty.to_string ty) (Ti.find_exn t1 ty).Ti.tid (Ti.find_exn t2 ty).Ti.tid)
    [ Ty.Char; Ty.Short; Ty.Int; Ty.Long; Ty.Float; Ty.Double ]

let test_block_ty_codec () =
  let ti = Ti.build (prog_of tree_src) in
  let roundtrip ty = Ti.decode_block_ty ti (Ti.encode_block_ty ti ty) in
  check_bool "scalar" true (Ty.equal (roundtrip Ty.Int) Ty.Int);
  check_bool "struct" true (Ty.equal (roundtrip (Ty.Struct "node")) (Ty.Struct "node"));
  (* runtime-sized heap array: element must be in the table, any count works *)
  check_bool "heap array" true
    (Ty.equal
       (roundtrip (Ty.Array (Ty.Struct "node", 12345)))
       (Ty.Array (Ty.Struct "node", 12345)));
  check_bool "static array" true
    (Ty.equal (roundtrip (Ty.Array (Ty.Double, 4))) (Ty.Array (Ty.Double, 4)))

(* ---- MSRLT ---- *)

let test_msrlt_collect_side () =
  let m = Hpm_machine.Mem.create Hpm_arch.Arch.sparc20 Ty.empty_tenv in
  let col = Msrlt.collector m in
  let b1 = Hpm_machine.Mem.alloc m Hpm_machine.Mem.Heap Ty.Int Hpm_machine.Mem.Iheap in
  let b2 = Hpm_machine.Mem.alloc m Hpm_machine.Mem.Heap Ty.Int Hpm_machine.Mem.Iheap in
  check_bool "not visited" true (Msrlt.lookup col b1 = None);
  check_int "first id" 0 (Msrlt.register col b1);
  check_int "second id" 1 (Msrlt.register col b2);
  check_bool "visited now" true (Msrlt.lookup col b1 = Some 0);
  check_int "count" 2 (Msrlt.collected_count col);
  let found = Msrlt.search col b2.Hpm_machine.Mem.base in
  check_bool "search finds" true (found == b2);
  check_int "search counted" 1 col.Msrlt.searches

let test_msrlt_restore_side () =
  let m = Hpm_machine.Mem.create Hpm_arch.Arch.sparc20 Ty.empty_tenv in
  let r = Msrlt.restorer () in
  let b = Hpm_machine.Mem.alloc m Hpm_machine.Mem.Heap Ty.Int Hpm_machine.Mem.Iheap in
  Msrlt.bind r 0 b;
  check_bool "resolve" true (Msrlt.resolve r 0 == b);
  check_int "updates" 1 r.Msrlt.updates;
  expect_raise "unbound" (function Msrlt.Unbound 5 -> true | _ -> false) (fun () ->
      Msrlt.resolve r 5);
  expect_raise "double bind" (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Msrlt.bind r 0 b);
  (* growth beyond the initial capacity *)
  for i = 1 to 200 do
    Msrlt.bind r i b
  done;
  check_int "grown" 201 (Msrlt.bound_count r)

(* Restore-side edge cases: ids may arrive sparsely (a damaged or partial
   stream), and the table must fail loudly on the holes rather than hand
   back a stale or junk block. *)
let test_msrlt_sparse_binds () =
  let m = Hpm_machine.Mem.create Hpm_arch.Arch.sparc20 Ty.empty_tenv in
  let r = Msrlt.restorer () in
  let b = Hpm_machine.Mem.alloc m Hpm_machine.Mem.Heap Ty.Int Hpm_machine.Mem.Iheap in
  Msrlt.bind r 0 b;
  Msrlt.bind r 5 b;
  expect_raise "hole between sparse binds"
    (function Msrlt.Unbound 3 -> true | _ -> false)
    (fun () -> Msrlt.resolve r 3);
  check_bool "resolve across the hole" true (Msrlt.resolve r 5 == b);
  check_int "bound_count spans the hole" 6 (Msrlt.bound_count r);
  check_int "updates count actual binds only" 2 r.Msrlt.updates;
  expect_raise "id past the high-water mark"
    (function Msrlt.Unbound 9 -> true | _ -> false)
    (fun () -> Msrlt.resolve r 9);
  expect_raise "negative id"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Msrlt.bind r (-1) b);
  expect_raise "double bind of a sparse id"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Msrlt.bind r 5 b);
  (* the failed binds must not have disturbed the table *)
  check_int "count unchanged after rejected binds" 6 (Msrlt.bound_count r);
  check_bool "binding a hole later is fine" true (Msrlt.bind r 3 b; Msrlt.resolve r 3 == b)

(* ---- MSR graph ---- *)

let test_graph_fig1 () =
  (* the paper's Figure 1: 12 user-level vertices at the snapshot *)
  let src =
    {|
struct node { float data; struct node *link; };
struct node *first, *last;
void foo(struct node **p, int **q) {
  #pragma poll snapshot
  *p = (struct node *) malloc(sizeof(struct node));
  (*p)->data = 10.0;
  (**q)++;
}
int main() {
  int i;
  int a, *b;
  struct node *parray[10];
  a = 1; b = &a;
  for (i = 0; i < 10; i++) {
    foo(parray + i, &b);
    first = parray[0];
    last = parray[i];
    first->link = last;
    if (i > 0) parray[i]->link = parray[i - 1];
  }
  return 0;
}
|}
  in
  let m = prepare_user src in
  let p, _ = suspend m Hpm_arch.Arch.dec5000 4 in
  let g = Graph.user_only (Graph.reachable_from_roots p (Graph.snapshot p)) in
  check_int "12 vertices as in Figure 1" 12 (Graph.vertex_count g);
  (* the paper draws 12 edges; the snapshot semantics gives 13 (it includes
     addr1->addr4 from "first->link = last" which the figure omits) *)
  check_int "13 edges" 13 (Graph.edge_count g);
  (* segment census: 2 globals, 4 heap nodes, 6 stack variables *)
  let count seg =
    List.length (List.filter (fun v -> v.Graph.v_seg = seg) g.Graph.vertices)
  in
  check_int "globals" 2 (count Hpm_machine.Mem.Global);
  check_int "heap" 4 (count Hpm_machine.Mem.Heap);
  check_int "stack" 6 (count Hpm_machine.Mem.Stack)

let test_graph_interior_edge () =
  let src =
    {|
int main() {
  int a[10];
  int *p;
  a[7] = 1;
  p = &a[7];
  #pragma poll here
  print_int(*p);
  return 0;
}
|}
  in
  let m = prepare_user src in
  let p, _ = suspend m Hpm_arch.Arch.ultra5 0 in
  let g = Graph.user_only (Graph.snapshot p) in
  let e =
    List.find
      (fun e -> e.Graph.e_dst_ord = 7)
      g.Graph.edges
  in
  check_int "interior ordinal" 7 e.Graph.e_dst_ord

let test_graph_dot () =
  let m = prepare_user "int main() { int x; int *p; p = &x; #pragma poll h\n return 0; }" in
  let p, _ = suspend m Hpm_arch.Arch.ultra5 0 in
  let dot = Graph.to_dot (Graph.snapshot p) in
  check_bool "digraph" true (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  check_bool "has edge arrow" true (contains_sub dot "->")

let suite =
  [
    tc "TI table contents" test_ti_contents;
    tc "TI deterministic" test_ti_deterministic;
    tc "TI primitive ids stable" test_ti_primitive_ids_stable;
    tc "block type codec" test_block_ty_codec;
    tc "MSRLT collection side" test_msrlt_collect_side;
    tc "MSRLT restoration side" test_msrlt_restore_side;
    tc "MSRLT sparse binds and holes" test_msrlt_sparse_binds;
    tc "Figure 1 graph" test_graph_fig1;
    tc "interior pointer edges" test_graph_interior_edge;
    tc "dot output" test_graph_dot;
  ]
