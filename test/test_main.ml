(* Test runner: one alcotest binary aggregating every module's suite. *)

let () =
  Alcotest.run "hpm"
    [
      ("endian", Test_endian.suite);
      ("arch", Test_arch.suite);
      ("layout", Test_layout.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("typecheck", Test_typecheck.suite);
      ("lang-ext", Test_lang_ext.suite);
      ("scopes", Test_scopes.suite);
      ("cfg", Test_cfg.suite);
      ("liveness", Test_liveness.suite);
      ("pollpoint", Test_pollpoint.suite);
      ("unsafe", Test_unsafe.suite);
      ("lint", Test_lint.suite);
      ("annotate", Test_annotate.suite);
      ("mem", Test_mem.suite);
      ("mem-index", Test_mem_index.suite);
      ("interp", Test_interp.suite);
      ("xdr", Test_xdr.suite);
      ("stream", Test_stream.suite);
      ("xdr-batch", Test_xdr_batch.suite);
      ("msr", Test_msr.suite);
      ("collect-restore", Test_collect_restore.suite);
      ("migration", Test_migration.suite);
      ("portability", Test_portability.suite);
      ("matrix", Test_matrix.suite);
      ("failure-injection", Test_failure.suite);
      ("transport", Test_transport.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("handoff", Test_handoff.suite);
      ("inspect", Test_inspect.suite);
      ("fuzz", Test_fuzz.suite);
      ("netsim", Test_netsim.suite);
      ("sched", Test_sched.suite);
      ("store", Test_store.suite);
      ("replica", Test_replica.suite);
      ("precopy", Test_precopy.suite);
      ("obs", Test_obs.suite);
      ("workloads", Test_workloads.suite);
      ("bench-json", Test_bench_json.suite);
      ("query", Test_query.suite);
      ("cluster", Test_cluster.suite);
    ]
