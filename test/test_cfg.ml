(** CFG tests: back edges, loop headers, loop depth. *)

open Hpm_ir
open Util

let func_of src name =
  let ast = check_src src in
  let prog, _ = Compile.lower ast in
  Ir.find_func_exn prog name

let test_straight_line () =
  let f = func_of "int main() { int x; x = 1; x = x + 1; return x; }" "main" in
  check_bool "no back edges" true (Cfg.back_edges f = []);
  check_bool "no loop headers" true (Cfg.loop_headers f = []);
  check_bool "depth all zero" true (Array.for_all (( = ) 0) (Cfg.loop_depth f))

let test_single_loop () =
  let f =
    func_of "int main() { int i; for (i = 0; i < 9; i++) { print_int(i); } return 0; }" "main"
  in
  check_int "one loop header" 1 (List.length (Cfg.loop_headers f));
  check_int "one back edge" 1 (List.length (Cfg.back_edges f));
  let depth = Cfg.loop_depth f in
  let header = List.hd (Cfg.loop_headers f) in
  check_int "header depth" 1 depth.(header)

let test_nested_loops () =
  let f =
    func_of
      {|
int main() {
  int i; int j; int k;
  for (i = 0; i < 3; i++) {
    for (j = 0; j < 3; j++) {
      while (k < j) { k++; }
    }
  }
  return 0;
}
|}
      "main"
  in
  check_int "three loop headers" 3 (List.length (Cfg.loop_headers f));
  let depth = Cfg.loop_depth f in
  let maxd = Array.fold_left max 0 depth in
  check_int "innermost depth 3" 3 maxd

let test_do_while () =
  let f = func_of "int main() { int i; i = 0; do { i++; } while (i < 4); return i; }" "main" in
  check_int "do-while is a loop" 1 (List.length (Cfg.loop_headers f))

let test_unreachable_blocks () =
  let f = func_of "int main() { return 1; print_int(2); return 3; }" "main" in
  let reach = Cfg.reachable f in
  check_bool "entry reachable" true reach.(f.Ir.entry);
  check_bool "some block unreachable" true (Array.exists not reach)

let test_rpo () =
  let f =
    func_of "int main() { int i; if (i) { print_int(1); } else { print_int(2); } return 0; }"
      "main"
  in
  let rpo = Cfg.reverse_postorder f in
  check_bool "starts at entry" true (List.hd rpo = f.Ir.entry);
  (* rpo contains no duplicates *)
  check_int "no duplicates" (List.length rpo) (List.length (List.sort_uniq compare rpo))

let test_rpo_excludes_unreachable () =
  let f = func_of "int main() { return 1; print_int(2); return 3; }" "main" in
  let reach = Cfg.reachable f in
  let rpo = Cfg.reverse_postorder f in
  check_bool "every rpo block is reachable" true
    (List.for_all (fun b -> reach.(b)) rpo);
  check_int "rpo covers exactly the reachable blocks"
    (Array.fold_left (fun n r -> if r then n + 1 else n) 0 reach)
    (List.length rpo);
  check_bool "rpo omits dead blocks" true
    (List.length rpo < Array.length f.Ir.blocks)

let test_back_edge_endpoints_do_while () =
  let f =
    func_of "int main() { int i; i = 0; do { i++; } while (i < 4); return i; }" "main"
  in
  match Cfg.back_edges f with
  | [ ((src, dst) as e) ] ->
      check_bool "target is a loop header" true (List.mem dst (Cfg.loop_headers f));
      let body = Cfg.natural_loop f e in
      check_bool "source inside its own loop" true (List.mem src body);
      check_bool "header inside its own loop" true (List.mem dst body)
  | es -> Alcotest.failf "expected one back edge, got %d" (List.length es)

let test_back_edge_endpoints_nested () =
  let f =
    func_of
      {|
int main() {
  int i; int j; int s;
  s = 0;
  for (i = 0; i < 3; i++) {
    for (j = 0; j < 3; j++) {
      s = s + i * j;
    }
  }
  print_int(s);
  return 0;
}
|}
      "main"
  in
  let headers = Cfg.loop_headers f in
  let bes = Cfg.back_edges f in
  check_int "two back edges" 2 (List.length bes);
  check_bool "every back edge targets a loop header" true
    (List.for_all (fun (_, dst) -> List.mem dst headers) bes);
  List.iter
    (fun ((src, dst) as e) ->
      let body = Cfg.natural_loop f e in
      check_bool "back-edge source inside its loop" true (List.mem src body);
      check_bool "back-edge target inside its loop" true (List.mem dst body))
    bes;
  (* the loops nest: one natural loop strictly contains the other *)
  (match List.map (Cfg.natural_loop f) bes with
  | [ a; b ] ->
      let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
      check_bool "inner loop nests inside the outer" true
        ((subset a b && List.length a < List.length b)
        || (subset b a && List.length b < List.length a))
  | _ -> Alcotest.fail "expected two natural loops");
  let depth = Cfg.loop_depth f in
  check_int "innermost depth 2" 2 (Array.fold_left max 0 depth)

let test_natural_loop_membership () =
  let f =
    func_of "int main() { int i; for (i = 0; i < 5; i++) { if (i > 2) print_int(i); } return 0; }"
      "main"
  in
  match Cfg.back_edges f with
  | [ ((_, header) as e) ] ->
      let body = Cfg.natural_loop f e in
      check_bool "header in loop" true (List.mem header body);
      check_bool "loop has several blocks" true (List.length body >= 3)
  | es -> Alcotest.failf "expected one back edge, got %d" (List.length es)

let suite =
  [
    tc "straight-line code" test_straight_line;
    tc "single loop" test_single_loop;
    tc "nested loops" test_nested_loops;
    tc "do-while" test_do_while;
    tc "unreachable blocks" test_unreachable_blocks;
    tc "reverse postorder" test_rpo;
    tc "rpo excludes unreachable blocks" test_rpo_excludes_unreachable;
    tc "back-edge endpoints (do-while)" test_back_edge_endpoints_do_while;
    tc "back-edge endpoints (nested loops)" test_back_edge_endpoints_nested;
    tc "natural loop membership" test_natural_loop_membership;
  ]
