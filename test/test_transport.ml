(** Chunked-transport tests: framing, CRC-32, the retry/abort protocol,
    and the end-to-end guarantee that a lossy link either delivers a
    byte-identical stream or leaves the source process runnable. *)

open Hpm_net
open Hpm_core
open Util

(* ---- CRC-32 ---- *)

let test_crc32_vectors () =
  (* standard IEEE CRC-32 check values (zlib-compatible) *)
  check_int "empty" 0 (Transport.crc32 "");
  check_int "check value" 0xCBF43926 (Transport.crc32 "123456789");
  check_int "a" 0xE8B7BE43 (Transport.crc32 "a");
  check_int "abc" 0x352441C2 (Transport.crc32 "abc");
  (* windowed digest matches the digest of the substring *)
  check_int "windowed" (Transport.crc32 "234567")
    (Transport.crc32 ~pos:1 ~len:6 "123456789")

let test_crc32_detects_flips () =
  let s = String.init 257 (fun i -> Char.chr (i * 31 mod 256)) in
  let c = Transport.crc32 s in
  for i = 0 to String.length s - 1 do
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    if Transport.crc32 (Bytes.to_string b) = c then
      Alcotest.failf "flip at %d not detected" i
  done

(* ---- framing ---- *)

let test_frame_roundtrip () =
  let payload = "the quick brown fox" in
  let f = Transport.encode_frame ~seq:3 ~total:7 payload in
  check_int "frame overhead" (String.length payload + Transport.header_bytes)
    (String.length f);
  (match Transport.decode_frame ~expect_seq:3 ~expect_total:7 f with
  | Ok p -> check_string "payload back" payload p
  | Error e -> Alcotest.failf "rejected good frame: %s" e);
  (* wrong expectations are NAKed *)
  check_bool "wrong seq" true
    (Result.is_error (Transport.decode_frame ~expect_seq:4 ~expect_total:7 f));
  check_bool "wrong total" true
    (Result.is_error (Transport.decode_frame ~expect_seq:3 ~expect_total:8 f))

let test_frame_rejects_damage () =
  let f = Transport.encode_frame ~seq:0 ~total:1 "payload bytes here" in
  let reject s = Result.is_error (Transport.decode_frame ~expect_seq:0 ~expect_total:1 s) in
  (* every single-byte flip anywhere in the frame is caught *)
  for i = 0 to String.length f - 1 do
    let b = Bytes.of_string f in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    if not (reject (Bytes.to_string b)) then Alcotest.failf "flip at %d accepted" i
  done;
  (* every truncation is caught *)
  for k = 0 to String.length f - 1 do
    if not (reject (String.sub f 0 k)) then Alcotest.failf "truncation to %d accepted" k
  done;
  check_bool "empty" true (reject "")

(* ---- protocol: zero-fault path ---- *)

let test_zero_fault_no_overhead () =
  let data = String.init 10_000 (fun i -> Char.chr (i mod 251)) in
  let ch = Netsim.loopback () in
  match Transport.transfer ch data with
  | Transport.Aborted _ -> Alcotest.fail "perfect link aborted"
  | Transport.Delivered (got, ts) ->
      check_string "byte-identical" data got;
      check_int "chunks" 3 ts.Transport.t_chunks;
      (* a clean link resends nothing *)
      check_int "no retries" 0 ts.Transport.t_retries;
      check_int "no resent bytes" 0 ts.Transport.t_resent_bytes;
      check_int "sent = chunks" ts.Transport.t_chunks ts.Transport.t_sent;
      check_int "payload accounted" (String.length data) ts.Transport.t_payload_bytes;
      check_bool "no backoff" true (ts.Transport.t_backoff_s = 0.0)

let test_empty_and_boundary_sizes () =
  let ch = Netsim.loopback () in
  let cfg = { Transport.default_config with Transport.chunk_size = 64 } in
  List.iter
    (fun n ->
      let data = String.init n (fun i -> Char.chr (i mod 256)) in
      match Transport.transfer ~config:cfg ch data with
      | Transport.Delivered (got, ts) ->
          check_string (Printf.sprintf "size %d" n) data got;
          check_int
            (Printf.sprintf "chunk count for %d" n)
            (max 1 ((n + 63) / 64))
            ts.Transport.t_chunks
      | Transport.Aborted _ -> Alcotest.failf "size %d aborted" n)
    [ 0; 1; 63; 64; 65; 128; 1000 ]

(* ---- protocol: faulty links ---- *)

let transfer_with ~loss ~corrupt ~seed ?(config = Transport.default_config) data =
  let faults = Netsim.fault_model ~loss_rate:loss ~corrupt_rate:corrupt ~seed () in
  let ch = Netsim.ethernet_10 ~faults () in
  Transport.transfer ~config ch data

let test_deterministic_schedule () =
  let data = String.init 5_000 (fun i -> Char.chr (i * 7 mod 256)) in
  let run () =
    match transfer_with ~loss:0.2 ~corrupt:0.2 ~seed:77 data with
    | Transport.Delivered (_, ts) -> ("ok", ts.Transport.t_sent, ts.Transport.t_retries)
    | Transport.Aborted { failed_seq; attempts; stats; _ } ->
        (Printf.sprintf "abort@%d/%d" failed_seq attempts, stats.Transport.t_sent,
         stats.Transport.t_retries)
  in
  check_bool "same seed, same run" true (run () = run ())

(* For any seeded schedule with per-chunk failure probability < 1, the
   transfer either completes byte-identically or aborts cleanly — never
   delivers garbage. *)
let prop_deliver_or_abort =
  qt ~count:120 "lossy transfer: byte-identical or clean abort"
    QCheck.(
      quad (int_range 0 100_000) (int_range 0 80) (int_range 0 80) (int_range 1 9000))
    (fun (seed, loss_pct, corrupt_pct, size) ->
      let data = String.init size (fun i -> Char.chr ((i * 131 + seed) mod 256)) in
      let config = { Transport.default_config with Transport.chunk_size = 512 } in
      match
        transfer_with
          ~loss:(float_of_int loss_pct /. 100.0)
          ~corrupt:(float_of_int corrupt_pct /. 100.0)
          ~seed ~config data
      with
      | Transport.Delivered (got, ts) ->
          String.equal got data
          && ts.Transport.t_payload_bytes = size
          && ts.Transport.t_sent = ts.Transport.t_chunks + ts.Transport.t_retries
      | Transport.Aborted { attempts; stats; _ } ->
          attempts = Transport.default_config.Transport.max_retries + 1
          && stats.Transport.t_retries >= Transport.default_config.Transport.max_retries)

(* With moderate fault rates and bounded retries, transfers overwhelmingly
   succeed: P(chunk fails 9 straight times at 30%) ~ 2e-5. *)
let test_moderate_faults_deliver () =
  let data = String.init 20_000 (fun i -> Char.chr (i mod 256)) in
  let delivered = ref 0 in
  for seed = 1 to 20 do
    match transfer_with ~loss:0.15 ~corrupt:0.15 ~seed data with
    | Transport.Delivered (got, _) ->
        if String.equal got data then incr delivered
    | Transport.Aborted _ -> ()
  done;
  check_bool "most transfers survive a 30% fault rate" true (!delivered >= 18)

let test_backoff_accounted () =
  let data = String.init 8_000 (fun i -> Char.chr (i mod 256)) in
  (* find a seed that retries at least once *)
  let rec go seed =
    if seed > 50 then Alcotest.fail "no retrying seed found"
    else
      match transfer_with ~loss:0.3 ~corrupt:0.3 ~seed data with
      | Transport.Delivered (_, ts) when ts.Transport.t_retries > 0 -> ts
      | _ -> go (seed + 1)
  in
  let ts = go 1 in
  check_bool "backoff adds simulated time" true (ts.Transport.t_backoff_s > 0.0);
  check_bool "time includes backoff" true (ts.Transport.t_time_s > ts.Transport.t_backoff_s);
  check_bool "resends accounted" true
    (ts.Transport.t_resent_bytes >= ts.Transport.t_retries * Transport.header_bytes)

(* ---- backoff cap (regression) ---- *)

(* Uncapped exponential backoff with [max_retries = 64] would wait
   2^63 x base before the final attempt.  The clamp holds every wait at
   1024 x base, so a fully corrupting link costs
   base * (sum_{k=0}^{10} 2^k + 53 * 1024) = base * 56319 in total. *)
let test_backoff_capped () =
  let cfg = { Transport.default_config with Transport.max_retries = 64 } in
  let base = cfg.Transport.backoff_base_s in
  check_bool "first retry waits base" true (Transport.backoff_wait cfg 0 = base);
  check_bool "k=10 reaches the cap" true
    (Transport.backoff_wait cfg 10 = Transport.backoff_cap_factor *. base);
  check_bool "k=63 stays at the cap" true
    (Transport.backoff_wait cfg 63 = Transport.backoff_cap_factor *. base);
  let data = String.init 512 (fun i -> Char.chr (i mod 256)) in
  match transfer_with ~loss:0.0 ~corrupt:1.0 ~seed:1 ~config:cfg data with
  | Transport.Delivered _ -> Alcotest.fail "fully corrupted link delivered"
  | Transport.Aborted { attempts; stats; _ } ->
      check_int "attempts = max_retries + 1" 65 attempts;
      let expect = base *. 56319.0 in
      check_bool "cumulative backoff hits the capped sum exactly" true
        (Float.abs (stats.Transport.t_backoff_s -. expect) <= 1e-9 *. expect);
      check_bool "total time is finite and bounded" true
        (Float.is_finite stats.Transport.t_time_s
        && stats.Transport.t_time_s < 2.0 *. expect +. 60.0)

(* ---- end-to-end: migration over a lossy link ---- *)

let bitonic_m = lazy (prepare ((Hpm_workloads.Registry.find_exn "bitonic").Hpm_workloads.Registry.source 300))

let test_migration_survives_lossy_link () =
  let m = Lazy.force bitonic_m in
  let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.ultra5 in
  let faults = Netsim.fault_model ~loss_rate:0.2 ~corrupt_rate:0.2 ~seed:5 () in
  let channel = Netsim.ethernet_10 ~faults () in
  let transport = { Transport.default_config with Transport.chunk_size = 256 } in
  let o =
    Migration.run_migrating m ~src_arch:Hpm_arch.Arch.dec5000
      ~dst_arch:Hpm_arch.Arch.sparc20 ~after_polls:400 ~channel ~transport ()
  in
  check_bool "migrated" true o.Migration.migrated;
  check_string "output correct across the lossy link" expected o.Migration.output;
  match o.Migration.report with
  | Some { Migration.transport_stats = Some ts; _ } ->
      check_bool "chunked" true (ts.Transport.t_chunks > 1)
  | _ -> Alcotest.fail "expected transport stats in the report"

let test_abort_leaves_source_runnable () =
  (* 100% corruption: every chunk fails every time; the destination aborts
     and the source resumes from its suspended state and completes *)
  let m = Lazy.force bitonic_m in
  let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.ultra5 in
  let faults = Netsim.fault_model ~corrupt_rate:1.0 ~seed:3 () in
  let channel = Netsim.ethernet_10 ~faults () in
  let o =
    Migration.run_migrating m ~src_arch:Hpm_arch.Arch.dec5000
      ~dst_arch:Hpm_arch.Arch.sparc20 ~after_polls:400 ~channel ()
  in
  check_bool "not migrated" false o.Migration.migrated;
  (match o.Migration.transfer_failure with
  | Some f ->
      check_int "first chunk exhausted" 0 f.Migration.f_seq;
      check_int "all attempts used" (Transport.default_config.Transport.max_retries + 1)
        f.Migration.f_attempts
  | None -> Alcotest.fail "expected a transfer failure");
  check_string "source finished the work itself" expected o.Migration.output

let test_abort_source_can_retry_later () =
  (* after an abort the suspended source is intact: a later migration over
     a clean link still works from the same suspension *)
  let m = Lazy.force bitonic_m in
  let expected, _, _ = Migration.run_plain m Hpm_arch.Arch.ultra5 in
  let src, _ = suspend m Hpm_arch.Arch.dec5000 400 in
  let bad = Netsim.ethernet_10 ~faults:(Netsim.fault_model ~corrupt_rate:1.0 ~seed:9 ()) () in
  (match Migration.migrate_over ~channel:bad m src Hpm_arch.Arch.sparc20 with
  | Ok _ -> Alcotest.fail "fully corrupted link delivered"
  | Error _ -> ());
  let good = Netsim.ethernet_10 () in
  match Migration.migrate_over ~channel:good m src Hpm_arch.Arch.sparc20 with
  | Error f -> Alcotest.failf "clean retry failed: %s" f.Migration.f_reason
  | Ok (dst, _) -> (
      match Hpm_machine.Interp.run dst with
      | Hpm_machine.Interp.RDone _ ->
          check_string "second attempt delivered"
            expected
            (Hpm_machine.Interp.output src ^ Hpm_machine.Interp.output dst)
      | _ -> Alcotest.fail "destination did not finish")

(* ---------------------------------------------------------------- *)
(* Heartbeat frames                                                  *)
(* ---------------------------------------------------------------- *)

let test_heartbeat_vector () =
  (* pinned wire vector: layout drift in docs/FORMAT.md shows up here *)
  let hb = Transport.encode_heartbeat ~seq:1 ~epoch:7 in
  check_int "heartbeat frames are 16 bytes" Transport.heartbeat_bytes
    (String.length hb);
  check_string "wire vector (seq=1, epoch=7)"
    "\x48\x50\x48\x42\x00\x00\x00\x01\x00\x00\x00\x07\xc6\x26\x63\x7a" hb;
  check_int "CRC covers exactly the seq and epoch words" 3324404602
    (Transport.crc32 ~pos:4 ~len:8 hb);
  match Transport.decode_heartbeat hb with
  | Ok (seq, epoch) ->
      check_int "seq round-trips" 1 seq;
      check_int "epoch round-trips" 7 epoch
  | Error m -> Alcotest.fail ("heartbeat rejected: " ^ m)

let test_heartbeat_rejects_damage () =
  let hb = Transport.encode_heartbeat ~seq:42 ~epoch:3 in
  (* every single-byte flip is caught by magic, size, or CRC *)
  for i = 0 to String.length hb - 1 do
    let b = Bytes.of_string hb in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
    match Transport.decode_heartbeat (Bytes.to_string b) with
    | Ok _ -> Alcotest.failf "flip at byte %d slipped through" i
    | Error _ -> ()
  done;
  (match Transport.decode_heartbeat (String.sub hb 0 12) with
  | Ok _ -> Alcotest.fail "truncated heartbeat accepted"
  | Error m -> check_bool "size named in the reason" true (contains_sub m "16"));
  expect_raise "negative seq refused"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Transport.encode_heartbeat ~seq:(-1) ~epoch:0));
  expect_raise "negative epoch refused"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Transport.encode_heartbeat ~seq:0 ~epoch:(-1)))

let suite =
  [
    tc "crc32 known vectors" test_crc32_vectors;
    tc "heartbeat wire vector and round-trip" test_heartbeat_vector;
    tc "heartbeat rejects damage" test_heartbeat_rejects_damage;
    tc "crc32 detects every single-byte flip" test_crc32_detects_flips;
    tc "frame round-trip and expectations" test_frame_roundtrip;
    tc "damaged frames rejected" test_frame_rejects_damage;
    tc "zero-fault path has no resends" test_zero_fault_no_overhead;
    tc "boundary sizes chunk correctly" test_empty_and_boundary_sizes;
    tc "fault schedules are deterministic" test_deterministic_schedule;
    prop_deliver_or_abort;
    tc "moderate fault rates deliver" test_moderate_faults_deliver;
    tc "backoff and resends accounted" test_backoff_accounted;
    tc "backoff capped under large retry budgets" test_backoff_capped;
    tc "migration survives a lossy link" test_migration_survives_lossy_link;
    tc "abort leaves the source runnable" test_abort_leaves_source_runnable;
    tc "aborted source can retry on a clean link" test_abort_source_can_retry_later;
  ]
