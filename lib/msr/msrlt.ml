(** The MSR Lookup Table (MSRLT).

    The mapping between machine-specific addresses and machine-independent
    block identities that drives both directions of a migration:

    - during *collection*, a pointer value (a raw address) is translated
      to (mi_id, ordinal): the balanced-tree search over the block table
      is the [MSRLT_search] term of §4.2, O(log n) per pointer and
      O(n log n) over a fully-connected heap;
    - during *restoration*, (mi_id, ordinal) is translated to a fresh
      address on the destination machine: mi_ids arrive densely numbered
      in first-visit order, so the table is an array and each update is
      O(1) — the O(n) [MSRLT_update] term of §4.2.

    Counters for searches and updates are kept here so the complexity
    experiment can report the decomposition the paper describes. *)

open Hpm_machine

(* ---- collection side ---- *)

type collect_side = {
  mem : Mem.t;
  ids : (int, int) Hashtbl.t;  (** runtime block id → mi_id *)
  mutable next_id : int;
  mutable searches : int;      (** address → block searches performed *)
  since : int;
      (** write mark of the previous collection epoch; blocks whose write
          generation is newer are dirty.  [-1] (the default) marks every
          block dirty — a full collection. *)
  mutable scanned : int;       (** blocks examined for dirtiness *)
  mutable dirty : int;         (** of those, blocks written since [since] *)
}

let collector ?(since = -1) mem =
  { mem; ids = Hashtbl.create 64; next_id = 0; searches = 0; since; scanned = 0; dirty = 0 }

(** Has [block] been written (or allocated) since the epoch this collector
    tracks from?  Counts the scan. *)
let note_dirty c (block : Mem.block) : bool =
  c.scanned <- c.scanned + 1;
  let d = block.Mem.wgen > c.since in
  if d then c.dirty <- c.dirty + 1;
  d

(** Translate an address to its containing block (O(log n) search).
    @raise Mem.Fault on wild or dangling addresses. *)
let search c (addr : int64) : Mem.block =
  c.searches <- c.searches + 1;
  Mem.find_block c.mem addr

(** mi_id of [block] if it was already visited during this collection. *)
let lookup c (block : Mem.block) : int option = Hashtbl.find_opt c.ids block.Mem.bid

(** Assign the next mi_id to [block]; it must not be registered yet. *)
let register c (block : Mem.block) : int =
  assert (not (Hashtbl.mem c.ids block.Mem.bid));
  let id = c.next_id in
  c.next_id <- c.next_id + 1;
  Hashtbl.replace c.ids block.Mem.bid id;
  id

let collected_count c = c.next_id

(* ---- restoration side ---- *)

type restore_side = {
  mutable blocks : Mem.block option array;  (** mi_id → destination block *)
  mutable count : int;
  mutable updates : int;
}

let restorer () = { blocks = Array.make 64 None; count = 0; updates = 0 }

(** Bind mi_id [id] to [block] on the destination machine (O(1)). *)
let bind r id (block : Mem.block) =
  if id < 0 then invalid_arg "Msrlt.bind: negative mi_id";
  let cap = Array.length r.blocks in
  if id >= cap then (
    let blocks = Array.make (max (id + 1) (2 * cap)) None in
    Array.blit r.blocks 0 blocks 0 cap;
    r.blocks <- blocks);
  (match r.blocks.(id) with
  | Some _ -> invalid_arg (Printf.sprintf "Msrlt.bind: mi_id %d bound twice" id)
  | None -> ());
  r.blocks.(id) <- Some block;
  r.count <- max r.count (id + 1);
  r.updates <- r.updates + 1

exception Unbound of int

(** Destination block for mi_id [id].
    @raise Unbound when the stream references an id never defined —
    corrupted or truncated input. *)
let resolve r id : Mem.block =
  if id < 0 || id >= r.count then raise (Unbound id)
  else match r.blocks.(id) with Some b -> b | None -> raise (Unbound id)

let bound_count r = r.count

(* ---- observability ---- *)

module Obs = Hpm_obs.Obs

(** Publish a finished collection epoch's §4.2 counters into the metrics
    registry (no-op without an installed sink). *)
let publish_collect (c : collect_side) =
  if Obs.metrics_on () then begin
    Obs.inc "hpm_msrlt_searches_total" [] ~by:(float_of_int c.searches);
    Obs.inc "hpm_msrlt_blocks_scanned_total" [] ~by:(float_of_int c.scanned);
    Obs.inc "hpm_msrlt_blocks_dirty_total" [] ~by:(float_of_int c.dirty)
  end

(** Publish a finished restoration epoch's §4.2 counters. *)
let publish_restore (r : restore_side) =
  if Obs.metrics_on () then
    Obs.inc "hpm_msrlt_updates_total" [] ~by:(float_of_int r.updates)
