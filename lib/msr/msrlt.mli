(** The MSR Lookup Table: machine-specific address ↔ machine-independent
    block identity, one side per direction of a migration.

    Collection side: O(log n) address→block searches (the [MSRLT_search]
    term of §4.2) plus first-visit mi_id assignment in DFS order.
    Restoration side: dense mi_id→block binding, O(1) per update (the
    [MSRLT_update] term).  Both sides count their operations for the
    complexity experiments. *)

open Hpm_machine

(** {1 Collection side} *)

type collect_side = {
  mem : Mem.t;
  ids : (int, int) Hashtbl.t;  (** runtime block id → mi_id *)
  mutable next_id : int;
  mutable searches : int;
  since : int;
      (** write mark of the previous collection epoch ([-1] = none: every
          block counts as dirty, i.e. a full collection) *)
  mutable scanned : int;
  mutable dirty : int;
}

(** [collector ?since mem] starts a collection epoch.  [since] is the
    {!Mem.write_mark} observed at the previous epoch, enabling dirty-block
    enumeration for incremental snapshots. *)
val collector : ?since:int -> Mem.t -> collect_side

(** Whether the block was written since [since]; increments the
    scanned/dirty counters. *)
val note_dirty : collect_side -> Mem.block -> bool

(** Address → containing live block (O(log n); counted).
    @raise Mem.Fault on wild or dangling addresses. *)
val search : collect_side -> int64 -> Mem.block

(** mi_id of a block already visited in this collection, if any. *)
val lookup : collect_side -> Mem.block -> int option

(** Assign the next mi_id; the block must not be registered yet. *)
val register : collect_side -> Mem.block -> int

val collected_count : collect_side -> int

(** {1 Restoration side} *)

type restore_side = {
  mutable blocks : Mem.block option array;
  mutable count : int;
  mutable updates : int;
}

val restorer : unit -> restore_side

(** Bind a (dense, in-order) mi_id to its destination block.
    @raise Invalid_argument on negative or duplicate ids. *)
val bind : restore_side -> int -> Mem.block -> unit

exception Unbound of int

(** Destination block of an mi_id. @raise Unbound for never-defined ids
    (corrupted or truncated streams). *)
val resolve : restore_side -> int -> Mem.block

val bound_count : restore_side -> int

(** {1 Observability}

    Push a finished epoch's counters into [Hpm_obs] as the
    [hpm_msrlt_*_total] metrics — the §4.2 [MSRLT_search] /
    [MSRLT_update] terms.  No-ops when no metrics sink is installed. *)

val publish_collect : collect_side -> unit
val publish_restore : restore_side -> unit
