(** The at-scale discrete-event cluster scheduler.

    {!Sched} drives real interpreters through the full
    collect/transfer/restore pipeline — perfect fidelity, but a handful
    of nodes is its natural size.  This engine is the other end of the
    telescope: processes are modelled (a work budget, a state size, a
    poll cadence) and every protocol step is a scheduled event, so a
    seeded 1000-node / 10k-process churn run with hundreds of
    overlapping two-phase migrations completes in seconds and is
    byte-identical across same-seed reruns.

    The machinery it runs on is shared with {!Sched}: the {!Eheap}
    global event heap (total order (time, seq) — same-instant events
    fire in scheduling order), the {!Policy} placement signature, and
    the HPMJ fleet journal / {!Hpm_obs.Obs} trace surfaces.

    The modelled protocol mirrors {!Hpm_core.Handoff}'s outcomes:

    - a migration is requested by a policy round, noticed at the
      process's next poll point, then collect → transfer → restore →
      commit as scheduled events (the process is suspended from its
      source run queue at the poll, and joins the destination's on
      commit);
    - gang decisions move as one migration: members suspend at their
      own poll points, the transfer begins when the {e last} member is
      in, and a single commit lands every member on the destination —
      or a crash aborts every member (all-or-nothing);
    - a destination crash before commit re-queues the whole migration
      to the least-loaded live node ([Requeued]);
    - a source crash before the transfer completes aborts the
      migration ([Failed]) and the victims recover from their newest
      implicit checkpoint ([Recovered], after a restart delay) — work
      since the checkpoint is re-executed, output is never duplicated
      (exactly one [Finished] journal record per process, ever);
    - a source crash after the transfer completes commits normally —
      the bytes are already on the destination.

    Determinism: every choice flows from the seeded {!Rng}, the event
    heap's (time, seq) order, and name-tie-broken node selection.
    Nothing iterates a hash table to make a decision. *)

open Hpm_machine
open Hpm_store

module ISet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  c_nodes : int;
  c_procs : int;
  c_seed : int;
  c_sites : int;              (** nodes striped across this many sites *)
  c_speeds : float list;      (** node speeds, cycled by node id *)
  c_mean_work_s : float;      (** mean process work at speed 1.0 (±50%) *)
  c_state_bytes_min : int;
  c_state_bytes_max : int;
  c_hot_frac : float;         (** all processes spawn on this fraction of
                                  nodes — the imbalance churn must drain *)
  c_poll_every_s : float;     (** poll-point grid (migration notice latency) *)
  c_policy_every_s : float;   (** placement policy cadence *)
  c_max_moves : int;          (** moves one policy round may request *)
  c_cooldown_s : float;       (** anti-flap hysteresis window *)
  c_gang_groups : int;        (** process groups that must move as one *)
  c_gang_size : int;
  c_crash_nodes : int;        (** nodes that crash during the run *)
  c_crash_from_s : float;
  c_crash_window_s : float;
  c_restart_delay_s : float;  (** crash-victim recovery delay *)
  c_ckpt_work_s : float;      (** implicit checkpoint granularity, in
                                  work-seconds: recovery replays at most
                                  this much re-execution *)
  c_collect_bps : float;      (** state collection rate, bytes/s *)
  c_restore_bps : float;      (** state restoration rate, bytes/s *)
  c_bw_bps : float;           (** transfer bandwidth, bytes/s *)
  c_latency_s : float;        (** per-transfer latency floor *)
  c_jitter_s : float;         (** max seeded uniform extra transfer latency *)
  c_max_sim_s : float;        (** hard stop for the simulated clock *)
}

(** The standing churn scenario: 1000 nodes / 10k processes, everything
    spawned on the hottest 10% of the fleet, 10 node crashes while the
    policy drains the imbalance.  The policy default is
    hysteresis(gang(least-loaded)). *)
let default_churn : config =
  {
    c_nodes = 1000;
    c_procs = 10_000;
    c_seed = 42;
    c_sites = 10;
    c_speeds = [ 1.0; 1.5; 0.75; 2.0 ];
    c_mean_work_s = 30.0;
    c_state_bytes_min = 64 * 1024;
    c_state_bytes_max = 1024 * 1024;
    c_hot_frac = 0.1;
    c_poll_every_s = 0.05;
    c_policy_every_s = 0.25;
    c_max_moves = 150;
    c_cooldown_s = 1.0;
    c_gang_groups = 20;
    c_gang_size = 5;
    c_crash_nodes = 10;
    c_crash_from_s = 2.0;
    c_crash_window_s = 10.0;
    c_restart_delay_s = 0.5;
    c_ckpt_work_s = 1.0;
    c_collect_bps = 400e6;
    c_restore_bps = 300e6;
    c_bw_bps = 1e9;
    c_latency_s = 2e-3;
    c_jitter_s = 5e-3;
    c_max_sim_s = 600.0;
  }

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type cnode = {
  cn_id : int;
  cn_name : string;
  cn_speed : float;
  cn_site : string;
  mutable cn_alive : bool;
  mutable cn_running : ISet.t;  (** the run queue: pids sharing this CPU *)
}

type cproc = {
  cp_id : int;
  cp_name : string;
  cp_group : string;           (** gang group; [""] = ungrouped *)
  cp_work_s : float;           (** total work at speed 1.0 *)
  cp_state_bytes : int;
  mutable cp_node : int;
  mutable cp_done_s : float;
  mutable cp_rate : float;     (** current work-units/second (0 = not running) *)
  mutable cp_updated_s : float;
  mutable cp_version : int;    (** stamps finish events; stale ones are dropped *)
  mutable cp_mig : int option; (** migration in flight, by id *)
  mutable cp_suspended : bool; (** off the run queue, mid-handoff *)
  mutable cp_down : bool;      (** crash victim awaiting recovery *)
  mutable cp_finished : bool;
  mutable cp_epoch : int;
  mutable cp_migrations : int;
  mutable cp_last_move_s : float;
}

(* One in-flight (possibly gang) migration. *)
type cmig = {
  m_id : int;
  mutable m_dst : int;
  mutable m_members : (int * int) list;  (** (pid, src node id), decision order *)
  mutable m_waiting : int;     (** members not yet at their poll point *)
  mutable m_version : int;     (** stamps commit events (requeue bumps it) *)
  mutable m_begun : bool;
  mutable m_transfer_done_s : float;
      (** once begun: when the wire transfer completes — a source crash
          before this aborts, after it the commit stands *)
  mutable m_cancelled : bool;
  mutable m_committed : bool;
  m_start_s : float;
}

type ev =
  | Ev_finish of int * int   (* pid, proc version *)
  | Ev_poll of int * int     (* pid, migration id *)
  | Ev_commit of int * int   (* migration id, migration version *)
  | Ev_crash of int          (* node id *)
  | Ev_recover of int        (* pid *)
  | Ev_policy

type t = {
  cfg : config;
  policy : Policy.t;
  cnodes : cnode array;
  cprocs : cproc array;
  heap : ev Eheap.t;
  rng : Rng.t;
  migs : cmig Vec.t;
  journal : Journal.t option;
  evlog : string Vec.t;        (** deterministic text event log *)
  mutable now : float;
  mutable finished : int;
  mutable inflight : int;
  mutable peak_inflight : int;
  mutable processed : int;     (** events executed (stale ones included) *)
  mutable n_requested : int;
  mutable n_migrations : int;  (** committed member moves *)
  mutable n_failed : int;
  mutable n_requeued : int;
  mutable n_recovered : int;
  mutable n_crashes : int;
}

(* ------------------------------------------------------------------ *)
(* Logging: text event log + HPMJ journal + Obs                        *)
(* ------------------------------------------------------------------ *)

let logline t fmt =
  Printf.ksprintf
    (fun s -> Vec.push t.evlog (Printf.sprintf "[%12.6f] %s" t.now s))
    fmt

let jadd t e = match t.journal with None -> () | Some j -> Journal.append j e

let observe t kind =
  if Hpm_obs.Obs.metrics_on () then
    Hpm_obs.Obs.inc "hpm_cluster_events_total" [ ("kind", kind) ];
  if Hpm_obs.Obs.tracing () then
    Hpm_obs.Obs.instant ~ts:t.now ~cat:"cluster" ("cluster." ^ kind)

let set_inflight t d =
  t.inflight <- t.inflight + d;
  if t.inflight > t.peak_inflight then t.peak_inflight <- t.inflight;
  if Hpm_obs.Obs.metrics_on () then begin
    Hpm_obs.Obs.set_gauge "hpm_cluster_inflight_migrations" []
      (float_of_int t.inflight);
    Hpm_obs.Obs.set_gauge "hpm_cluster_peak_inflight" []
      (float_of_int t.peak_inflight)
  end

(* ------------------------------------------------------------------ *)
(* Run-queue mechanics (processor sharing, lazy reschedule)            *)
(* ------------------------------------------------------------------ *)

let schedule t ~time ev = ignore (Eheap.add t.heap ~time ev : int)

(* Bank the work [p] accrued at its current rate. *)
let accumulate t (p : cproc) =
  if p.cp_rate > 0.0 then
    p.cp_done_s <-
      Float.min p.cp_work_s
        (p.cp_done_s +. (p.cp_rate *. (t.now -. p.cp_updated_s)));
  p.cp_updated_s <- t.now

(* The node's load changed: re-share its CPU.  Every running process
   banks its work, takes the new rate, and gets a fresh finish event;
   the version bump turns the old finish events into no-ops when they
   eventually pop (lazy invalidation — cheaper than heap deletion). *)
let reshare t (n : cnode) =
  let k = ISet.cardinal n.cn_running in
  if k > 0 then begin
    let rate = n.cn_speed /. float_of_int k in
    ISet.iter
      (fun pid ->
        let p = t.cprocs.(pid) in
        accumulate t p;
        p.cp_rate <- rate;
        p.cp_version <- p.cp_version + 1;
        let finish_at = t.now +. ((p.cp_work_s -. p.cp_done_s) /. rate) in
        schedule t ~time:finish_at (Ev_finish (pid, p.cp_version)))
      n.cn_running
  end

let start_running t (p : cproc) (n : cnode) =
  p.cp_node <- n.cn_id;
  p.cp_suspended <- false;
  p.cp_down <- false;
  p.cp_rate <- 0.0;
  p.cp_updated_s <- t.now;
  n.cn_running <- ISet.add p.cp_id n.cn_running

(* Take [p] off its node's run queue (handoff suspension or crash). *)
let stop_running t (p : cproc) =
  let n = t.cnodes.(p.cp_node) in
  accumulate t p;
  p.cp_rate <- 0.0;
  p.cp_version <- p.cp_version + 1;
  if ISet.mem p.cp_id n.cn_running then begin
    n.cn_running <- ISet.remove p.cp_id n.cn_running;
    reshare t n
  end

(* Least-loaded live node by (load, name), skipping ids in [avoid]. *)
let pick_node t ~(avoid : int list) : cnode option =
  Array.fold_left
    (fun acc n ->
      if (not n.cn_alive) || List.mem n.cn_id avoid then acc
      else
        match acc with
        | Some (b : cnode)
          when ISet.cardinal b.cn_running < ISet.cardinal n.cn_running
               || (ISet.cardinal b.cn_running = ISet.cardinal n.cn_running
                   && b.cn_name <= n.cn_name) ->
            acc
        | _ -> Some n)
    None t.cnodes

(* ------------------------------------------------------------------ *)
(* Migration chains                                                    *)
(* ------------------------------------------------------------------ *)

let next_poll_s t =
  let k = int_of_float (t.now /. t.cfg.c_poll_every_s) in
  float_of_int (k + 1) *. t.cfg.c_poll_every_s

(* All members are suspended: cost the collect/transfer/restore chain
   and schedule the single commit that lands the whole migration. *)
let begin_transfer t (m : cmig) =
  m.m_begun <- true;
  let bytes =
    List.fold_left
      (fun acc (pid, _) -> acc + t.cprocs.(pid).cp_state_bytes)
      0 m.m_members
  in
  let max_member f =
    List.fold_left (fun acc (pid, _) -> Float.max acc (f t.cprocs.(pid))) 0.0
      m.m_members
  in
  (* members collect/restore in parallel on distinct hosts; the wire is
     shared, so transfer time is the summed bytes *)
  let collect_s =
    max_member (fun p -> float_of_int p.cp_state_bytes /. t.cfg.c_collect_bps)
  in
  let restore_s =
    max_member (fun p -> float_of_int p.cp_state_bytes /. t.cfg.c_restore_bps)
  in
  let jitter =
    t.cfg.c_jitter_s *. float_of_int (Rng.next_int t.rng mod 1000) /. 1000.0
  in
  let transfer_s =
    (float_of_int bytes /. t.cfg.c_bw_bps) +. t.cfg.c_latency_s +. jitter
  in
  m.m_transfer_done_s <- t.now +. collect_s +. transfer_s;
  schedule t
    ~time:(t.now +. collect_s +. transfer_s +. restore_s)
    (Ev_commit (m.m_id, m.m_version))

(* Abort an in-flight migration (source crash, or last member gone).
   Suspended members on live nodes resume where they were; members on
   dead nodes become crash victims; members still pre-poll just shed
   the request.  All-or-nothing: one abort releases every member. *)
let abort_mig t (m : cmig) ~reason =
  if not (m.m_cancelled || m.m_committed) then begin
    m.m_cancelled <- true;
    set_inflight t (-1);
    List.iter
      (fun (pid, src) ->
        let p = t.cprocs.(pid) in
        p.cp_mig <- None;
        t.n_failed <- t.n_failed + 1;
        let src_n = t.cnodes.(src) in
        logline t "FAILED   %s: %s -> %s (%s)" p.cp_name src_n.cn_name
          t.cnodes.(m.m_dst).cn_name reason;
        jadd t
          (Journal.entry ~ts:t.now ~ev:Journal.Failed ~proc:p.cp_name
             ~src:src_n.cn_name ~dst:t.cnodes.(m.m_dst).cn_name ~note:reason ());
        observe t "failed";
        if p.cp_suspended then
          if src_n.cn_alive then begin
            (* still live: the retained source copy just resumes *)
            start_running t p src_n;
            reshare t src_n
          end
          else begin
            (* source died under the suspension: recover from checkpoint *)
            p.cp_suspended <- false;
            p.cp_down <- true;
            p.cp_done_s <-
              Float.of_int (int_of_float (p.cp_done_s /. t.cfg.c_ckpt_work_s))
              *. t.cfg.c_ckpt_work_s;
            schedule t
              ~time:(t.now +. t.cfg.c_restart_delay_s)
              (Ev_recover pid)
          end)
      m.m_members
  end

(* The destination died before commit: re-aim the whole migration at
   the least-loaded live node and re-run the wire transfer there. *)
let requeue_mig t (m : cmig) ~dead =
  match pick_node t ~avoid:[ dead ] with
  | None -> abort_mig t m ~reason:"no live node to requeue to"
  | Some alt ->
      let bytes =
        List.fold_left
          (fun acc (pid, _) -> acc + t.cprocs.(pid).cp_state_bytes)
          0 m.m_members
      in
      m.m_dst <- alt.cn_id;
      m.m_version <- m.m_version + 1;
      t.n_requeued <- t.n_requeued + List.length m.m_members;
      List.iter
        (fun (pid, src) ->
          let p = t.cprocs.(pid) in
          logline t "REQUEUE  %s: %s dead, re-queued to %s" p.cp_name
            t.cnodes.(dead).cn_name alt.cn_name;
          jadd t
            (Journal.entry ~ts:t.now ~ev:Journal.Requeued ~proc:p.cp_name
               ~src:t.cnodes.(src).cn_name ~dst:alt.cn_name
               ~note:("dead " ^ t.cnodes.(dead).cn_name) ());
          observe t "requeued")
        m.m_members;
      if m.m_begun then begin
        let transfer_s =
          (float_of_int bytes /. t.cfg.c_bw_bps) +. t.cfg.c_latency_s
        in
        m.m_transfer_done_s <- t.now +. transfer_s;
        schedule t
          ~time:(t.now +. transfer_s)
          (Ev_commit (m.m_id, m.m_version))
      end
(* not yet begun: members still drain to their poll points; the chain
   continues toward the new destination *)

(* Detach a member that finished before its poll point fired. *)
let detach_member t (m : cmig) pid =
  m.m_members <- List.filter (fun (id, _) -> id <> pid) m.m_members;
  m.m_waiting <- m.m_waiting - 1;
  if m.m_members = [] then begin
    m.m_cancelled <- true;
    set_inflight t (-1)
  end
  else if m.m_waiting = 0 && not m.m_begun then begin_transfer t m

(* ------------------------------------------------------------------ *)
(* Policy rounds                                                       *)
(* ------------------------------------------------------------------ *)

let node_view t : Policy.node_info list =
  Array.to_list t.cnodes
  |> List.map (fun n ->
         {
           Policy.ni_name = n.cn_name;
           ni_speed = n.cn_speed;
           ni_load = ISet.cardinal n.cn_running;
           ni_site = n.cn_site;
           ni_alive = n.cn_alive;
         })

let proc_view t : Policy.proc_info list =
  let acc = ref [] in
  for i = Array.length t.cprocs - 1 downto 0 do
    let p = t.cprocs.(i) in
    if not p.cp_finished then
      acc :=
        {
          Policy.pi_name = p.cp_name;
          pi_node = t.cnodes.(p.cp_node).cn_name;
          pi_group = p.cp_group;
          pi_runnable = not (p.cp_suspended || p.cp_down);
          pi_migrating = p.cp_mig <> None;
          pi_last_move_s = p.cp_last_move_s;
        }
        :: !acc
  done;
  !acc

let node_id t name =
  (* node names are "n%04d" *)
  match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
  | Some id when id >= 0 && id < Array.length t.cnodes -> Some id
  | _ -> None

let proc_id t name =
  match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
  | Some id when id >= 0 && id < Array.length t.cprocs -> Some id
  | _ -> None

(* Turn one policy round's decisions into migrations.  Decisions for
   grouped processes headed to the same destination fuse into a single
   gang migration (one commit, all-or-nothing); everything else is a
   singleton chain.  Members are asked at their next poll point. *)
let start_migrations t (decisions : Policy.decision list) =
  (* (group, dst) → member list, preserving first-appearance order *)
  let batches : (string * int * (int * int) list ref) list ref = ref [] in
  let singletons = ref [] in
  (* a process is claimable once per round, whatever the policy emitted *)
  let claimed = ref ISet.empty in
  List.iter
    (fun { Policy.d_proc; d_dst } ->
      match (proc_id t d_proc, node_id t d_dst) with
      | Some pid, Some dst ->
          let p = t.cprocs.(pid) in
          let dst_n = t.cnodes.(dst) in
          if
            (not p.cp_finished) && (not p.cp_suspended) && (not p.cp_down)
            && p.cp_mig = None && dst_n.cn_alive && p.cp_node <> dst
            && not (ISet.mem pid !claimed)
          then begin
            claimed := ISet.add pid !claimed;
            if p.cp_group <> "" then begin
              match
                List.find_opt
                  (fun (g, d, _) -> g = p.cp_group && d = dst)
                  !batches
              with
              | Some (_, _, members) ->
                  members := (pid, p.cp_node) :: !members
              | None ->
                  batches :=
                    !batches @ [ (p.cp_group, dst, ref [ (pid, p.cp_node) ]) ]
            end
            else singletons := (pid, p.cp_node, dst) :: !singletons
          end
      | _ -> ())
    decisions;
  let launch members dst =
    let members = List.rev members in
    let m =
      {
        m_id = Vec.length t.migs;
        m_dst = dst;
        m_members = members;
        m_waiting = List.length members;
        m_version = 0;
        m_begun = false;
        m_transfer_done_s = infinity;
        m_cancelled = false;
        m_committed = false;
        m_start_s = t.now;
      }
    in
    Vec.push t.migs m;
    set_inflight t 1;
    let poll_at = next_poll_s t in
    List.iter
      (fun (pid, src) ->
        let p = t.cprocs.(pid) in
        p.cp_mig <- Some m.m_id;
        p.cp_last_move_s <- t.now;
        t.n_requested <- t.n_requested + 1;
        logline t "request  %s: %s -> %s" p.cp_name t.cnodes.(src).cn_name
          t.cnodes.(dst).cn_name;
        jadd t
          (Journal.entry ~ts:t.now ~ev:Journal.Requested ~proc:p.cp_name
             ~src:t.cnodes.(src).cn_name ~dst:t.cnodes.(dst).cn_name ());
        observe t "requested";
        schedule t ~time:poll_at (Ev_poll (pid, m.m_id)))
      members
  in
  List.iter
    (fun (g, dst, members) ->
      ignore (g : string);
      launch !members dst)
    !batches;
  List.iter (fun (pid, src, dst) -> launch [ (pid, src) ] dst)
    (List.rev !singletons)

(* ------------------------------------------------------------------ *)
(* Event handlers                                                      *)
(* ------------------------------------------------------------------ *)

let handle t = function
  | Ev_finish (pid, version) ->
      let p = t.cprocs.(pid) in
      if (not p.cp_finished) && p.cp_version = version then begin
        let n = t.cnodes.(p.cp_node) in
        p.cp_done_s <- p.cp_work_s;
        p.cp_finished <- true;
        p.cp_rate <- 0.0;
        t.finished <- t.finished + 1;
        n.cn_running <- ISet.remove pid n.cn_running;
        (* a request it never noticed dies with it *)
        (match p.cp_mig with
        | Some mid ->
            let m = Vec.get t.migs mid in
            p.cp_mig <- None;
            if not (m.m_cancelled || m.m_committed) then detach_member t m pid
        | None -> ());
        logline t "finish   %s on %s" p.cp_name n.cn_name;
        jadd t
          (Journal.entry ~ts:t.now ~ev:Journal.Finished ~proc:p.cp_name
             ~node:n.cn_name ());
        observe t "finished";
        reshare t n
      end
  | Ev_poll (pid, mid) ->
      let p = t.cprocs.(pid) in
      let m = Vec.get t.migs mid in
      if
        (not p.cp_finished) && p.cp_mig = Some mid
        && not (m.m_cancelled || m.m_committed)
      then begin
        stop_running t p;
        p.cp_suspended <- true;
        m.m_waiting <- m.m_waiting - 1;
        if m.m_waiting = 0 then begin_transfer t m
      end
  | Ev_commit (mid, version) ->
      let m = Vec.get t.migs mid in
      if (not (m.m_cancelled || m.m_committed)) && m.m_version = version then begin
        let dst = t.cnodes.(m.m_dst) in
        if not dst.cn_alive then
          (* razor-thin race: the commit popped at the same instant as
             the crash; treat as pre-commit death *)
          requeue_mig t m ~dead:m.m_dst
        else begin
          m.m_committed <- true;
          set_inflight t (-1);
          let dur = t.now -. m.m_start_s in
          if Hpm_obs.Obs.metrics_on () then
            Hpm_obs.Obs.observe "hpm_cluster_migration_seconds" [] dur;
          List.iter
            (fun (pid, src) ->
              let p = t.cprocs.(pid) in
              p.cp_mig <- None;
              p.cp_epoch <- p.cp_epoch + 1;
              p.cp_migrations <- p.cp_migrations + 1;
              p.cp_last_move_s <- t.now;
              t.n_migrations <- t.n_migrations + 1;
              start_running t p dst;
              logline t "migrate  %s: %s -> %s (epoch %d, %d B, %.3f ms)"
                p.cp_name t.cnodes.(src).cn_name dst.cn_name p.cp_epoch
                p.cp_state_bytes (dur *. 1e3);
              jadd t
                (Journal.entry ~ts:t.now ~ev:Journal.Migrated ~proc:p.cp_name
                   ~src:t.cnodes.(src).cn_name ~dst:dst.cn_name
                   ~epoch:p.cp_epoch ~stream_bytes:p.cp_state_bytes
                   ~collected_bytes:p.cp_state_bytes
                   ~restored_bytes:p.cp_state_bytes ~time_s:dur ());
              observe t "migrated")
            m.m_members;
          reshare t dst
        end
      end
  | Ev_crash nid ->
      let n = t.cnodes.(nid) in
      let live =
        Array.fold_left
          (fun acc x -> if x.cn_alive then acc + 1 else acc)
          0 t.cnodes
      in
      if n.cn_alive && live > 1 then begin
        n.cn_alive <- false;
        t.n_crashes <- t.n_crashes + 1;
        logline t "CRASH    node %s" n.cn_name;
        observe t "crash";
        (* resolve in-flight migrations touching this node, in id order *)
        for i = 0 to Vec.length t.migs - 1 do
          let m = Vec.get t.migs i in
          if not (m.m_cancelled || m.m_committed) then
            if m.m_dst = nid then requeue_mig t m ~dead:nid
            else if
              List.exists (fun (_, src) -> src = nid) m.m_members
              && t.now < m.m_transfer_done_s
            then
              abort_mig t m
                ~reason:
                  (Printf.sprintf "source %s crashed mid-handoff" n.cn_name)
        done;
        (* everything still running here recovers from its checkpoint *)
        let victims = ISet.elements n.cn_running in
        n.cn_running <- ISet.empty;
        List.iter
          (fun pid ->
            let p = t.cprocs.(pid) in
            if not p.cp_finished then begin
              accumulate t p;
              p.cp_rate <- 0.0;
              p.cp_version <- p.cp_version + 1;
              p.cp_down <- true;
              (match p.cp_mig with
              | Some mid ->
                  let m = Vec.get t.migs mid in
                  if not (m.m_cancelled || m.m_committed) then
                    abort_mig t m
                      ~reason:
                        (Printf.sprintf "source %s crashed before handoff"
                           n.cn_name);
                  p.cp_mig <- None
              | None -> ());
              p.cp_done_s <-
                Float.of_int (int_of_float (p.cp_done_s /. t.cfg.c_ckpt_work_s))
                *. t.cfg.c_ckpt_work_s;
              schedule t
                ~time:(t.now +. t.cfg.c_restart_delay_s)
                (Ev_recover pid)
            end)
          victims
      end
  | Ev_recover pid ->
      let p = t.cprocs.(pid) in
      if (not p.cp_finished) && p.cp_down then begin
        match pick_node t ~avoid:[] with
        | None -> (* no live node at all: retry after another delay *)
            schedule t
              ~time:(t.now +. t.cfg.c_restart_delay_s)
              (Ev_recover pid)
        | Some target ->
            p.cp_epoch <- p.cp_epoch + 1;
            t.n_recovered <- t.n_recovered + 1;
            start_running t p target;
            logline t "RECOVER  %s on %s (epoch %d, from checkpoint)" p.cp_name
              target.cn_name p.cp_epoch;
            jadd t
              (Journal.entry ~ts:t.now ~ev:Journal.Recovered ~proc:p.cp_name
                 ~node:target.cn_name ~epoch:p.cp_epoch
                 ~note:"crash recovery: modelled checkpoint" ());
            observe t "recovered";
            reshare t target
      end
  | Ev_policy ->
      if t.finished < Array.length t.cprocs then begin
        start_migrations t
          (Policy.decide t.policy ~now:t.now (node_view t) (proc_view t));
        schedule t ~time:(t.now +. t.cfg.c_policy_every_s) Ev_policy
      end

(* ------------------------------------------------------------------ *)
(* Setup and run                                                       *)
(* ------------------------------------------------------------------ *)

let validate (c : config) =
  if c.c_nodes < 2 then invalid_arg "Cluster: need at least 2 nodes";
  if c.c_procs < 1 then invalid_arg "Cluster: need at least 1 process";
  if c.c_speeds = [] then invalid_arg "Cluster: need at least one speed class";
  if c.c_poll_every_s <= 0.0 || c.c_policy_every_s <= 0.0 then
    invalid_arg "Cluster: poll/policy cadence must be positive";
  if c.c_ckpt_work_s <= 0.0 then
    invalid_arg "Cluster: ckpt_work_s must be positive";
  if c.c_state_bytes_max < c.c_state_bytes_min then
    invalid_arg "Cluster: state_bytes_max < state_bytes_min"

let create ?journal ?policy (c : config) : t =
  validate c;
  let policy =
    match policy with
    | Some p -> p
    | None ->
        Policy.with_hysteresis ~cooldown_s:c.c_cooldown_s
          (Policy.gang (Policy.least_loaded ~max_moves:c.c_max_moves ()))
  in
  let rng = Rng.create c.c_seed in
  let speeds = Array.of_list c.c_speeds in
  let cnodes =
    Array.init c.c_nodes (fun i ->
        {
          cn_id = i;
          cn_name = Printf.sprintf "n%04d" i;
          cn_speed = speeds.(i mod Array.length speeds);
          cn_site = Printf.sprintf "s%02d" (i mod max 1 c.c_sites);
          cn_alive = true;
          cn_running = ISet.empty;
        })
  in
  let span = c.c_state_bytes_max - c.c_state_bytes_min + 1 in
  let hot = max 1 (int_of_float (float_of_int c.c_nodes *. c.c_hot_frac)) in
  let cprocs =
    Array.init c.c_procs (fun i ->
        let work =
          c.c_mean_work_s
          *. (0.5 +. (float_of_int (Rng.next_int rng mod 1000) /. 1000.0))
        in
        let bytes = c.c_state_bytes_min + (Rng.next_int rng mod span) in
        let group =
          if i < c.c_gang_groups * c.c_gang_size then
            Printf.sprintf "g%03d" (i / max 1 c.c_gang_size)
          else ""
        in
        {
          cp_id = i;
          cp_name = Printf.sprintf "p%05d" i;
          cp_group = group;
          cp_work_s = work;
          cp_state_bytes = bytes;
          cp_node = i mod hot;
          cp_done_s = 0.0;
          cp_rate = 0.0;
          cp_updated_s = 0.0;
          cp_version = 0;
          cp_mig = None;
          cp_suspended = false;
          cp_down = false;
          cp_finished = false;
          cp_epoch = 1;
          cp_migrations = 0;
          cp_last_move_s = neg_infinity;
        })
  in
  let t =
    {
      cfg = c;
      policy;
      cnodes;
      cprocs;
      heap = Eheap.create ();
      rng;
      migs = Vec.create ();
      journal;
      evlog = Vec.create ();
      now = 0.0;
      finished = 0;
      inflight = 0;
      peak_inflight = 0;
      processed = 0;
      n_requested = 0;
      n_migrations = 0;
      n_failed = 0;
      n_requeued = 0;
      n_recovered = 0;
      n_crashes = 0;
    }
  in
  (* spawn everything at t=0, then share each hot node's CPU once *)
  Array.iter
    (fun p ->
      let n = cnodes.(p.cp_node) in
      n.cn_running <- ISet.add p.cp_id n.cn_running;
      logline t "spawn    %s on %s" p.cp_name n.cn_name;
      jadd t
        (Journal.entry ~ts:0.0 ~ev:Journal.Spawned ~proc:p.cp_name
           ~node:n.cn_name ());
      observe t "spawned")
    cprocs;
  Array.iter (fun n -> reshare t n) cnodes;
  (* seeded crash plan: distinct nodes, times spread over the window *)
  let crashed = Hashtbl.create 16 in
  let planned = ref 0 in
  while !planned < min c.c_crash_nodes (c.c_nodes - 1) do
    let nid = Rng.next_int rng mod c.c_nodes in
    if not (Hashtbl.mem crashed nid) then begin
      Hashtbl.replace crashed nid ();
      let at =
        c.c_crash_from_s
        +. c.c_crash_window_s
           *. float_of_int (Rng.next_int rng mod 1000)
           /. 1000.0
      in
      schedule t ~time:at (Ev_crash nid);
      incr planned
    end
  done;
  schedule t ~time:c.c_policy_every_s Ev_policy;
  t

(** Run the scenario to completion (every process finished), the event
    heap draining dry, or the [c_max_sim_s] horizon — whichever first.
    Returns the same [t] for inspection. *)
let run (t : t) : t =
  let continue = ref true in
  while !continue do
    if t.finished >= Array.length t.cprocs then continue := false
    else
      match Eheap.pop t.heap with
      | None -> continue := false
      | Some (time, _, ev) ->
          if time > t.cfg.c_max_sim_s then continue := false
          else begin
            t.now <- time;
            if Hpm_obs.Obs.on () then Hpm_obs.Obs.set_now time;
            t.processed <- t.processed + 1;
            handle t ev
          end
  done;
  t

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type stats = {
  cs_events : int;          (** events executed (stale included) *)
  cs_spawned : int;
  cs_finished : int;
  cs_requested : int;
  cs_migrations : int;      (** committed member moves *)
  cs_failed : int;
  cs_requeued : int;
  cs_recovered : int;
  cs_crashes : int;
  cs_peak_inflight : int;
  cs_makespan_s : float;    (** simulated time of the last event *)
  cs_journal_bytes : int;   (** HPMJ bytes this run appended *)
}

let stats (t : t) : stats =
  {
    cs_events = t.processed;
    cs_spawned = Array.length t.cprocs;
    cs_finished = t.finished;
    cs_requested = t.n_requested;
    cs_migrations = t.n_migrations;
    cs_failed = t.n_failed;
    cs_requeued = t.n_requeued;
    cs_recovered = t.n_recovered;
    cs_crashes = t.n_crashes;
    cs_peak_inflight = t.peak_inflight;
    cs_makespan_s = t.now;
    cs_journal_bytes =
      (match t.journal with None -> 0 | Some j -> Journal.bytes_written j);
  }

(** The deterministic text event log, oldest first. *)
let events (t : t) : string list = Vec.to_list t.evlog

(** Gang groups and their member process names, group-name order. *)
let groups (t : t) : (string * string list) list =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun p ->
      if p.cp_group <> "" then
        Hashtbl.replace tbl p.cp_group
          (p.cp_name
           :: (match Hashtbl.find_opt tbl p.cp_group with
              | Some l -> l
              | None -> [])))
    t.cprocs;
  Hashtbl.fold (fun g members acc -> (g, List.rev members) :: acc) tbl []
  |> List.sort compare

(** Final placement: process name → node name (finished processes
    report the node they finished on). *)
let placement (t : t) : (string * string) list =
  Array.to_list t.cprocs
  |> List.map (fun p -> (p.cp_name, t.cnodes.(p.cp_node).cn_name))

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "events %d; finished %d/%d; migrations %d (requested %d, failed %d, \
     requeued %d); recovered %d after %d crashes; peak in-flight %d; \
     makespan %.3f s; journal %d B"
    s.cs_events s.cs_finished s.cs_spawned s.cs_migrations s.cs_requested
    s.cs_failed s.cs_requeued s.cs_recovered s.cs_crashes s.cs_peak_inflight
    s.cs_makespan_s s.cs_journal_bytes
