(** The distributed process-migration environment of §2.

    The paper models "a distributed environment [with] a scheduler which
    performs process management and sends a migration request to a
    process"; migration then proceeds by remote invocation — the waiting
    destination process is started, the migrating process collects and
    transmits its state, terminates, and the new process resumes.  The
    paper leaves the scheduler itself as future work; this module provides
    the environment simulation plus two concrete policies (explicit
    placement commands and a simple load balancer), which is what the
    load-balancing example and the scheduler tests exercise.

    Migrations run through {!Hpm_core.Handoff}'s crash-consistent
    two-phase protocol, so the scheduler also owns the recovery actions
    the protocol can demand of "process management":

    - [Source_recovered]: the source node crashed pre-commit and came
      back; the process resumes there from its retained checkpoint;
    - [Abort_requeue]: the destination died before committing; the
      retained checkpoint is re-queued to the least-loaded other node
      (or, in a two-node cluster, the source simply resumes);
    - [Stalled]: the destination's fate is unknowable (every probe reply
      lost); the scheduler resumes the source copy from the checkpoint —
      a stand-in for the operator intervention classic 2PC blocking
      requires, safe here because a destination that never heard a
      RELEASE keeps its copy suspended forever;
    - [Link_failed]: the transport gave up; the still-live source process
      keeps running where it is (§2's migrating process must never be
      lost to a bad link).

    In every case the process runs exactly once and loses no output.

    Simulation model: discrete ticks of [quantum_s] simulated seconds.  A
    node executes [speed × 1e6 × quantum_s] IR instructions per runnable
    process per tick (its [Arch.speed] making fast and slow machines
    real).  A migration requested by the scheduler is noticed at the
    process's next poll-point; the handoff then occupies the network for
    its simulated protocol time (transfers, watchdog waits, reboots) and
    the process stays blocked until that completes. *)

open Hpm_arch
open Hpm_machine
open Hpm_core
open Hpm_net
open Hpm_store

type node = {
  n_name : string;
  n_arch : Arch.t;
  n_site : string;             (** locality tag for {!Policy.locality}; [""] = untagged *)
  mutable n_procs : int;       (** runnable processes currently placed here *)
  mutable n_instrs : int;      (** total instructions executed here *)
}

let node ?(site = "") name arch =
  { n_name = name; n_arch = arch; n_site = site; n_procs = 0; n_instrs = 0 }

type proc_state =
  | Runnable
  | Blocked_until of float     (** migrating: in flight until this time *)
  | Finished of Mem.value option

type proc = {
  p_id : int;
  p_name : string;
  p_m : Migration.migratable;
  mutable p_interp : Interp.t;
  mutable p_node : node;
  mutable p_state : proc_state;
  mutable p_pending_dst : node option;  (** where the scheduler wants it *)
  mutable p_epoch : int;                (** next handoff incarnation number *)
  mutable p_migrations : int;
  mutable p_compat_rejected : int;
      (** placement requests refused up front: the portability analysis
          found the (src, dst) arch pair Illegal for this program *)
  mutable p_failed_migrations : int;    (** epochs aborted (link or node faults) *)
  mutable p_recoveries : int;           (** resumes from a retained checkpoint *)
  mutable p_requeues : int;             (** checkpoints re-queued to a third node *)
  mutable p_promotions : int;           (** standbys promoted to primary *)
  mutable p_resyncs : int;              (** full resyncs served to standbys *)
  mutable p_bytes_collected : int;      (** Σ Dᵢ collected across migrations *)
  mutable p_bytes_restored : int;       (** Σ Dᵢ restored across migrations *)
  mutable p_retries : int;              (** transport chunk retries, cumulative *)
  mutable p_finish_time : float option;
  mutable p_output : Buffer.t;          (** output accumulated across hosts *)
  mutable p_cache : Snapshot.cache;     (** incremental-snapshot cache, per interpreter *)
  mutable p_next_ckpt : float;          (** next periodic checkpoint is due at this time *)
  mutable p_ckpt_pending : bool;        (** a checkpoint suspension has been requested *)
  mutable p_ckpt_epoch : int;           (** next store-manifest epoch for this process *)
  mutable p_group : string;             (** gang-migration group; [""] = ungrouped *)
  mutable p_last_move_s : float;
      (** when the scheduler last asked this process to move
          ([neg_infinity] = never) — the anti-flap hysteresis input *)
}

(* Store manifests restrict process names to [A-Za-z0-9_-]. *)
let store_name (p : proc) =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> c | _ -> '_')
    p.p_name

(** What one completed handoff cost, surfaced per [Migrated] event (the
    per-migration view of the cumulative [p_*] counters). *)
type mig_stats = {
  ms_epoch : int;
  ms_stream_bytes : int;    (** encoded stream size on the wire *)
  ms_collected_bytes : int; (** Σ Dᵢ the collector encoded *)
  ms_restored_bytes : int;  (** Σ Dᵢ the restorer decoded *)
  ms_retries : int;         (** transport chunk retries *)
  ms_time_s : float;        (** simulated protocol time, waits included *)
  ms_delta : Cstats.delta option;
      (** incremental decomposition when the move ran as a pre-copy *)
}

type event =
  | Spawned of float * string * string            (* time, proc, node *)
  | Requested of float * string * string * string (* time, proc, from, to *)
  | Compat_rejected of float * string * string * string
      (* time, proc, from, to: placement refused, pair is Illegal *)
  | Migrated of float * string * string * string * mig_stats
      (* time, proc, from, to, cost *)
  | Migration_failed of float * string * string * string * int * float
      (* time, proc, from, to, retries spent, seconds wasted *)
  | Recovered of float * string * string * string (* time, proc, node, why *)
  | Checkpointed of float * string * int * Cstats.delta
      (* time, proc, store epoch, incremental stats *)
  | Requeued of float * string * string * string * string
      (* time, proc, source, dead dst, new dst *)
  | Finished_ev of float * string * string        (* time, proc, node *)
  | Promoted of float * string * string * string * int
      (* time, proc, dead source node, promoted standby node, resume epoch *)
  | Standby_lost of float * string * string       (* time, proc, standby node *)
  | Resynced of float * string * string * int     (* time, proc, standby, epoch *)

type t = {
  nodes : node list;
  by_name : (string, node) Hashtbl.t;
      (** name → node; {!node_named} used to scan [nodes] linearly *)
  channel : Netsim.t;
  handoff : Handoff.config;
  quantum_s : float;
  base_ips : float;            (** instructions/simulated-second at speed 1.0 *)
  compat : (Migration.migratable -> src:Arch.t -> dst:Arch.t -> bool) option;
      (** placement gate: when set, {!request_migration} refuses pairs
          the predicate rejects (see {!Hpm_core.Compat.ok}) *)
  store : Store.t option;      (** shared checkpoint store (cluster storage) *)
  ckpt_every_s : float option; (** periodic background checkpoint interval *)
  precopy : Precopy.config option;
      (** when set (and a store is), migrations run as iterative pre-copy *)
  procs : proc Vec.t;          (** spawn order *)
  mutable now : float;
  mutable next_pid : int;
  events : event Vec.t;        (** oldest first — no per-read reversal *)
  timers : action Eheap.t;
      (** the global event heap: actions {!at} scheduled against the
          simulated clock, fired by {!run} in (time, seq) order *)
  journal : Journal.t option;  (** durable fleet journal (HPMJ, docs/FORMAT.md) *)
}

and action = t -> unit

let create ?(quantum_s = 0.01) ?(base_ips = 1e6)
    ?(transport = Transport.default_config) ?handoff ?store ?ckpt_every_s ?precopy
    ?compat ?journal ~channel nodes =
  let handoff =
    match handoff with
    | Some h -> h
    | None -> { Handoff.default_config with Handoff.transport }
  in
  (match ckpt_every_s with
  | Some d when d <= 0.0 -> invalid_arg "Sched.create: ckpt_every_s must be positive"
  | _ -> ());
  (match (ckpt_every_s, precopy, store) with
  | (Some _, _, None) | (_, Some _, None) ->
      invalid_arg "Sched.create: checkpointing and pre-copy need a store"
  | _ -> ());
  let by_name = Hashtbl.create (max 16 (List.length nodes)) in
  List.iter
    (fun n ->
      if Hashtbl.mem by_name n.n_name then
        invalid_arg (Printf.sprintf "Sched.create: duplicate node %s" n.n_name);
      Hashtbl.replace by_name n.n_name n)
    nodes;
  {
    nodes;
    by_name;
    channel;
    handoff;
    quantum_s;
    base_ips;
    compat;
    store;
    ckpt_every_s;
    precopy;
    procs = Vec.create ();
    now = 0.;
    next_pid = 0;
    events = Vec.create ();
    timers = Eheap.create ();
    journal;
  }

(* Durable projection of scheduler events into the HPMJ fleet journal.
   Every variant maps — the journal is the post-mortem record of what
   the fleet did, and a dropped event kind would be a hole in the
   failover/billing story the query layer reports from. *)
let journalize t e =
  match t.journal with
  | None -> ()
  | Some j ->
      let entry = Journal.entry in
      let je =
        match e with
        | Spawned (at, p, node) ->
            entry ~ts:at ~ev:Journal.Spawned ~proc:p ~node ()
        | Requested (at, p, src, dst) ->
            entry ~ts:at ~ev:Journal.Requested ~proc:p ~src ~dst ()
        | Compat_rejected (at, p, src, dst) ->
            entry ~ts:at ~ev:Journal.Compat_rejected ~proc:p ~src ~dst ()
        | Migrated (at, p, src, dst, ms) ->
            let delta_bytes, shipped, reused =
              match ms.ms_delta with
              | Some d -> (d.Cstats.d_delta_bytes, d.Cstats.d_chunks_shipped,
                           d.Cstats.d_chunks_reused)
              | None -> (0, 0, 0)
            in
            entry ~ts:at ~ev:Journal.Migrated ~proc:p ~src ~dst
              ~epoch:ms.ms_epoch ~stream_bytes:ms.ms_stream_bytes
              ~collected_bytes:ms.ms_collected_bytes
              ~restored_bytes:ms.ms_restored_bytes ~retries:ms.ms_retries
              ~time_s:ms.ms_time_s ~delta_bytes ~chunks_shipped:shipped
              ~chunks_reused:reused ()
        | Migration_failed (at, p, src, dst, retries, wasted_s) ->
            entry ~ts:at ~ev:Journal.Failed ~proc:p ~src ~dst ~retries
              ~time_s:wasted_s ()
        | Recovered (at, p, node, why) ->
            entry ~ts:at ~ev:Journal.Recovered ~proc:p ~node ~note:why ()
        | Checkpointed (at, p, epoch, d) ->
            entry ~ts:at ~ev:Journal.Checkpointed ~proc:p ~epoch
              ~collected_bytes:d.Cstats.d_data_bytes
              ~delta_bytes:d.Cstats.d_delta_bytes
              ~chunks_shipped:d.Cstats.d_chunks_shipped
              ~chunks_reused:d.Cstats.d_chunks_reused ()
        | Requeued (at, p, src, dead, alt) ->
            entry ~ts:at ~ev:Journal.Requeued ~proc:p ~src ~dst:alt
              ~note:("dead " ^ dead) ()
        | Finished_ev (at, p, node) ->
            entry ~ts:at ~ev:Journal.Finished ~proc:p ~node ()
        | Promoted (at, p, src, sb, epoch) ->
            entry ~ts:at ~ev:Journal.Promoted ~proc:p ~src ~dst:sb ~epoch ()
        | Standby_lost (at, p, sb) ->
            entry ~ts:at ~ev:Journal.Standby_lost ~proc:p ~node:sb ()
        | Resynced (at, p, sb, epoch) ->
            entry ~ts:at ~ev:Journal.Resynced ~proc:p ~node:sb ~epoch ()
      in
      Journal.append j je

(* Single event chokepoint: every scheduler decision lands here, so this
   is where the observability layer taps in.  Event timestamps are the
   scheduler's own simulated clock. *)
let log t e =
  Vec.push t.events e;
  journalize t e;
  if Hpm_obs.Obs.on () then begin
    let module Obs = Hpm_obs.Obs in
    let at, name, proc =
      match e with
      | Spawned (at, p, _) -> (at, "sched.spawned", p)
      | Requested (at, p, _, _) -> (at, "sched.requested", p)
      | Compat_rejected (at, p, _, _) -> (at, "sched.compat-rejected", p)
      | Migrated (at, p, _, _, _) -> (at, "sched.migrated", p)
      | Migration_failed (at, p, _, _, _, _) -> (at, "sched.migration-failed", p)
      | Recovered (at, p, _, _) -> (at, "sched.recovered", p)
      | Checkpointed (at, p, _, _) -> (at, "sched.checkpointed", p)
      | Requeued (at, p, _, _, _) -> (at, "sched.requeued", p)
      | Finished_ev (at, p, _) -> (at, "sched.finished", p)
      | Promoted (at, p, _, _, _) -> (at, "sched.promoted", p)
      | Standby_lost (at, p, _) -> (at, "sched.standby-lost", p)
      | Resynced (at, p, _, _) -> (at, "sched.resynced", p)
    in
    let metric =
      match e with
      | Spawned _ -> "hpm_sched_spawns_total"
      | Requested _ -> "hpm_sched_requests_total"
      | Compat_rejected _ -> "hpm_sched_compat_rejected_total"
      | Migrated _ -> "hpm_sched_migrations_total"
      | Migration_failed _ -> "hpm_sched_failed_migrations_total"
      | Recovered _ -> "hpm_sched_recoveries_total"
      | Checkpointed _ -> "hpm_sched_checkpoints_total"
      | Requeued _ -> "hpm_sched_requeues_total"
      | Finished_ev _ -> "hpm_sched_finished_total"
      | Promoted _ -> "hpm_sched_promotions_total"
      | Standby_lost _ -> "hpm_sched_standby_lost_total"
      | Resynced _ -> "hpm_sched_resyncs_total"
    in
    Obs.inc metric [ ("proc", proc) ];
    if Obs.tracing () then
      Obs.instant ~ts:at ~cat:"sched" ~args:[ ("proc", Obs.Trace.S proc) ] name
  end

let spawn t (nd : node) name (m : Migration.migratable) : proc =
  let p =
    {
      p_id = t.next_pid;
      p_name = name;
      p_m = m;
      p_interp = Migration.start m nd.n_arch;
      p_node = nd;
      p_state = Runnable;
      p_pending_dst = None;
      p_epoch = 1;
      p_migrations = 0;
      p_compat_rejected = 0;
      p_failed_migrations = 0;
      p_recoveries = 0;
      p_requeues = 0;
      p_promotions = 0;
      p_resyncs = 0;
      p_bytes_collected = 0;
      p_bytes_restored = 0;
      p_retries = 0;
      p_finish_time = None;
      p_output = Buffer.create 64;
      p_cache = Snapshot.new_cache ();
      p_next_ckpt =
        (match t.ckpt_every_s with Some d -> t.now +. d | None -> infinity);
      p_ckpt_pending = false;
      p_ckpt_epoch = 1;
      p_group = "";
      p_last_move_s = neg_infinity;
    }
  in
  t.next_pid <- t.next_pid + 1;
  nd.n_procs <- nd.n_procs + 1;
  Vec.push t.procs p;
  log t (Spawned (t.now, name, nd.n_name));
  p

(** May the scheduler place [p] onto [dst] at all?  [true] without a
    compat gate; with one, exactly {!Hpm_core.Compat.ok} for the pair. *)
let placement_ok t (p : proc) (dst : node) =
  match t.compat with
  | None -> true
  | Some ok -> ok p.p_m ~src:p.p_node.n_arch ~dst:dst.n_arch

(** Scheduler action: ask [p] to migrate to [dst].  The request is noticed
    at the process's next poll-point.  With a compat gate, a destination
    whose arch pair is Illegal for [p]'s program is refused up front —
    the process never even attempts the move ([Compat_rejected]). *)
let request_migration t (p : proc) (dst : node) =
  if dst != p.p_node then
    if not (placement_ok t p dst) then (
      p.p_compat_rejected <- p.p_compat_rejected + 1;
      log t (Compat_rejected (t.now, p.p_name, p.p_node.n_name, dst.n_name)))
    else (
      p.p_pending_dst <- Some dst;
      p.p_last_move_s <- t.now;
      Interp.request_migration p.p_interp;
      log t (Requested (t.now, p.p_name, p.p_node.n_name, dst.n_name)))

(* Least-loaded node outside [avoid]; ties break on node name, so the
   pick is independent of node-registration order. *)
let least_loaded_except t (avoid : node list) : node option =
  List.fold_left
    (fun acc n ->
      if List.memq n avoid then acc
      else
        match acc with
        | Some best
          when best.n_procs < n.n_procs
               || (best.n_procs = n.n_procs && best.n_name <= n.n_name) ->
            acc
        | _ -> Some n)
    None t.nodes

(* Re-home [p]'s bookkeeping onto [dst] with a freshly restored
   interpreter.  The old interpreter's output is folded first: a restored
   image carries no output buffer (in a real system that output already
   reached the terminal before the move). *)
let rehome p (dst : node) interp =
  Buffer.add_string p.p_output (Interp.output p.p_interp);
  p.p_node.n_procs <- p.p_node.n_procs - 1;
  dst.n_procs <- dst.n_procs + 1;
  p.p_interp <- interp;
  p.p_node <- dst;
  p.p_pending_dst <- None

(* Checkpoint [p]'s interpreter (suspended at a poll-point) into the
   shared store, incrementally against its snapshot cache.  Folding the
   interpreter's output into [p_output] and clearing its buffer here
   makes the manifest a durable point: after a crash, [p_output] holds
   exactly the output up to the newest manifest and replay regenerates
   exactly the rest — output is neither lost nor duplicated.  No-op
   without a store. *)
let checkpoint_now t (p : proc) =
  p.p_ckpt_pending <- false;
  match t.store with
  | None -> ()
  | Some st ->
      let epoch = p.p_ckpt_epoch in
      p.p_ckpt_epoch <- epoch + 1;
      let mf, chunks, stats =
        Snapshot.collect ~epoch ~proc:(store_name p) ~cache:p.p_cache p.p_interp
          p.p_m.Migration.ti
      in
      Snapshot.persist st mf chunks stats;
      Buffer.add_string p.p_output (Interp.output p.p_interp);
      Buffer.clear p.p_interp.Interp.out;
      (match t.ckpt_every_s with
      | Some d -> p.p_next_ckpt <- t.now +. d
      | None -> ());
      log t (Checkpointed (t.now, p.p_name, epoch, stats))

(** Crash-restart [p] on its current node from durable state: the
    in-memory interpreter is lost (its unfolded output buffer is
    discarded, {e not} folded — replay regenerates it).  Prefers the
    newest {e committed} store manifest; falls back to [legacy], a
    monolithic checkpoint file from the pre-store era; returns [false]
    when neither yields a process.  Damaged manifests and files are
    skipped silently — recovery never trusts a torn write. *)
let recover_from_store t (p : proc) ?legacy () : bool =
  match p.p_state with
  | Finished _ -> false
  | _ -> (
      let recovered interp restored_bytes why =
        p.p_interp <- interp;
        p.p_cache <- Snapshot.new_cache ();
        p.p_pending_dst <- None;
        p.p_ckpt_pending <- false;
        p.p_recoveries <- p.p_recoveries + 1;
        p.p_bytes_restored <- p.p_bytes_restored + restored_bytes;
        p.p_state <- Blocked_until (t.now +. t.handoff.Handoff.restart_delay_s);
        log t (Recovered (t.now, p.p_name, p.p_node.n_name, "crash recovery: " ^ why));
        true
      in
      let from_store =
        match t.store with
        | None -> None
        | Some st ->
            Snapshot.restore_latest p.p_m p.p_node.n_arch st ~proc:(store_name p)
      in
      match from_store with
      | Some (interp, rstats, mf) ->
          recovered interp rstats.Cstats.r_data_bytes
            (Printf.sprintf "store manifest epoch %d" mf.Store.mf_epoch)
      | None -> (
          match legacy with
          | None -> false
          | Some path -> (
              match Checkpoint.load p.p_m p.p_node.n_arch path with
              | interp, rstats ->
                  recovered interp rstats.Cstats.r_data_bytes "legacy checkpoint file"
              | exception
                  ( Checkpoint.Error _ | Restore.Error _ | Stream.Corrupt _
                  | Hpm_xdr.Xdr.Underflow _ ) ->
                  false)))

(* Resume on the source from a retained checkpoint (crash recovery or
   blocked-protocol stand-in).  Same-node rehome: only the interp swaps. *)
let resume_from_ckpt t p ~epoch ~why ckpt busy_s =
  let interp, rstats =
    Handoff.resume_from_checkpoint p.p_m p.p_node.n_arch ~epoch ckpt
  in
  rehome p p.p_node interp;
  p.p_recoveries <- p.p_recoveries + 1;
  p.p_bytes_restored <- p.p_bytes_restored + rstats.Cstats.r_data_bytes;
  p.p_state <- Blocked_until (t.now +. busy_s);
  log t (Recovered (t.now, p.p_name, p.p_node.n_name, why))

let finish t (p : proc) v =
  Buffer.add_string p.p_output (Interp.output p.p_interp);
  p.p_state <- Finished v;
  p.p_node.n_procs <- p.p_node.n_procs - 1;
  p.p_finish_time <- Some t.now;
  log t (Finished_ev (t.now, p.p_name, p.p_node.n_name))

(* Apply whatever recovery a completed handoff's outcome demands (see the
   module header).  [extra_s] is protocol time already spent before the
   handoff (pre-copy rounds); [delta] the incremental stats to surface on
   the [Migrated] event; [already_durable] suppresses the post-migration
   store checkpoint when the destination store already holds a manifest at
   this very suspension (the pre-copy path). *)
let apply_handoff_outcome t (p : proc) (dst : node) ~epoch ?delta
    ?(extra_s = 0.0) ?(already_durable = false) (res : Handoff.result) =
  let src = p.p_node in
  (* Any branch that swaps the interpreter for a restored copy starts a
     fresh snapshot-cache lineage, and — with a store — immediately makes
     the new suspension durable so crash recovery replays from here. *)
  let fresh_lineage () =
    p.p_cache <- Snapshot.new_cache ();
    if not already_durable then checkpoint_now t p
    else p.p_ckpt_pending <- false
  in
  match res.Handoff.outcome with
  | Handoff.Committed c ->
      rehome p dst c.Handoff.c_dst;
      p.p_migrations <- p.p_migrations + 1;
      p.p_bytes_collected <- p.p_bytes_collected + c.Handoff.c_cstats.Cstats.c_data_bytes;
      p.p_bytes_restored <- p.p_bytes_restored + c.Handoff.c_rstats.Cstats.r_data_bytes;
      p.p_retries <- p.p_retries + c.Handoff.c_tstats.Transport.t_retries;
      p.p_state <- Blocked_until (t.now +. c.Handoff.c_time_s +. extra_s);
      log t
        (Migrated
           ( t.now, p.p_name, src.n_name, dst.n_name,
             {
               ms_epoch = epoch;
               ms_stream_bytes = c.Handoff.c_stream_bytes;
               ms_collected_bytes = c.Handoff.c_cstats.Cstats.c_data_bytes;
               ms_restored_bytes = c.Handoff.c_rstats.Cstats.r_data_bytes;
               ms_retries = c.Handoff.c_tstats.Transport.t_retries;
               ms_time_s = c.Handoff.c_time_s +. extra_s;
               ms_delta = delta;
             } ));
      fresh_lineage ()
  | Handoff.Source_recovered r ->
      p.p_failed_migrations <- p.p_failed_migrations + 1;
      p.p_bytes_collected <- p.p_bytes_collected + r.Handoff.r_cstats.Cstats.c_data_bytes;
      rehome p src r.Handoff.r_interp;
      p.p_recoveries <- p.p_recoveries + 1;
      p.p_state <- Blocked_until (t.now +. r.Handoff.r_time_s +. extra_s);
      log t
        (Recovered
           ( t.now, p.p_name, src.n_name,
             Printf.sprintf "source crashed after %s; resumed from checkpoint (epoch %d)"
               (Netsim.phase_name r.Handoff.r_crash_phase) epoch ));
      fresh_lineage ()
  | Handoff.Abort_requeue q -> (
      p.p_failed_migrations <- p.p_failed_migrations + 1;
      p.p_bytes_collected <- p.p_bytes_collected + q.Handoff.q_cstats.Cstats.c_data_bytes;
      let resume_locally why =
        (* the source copy is still live and suspended: just keep it *)
        p.p_pending_dst <- None;
        Interp.clear_migration_request p.p_interp;
        p.p_recoveries <- p.p_recoveries + 1;
        p.p_state <- Blocked_until (t.now +. q.Handoff.q_time_s +. extra_s);
        log t (Recovered (t.now, p.p_name, src.n_name, why))
      in
      match least_loaded_except t [ dst; src ] with
      | None ->
          resume_locally
            (Printf.sprintf "%s; no other node, source copy resumes" q.Handoff.q_reason)
      | Some alt -> (
          (* ship the retained checkpoint to a third node *)
          match
            Transport.transfer ~config:t.handoff.Handoff.transport t.channel
              q.Handoff.q_ckpt
          with
          | Transport.Delivered (delivered, ts) ->
              let interp, rstats =
                Handoff.resume_from_checkpoint p.p_m alt.n_arch
                  ~epoch:q.Handoff.q_epoch delivered
              in
              rehome p alt interp;
              p.p_requeues <- p.p_requeues + 1;
              p.p_migrations <- p.p_migrations + 1;
              p.p_bytes_restored <- p.p_bytes_restored + rstats.Cstats.r_data_bytes;
              p.p_retries <- p.p_retries + ts.Transport.t_retries;
              p.p_state <-
                Blocked_until
                  (t.now +. q.Handoff.q_time_s +. ts.Transport.t_time_s +. extra_s);
              log t (Requeued (t.now, p.p_name, src.n_name, dst.n_name, alt.n_name));
              p.p_cache <- Snapshot.new_cache ();
              checkpoint_now t p
          | Transport.Aborted { stats; _ } ->
              p.p_retries <- p.p_retries + stats.Transport.t_retries;
              resume_locally
                (Printf.sprintf "%s; re-queue link also failed, source copy resumes"
                   q.Handoff.q_reason)))
  | Handoff.Stalled { s_ckpt; s_epoch; s_time_s } ->
      p.p_failed_migrations <- p.p_failed_migrations + 1;
      p.p_pending_dst <- None;
      (* destination unreachable and its committed epoch unknown: classic
         2PC blocking.  The simulation stands in for the operator by
         resuming the checkpoint on the source — safe because an unheard
         destination never got a RELEASE and keeps its copy suspended. *)
      resume_from_ckpt t p ~epoch:s_epoch
        ~why:
          (Printf.sprintf
             "handoff stalled (epoch %d unresolved); checkpoint resumed on source"
             s_epoch)
        s_ckpt (s_time_s +. extra_s);
      p.p_cache <- Snapshot.new_cache ();
      checkpoint_now t p
  | Handoff.Link_failed l ->
      p.p_pending_dst <- None;
      p.p_failed_migrations <- p.p_failed_migrations + 1;
      p.p_retries <- p.p_retries + l.Handoff.l_stats.Transport.t_retries;
      Interp.clear_migration_request p.p_interp;
      (* the process stayed put; it only wasted the transfer attempt's time *)
      p.p_state <- Blocked_until (t.now +. l.Handoff.l_time_s +. extra_s);
      log t
        (Migration_failed
           ( t.now, p.p_name, src.n_name, dst.n_name,
             l.Handoff.l_stats.Transport.t_retries, l.Handoff.l_time_s +. extra_s ))

(* One-shot stop-and-copy migration: the classic path. *)
let perform_handoff t (p : proc) (dst : node) =
  let epoch = p.p_epoch in
  p.p_epoch <- epoch + 1;
  let run () =
    Handoff.execute ~config:t.handoff ~channel:t.channel ~epoch p.p_m p.p_interp
      dst.n_arch
  in
  let res =
    if Hpm_obs.Obs.on () then (
      Hpm_obs.Obs.set_now t.now;
      Hpm_obs.Obs.with_labels [ ("proc", p.p_name) ] run)
    else run ()
  in
  apply_handoff_outcome t p dst ~epoch res

(* Iterative pre-copy migration through the shared store. *)
let perform_precopy t (p : proc) (dst : node) (pcfg : Precopy.config) (st : Store.t) =
  let src = p.p_node in
  (* one epoch sequence serves store manifests and handoff incarnations,
     keeping both monotonic per process *)
  let epoch0 = max p.p_epoch p.p_ckpt_epoch in
  if Hpm_obs.Obs.on () then Hpm_obs.Obs.set_now t.now;
  let pres =
    Precopy.execute
      ~config:{ pcfg with Precopy.handoff = t.handoff }
      ~channel:t.channel ~dst_store:st ~proc:(store_name p) ~epoch0 p.p_m p.p_interp
      dst.n_arch
  in
  p.p_epoch <- pres.Precopy.p_final_epoch + 1;
  p.p_ckpt_epoch <- pres.Precopy.p_final_epoch + 1;
  match pres.Precopy.p_outcome with
  | Precopy.Handed_off hres ->
      apply_handoff_outcome t p dst ~epoch:pres.Precopy.p_final_epoch
        ~delta:pres.Precopy.p_stats ~extra_s:pres.Precopy.p_precopy_s
        ~already_durable:true hres
  | Precopy.Finished_before_handoff -> (
      (* the source completed while pre-copying; nothing migrated *)
      p.p_pending_dst <- None;
      match p.p_interp.Interp.result with
      | Some v -> finish t p v
      | None -> p.p_state <- Runnable (* defensive; cannot happen *))
  | Precopy.Round_link_failed { rl_round; rl_reason; rl_stats } ->
      p.p_pending_dst <- None;
      p.p_failed_migrations <- p.p_failed_migrations + 1;
      (match rl_stats with
      | Some s -> p.p_retries <- p.p_retries + s.Transport.t_retries
      | None -> ());
      p.p_state <- Blocked_until (t.now +. pres.Precopy.p_precopy_s);
      log t
        (Migration_failed
           ( t.now, p.p_name, src.n_name, dst.n_name,
             (match rl_stats with Some s -> s.Transport.t_retries | None -> 0),
             pres.Precopy.p_precopy_s ));
      ignore rl_round;
      ignore rl_reason

(** Move [p]'s state to [dst] — through iterative pre-copy when the
    scheduler was created with a store and a pre-copy config, otherwise
    through the one-shot two-phase handoff. *)
let perform_migration t (p : proc) (dst : node) =
  match (t.precopy, t.store) with
  | Some pcfg, Some st -> perform_precopy t p dst pcfg st
  | _ -> perform_handoff t p dst

(** One simulation tick: give every runnable process its quantum. *)
let tick t =
  if Hpm_obs.Obs.on () then Hpm_obs.Obs.set_now t.now;
  Vec.iter
    (fun p ->
      match p.p_state with
      | Finished _ -> ()
      | Blocked_until until ->
          if t.now >= until then p.p_state <- Runnable
      | Runnable -> (
          (* periodic durability: ask for the next poll-point so we can
             checkpoint at a consistent suspension *)
          (if t.store <> None && t.now >= p.p_next_ckpt && p.p_pending_dst = None
              && not p.p_ckpt_pending then (
             p.p_ckpt_pending <- true;
             Interp.request_migration p.p_interp));
          (* the node's CPU is shared equally by its runnable processes *)
          let share = max 1 p.p_node.n_procs in
          let fuel =
            int_of_float
              (t.base_ips *. p.p_node.n_arch.Arch.speed *. t.quantum_s
              /. float_of_int share)
          in
          p.p_node.n_instrs <- p.p_node.n_instrs + fuel;
          match Interp.run ~fuel p.p_interp with
          | Interp.RFuel -> ()
          | Interp.RDone v -> finish t p v
          | Interp.RPolled _ -> (
              match p.p_pending_dst with
              | Some dst -> perform_migration t p dst
              | None ->
                  Interp.clear_migration_request p.p_interp;
                  if p.p_ckpt_pending then checkpoint_now t p)))
    t.procs;
  t.now <- t.now +. t.quantum_s

let all_finished t =
  Vec.for_all (fun p -> match p.p_state with Finished _ -> true | _ -> false) t.procs

(** Schedule [f] to run against the scheduler at simulated [time] —
    the event-heap face of {!run}.  Actions due at the same instant
    fire in scheduling order (the heap's (time, seq) total order),
    before that instant's tick.  Use it to script a fleet: inject a
    crash at t=2s, request a migration at t=5s, flip a policy on at
    t=10s. *)
let at t ~(time : float) (f : action) : unit =
  ignore (Eheap.add t.timers ~time f : int)

(* Fire every scheduled action due at or before the current instant. *)
let fire_due t =
  let rec go () =
    match Eheap.peek t.timers with
    | Some (time, _, _) when time <= t.now -> (
        match Eheap.pop t.timers with
        | Some (_, _, f) ->
            f t;
            go ()
        | None -> ())
    | _ -> ()
  in
  go ()

(** Run until every process finished (or [max_ticks] elapsed); returns the
    number of ticks executed.  Each iteration fires due {!at}-scheduled
    actions (in (time, seq) order), consults [policy], then ticks. *)
let run ?(max_ticks = 1_000_000) ?(policy = fun (_ : t) -> ()) t : int =
  let ticks = ref 0 in
  while (not (all_finished t)) && !ticks < max_ticks do
    fire_due t;
    policy t;
    tick t;
    incr ticks
  done;
  (* actions due by the instant the last process finished still fire:
     [fire_due] runs at loop *start*, so anything that came due during
     the final tick would otherwise be lost *)
  fire_due t;
  !ticks

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)
(* ------------------------------------------------------------------ *)

let node_named t name = Hashtbl.find_opt t.by_name name

(* The policy-facing views: what {!Policy.POLICY} implementations see.
   Proc views are in spawn order (the candidate tie-break). *)
let node_view t : Policy.node_info list =
  List.map
    (fun n ->
      {
        Policy.ni_name = n.n_name;
        ni_speed = n.n_arch.Arch.speed;
        ni_load = n.n_procs;
        ni_site = n.n_site;
        ni_alive = true;
      })
    t.nodes

let proc_view t : Policy.proc_info list =
  Vec.fold_left
    (fun acc p ->
      match p.p_state with
      | Finished _ -> acc
      | _ ->
          {
            Policy.pi_name = p.p_name;
            pi_node = p.p_node.n_name;
            pi_group = p.p_group;
            pi_runnable = (p.p_state = Runnable);
            pi_migrating = p.p_pending_dst <> None;
            pi_last_move_s = p.p_last_move_s;
          }
          :: acc)
    [] t.procs
  |> List.rev

(** Drive one placement round of [policy]: build the views, take its
    decisions, and turn each into a {!request_migration}.  Decisions
    naming unknown processes or nodes are dropped (a policy is data,
    not a capability). *)
let apply_policy t (policy : Policy.t) : unit =
  let decisions = Policy.decide policy ~now:t.now (node_view t) (proc_view t) in
  List.iter
    (fun { Policy.d_proc; d_dst } ->
      match
        ( Vec.find_opt (fun p -> p.p_name = d_proc) t.procs,
          node_named t d_dst )
      with
      | Some p, Some dst -> request_migration t p dst
      | _ -> ())
    decisions

(** Greedy load balancing: whenever some node runs ≥ 2 more processes than
    another, ask one (that is not already migrating) to move.  This is
    {!Policy.least_loaded} applied once per call. *)
let load_balance (t : t) = apply_policy t (Policy.least_loaded ())

(** Speed-seeking policy: move work from slow nodes to the fastest idle
    node — the "reconfigurable computing" motivation of §1.  This is
    {!Policy.seek_fastest} applied once per call. *)
let seek_fastest (t : t) = apply_policy t (Policy.seek_fastest ())

let pp_event ppf = function
  | Spawned (ts, p, n) -> Fmt.pf ppf "[%8.3fs] spawn    %s on %s" ts p n
  | Requested (ts, p, a, b) -> Fmt.pf ppf "[%8.3fs] request  %s: %s -> %s" ts p a b
  | Compat_rejected (ts, p, a, b) ->
      Fmt.pf ppf "[%8.3fs] REJECT   %s: %s -> %s (arch pair illegal for this program)"
        ts p a b
  | Migrated (ts, p, a, b, ms) ->
      Fmt.pf ppf
        "[%8.3fs] migrate  %s: %s -> %s (epoch %d: %d stream B, %dB collected, %dB restored, %d retries, %.2f ms)%a"
        ts p a b ms.ms_epoch ms.ms_stream_bytes ms.ms_collected_bytes
        ms.ms_restored_bytes ms.ms_retries (ms.ms_time_s *. 1e3)
        (Fmt.option (fun ppf d -> Fmt.pf ppf " [pre-copy: %a]" Cstats.pp_delta d))
        ms.ms_delta
  | Migration_failed (ts, p, a, b, retries, wasted) ->
      Fmt.pf ppf "[%8.3fs] FAILED   %s: %s -> %s (%d retries, %.2f ms wasted; re-queued on %s)"
        ts p a b retries (wasted *. 1e3) a
  | Recovered (ts, p, n, why) ->
      Fmt.pf ppf "[%8.3fs] RECOVER  %s on %s: %s" ts p n why
  | Requeued (ts, p, src, dead, alt) ->
      Fmt.pf ppf "[%8.3fs] REQUEUE  %s: %s -> %s dead, checkpoint re-queued to %s" ts p
        src dead alt
  | Finished_ev (ts, p, n) -> Fmt.pf ppf "[%8.3fs] finish   %s on %s" ts p n
  | Checkpointed (ts, p, epoch, d) ->
      Fmt.pf ppf "[%8.3fs] ckpt     %s (epoch %d: %a)" ts p epoch Cstats.pp_delta d
  | Promoted (ts, p, src, sb, epoch) ->
      Fmt.pf ppf "[%8.3fs] PROMOTE  %s: %s dead, standby %s promoted at epoch %d" ts
        p src sb epoch
  | Standby_lost (ts, p, sb) ->
      Fmt.pf ppf "[%8.3fs] SB-LOST  %s: standby %s missed too many heartbeats" ts p sb
  | Resynced (ts, p, sb, epoch) ->
      Fmt.pf ppf "[%8.3fs] RESYNC   %s: full resync to standby %s at epoch %d" ts p sb
        epoch

let events t = Vec.to_list t.events

let output (p : proc) =
  (* finished processes folded their last host's output already *)
  match p.p_state with
  | Finished _ -> Buffer.contents p.p_output
  | _ -> Buffer.contents p.p_output ^ Interp.output p.p_interp

(* ------------------------------------------------------------------ *)
(* Continuous replication: warm standbys and promotion-on-failure      *)
(* ------------------------------------------------------------------ *)

(** Open a continuous-replication session for [p]: every stream epoch
    ships a delta to the scheduler's store (required — it is the
    authoritative resume point) and to warm standbys on [standbys].
    Standby names are node names, so a later promotion can re-home the
    process onto the standby's node. *)
let replicate ?config ?faults t (p : proc) ~(standbys : node list) : Replica.t =
  let st =
    match t.store with
    | Some st -> st
    | None -> invalid_arg "Sched.replicate: scheduler has no store"
  in
  if standbys = [] then invalid_arg "Sched.replicate: no standby nodes";
  if List.exists (fun n -> n == p.p_node) standbys then
    invalid_arg "Sched.replicate: a standby cannot be the source node";
  Replica.create ?config ?faults ~channel:t.channel ~store:st
    ~proc:(store_name p)
    ~standbys:(List.map (fun n -> (n.n_name, n.n_arch)) standbys)
    p.p_m p.p_interp

(* Surface the replica's event log as scheduler events (resyncs and lost
   standbys), starting after the first [seen0] replica events. *)
let absorb_replica_events t (p : proc) (r : Replica.t) seen0 =
  List.iteri
    (fun i e ->
      if i >= seen0 then
        match e with
        | Replica.Ev_resync { er_epoch; er_sub; _ } ->
            p.p_resyncs <- p.p_resyncs + 1;
            log t (Resynced (t.now, p.p_name, er_sub, er_epoch))
        | Replica.Ev_standby_lost { el_epoch = _; el_sub } ->
            log t (Standby_lost (t.now, p.p_name, el_sub))
        | _ -> ())
    (Replica.events r)

(** Stream up to [epochs] replication epochs for [p], advancing the
    scheduler clock by the simulated replication time and folding output
    the replica released at durable epochs into the process's
    accumulated output.  A completed source finishes the process. *)
let stream_replica t (p : proc) (r : Replica.t) ~epochs : Replica.step =
  let seen = List.length (Replica.events r) in
  let t0 = Replica.time_s r in
  let rel0 = String.length (Replica.released_output r) in
  if Hpm_obs.Obs.on () then Hpm_obs.Obs.set_now t.now;
  let step = Replica.run r ~epochs in
  absorb_replica_events t p r seen;
  let rel = Replica.released_output r in
  Buffer.add_string p.p_output (String.sub rel rel0 (String.length rel - rel0));
  p.p_ckpt_epoch <- max p.p_ckpt_epoch (Replica.epoch r + 1);
  p.p_epoch <- max p.p_epoch (Replica.epoch r + 1);
  t.now <- t.now +. (Replica.time_s r -. t0);
  (match step with
  | Replica.Source_finished -> (
      match p.p_interp.Interp.result with
      | Some v -> finish t p v
      | None -> ())
  | _ -> ());
  step

(** Fail [p] over: promote the freshest committed standby (or [sub]),
    fence the dead incarnation, and re-home the process onto the
    promoted standby's node.  The dead interpreter's unreleased output
    is discarded, not folded — the replica released output only at
    durable epochs and replay regenerates exactly the rest. *)
let promote_standby ?sub t (p : proc) (r : Replica.t) : Replica.promotion =
  let seen = List.length (Replica.events r) in
  let t0 = Replica.time_s r in
  if Hpm_obs.Obs.on () then Hpm_obs.Obs.set_now t.now;
  let pm = Replica.promote ?sub r in
  absorb_replica_events t p r seen;
  let src_name = p.p_node.n_name in
  let dst =
    match node_named t pm.Replica.pm_sub with
    | Some n -> n
    | None ->
        invalid_arg
          (Printf.sprintf "Sched.promote_standby: standby %s is not a node"
             pm.Replica.pm_sub)
  in
  Buffer.clear p.p_interp.Interp.out;
  rehome p dst pm.Replica.pm_interp;
  p.p_cache <- Snapshot.new_cache ();
  p.p_promotions <- p.p_promotions + 1;
  p.p_recoveries <- p.p_recoveries + 1;
  p.p_epoch <- pm.Replica.pm_epoch + 1;
  p.p_ckpt_epoch <- pm.Replica.pm_epoch + 1;
  t.now <- t.now +. (Replica.time_s r -. t0);
  p.p_state <- Blocked_until (t.now +. t.handoff.Handoff.restart_delay_s);
  log t (Promoted (t.now, p.p_name, src_name, dst.n_name, pm.Replica.pm_epoch));
  pm
