(** The distributed process-migration environment of §2.

    The paper models "a distributed environment [with] a scheduler which
    performs process management and sends a migration request to a
    process"; migration then proceeds by remote invocation — the waiting
    destination process is started, the migrating process collects and
    transmits its state, terminates, and the new process resumes.  The
    paper leaves the scheduler itself as future work; this module provides
    the environment simulation plus two concrete policies (explicit
    placement commands and a simple load balancer), which is what the
    load-balancing example and the scheduler tests exercise.

    Simulation model: discrete ticks of [quantum_s] simulated seconds.  A
    node executes [speed × 1e6 × quantum_s] IR instructions per runnable
    process per tick (its [Arch.speed] making fast and slow machines
    real).  A migration requested by the scheduler is noticed at the
    process's next poll-point; the stream then occupies the network for
    {!Hpm_net.Netsim.tx_time} and the process stays blocked until
    delivery, after which it resumes on the destination node. *)

open Hpm_arch
open Hpm_machine
open Hpm_core
open Hpm_net

type node = {
  n_name : string;
  n_arch : Arch.t;
  mutable n_procs : int;       (** runnable processes currently placed here *)
  mutable n_instrs : int;      (** total instructions executed here *)
}

let node name arch = { n_name = name; n_arch = arch; n_procs = 0; n_instrs = 0 }

type proc_state =
  | Runnable
  | Blocked_until of float     (** migrating: in flight until this time *)
  | Finished of Mem.value option

type proc = {
  p_id : int;
  p_name : string;
  p_m : Migration.migratable;
  mutable p_interp : Interp.t;
  mutable p_node : node;
  mutable p_state : proc_state;
  mutable p_pending_dst : node option;  (** where the scheduler wants it *)
  mutable p_migrations : int;
  mutable p_failed_migrations : int;    (** transfers aborted by the transport *)
  mutable p_finish_time : float option;
  mutable p_output : Buffer.t;          (** output accumulated across hosts *)
}

type event =
  | Spawned of float * string * string            (* time, proc, node *)
  | Requested of float * string * string * string (* time, proc, from, to *)
  | Migrated of float * string * string * string * int * float
      (* time, proc, from, to, bytes, tx seconds *)
  | Migration_failed of float * string * string * string * int * float
      (* time, proc, from, to, retries spent, seconds wasted *)
  | Finished_ev of float * string * string        (* time, proc, node *)

type t = {
  nodes : node list;
  channel : Netsim.t;
  transport : Transport.config;
  quantum_s : float;
  base_ips : float;            (** instructions/simulated-second at speed 1.0 *)
  mutable procs : proc list;
  mutable now : float;
  mutable next_pid : int;
  mutable events : event list; (** newest first *)
}

let create ?(quantum_s = 0.01) ?(base_ips = 1e6)
    ?(transport = Transport.default_config) ~channel nodes =
  {
    nodes;
    channel;
    transport;
    quantum_s;
    base_ips;
    procs = [];
    now = 0.;
    next_pid = 0;
    events = [];
  }

let log t e = t.events <- e :: t.events

let spawn t (nd : node) name (m : Migration.migratable) : proc =
  let p =
    {
      p_id = t.next_pid;
      p_name = name;
      p_m = m;
      p_interp = Migration.start m nd.n_arch;
      p_node = nd;
      p_state = Runnable;
      p_pending_dst = None;
      p_migrations = 0;
      p_failed_migrations = 0;
      p_finish_time = None;
      p_output = Buffer.create 64;
    }
  in
  t.next_pid <- t.next_pid + 1;
  nd.n_procs <- nd.n_procs + 1;
  t.procs <- t.procs @ [ p ];
  log t (Spawned (t.now, name, nd.n_name));
  p

(** Scheduler action: ask [p] to migrate to [dst].  The request is noticed
    at the process's next poll-point. *)
let request_migration t (p : proc) (dst : node) =
  if dst != p.p_node then (
    p.p_pending_dst <- Some dst;
    Interp.request_migration p.p_interp;
    log t (Requested (t.now, p.p_name, p.p_node.n_name, dst.n_name)))

(** Move [p]'s state to [dst] through the chunked transport.  A delivered
    stream re-homes the process and blocks it until the simulated transfer
    completes; an aborted transfer re-queues the process on the *source*
    node — it stays where it is, loses only the simulated time the failed
    attempts cost, and keeps running (§2's migrating process must never be
    lost to a bad link). *)
let perform_migration t (p : proc) (dst : node) =
  let src_name = p.p_node.n_name in
  let data, _cstats = Collect.collect p.p_interp p.p_m.Migration.ti in
  match Transport.transfer ~config:t.transport t.channel data with
  | Transport.Delivered (delivered, ts) ->
      Buffer.add_string p.p_output (Interp.output p.p_interp);
      let interp, _rstats =
        Restore.restore p.p_m.Migration.prog dst.n_arch p.p_m.Migration.ti delivered
      in
      p.p_node.n_procs <- p.p_node.n_procs - 1;
      dst.n_procs <- dst.n_procs + 1;
      p.p_interp <- interp;
      p.p_node <- dst;
      p.p_pending_dst <- None;
      p.p_migrations <- p.p_migrations + 1;
      p.p_state <- Blocked_until (t.now +. ts.Transport.t_time_s);
      log t
        (Migrated (t.now, p.p_name, src_name, dst.n_name, String.length data,
                   ts.Transport.t_time_s))
  | Transport.Aborted { stats; _ } ->
      p.p_pending_dst <- None;
      p.p_failed_migrations <- p.p_failed_migrations + 1;
      Interp.clear_migration_request p.p_interp;
      (* the process stayed put; it only wasted the transfer attempt's time *)
      p.p_state <- Blocked_until (t.now +. stats.Transport.t_time_s);
      log t
        (Migration_failed (t.now, p.p_name, src_name, dst.n_name,
                           stats.Transport.t_retries, stats.Transport.t_time_s))

let finish t (p : proc) v =
  Buffer.add_string p.p_output (Interp.output p.p_interp);
  p.p_state <- Finished v;
  p.p_node.n_procs <- p.p_node.n_procs - 1;
  p.p_finish_time <- Some t.now;
  log t (Finished_ev (t.now, p.p_name, p.p_node.n_name))

(** One simulation tick: give every runnable process its quantum. *)
let tick t =
  List.iter
    (fun p ->
      match p.p_state with
      | Finished _ -> ()
      | Blocked_until until ->
          if t.now >= until then p.p_state <- Runnable
      | Runnable -> (
          (* the node's CPU is shared equally by its runnable processes *)
          let share = max 1 p.p_node.n_procs in
          let fuel =
            int_of_float
              (t.base_ips *. p.p_node.n_arch.Arch.speed *. t.quantum_s
              /. float_of_int share)
          in
          p.p_node.n_instrs <- p.p_node.n_instrs + fuel;
          match Interp.run ~fuel p.p_interp with
          | Interp.RFuel -> ()
          | Interp.RDone v -> finish t p v
          | Interp.RPolled _ -> (
              match p.p_pending_dst with
              | Some dst -> perform_migration t p dst
              | None ->
                  (* spurious: request was cancelled; continue *)
                  Interp.clear_migration_request p.p_interp)))
    t.procs;
  t.now <- t.now +. t.quantum_s

let all_finished t =
  List.for_all (fun p -> match p.p_state with Finished _ -> true | _ -> false) t.procs

(** Run until every process finished (or [max_ticks] elapsed); returns the
    number of ticks executed. *)
let run ?(max_ticks = 1_000_000) ?(policy = fun (_ : t) -> ()) t : int =
  let ticks = ref 0 in
  while (not (all_finished t)) && !ticks < max_ticks do
    policy t;
    tick t;
    incr ticks
  done;
  !ticks

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)
(* ------------------------------------------------------------------ *)

(** Greedy load balancing: whenever some node runs ≥ 2 more processes than
    another, ask one (that is not already migrating) to move. *)
let load_balance (t : t) =
  let by_load = List.sort (fun a b -> compare a.n_procs b.n_procs) t.nodes in
  match (by_load, List.rev by_load) with
  | least :: _, most :: _ when most.n_procs >= least.n_procs + 2 -> (
      let candidate =
        List.find_opt
          (fun p ->
            p.p_node == most && p.p_state = Runnable && p.p_pending_dst = None)
          t.procs
      in
      match candidate with Some p -> request_migration t p least | None -> ())
  | _ -> ()

(** Speed-seeking policy: move work from slow nodes to the fastest idle
    node — the "reconfigurable computing" motivation of §1. *)
let seek_fastest (t : t) =
  let fastest =
    List.fold_left
      (fun acc n -> if n.n_arch.Arch.speed > acc.n_arch.Arch.speed then n else acc)
      (List.hd t.nodes) t.nodes
  in
  if fastest.n_procs = 0 then
    match
      List.find_opt
        (fun p ->
          p.p_state = Runnable && p.p_pending_dst = None && p.p_node != fastest)
        t.procs
    with
    | Some p -> request_migration t p fastest
    | None -> ()

let pp_event ppf = function
  | Spawned (ts, p, n) -> Fmt.pf ppf "[%8.3fs] spawn    %s on %s" ts p n
  | Requested (ts, p, a, b) -> Fmt.pf ppf "[%8.3fs] request  %s: %s -> %s" ts p a b
  | Migrated (ts, p, a, b, bytes, tx) ->
      Fmt.pf ppf "[%8.3fs] migrate  %s: %s -> %s (%d bytes, %.2f ms)" ts p a b bytes
        (tx *. 1e3)
  | Migration_failed (ts, p, a, b, retries, wasted) ->
      Fmt.pf ppf "[%8.3fs] FAILED   %s: %s -> %s (%d retries, %.2f ms wasted; re-queued on %s)"
        ts p a b retries (wasted *. 1e3) a
  | Finished_ev (ts, p, n) -> Fmt.pf ppf "[%8.3fs] finish   %s on %s" ts p n

let events t = List.rev t.events

let output (p : proc) =
  (* finished processes folded their last host's output already *)
  match p.p_state with
  | Finished _ -> Buffer.contents p.p_output
  | _ -> Buffer.contents p.p_output ^ Interp.output p.p_interp
