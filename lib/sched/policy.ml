(** Pluggable placement policies.

    The paper leaves the scheduler's placement policy as future work;
    this module makes it a first-class plug point.  A policy sees an
    abstract view of the fleet — node load/speed/site and process
    placement — and returns the migrations it wants, as data.  The
    engine (interpreter-backed {!Sched} or the at-scale {!Cluster})
    owns clocks, queues, and protocol mechanics; the policy owns only
    the placement decision.  That split is what lets the same policy
    drive a 3-node interpreter simulation and a 1000-node churn run.

    Every choice here is deterministic: ties on load break on node
    name, ties on speed break on node name, and candidate processes
    are scanned in the (spawn-ordered) list the engine passes.  A
    policy's output is a pure function of its input — placement never
    depends on node-registration order, hashing, or allocation. *)

type node_info = {
  ni_name : string;
  ni_speed : float;       (** relative CPU speed (Arch.speed) *)
  ni_load : int;          (** runnable processes currently placed here *)
  ni_site : string;       (** locality tag; [""] = untagged *)
  ni_alive : bool;        (** dead nodes take no placements *)
}

type proc_info = {
  pi_name : string;
  pi_node : string;       (** current placement (node name) *)
  pi_group : string;      (** gang-migration group; [""] = ungrouped *)
  pi_runnable : bool;
  pi_migrating : bool;    (** a move is already pending or in flight *)
  pi_last_move_s : float; (** when it last moved; [neg_infinity] = never *)
}

(** One requested move: ask [d_proc] to migrate to [d_dst]. *)
type decision = { d_proc : string; d_dst : string }

module type POLICY = sig
  val name : string

  val decide :
    now:float -> node_info list -> proc_info list -> decision list
end

type t = (module POLICY)

(* ------------------------------------------------------------------ *)
(* Deterministic orderings                                             *)
(* ------------------------------------------------------------------ *)

(** Ascending (load, name): the canonical "least loaded" order.  The
    name tie-break is the whole point — [compare] on load alone left
    equal-load winners to list-construction order. *)
let by_load a b =
  match compare a.ni_load b.ni_load with
  | 0 -> compare a.ni_name b.ni_name
  | c -> c

(** Descending speed, ascending name: the canonical "fastest" order. *)
let by_speed a b =
  match compare b.ni_speed a.ni_speed with
  | 0 -> compare a.ni_name b.ni_name
  | c -> c

let live nodes = List.filter (fun n -> n.ni_alive) nodes

(** Least-loaded live node, ties on name, skipping [avoid] (names). *)
let least_loaded_node ?(avoid = []) nodes =
  live nodes
  |> List.filter (fun n -> not (List.mem n.ni_name avoid))
  |> List.sort by_load
  |> function [] -> None | n :: _ -> Some n

(* A process the engine may move right now. *)
let movable p = p.pi_runnable && not p.pi_migrating

(* First movable process on [node], in the engine's spawn order. *)
let candidate_on procs node =
  List.find_opt (fun p -> movable p && p.pi_node = node.ni_name) procs

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)
(* ------------------------------------------------------------------ *)

(* Greedy balance of [nodes] (assumed live): while some node runs ≥ 2
   more processes than another, move one process down the gradient.
   Loads are adjusted as decisions accumulate so one call can drain a
   hot node without overshooting.  Cost is O(procs + moves·nodes) — at
   cluster scale (1000 nodes, 10k procs) a policy round must not sort
   or rescan the world per move.  The extremes are tracked as
   min/max (load, name): ties on load always break on node name. *)
let balance_pass ~max_moves nodes procs =
  match nodes with
  | [] -> []
  | _ ->
      let arr = Array.of_list nodes in
      let load = Array.map (fun n -> n.ni_load) arr in
      (* movable processes per node, in the engine's spawn order *)
      let queues = Hashtbl.create (Array.length arr) in
      List.iter
        (fun p ->
          if movable p then
            match Hashtbl.find_opt queues p.pi_node with
            | Some q -> Queue.push p q
            | None ->
                let q = Queue.create () in
                Queue.push p q;
                Hashtbl.replace queues p.pi_node q)
        procs;
      let decisions = ref [] and count = ref 0 and continue = ref true in
      while !continue && !count < max_moves do
        let li = ref 0 and mi = ref 0 in
        Array.iteri
          (fun i n ->
            let l = load.(i) in
            if
              l < load.(!li)
              || (l = load.(!li) && n.ni_name < arr.(!li).ni_name)
            then li := i;
            if
              l > load.(!mi)
              || (l = load.(!mi) && n.ni_name > arr.(!mi).ni_name)
            then mi := i)
          arr;
        if load.(!mi) >= load.(!li) + 2 then
          match Hashtbl.find_opt queues arr.(!mi).ni_name with
          | Some q when not (Queue.is_empty q) ->
              let p = Queue.pop q in
              load.(!mi) <- load.(!mi) - 1;
              load.(!li) <- load.(!li) + 1;
              incr count;
              decisions :=
                { d_proc = p.pi_name; d_dst = arr.(!li).ni_name } :: !decisions
          | _ -> continue := false
        else continue := false
      done;
      List.rev !decisions

(** Classic greedy load balancing: move processes from the most- to the
    least-loaded node whenever the gap reaches 2.  [max_moves] bounds
    the decisions per call (the tick-driven {!Sched} uses 1, preserving
    its historical one-move-per-tick pace; the cluster engine lets a
    single policy round drain a hot node). *)
let least_loaded ?(max_moves = 1) () : t =
  (module struct
    let name = "least-loaded"
    let decide ~now:_ nodes procs = balance_pass ~max_moves (live nodes) procs
  end)

(** Speed seeking: when the fastest live node sits idle, hand it work —
    the "reconfigurable computing" motivation of the paper's §1. *)
let seek_fastest () : t =
  (module struct
    let name = "seek-fastest"

    let decide ~now:_ nodes procs =
      match List.sort by_speed (live nodes) with
      | fastest :: _ when fastest.ni_load = 0 -> (
          match
            List.find_opt
              (fun p -> movable p && p.pi_node <> fastest.ni_name)
              procs
          with
          | Some p -> [ { d_proc = p.pi_name; d_dst = fastest.ni_name } ]
          | None -> [])
      | _ -> []
  end)

(** Locality-preserving balance: like {!least_loaded}, but the gradient
    is computed per site and processes never cross a site boundary —
    affinity for the data (or operator domain) the site represents.
    Sites are visited in name order; [max_moves] bounds each site's
    pass. *)
let locality ?(max_moves = 1) () : t =
  (module struct
    let name = "locality"

    let decide ~now:_ nodes procs =
      let nodes = live nodes in
      let sites =
        List.sort_uniq compare (List.map (fun n -> n.ni_site) nodes)
      in
      List.concat_map
        (fun site ->
          let here = List.filter (fun n -> n.ni_site = site) nodes in
          let names = List.map (fun n -> n.ni_name) here in
          let procs_here =
            List.filter (fun p -> List.mem p.pi_node names) procs
          in
          balance_pass ~max_moves here procs_here)
        sites
  end)

(** Gang migration: lift [policy]'s per-process decisions to whole
    process groups.  A decision for a grouped process becomes one
    decision per group member — all to the same destination — and is
    dropped entirely when any member is not currently movable, so a
    gang is only ever asked to move as a unit.  When the base policy
    selects several members of the same group in one round, only the
    first selection expands — the rest are redundant (the gang already
    moves) and would otherwise duplicate decisions.  Ungrouped
    processes pass through untouched. *)
let gang (policy : t) : t =
  let module P = (val policy) in
  (module struct
    let name = "gang+" ^ P.name

    let decide ~now nodes procs =
      let members g = List.filter (fun p -> p.pi_group = g) procs in
      let expanded = ref [] in
      List.concat_map
        (fun d ->
          match List.find_opt (fun p -> p.pi_name = d.d_proc) procs with
          | Some p when p.pi_group <> "" ->
              if List.mem p.pi_group !expanded then []
              else begin
                expanded := p.pi_group :: !expanded;
                let gang = members p.pi_group in
                if List.for_all movable gang then
                  List.filter_map
                    (fun m ->
                      if m.pi_node = d.d_dst then None
                      else Some { d_proc = m.pi_name; d_dst = d.d_dst })
                    gang
                else []
              end
          | _ -> [ d ])
        (P.decide ~now nodes procs)
  end)

(** Anti-flap hysteresis: a process that moved within the last
    [cooldown_s] simulated seconds is invisible to [policy] (masked as
    already-migrating), so freshly landed work is never bounced straight
    back — the classic load-balancer flap. *)
let with_hysteresis ~(cooldown_s : float) (policy : t) : t =
  if cooldown_s < 0.0 then
    invalid_arg "Policy.with_hysteresis: cooldown_s must be >= 0";
  let module P = (val policy) in
  (module struct
    let name = Printf.sprintf "%s/cooldown=%g" P.name cooldown_s

    let decide ~now nodes procs =
      let procs =
        List.map
          (fun p ->
            if now -. p.pi_last_move_s < cooldown_s then
              { p with pi_migrating = true }
            else p)
          procs
      in
      P.decide ~now nodes procs
  end)

let name (policy : t) =
  let module P = (val policy) in
  P.name

let decide (policy : t) ~now nodes procs =
  let module P = (val policy) in
  P.decide ~now nodes procs
