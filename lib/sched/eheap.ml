(** The global event heap of the discrete-event engine.

    A binary min-heap keyed on [(time, seq)]: [seq] is a per-heap
    monotonic counter stamped at insertion, so events scheduled for the
    same simulated instant pop in the order they were scheduled.  That
    total order is what makes cluster runs byte-identical across
    same-seed reruns — nothing about pop order depends on allocation,
    hashing, or list-construction order.

    Operations are the textbook O(log n) sift-up/sift-down; the heap
    array grows geometrically and never shrinks (a churn run schedules
    hundreds of thousands of events and the high-water mark is the
    steady state).  Slots past [len] may retain popped entries — they
    are never read. *)

type 'a entry = { e_time : float; e_seq : int; e_v : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () : 'a t = { heap = [||]; len = 0; next_seq = 0 }

let length h = h.len
let is_empty h = h.len = 0

(* (time, seq) lexicographic order. *)
let before a b =
  a.e_time < b.e_time || (a.e_time = b.e_time && a.e_seq < b.e_seq)

let swap h i j =
  let tmp = h.heap.(i) in
  h.heap.(i) <- h.heap.(j);
  h.heap.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.heap.(i) h.heap.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && before h.heap.(l) h.heap.(!smallest) then smallest := l;
  if r < h.len && before h.heap.(r) h.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

(** Schedule [v] at simulated [time]; returns the stamped sequence
    number (the tie-breaker among same-instant events). *)
let add (h : 'a t) ~(time : float) (v : 'a) : int =
  if Float.is_nan time then invalid_arg "Eheap.add: time is NaN";
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  let e = { e_time = time; e_seq = seq; e_v = v } in
  if h.len = Array.length h.heap then begin
    let cap = max 64 (2 * Array.length h.heap) in
    let bigger = Array.make cap e in
    Array.blit h.heap 0 bigger 0 h.len;
    h.heap <- bigger
  end;
  h.heap.(h.len) <- e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1);
  seq

(** Earliest (time, seq, value) without removing it. *)
let peek (h : 'a t) : (float * int * 'a) option =
  if h.len = 0 then None
  else
    let e = h.heap.(0) in
    Some (e.e_time, e.e_seq, e.e_v)

(** Remove and return the earliest (time, seq, value). *)
let pop (h : 'a t) : (float * int * 'a) option =
  if h.len = 0 then None
  else begin
    let e = h.heap.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.heap.(0) <- h.heap.(h.len);
      sift_down h 0
    end;
    Some (e.e_time, e.e_seq, e.e_v)
  end
