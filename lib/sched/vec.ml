(** Growable array kept in insertion order.

    The scheduler's hot paths used to accumulate into lists — newest
    first (reversed on every read) or, worse, appended with [xs @ [x]]
    (O(n) per spawn).  This vector gives amortized-O(1) push, O(1)
    random access, and in-order iteration without any per-read
    reversal.  OCaml 5.1 has no [Dynarray]; this is the minimal subset
    the schedulers need.  Slots past [len] may retain earlier elements
    (capacity is seeded from pushed values) — they are never read. *)

type 'a t = { mutable buf : 'a array; mutable len : int }

let create () : 'a t = { buf = [||]; len = 0 }

let length v = v.len

let push v x =
  if v.len = Array.length v.buf then begin
    let cap = max 64 (2 * Array.length v.buf) in
    let bigger = Array.make cap x in
    Array.blit v.buf 0 bigger 0 v.len;
    v.buf <- bigger
  end;
  v.buf.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  v.buf.(i)

(** Insertion order. *)
let iter f v =
  for i = 0 to v.len - 1 do
    f v.buf.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.buf.(i)
  done;
  !acc

let for_all p v =
  let rec go i = i >= v.len || (p v.buf.(i) && go (i + 1)) in
  go 0

let exists p v =
  let rec go i = i < v.len && (p v.buf.(i) || go (i + 1)) in
  go 0

(** First element satisfying [p], scanning in insertion order. *)
let find_opt p v =
  let rec go i =
    if i >= v.len then None
    else if p v.buf.(i) then Some v.buf.(i)
    else go (i + 1)
  in
  go 0

(** Fresh list in insertion order. *)
let to_list v = List.init v.len (fun i -> v.buf.(i))
