(** Continuous delta replication with warm standbys.

    {!Hpm_store.Precopy} ships converging deltas once, immediately ahead
    of a migration.  This module generalizes those delta rounds into an
    {e ongoing subscription}: at every stream epoch the source suspends
    at a poll-point, snapshots its wgen-dirty blocks ({!Snapshot}), and
    ships one v3 delta ({!Store.encode_delta}) to the durable {!Store}
    and to every live subscriber.  Failover then stops being a
    stop-the-world collect — a planned migration ships only the {e final}
    delta under the two-phase {!Hpm_core.Handoff} commit, and a source
    crash is answered by {e promoting} the freshest committed standby,
    catching it up from the store and fencing the dead incarnation.

    Protocol rules (docs/REPLICATION.md):

    - the {b store is always shipped first}: an epoch is durable (and its
      output released) before any subscriber sees it, so the store's
      newest committed manifest is the authoritative resume point;
    - standby application is {b idempotent and base-checked}: a duplicate
      or re-sent-base delta is a no-op, a gap raises a typed
      [Resync_required] answered with a full resync;
    - {b lag and backpressure} are accounted per subscriber
      (epochs-behind, bytes-in-flight); a partitioned subscriber's deltas
      queue in a bounded outbox, and overflowing it degrades the
      subscriber to store-only shipping;
    - {b liveness} is heartbeat-based ({!Transport.encode_heartbeat});
      [miss_limit] consecutive misses declare the standby lost;
    - {b exactly-once} across promotion: output is released only at
      durable (store-committed) epochs, promotion resumes from exactly
      the newest committed epoch, and the promoted standby {e fences}
      the old incarnation — a recovering source finds the fence and
      discards itself instead of running twice. *)

open Hpm_machine
open Hpm_net
open Hpm_core
module Obs = Hpm_obs.Obs

type config = {
  epoch_polls : int;   (** poll events the source advances per stream epoch (>= 1) *)
  max_lag : int;       (** epochs-behind before a subscriber degrades to store-only *)
  outbox_limit : int;  (** queued deltas per partitioned subscriber before degrade *)
  miss_limit : int;    (** consecutive heartbeat misses before the standby is lost *)
  handoff : Handoff.config;  (** protocol config for planned-migration handoffs *)
}

let default_config =
  { epoch_polls = 25; max_lag = 4; outbox_limit = 2; miss_limit = 2;
    handoff = Handoff.default_config }

type sub_state = Sub_live | Sub_degraded | Sub_lost

let sub_state_name = function
  | Sub_live -> "live"
  | Sub_degraded -> "degraded"
  | Sub_lost -> "lost"

(** What one delivery did on the standby. *)
type apply_result =
  | Applied of int    (** advanced to this epoch *)
  | Duplicate         (** duplicate or re-sent base: no-op (idempotence) *)
  | Resync_required of { rr_have : int; rr_base : string }
      (** the delta names a base this standby never held (gap, reorder,
          or crash-restart): it needs a full resync.  [rr_have] is the
          newest epoch it still holds (0 = none), [rr_base] the hex hash
          of the base the delta wanted. *)

type standby = {
  sb_name : string;
  sb_arch : Hpm_arch.Arch.t;
  sb_chunks : (string, string) Hashtbl.t;  (* volatile standby memory *)
  sb_seen : (string, int) Hashtbl.t;       (* applied manifest hex hash -> epoch *)
  mutable sb_manifest : Store.manifest option;
  mutable sb_epoch : int;                  (* newest applied epoch; 0 = none *)
  mutable sb_state : sub_state;
  mutable sb_outbox : (int * string) list; (* queued (epoch, wire), oldest first *)
  mutable sb_outbox_bytes : int;
  mutable sb_held : (int * string) option; (* reorder fault: delta held back *)
  mutable sb_applied : int;
  mutable sb_dups : int;
  mutable sb_resyncs : int;
  mutable sb_hb_misses : int;              (* consecutive *)
  mutable sb_hb_seq : int;
}

(** The deterministic replication event log — the replication sibling of
    {!Hpm_core.Handoff.step}. *)
type event =
  | Ev_store of { es_epoch : int; es_bytes : int }
  | Ev_delta of { ed_epoch : int; ed_sub : string; ed_kind : [ `Full | `Delta ];
                  ed_bytes : int }
  | Ev_dup of { eu_epoch : int; eu_sub : string }
  | Ev_gap of { eg_epoch : int; eg_sub : string; eg_have : int }
  | Ev_resync of { er_epoch : int; er_sub : string; er_bytes : int }
  | Ev_partition of { ep_epoch : int; ep_sub : string; ep_queued : int }
  | Ev_degraded of { ed2_epoch : int; ed2_sub : string }
  | Ev_hb_miss of { eh_epoch : int; eh_sub : string; eh_misses : int }
  | Ev_standby_lost of { el_epoch : int; el_sub : string }
  | Ev_standby_crash of { ec_epoch : int; ec_sub : string }
  | Ev_source_crash of { ek_phase : Netsim.rep_phase; ek_epoch : int }
  | Ev_promoted of { ev_sub : string; ev_from : int; ev_epoch : int;
                     ev_catchup : int }
  | Ev_fenced of { ef_incarnation : int }

let pp_event ppf = function
  | Ev_store { es_epoch; es_bytes } ->
      Fmt.pf ppf "epoch %d: store committed (%d B)" es_epoch es_bytes
  | Ev_delta { ed_epoch; ed_sub; ed_kind; ed_bytes } ->
      Fmt.pf ppf "epoch %d: %s delta -> %s (%d B)" ed_epoch
        (match ed_kind with `Full -> "full" | `Delta -> "incr") ed_sub ed_bytes
  | Ev_dup { eu_epoch; eu_sub } ->
      Fmt.pf ppf "epoch %d: %s ignored a duplicate" eu_epoch eu_sub
  | Ev_gap { eg_epoch; eg_sub; eg_have } ->
      Fmt.pf ppf "epoch %d: %s hit a gap (holds %d); resync required" eg_epoch
        eg_sub eg_have
  | Ev_resync { er_epoch; er_sub; er_bytes } ->
      Fmt.pf ppf "epoch %d: full resync -> %s (%d B)" er_epoch er_sub er_bytes
  | Ev_partition { ep_epoch; ep_sub; ep_queued } ->
      Fmt.pf ppf "epoch %d: %s partitioned (%d queued)" ep_epoch ep_sub ep_queued
  | Ev_degraded { ed2_epoch; ed2_sub } ->
      Fmt.pf ppf "epoch %d: %s outbox overflow; degraded to store-only" ed2_epoch
        ed2_sub
  | Ev_hb_miss { eh_epoch; eh_sub; eh_misses } ->
      Fmt.pf ppf "epoch %d: heartbeat of %s missed (%d consecutive)" eh_epoch
        eh_sub eh_misses
  | Ev_standby_lost { el_epoch; el_sub } ->
      Fmt.pf ppf "epoch %d: standby %s declared lost" el_epoch el_sub
  | Ev_standby_crash { ec_epoch; ec_sub } ->
      Fmt.pf ppf "epoch %d: standby %s crashed mid-apply (state wiped)" ec_epoch
        ec_sub
  | Ev_source_crash { ek_phase; ek_epoch } ->
      Fmt.pf ppf "epoch %d: SOURCE CRASH during %s" ek_epoch
        (Netsim.rep_phase_name ek_phase)
  | Ev_promoted { ev_sub; ev_from; ev_epoch; ev_catchup } ->
      Fmt.pf ppf "promoted %s: epoch %d -> %d (%d catch-up deltas)" ev_sub ev_from
        ev_epoch ev_catchup
  | Ev_fenced { ef_incarnation } ->
      Fmt.pf ppf "old incarnation fenced; incarnation now %d" ef_incarnation

type t = {
  r_config : config;
  r_channel : Netsim.t;
  r_store : Store.t;
  r_proc : string;
  r_m : Migration.migratable;
  mutable r_src : Interp.t;
  r_cache : Snapshot.cache;
  r_chunks : (string, string) Hashtbl.t;  (* union of serialized payloads *)
  r_standbys : standby list;
  mutable r_faults : Netsim.rep_faults option;
  mutable r_epoch : int;                  (* newest store-committed epoch *)
  mutable r_manifest : Store.manifest option;
  r_output : Buffer.t;                    (* output released at durable epochs *)
  mutable r_incarnation : int;
  mutable r_fenced : bool;
  mutable r_src_alive : bool;
  mutable r_pins : string list;           (* retention pins currently held *)
  mutable r_time : float;                 (* simulated replication seconds *)
  r_stats : Cstats.delta;
  mutable r_events : event list;          (* newest first *)
  r_journal : Journal.t option;           (* durable fleet journal (HPMJ) *)
  mutable r_j_shipped : int;              (* ship counter at last journal entry *)
  mutable r_j_reused : int;               (* reuse counter at last journal entry *)
}

let events t = List.rev t.r_events
let epoch t = t.r_epoch
let time_s t = t.r_time
let stats t = t.r_stats
let source_alive t = t.r_src_alive
let incarnation t = t.r_incarnation
let standbys t = t.r_standbys

(** Swap in a new deterministic fault plan mid-session (tests drive the
    matrix with this). *)
let set_faults t rf = t.r_faults <- rf

let find_standby t name =
  match List.find_opt (fun sb -> sb.sb_name = name) t.r_standbys with
  | Some sb -> sb
  | None -> Store.err "replica: no standby named %s" name

(** Epochs a subscriber trails the newest committed epoch. *)
let lag t sb = t.r_epoch - sb.sb_epoch

(** A blank subscriber holding no state — the fuzz harness drives these
    directly through {!standby_apply}. *)
let fresh_standby ~arch name =
  {
    sb_name = name;
    sb_arch = arch;
    sb_chunks = Hashtbl.create 64;
    sb_seen = Hashtbl.create 16;
    sb_manifest = None;
    sb_epoch = 0;
    sb_state = Sub_live;
    sb_outbox = [];
    sb_outbox_bytes = 0;
    sb_held = None;
    sb_applied = 0;
    sb_dups = 0;
    sb_resyncs = 0;
    sb_hb_misses = 0;
    sb_hb_seq = 0;
  }

let create ?(config = default_config) ?faults ?journal ~(channel : Netsim.t)
    ~(store : Store.t) ~(proc : string)
    ~(standbys : (string * Hpm_arch.Arch.t) list) (m : Migration.migratable)
    (src : Interp.t) : t =
  if config.epoch_polls < 1 then invalid_arg "Replica.create: epoch_polls must be >= 1";
  if config.max_lag < 1 then invalid_arg "Replica.create: max_lag must be >= 1";
  if config.outbox_limit < 0 then invalid_arg "Replica.create: negative outbox_limit";
  if config.miss_limit < 1 then invalid_arg "Replica.create: miss_limit must be >= 1";
  if standbys = [] then invalid_arg "Replica.create: at least one standby required";
  let faults = match faults with Some _ as f -> f | None -> channel.Netsim.rep_faults in
  {
    r_config = config;
    r_channel = channel;
    r_store = store;
    r_proc = proc;
    r_m = m;
    r_src = src;
    r_cache = Snapshot.new_cache ();
    r_chunks = Hashtbl.create 256;
    r_standbys = List.map (fun (name, arch) -> fresh_standby ~arch name) standbys;
    r_faults = faults;
    r_epoch = 0;
    r_manifest = None;
    r_output = Buffer.create 256;
    r_incarnation = 1;
    r_fenced = false;
    r_src_alive = true;
    r_pins = [];
    r_time = 0.0;
    r_stats = Cstats.delta_zero ();
    r_events = [];
    r_journal = journal;
    r_j_shipped = 0;
    r_j_reused = 0;
  }

(* Durable projection of the in-memory event stream: the subset of
   events an operator replays after the process is gone goes to the
   HPMJ journal (when one was attached).  Chatter that only matters to
   a live debugging session — dups, gaps, partitions, heartbeat
   misses — stays in-memory only. *)
let journalize t e =
  match t.r_journal with
  | None -> ()
  | Some j ->
      let ts = Hpm_obs.Obs.now () +. t.r_time in
      let entry = Journal.entry ~ts ~proc:t.r_proc in
      let je =
        match e with
        | Ev_store { es_epoch; es_bytes } ->
            (* the replica's Cstats counters are cumulative; the journal
               records what each epoch itself shipped/reused *)
            let shipped = t.r_stats.Cstats.d_chunks_shipped - t.r_j_shipped in
            let reused = t.r_stats.Cstats.d_chunks_reused - t.r_j_reused in
            t.r_j_shipped <- t.r_stats.Cstats.d_chunks_shipped;
            t.r_j_reused <- t.r_stats.Cstats.d_chunks_reused;
            Some (entry ~ev:Journal.Checkpointed ~epoch:es_epoch
                    ~delta_bytes:es_bytes ~chunks_shipped:shipped
                    ~chunks_reused:reused ())
        | Ev_resync { er_epoch; er_sub; er_bytes } ->
            Some (entry ~ev:Journal.Resynced ~node:er_sub ~epoch:er_epoch
                    ~stream_bytes:er_bytes ())
        | Ev_standby_lost { el_epoch; el_sub } ->
            Some (entry ~ev:Journal.Standby_lost ~node:el_sub
                    ~epoch:el_epoch ())
        | Ev_promoted { ev_sub; ev_from; ev_epoch; ev_catchup } ->
            Some (entry ~ev:Journal.Promoted ~dst:ev_sub ~epoch:ev_epoch
                    ~incarnation:t.r_incarnation
                    ~delta_bytes:ev_catchup
                    ~note:(Printf.sprintf "from epoch %d" ev_from) ())
        | Ev_source_crash { ek_phase; ek_epoch } ->
            Some (entry ~ev:Journal.Failed ~epoch:ek_epoch
                    ~note:(Printf.sprintf "source crashed (%s)"
                             (Netsim.rep_phase_name ek_phase)) ())
        | Ev_delta _ | Ev_dup _ | Ev_gap _ | Ev_partition _ | Ev_degraded _
        | Ev_hb_miss _ | Ev_standby_crash _ | Ev_fenced _ ->
            None
      in
      match je with None -> () | Some je -> Journal.append j je

let record t e =
  t.r_events <- e :: t.r_events;
  journalize t e

(* ------------------------------------------------------------------ *)
(* Fault plan helpers (deterministic, consumed when they fire)         *)
(* ------------------------------------------------------------------ *)

let fault_hit t sub epoch get set =
  match t.r_faults with
  | None -> false
  | Some rf ->
      if List.mem (sub, epoch) (get rf) then (
        set rf (List.filter (fun x -> x <> (sub, epoch)) (get rf));
        true)
      else false

let partitioned t sub epoch =
  match t.r_faults with
  | None -> false
  | Some rf ->
      List.exists
        (fun (s, e0, n) -> s = sub && epoch >= e0 && epoch < e0 + n)
        rf.Netsim.rp_partition

let crash_source_now t phase epoch =
  match t.r_faults with
  | None -> false
  | Some rf -> (
      match rf.Netsim.rp_crash_source_at with
      | Some (p, e) when p = phase && e = epoch ->
          rf.Netsim.rp_crash_source_at <- None;
          true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Standby-side application (idempotent, base-checked)                  *)
(* ------------------------------------------------------------------ *)

(** Apply one delivered v3 delta to [sb]'s volatile state.  Pure
    standby-side logic (also driven directly by the fuzz tests): a delta
    whose manifest epoch is not ahead of the standby's, or whose base is
    a manifest the standby already advanced past, is a no-op duplicate;
    a delta against a base the standby never held demands a resync.
    @raise Store.Corrupt on a damaged wire *)
let standby_apply (sb : standby) (wire : string) : apply_result =
  let dup () =
    sb.sb_dups <- sb.sb_dups + 1;
    if Obs.metrics_on () then
      Obs.inc "hpm_replica_dup_deltas_total" [ ("sub", sb.sb_name) ];
    Duplicate
  in
  match Store.parse_delta ?base:sb.sb_manifest wire with
  | d ->
      let mf = d.Store.d_manifest in
      if mf.Store.mf_epoch <= sb.sb_epoch then dup ()
      else (
        List.iter
          (fun (h, payload) -> Hashtbl.replace sb.sb_chunks h payload)
          d.Store.d_chunks;
        (match
           List.find_opt
             (fun h -> not (Hashtbl.mem sb.sb_chunks h))
             (Store.manifest_hashes mf)
         with
        | Some h ->
            Store.corrupt "standby %s: delta leaves chunk %s unmaterializable"
              sb.sb_name (Store.hash_hex h)
        | None -> ());
        sb.sb_manifest <- Some mf;
        sb.sb_epoch <- mf.Store.mf_epoch;
        Hashtbl.replace sb.sb_seen (Store.hash_hex (Store.manifest_hash mf))
          mf.Store.mf_epoch;
        sb.sb_applied <- sb.sb_applied + 1;
        Applied mf.Store.mf_epoch)
  | exception Store.Base_mismatch (_, got) ->
      if Hashtbl.mem sb.sb_seen got then dup ()
      else Resync_required { rr_have = sb.sb_epoch; rr_base = got }

(** The standby's state as a byte-exact v2 stream (what promotion would
    resume from).  @raise Store.Error when it holds no manifest yet *)
let standby_stream t (sb : standby) : string =
  match sb.sb_manifest with
  | None -> Store.err "standby %s holds no committed state" sb.sb_name
  | Some mf ->
      Snapshot.materialize ~ti:t.r_m.Migration.ti
        ~lookup:(fun h ->
          match Hashtbl.find_opt sb.sb_chunks h with
          | Some p -> p
          | None -> Store.err "standby %s lost chunk %s" sb.sb_name (Store.hash_hex h))
        mf

(* ------------------------------------------------------------------ *)
(* Source-side shipping                                                 *)
(* ------------------------------------------------------------------ *)

let lookup_src t h =
  match Hashtbl.find_opt t.r_chunks h with
  | Some payload -> payload
  | None -> Store.err "replica lost chunk %s" (Store.hash_hex h)

let tx t bytes =
  let s = Netsim.tx_time t.r_channel bytes in
  t.r_channel.Netsim.bytes_sent <- t.r_channel.Netsim.bytes_sent + bytes;
  t.r_channel.Netsim.messages <- t.r_channel.Netsim.messages + 1;
  t.r_time <- t.r_time +. s;
  s

let publish_lag t sb =
  if Obs.metrics_on () then begin
    let ls = [ ("proc", t.r_proc); ("sub", sb.sb_name) ] in
    Obs.set_gauge "hpm_replica_lag_epochs" ls (float_of_int (lag t sb));
    Obs.set_gauge "hpm_replica_bytes_in_flight" ls
      (float_of_int sb.sb_outbox_bytes)
  end

(* Serve a full resync: the newest committed manifest as a base-less
   delta, encoded from the source's chunk union. *)
let serve_resync t sb epoch =
  match t.r_manifest with
  | None -> ()
  | Some mf ->
      let wire = Store.encode_delta ~lookup:(lookup_src t) mf in
      let ship_s = tx t (String.length wire) in
      if Obs.metrics_on () then begin
        Obs.inc "hpm_replica_deltas_total" [ ("kind", "resync") ];
        Obs.inc "hpm_replica_delta_bytes_total" [] ~by:(float_of_int (String.length wire));
        Obs.observe "hpm_replica_ship_seconds" [ ("sub", sb.sb_name) ] ship_s
      end;
      (match standby_apply sb wire with
      | Applied _ | Duplicate -> ()
      | Resync_required _ ->
          Store.err "standby %s rejected a full resync" sb.sb_name);
      sb.sb_resyncs <- sb.sb_resyncs + 1;
      record t (Ev_resync { er_epoch = epoch; er_sub = sb.sb_name;
                            er_bytes = String.length wire })

(* Deliver one delta wire to a standby, honouring the fault plan.
   Returns [true] when the standby ends the delivery needing a resync
   (which is served immediately). *)
let deliver t sb ~epoch ~kind (wire : string) =
  let ship_s = tx t (String.length wire) in
  if Obs.metrics_on () then begin
    Obs.inc "hpm_replica_deltas_total"
      [ ("kind", match kind with `Full -> "full" | `Delta -> "incr") ];
    Obs.inc "hpm_replica_delta_bytes_total" [] ~by:(float_of_int (String.length wire));
    Obs.observe "hpm_replica_ship_seconds" [ ("sub", sb.sb_name) ] ship_s
  end;
  if Obs.tracing () then
    Obs.instant ~ts:(Obs.now () +. t.r_time) ~cat:"replica"
      ~args:[ ("sub", Obs.Trace.S sb.sb_name); ("epoch", Obs.Trace.I epoch);
              ("bytes", Obs.Trace.I (String.length wire)) ]
      "replica.ship";
  record t (Ev_delta { ed_epoch = epoch; ed_sub = sb.sb_name; ed_kind = kind;
                       ed_bytes = String.length wire });
  if fault_hit t sb.sb_name epoch
       (fun rf -> rf.Netsim.rp_crash_apply)
       (fun rf l -> rf.Netsim.rp_crash_apply <- l)
  then begin
    (* crash-restart mid-apply: volatile standby memory is wiped; no
       manifest was committed, so the next delivery finds a base the
       restarted standby never held and triggers a full resync *)
    Hashtbl.reset sb.sb_chunks;
    Hashtbl.reset sb.sb_seen;
    sb.sb_manifest <- None;
    sb.sb_epoch <- 0;
    record t (Ev_standby_crash { ec_epoch = epoch; ec_sub = sb.sb_name })
  end
  else
    let deliveries =
      if fault_hit t sb.sb_name epoch
           (fun rf -> rf.Netsim.rp_dup)
           (fun rf l -> rf.Netsim.rp_dup <- l)
      then [ wire; wire ]
      else [ wire ]
    in
    List.iter
      (fun w ->
        match standby_apply sb w with
        | Applied _ -> ()
        | Duplicate -> record t (Ev_dup { eu_epoch = epoch; eu_sub = sb.sb_name })
        | Resync_required { rr_have; _ } ->
            record t (Ev_gap { eg_epoch = epoch; eg_sub = sb.sb_name;
                               eg_have = rr_have });
            serve_resync t sb epoch)
      deliveries

(* Ship [wire] (the epoch's delta) to [sb], going through the outbox /
   partition / reorder machinery. *)
let ship t sb ~epoch (wire : string) =
  match sb.sb_state with
  | Sub_degraded | Sub_lost -> ()  (* store-only: nothing crosses the wire *)
  | Sub_live ->
      if partitioned t sb.sb_name epoch then begin
        sb.sb_outbox <- sb.sb_outbox @ [ (epoch, wire) ];
        sb.sb_outbox_bytes <- sb.sb_outbox_bytes + String.length wire;
        record t (Ev_partition { ep_epoch = epoch; ep_sub = sb.sb_name;
                                 ep_queued = List.length sb.sb_outbox });
        if List.length sb.sb_outbox > t.r_config.outbox_limit
           || lag t sb > t.r_config.max_lag
        then begin
          (* backpressure: stop buffering for a subscriber this far
             behind; it degrades to store-only shipping *)
          sb.sb_outbox <- [];
          sb.sb_outbox_bytes <- 0;
          sb.sb_state <- Sub_degraded;
          record t (Ev_degraded { ed2_epoch = epoch; ed2_sub = sb.sb_name })
        end;
        publish_lag t sb
      end
      else begin
        (* partition healed: flush the outbox in order first *)
        if sb.sb_outbox <> [] then begin
          List.iter (fun (e, w) -> deliver t sb ~epoch:e ~kind:`Delta w)
            sb.sb_outbox;
          sb.sb_outbox <- [];
          sb.sb_outbox_bytes <- 0
        end;
        (if fault_hit t sb.sb_name epoch
              (fun rf -> rf.Netsim.rp_drop)
              (fun rf l -> rf.Netsim.rp_drop <- l)
         then
           (* lost in flight: the source paid the transfer, the standby
              saw nothing; the gap surfaces at the next delivery *)
           ignore (tx t (String.length wire) : float)
         else if
           fault_hit t sb.sb_name epoch
             (fun rf -> rf.Netsim.rp_reorder)
             (fun rf l -> rf.Netsim.rp_reorder <- l)
         then sb.sb_held <- Some (epoch, wire)
         else begin
           deliver t sb ~epoch ~kind:(if epoch = 1 then `Full else `Delta) wire;
           match sb.sb_held with
           | Some (e, w) ->
               sb.sb_held <- None;
               deliver t sb ~epoch:e ~kind:`Delta w
           | None -> ()
         end);
        publish_lag t sb
      end

(* One heartbeat round: every live subscriber replies with a validated
   liveness frame; a partition or an injected loss counts as a miss, and
   [miss_limit] consecutive misses declare the standby lost. *)
let heartbeat_round t epoch =
  List.iter
    (fun sb ->
      match sb.sb_state with
      | Sub_lost -> ()
      | Sub_degraded | Sub_live ->
          let lost_reply =
            partitioned t sb.sb_name epoch
            || fault_hit t sb.sb_name epoch
                 (fun rf -> rf.Netsim.rp_lose_heartbeat)
                 (fun rf l -> rf.Netsim.rp_lose_heartbeat <- l)
          in
          ignore (tx t Transport.heartbeat_bytes : float);
          if lost_reply then begin
            sb.sb_hb_misses <- sb.sb_hb_misses + 1;
            if Obs.metrics_on () then
              Obs.inc "hpm_replica_heartbeat_misses_total" [ ("sub", sb.sb_name) ];
            record t (Ev_hb_miss { eh_epoch = epoch; eh_sub = sb.sb_name;
                                   eh_misses = sb.sb_hb_misses });
            if sb.sb_hb_misses >= t.r_config.miss_limit then begin
              sb.sb_state <- Sub_lost;
              record t (Ev_standby_lost { el_epoch = epoch; el_sub = sb.sb_name })
            end
          end
          else begin
            sb.sb_hb_seq <- sb.sb_hb_seq + 1;
            let hb = Transport.encode_heartbeat ~seq:sb.sb_hb_seq ~epoch:sb.sb_epoch in
            (match Transport.decode_heartbeat hb with
            | Ok _ -> ()
            | Error m -> Store.err "heartbeat of %s dead on arrival: %s" sb.sb_name m);
            sb.sb_hb_misses <- 0
          end)
    t.r_standbys

(* Retention pinning: as long as a live subscription may still need them
   (resync bases, catch-up encoding), the chunks of the newest manifest
   and of every standby's current base stay pinned, so a concurrent
   [Store.retain]+[Store.gc] cannot reclaim them from under the
   subscription. *)
let refresh_pins t =
  let fresh =
    List.sort_uniq compare
      (List.concat_map
         (fun mf -> Store.manifest_hashes mf)
         (List.filter_map (fun x -> x)
            (t.r_manifest :: List.map (fun sb -> sb.sb_manifest) t.r_standbys)))
  in
  Store.pin t.r_store fresh;
  Store.unpin t.r_store t.r_pins;
  t.r_pins <- fresh

(* ------------------------------------------------------------------ *)
(* The stream loop                                                      *)
(* ------------------------------------------------------------------ *)

type step =
  | Streamed of int        (** this epoch was committed and shipped *)
  | Source_finished        (** the program completed; the stream is over *)
  | Source_crashed of Netsim.rep_phase
      (** the source died (injected); promote a standby *)

exception Fenced of int
(** Raised by source-side operations after a promotion fenced this
    incarnation (the argument is the current incarnation number). *)

let check_fence t = if t.r_fenced then raise (Fenced t.r_incarnation)

(** Advance the source by [epoch_polls] poll events and ship one stream
    epoch: snapshot dirty blocks, commit the delta to the store (the
    durable point — output is released here), then ship it to every live
    subscriber and run a heartbeat round.
    @raise Fenced after a promotion fenced this incarnation *)
let stream_epoch t : step =
  check_fence t;
  if not t.r_src_alive then Store.err "replica source is down";
  let epoch = t.r_epoch + 1 in
  if crash_source_now t Netsim.Rp_stream epoch then begin
    t.r_src_alive <- false;
    record t (Ev_source_crash { ek_phase = Netsim.Rp_stream; ek_epoch = epoch });
    Source_crashed Netsim.Rp_stream
  end
  else begin
    Interp.request_migration_after t.r_src (t.r_config.epoch_polls - 1);
    match Interp.run t.r_src with
    | Interp.RDone _ -> Source_finished
    | Interp.RFuel -> Store.err "replica source ran out of fuel"
    | Interp.RPolled _ ->
        let ts0 = Obs.now () +. t.r_time in
        if Obs.tracing () then
          Obs.span_b ~ts:ts0 ~cat:"replica"
            ~args:[ ("epoch", Obs.Trace.I epoch); ("proc", Obs.Trace.S t.r_proc) ]
            "replica.epoch";
        let base = t.r_manifest in
        let mf, chunks, stats =
          Snapshot.collect ~epoch ~proc:t.r_proc ~cache:t.r_cache t.r_src
            t.r_m.Migration.ti
        in
        Hashtbl.iter (Hashtbl.replace t.r_chunks) chunks;
        let wire = Store.encode_delta ?base ~stats ~lookup:(lookup_src t) mf in
        Precopy.fold_stats t.r_stats stats;
        (* durable first: the store commit is the release point for both
           the epoch and its output *)
        ignore (Store.apply t.r_store ?expect_base:base wire : Store.manifest);
        Buffer.add_string t.r_output (Interp.output t.r_src);
        Buffer.clear t.r_src.Interp.out;
        t.r_manifest <- Some mf;
        t.r_epoch <- epoch;
        record t (Ev_store { es_epoch = epoch; es_bytes = String.length wire });
        List.iter (fun sb -> ship t sb ~epoch wire) t.r_standbys;
        heartbeat_round t epoch;
        refresh_pins t;
        if Obs.tracing () then
          Obs.span_e ~ts:(Obs.now () +. t.r_time)
            ~args:[ ("wire_bytes", Obs.Trace.I (String.length wire)) ]
            "replica.epoch";
        Streamed epoch
  end

(** Stream up to [epochs] epochs; stops early on completion or crash. *)
let run t ~epochs : step =
  let rec go n last =
    if n = 0 then last
    else
      match stream_epoch t with
      | Streamed _ as s -> go (n - 1) s
      | s -> s
  in
  if epochs < 1 then invalid_arg "Replica.run: epochs must be >= 1";
  go epochs (Streamed t.r_epoch)

(** Exactly-once output view: everything released at durable epochs plus
    whatever the live source has produced since. *)
let output t =
  Buffer.contents t.r_output
  ^ (if t.r_src_alive then Interp.output t.r_src else "")

(** Output released at durable epochs only (what survives a source
    crash). *)
let released_output t = Buffer.contents t.r_output

(* ------------------------------------------------------------------ *)
(* Promotion (failover) and fencing                                     *)
(* ------------------------------------------------------------------ *)

type promotion = {
  pm_sub : string;        (** the standby that became primary *)
  pm_from : int;          (** its own epoch before catch-up *)
  pm_epoch : int;         (** the epoch it resumed at (store newest) *)
  pm_catchup : int;       (** store deltas applied to reach it *)
  pm_incarnation : int;   (** the new incarnation number *)
  pm_interp : Interp.t;   (** the promoted, runnable process *)
}

(** This incarnation's verdict when a crashed source comes back. *)
type recovery = Sole_primary | Recovery_fenced of int

let source_recover t : recovery =
  if t.r_fenced then Recovery_fenced t.r_incarnation else Sole_primary

(* Catch a standby up to the newest store epoch by encoding store-side
   deltas against the base it holds.  Returns how many deltas applied. *)
let catch_up t (sb : standby) : int =
  let applied = ref 0 in
  let epochs =
    List.filter (fun e -> e > sb.sb_epoch)
      (Store.manifest_epochs t.r_store ~proc:t.r_proc)
  in
  List.iter
    (fun e ->
      let mf = Store.load_manifest t.r_store ~proc:t.r_proc ~epoch:e in
      let wire =
        Store.encode_delta ?base:sb.sb_manifest
          ~lookup:(Store.get_chunk t.r_store) mf
      in
      ignore (tx t (String.length wire) : float);
      match standby_apply sb wire with
      | Applied _ -> incr applied
      | Duplicate -> ()
      | Resync_required _ ->
          (* the standby holds a base the store no longer derives from
             (crash-restart): restart it from the newest full state *)
          let full =
            Store.encode_delta ~lookup:(Store.get_chunk t.r_store) mf
          in
          ignore (tx t (String.length full) : float);
          (match standby_apply sb full with
          | Applied _ -> incr applied
          | Duplicate -> ()
          | Resync_required _ ->
              Store.err "standby %s rejected a full catch-up" sb.sb_name))
    epochs;
  !applied

(** Promote the freshest committed standby to primary: catch it up from
    the store to the newest durable epoch, fence the old incarnation
    (a recovering source finds {!Recovery_fenced} and must discard
    itself), and resume the process from the standby's materialized
    state under the {!Hpm_core.Handoff} epoch rule — the resumed stream
    is stamped with the manifest epoch, so an image from any other
    attempt is refused.  @raise Store.Error when no standby holds
    committed state *)
let promote ?sub t : promotion =
  let candidates = List.filter (fun sb -> sb.sb_manifest <> None) t.r_standbys in
  let sb =
    match sub with
    | Some name -> find_standby t name
    | None -> (
        match
          List.fold_left
            (fun best sb ->
              match best with
              | Some b when b.sb_epoch >= sb.sb_epoch -> best
              | _ -> Some sb)
            None candidates
        with
        | Some sb -> sb
        | None -> Store.err "replica: no committed standby to promote")
  in
  if sb.sb_manifest = None then
    Store.err "replica: standby %s holds no committed state" sb.sb_name;
  let from_epoch = sb.sb_epoch in
  let catchup = catch_up t sb in
  (* fence: the old incarnation must never run again *)
  t.r_src_alive <- false;
  t.r_fenced <- true;
  t.r_incarnation <- t.r_incarnation + 1;
  record t (Ev_fenced { ef_incarnation = t.r_incarnation });
  let stream = standby_stream t sb in
  let interp, _rstats =
    Handoff.resume_from_checkpoint t.r_m sb.sb_arch ~epoch:sb.sb_epoch stream
  in
  record t
    (Ev_promoted { ev_sub = sb.sb_name; ev_from = from_epoch;
                   ev_epoch = sb.sb_epoch; ev_catchup = catchup });
  if Obs.metrics_on () then
    Obs.inc "hpm_sched_promotions_total" [ ("proc", t.r_proc) ];
  if Obs.tracing () then
    Obs.instant ~ts:(Obs.now () +. t.r_time) ~cat:"replica"
      ~args:[ ("sub", Obs.Trace.S sb.sb_name);
              ("epoch", Obs.Trace.I sb.sb_epoch) ]
      "replica.promoted";
  {
    pm_sub = sb.sb_name;
    pm_from = from_epoch;
    pm_epoch = sb.sb_epoch;
    pm_catchup = catchup;
    pm_incarnation = t.r_incarnation;
    pm_interp = interp;
  }

(** Re-admit a degraded or lost subscriber: serve a full resync of the
    newest committed state and mark it live again. *)
let rejoin t (sb : standby) : unit =
  serve_resync t sb t.r_epoch;
  sb.sb_hb_misses <- 0;
  sb.sb_state <- Sub_live;
  publish_lag t sb

(* ------------------------------------------------------------------ *)
(* Planned migration: final delta + two-phase handoff                   *)
(* ------------------------------------------------------------------ *)

type migration_outcome =
  | Migrated of Handoff.result
      (** the final round ran under two-phase commit toward the standby *)
  | Finished_before_migration
      (** the source completed while draining; nothing migrated *)
  | Crashed_before_handoff of Netsim.rep_phase
      (** the source died collecting the final delta; promote instead *)

(** Planned migration to [sub]: the source advances one last epoch worth
    of polls, collects {e only} the blocks dirtied since the newest
    stream epoch (no stop-the-world full collect), and hands off under
    two-phase commit with the final delta as the wire payload — the
    standby already holds everything else.  On commit the final manifest
    is also committed to the store, keeping it the newest durable point.
    @raise Fenced after a promotion fenced this incarnation *)
let migrate ?faults t ~(sub : string) : migration_outcome =
  check_fence t;
  if not t.r_src_alive then Store.err "replica source is down";
  let sb = find_standby t sub in
  let final_epoch = t.r_epoch + 1 in
  Interp.request_migration_after t.r_src (t.r_config.epoch_polls - 1);
  match Interp.run t.r_src with
  | Interp.RDone _ -> Finished_before_migration
  | Interp.RFuel -> Store.err "replica source ran out of fuel"
  | Interp.RPolled _ ->
      if crash_source_now t Netsim.Rp_final_delta final_epoch then begin
        t.r_src_alive <- false;
        record t
          (Ev_source_crash { ek_phase = Netsim.Rp_final_delta;
                             ek_epoch = final_epoch });
        Crashed_before_handoff Netsim.Rp_final_delta
      end
      else begin
        (* bring the destination standby fully up to date first, so the
           final delta is coded against the base it actually holds *)
        ignore (catch_up t sb : int);
        let base = t.r_manifest in
        let mf, chunks, stats =
          Snapshot.collect ~epoch:final_epoch ~proc:t.r_proc ~cache:t.r_cache
            t.r_src t.r_m.Migration.ti
        in
        Hashtbl.iter (Hashtbl.replace t.r_chunks) chunks;
        let ckpt = Snapshot.materialize ~ti:t.r_m.Migration.ti ~lookup:(lookup_src t) mf in
        stats.Cstats.d_full_bytes <- String.length ckpt;
        let wire = Store.encode_delta ?base ~stats ~lookup:(lookup_src t) mf in
        Precopy.fold_stats t.r_stats stats;
        t.r_stats.Cstats.d_full_bytes <- String.length ckpt;
        let cstats =
          let c = Cstats.collect_zero () in
          c.Cstats.c_blocks <- Array.length mf.Store.mf_blocks;
          c.Cstats.c_data_bytes <- stats.Cstats.d_data_bytes;
          (* the wire carries only the final delta, not the full image *)
          c.Cstats.c_stream_bytes <- String.length wire;
          c.Cstats.c_frames <- List.length mf.Store.mf_frames;
          c.Cstats.c_live_vars <-
            List.fold_left (fun a l -> a + List.length l) 0 mf.Store.mf_live;
          c
        in
        let decode delivered =
          (* idempotent: a destination restarting after commit re-decodes
             its durable image; the duplicate is a no-op and the standby's
             current state materializes to the same bytes *)
          match standby_apply sb delivered with
          | Applied _ | Duplicate -> Ok (standby_stream t sb)
          | Resync_required { rr_base; _ } ->
              Error (Printf.sprintf "final delta against unknown base %s" rr_base)
          | exception Store.Corrupt m -> Error m
        in
        if Obs.on () then Obs.set_now (Obs.now () +. t.r_time);
        let hres =
          Handoff.execute ~config:t.r_config.handoff ?faults ~channel:t.r_channel
            ~epoch:final_epoch
            ~collect_fn:(fun () -> (ckpt, cstats))
            ~encode:(fun _ -> wire)
            ~decode t.r_m t.r_src sb.sb_arch
        in
        (match hres.Handoff.outcome with
        | Handoff.Committed _ ->
            (* the destination owns the process; make the final epoch the
               store's newest durable point and release its output *)
            ignore (Store.apply t.r_store ?expect_base:base wire : Store.manifest);
            Buffer.add_string t.r_output (Interp.output t.r_src);
            Buffer.clear t.r_src.Interp.out;
            t.r_manifest <- Some mf;
            t.r_epoch <- final_epoch;
            t.r_src_alive <- false;
            record t (Ev_store { es_epoch = final_epoch;
                                 es_bytes = String.length wire });
            refresh_pins t
        | _ -> ());
        Migrated hres
      end

(** Release every retention pin this replica holds (end of session). *)
let close t =
  Store.unpin t.r_store t.r_pins;
  t.r_pins <- []
