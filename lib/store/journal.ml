(* Durable fleet journal — HPMJ v1 (docs/FORMAT.md).

   Scheduler and replica events die with the process today; the journal
   makes the fleet's history a first-class on-disk artifact the query
   engine (lib/query) can treat as a table.  The format is JSONL: one
   flat JSON object per line, every record self-identifying via a
   leading {"hpmj":1, ...} version key.  Records are flat on purpose —
   a journal line is greppable, `jq`-able, and parseable without a
   recursive JSON reader.

   Durability discipline matches the store: every append rewrites the
   whole log through the same tmp+rename commit as manifests
   ([Store.write_file_atomic]), so a reader never observes a torn line
   from a crashed writer that used this module.  A *truncated* file
   (e.g. copied mid-write by an external tool) parses up to the damage
   and then raises the typed [Corrupt] error — never a crash. *)

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

type ev =
  | Spawned
  | Requested
  | Compat_rejected
  | Migrated
  | Failed
  | Recovered
  | Checkpointed
  | Requeued
  | Finished
  | Promoted
  | Standby_lost
  | Resynced

let all_evs =
  [ Spawned; Requested; Compat_rejected; Migrated; Failed; Recovered;
    Checkpointed; Requeued; Finished; Promoted; Standby_lost; Resynced ]

let ev_name = function
  | Spawned -> "spawned"
  | Requested -> "requested"
  | Compat_rejected -> "compat_rejected"
  | Migrated -> "migrated"
  | Failed -> "failed"
  | Recovered -> "recovered"
  | Checkpointed -> "checkpointed"
  | Requeued -> "requeued"
  | Finished -> "finished"
  | Promoted -> "promoted"
  | Standby_lost -> "standby_lost"
  | Resynced -> "resynced"

let ev_of_name = function
  | "spawned" -> Some Spawned
  | "requested" -> Some Requested
  | "compat_rejected" -> Some Compat_rejected
  | "migrated" -> Some Migrated
  | "failed" -> Some Failed
  | "recovered" -> Some Recovered
  | "checkpointed" -> Some Checkpointed
  | "requeued" -> Some Requeued
  | "finished" -> Some Finished
  | "promoted" -> Some Promoted
  | "standby_lost" -> Some Standby_lost
  | "resynced" -> Some Resynced
  | _ -> None

type entry = {
  j_ts : float;              (** simulated seconds at which the event fired *)
  j_ev : ev;
  j_proc : string;
  j_src : string;            (** source node/arch ("" when n/a) *)
  j_dst : string;            (** destination node/standby ("" when n/a) *)
  j_node : string;           (** hosting node for single-node events *)
  j_epoch : int;
  j_incarnation : int;       (** fencing incarnation (promotions), else 0 *)
  j_stream_bytes : int;
  j_collected_bytes : int;
  j_restored_bytes : int;
  j_retries : int;
  j_time_s : float;          (** cost of the event itself (e.g. migration) *)
  j_delta_bytes : int;
  j_chunks_shipped : int;
  j_chunks_reused : int;
  j_note : string;
}

let entry ~ts ~ev ~proc ?(src = "") ?(dst = "") ?(node = "") ?(epoch = 0)
    ?(incarnation = 0) ?(stream_bytes = 0) ?(collected_bytes = 0)
    ?(restored_bytes = 0) ?(retries = 0) ?(time_s = 0.0) ?(delta_bytes = 0)
    ?(chunks_shipped = 0) ?(chunks_reused = 0) ?(note = "") () =
  {
    j_ts = ts; j_ev = ev; j_proc = proc; j_src = src; j_dst = dst;
    j_node = node; j_epoch = epoch; j_incarnation = incarnation;
    j_stream_bytes = stream_bytes; j_collected_bytes = collected_bytes;
    j_restored_bytes = restored_bytes; j_retries = retries;
    j_time_s = time_s; j_delta_bytes = delta_bytes;
    j_chunks_shipped = chunks_shipped; j_chunks_reused = chunks_reused;
    j_note = note;
  }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let escape_json s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Same float discipline as the observability renderers: integral values
   print as integers, everything else as %.9g (valid JSON either way). *)
let fnum (f : float) : string = Hpm_obs.Obs.fmt_float f

(** One line, no trailing newline.  Key order is canonical and fixed —
    the byte-identity guarantees of the query layer build on it. *)
let encode_entry (e : entry) : string =
  Printf.sprintf
    "{\"hpmj\":1,\"ts\":%s,\"ev\":\"%s\",\"proc\":\"%s\",\"src\":\"%s\",\
     \"dst\":\"%s\",\"node\":\"%s\",\"epoch\":%d,\"incarnation\":%d,\
     \"stream_bytes\":%d,\"collected_bytes\":%d,\"restored_bytes\":%d,\
     \"retries\":%d,\"time_s\":%s,\"delta_bytes\":%d,\"chunks_shipped\":%d,\
     \"chunks_reused\":%d,\"note\":\"%s\"}"
    (fnum e.j_ts) (ev_name e.j_ev) (escape_json e.j_proc)
    (escape_json e.j_src) (escape_json e.j_dst) (escape_json e.j_node)
    e.j_epoch e.j_incarnation e.j_stream_bytes e.j_collected_bytes
    e.j_restored_bytes e.j_retries (fnum e.j_time_s) e.j_delta_bytes
    e.j_chunks_shipped e.j_chunks_reused (escape_json e.j_note)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* Records are flat objects whose values are strings or numbers, so the
   reader is a small hand-rolled scanner rather than a JSON library. *)

type scanner = { s : string; mutable pos : int }

let peek sc = if sc.pos < String.length sc.s then Some sc.s.[sc.pos] else None

let advance sc = sc.pos <- sc.pos + 1

let expect sc c =
  match peek sc with
  | Some c' when c' = c -> advance sc
  | Some c' -> corrupt "journal record: expected '%c', found '%c' at byte %d" c c' sc.pos
  | None -> corrupt "journal record: truncated (expected '%c' at byte %d)" c sc.pos

let skip_ws sc =
  let rec go () =
    match peek sc with
    | Some (' ' | '\t') -> advance sc; go ()
    | _ -> ()
  in
  go ()

let scan_string sc =
  expect sc '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek sc with
    | None -> corrupt "journal record: unterminated string"
    | Some '"' -> advance sc; Buffer.contents b
    | Some '\\' -> (
        advance sc;
        match peek sc with
        | None -> corrupt "journal record: unterminated escape"
        | Some 'n' -> advance sc; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance sc; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance sc; Buffer.add_char b '\t'; go ()
        | Some '"' -> advance sc; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance sc; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance sc; Buffer.add_char b '/'; go ()
        | Some 'u' ->
            advance sc;
            if sc.pos + 4 > String.length sc.s then
              corrupt "journal record: truncated \\u escape";
            let hex = String.sub sc.s sc.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> corrupt "journal record: bad \\u escape %S" hex
            in
            sc.pos <- sc.pos + 4;
            (* journal strings are byte-oriented: only the control plane
               (< 0x100) round-trips through \u escapes *)
            if code > 0xff then corrupt "journal record: \\u%04x out of range" code;
            Buffer.add_char b (Char.chr code);
            go ()
        | Some c -> corrupt "journal record: bad escape '\\%c'" c)
    | Some c -> advance sc; Buffer.add_char b c; go ()
  in
  go ()

let scan_number sc =
  let start = sc.pos in
  let rec go () =
    match peek sc with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> advance sc; go ()
    | _ -> ()
  in
  go ();
  if sc.pos = start then corrupt "journal record: expected number at byte %d" start;
  String.sub sc.s start (sc.pos - start)

(** Parse one journal line into its (key, raw value) fields.  Values are
    [`Str s] or [`Num raw]. *)
let scan_record (line : string) : (string * [ `Str of string | `Num of string ]) list =
  let sc = { s = line; pos = 0 } in
  skip_ws sc;
  expect sc '{';
  let fields = ref [] in
  let rec go first =
    skip_ws sc;
    match peek sc with
    | Some '}' -> advance sc
    | None -> corrupt "journal record: truncated object"
    | _ ->
        if not first then (expect sc ','; skip_ws sc);
        let k = scan_string sc in
        skip_ws sc;
        expect sc ':';
        skip_ws sc;
        let v =
          match peek sc with
          | Some '"' -> `Str (scan_string sc)
          | Some _ -> `Num (scan_number sc)
          | None -> corrupt "journal record: truncated value for %S" k
        in
        fields := (k, v) :: !fields;
        skip_ws sc;
        (match peek sc with
        | Some '}' -> advance sc
        | Some ',' -> go false
        | Some c -> corrupt "journal record: unexpected '%c' after field %S" c k
        | None -> corrupt "journal record: truncated after field %S" k)
  in
  go true;
  skip_ws sc;
  if sc.pos <> String.length line then
    corrupt "journal record: trailing bytes after object";
  List.rev !fields

let field_str fields k =
  match List.assoc_opt k fields with
  | Some (`Str s) -> s
  | Some (`Num _) -> corrupt "journal record: field %S is not a string" k
  | None -> ""

let field_int fields k =
  match List.assoc_opt k fields with
  | Some (`Num raw) -> (
      try int_of_string raw
      with _ -> corrupt "journal record: field %S is not an integer (%s)" k raw)
  | Some (`Str _) -> corrupt "journal record: field %S is not a number" k
  | None -> 0

let field_float fields k =
  match List.assoc_opt k fields with
  | Some (`Num raw) -> (
      try float_of_string raw
      with _ -> corrupt "journal record: field %S is not a number (%s)" k raw)
  | Some (`Str _) -> corrupt "journal record: field %S is not a number" k
  | None -> 0.0

let parse_entry (line : string) : entry =
  let fields = scan_record line in
  (match List.assoc_opt "hpmj" fields with
  | Some (`Num "1") -> ()
  | Some (`Num v) -> corrupt "unsupported journal version %s" v
  | Some (`Str _) | None -> corrupt "journal record: missing hpmj version key");
  let ev_s = field_str fields "ev" in
  let ev =
    match ev_of_name ev_s with
    | Some ev -> ev
    | None -> corrupt "journal record: unknown event kind %S" ev_s
  in
  {
    j_ts = field_float fields "ts";
    j_ev = ev;
    j_proc = field_str fields "proc";
    j_src = field_str fields "src";
    j_dst = field_str fields "dst";
    j_node = field_str fields "node";
    j_epoch = field_int fields "epoch";
    j_incarnation = field_int fields "incarnation";
    j_stream_bytes = field_int fields "stream_bytes";
    j_collected_bytes = field_int fields "collected_bytes";
    j_restored_bytes = field_int fields "restored_bytes";
    j_retries = field_int fields "retries";
    j_time_s = field_float fields "time_s";
    j_delta_bytes = field_int fields "delta_bytes";
    j_chunks_shipped = field_int fields "chunks_shipped";
    j_chunks_reused = field_int fields "chunks_reused";
    j_note = field_str fields "note";
  }

(** Parse a whole journal file body.  Every record must end in a
    newline; bytes after the last newline are a truncated tail —
    rejected with [Corrupt], not silently dropped, because a journal
    that lost its tail has lost events and the operator must know. *)
let parse_body (body : string) : entry list =
  let n = String.length body in
  let rec lines acc pos =
    if pos >= n then List.rev acc
    else
      match String.index_from_opt body pos '\n' with
      | None ->
          corrupt "journal: truncated tail (%d bytes after last newline)" (n - pos)
      | Some nl ->
          let line = String.sub body pos (nl - pos) in
          let acc = if line = "" then acc else parse_entry line :: acc in
          lines acc (nl + 1)
  in
  lines [] 0

(* ------------------------------------------------------------------ *)
(* The on-disk log: append-only segments                               *)
(* ------------------------------------------------------------------ *)

(* A journal at [path] is a sequence of closed segment files
   ([path.00001.seg], [path.00002.seg], ...) followed by the active file
   at [path] itself.  Appends are append-only writes to the active file
   — amortized O(1) per record, where the original implementation
   rewrote the whole log atomically on every append (O(n²) over the
   life of a long-lived fleet).  The only whole-file operations left
   are rotation (a single atomic rename of the full active file once it
   passes [segment_bytes]) and [compact] (tmp+rename, like a store
   manifest).  Readers see the same byte stream as before: the
   concatenation of the segment sequence and the active file is exactly
   the old single-file encoding, so HPMJ v1 load semantics — including
   the typed [Corrupt] on a truncated tail or unknown version — are
   unchanged. *)

let default_segment_bytes = 256 * 1024

(* Segment names carry a 5-digit sequence so lexicographic order is
   append order. *)
let segment_path path seq = Printf.sprintf "%s.%05d.seg" path seq

(* [base ^ ".NNNNN.seg"] exactly. *)
let is_segment_name base name =
  String.length name = String.length base + 10
  && String.sub name 0 (String.length base) = base
  && name.[String.length base] = '.'
  && String.for_all
       (function '0' .. '9' -> true | _ -> false)
       (String.sub name (String.length base + 1) 5)
  && String.sub name (String.length name - 4) 4 = ".seg"

(** The closed segments of the journal at [path], oldest first. *)
let segment_paths (path : string) : string list =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (is_segment_name base)
    |> List.sort compare
    |> List.map (Filename.concat dir)

type t = {
  jt_path : string;                (* the active file *)
  jt_segment_bytes : int;          (* rotation threshold *)
  mutable jt_oc : out_channel option;  (* active file, append mode *)
  mutable jt_active_bytes : int;
  mutable jt_next_seg : int;
  mutable jt_entries : entry array;    (* oldest first; jt_count live *)
  mutable jt_count : int;
  mutable jt_rotations : int;
  mutable jt_bytes_written : int;
      (* cumulative bytes this handle pushed to disk — the amortized-O(1)
         claim is [jt_bytes_written <= encoded size + one segment of
         rotation slack], pinned by a regression test *)
}

let path t = t.jt_path
let length t = t.jt_count

let entries t = Array.to_list (Array.sub t.jt_entries 0 t.jt_count)

let rotations t = t.jt_rotations
let bytes_written t = t.jt_bytes_written

(** The journal's closed segment files, oldest first. *)
let segments t = segment_paths t.jt_path

let read_file_opt path =
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s
    with Sys_error m -> corrupt "journal: cannot read %s: %s" path m

(** Load the entries of [path] — every closed segment in sequence, then
    the active file.  An absent journal is empty. *)
let load (path : string) : entry list =
  let parts = segment_paths path @ [ path ] in
  List.concat_map
    (fun p ->
      match read_file_opt p with None -> [] | Some body -> parse_body body)
    parts

let dummy_entry =
  {
    j_ts = 0.0; j_ev = Spawned; j_proc = ""; j_src = ""; j_dst = "";
    j_node = ""; j_epoch = 0; j_incarnation = 0; j_stream_bytes = 0;
    j_collected_bytes = 0; j_restored_bytes = 0; j_retries = 0;
    j_time_s = 0.0; j_delta_bytes = 0; j_chunks_shipped = 0;
    j_chunks_reused = 0; j_note = "";
  }

let push_entry t e =
  if t.jt_count = Array.length t.jt_entries then begin
    let cap = max 64 (2 * Array.length t.jt_entries) in
    let bigger = Array.make cap dummy_entry in
    Array.blit t.jt_entries 0 bigger 0 t.jt_count;
    t.jt_entries <- bigger
  end;
  t.jt_entries.(t.jt_count) <- e;
  t.jt_count <- t.jt_count + 1

let active_channel t =
  match t.jt_oc with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.jt_path
      in
      t.jt_oc <- Some oc;
      oc

(** Open (creating if needed) the journal at [path].  [segment_bytes]
    bounds the active file: an append that would push it past the
    threshold first rotates it into the next closed segment.
    @raise Corrupt when an existing file does not parse. *)
let open_journal ?(segment_bytes = default_segment_bytes) (path : string) : t =
  if segment_bytes <= 0 then
    invalid_arg "Journal.open_journal: segment_bytes must be positive";
  Store.mkdir_p (Filename.dirname path);
  let segs = segment_paths path in
  let next_seg =
    match List.rev segs with
    | [] -> 1
    | last :: _ -> (
        (* trailing ".seg" stripped, then the 5-digit sequence *)
        let stem = Filename.chop_suffix (Filename.basename last) ".seg" in
        let seq = String.sub stem (String.length stem - 5) 5 in
        try int_of_string seq + 1 with _ -> List.length segs + 1)
  in
  let t =
    {
      jt_path = path;
      jt_segment_bytes = segment_bytes;
      jt_oc = None;
      jt_active_bytes =
        (match read_file_opt path with None -> 0 | Some b -> String.length b);
      jt_next_seg = next_seg;
      jt_entries = [||];
      jt_count = 0;
      jt_rotations = 0;
      jt_bytes_written = 0;
    }
  in
  List.iter (push_entry t) (load path);
  t

(** Flush and close the active file handle.  The journal stays usable —
    the next append reopens it. *)
let close (t : t) : unit =
  match t.jt_oc with
  | None -> ()
  | Some oc ->
      t.jt_oc <- None;
      close_out oc

(* Rotate the active file into the next closed segment: one atomic
   rename of already-durable bytes, no copying. *)
let rotate (t : t) : unit =
  close t;
  Sys.rename t.jt_path (segment_path t.jt_path t.jt_next_seg);
  t.jt_next_seg <- t.jt_next_seg + 1;
  t.jt_active_bytes <- 0;
  t.jt_rotations <- t.jt_rotations + 1;
  if Hpm_obs.Obs.metrics_on () then begin
    Hpm_obs.Obs.inc "hpm_journal_rotations_total" [];
    Hpm_obs.Obs.set_gauge "hpm_journal_segments" []
      (float_of_int (t.jt_next_seg - 1))
  end

(** Append one record: an append-only write to the active segment,
    flushed before returning — amortized O(1) per entry.  A writer
    crash can leave at most a truncated final line, which the loader
    surfaces as the typed [Corrupt] (never silent data loss); committed
    segments are immutable and rotation is a single atomic rename. *)
let append (t : t) (e : entry) : unit =
  let line = encode_entry e ^ "\n" in
  if
    t.jt_active_bytes > 0
    && t.jt_active_bytes + String.length line > t.jt_segment_bytes
  then rotate t;
  let oc = active_channel t in
  output_string oc line;
  flush oc;
  t.jt_active_bytes <- t.jt_active_bytes + String.length line;
  t.jt_bytes_written <- t.jt_bytes_written + String.length line;
  push_entry t e;
  if Hpm_obs.Obs.metrics_on () then
    Hpm_obs.Obs.inc "hpm_journal_appends_total" []

(** Merge every closed segment and the active file back into a single
    file at [path] — the only remaining whole-log rewrite, through the
    same tmp+rename commit as store manifests.  Crash-safe: the rename
    lands before the old segments are deleted, and a reader that races
    a crashed compaction sees either the old segment sequence or the
    compacted file plus stale segments — [load] of the latter would
    duplicate, so segments are deleted first only after the rename. *)
let compact (t : t) : unit =
  close t;
  let segs = segments t in
  let body = Buffer.create (t.jt_count * 128) in
  Array.iteri
    (fun i e ->
      if i < t.jt_count then begin
        Buffer.add_string body (encode_entry e);
        Buffer.add_char body '\n'
      end)
    t.jt_entries;
  let bytes = Buffer.contents body in
  Store.write_file_atomic t.jt_path bytes;
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) segs;
  t.jt_active_bytes <- String.length bytes;
  t.jt_bytes_written <- t.jt_bytes_written + String.length bytes;
  if Hpm_obs.Obs.metrics_on () then
    Hpm_obs.Obs.set_gauge "hpm_journal_segments" [] 0.0
