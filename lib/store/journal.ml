(* Durable fleet journal — HPMJ v1 (docs/FORMAT.md).

   Scheduler and replica events die with the process today; the journal
   makes the fleet's history a first-class on-disk artifact the query
   engine (lib/query) can treat as a table.  The format is JSONL: one
   flat JSON object per line, every record self-identifying via a
   leading {"hpmj":1, ...} version key.  Records are flat on purpose —
   a journal line is greppable, `jq`-able, and parseable without a
   recursive JSON reader.

   Durability discipline matches the store: every append rewrites the
   whole log through the same tmp+rename commit as manifests
   ([Store.write_file_atomic]), so a reader never observes a torn line
   from a crashed writer that used this module.  A *truncated* file
   (e.g. copied mid-write by an external tool) parses up to the damage
   and then raises the typed [Corrupt] error — never a crash. *)

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

type ev =
  | Spawned
  | Requested
  | Compat_rejected
  | Migrated
  | Failed
  | Recovered
  | Checkpointed
  | Requeued
  | Finished
  | Promoted
  | Standby_lost
  | Resynced

let all_evs =
  [ Spawned; Requested; Compat_rejected; Migrated; Failed; Recovered;
    Checkpointed; Requeued; Finished; Promoted; Standby_lost; Resynced ]

let ev_name = function
  | Spawned -> "spawned"
  | Requested -> "requested"
  | Compat_rejected -> "compat_rejected"
  | Migrated -> "migrated"
  | Failed -> "failed"
  | Recovered -> "recovered"
  | Checkpointed -> "checkpointed"
  | Requeued -> "requeued"
  | Finished -> "finished"
  | Promoted -> "promoted"
  | Standby_lost -> "standby_lost"
  | Resynced -> "resynced"

let ev_of_name = function
  | "spawned" -> Some Spawned
  | "requested" -> Some Requested
  | "compat_rejected" -> Some Compat_rejected
  | "migrated" -> Some Migrated
  | "failed" -> Some Failed
  | "recovered" -> Some Recovered
  | "checkpointed" -> Some Checkpointed
  | "requeued" -> Some Requeued
  | "finished" -> Some Finished
  | "promoted" -> Some Promoted
  | "standby_lost" -> Some Standby_lost
  | "resynced" -> Some Resynced
  | _ -> None

type entry = {
  j_ts : float;              (** simulated seconds at which the event fired *)
  j_ev : ev;
  j_proc : string;
  j_src : string;            (** source node/arch ("" when n/a) *)
  j_dst : string;            (** destination node/standby ("" when n/a) *)
  j_node : string;           (** hosting node for single-node events *)
  j_epoch : int;
  j_incarnation : int;       (** fencing incarnation (promotions), else 0 *)
  j_stream_bytes : int;
  j_collected_bytes : int;
  j_restored_bytes : int;
  j_retries : int;
  j_time_s : float;          (** cost of the event itself (e.g. migration) *)
  j_delta_bytes : int;
  j_chunks_shipped : int;
  j_chunks_reused : int;
  j_note : string;
}

let entry ~ts ~ev ~proc ?(src = "") ?(dst = "") ?(node = "") ?(epoch = 0)
    ?(incarnation = 0) ?(stream_bytes = 0) ?(collected_bytes = 0)
    ?(restored_bytes = 0) ?(retries = 0) ?(time_s = 0.0) ?(delta_bytes = 0)
    ?(chunks_shipped = 0) ?(chunks_reused = 0) ?(note = "") () =
  {
    j_ts = ts; j_ev = ev; j_proc = proc; j_src = src; j_dst = dst;
    j_node = node; j_epoch = epoch; j_incarnation = incarnation;
    j_stream_bytes = stream_bytes; j_collected_bytes = collected_bytes;
    j_restored_bytes = restored_bytes; j_retries = retries;
    j_time_s = time_s; j_delta_bytes = delta_bytes;
    j_chunks_shipped = chunks_shipped; j_chunks_reused = chunks_reused;
    j_note = note;
  }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let escape_json s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Same float discipline as the observability renderers: integral values
   print as integers, everything else as %.9g (valid JSON either way). *)
let fnum (f : float) : string = Hpm_obs.Obs.fmt_float f

(** One line, no trailing newline.  Key order is canonical and fixed —
    the byte-identity guarantees of the query layer build on it. *)
let encode_entry (e : entry) : string =
  Printf.sprintf
    "{\"hpmj\":1,\"ts\":%s,\"ev\":\"%s\",\"proc\":\"%s\",\"src\":\"%s\",\
     \"dst\":\"%s\",\"node\":\"%s\",\"epoch\":%d,\"incarnation\":%d,\
     \"stream_bytes\":%d,\"collected_bytes\":%d,\"restored_bytes\":%d,\
     \"retries\":%d,\"time_s\":%s,\"delta_bytes\":%d,\"chunks_shipped\":%d,\
     \"chunks_reused\":%d,\"note\":\"%s\"}"
    (fnum e.j_ts) (ev_name e.j_ev) (escape_json e.j_proc)
    (escape_json e.j_src) (escape_json e.j_dst) (escape_json e.j_node)
    e.j_epoch e.j_incarnation e.j_stream_bytes e.j_collected_bytes
    e.j_restored_bytes e.j_retries (fnum e.j_time_s) e.j_delta_bytes
    e.j_chunks_shipped e.j_chunks_reused (escape_json e.j_note)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* Records are flat objects whose values are strings or numbers, so the
   reader is a small hand-rolled scanner rather than a JSON library. *)

type scanner = { s : string; mutable pos : int }

let peek sc = if sc.pos < String.length sc.s then Some sc.s.[sc.pos] else None

let advance sc = sc.pos <- sc.pos + 1

let expect sc c =
  match peek sc with
  | Some c' when c' = c -> advance sc
  | Some c' -> corrupt "journal record: expected '%c', found '%c' at byte %d" c c' sc.pos
  | None -> corrupt "journal record: truncated (expected '%c' at byte %d)" c sc.pos

let skip_ws sc =
  let rec go () =
    match peek sc with
    | Some (' ' | '\t') -> advance sc; go ()
    | _ -> ()
  in
  go ()

let scan_string sc =
  expect sc '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek sc with
    | None -> corrupt "journal record: unterminated string"
    | Some '"' -> advance sc; Buffer.contents b
    | Some '\\' -> (
        advance sc;
        match peek sc with
        | None -> corrupt "journal record: unterminated escape"
        | Some 'n' -> advance sc; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance sc; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance sc; Buffer.add_char b '\t'; go ()
        | Some '"' -> advance sc; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance sc; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance sc; Buffer.add_char b '/'; go ()
        | Some 'u' ->
            advance sc;
            if sc.pos + 4 > String.length sc.s then
              corrupt "journal record: truncated \\u escape";
            let hex = String.sub sc.s sc.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> corrupt "journal record: bad \\u escape %S" hex
            in
            sc.pos <- sc.pos + 4;
            (* journal strings are byte-oriented: only the control plane
               (< 0x100) round-trips through \u escapes *)
            if code > 0xff then corrupt "journal record: \\u%04x out of range" code;
            Buffer.add_char b (Char.chr code);
            go ()
        | Some c -> corrupt "journal record: bad escape '\\%c'" c)
    | Some c -> advance sc; Buffer.add_char b c; go ()
  in
  go ()

let scan_number sc =
  let start = sc.pos in
  let rec go () =
    match peek sc with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> advance sc; go ()
    | _ -> ()
  in
  go ();
  if sc.pos = start then corrupt "journal record: expected number at byte %d" start;
  String.sub sc.s start (sc.pos - start)

(** Parse one journal line into its (key, raw value) fields.  Values are
    [`Str s] or [`Num raw]. *)
let scan_record (line : string) : (string * [ `Str of string | `Num of string ]) list =
  let sc = { s = line; pos = 0 } in
  skip_ws sc;
  expect sc '{';
  let fields = ref [] in
  let rec go first =
    skip_ws sc;
    match peek sc with
    | Some '}' -> advance sc
    | None -> corrupt "journal record: truncated object"
    | _ ->
        if not first then (expect sc ','; skip_ws sc);
        let k = scan_string sc in
        skip_ws sc;
        expect sc ':';
        skip_ws sc;
        let v =
          match peek sc with
          | Some '"' -> `Str (scan_string sc)
          | Some _ -> `Num (scan_number sc)
          | None -> corrupt "journal record: truncated value for %S" k
        in
        fields := (k, v) :: !fields;
        skip_ws sc;
        (match peek sc with
        | Some '}' -> advance sc
        | Some ',' -> go false
        | Some c -> corrupt "journal record: unexpected '%c' after field %S" c k
        | None -> corrupt "journal record: truncated after field %S" k)
  in
  go true;
  skip_ws sc;
  if sc.pos <> String.length line then
    corrupt "journal record: trailing bytes after object";
  List.rev !fields

let field_str fields k =
  match List.assoc_opt k fields with
  | Some (`Str s) -> s
  | Some (`Num _) -> corrupt "journal record: field %S is not a string" k
  | None -> ""

let field_int fields k =
  match List.assoc_opt k fields with
  | Some (`Num raw) -> (
      try int_of_string raw
      with _ -> corrupt "journal record: field %S is not an integer (%s)" k raw)
  | Some (`Str _) -> corrupt "journal record: field %S is not a number" k
  | None -> 0

let field_float fields k =
  match List.assoc_opt k fields with
  | Some (`Num raw) -> (
      try float_of_string raw
      with _ -> corrupt "journal record: field %S is not a number (%s)" k raw)
  | Some (`Str _) -> corrupt "journal record: field %S is not a number" k
  | None -> 0.0

let parse_entry (line : string) : entry =
  let fields = scan_record line in
  (match List.assoc_opt "hpmj" fields with
  | Some (`Num "1") -> ()
  | Some (`Num v) -> corrupt "unsupported journal version %s" v
  | Some (`Str _) | None -> corrupt "journal record: missing hpmj version key");
  let ev_s = field_str fields "ev" in
  let ev =
    match ev_of_name ev_s with
    | Some ev -> ev
    | None -> corrupt "journal record: unknown event kind %S" ev_s
  in
  {
    j_ts = field_float fields "ts";
    j_ev = ev;
    j_proc = field_str fields "proc";
    j_src = field_str fields "src";
    j_dst = field_str fields "dst";
    j_node = field_str fields "node";
    j_epoch = field_int fields "epoch";
    j_incarnation = field_int fields "incarnation";
    j_stream_bytes = field_int fields "stream_bytes";
    j_collected_bytes = field_int fields "collected_bytes";
    j_restored_bytes = field_int fields "restored_bytes";
    j_retries = field_int fields "retries";
    j_time_s = field_float fields "time_s";
    j_delta_bytes = field_int fields "delta_bytes";
    j_chunks_shipped = field_int fields "chunks_shipped";
    j_chunks_reused = field_int fields "chunks_reused";
    j_note = field_str fields "note";
  }

(** Parse a whole journal file body.  Every record must end in a
    newline; bytes after the last newline are a truncated tail —
    rejected with [Corrupt], not silently dropped, because a journal
    that lost its tail has lost events and the operator must know. *)
let parse_body (body : string) : entry list =
  let n = String.length body in
  let rec lines acc pos =
    if pos >= n then List.rev acc
    else
      match String.index_from_opt body pos '\n' with
      | None ->
          corrupt "journal: truncated tail (%d bytes after last newline)" (n - pos)
      | Some nl ->
          let line = String.sub body pos (nl - pos) in
          let acc = if line = "" then acc else parse_entry line :: acc in
          lines acc (nl + 1)
  in
  lines [] 0

(* ------------------------------------------------------------------ *)
(* The on-disk log                                                     *)
(* ------------------------------------------------------------------ *)

type t = {
  jt_path : string;
  jt_buf : Buffer.t;              (* serialized image, kept in sync *)
  mutable jt_entries : entry list; (* newest first *)
  mutable jt_count : int;
}

let path t = t.jt_path
let length t = t.jt_count
let entries t = List.rev t.jt_entries

let read_file_opt path =
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s
    with Sys_error m -> corrupt "journal: cannot read %s: %s" path m

(** Load the entries of [path]; an absent file is an empty journal. *)
let load (path : string) : entry list =
  match read_file_opt path with None -> [] | Some body -> parse_body body

(** Open (creating if needed) the journal at [path].
    @raise Corrupt when an existing file does not parse. *)
let open_journal (path : string) : t =
  let body = match read_file_opt path with None -> "" | Some b -> b in
  let entries = parse_body body in
  let buf = Buffer.create (String.length body + 256) in
  Buffer.add_string buf body;
  {
    jt_path = path;
    jt_buf = buf;
    jt_entries = List.rev entries;
    jt_count = List.length entries;
  }

(** Append one record durably: the full log is rewritten through the
    same tmp+rename commit as store manifests, so a crash leaves either
    the old log or the new one — never a torn line. *)
let append (t : t) (e : entry) : unit =
  Buffer.add_string t.jt_buf (encode_entry e);
  Buffer.add_char t.jt_buf '\n';
  Store.mkdir_p (Filename.dirname t.jt_path);
  Store.write_file_atomic t.jt_path (Buffer.contents t.jt_buf);
  t.jt_entries <- e :: t.jt_entries;
  t.jt_count <- t.jt_count + 1;
  if Hpm_obs.Obs.metrics_on () then
    Hpm_obs.Obs.inc "hpm_journal_appends_total" []
