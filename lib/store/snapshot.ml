(** Chunked, incremental checkpoint collection — and its inverse.

    {!collect} performs {e exactly} the depth-first traversal of
    {!Hpm_core.Collect.collect} (same roots in the same order, same
    first-visit mi_id assignment, same one-past-the-end pointer handling),
    but instead of one monolithic stream it produces a {!Store.manifest}
    plus one content-addressed chunk per block.  {!materialize} replays
    the traversal from the manifest and reconstructs the monolithic v2
    stream {e byte for byte}, so the stock {!Hpm_core.Restore} consumes
    checkpoints from the store with no new restore path.

    Chunk payloads reference pointer targets by {e runtime block id}
    ({!Hpm_machine.Mem.block}'s [bid]), not by the stream's mi_id:
    mi_ids depend on traversal order, so heap churn would renumber them
    and invalidate the hash of every payload holding a pointer even when
    the pointed-to data never changed.  bids are stable for the lifetime
    of a block, so an untouched subgraph hashes identically across
    epochs; {!materialize} maps bids back to this manifest's mi_ids.

    Incrementality comes from write-generation tracking: a per-block
    counter ({!Hpm_machine.Mem.touch}) records the memory's write tick at
    the last store into each block.  A {!cache} carries the previous
    epoch's per-block hashes; a block whose generation is unchanged —
    and whose outgoing pointers resolved to the same target bids — reuses
    its hash without re-serializing or re-hashing (the paper's §4.2
    encode term drops out; the MSRLT search term remains, since the
    traversal must still walk every reachable pointer to reproduce the
    collection order). *)

open Hpm_lang
open Hpm_xdr
open Hpm_ir
open Hpm_machine
open Hpm_msr
open Hpm_core

(* ------------------------------------------------------------------ *)
(* The serialization cache                                             *)
(* ------------------------------------------------------------------ *)

type cache_entry = {
  ce_wgen : int;  (** block's write generation when the payload was built *)
  ce_hash : string;
  ce_size : int;
  ce_deps : int list;
      (** target bid of each outgoing reference, in walk order: an
          unchanged pointer can land on a {e different} block when its
          old target was freed and the address reallocated, so reuse
          also requires every pointer to resolve to the same block *)
}

type cache = {
  mutable mark : int;  (** {!Mem.write_mark} at the last collection; -1 = none *)
  entries : (int, cache_entry) Hashtbl.t;  (** runtime bid → entry *)
}

let new_cache () = { mark = -1; entries = Hashtbl.create 64 }

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

type cctx = {
  interp : Interp.t;
  ti : Ti.t;
  col : Msrlt.collect_side;
  cache : cache option;
  chunks : (string, string) Hashtbl.t;  (** hash → freshly-built payload *)
  binfos : (int, Store.binfo) Hashtbl.t;  (** mi_id → entry, filled post-order *)
  stats : Cstats.delta;
  elems_cache : (string, Layout.elems) Hashtbl.t;
  tplan_cache : (string, Tplan.t) Hashtbl.t;
  scratch : Buffer.t;
      (** reused across payload builds: [Buffer.clear] keeps the storage,
          so steady-state serialization allocates only the payload string *)
}

let elems_of ctx (ty : Ty.t) : Layout.elems =
  let key = Ty.to_string ty in
  match Hashtbl.find_opt ctx.elems_cache key with
  | Some e -> e
  | None ->
      let e = Layout.elems ctx.interp.Interp.mem.Mem.layout ty in
      Hashtbl.add ctx.elems_cache key e;
      e

let tplan_of ctx (ty : Ty.t) : Tplan.t =
  let key = Ty.to_string ty in
  match Hashtbl.find_opt ctx.tplan_cache key with
  | Some p -> p
  | None ->
      let p = Tplan.build ctx.interp.Interp.mem.Mem.layout (elems_of ctx ty) in
      Hashtbl.add ctx.tplan_cache key p;
      p

let ordinal_at ctx (block : Mem.block) (addr : int64) : int =
  let off = Int64.to_int (Int64.sub addr block.Mem.base) in
  let elems = elems_of ctx block.Mem.ty in
  if off = block.Mem.size then Layout.elem_count elems
  else
    match Layout.ordinal_of_byte elems off with
    | Some o -> o
    | None ->
        Store.corrupt "pointer 0x%Lx lands at byte %d of block #%d, not an element boundary"
          addr off block.Mem.bid

(* Address → block, with Collect.save_ptr's one-past-the-end retry. *)
let search_block ctx (addr : int64) : Mem.block =
  try Msrlt.search ctx.col addr
  with Mem.Fault m -> (
    match Msrlt.search ctx.col (Int64.sub addr 1L) with
    | b when Int64.equal addr (Int64.add b.Mem.base (Int64.of_int b.Mem.size)) -> b
    | _ -> Store.err "collection reached a bad pointer: %s" m
    | exception Mem.Fault _ -> Store.err "collection reached a bad pointer: %s" m)

(* Visit [block] first: assign its mi_id, walk its pointer elements in
   ordinal order (recursing into unvisited targets immediately, exactly
   like Collect.save_ptr), then decide whether the cached payload is
   still valid; serialize + hash only on a miss.  Returns the mi_id. *)
let rec visit_block ctx (block : Mem.block) : int =
  let id = Msrlt.register ctx.col block in
  ignore (Msrlt.note_dirty ctx.col block : bool);
  ctx.stats.Cstats.d_data_bytes <- ctx.stats.Cstats.d_data_bytes + block.Mem.size;
  let elems = elems_of ctx block.Mem.ty in
  let n = Layout.elem_count elems in
  let mem = ctx.interp.Interp.mem in
  (* pointer datums by ordinal, and outgoing deps in walk order *)
  let datums = Array.make n Store.Dnull in
  let deps = ref [] in
  for ord = 0 to n - 1 do
    let kind = Layout.kind_of_ordinal elems ord in
    match kind with
    | Ty.KPtr _ | Ty.KFunc _ -> (
        let off = Layout.byte_of_ordinal elems ord in
        match Mem.load_scalar mem block off kind with
        | Mem.Vptr 0L -> datums.(ord) <- Store.Dnull
        | Mem.Vptr addr when Interp.is_func_addr ctx.interp.Interp.prog addr ->
            datums.(ord) <-
              Store.Dfunc (Int64.to_int (Int64.div (Int64.sub addr Interp.text_base) 64L))
        | Mem.Vptr addr ->
            let target = search_block ctx addr in
            let tord = ordinal_at ctx target addr in
            (match Msrlt.lookup ctx.col target with
            | Some _ -> ()
            | None -> ignore (visit_block ctx target : int));
            deps := target.Mem.bid :: !deps;
            datums.(ord) <- Store.Dref (target.Mem.bid, tord)
        | v -> Store.err "pointer element holds %s" (Fmt.str "%a" Mem.pp_value v))
    | _ -> ()
  done;
  let deps = List.rev !deps in
  let cached =
    match ctx.cache with
    | None -> None
    | Some c -> (
        match Hashtbl.find_opt c.entries block.Mem.bid with
        | Some ce when ce.ce_wgen = block.Mem.wgen && ce.ce_deps = deps -> Some ce
        | _ -> None)
  in
  let hash, size =
    match cached with
    | Some ce ->
        ctx.stats.Cstats.d_cache_hits <- ctx.stats.Cstats.d_cache_hits + 1;
        (ce.ce_hash, ce.ce_size)
    | None ->
        (* the serialize phase never recurses (the traversal above already
           visited every target), so one shared scratch buffer is safe *)
        let b = ctx.scratch in
        Buffer.clear b;
        let plan = tplan_of ctx block.Mem.ty in
        Array.iter
          (fun seg ->
            match seg with
            | Tplan.Prims p -> Batch.encode p b block.Mem.bytes
            | Tplan.Ptr { ord; _ } -> (
                match datums.(ord) with
                | Store.Dnull -> Xdr.put_u8 b Stream.tag_null
                | Store.Dref (bid, tord) ->
                    Xdr.put_u8 b Stream.tag_ref;
                    Xdr.put_int_as_i32 b bid;
                    Xdr.put_int_as_i32 b tord
                | Store.Dfunc i ->
                    Xdr.put_u8 b Stream.tag_func;
                    Xdr.put_int_as_i32 b i))
          plan.Tplan.segs;
        let payload = Buffer.contents b in
        let hash = Digest.string payload in
        Hashtbl.replace ctx.chunks hash payload;
        (match ctx.cache with
        | Some c ->
            Hashtbl.replace c.entries block.Mem.bid
              {
                ce_wgen = block.Mem.wgen;
                ce_hash = hash;
                ce_size = String.length payload;
                ce_deps = deps;
              }
        | None -> ());
        (hash, String.length payload)
  in
  let tid, count = Ti.encode_block_ty ctx.ti block.Mem.ty in
  Hashtbl.replace ctx.binfos id
    {
      Store.b_ident = block.Mem.ident;
      b_bid = block.Mem.bid;
      b_tid = tid;
      b_count = count;
      b_size = size;
      b_hash = hash;
    };
  id

(* A collection root: Collect.save_variable without the stream. *)
let root_datum ctx (block : Mem.block) : Store.datum =
  (match Msrlt.lookup ctx.col block with
  | Some _ -> ()
  | None -> ignore (visit_block ctx block : int));
  Store.Dref (block.Mem.bid, 0)

(** Collect the suspended process [interp] into a manifest plus a table
    of freshly-serialized chunk payloads (cache-reused blocks appear in
    the manifest but not in the table).  With [cache], only blocks whose
    write generation or outgoing ids changed are re-encoded; the cache's
    mark is advanced to the current {!Mem.write_mark}.
    @raise Collect.Error unless suspended at a poll-point *)
let collect ?(epoch = 0) ?(proc = "proc") ?cache (interp : Interp.t) (ti : Ti.t) :
    Store.manifest * (string, string) Hashtbl.t * Cstats.delta =
  let since = match cache with Some c -> c.mark | None -> -1 in
  let ctx =
    {
      interp;
      ti;
      col = Msrlt.collector ~since interp.Interp.mem;
      cache;
      chunks = Hashtbl.create 64;
      binfos = Hashtbl.create 64;
      stats = Cstats.delta_zero ();
      elems_cache = Hashtbl.create 32;
      tplan_cache = Hashtbl.create 32;
      scratch = Buffer.create 4096;
    }
  in
  let poll_id = Collect.suspended_poll_id interp in
  let frames = Collect.live_frames interp in
  let mf_frames =
    List.map
      (fun ((fr : Interp.frame), _) -> (fr.Interp.func.Ir.name, fr.Interp.block, fr.Interp.index))
      frames
  in
  let mf_live =
    List.map
      (fun ((fr : Interp.frame), live) ->
        List.map
          (fun name ->
            match Hashtbl.find_opt fr.Interp.locals name with
            | Some block -> (name, root_datum ctx block)
            | None ->
                Store.err "live variable %s has no block in frame %s" name
                  fr.Interp.func.Ir.name)
          live)
      frames
  in
  let mf_globals =
    List.map
      (fun (name, _, _) ->
        match Hashtbl.find_opt interp.Interp.globals name with
        | Some block -> (name, root_datum ctx block)
        | None -> Store.err "global %s has no block" name)
      interp.Interp.prog.Ir.globals
  in
  let mf_blocks =
    Array.init ctx.col.Msrlt.next_id (fun id ->
        match Hashtbl.find_opt ctx.binfos id with
        | Some bi -> bi
        | None -> Store.err "collection left mi_id %d undefined" id)
  in
  ctx.stats.Cstats.d_blocks_scanned <- ctx.col.Msrlt.scanned;
  ctx.stats.Cstats.d_blocks_dirty <- ctx.col.Msrlt.dirty;
  (match cache with Some c -> c.mark <- Mem.write_mark interp.Interp.mem | None -> ());
  let mf =
    {
      Store.mf_proc = proc;
      mf_epoch = epoch;
      mf_src_arch = interp.Interp.arch.Hpm_arch.Arch.name;
      mf_prog_hash = Stream.prog_hash interp.Interp.prog;
      mf_rng_state = Rng.get_state interp.Interp.rng;
      mf_poll_id = poll_id;
      mf_frames;
      mf_live;
      mf_globals;
      mf_blocks;
    }
  in
  (mf, ctx.chunks, ctx.stats)

(* ------------------------------------------------------------------ *)
(* Materialization                                                     *)
(* ------------------------------------------------------------------ *)

(** Reconstruct the monolithic v2 migration stream from a manifest,
    byte-identical to what {!Hpm_core.Collect.collect} would have
    produced at the same suspension: replay the roots in order, emitting
    each block's definition inline at its first visit and (mi_id,
    ordinal) references thereafter.  [lookup] resolves a chunk hash to
    its payload (typically {!Store.get_chunk}).
    @raise Store.Corrupt on damaged chunks or a self-inconsistent manifest *)
let materialize ~(ti : Ti.t) ~(lookup : string -> string) (mf : Store.manifest) : string =
  (* Chunk payloads use canonical widths, so any layout yields the same
     element-kind sequence; use a fixed one rather than the source's. *)
  let layout = Layout.make Hpm_arch.Arch.ultra5 ti.Ti.tenv in
  let elems_cache = Hashtbl.create 32 in
  let elems_of ty =
    let key = Ty.to_string ty in
    match Hashtbl.find_opt elems_cache key with
    | Some e -> e
    | None ->
        let e = Layout.elems layout ty in
        Hashtbl.add elems_cache key e;
        e
  in
  let nblocks = Array.length mf.Store.mf_blocks in
  let emitted = Array.make nblocks false in
  let bid2mi = Hashtbl.create (max 16 nblocks) in
  Array.iteri (fun i (bi : Store.binfo) -> Hashtbl.replace bid2mi bi.Store.b_bid i) mf.Store.mf_blocks;
  let buf = Buffer.create 4096 in
  let rec emit_datum (d : Store.datum) : unit =
    match d with
    | Store.Dnull -> Xdr.put_u8 buf Stream.tag_null
    | Store.Dfunc i ->
        Xdr.put_u8 buf Stream.tag_func;
        Xdr.put_int_as_i32 buf i
    | Store.Dref (bid, ord) ->
        let id =
          match Hashtbl.find_opt bid2mi bid with
          | Some i -> i
          | None -> Store.corrupt "datum references unknown bid %d" bid
        in
        if emitted.(id) then (
          Xdr.put_u8 buf Stream.tag_ref;
          Xdr.put_int_as_i32 buf id;
          Xdr.put_int_as_i32 buf ord)
        else (
          Xdr.put_u8 buf Stream.tag_block;
          emit_block id;
          Xdr.put_int_as_i32 buf ord)
  and emit_block (id : int) : unit =
    emitted.(id) <- true;
    let bi = mf.Store.mf_blocks.(id) in
    let payload = lookup bi.Store.b_hash in
    if String.length payload <> bi.Store.b_size then
      Store.corrupt "chunk %s has %d bytes, manifest says %d"
        (Store.hash_hex bi.Store.b_hash) (String.length payload) bi.Store.b_size;
    if Digest.string payload <> bi.Store.b_hash then
      Store.corrupt "chunk %s content does not match its hash" (Store.hash_hex bi.Store.b_hash);
    Xdr.put_int_as_i32 buf id;
    Stream.put_ident buf bi.Store.b_ident;
    Xdr.put_int_as_i32 buf bi.Store.b_tid;
    Xdr.put_int_as_i32 buf bi.Store.b_count;
    let ty =
      try Ti.decode_block_ty ti (bi.Store.b_tid, bi.Store.b_count)
      with Invalid_argument m -> Store.corrupt "block %d has a bad type id: %s" id m
    in
    let elems = elems_of ty in
    let n = Layout.elem_count elems in
    let r = Xdr.reader_of_string payload in
    (try
       for ord = 0 to n - 1 do
         match Layout.kind_of_ordinal elems ord with
         | Ty.KPtr _ | Ty.KFunc _ -> (
             match Xdr.get_u8 r with
             | t when t = Stream.tag_null -> Xdr.put_u8 buf Stream.tag_null
             | t when t = Stream.tag_func ->
                 Xdr.put_u8 buf Stream.tag_func;
                 Xdr.put_int_as_i32 buf (Xdr.get_int_of_i32 r)
             | t when t = Stream.tag_ref ->
                 let tbid = Xdr.get_int_of_i32 r in
                 let tord = Xdr.get_int_of_i32 r in
                 emit_datum (Store.Dref (tbid, tord))
             | t -> Store.corrupt "chunk of block %d has bad datum tag %d" id t)
         | k ->
             let w = Stream.canonical_width k in
             if Xdr.remaining r < w then
               Store.corrupt "chunk of block %d is short at ordinal %d" id ord;
             Buffer.add_subbytes buf r.Xdr.data r.Xdr.pos w;
             Xdr.skip r w
       done
     with Xdr.Underflow m -> Store.corrupt "chunk of block %d is truncated: %s" id m);
    if not (Xdr.at_end r) then
      Store.corrupt "chunk of block %d has %d trailing bytes" id (Xdr.remaining r)
  in
  Stream.put_header ~epoch:mf.Store.mf_epoch buf ~src_arch:mf.Store.mf_src_arch
    ~prog_hash:mf.Store.mf_prog_hash ~rng_state:mf.Store.mf_rng_state
    ~poll_id:mf.Store.mf_poll_id;
  Xdr.put_int_as_i32 buf (List.length mf.Store.mf_frames);
  List.iter
    (fun (fname, blk, idx) ->
      Xdr.put_string buf fname;
      Xdr.put_int_as_i32 buf blk;
      Xdr.put_int_as_i32 buf idx)
    mf.Store.mf_frames;
  List.iter
    (fun live ->
      Xdr.put_int_as_i32 buf (List.length live);
      List.iter
        (fun (name, d) ->
          Xdr.put_string buf name;
          emit_datum d)
        live)
    mf.Store.mf_live;
  Xdr.put_int_as_i32 buf (List.length mf.Store.mf_globals);
  List.iter
    (fun (name, d) ->
      Xdr.put_string buf name;
      emit_datum d)
    mf.Store.mf_globals;
  Stream.put_trailer buf;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Store round-trips                                                   *)
(* ------------------------------------------------------------------ *)

(** Persist a collection into [st]: write every chunk not already stored
    (counting ship/reuse and bytes written into [stats]) and commit the
    manifest.  Payloads may come from the fresh [chunks] table or already
    be on disk from a previous epoch.
    @raise Store.Error when a needed payload is in neither place *)
let persist (st : Store.t) (mf : Store.manifest) (chunks : (string, string) Hashtbl.t)
    (stats : Cstats.delta) : unit =
  List.iter
    (fun h ->
      if Store.has_chunk st h then (
        stats.Cstats.d_chunks_reused <- stats.Cstats.d_chunks_reused + 1;
        Hpm_obs.Obs.inc "hpm_store_chunk_dedup_hits_total" [])
      else
        match Hashtbl.find_opt chunks h with
        | Some payload ->
            (* the table is keyed by the payload's own digest: no re-hash *)
            ignore (Store.put_chunk_hashed st ~hash:h payload : bool);
            stats.Cstats.d_chunks_shipped <- stats.Cstats.d_chunks_shipped + 1;
            stats.Cstats.d_delta_bytes <- stats.Cstats.d_delta_bytes + String.length payload
        | None ->
            Store.err "chunk %s is neither freshly collected nor stored" (Store.hash_hex h))
    (Store.manifest_hashes mf);
  Store.save_manifest st mf;
  stats.Cstats.d_delta_bytes <-
    stats.Cstats.d_delta_bytes + String.length (Store.serialize_manifest mf)

(** Materialize [mf] and restore it on [arch] via the stock v2 path. *)
let restore_manifest (m : Migration.migratable) (arch : Hpm_arch.Arch.t)
    ~(lookup : string -> string) (mf : Store.manifest) : Interp.t * Cstats.restore =
  let stream = materialize ~ti:m.Migration.ti ~lookup mf in
  Restore.restore ~expect_epoch:mf.Store.mf_epoch m.Migration.prog arch m.Migration.ti stream

(** Restore [proc] from the newest manifest in [st] that materializes and
    restores cleanly, skipping damaged epochs.  [None] when no epoch of
    the process is recoverable. *)
let restore_latest (m : Migration.migratable) (arch : Hpm_arch.Arch.t) (st : Store.t)
    ~(proc : string) : (Interp.t * Cstats.restore * Store.manifest) option =
  let rec go = function
    | [] -> None
    | epoch :: older -> (
        match
          let mf = Store.load_manifest st ~proc ~epoch in
          let interp, rstats = restore_manifest m arch ~lookup:(Store.get_chunk st) mf in
          (interp, rstats, mf)
        with
        | result -> Some result
        | exception (Store.Corrupt _ | Store.Error _ | Restore.Error _ | Stream.Corrupt _ | Xdr.Underflow _)
          ->
            go older)
  in
  go (List.rev (Store.manifest_epochs st ~proc))
