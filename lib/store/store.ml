(** Content-addressed checkpoint store.

    The MSRLT already gives every memory block a machine-independent
    identity; this module adds machine-independent {e content} identity: a
    block's XDR-encoded payload is hashed, and the hash names a *chunk* in
    an on-disk store shared by every epoch of every process.  A checkpoint
    then decomposes into:

    - {b chunks} — deduplicated block payloads, one file per distinct
      hash under [store/chunks/];
    - {b manifests} — one small file per (process, epoch) under
      [store/manifests/], recording the stream header fields, the frame
      stack, the collection roots, and the mi_id-ordered block table
      (identity, type, size, chunk hash).

    A manifest plus its chunks {e materializes} back into a byte-identical
    v2 migration stream ({!Snapshot.materialize}), so restoration reuses
    the stock {!Hpm_core.Restore} path unchanged.

    Two epochs of the same process typically share most chunks, so an
    incremental checkpoint writes only the dirty blocks' chunks — and a
    {e delta stream} (the v3 wire format here) ships only chunks absent
    from a stated base manifest, named by its hash.  The receiver refuses
    a delta whose base it does not hold ({!Base_mismatch}).

    Durability rules: chunk and manifest files are written to a temporary
    name and renamed, so a file that exists under its final name is
    complete ("committed").  [latest_manifest] additionally skips files
    that fail to parse, so recovery never trusts a torn write.  [gc]
    deletes chunks referenced by no parseable manifest and reports the
    bytes reclaimed; [retain] bounds the manifest history per process. *)

open Hpm_machine
open Hpm_xdr
open Hpm_core
module Obs = Hpm_obs.Obs

exception Error of string
(** Environmental failures: unwritable directory, missing files, bad
    process names. *)

exception Corrupt of string
(** Parse failures: damaged chunk, manifest, or delta bytes. *)

exception Base_mismatch of string * string
(** [Base_mismatch (expected_hex, got_hex)]: a delta stream names a base
    manifest the receiver does not hold. *)

let err fmt = Fmt.kstr (fun m -> raise (Error m)) fmt
let corrupt fmt = Fmt.kstr (fun m -> raise (Corrupt m)) fmt

(* ------------------------------------------------------------------ *)
(* Manifests                                                           *)
(* ------------------------------------------------------------------ *)

(** A collection root or pointer element, resolved to machine-independent
    form.  Unlike the v2 stream there is no inline-definition tag: blocks
    live in the manifest's table, so a reference is always (bid,
    ordinal).  References name the {e source-side runtime block id}
    ([Mem.bid]), not the mi_id: bids are stable across epochs for a live
    block, so a chunk payload's bytes — and hence its content hash — do
    not change when heap churn renumbers the DFS order. *)
type datum =
  | Dnull
  | Dref of int * int  (** (source bid, ordinal) *)
  | Dfunc of int       (** function index *)

type binfo = {
  b_ident : Mem.ident;
  b_bid : int;    (** source-side runtime block id; distinct per manifest *)
  b_tid : int;    (** wire type id, as {!Hpm_msr.Ti.encode_block_ty} *)
  b_count : int;
  b_size : int;   (** chunk payload bytes *)
  b_hash : string;  (** 16-byte MD5 of the chunk payload *)
}

type manifest = {
  mf_proc : string;
  mf_epoch : int;
  mf_src_arch : string;
  mf_prog_hash : int64;
  mf_rng_state : int64;
  mf_poll_id : int;
  mf_frames : (string * int * int) list;  (** top-down: fname, block, index *)
  mf_live : (string * datum) list list;   (** per frame top-down: live roots *)
  mf_globals : (string * datum) list;     (** in program order *)
  mf_blocks : binfo array;                (** indexed by mi_id, DFS first-visit order *)
}

let mf_magic = "HPMF"
let mf_trailer = "MEND"
let mf_version = 1
let hash_len = 16

(* a sanity bound on counts read from disk, far above any real snapshot *)
let max_count = 10_000_000

let hash_hex = Digest.to_hex

let put_datum b = function
  | Dnull -> Xdr.put_u8 b Stream.tag_null
  | Dref (id, ord) ->
      Xdr.put_u8 b Stream.tag_ref;
      Xdr.put_int_as_i32 b id;
      Xdr.put_int_as_i32 b ord
  | Dfunc i ->
      Xdr.put_u8 b Stream.tag_func;
      Xdr.put_int_as_i32 b i

let get_datum r =
  match Xdr.get_u8 r with
  | t when t = Stream.tag_null -> Dnull
  | t when t = Stream.tag_ref ->
      let id = Xdr.get_int_of_i32 r in
      let ord = Xdr.get_int_of_i32 r in
      if id < 0 || ord < 0 then corrupt "negative datum reference (%d, %d)" id ord;
      Dref (id, ord)
  | t when t = Stream.tag_func -> Dfunc (Xdr.get_int_of_i32 r)
  | t -> corrupt "unknown manifest datum tag %d" t

let get_count r what =
  let n = Xdr.get_int_of_i32 r in
  if n < 0 || n > max_count then corrupt "implausible %s count %d" what n;
  n

let put_binfo b bi =
  Stream.put_ident b bi.b_ident;
  Xdr.put_int_as_i32 b bi.b_bid;
  Xdr.put_int_as_i32 b bi.b_tid;
  Xdr.put_int_as_i32 b bi.b_count;
  Xdr.put_int_as_i32 b bi.b_size;
  assert (String.length bi.b_hash = hash_len);
  Buffer.add_string b bi.b_hash

let get_raw r n what =
  if Xdr.remaining r < n then corrupt "truncated %s" what;
  let s = Bytes.sub_string r.Xdr.data r.Xdr.pos n in
  Xdr.skip r n;
  s

let get_binfo r i =
  let b_ident = Stream.get_ident r in
  let b_bid = Xdr.get_int_of_i32 r in
  if b_bid < 0 then corrupt "negative bid for block %d" i;
  let b_tid = Xdr.get_int_of_i32 r in
  let b_count = Xdr.get_int_of_i32 r in
  let b_size = Xdr.get_int_of_i32 r in
  if b_size < 0 then corrupt "negative size for block %d" i;
  let b_hash = get_raw r hash_len "chunk hash" in
  { b_ident; b_bid; b_tid; b_count; b_size; b_hash }

(* Manifests serialize in two block-table codings sharing one prefix:
   version 1 writes every entry inline (the durable, self-contained form
   whose bytes define {!manifest_hash}); version 2 — used only inside
   delta wires — codes each entry as either an inline binfo or an index
   into a base manifest's table, since consecutive epochs share almost
   all of it. *)
let serialize_manifest_gen ~version ~(put_blocks : Buffer.t -> binfo array -> unit)
    (mf : manifest) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b mf_magic;
  Xdr.put_u8 b version;
  Xdr.put_string b mf.mf_proc;
  Xdr.put_int_as_i32 b mf.mf_epoch;
  Xdr.put_string b mf.mf_src_arch;
  Xdr.put_i64 b mf.mf_prog_hash;
  Xdr.put_i64 b mf.mf_rng_state;
  Xdr.put_int_as_i32 b mf.mf_poll_id;
  Xdr.put_int_as_i32 b (List.length mf.mf_frames);
  List.iter
    (fun (fname, blk, idx) ->
      Xdr.put_string b fname;
      Xdr.put_int_as_i32 b blk;
      Xdr.put_int_as_i32 b idx)
    mf.mf_frames;
  List.iter
    (fun live ->
      Xdr.put_int_as_i32 b (List.length live);
      List.iter
        (fun (name, d) ->
          Xdr.put_string b name;
          put_datum b d)
        live)
    mf.mf_live;
  Xdr.put_int_as_i32 b (List.length mf.mf_globals);
  List.iter
    (fun (name, d) ->
      Xdr.put_string b name;
      put_datum b d)
    mf.mf_globals;
  Xdr.put_int_as_i32 b (Array.length mf.mf_blocks);
  put_blocks b mf.mf_blocks;
  Buffer.add_string b mf_trailer;
  Buffer.contents b

let serialize_manifest (mf : manifest) : string =
  serialize_manifest_gen ~version:mf_version
    ~put_blocks:(fun b blocks -> Array.iter (put_binfo b) blocks)
    mf

let parse_manifest_gen ~version ~(get_blocks : Xdr.rbuf -> int -> binfo array)
    (data : string) : manifest =
  try
    let r = Xdr.reader_of_string data in
    let m = get_raw r 4 "manifest magic" in
    if m <> mf_magic then corrupt "bad manifest magic %S (expected %S)" m mf_magic;
    let v = Xdr.get_u8 r in
    if v <> version then corrupt "unsupported manifest version %d" v;
    let mf_proc = Xdr.get_string r in
    let mf_epoch = Xdr.get_int_of_i32 r in
    if mf_epoch < 0 then corrupt "negative manifest epoch %d" mf_epoch;
    let mf_src_arch = Xdr.get_string r in
    let mf_prog_hash = Xdr.get_i64 r in
    let mf_rng_state = Xdr.get_i64 r in
    let mf_poll_id = Xdr.get_int_of_i32 r in
    let nframes = get_count r "frame" in
    let mf_frames =
      List.init nframes (fun _ ->
          let fname = Xdr.get_string r in
          let blk = Xdr.get_int_of_i32 r in
          let idx = Xdr.get_int_of_i32 r in
          (fname, blk, idx))
    in
    let mf_live =
      List.init nframes (fun _ ->
          let nlive = get_count r "live-var" in
          List.init nlive (fun _ ->
              let name = Xdr.get_string r in
              (name, get_datum r)))
    in
    let nglobals = get_count r "global" in
    let mf_globals =
      List.init nglobals (fun _ ->
          let name = Xdr.get_string r in
          (name, get_datum r))
    in
    let nblocks = get_count r "block" in
    let mf_blocks = get_blocks r nblocks in
    let t = get_raw r 4 "manifest trailer" in
    if t <> mf_trailer then corrupt "bad manifest trailer %S" t;
    if not (Xdr.at_end r) then
      corrupt "%d trailing bytes after manifest trailer" (Xdr.remaining r);
    let bids = Hashtbl.create nblocks in
    Array.iteri
      (fun i bi ->
        if Hashtbl.mem bids bi.b_bid then
          corrupt "blocks share bid %d" bi.b_bid
        else Hashtbl.add bids bi.b_bid i)
      mf_blocks;
    let check_datum what = function
      | Dref (bid, _) when not (Hashtbl.mem bids bid) ->
          corrupt "%s references unknown bid %d" what bid
      | _ -> ()
    in
    List.iter (List.iter (fun (n, d) -> check_datum ("live var " ^ n) d)) mf_live;
    List.iter (fun (n, d) -> check_datum ("global " ^ n) d) mf_globals;
    {
      mf_proc;
      mf_epoch;
      mf_src_arch;
      mf_prog_hash;
      mf_rng_state;
      mf_poll_id;
      mf_frames;
      mf_live;
      mf_globals;
      mf_blocks;
    }
  with Xdr.Underflow m | Stream.Corrupt m -> corrupt "truncated manifest: %s" m

let parse_manifest (data : string) : manifest =
  parse_manifest_gen ~version:mf_version
    ~get_blocks:(fun r n -> Array.init n (get_binfo r))
    data

(* The version-2 coding: each block entry is either inline (tag 0) or an
   index into [base]'s table (tag 1). *)
let mf_version_rel = 2

let serialize_manifest_rel (base : manifest) (mf : manifest) : string =
  let base_ix : (binfo, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun j bi -> if not (Hashtbl.mem base_ix bi) then Hashtbl.add base_ix bi j)
    base.mf_blocks;
  serialize_manifest_gen ~version:mf_version_rel
    ~put_blocks:(fun b blocks ->
      Array.iter
        (fun bi ->
          match Hashtbl.find_opt base_ix bi with
          | Some j ->
              Xdr.put_u8 b 1;
              Xdr.put_int_as_i32 b j
          | None ->
              Xdr.put_u8 b 0;
              put_binfo b bi)
        blocks)
    mf

let parse_manifest_rel (base : manifest) (data : string) : manifest =
  let nbase = Array.length base.mf_blocks in
  parse_manifest_gen ~version:mf_version_rel
    ~get_blocks:(fun r n ->
      Array.init n (fun i ->
          match Xdr.get_u8 r with
          | 0 -> get_binfo r i
          | 1 ->
              let j = Xdr.get_int_of_i32 r in
              if j < 0 || j >= nbase then
                corrupt "block %d references base entry %d of %d" i j nbase;
              base.mf_blocks.(j)
          | t -> corrupt "unknown block coding tag %d" t))
    data

(** Identity of a manifest: the hash of its serialized bytes.  This is
    what a delta stream names as its base. *)
let manifest_hash (mf : manifest) : string = Digest.string (serialize_manifest mf)

(** The distinct chunk hashes a manifest references, in mi_id order. *)
let manifest_hashes (mf : manifest) : string list =
  let seen = Hashtbl.create 64 in
  Array.fold_left
    (fun acc bi ->
      if Hashtbl.mem seen bi.b_hash then acc
      else (
        Hashtbl.add seen bi.b_hash ();
        bi.b_hash :: acc))
    [] mf.mf_blocks
  |> List.rev

(* ------------------------------------------------------------------ *)
(* The on-disk store                                                   *)
(* ------------------------------------------------------------------ *)

type t = {
  dir : string;
  pins : (string, int) Hashtbl.t;
      (* chunk hash -> pin count: chunks a live delta application or
         replication subscription still needs but no committed manifest
         references yet.  gc treats pinned chunks as live. *)
}

let chunk_magic = "HPCK"

let chunks_dir t = Filename.concat t.dir "chunks"
let manifests_dir t = Filename.concat t.dir "manifests"
let chunk_path t hash = Filename.concat (chunks_dir t) (hash_hex hash ^ ".ck")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then (
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
        err "cannot create %s: %s" dir (Unix.error_message e))

(* Parts are written sequentially into the tmp file, so framing a payload
   needs no intermediate header+payload concatenation. *)
let write_file_atomic_parts path parts =
  let tmp = path ^ ".tmp" in
  (try
     let oc = open_out_bin tmp in
     List.iter (output_string oc) parts;
     close_out oc
   with Sys_error m -> err "cannot write %s: %s" tmp m);
  try Sys.rename tmp path with Sys_error m -> err "cannot commit %s: %s" path m

let write_file_atomic path data = write_file_atomic_parts path [ data ]

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error m -> err "cannot read %s: %s" path m

(** Open (creating if needed) a store rooted at [dir].
    @raise Error when the directory cannot be created or written. *)
let open_store (dir : string) : t =
  let t = { dir; pins = Hashtbl.create 64 } in
  mkdir_p dir;
  mkdir_p (chunks_dir t);
  mkdir_p (manifests_dir t);
  (* probe writability now, so misconfiguration fails at startup rather
     than at the first checkpoint *)
  let probe = Filename.concat dir ".probe" in
  (try
     let oc = open_out_bin probe in
     close_out oc;
     Sys.remove probe
   with Sys_error m -> err "store directory %s is not writable: %s" dir m);
  t

(* ---- chunks ---- *)

let has_chunk t hash = Sys.file_exists (chunk_path t hash)

(** {!put_chunk} for a payload whose MD5 is already known — the snapshot
    and delta paths hash while building, so storing them again must not
    re-digest.  [hash] MUST be [Digest.string payload]; callers obtain it
    from a verifying parse or from the digest they just computed.  Returns
    whether a write happened (false = deduplicated). *)
let put_chunk_hashed t ~(hash : string) (payload : string) : bool =
  if has_chunk t hash then (
    Obs.inc "hpm_store_chunk_dedup_hits_total" [];
    false)
  else (
    let hdr = Buffer.create 8 in
    Buffer.add_string hdr chunk_magic;
    Xdr.put_int_as_i32 hdr (String.length payload);
    write_file_atomic_parts (chunk_path t hash) [ Buffer.contents hdr; payload ];
    Obs.inc "hpm_store_chunk_writes_total" [];
    true)

(** Write a chunk if absent; returns its hash and whether a write happened
    (false = deduplicated against an existing chunk). *)
let put_chunk t (payload : string) : string * bool =
  let hash = Digest.string payload in
  (hash, put_chunk_hashed t ~hash payload)

(** Read and validate a chunk.
    @raise Corrupt on a missing, damaged, or wrong-content file. *)
let get_chunk t (hash : string) : string =
  let path = chunk_path t hash in
  if not (Sys.file_exists path) then corrupt "missing chunk %s" (hash_hex hash);
  let data = read_file path in
  let r = Xdr.reader_of_string data in
  (try
     let m = get_raw r 4 "chunk magic" in
     if m <> chunk_magic then corrupt "bad chunk magic %S in %s" m (hash_hex hash)
   with Xdr.Underflow m -> corrupt "truncated chunk %s: %s" (hash_hex hash) m);
  let len =
    try Xdr.get_int_of_i32 r
    with Xdr.Underflow m -> corrupt "truncated chunk %s: %s" (hash_hex hash) m
  in
  if len < 0 || len <> Xdr.remaining r then
    corrupt "chunk %s length %d does not match file (%d payload bytes)" (hash_hex hash)
      len (Xdr.remaining r);
  let payload = get_raw r len "chunk payload" in
  if Digest.string payload <> hash then
    corrupt "chunk %s content does not match its name" (hash_hex hash);
  Obs.inc "hpm_store_chunk_reads_total" [];
  payload

let chunk_disk_bytes t hash =
  try (Unix.stat (chunk_path t hash)).Unix.st_size with Unix.Unix_error _ -> 0

(* ---- pins ---- *)

let publish_pins t =
  if Obs.metrics_on () then
    Obs.set_gauge "hpm_store_pinned_chunks" [] (float_of_int (Hashtbl.length t.pins))

(** Pin [hashes] against {!gc}: a pinned chunk is treated as live even
    when no committed manifest references it.  Pins are counted, so
    nested pinners compose; they live in memory only — a process restart
    drops them, which is safe because whatever in-flight application they
    protected died with the process. *)
let pin t (hashes : string list) : unit =
  List.iter
    (fun h ->
      let n = match Hashtbl.find_opt t.pins h with Some n -> n | None -> 0 in
      Hashtbl.replace t.pins h (n + 1))
    hashes;
  publish_pins t

(** Release one pin on each of [hashes]; unknown hashes are ignored. *)
let unpin t (hashes : string list) : unit =
  List.iter
    (fun h ->
      match Hashtbl.find_opt t.pins h with
      | Some n when n > 1 -> Hashtbl.replace t.pins h (n - 1)
      | Some _ -> Hashtbl.remove t.pins h
      | None -> ())
    hashes;
  publish_pins t

(** Number of distinct chunk hashes currently pinned. *)
let pinned_chunks t : int = Hashtbl.length t.pins

(** Is [hash] currently protected by at least one pin? *)
let is_pinned t (hash : string) : bool = Hashtbl.mem t.pins hash

(** Run [f ()] with [hashes] pinned; the pins are released on any exit,
    exceptional included. *)
let with_pins t (hashes : string list) (f : unit -> 'a) : 'a =
  pin t hashes;
  Fun.protect ~finally:(fun () -> unpin t hashes) f

(* ---- manifests ---- *)

let manifest_filename proc epoch = Printf.sprintf "%s.%08d.mf" proc epoch

let check_proc_name proc =
  if proc = "" then err "empty process name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> ()
      | c -> err "process name %S contains %C (use [A-Za-z0-9_-])" proc c)
    proc

(** Atomically commit a manifest; a crash mid-write leaves only a [.tmp]
    file that every reader ignores. *)
let save_manifest t (mf : manifest) : unit =
  check_proc_name mf.mf_proc;
  write_file_atomic
    (Filename.concat (manifests_dir t) (manifest_filename mf.mf_proc mf.mf_epoch))
    (serialize_manifest mf);
  Obs.inc "hpm_store_manifest_commits_total" [];
  if Obs.tracing () then
    Obs.instant ~ts:(Obs.now ()) ~cat:"store"
      ~args:
        [
          ("proc", Obs.Trace.S mf.mf_proc);
          ("epoch", Obs.Trace.I mf.mf_epoch);
          ("blocks", Obs.Trace.I (Array.length mf.mf_blocks));
        ]
      "store.commit"

(* (proc, epoch) of a manifest filename, or None for foreign files *)
let parse_manifest_filename name =
  if not (Filename.check_suffix name ".mf") then None
  else
    let stem = Filename.chop_suffix name ".mf" in
    match String.rindex_opt stem '.' with
    | None -> None
    | Some i -> (
        let proc = String.sub stem 0 i in
        let ep = String.sub stem (i + 1) (String.length stem - i - 1) in
        match int_of_string_opt ep with
        | Some e when e >= 0 && proc <> "" -> Some (proc, e)
        | _ -> None)

let manifest_files t =
  let dir = manifests_dir t in
  let names = try Sys.readdir dir with Sys_error m -> err "cannot list %s: %s" dir m in
  Array.to_list names
  |> List.filter_map (fun n ->
         match parse_manifest_filename n with
         | Some (proc, epoch) -> Some (proc, epoch, Filename.concat dir n)
         | None -> None)

(** Committed epochs of [proc], ascending. *)
let manifest_epochs t ~proc : int list =
  manifest_files t
  |> List.filter_map (fun (p, e, _) -> if p = proc then Some e else None)
  |> List.sort compare

let procs t : string list =
  manifest_files t
  |> List.map (fun (p, _, _) -> p)
  |> List.sort_uniq compare

(** Load the committed manifest of ([proc], [epoch]).
    @raise Corrupt when absent or damaged. *)
let load_manifest t ~proc ~epoch : manifest =
  let path = Filename.concat (manifests_dir t) (manifest_filename proc epoch) in
  if not (Sys.file_exists path) then corrupt "no manifest for %s epoch %d" proc epoch;
  let mf = parse_manifest (read_file path) in
  if mf.mf_proc <> proc || mf.mf_epoch <> epoch then
    corrupt "manifest %s names (%s, %d)" path mf.mf_proc mf.mf_epoch;
  mf

(** The newest manifest of [proc] that parses completely — torn or
    damaged files are skipped, so the result is always {e committed}. *)
let latest_manifest t ~proc : manifest option =
  let rec try_epochs = function
    | [] -> None
    | e :: rest -> (
        match load_manifest t ~proc ~epoch:e with
        | mf -> Some mf
        | exception Corrupt _ -> try_epochs rest)
  in
  try_epochs (List.rev (manifest_epochs t ~proc))

(** Drop all but the newest [keep] manifests of [proc]; returns how many
    files were removed.  Chunks are reclaimed separately by {!gc}. *)
let retain t ~proc ~keep : int =
  if keep < 0 then invalid_arg "Store.retain: negative keep";
  let epochs = List.rev (manifest_epochs t ~proc) in
  let victims = if keep >= List.length epochs then [] else List.filteri (fun i _ -> i >= keep) epochs in
  List.iter
    (fun e ->
      try Sys.remove (Filename.concat (manifests_dir t) (manifest_filename proc e))
      with Sys_error _ -> ())
    victims;
  List.length victims

(** How many parseable manifests reference chunk [hash]. *)
let refcount t (hash : string) : int =
  List.fold_left
    (fun acc (_, _, path) ->
      match parse_manifest (read_file path) with
      | mf ->
          if Array.exists (fun bi -> bi.b_hash = hash) mf.mf_blocks then acc + 1 else acc
      | exception Corrupt _ -> acc)
    0 (manifest_files t)

type gc_report = {
  gc_live_chunks : int;
  gc_live_bytes : int;        (** on-disk bytes of referenced chunks *)
  gc_reclaimed_chunks : int;
  gc_reclaimed_bytes : int;   (** on-disk bytes deleted *)
  gc_damaged_manifests : int;     (** unparseable manifest files (held no references) *)
  gc_pinned_chunks : int;     (** chunks kept alive solely by a pin *)
}

let pp_gc ppf g =
  Fmt.pf ppf "gc: reclaimed %d chunks (%d bytes); %d live chunks (%d bytes)%a%a"
    g.gc_reclaimed_chunks g.gc_reclaimed_bytes g.gc_live_chunks g.gc_live_bytes
    (fun ppf n -> if n > 0 then Fmt.pf ppf "; %d pinned" n)
    g.gc_pinned_chunks
    (fun ppf n -> if n > 0 then Fmt.pf ppf "; %d damaged manifests ignored" n)
    g.gc_damaged_manifests

(** Delete every chunk referenced by no parseable manifest and not
    {!pin}ned.  A chunk referenced by any committed manifest is never
    reclaimed; an uncommitted (torn) manifest protects nothing — pins
    exist precisely to cover the window in which a delta's chunks are on
    disk but its manifest is not yet committed. *)
let gc t : gc_report =
  let live = Hashtbl.create 256 in
  let bad = ref 0 in
  List.iter
    (fun (_, _, path) ->
      match parse_manifest (read_file path) with
      | mf -> Array.iter (fun bi -> Hashtbl.replace live bi.b_hash ()) mf.mf_blocks
      | exception Corrupt _ -> incr bad)
    (manifest_files t);
  (* pinned-only survivors: counted separately so the report shows what
     the pins are currently protecting *)
  let pinned_only = ref 0 in
  Hashtbl.iter
    (fun h _ ->
      if not (Hashtbl.mem live h) then (
        incr pinned_only;
        Hashtbl.replace live h ()))
    t.pins;
  let report =
    {
      gc_live_chunks = 0;
      gc_live_bytes = 0;
      gc_reclaimed_chunks = 0;
      gc_reclaimed_bytes = 0;
      gc_damaged_manifests = !bad;
      gc_pinned_chunks = !pinned_only;
    }
  in
  let dir = chunks_dir t in
  let names = try Sys.readdir dir with Sys_error m -> err "cannot list %s: %s" dir m in
  let report =
    Array.fold_left
      (fun acc name ->
        (* A crash between tmp-write and rename in [write_file_atomic]
           leaves an orphan "<hash>.ck.tmp".  The ".ck" suffix check below
           already excludes it, but the invariant is load-bearing — a gc
           that counted or deleted such orphans would race the very commit
           it interrupted — so reject ".tmp" explicitly and first. *)
        if Filename.check_suffix name ".tmp" then acc
        else if not (Filename.check_suffix name ".ck") then acc
        else
          let hex = Filename.chop_suffix name ".ck" in
          match Digest.from_hex hex with
          | exception _ -> acc (* foreign file: leave it alone *)
          | hash ->
              let path = Filename.concat dir name in
              let bytes =
                try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0
              in
              if Hashtbl.mem live hash then
                { acc with gc_live_chunks = acc.gc_live_chunks + 1;
                           gc_live_bytes = acc.gc_live_bytes + bytes }
              else (
                (try Sys.remove path with Sys_error _ -> ());
                { acc with gc_reclaimed_chunks = acc.gc_reclaimed_chunks + 1;
                           gc_reclaimed_bytes = acc.gc_reclaimed_bytes + bytes }))
      report names
  in
  if Obs.metrics_on () then begin
    Obs.inc "hpm_store_gc_reclaimed_chunks_total" []
      ~by:(float_of_int report.gc_reclaimed_chunks);
    Obs.inc "hpm_store_gc_reclaimed_bytes_total" []
      ~by:(float_of_int report.gc_reclaimed_bytes);
    Obs.set_gauge "hpm_store_gc_live_chunks" [] (float_of_int report.gc_live_chunks);
    Obs.set_gauge "hpm_store_gc_live_bytes" [] (float_of_int report.gc_live_bytes);
    Obs.inc "hpm_store_gc_damaged_manifests_total" []
      ~by:(float_of_int report.gc_damaged_manifests)
  end;
  report

(* ------------------------------------------------------------------ *)
(* Delta streams (wire format v3)                                      *)
(* ------------------------------------------------------------------ *)

let delta_magic = "HPMD"
let delta_trailer = "DEND"
let delta_version = 3

type delta = {
  d_kind : [ `Full | `Delta ];
  d_base : string;  (** 16-byte hash of the base manifest ("" for full) *)
  d_manifest : manifest;
  d_chunks : (string * string) list;  (** (hash, payload), each verified *)
}

(** Encode a (full or incremental) checkpoint for the wire: the manifest
    plus every referenced chunk the receiver cannot already have.  With
    [base], only chunks whose hash is absent from the base manifest are
    shipped — payloads reference blocks by source bid, so content
    addressing is robust to mi_id renumbering between epochs — and the
    manifest's block table is coded relative to the base's.  [lookup]
    must return the payload of any shipped hash.  Updates [stats]
    ship/reuse/byte counters when given. *)
let encode_delta ?base ?stats ~(lookup : string -> string) (mf : manifest) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b delta_magic;
  Xdr.put_u8 b delta_version;
  (match base with
  | None ->
      Xdr.put_u8 b 0;
      Xdr.put_string b "";
      Xdr.put_string b (serialize_manifest mf)
  | Some base ->
      Xdr.put_u8 b 1;
      Xdr.put_string b (manifest_hash base);
      Xdr.put_string b (serialize_manifest_rel base mf));
  let have =
    match base with
    | None -> Hashtbl.create 1
    | Some base ->
        let h = Hashtbl.create 64 in
        Array.iter (fun bi -> Hashtbl.replace h bi.b_hash ()) base.mf_blocks;
        h
  in
  let shipped = List.filter (fun h -> not (Hashtbl.mem have h)) (manifest_hashes mf) in
  Xdr.put_int_as_i32 b (List.length shipped);
  List.iter
    (fun h ->
      let payload = lookup h in
      Buffer.add_string b h;
      Xdr.put_string b payload)
    shipped;
  Buffer.add_string b delta_trailer;
  let wire = Buffer.contents b in
  (match stats with
  | Some (s : Cstats.delta) ->
      let total = List.length (manifest_hashes mf) in
      s.Cstats.d_chunks_shipped <- s.Cstats.d_chunks_shipped + List.length shipped;
      s.Cstats.d_chunks_reused <- s.Cstats.d_chunks_reused + (total - List.length shipped);
      s.Cstats.d_delta_bytes <- s.Cstats.d_delta_bytes + String.length wire
  | None -> ());
  wire

(** Parse and fully validate a v3 stream.  Incremental streams code
    their manifest relative to their base, so [base] (the manifest the
    receiver holds) is required to decode one — and is checked against
    the stream's named base hash first.
    @raise Base_mismatch when an incremental stream names a base other
    than [base]
    @raise Corrupt on any damage, including a chunk whose payload does
    not hash to its declared name. *)
let parse_delta ?base (wire : string) : delta =
  try
    let r = Xdr.reader_of_string wire in
    let m = get_raw r 4 "delta magic" in
    if m <> delta_magic then corrupt "bad delta magic %S (expected %S)" m delta_magic;
    let v = Xdr.get_u8 r in
    if v <> delta_version then corrupt "unsupported delta version %d" v;
    let kind =
      match Xdr.get_u8 r with
      | 0 -> `Full
      | 1 -> `Delta
      | k -> corrupt "unknown delta kind %d" k
    in
    let d_base = Xdr.get_string r in
    (match (kind, String.length d_base) with
    | `Full, 0 -> ()
    | `Delta, n when n = hash_len -> ()
    | _, n -> corrupt "delta base hash has %d bytes" n);
    let d_manifest =
      match kind with
      | `Full -> parse_manifest (Xdr.get_string r)
      | `Delta -> (
          match base with
          | None -> raise (Base_mismatch ("<no base held>", hash_hex d_base))
          | Some base ->
              let bh = manifest_hash base in
              if bh <> d_base then
                raise (Base_mismatch (hash_hex bh, hash_hex d_base));
              parse_manifest_rel base (Xdr.get_string r))
    in
    let nchunks = get_count r "delta chunk" in
    let d_chunks =
      List.init nchunks (fun _ ->
          let h = get_raw r hash_len "chunk hash" in
          let payload = Xdr.get_string r in
          if Digest.string payload <> h then
            corrupt "delta chunk %s does not hash to its name" (hash_hex h);
          (h, payload))
    in
    let t = get_raw r 4 "delta trailer" in
    if t <> delta_trailer then corrupt "bad delta trailer %S" t;
    if not (Xdr.at_end r) then
      corrupt "%d trailing bytes after delta trailer" (Xdr.remaining r);
    { d_kind = kind; d_base; d_manifest; d_chunks }
  with Xdr.Underflow m -> corrupt "truncated delta: %s" m

(** Apply a v3 stream to this store: verify the base (for incremental
    streams, against [expect_base] — the manifest the receiver believes
    is current), persist the shipped chunks, check that every block of
    the new manifest is now materializable, and commit the manifest.
    Idempotent: re-applying a delivered stream is harmless.
    @raise Base_mismatch when an incremental stream names a different base
    @raise Corrupt on damage or missing chunks *)
let apply t ?expect_base (wire : string) : manifest =
  let d = parse_delta ?base:expect_base wire in
  (* Pin every chunk the new manifest will reference for the whole
     persist window: freshly shipped chunks have no committed manifest
     yet, and base-inherited chunks may lose their last manifest to a
     concurrent [retain] — either way a [gc] racing this application must
     not reclaim them before [save_manifest] commits. *)
  with_pins t (manifest_hashes d.d_manifest) (fun () ->
      (* parse_delta already verified each payload against its hash *)
      List.iter
        (fun (hash, payload) -> ignore (put_chunk_hashed t ~hash payload : bool))
        d.d_chunks;
      List.iter
        (fun h ->
          if not (has_chunk t h) then
            corrupt "delta leaves chunk %s unmaterializable" (hash_hex h))
        (manifest_hashes d.d_manifest);
      save_manifest t d.d_manifest);
  d.d_manifest
