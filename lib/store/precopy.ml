(** Iterative pre-copy migration over the checkpoint store.

    Classic pre-copy, adapted to the paper's poll-point model: ship a full
    chunked snapshot while the source {e keeps running}, then up to
    [rounds] delta rounds — each lets the source advance [round_polls]
    poll events, snapshots it incrementally, and ships only the chunks the
    destination lacks.  When a round's wire size falls below [threshold] ×
    the full snapshot's, the dirty set has converged and the loop stops
    early.  Only then does the process actually migrate: a {e final} round
    runs under the two-phase {!Hpm_core.Handoff} commit protocol, using
    its delta hooks so the stop-and-copy transfer ships roughly one
    converged delta instead of the whole image.

    The durable artifact on the source side is always the full
    materialized v2 stream, so every {!Hpm_core.Handoff} recovery path
    (abort-requeue, source crash resume, stall) works unchanged. *)

open Hpm_machine
open Hpm_net
open Hpm_core
module Obs = Hpm_obs.Obs

type config = {
  rounds : int;        (** max delta rounds before the final stop-and-copy (≥ 1) *)
  threshold : float;   (** converged when round wire ≤ threshold × full wire *)
  round_polls : int;   (** poll events the source runs between rounds (≥ 1) *)
  handoff : Handoff.config;  (** protocol config for the final round *)
}

let default_config =
  { rounds = 4; threshold = 0.05; round_polls = 50; handoff = Handoff.default_config }

type round = {
  pr_epoch : int;
  pr_kind : [ `Full | `Delta | `Final ];
  pr_wire_bytes : int;
  pr_chunks_shipped : int;
  pr_chunks_reused : int;
  pr_blocks_scanned : int;
  pr_blocks_dirty : int;
  pr_time_s : float;  (** transfer time of this round (0 for the final: the
                          handoff result carries its own timing) *)
}

type outcome =
  | Handed_off of Handoff.result
      (** the final round ran; inspect the handoff outcome as usual *)
  | Finished_before_handoff
      (** the source completed during pre-copy; nothing migrated and the
          (finished) source interpreter holds the result and output *)
  | Round_link_failed of { rl_round : int; rl_reason : string; rl_stats : Transport.stats option }
      (** a pre-copy round could not be delivered or applied; the source
          keeps running locally (its migration request is cleared) *)

type result = {
  p_rounds : round list;  (** in shipping order, final round included *)
  p_converged : bool;
  p_outcome : outcome;
  p_stats : Cstats.delta;  (** aggregated over every round *)
  p_precopy_s : float;     (** time spent in pre-copy rounds (excl. final handoff) *)
  p_final_epoch : int;
}

(* internal: unwind out of the round loop on a failed delta round *)
exception Round_abort of int * (string * Transport.stats option)

let fold_stats (acc : Cstats.delta) (r : Cstats.delta) =
  acc.Cstats.d_blocks_scanned <- acc.Cstats.d_blocks_scanned + r.Cstats.d_blocks_scanned;
  acc.Cstats.d_blocks_dirty <- acc.Cstats.d_blocks_dirty + r.Cstats.d_blocks_dirty;
  acc.Cstats.d_data_bytes <- acc.Cstats.d_data_bytes + r.Cstats.d_data_bytes;
  acc.Cstats.d_cache_hits <- acc.Cstats.d_cache_hits + r.Cstats.d_cache_hits;
  acc.Cstats.d_chunks_shipped <- acc.Cstats.d_chunks_shipped + r.Cstats.d_chunks_shipped;
  acc.Cstats.d_chunks_reused <- acc.Cstats.d_chunks_reused + r.Cstats.d_chunks_reused;
  acc.Cstats.d_delta_bytes <- acc.Cstats.d_delta_bytes + r.Cstats.d_delta_bytes

(** Pre-copy [src] (suspended at a poll-point) from its machine to
    [dst_arch], applying each round into [dst_store] under [proc], and
    hand off under two-phase commit.  Epochs are numbered from [epoch0]
    (one per round); the final handoff epoch is [p_final_epoch].
    @raise Invalid_argument on a non-positive [rounds]/[round_polls], a
    negative [threshold] or [epoch0] *)
let execute ?(config = default_config) ?faults ~(channel : Netsim.t)
    ~(dst_store : Store.t) ~(proc : string) ?(epoch0 = 1)
    (m : Migration.migratable) (src : Interp.t) (dst_arch : Hpm_arch.Arch.t) : result =
  if config.rounds < 1 then invalid_arg "Precopy.execute: rounds must be >= 1";
  if config.round_polls < 1 then invalid_arg "Precopy.execute: round_polls must be >= 1";
  if config.threshold < 0.0 then invalid_arg "Precopy.execute: negative threshold";
  if epoch0 < 0 then invalid_arg "Precopy.execute: negative epoch0";
  let cache = Snapshot.new_cache () in
  let stats = Cstats.delta_zero () in
  (* every payload serialized in any round, for materializing the durable
     full checkpoint: cache-reused chunks were serialized in an earlier
     round, so the union always suffices *)
  let src_chunks : (string, string) Hashtbl.t = Hashtbl.create 256 in
  let lookup h =
    match Hashtbl.find_opt src_chunks h with
    | Some payload -> payload
    | None -> Store.err "pre-copy lost chunk %s" (Store.hash_hex h)
  in
  let time = ref 0.0 in
  (* pre-copy rounds run on the ambient simulated clock, ahead of the
     final handoff (which is re-based onto it below) *)
  let p_t0 = Obs.now () in
  let pts () = p_t0 +. !time in
  let prev_labels = Obs.labels () in
  if Obs.on () then Obs.set_labels (("proc", proc) :: prev_labels);
  let kind_name = function `Full -> "full" | `Delta -> "delta" | `Final -> "final" in
  let rounds = ref [] in
  let record r =
    rounds := r :: !rounds;
    if Obs.metrics_on () then begin
      Obs.inc "hpm_precopy_rounds_total" [ ("kind", kind_name r.pr_kind) ];
      Obs.inc "hpm_precopy_wire_bytes_total" [] ~by:(float_of_int r.pr_wire_bytes)
    end
  in
  let finish ~converged ~outcome ~final_epoch =
    if Obs.on () then begin
      (* the final handoff (if any) already advanced the ambient clock
         past the pre-copy rounds; never rewind it *)
      Obs.set_now (Float.max (Obs.now ()) (pts ()));
      Obs.set_labels prev_labels
    end;
    {
      p_rounds = List.rev !rounds;
      p_converged = converged;
      p_outcome = outcome;
      p_stats = stats;
      p_precopy_s = !time;
      p_final_epoch = final_epoch;
    }
  in
  let snapshot epoch =
    let mf, chunks, rs = Snapshot.collect ~epoch ~proc ~cache src m.Migration.ti in
    Hashtbl.iter (Hashtbl.replace src_chunks) chunks;
    (mf, rs)
  in
  (* Ship one pre-copy round while the source stays live: encode, push
     through the resilient transport, apply into the destination store. *)
  let ship_round ~kind ?base epoch =
    let mf, rs = snapshot epoch in
    let wire = Store.encode_delta ?base ~stats:rs ~lookup mf in
    Obs.span_b ~ts:(pts ()) ~cat:"precopy"
      ~args:
        [
          ("epoch", Obs.Trace.I epoch);
          ("kind", Obs.Trace.S (kind_name kind));
          ("wire_bytes", Obs.Trace.I (String.length wire));
        ]
      "precopy.round";
    match
      Transport.transfer ~config:config.handoff.Handoff.transport ~ts0:(pts ()) channel
        wire
    with
    | Transport.Aborted { reason; stats = tstats; _ } ->
        time := !time +. tstats.Transport.t_time_s;
        Obs.span_e ~ts:(pts ()) ~args:[ ("error", Obs.Trace.S reason) ] "precopy.round";
        fold_stats stats rs;
        Error (reason, Some tstats)
    | Transport.Delivered (delivered, tstats) -> (
        time := !time +. tstats.Transport.t_time_s;
        Obs.span_e ~ts:(pts ())
          ~args:
            [
              ("chunks_shipped", Obs.Trace.I rs.Cstats.d_chunks_shipped);
              ("chunks_reused", Obs.Trace.I rs.Cstats.d_chunks_reused);
              ("blocks_dirty", Obs.Trace.I rs.Cstats.d_blocks_dirty);
            ]
          "precopy.round";
        fold_stats stats rs;
        match Store.apply dst_store ?expect_base:base delivered with
        | applied ->
            record
              {
                pr_epoch = epoch;
                pr_kind = kind;
                pr_wire_bytes = String.length wire;
                pr_chunks_shipped = rs.Cstats.d_chunks_shipped;
                pr_chunks_reused = rs.Cstats.d_chunks_reused;
                pr_blocks_scanned = rs.Cstats.d_blocks_scanned;
                pr_blocks_dirty = rs.Cstats.d_blocks_dirty;
                pr_time_s = tstats.Transport.t_time_s;
              };
            Ok (applied, String.length wire)
        | exception (Store.Corrupt msg | Store.Error msg) -> Error (msg, Some tstats)
        | exception Store.Base_mismatch (want, got) ->
            Error (Printf.sprintf "base mismatch: destination holds %s, delta against %s" want got,
                   Some tstats))
  in
  let round_failed n (reason, tstats) =
    Interp.clear_migration_request src;
    finish ~converged:false
      ~outcome:(Round_link_failed { rl_round = n; rl_reason = reason; rl_stats = tstats })
      ~final_epoch:(epoch0 + n)
  in
  (* round 0: full snapshot at the current suspension *)
  match ship_round ~kind:`Full epoch0 with
  | Error e -> round_failed 0 e
  | Ok (base0, full_wire) ->
      let rec precopy_rounds base n =
        if n > config.rounds then (base, false, epoch0 + config.rounds)
        else (
          Interp.request_migration_after src (config.round_polls - 1);
          match Interp.run src with
          | Interp.RDone _ -> (base, false, epoch0 + n - 1) (* finished: no handoff *)
          | Interp.RFuel -> Store.err "pre-copy source ran out of fuel"
          | Interp.RPolled _ -> (
              let epoch = epoch0 + n in
              match ship_round ~kind:`Delta ~base epoch with
              | Error e -> raise (Round_abort (n, e))
              | Ok (applied, wire) ->
                  if float_of_int wire <= config.threshold *. float_of_int full_wire then
                    (applied, true, epoch)
                  else precopy_rounds applied (n + 1)))
      in
      (match precopy_rounds base0 1 with
      | exception Round_abort (n, e) -> round_failed n e
      | base, converged, last_epoch ->
          if (match src.Interp.result with Some _ -> true | None -> false) then
            (* the program completed mid-pre-copy; shipped state is moot *)
            finish ~converged ~outcome:Finished_before_handoff ~final_epoch:last_epoch
          else
            (* final round: stop-and-copy under two-phase commit, shipping
               only the last delta on the wire while the durable artifact
               stays the full materialized stream *)
            let final_epoch = last_epoch + 1 in
            let mf_f, rs_f = snapshot final_epoch in
            let ckpt = Snapshot.materialize ~ti:m.Migration.ti ~lookup mf_f in
            rs_f.Cstats.d_full_bytes <- String.length ckpt;
            let wire = Store.encode_delta ~base ~stats:rs_f ~lookup mf_f in
            fold_stats stats rs_f;
            stats.Cstats.d_full_bytes <- String.length ckpt;
            let cstats =
              (* §4.2 shape of the synthesized full collection, for the
                 unchanged handoff reporting *)
              let c = Cstats.collect_zero () in
              c.Cstats.c_blocks <- Array.length mf_f.Store.mf_blocks;
              c.Cstats.c_data_bytes <- rs_f.Cstats.d_data_bytes;
              c.Cstats.c_stream_bytes <- String.length ckpt;
              c.Cstats.c_frames <- List.length mf_f.Store.mf_frames;
              c.Cstats.c_live_vars <-
                List.fold_left (fun a l -> a + List.length l) 0 mf_f.Store.mf_live;
              c
            in
            let decode delivered =
              match Store.apply dst_store ~expect_base:base delivered with
              | applied ->
                  Ok (Snapshot.materialize ~ti:m.Migration.ti
                        ~lookup:(Store.get_chunk dst_store) applied)
              | exception (Store.Corrupt msg | Store.Error msg) -> Error msg
              | exception Store.Base_mismatch (want, got) ->
                  Error
                    (Printf.sprintf "base mismatch: destination holds %s, delta against %s"
                       want got)
            in
            (* re-base the handoff's trace timeline onto the simulated
               time the pre-copy rounds consumed *)
            if Obs.on () then Obs.set_now (pts ());
            let hres =
              Handoff.execute ~config:config.handoff ?faults ~channel ~epoch:final_epoch
                ~collect_fn:(fun () -> (ckpt, cstats))
                ~encode:(fun _ -> wire)
                ~decode m src dst_arch
            in
            record
              {
                pr_epoch = final_epoch;
                pr_kind = `Final;
                pr_wire_bytes = String.length wire;
                pr_chunks_shipped = rs_f.Cstats.d_chunks_shipped;
                pr_chunks_reused = rs_f.Cstats.d_chunks_reused;
                pr_blocks_scanned = rs_f.Cstats.d_blocks_scanned;
                pr_blocks_dirty = rs_f.Cstats.d_blocks_dirty;
                pr_time_s = 0.0;
              };
            finish ~converged ~outcome:(Handed_off hres) ~final_epoch)

let pp_round ppf r =
  Fmt.pf ppf "round %d (%s): wire=%dB, chunks %d shipped / %d reused, %d/%d blocks dirty"
    r.pr_epoch
    (match r.pr_kind with `Full -> "full" | `Delta -> "delta" | `Final -> "final")
    r.pr_wire_bytes r.pr_chunks_shipped r.pr_chunks_reused r.pr_blocks_dirty
    r.pr_blocks_scanned
