(** Generic dataflow framework over {!Cfg}.

    The pre-compiler is, at heart, a static analyzer: liveness decides
    which variables each poll-point must save (§2), and the lint analyses
    decide whether those saves are even meaningful (an uninitialized or
    freed pointer handed to [Save_pointer] derails the depth-first
    collection).  All of them are monotone fixpoints over the same CFG,
    so they share this one engine: a problem supplies a join-semilattice
    and per-instruction transfer functions; the engine iterates blocks in
    reverse-postorder (or its reverse, for backward problems) until the
    facts stabilize, and answers queries at instruction granularity.

    Facts are always reported in *program order*: [before ~block ~index]
    is the fact immediately before executing that instruction, whatever
    the propagation direction.  Unreachable blocks keep [L.bottom]. *)

module type LATTICE = sig
  type t

  val bottom : t
  (** the fact for not-yet-reached program points; must be a unit of
      [join] ([join bottom x = x]) *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module type PROBLEM = sig
  module L : LATTICE

  val direction : direction

  val boundary : Ir.func -> L.t
  (** the fact entering the CFG: at the entry-block head for a forward
      problem, at every function exit ([Tret]) for a backward one *)

  val transfer_instr : Ir.func -> Ir.instr -> L.t -> L.t
  (** [transfer_instr fn ins fact] maps the fact across [ins] in the
      propagation direction (for a backward problem, [fact] is the fact
      *after* the instruction in program order) *)

  val transfer_term : Ir.func -> Ir.term -> L.t -> L.t

  val transfer_edge : Ir.func -> Ir.term -> succ:int -> L.t -> L.t
  (** [transfer_edge fn term ~succ fact] refines the fact flowing along
      the CFG edge from the block ending in [term] to block [succ] —
      e.g. an interval analysis narrowing a counter on the taken side of
      [Tif (i < n)].  Only consulted by forward problems; analyses that
      do not refine on branches return [fact] unchanged. *)
end

module Make (P : PROBLEM) = struct
  type result = {
    fn : Ir.func;
    entry_facts : P.L.t array;
        (** forward: fact at each block head; backward: fact at each
            block exit (both in program order) *)
  }

  (* Fact at the block head (forward) after pushing through the whole
     block; or at the block exit (backward) after pulling through
     terminator and instructions in reverse. *)
  let block_transfer (fn : Ir.func) (b : Ir.block) (fact : P.L.t) : P.L.t =
    match P.direction with
    | Forward ->
        let fact = Array.fold_left (fun acc i -> P.transfer_instr fn i acc) fact b.Ir.instrs in
        P.transfer_term fn b.Ir.term fact
    | Backward ->
        let fact = ref (P.transfer_term fn b.Ir.term fact) in
        for i = Array.length b.Ir.instrs - 1 downto 0 do
          fact := P.transfer_instr fn b.Ir.instrs.(i) !fact
        done;
        !fact

  let solve (fn : Ir.func) : result =
    let n = Array.length fn.Ir.blocks in
    let entry_facts = Array.make n P.L.bottom in
    let rpo = Cfg.reverse_postorder fn in
    let order, edges_in, is_boundary =
      match P.direction with
      | Forward ->
          (rpo, Cfg.pred_map fn, fun b -> b = fn.Ir.entry)
      | Backward ->
          ( List.rev rpo,
            Cfg.succ_map fn,
            fun b -> Cfg.successors fn.Ir.blocks.(b).Ir.term = [] )
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun bi ->
          let incoming =
            List.fold_left
              (fun acc src ->
                let fact =
                  block_transfer fn fn.Ir.blocks.(src) entry_facts.(src)
                in
                let fact =
                  match P.direction with
                  | Forward ->
                      P.transfer_edge fn fn.Ir.blocks.(src).Ir.term ~succ:bi fact
                  | Backward -> fact
                in
                P.L.join acc fact)
              P.L.bottom edges_in.(bi)
          in
          let incoming =
            if is_boundary bi then P.L.join incoming (P.boundary fn) else incoming
          in
          (* Accumulate into the old fact instead of replacing it.  For a
             monotone problem iterated from bottom this is the identity
             (facts only grow), but it also makes every [entry_facts]
             cell an ascending chain, so problems whose join widens (the
             interval analysis rounds moving bounds to thresholds — not
             monotone pass-to-pass) still terminate instead of
             oscillating around the fixpoint. *)
          let incoming = P.L.join entry_facts.(bi) incoming in
          if not (P.L.equal incoming entry_facts.(bi)) then (
            entry_facts.(bi) <- incoming;
            changed := true))
        order
    done;
    { fn; entry_facts }

  (** Program-order fact at the head of [block] (before instruction 0). *)
  let block_entry (r : result) block =
    match P.direction with
    | Forward -> r.entry_facts.(block)
    | Backward ->
        block_transfer r.fn r.fn.Ir.blocks.(block) r.entry_facts.(block)

  (** Program-order fact at the exit of [block] (after the terminator). *)
  let block_exit (r : result) block =
    match P.direction with
    | Forward ->
        block_transfer r.fn r.fn.Ir.blocks.(block) r.entry_facts.(block)
    | Backward -> r.entry_facts.(block)

  (** Fact immediately before instruction [index] of [block] in program
      order ([index = length] means before the terminator). *)
  let before (r : result) ~block ~index : P.L.t =
    let b = r.fn.Ir.blocks.(block) in
    match P.direction with
    | Forward ->
        let fact = ref r.entry_facts.(block) in
        for i = 0 to index - 1 do
          fact := P.transfer_instr r.fn b.Ir.instrs.(i) !fact
        done;
        !fact
    | Backward ->
        let fact = ref (P.transfer_term r.fn b.Ir.term r.entry_facts.(block)) in
        for i = Array.length b.Ir.instrs - 1 downto index do
          fact := P.transfer_instr r.fn b.Ir.instrs.(i) !fact
        done;
        !fact

  (** Fact immediately after instruction [index] of [block]. *)
  let after (r : result) ~block ~index : P.L.t = before r ~block ~index:(index + 1)
end
