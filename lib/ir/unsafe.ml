(** Migration-unsafe feature detection.

    Smith & Hutchinson catalogued the C features that defeat heterogeneous
    migration; the paper's pre-compiler (§1) detects and rejects them.
    Mini-C already lacks unions, varargs and bit-fields by construction;
    this pass checks the remaining, value-level hazards on the typed AST
    and reports them through the {!Diag} engine:

    - [HPM-E002]/[HPM-E003]: casts between pointers and integers (an
      address is meaningless on the destination machine);
    - [HPM-W004]: casts between unrelated pointer types (the TI table
      would save the block under one type and the program would read it
      as another) — [void*] and [char*] are exempt as the conventional
      "raw memory" types;
    - [HPM-E001]: untyped [malloc] (an allocation whose element type
      cannot be recovered never gets a TI entry);
    - [HPM-W005]: integer overflow *assumptions*: a [long] value narrowed
      to any smaller integer type, since [long] widths differ across
      architectures (e.g. ILP32 → LP64).  The type checker materializes
      implicit conversions as {!Ast.Cast} nodes, so plain assignments,
      initializers, arguments and returns are caught exactly like
      explicit casts. *)

open Hpm_lang

type severity = Diag.severity = Error | Warning

type diag = Diag.t = { code : string; sev : severity; loc : Ast.loc; msg : string }

let pp_diag = Diag.pp

let is_charlike = function Ty.Ptr Ty.Void | Ty.Ptr Ty.Char -> true | _ -> false

let is_null_const (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Const (Ast.Cint 0L) | Ast.Const (Ast.Clong 0L) -> true
  | _ -> false

(* Integer types strictly narrower than [long] on every architecture. *)
let is_narrower_than_long = function
  | Ty.Char | Ty.Short | Ty.Int -> true
  | _ -> false

let rec check_expr acc (e : Ast.expr) : diag list =
  match e.Ast.desc with
  | Ast.Cast
      (Ty.Ptr _, { Ast.desc = Ast.Call ({ Ast.desc = Ast.Var "malloc"; _ }, args); _ }) ->
      (* typed malloc: fine (the size pattern is validated by Compile);
         check the size expression but skip the Call node itself so it is
         not misreported as an untyped malloc *)
      List.fold_left check_expr acc args
  | _ -> check_expr_general acc e

and check_expr_general acc (e : Ast.expr) : diag list =
  let loc = e.Ast.loc in
  let acc =
    match e.Ast.desc with
    | Ast.Call ({ Ast.desc = Ast.Var "malloc"; _ }, _) ->
        Diag.make ~code:"HPM-E001" ~loc
          "untyped malloc: result must be cast immediately, as in (T*)malloc(k * sizeof(T))"
        :: acc
    | Ast.Cast ((Ty.Ptr _ as t), inner) when Ty.is_integer (Ast.ty_of inner) ->
        if is_null_const inner then acc
        else
          Diag.make ~code:"HPM-E002" ~loc
            "cast of integer to %s: machine addresses do not survive migration"
            (Ty.to_string t)
          :: acc
    | Ast.Cast (t, inner) when Ty.is_integer t && Ty.is_pointer (Ast.ty_of inner) ->
        Diag.make ~code:"HPM-E003" ~loc
          "cast of %s to %s: machine addresses do not survive migration"
          (Ty.to_string (Ast.ty_of inner))
          (Ty.to_string t)
        :: acc
    | Ast.Cast ((Ty.Ptr _ as t), inner)
      when Ty.is_pointer (Ast.ty_of inner)
           && (not (Ty.equal t (Ast.ty_of inner)))
           && (not (is_charlike t))
           && not (is_charlike (Ast.ty_of inner)) ->
        Diag.make ~code:"HPM-W004" ~loc
          "cast between unrelated pointer types %s and %s: the block will be \
           collected under its allocation type"
          (Ty.to_string (Ast.ty_of inner))
          (Ty.to_string t)
        :: acc
    | Ast.Cast (t, inner)
      when is_narrower_than_long t
           && Ty.equal (Ast.ty_of inner) Ty.Long
           && not (is_null_const inner) ->
        Diag.make ~code:"HPM-W005" ~loc
          "long value narrowed to %s: long widths differ across architectures"
          (Ty.to_string t)
        :: acc
    | _ -> acc
  in
  fold_children acc e

and fold_children acc (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Const _ | Ast.Var _ | Ast.Sizeof _ -> acc
  | Ast.Unop (_, a)
  | Ast.Incr (_, a)
  | Ast.Decr (_, a)
  | Ast.Field (a, _)
  | Ast.Arrow (a, _)
  | Ast.Deref a
  | Ast.Addr a
  | Ast.Cast (_, a) ->
      check_expr acc a
  | Ast.Binop (_, a, b) | Ast.Assign (a, b) | Ast.Index (a, b) ->
      check_expr (check_expr acc a) b
  | Ast.Call (f, args) -> List.fold_left check_expr (check_expr acc f) args
  | Ast.Cond (a, b, c) -> check_expr (check_expr (check_expr acc a) b) c

let rec check_stmt acc (s : Ast.stmt) : diag list =
  match s.Ast.sdesc with
  | Ast.Sexpr e -> check_expr acc e
  | Ast.Sif (c, t, f) ->
      let acc = check_expr acc c in
      let acc = List.fold_left check_stmt acc t in
      List.fold_left check_stmt acc f
  | Ast.Swhile (c, body) -> List.fold_left check_stmt (check_expr acc c) body
  | Ast.Sdo (body, c) -> check_expr (List.fold_left check_stmt acc body) c
  | Ast.Sfor (i, c, st, body) ->
      let acc = Option.fold ~none:acc ~some:(check_expr acc) i in
      let acc = Option.fold ~none:acc ~some:(check_expr acc) c in
      let acc = Option.fold ~none:acc ~some:(check_expr acc) st in
      List.fold_left check_stmt acc body
  | Ast.Sreturn (Some e) -> check_expr acc e
  | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue | Ast.Spoll _ | Ast.Sgoto _
  | Ast.Slabel _ ->
      acc
  | Ast.Sdecl d -> (
      match d.Ast.d_init with Some e -> check_expr acc e | None -> acc)
  | Ast.Sswitch (scrut, arms, default) ->
      let acc = check_expr acc scrut in
      let acc =
        List.fold_left (fun acc (_, body) -> List.fold_left check_stmt acc body) acc arms
      in
      List.fold_left check_stmt acc default
  | Ast.Sblock body -> List.fold_left check_stmt acc body

(** Scan a type-checked program.  The result is ordered by occurrence. *)
let check (p : Ast.program) : diag list =
  let acc =
    List.fold_left
      (fun acc (d : Ast.decl) ->
        match d.Ast.d_init with Some e -> check_expr acc e | None -> acc)
      [] p.Ast.globals
  in
  let acc =
    List.fold_left
      (fun acc (f : Ast.func) ->
        let acc =
          List.fold_left
            (fun acc (d : Ast.decl) ->
              match d.Ast.d_init with Some e -> check_expr acc e | None -> acc)
            acc f.Ast.f_locals
        in
        List.fold_left check_stmt acc f.Ast.f_body)
      acc p.Ast.funcs
  in
  List.rev acc

let errors = Diag.errors
let warnings = Diag.warnings

(** Raise-on-error convenience used by the migration pipeline. *)
exception Rejected = Diag.Rejected

let check_exn p = Diag.reject_on_errors (check p)
