(** Poll-point selection and insertion — the heart of the pre-compiler.

    Following §2 of the paper: the pre-compiler selects source locations
    where migration may occur, inserts a polling macro at each (here: an
    {!Ir.Ipoll} instruction), and records the live variables whose values
    are needed beyond each poll-point.  Users may also place poll-points
    by hand with [#pragma poll NAME]; those were already lowered by
    {!Compile} and are renumbered and folded into the table here.

    Insertion is deterministic (strategy + program → same ids on every
    machine), which is what lets the source and destination processes of a
    migration agree on where "poll-point 7" is.

    The [hot_threshold] knob implements the §4.3 guidance: polling inside
    a small, frequently-invoked kernel dominates execution overhead, so
    the automatic strategy can skip functions whose body is smaller than a
    threshold (they are reached via their callers' polls anyway). *)

type kind =
  | Kuser of string  (** [#pragma poll NAME] *)
  | Kloop            (** natural-loop header *)
  | Kentry           (** function entry *)

type strategy = {
  loop_headers : bool;     (** poll at every natural-loop header *)
  fn_entries : bool;       (** poll at every function entry *)
  only_funcs : string list option;
      (** restrict automatic insertion to these functions *)
  hot_threshold : int;
      (** skip automatic polls in functions with fewer IR instructions
          than this (0 disables the heuristic) *)
  max_loop_depth : int;
      (** skip loop-header polls at nesting depth greater than this
          (inner kernels); 0 means no limit *)
}

(** The paper's default: poll wherever execution returns repeatedly, but
    stay out of innermost kernels. *)
let default_strategy =
  { loop_headers = true; fn_entries = true; only_funcs = None; hot_threshold = 0; max_loop_depth = 0 }

(** Aggressive placement — every loop header at any depth and every
    function entry.  Used by the overhead experiment as the worst case. *)
let aggressive_strategy = default_strategy

(** Conservative placement: outermost loops only, no tiny functions. *)
let outer_loops_strategy =
  { loop_headers = true; fn_entries = true; only_funcs = None; hot_threshold = 8; max_loop_depth = 1 }

(** No automatic polls at all; only user pragmas remain. *)
let user_only_strategy =
  { loop_headers = false; fn_entries = false; only_funcs = None; hot_threshold = 0; max_loop_depth = 0 }

type info = {
  id : int;
  fn : string;
  block : int;           (** block index after insertion *)
  index : int;           (** instruction index of the Ipoll after insertion *)
  kind : kind;
  live : string list;    (** variables needed beyond this poll-point, sorted *)
}

type table = {
  polls : info list;
  strategy : strategy;
}

let find t id = List.find_opt (fun p -> p.id = id) t.polls

let find_exn t id =
  match find t id with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Pollpoint.find_exn: no poll #%d" id)

let pp_kind ppf = function
  | Kuser name -> Fmt.pf ppf "user:%s" name
  | Kloop -> Fmt.string ppf "loop-header"
  | Kentry -> Fmt.string ppf "fn-entry"

let pp_info ppf p =
  Fmt.pf ppf "poll #%d at %s B%d.%d (%a) live={%a}" p.id p.fn p.block p.index
    pp_kind p.kind
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    p.live

(* Insert an instruction at the head of a block, in place, keeping the
   parallel source-location array aligned: the poll inherits the location
   of the instruction it now precedes (the loop-body or function head). *)
let insert_at_head (b : Ir.block) (ins : Ir.instr) =
  let loc = Ir.instr_loc b 0 in
  b.Ir.instrs <- Array.append [| ins |] b.Ir.instrs;
  b.Ir.locs <- Array.append [| loc |] b.Ir.locs

(** Insert poll-points per [strategy] into [prog] (mutating block
    instruction arrays), then run liveness and build the poll table.
    [user_polls] are the (id, name) pairs returned by {!Compile.lower};
    automatic polls get fresh ids above them. *)
let insert (prog : Ir.prog) (user_polls : (int * string) list) (strategy : strategy) : table
    =
  let next_id = ref (List.fold_left (fun m (i, _) -> max m (i + 1)) 0 user_polls) in
  let wants_fn (f : Ir.func) =
    (match strategy.only_funcs with
    | Some names -> List.mem f.Ir.name names
    | None -> true)
    && (strategy.hot_threshold = 0 || Cfg.instr_count f >= strategy.hot_threshold)
  in
  (* 1. insert automatic polls *)
  List.iter
    (fun (f : Ir.func) ->
      if wants_fn f then (
        let depth = Cfg.loop_depth f in
        if strategy.loop_headers then
          List.iter
            (fun h ->
              if strategy.max_loop_depth = 0 || depth.(h) <= strategy.max_loop_depth
              then (
                let has_poll =
                  Array.exists
                    (function Ir.Ipoll _ -> true | _ -> false)
                    f.Ir.blocks.(h).Ir.instrs
                in
                if not has_poll then (
                  insert_at_head f.Ir.blocks.(h) (Ir.Ipoll !next_id);
                  incr next_id)))
            (Cfg.loop_headers f);
        if strategy.fn_entries then (
          let entry = f.Ir.blocks.(f.Ir.entry) in
          let has_poll =
            Array.exists (function Ir.Ipoll _ -> true | _ -> false) entry.Ir.instrs
          in
          if not has_poll then (
            insert_at_head entry (Ir.Ipoll !next_id);
            incr next_id))))
    prog.Ir.funcs;
  (* 2. build the table with live sets *)
  let polls = ref [] in
  List.iter
    (fun (f : Ir.func) ->
      let live = Liveness.analyze f in
      Array.iteri
        (fun bi (b : Ir.block) ->
          Array.iteri
            (fun ii ins ->
              match ins with
              | Ir.Ipoll id ->
                  let kind =
                    match List.assoc_opt id user_polls with
                    | Some name -> Kuser name
                    | None ->
                        if ii = 0 && bi = f.Ir.entry then Kentry
                        else if List.mem bi (Cfg.loop_headers f) then Kloop
                        else Kentry
                  in
                  polls :=
                    {
                      id;
                      fn = f.Ir.name;
                      block = bi;
                      index = ii;
                      kind;
                      live =
                        Liveness.to_sorted_list
                          (Liveness.live_after live ~block:bi ~index:ii);
                    }
                    :: !polls
              | _ -> ())
            b.Ir.instrs)
        f.Ir.blocks)
    prog.Ir.funcs;
  { polls = List.sort (fun a b -> compare a.id b.id) !polls; strategy }

(** Number of poll-points in each function, for reports. *)
let per_function t =
  List.fold_left
    (fun acc p ->
      let n = try List.assoc p.fn acc with Not_found -> 0 in
      (p.fn, n + 1) :: List.remove_assoc p.fn acc)
    [] t.polls
  |> List.sort compare
