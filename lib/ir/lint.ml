(** Flow-sensitive migratability lint.

    The {!Unsafe} scan rejects features that *cannot* migrate; this pass
    finds programs that would migrate *wrongly*.  The paper's collection
    protocol saves, at a poll-point, exactly the live variables
    ([Save_variable]) and chases every live pointer depth-first
    ([Save_pointer]).  That protocol is only meaningful when the saved
    values are meaningful:

    - a possibly-uninitialized scalar live at a poll-point would ship one
      machine's stack garbage to another ([HPM-E101]);
    - a possibly-uninitialized (wild) pointer would send [Save_pointer]
      chasing a garbage address ([HPM-E103]);
    - a pointer to freed memory would make the MSR traversal collect a
      dangling block ([HPM-E102]);
    - freeing an already-freed pointer corrupts the allocator on any
      machine ([HPM-W104]);
    - a store whose value is never read is never worth saving
      ([HPM-W105]).

    All three analyses are instances of the generic {!Dataflow} engine,
    sharing the CFG and the use/def extraction of {!Liveness}.  A
    suspension point is an {!Ir.Ipoll} or a call that may transitively
    reach one; checks fire only where a bad value is *live* at such a
    point, which is what keeps the lint quiet on correct programs (a
    variable initialized on every path to every use is never flagged,
    wherever it is declared).

    Known imprecision (documented, deliberate): there is no alias
    tracking, so freeing [q] after [p = q] marks only [q] freed — a
    false negative, never a false positive.  Arrays and structs are
    exempt from the uninitialized check because element-wise
    initialization inside a polled loop is the *normal* idiom (the array
    is partially garbage at the loop-header poll of its own fill loop,
    and restoring garbage bytes it will overwrite anyway is harmless). *)

open Hpm_lang
module SS = Liveness.SS
module SM = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Shared structural helpers                                           *)
(* ------------------------------------------------------------------ *)

let rec lv_base = function
  | Ir.Lvar v -> Some v
  | Ir.Lindex (b, _, _) | Ir.Lfield (b, _, _, _) -> lv_base b
  | Ir.Lmem _ -> None

(* Variables whose address is taken somewhere inside [rv] / [lv].  An
   address-taken variable may be written through the alias, so both the
   uninitialized and the pointer-state analysis give up on it (assume
   initialized / unknown) rather than risk a false positive. *)
let rec addr_bases acc (rv : Ir.rv) =
  match rv with
  | Ir.Rconst _ | Ir.Rsizeof _ | Ir.Rfunc _ -> acc
  | Ir.Rload (lv, _) -> addr_bases_lv acc lv
  | Ir.Raddr (lv, _) -> (
      let acc = addr_bases_lv acc lv in
      match lv_base lv with Some v -> SS.add v acc | None -> acc)
  | Ir.Runop (_, a, _) -> addr_bases acc a
  | Ir.Rbinop (_, a, b, _) -> addr_bases (addr_bases acc a) b
  | Ir.Rcast (_, a) -> addr_bases acc a

and addr_bases_lv acc (lv : Ir.lv) =
  match lv with
  | Ir.Lvar _ -> acc
  | Ir.Lmem (rv, _) -> addr_bases acc rv
  | Ir.Lindex (b, i, _) -> addr_bases_lv (addr_bases acc i) b
  | Ir.Lfield (b, _, _, _) -> addr_bases_lv acc b

let instr_addr_bases (ins : Ir.instr) : SS.t =
  match ins with
  | Ir.Iassign (lv, rv) -> addr_bases (addr_bases_lv SS.empty lv) rv
  | Ir.Icopy (d, s, _) -> addr_bases_lv (addr_bases_lv SS.empty s) d
  | Ir.Icall (dst, callee, args) ->
      let acc = List.fold_left addr_bases SS.empty args in
      let acc = match callee with Ir.Cptr rv -> addr_bases acc rv | _ -> acc in
      (match dst with Some lv -> addr_bases_lv acc lv | None -> acc)
  | Ir.Imalloc (d, _, n) -> addr_bases (addr_bases_lv SS.empty d) n
  | Ir.Ifree rv -> addr_bases SS.empty rv
  | Ir.Ipoll _ -> SS.empty

(* Compiler temps ($0, $1, …) are always defined before use by
   construction; they are never reported. *)
let is_named v = String.length v > 0 && v.[0] <> '$'

(* ------------------------------------------------------------------ *)
(* Analysis 1: possibly-uninitialized variables (forward, may)         *)
(* ------------------------------------------------------------------ *)

(* Fact: the set of variables that may still hold their declaration-time
   garbage.  Locals start uninitialized; any write whose base is the
   variable — full or partial — initializes it, as does taking its
   address (the alias may fill it; assuming so avoids false positives,
   at the price of missing e.g. a pointer passed to a function that
   never writes it). *)
let inits_of_instr (ins : Ir.instr) : SS.t =
  let written =
    match ins with
    | Ir.Iassign (lv, _) | Ir.Icopy (lv, _, _) | Ir.Imalloc (lv, _, _)
    | Ir.Icall (Some lv, _, _) -> (
        match lv_base lv with Some v -> SS.singleton v | None -> SS.empty)
    | Ir.Icall (None, _, _) | Ir.Ifree _ | Ir.Ipoll _ -> SS.empty
  in
  SS.union written (instr_addr_bases ins)

module UninitFlow = Dataflow.Make (struct
  module L = struct
    type t = SS.t

    let bottom = SS.empty
    let equal = SS.equal
    let join = SS.union
  end

  let direction = Dataflow.Forward

  (* Parameters arrive initialized by the caller; locals (including
     temps) do not. *)
  let boundary (fn : Ir.func) = SS.of_list (List.map fst fn.Ir.locals)
  let transfer_instr _ ins fact = SS.diff fact (inits_of_instr ins)
  let transfer_term _ _ fact = fact
  let transfer_edge _ _ ~succ:_ fact = fact
end)

(* Read-before-init (backward, may): is there a path on which [v]'s
   *content* is read before anything initializes it?  This differs from
   {!Liveness} exactly on address-taking: [&x] keeps [x] in the save set
   (so it matters for pointer checks — [Save_pointer] chases the value
   during collection), but it does not *read* [x], and passing [&x] to a
   callee counts as initializing.  A scalar that is garbage at a poll but
   overwritten before every read migrates harmlessly, so [HPM-E101]
   requires read-before-init, not mere liveness. *)
let rec reads_rv acc (rv : Ir.rv) =
  match rv with
  | Ir.Rconst _ | Ir.Rsizeof _ | Ir.Rfunc _ -> acc
  | Ir.Rload (lv, _) -> reads_lv_read acc lv
  | Ir.Raddr (lv, _) -> reads_lv_addr acc lv
  | Ir.Runop (_, a, _) -> reads_rv acc a
  | Ir.Rbinop (_, a, b, _) -> reads_rv (reads_rv acc a) b
  | Ir.Rcast (_, a) -> reads_rv acc a

and reads_lv_read acc (lv : Ir.lv) =
  match lv with
  | Ir.Lvar v -> SS.add v acc
  | Ir.Lmem (rv, _) -> reads_rv acc rv
  | Ir.Lindex (b, i, _) -> reads_lv_read (reads_rv acc i) b
  | Ir.Lfield (b, _, _, _) -> reads_lv_read acc b

(* [&lv]: the base's content is not read; index expressions — and the
   pointer itself when taking the address of a dereference — are. *)
and reads_lv_addr acc (lv : Ir.lv) =
  match lv with
  | Ir.Lvar _ -> acc
  | Ir.Lmem (rv, _) -> reads_rv acc rv
  | Ir.Lindex (b, i, _) -> reads_lv_addr (reads_rv acc i) b
  | Ir.Lfield (b, _, _, _) -> reads_lv_addr acc b

let reads_lv_write acc (lv : Ir.lv) =
  match lv with
  | Ir.Lvar _ -> acc
  | Ir.Lmem (rv, _) -> reads_rv acc rv
  | Ir.Lindex (b, i, _) -> reads_lv_read (reads_rv acc i) b
  | Ir.Lfield (b, _, _, _) -> reads_lv_read acc b

let instr_reads (ins : Ir.instr) : SS.t =
  match ins with
  | Ir.Iassign (lv, rv) -> reads_lv_write (reads_rv SS.empty rv) lv
  | Ir.Icopy (d, s, _) -> reads_lv_write (reads_lv_read SS.empty s) d
  | Ir.Icall (dst, callee, args) ->
      let acc = List.fold_left reads_rv SS.empty args in
      let acc = match callee with Ir.Cptr rv -> reads_rv acc rv | _ -> acc in
      (match dst with Some lv -> reads_lv_write acc lv | None -> acc)
  | Ir.Imalloc (dst, _, n) -> reads_lv_write (reads_rv SS.empty n) dst
  | Ir.Ifree rv -> reads_rv SS.empty rv
  | Ir.Ipoll _ -> SS.empty

module ReadFlow = Dataflow.Make (struct
  module L = struct
    type t = SS.t

    let bottom = SS.empty
    let equal = SS.equal
    let join = SS.union
  end

  let direction = Dataflow.Backward
  let boundary _ = SS.empty

  let transfer_instr _ ins fact =
    SS.union (SS.diff fact (inits_of_instr ins)) (instr_reads ins)

  let transfer_term _ t fact = SS.union fact (Liveness.term_uses t)
  let transfer_edge _ _ ~succ:_ fact = fact
end)

(* ------------------------------------------------------------------ *)
(* Analysis 2: pointer state (forward, may)                            *)
(* ------------------------------------------------------------------ *)

(* Per pointer-typed variable, the *set* of states it may be in, as a
   bitmask.  [p_unknown] = valid-or-null, the state of anything we
   cannot see the provenance of. *)
let p_uninit = 1
let p_null = 2
let p_valid = 4
let p_freed = 8
let p_unknown = p_null lor p_valid

let rv_is_ptr = function
  | Ir.Rload (_, ty) | Ir.Raddr (_, ty) | Ir.Runop (_, _, ty)
  | Ir.Rbinop (_, _, _, ty) ->
      Ty.is_pointer ty
  | Ir.Rcast (ty, _) -> Ty.is_pointer ty
  | Ir.Rconst (Ir.Knull _) -> true
  | Ir.Rconst (Ir.Kstr _) -> true
  | Ir.Rconst _ | Ir.Rsizeof _ -> false
  | Ir.Rfunc _ -> true

let pstate_of fact v =
  match SM.find_opt v fact with Some s -> s | None -> p_unknown

(* Abstract evaluation of a pointer-valued rvalue.  Pointer arithmetic
   keeps the state of the pointer operand (offsetting a freed pointer is
   still freed); loads from memory and anything else opaque are
   [p_unknown]. *)
let rec eval_ptr fact (rv : Ir.rv) : int =
  match rv with
  | Ir.Rconst (Ir.Knull _) -> p_null
  | Ir.Rconst _ -> p_valid (* Kstr: address of a string-table global *)
  | Ir.Rfunc _ -> p_valid
  | Ir.Raddr _ -> p_valid
  | Ir.Rload (Ir.Lvar v, ty) when Ty.is_pointer ty -> pstate_of fact v
  | Ir.Rload _ -> p_unknown
  | Ir.Rcast (_, a) -> eval_ptr fact a
  | Ir.Rbinop (_, a, b, ty) when Ty.is_pointer ty -> (
      match (rv_is_ptr a, rv_is_ptr b) with
      | true, true -> eval_ptr fact a lor eval_ptr fact b
      | true, false -> eval_ptr fact a
      | false, true -> eval_ptr fact b
      | false, false -> p_unknown)
  | Ir.Rbinop _ | Ir.Runop _ | Ir.Rsizeof _ -> p_unknown

(* The named pointer variable a [free] argument stems from, looking
   through casts and pointer arithmetic.  [None] for anything loaded
   from memory — those frees are not tracked. *)
let rec free_root (rv : Ir.rv) : string option =
  match rv with
  | Ir.Rload (Ir.Lvar v, ty) when Ty.is_pointer ty -> Some v
  | Ir.Rcast (_, a) -> free_root a
  | Ir.Rbinop (_, a, b, ty) when Ty.is_pointer ty -> (
      match (if rv_is_ptr a then free_root a else None) with
      | Some v -> Some v
      | None -> if rv_is_ptr b then free_root b else None)
  | _ -> None

module PtrFlow = Dataflow.Make (struct
  module L = struct
    type t = int SM.t

    let bottom = SM.empty
    let equal = SM.equal Int.equal
    let join = SM.union (fun _ a b -> Some (a lor b))
  end

  let direction = Dataflow.Forward

  let boundary (fn : Ir.func) =
    let add init m (v, ty) = if Ty.is_pointer ty then SM.add v init m else m in
    let m = List.fold_left (add p_unknown) SM.empty fn.Ir.params in
    List.fold_left (add p_uninit) m fn.Ir.locals

  let transfer_instr _ ins fact =
    (* address-taken pointers escape: writes through the alias are
       invisible, so their state degrades to unknown *)
    let fact =
      SS.fold
        (fun v fact -> if SM.mem v fact then SM.add v p_unknown fact else fact)
        (instr_addr_bases ins) fact
    in
    match ins with
    | Ir.Imalloc (Ir.Lvar v, _, _) when SM.mem v fact -> SM.add v p_valid fact
    | Ir.Iassign (Ir.Lvar v, rv) when SM.mem v fact ->
        SM.add v (eval_ptr fact rv) fact
    | Ir.Icall (Some (Ir.Lvar v), _, _) when SM.mem v fact ->
        SM.add v p_unknown fact
    | Ir.Ifree rv -> (
        match free_root rv with
        | Some v when SM.mem v fact -> SM.add v p_freed fact
        | _ -> fact)
    | _ -> fact

  let transfer_term _ _ fact = fact
  let transfer_edge _ _ ~succ:_ fact = fact
end)

(* ------------------------------------------------------------------ *)
(* Suspension points                                                   *)
(* ------------------------------------------------------------------ *)

let has_poll (f : Ir.func) =
  Array.exists
    (fun (b : Ir.block) ->
      Array.exists (function Ir.Ipoll _ -> true | _ -> false) b.Ir.instrs)
    f.Ir.blocks

(** Functions that may suspend: those containing a poll-point, closed
    under "calls one".  An indirect call may reach any function, so it
    may suspend as soon as the program has any poll at all. *)
let may_poll_funcs (prog : Ir.prog) : SS.t =
  let any_poll = List.exists has_poll prog.Ir.funcs in
  let may =
    ref
      (SS.of_list
         (List.filter_map
            (fun (f : Ir.func) -> if has_poll f then Some f.Ir.name else None)
            prog.Ir.funcs))
  in
  let calls_may (f : Ir.func) =
    Array.exists
      (fun (b : Ir.block) ->
        Array.exists
          (function
            | Ir.Icall (_, Ir.Cfun g, _) -> SS.mem g !may
            | Ir.Icall (_, Ir.Cptr _, _) -> any_poll
            | _ -> false)
          b.Ir.instrs)
      f.Ir.blocks
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ir.func) ->
        if (not (SS.mem f.Ir.name !may)) && calls_may f then (
          may := SS.add f.Ir.name !may;
          changed := true))
      prog.Ir.funcs
  done;
  !may

let callee_may_suspend (may : SS.t) ~any_poll = function
  | Ir.Cfun g -> SS.mem g may
  | Ir.Cptr _ -> any_poll
  | Ir.Cbuiltin _ -> false

(** Source location for a diagnostic anchored at [block]/[index].
    Automatic loop-header polls land in synthesized empty blocks with no
    location of their own; borrow the first located instruction
    downstream (the loop body). *)
let loc_at (fn : Ir.func) ~block ~index : Ast.loc =
  let loc = Ir.instr_loc fn.Ir.blocks.(block) index in
  if loc <> Ast.no_loc then loc
  else
    let visited = Hashtbl.create 8 in
    let rec scan bi from =
      if Hashtbl.mem visited bi then None
      else (
        Hashtbl.add visited bi ();
        let b = fn.Ir.blocks.(bi) in
        let n = Array.length b.Ir.instrs in
        let rec go i =
          if i >= n then None
          else
            let l = Ir.instr_loc b i in
            if l <> Ast.no_loc then Some l else go (i + 1)
        in
        match go from with
        | Some l -> Some l
        | None -> List.find_map (fun s -> scan s 0) (Cfg.successors b.Ir.term))
    in
    match scan block index with Some l -> l | None -> Ast.no_loc

(* ------------------------------------------------------------------ *)
(* The checks                                                          *)
(* ------------------------------------------------------------------ *)

let check_fn (prog : Ir.prog) (may : SS.t) ~any_poll (fn : Ir.func) :
    Diag.t list =
  let live = Liveness.analyze fn in
  let uninit = UninitFlow.solve fn in
  let pstate = PtrFlow.solve fn in
  let reads = ReadFlow.solve fn in
  let var_ty v = Ir.var_ty fn prog v in
  let acc = ref [] in
  let add d = acc := d :: !acc in
  (* One suspension point: [liveset] must survive migration with facts
     [fact_u]/[fact_p] in force.  A garbage non-pointer scalar is only
     harmful if some path reads it before initializing it ([fact_r]); a
     garbage or dangling *pointer* is harmful merely by being in the
     save set, because the collection traversal dereferences it.
     Uninitialized wins over dangling when a pointer is both (it was
     never anything else). *)
  let check_suspension ~loc ~where liveset fact_u fact_p fact_r =
    SS.iter
      (fun v ->
        if is_named v then
          match var_ty v with
          | Some ty when Ty.is_scalar ty ->
              if SS.mem v fact_u then (
                if Ty.is_pointer ty then
                  add
                    (Diag.make ~code:"HPM-E103" ~loc
                       "pointer '%s' may be uninitialized (wild) at %s: \
                        Save_pointer would chase a garbage address" v where)
                else if SS.mem v fact_r then
                  add
                    (Diag.make ~code:"HPM-E101" ~loc
                       "variable '%s' may be uninitialized at %s: its \
                        garbage value would be saved, restored and read" v
                       where))
              else if
                Ty.is_pointer ty && pstate_of fact_p v land p_freed <> 0
              then
                add
                  (Diag.make ~code:"HPM-E102" ~loc
                     "pointer '%s' may point to freed memory at %s: the \
                      depth-first collection would traverse a dangling \
                      block" v where)
          | _ -> () (* arrays/structs: see module comment *))
      liveset
  in
  Array.iteri
    (fun bi (b : Ir.block) ->
      Array.iteri
        (fun ii ins ->
          match ins with
          | Ir.Ipoll id ->
              let loc = loc_at fn ~block:bi ~index:ii in
              let where =
                Printf.sprintf "poll-point #%d (function %s)" id fn.Ir.name
              in
              check_suspension ~loc ~where
                (Liveness.live_after live ~block:bi ~index:ii)
                (UninitFlow.after uninit ~block:bi ~index:ii)
                (PtrFlow.after pstate ~block:bi ~index:ii)
                (ReadFlow.after reads ~block:bi ~index:ii)
          | Ir.Icall (_, callee, _) when callee_may_suspend may ~any_poll callee
            ->
              let loc = loc_at fn ~block:bi ~index:ii in
              let where =
                Printf.sprintf "suspended call to %s (function %s)"
                  (Fmt.str "%a" Ir.pp_callee callee)
                  fn.Ir.name
              in
              (* post-call facts: the callee already received &x-style
                 out-parameters (counted as initializing) and the call's
                 destination is re-defined by the return value *)
              check_suspension ~loc ~where
                (Liveness.live_suspended_call live ~block:bi ~index:ii)
                (UninitFlow.after uninit ~block:bi ~index:ii)
                (PtrFlow.after pstate ~block:bi ~index:ii)
                (ReadFlow.after reads ~block:bi ~index:ii)
          | Ir.Ifree rv -> (
              match free_root rv with
              | Some v
                when pstate_of (PtrFlow.before pstate ~block:bi ~index:ii) v
                     land p_freed
                     <> 0 ->
                  add
                    (Diag.make ~code:"HPM-W104"
                       ~loc:(loc_at fn ~block:bi ~index:ii)
                       "possible double free of '%s' (function %s)" v
                       fn.Ir.name)
              | _ -> ())
          | _ -> ())
        b.Ir.instrs)
    fn.Ir.blocks;
  (* Dead stores: a named local assigned a value no path ever reads.
     The value would never even be saved at a poll-point — the store is
     noise (often a stale accumulator or a shadowed initialization). *)
  Array.iteri
    (fun bi (b : Ir.block) ->
      Array.iteri
        (fun ii ins ->
          match ins with
          | Ir.Iassign (Ir.Lvar v, _)
            when is_named v && Ir.is_local fn v
                 && not (SS.mem v (Liveness.live_after live ~block:bi ~index:ii))
            ->
              add
                (Diag.make ~code:"HPM-W105"
                   ~loc:(loc_at fn ~block:bi ~index:ii)
                   "dead store to '%s' (function %s): the value is never \
                    read on any path" v fn.Ir.name)
          | _ -> ())
        b.Ir.instrs)
    fn.Ir.blocks;
  List.rev !acc

(** Run all flow-sensitive checks on a lowered program (normally after
    poll-point insertion; with no polls anywhere, only the double-free
    and dead-store checks can fire).  Result is location-sorted. *)
let check_ir (prog : Ir.prog) : Diag.t list =
  let may = may_poll_funcs prog in
  let any_poll = List.exists has_poll prog.Ir.funcs in
  Diag.sort (List.concat_map (check_fn prog may ~any_poll) prog.Ir.funcs)

(* ------------------------------------------------------------------ *)
(* Migration-footprint report                                          *)
(* ------------------------------------------------------------------ *)

type footprint_entry = {
  fp_poll : Pollpoint.info;
  fp_loc : Ast.loc;
  fp_vars : (string * int) list;  (** live variable, size in bytes *)
  fp_bytes : int;  (** Σ sizes: bytes [Save_variable] ships at this poll *)
}

(** Per poll-point, the bytes of live variables a migration at that poll
    would ship for [arch] (heap blocks reached by [Save_pointer] are a
    run-time quantity and are not included). *)
let footprint (prog : Ir.prog) (polls : Pollpoint.table)
    (arch : Hpm_arch.Arch.t) : footprint_entry list =
  let layout = Layout.make arch prog.Ir.tenv in
  List.map
    (fun (p : Pollpoint.info) ->
      let fn = Ir.find_func_exn prog p.Pollpoint.fn in
      let size v =
        match Ir.var_ty fn prog v with
        | Some (Ty.Func _) -> arch.Hpm_arch.Arch.ptr_size
        | Some t -> Layout.sizeof layout t
        | None -> 0
      in
      let vars = List.map (fun v -> (v, size v)) p.Pollpoint.live in
      {
        fp_poll = p;
        fp_loc = loc_at fn ~block:p.Pollpoint.block ~index:p.Pollpoint.index;
        fp_vars = vars;
        fp_bytes = List.fold_left (fun a (_, s) -> a + s) 0 vars;
      })
    polls.Pollpoint.polls

let pp_footprint_entry ppf (e : footprint_entry) =
  Fmt.pf ppf "poll #%d at %a (%s, %a): %d bytes%s%a" e.fp_poll.Pollpoint.id
    Ast.pp_loc e.fp_loc e.fp_poll.Pollpoint.fn Pollpoint.pp_kind
    e.fp_poll.Pollpoint.kind e.fp_bytes
    (if e.fp_vars = [] then "" else " = ")
    (Fmt.list ~sep:(Fmt.any " + ") (fun ppf (v, s) -> Fmt.pf ppf "%s:%d" v s))
    e.fp_vars

let footprint_json_one (e : footprint_entry) =
  (* field parity with {!pp_footprint_entry}: the JSON carries the same
     poll id and kind the text report shows *)
  Printf.sprintf
    {|{"poll":%d,"fn":"%s","kind":"%s","line":%d,"col":%d,"live":%d,"bytes":%d}|}
    e.fp_poll.Pollpoint.id
    (Diag.json_escape e.fp_poll.Pollpoint.fn)
    (Diag.json_escape
       (Fmt.str "%a" Pollpoint.pp_kind e.fp_poll.Pollpoint.kind))
    e.fp_loc.Ast.line e.fp_loc.Ast.col
    (List.length e.fp_vars) e.fp_bytes

(* ------------------------------------------------------------------ *)
(* Source-level driver (what [migratec lint] runs)                     *)
(* ------------------------------------------------------------------ *)

type analysis = {
  a_prog : (Ir.prog * Pollpoint.table) option;
      (** [None] when unsafe-feature errors blocked lowering *)
  a_diags : Diag.t list;  (** unsafe + flow diagnostics, location-sorted *)
}

(** Front-end pipeline for linting: parse → scope → type check → unsafe
    scan; if that produced no errors, lower, insert poll-points per
    [strategy] and run the flow analyses.  Unlike {!Diag.reject_on_errors}
    nothing is raised for lint findings — the caller renders them all.
    @raise Hpm_lang.Lexer.Error, Hpm_lang.Parser.Error on syntax errors
    @raise Hpm_lang.Typecheck.Error on type errors *)
let analyze_source ?(strategy = Pollpoint.default_strategy) (source : string) :
    analysis =
  let ast = Parser.parse_string source in
  let ast = Scopes.normalize ast in
  let ast = Typecheck.check_program ast in
  let unsafe = Unsafe.check ast in
  if Diag.errors unsafe <> [] then
    { a_prog = None; a_diags = Diag.sort unsafe }
  else
    let prog, user_polls = Compile.lower ast in
    let polls = Pollpoint.insert prog user_polls strategy in
    { a_prog = Some (prog, polls); a_diags = Diag.sort (unsafe @ check_ir prog) }

(** Machine-readable lint report: {!Diag.to_json} plus, optionally, the
    per-poll footprint. *)
let report_json ~file (ds : Diag.t list) (fp : footprint_entry list option) :
    string =
  let base =
    Printf.sprintf {|"file":"%s","diagnostics":[%s],"errors":%d,"warnings":%d|}
      (Diag.json_escape file)
      (String.concat "," (List.map Diag.to_json_one ds))
      (List.length (Diag.errors ds))
      (List.length (Diag.warnings ds))
  in
  match fp with
  | None -> Printf.sprintf "{%s}" base
  | Some entries ->
      Printf.sprintf {|{%s,"footprint":[%s]}|} base
        (String.concat "," (List.map footprint_json_one entries))
