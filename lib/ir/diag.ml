(** Unified diagnostics engine for the pre-compiler's static analyses.

    Every check — the syntactic {!Unsafe} scan and the flow-sensitive
    {!Lint} analyses — reports through this module, so all of them share
    stable codes, severities, source locations, rendering (text and
    JSON), [-Werror] promotion and per-code suppression.

    Codes are stable identifiers of the form [HPM-Exxx] (error) and
    [HPM-Wxxx] (warning): the [0xx] range is the syntactic unsafe-feature
    scan, the [1xx] range the dataflow lint, and the [20x]/[21x] ranges
    the arch-pair portability analysis ({!Portability}: [E20x] hard
    incompatibilities, [W21x] value-dependent hazards).
    [docs/DIAGNOSTICS.md] catalogues each code with a minimal triggering
    example. *)

open Hpm_lang

type severity = Error | Warning

type t = { code : string; sev : severity; loc : Ast.loc; msg : string }

(* ------------------------------------------------------------------ *)
(* Code registry                                                       *)
(* ------------------------------------------------------------------ *)

type info = {
  i_code : string;
  i_sev : severity;  (** default severity (before [-Werror] promotion) *)
  i_title : string;
}

let registry =
  [
    { i_code = "HPM-E001"; i_sev = Error; i_title = "untyped malloc" };
    { i_code = "HPM-E002"; i_sev = Error; i_title = "integer cast to pointer" };
    { i_code = "HPM-E003"; i_sev = Error; i_title = "pointer cast to integer" };
    { i_code = "HPM-W004"; i_sev = Warning; i_title = "cast between unrelated pointer types" };
    { i_code = "HPM-W005"; i_sev = Warning; i_title = "long value narrowed" };
    { i_code = "HPM-E101"; i_sev = Error; i_title = "possibly-uninitialized variable live at poll-point" };
    { i_code = "HPM-E102"; i_sev = Error; i_title = "possibly-dangling pointer live at poll-point" };
    { i_code = "HPM-E103"; i_sev = Error; i_title = "possibly-wild pointer live at poll-point" };
    { i_code = "HPM-W104"; i_sev = Warning; i_title = "possible double free" };
    { i_code = "HPM-W105"; i_sev = Warning; i_title = "dead store" };
    { i_code = "HPM-E201"; i_sev = Error; i_title = "long provably exceeds destination long range" };
    { i_code = "HPM-E202"; i_sev = Error; i_title = "wide double demoted to f32 on destination" };
    { i_code = "HPM-E203"; i_sev = Error; i_title = "byte-reinterpreted type laid out differently on destination" };
    { i_code = "HPM-W211"; i_sev = Warning; i_title = "long may exceed destination long range" };
    { i_code = "HPM-W212"; i_sev = Warning; i_title = "possibly-negative char crosses a char-signedness change" };
  ]

let find_info code = List.find_opt (fun i -> String.equal i.i_code code) registry

let is_known code = find_info code <> None

(** Make a diagnostic; the severity comes from the registry, so a check
    cannot accidentally disagree with the catalogue. *)
let make ~code ~loc fmt =
  let sev =
    match find_info code with
    | Some i -> i.i_sev
    | None -> invalid_arg (Printf.sprintf "Diag.make: unregistered code %s" code)
  in
  Fmt.kstr (fun msg -> { code; sev; loc; msg }) fmt

let errors ds = List.filter (fun d -> d.sev = Error) ds
let warnings ds = List.filter (fun d -> d.sev = Warning) ds

(** Occurrence order with a stable tie-break on location, so reports are
    deterministic regardless of which analysis emitted first. *)
let sort ds =
  List.stable_sort
    (fun a b ->
      match compare a.loc.Ast.line b.loc.Ast.line with
      | 0 -> compare a.loc.Ast.col b.loc.Ast.col
      | c -> c)
    ds

(* ------------------------------------------------------------------ *)
(* Configuration: -Werror and per-code suppression                     *)
(* ------------------------------------------------------------------ *)

type config = {
  werror : bool;            (** promote every warning to an error *)
  suppress : string list;   (** codes to drop entirely *)
}

let default_config = { werror = false; suppress = [] }

(** Apply [config]: drop suppressed codes, then promote warnings when
    [werror] is set.  Unknown codes in [suppress] are an error — a typo
    would otherwise silently suppress nothing. *)
let apply (c : config) ds =
  List.iter
    (fun code ->
      if not (is_known code) then
        invalid_arg (Printf.sprintf "unknown diagnostic code %s (see docs/DIAGNOSTICS.md)" code))
    c.suppress;
  let ds = List.filter (fun d -> not (List.mem d.code c.suppress)) ds in
  if c.werror then List.map (fun d -> { d with sev = Error }) ds else ds

(** Exit status the CLI should use for [ds] (after {!apply}). *)
let exit_code ds = if errors ds = [] then 0 else 1

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let severity_to_string = function Error -> "error" | Warning -> "warning"

let pp ppf d =
  Fmt.pf ppf "%s[%s] at %a: %s" (severity_to_string d.sev) d.code Ast.pp_loc d.loc
    d.msg

let pp_list ppf ds = List.iter (fun d -> Fmt.pf ppf "%a@." pp d) ds

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json_one d =
  Printf.sprintf
    {|{"code":"%s","severity":"%s","line":%d,"col":%d,"message":"%s"}|}
    d.code (severity_to_string d.sev) d.loc.Ast.line d.loc.Ast.col
    (json_escape d.msg)

(** The machine-readable report consumed by CI:
    [{"file":..., "diagnostics":[...], "errors":n, "warnings":n}]. *)
let to_json ~file ds =
  Printf.sprintf {|{"file":"%s","diagnostics":[%s],"errors":%d,"warnings":%d}|}
    (json_escape file)
    (String.concat "," (List.map to_json_one ds))
    (List.length (errors ds))
    (List.length (warnings ds))

(** Raised by the pipeline when a program fails a mandatory check. *)
exception Rejected of t list

let () =
  Printexc.register_printer (function
    | Rejected ds ->
        Some
          (Fmt.str "Diag.Rejected:@.%a" (Fmt.list ~sep:(Fmt.any "@.") pp) ds)
    | _ -> None)

let reject_on_errors ds = match errors ds with [] -> ds | errs -> raise (Rejected errs)
