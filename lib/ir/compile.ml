(** AST → IR lowering.

    Structured control flow becomes basic blocks; short-circuit operators
    and conditional expressions become branches with compiler temporaries;
    side-effecting subexpressions ([a = b], [i++], calls) are sequenced by
    materializing their values into temporaries immediately, so the rvalue
    trees handed to the interpreter are pure.

    Lowering also performs the paper's *malloc typing*: the migratable
    format needs every heap block typed for the TI table, so the pattern
    [(T * ) malloc (k * sizeof(T))] (and its [sizeof(T)] and [char]-array
    variants) is recognized and lowered to a typed {!Ir.Imalloc}.  Untyped
    mallocs are a migration-unsafe feature and were already rejected by
    {!Unsafe}; encountering one here is a program error. *)

open Hpm_lang

exception Error of string * Ast.loc

let err loc fmt = Fmt.kstr (fun msg -> raise (Error (msg, loc))) fmt

(* Growable function-body builder.  Each block carries the instruction
   list and a parallel source-location list (both reversed). *)
type builder = {
  mutable blocks : (Ir.instr list ref * Ast.loc list ref * Ir.term option ref) array;
  mutable cur : int;
  mutable temps : (string * Ty.t) list;
  mutable ntemp : int;
  mutable breaks : int list;
  mutable continues : int list;
  strings : string list ref;       (* shared, program-wide, reversed *)
  mutable user_polls : (int * string) list;
  mutable npoll : int;
  labels : (string, int) Hashtbl.t;  (* source label -> block id *)
}

let new_block b =
  let id = Array.length b.blocks in
  b.blocks <- Array.append b.blocks [| (ref [], ref [], ref None) |];
  id

let switch_to b id = b.cur <- id

let emit b ~loc i =
  let instrs, locs, term = b.blocks.(b.cur) in
  match !term with
  | Some _ -> () (* unreachable code after return/break: drop *)
  | None ->
      instrs := i :: !instrs;
      locs := loc :: !locs

let finish b t =
  let _, _, term = b.blocks.(b.cur) in
  match !term with Some _ -> () | None -> term := Some t

let is_finished b =
  let _, _, term = b.blocks.(b.cur) in
  !term <> None

let fresh_temp b ty =
  let name = Printf.sprintf "$%d" b.ntemp in
  b.ntemp <- b.ntemp + 1;
  b.temps <- b.temps @ [ (name, ty) ];
  name

let label_block b name =
  match Hashtbl.find_opt b.labels name with
  | Some id -> id
  | None ->
      let id = new_block b in
      Hashtbl.replace b.labels name id;
      id

let intern_string b s =
  let rec find i = function
    | [] -> None
    | x :: _ when String.equal x s -> Some i
    | _ :: tl -> find (i - 1) tl
  in
  let n = List.length !(b.strings) in
  match find (n - 1) !(b.strings) with
  | Some i -> i
  | None ->
      b.strings := s :: !(b.strings);
      n

(* Recognize the operand of a typed malloc: returns the element count. *)
let malloc_count elem_ty (arg : Ast.expr) : Ast.expr option =
  let is_sizeof_of t (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Sizeof t' -> Ty.equal t t'
    | Ast.Cast (_, { Ast.desc = Ast.Sizeof t'; _ }) -> Ty.equal t t'
    | _ -> false
  in
  let one () =
    let e = Ast.mk (Ast.Const (Ast.Cint 1L)) in
    e.Ast.ety <- Some Ty.Int;
    e
  in
  match arg.Ast.desc with
  | _ when is_sizeof_of elem_ty arg -> Some (one ())
  | Ast.Binop (Ast.Mul, a, b) when is_sizeof_of elem_ty b -> Some a
  | Ast.Binop (Ast.Mul, a, b) when is_sizeof_of elem_ty a -> Some b
  | _ when Ty.equal elem_ty Ty.Char -> Some arg (* char buffer: size is the count *)
  | _ -> None

let const_of_ast (c : Ast.const) b : Ir.const =
  match c with
  | Ast.Cint v -> Ir.Kint (Ty.Int, v)
  | Ast.Clong v -> Ir.Kint (Ty.Long, v)
  | Ast.Cfloat v -> Ir.Kfloat (Ty.Float, v)
  | Ast.Cdouble v -> Ir.Kfloat (Ty.Double, v)
  | Ast.Cchar v -> Ir.Kint (Ty.Char, Int64.of_int (Char.code v))
  | Ast.Cstr s -> Ir.Kstr (intern_string b s)

type env = {
  prog : Ast.program;
  fname : string;
  mutable scope : (string * Ty.t) list;
}

let rec lower_lv env b (e : Ast.expr) : Ir.lv =
  let loc = e.Ast.loc in
  match e.Ast.desc with
  | Ast.Var name -> Ir.Lvar name
  | Ast.Deref p ->
      let pt =
        match Ast.ty_of p with
        | Ty.Ptr t -> t
        | t -> err loc "deref of non-pointer %s" (Ty.to_string t)
      in
      Ir.Lmem (lower_rv env b p, pt)
  | Ast.Index (base, idx) -> (
      let i = lower_rv env b idx in
      match Ast.ty_of base with
      | Ty.Array (elem, _) -> Ir.Lindex (lower_lv env b base, i, elem)
      | Ty.Ptr elem ->
          let p = lower_rv env b base in
          Ir.Lmem (Ir.Rbinop (Ast.Add, p, i, Ty.Ptr elem), elem)
      | t -> err loc "index of non-array %s" (Ty.to_string t))
  | Ast.Field (base, f) -> (
      match Ast.ty_of base with
      | Ty.Struct sname -> Ir.Lfield (lower_lv env b base, sname, f, Ast.ty_of e)
      | t -> err loc "field of non-struct %s" (Ty.to_string t))
  | Ast.Arrow (base, f) -> (
      match Ast.ty_of base with
      | Ty.Ptr (Ty.Struct sname) ->
          Ir.Lfield
            (Ir.Lmem (lower_rv env b base, Ty.Struct sname), sname, f, Ast.ty_of e)
      | t -> err loc "arrow of non-struct-pointer %s" (Ty.to_string t))
  | Ast.Cast (_, inner) -> lower_lv env b inner
  | _ -> err loc "expression is not an lvalue"

and lower_rv env b (e : Ast.expr) : Ir.rv =
  let loc = e.Ast.loc in
  let ty = Ast.ty_of e in
  match e.Ast.desc with
  | Ast.Const (Ast.Cint 0L) when Ty.is_pointer ty -> Ir.Rconst (Ir.Knull ty)
  | Ast.Const c -> Ir.Rconst (const_of_ast c b)
  | Ast.Var name -> (
      match ty with
      | Ty.Func _ -> Ir.Rfunc name
      | _ -> Ir.Rload (Ir.Lvar name, ty))
  | Ast.Sizeof t -> Ir.Rsizeof t
  | Ast.Unop (op, a) -> Ir.Runop (op, lower_rv env b a, ty)
  | Ast.Binop (Ast.And, a, c) -> lower_shortcircuit env b ~is_and:true a c
  | Ast.Binop (Ast.Or, a, c) -> lower_shortcircuit env b ~is_and:false a c
  | Ast.Binop (Ast.Sub, x, y)
    when Ty.is_pointer (Ast.ty_of x) && Ty.is_pointer (Ast.ty_of y) ->
      (* ptr - ptr: byte distance divided by the element size, as C scales
         it; the element type comes from the operands *)
      let elem =
        match Ast.ty_of x with Ty.Ptr t -> t | _ -> assert false
      in
      Ir.Rbinop
        ( Ast.Div,
          Ir.Rbinop (Ast.Sub, lower_rv env b x, lower_rv env b y, Ty.Long),
          Ir.Rsizeof elem,
          Ty.Long )
  | Ast.Binop (op, x, y) -> Ir.Rbinop (op, lower_rv env b x, lower_rv env b y, ty)
  | Ast.Cast (Ty.Ptr elem, { Ast.desc = Ast.Call ({ Ast.desc = Ast.Var "malloc"; _ }, [ arg ]); _ })
    when not (Ty.equal elem Ty.Void) -> (
      match malloc_count elem arg with
      | Some count_e ->
          let count = lower_rv env b count_e in
          let tmp = fresh_temp b (Ty.Ptr elem) in
          emit b ~loc (Ir.Imalloc (Ir.Lvar tmp, elem, count));
          Ir.Rload (Ir.Lvar tmp, Ty.Ptr elem)
      | None ->
          err loc
            "untyped malloc: allocation size must be 'k * sizeof(T)' matching the cast target" )
  | Ast.Cast (t, a) -> Ir.Rcast (t, lower_rv env b a)
  | Ast.Addr ({ Ast.desc = Ast.Var fname; _ })
    when List.exists (fun (f : Ast.func) -> String.equal f.Ast.f_name fname) env.prog.Ast.funcs ->
      Ir.Rfunc fname
  | Ast.Addr a -> Ir.Raddr (lower_lv env b a, ty)
  | Ast.Call ({ Ast.desc = Ast.Var "malloc"; _ }, _) ->
      err loc "malloc must be cast to a typed pointer: (T*)malloc(k * sizeof(T))"
  | Ast.Call ({ Ast.desc = Ast.Var "free"; _ }, [ arg ]) ->
      emit b ~loc (Ir.Ifree (lower_rv env b arg));
      Ir.Rconst (Ir.Kint (Ty.Int, 0L))
  | Ast.Call (callee, args) ->
      let args = List.map (lower_rv env b) args in
      let cal = lower_callee env b callee in
      (match ty with
      | Ty.Void ->
          emit b ~loc (Ir.Icall (None, cal, args));
          Ir.Rconst (Ir.Kint (Ty.Int, 0L))
      | _ ->
          let tmp = fresh_temp b ty in
          emit b ~loc (Ir.Icall (Some (Ir.Lvar tmp), cal, args));
          Ir.Rload (Ir.Lvar tmp, ty))
  | Ast.Index _ | Ast.Field _ | Ast.Arrow _ | Ast.Deref _ ->
      Ir.Rload (lower_lv env b e, ty)
  | Ast.Assign (lhs, rhs) ->
      let v = lower_assign env b lhs rhs in
      v
  | Ast.Incr (pre, a) -> lower_incdec env b ~pre ~down:false a
  | Ast.Decr (pre, a) -> lower_incdec env b ~pre ~down:true a
  | Ast.Cond (c, x, y) ->
      let tmp = fresh_temp b ty in
      let bt = new_block b and bf = new_block b and join = new_block b in
      finish b (Ir.Tif (lower_rv env b c, bt, bf));
      switch_to b bt;
      let vx = lower_rv env b x in
      emit b ~loc (Ir.Iassign (Ir.Lvar tmp, vx));
      finish b (Ir.Tgoto join);
      switch_to b bf;
      let vy = lower_rv env b y in
      emit b ~loc (Ir.Iassign (Ir.Lvar tmp, vy));
      finish b (Ir.Tgoto join);
      switch_to b join;
      Ir.Rload (Ir.Lvar tmp, ty)

and lower_callee env b (callee : Ast.expr) : Ir.callee =
  match callee.Ast.desc with
  | Ast.Var name
    when List.exists (fun (f : Ast.func) -> String.equal f.Ast.f_name name) env.prog.Ast.funcs ->
      Ir.Cfun name
  | Ast.Var name when Typecheck.is_builtin name -> Ir.Cbuiltin name
  | _ -> Ir.Cptr (lower_rv env b callee)

(* Assignment as an expression: evaluate rhs, store via a temp so the value
   read back is the value written, independent of aliasing. *)
and lower_assign env b (lhs : Ast.expr) (rhs : Ast.expr) : Ir.rv =
  let ty = Ast.ty_of lhs in
  let loc = lhs.Ast.loc in
  match ty with
  | Ty.Struct _ ->
      let dst = lower_lv env b lhs in
      let src = lower_lv env b rhs in
      emit b ~loc (Ir.Icopy (dst, src, ty));
      Ir.Rconst (Ir.Kint (Ty.Int, 0L))
  | _ ->
      let v = lower_rv env b rhs in
      let dst = lower_lv env b lhs in
      let tmp = fresh_temp b ty in
      emit b ~loc (Ir.Iassign (Ir.Lvar tmp, v));
      emit b ~loc (Ir.Iassign (dst, Ir.Rload (Ir.Lvar tmp, ty)));
      Ir.Rload (Ir.Lvar tmp, ty)

and lower_incdec env b ~pre ~down (a : Ast.expr) : Ir.rv =
  let ty = Ast.ty_of a in
  let loc = a.Ast.loc in
  let lv = lower_lv env b a in
  let old = fresh_temp b ty in
  emit b ~loc (Ir.Iassign (Ir.Lvar old, Ir.Rload (lv, ty)));
  let one =
    match ty with
    | Ty.Float | Ty.Double -> Ir.Rconst (Ir.Kfloat (ty, 1.0))
    | Ty.Ptr _ -> Ir.Rconst (Ir.Kint (Ty.Long, 1L))
    | t -> Ir.Rconst (Ir.Kint (t, 1L))
  in
  let op = if down then Ast.Sub else Ast.Add in
  let updated = Ir.Rbinop (op, Ir.Rload (Ir.Lvar old, ty), one, ty) in
  if pre then (
    let nw = fresh_temp b ty in
    emit b ~loc (Ir.Iassign (Ir.Lvar nw, updated));
    emit b ~loc (Ir.Iassign (lv, Ir.Rload (Ir.Lvar nw, ty)));
    Ir.Rload (Ir.Lvar nw, ty))
  else (
    emit b ~loc (Ir.Iassign (lv, updated));
    Ir.Rload (Ir.Lvar old, ty))

and lower_shortcircuit env b ~is_and (x : Ast.expr) (y : Ast.expr) : Ir.rv =
  let loc = x.Ast.loc in
  let tmp = fresh_temp b Ty.Int in
  let brhs = new_block b and bshort = new_block b and join = new_block b in
  let vx = lower_rv env b x in
  (if is_and then finish b (Ir.Tif (vx, brhs, bshort))
   else finish b (Ir.Tif (vx, bshort, brhs)));
  switch_to b brhs;
  let vy = lower_rv env b y in
  (* normalize to 0/1 *)
  emit b ~loc
    (Ir.Iassign
       ( Ir.Lvar tmp,
         Ir.Rbinop (Ast.Ne, vy, Ir.Rconst (Ir.Kint (Ty.Int, 0L)), Ty.Int) ));
  finish b (Ir.Tgoto join);
  switch_to b bshort;
  emit b ~loc
    (Ir.Iassign (Ir.Lvar tmp, Ir.Rconst (Ir.Kint (Ty.Int, if is_and then 0L else 1L))));
  finish b (Ir.Tgoto join);
  switch_to b join;
  Ir.Rload (Ir.Lvar tmp, Ty.Int)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt env b (s : Ast.stmt) : unit =
  match s.Ast.sdesc with
  | Ast.Sexpr e -> ignore (lower_rv env b e)
  | Ast.Sblock body -> List.iter (lower_stmt env b) body
  | Ast.Sif (c, t, f) ->
      let bt = new_block b and bf = new_block b and join = new_block b in
      finish b (Ir.Tif (lower_rv env b c, bt, bf));
      switch_to b bt;
      List.iter (lower_stmt env b) t;
      finish b (Ir.Tgoto join);
      switch_to b bf;
      List.iter (lower_stmt env b) f;
      finish b (Ir.Tgoto join);
      switch_to b join
  | Ast.Swhile (c, body) ->
      let header = new_block b and bbody = new_block b and exit_ = new_block b in
      finish b (Ir.Tgoto header);
      switch_to b header;
      finish b (Ir.Tif (lower_rv env b c, bbody, exit_));
      b.breaks <- exit_ :: b.breaks;
      b.continues <- header :: b.continues;
      switch_to b bbody;
      List.iter (lower_stmt env b) body;
      finish b (Ir.Tgoto header);
      b.breaks <- List.tl b.breaks;
      b.continues <- List.tl b.continues;
      switch_to b exit_
  | Ast.Sdo (body, c) ->
      let bbody = new_block b and check = new_block b and exit_ = new_block b in
      finish b (Ir.Tgoto bbody);
      b.breaks <- exit_ :: b.breaks;
      b.continues <- check :: b.continues;
      switch_to b bbody;
      List.iter (lower_stmt env b) body;
      finish b (Ir.Tgoto check);
      switch_to b check;
      finish b (Ir.Tif (lower_rv env b c, bbody, exit_));
      b.breaks <- List.tl b.breaks;
      b.continues <- List.tl b.continues;
      switch_to b exit_
  | Ast.Sfor (init, cond, step, body) ->
      Option.iter (fun e -> ignore (lower_rv env b e)) init;
      let header = new_block b
      and bbody = new_block b
      and bstep = new_block b
      and exit_ = new_block b in
      finish b (Ir.Tgoto header);
      switch_to b header;
      (match cond with
      | Some c -> finish b (Ir.Tif (lower_rv env b c, bbody, exit_))
      | None -> finish b (Ir.Tgoto bbody));
      b.breaks <- exit_ :: b.breaks;
      b.continues <- bstep :: b.continues;
      switch_to b bbody;
      List.iter (lower_stmt env b) body;
      finish b (Ir.Tgoto bstep);
      switch_to b bstep;
      Option.iter (fun e -> ignore (lower_rv env b e)) step;
      finish b (Ir.Tgoto header);
      b.breaks <- List.tl b.breaks;
      b.continues <- List.tl b.continues;
      switch_to b exit_
  | Ast.Sreturn None ->
      finish b (Ir.Tret None);
      switch_to b (new_block b)
  | Ast.Sreturn (Some e) ->
      let v = lower_rv env b e in
      finish b (Ir.Tret (Some v));
      switch_to b (new_block b)
  | Ast.Sbreak -> (
      match b.breaks with
      | target :: _ ->
          finish b (Ir.Tgoto target);
          switch_to b (new_block b)
      | [] -> err s.Ast.sloc "break outside a loop")
  | Ast.Scontinue -> (
      match b.continues with
      | target :: _ ->
          finish b (Ir.Tgoto target);
          switch_to b (new_block b)
      | [] -> err s.Ast.sloc "continue outside a loop")
  | Ast.Spoll name ->
      let id = b.npoll in
      b.npoll <- b.npoll + 1;
      b.user_polls <- b.user_polls @ [ (id, name) ];
      emit b ~loc:s.Ast.sloc (Ir.Ipoll id)
  | Ast.Sdecl d ->
      err s.Ast.sloc "internal: block declaration of %s survived Scopes.normalize"
        d.Ast.d_name
  | Ast.Slabel name ->
      (* a label starts a fresh block so goto has a target; fall through *)
      let target = label_block b name in
      finish b (Ir.Tgoto target);
      switch_to b target
  | Ast.Sgoto name ->
      finish b (Ir.Tgoto (label_block b name));
      switch_to b (new_block b)
  | Ast.Sswitch (scrut, arms, default) ->
      (* C switch with fallthrough: evaluate the scrutinee once, dispatch
         through a chain of comparisons, and chain the arm bodies so an
         arm that does not break continues into the next *)
      let sty = Ast.ty_of scrut in
      let v = lower_rv env b scrut in
      let tmp = fresh_temp b sty in
      emit b ~loc:s.Ast.sloc (Ir.Iassign (Ir.Lvar tmp, v));
      let exit_ = new_block b in
      let arm_blocks = List.map (fun _ -> new_block b) arms in
      let default_block = new_block b in
      (* dispatch chain *)
      List.iteri
        (fun i (consts, _) ->
          let target = List.nth arm_blocks i in
          List.iter
            (fun c ->
              let next = new_block b in
              finish b
                (Ir.Tif
                   ( Ir.Rbinop
                       ( Ast.Eq,
                         Ir.Rload (Ir.Lvar tmp, sty),
                         Ir.Rconst (Ir.Kint (sty, c)),
                         Ty.Int ),
                     target,
                     next ));
              switch_to b next)
            consts)
        arms;
      finish b (Ir.Tgoto default_block);
      (* arm bodies, each falling through to the next; break -> exit *)
      b.breaks <- exit_ :: b.breaks;
      List.iteri
        (fun i (_, body) ->
          switch_to b (List.nth arm_blocks i);
          List.iter (lower_stmt env b) body;
          let next =
            if i + 1 < List.length arm_blocks then List.nth arm_blocks (i + 1)
            else default_block
          in
          finish b (Ir.Tgoto next))
        arms;
      switch_to b default_block;
      List.iter (lower_stmt env b) default;
      finish b (Ir.Tgoto exit_);
      b.breaks <- List.tl b.breaks;
      switch_to b exit_

(* ------------------------------------------------------------------ *)
(* Functions and program                                               *)
(* ------------------------------------------------------------------ *)

let lower_func prog strings npoll (f : Ast.func) : Ir.func * (int * string) list * int =
  let b =
    {
      blocks = [||];
      cur = 0;
      temps = [];
      ntemp = 0;
      breaks = [];
      continues = [];
      strings;
      user_polls = [];
      npoll;
      labels = Hashtbl.create 4;
    }
  in
  let entry = new_block b in
  switch_to b entry;
  let env = { prog; fname = f.Ast.f_name; scope = f.Ast.f_params } in
  (* local declarations with initializers become assignments at entry *)
  List.iter
    (fun (d : Ast.decl) ->
      env.scope <- env.scope @ [ (d.Ast.d_name, d.Ast.d_ty) ];
      match d.Ast.d_init with
      | None -> ()
      | Some e ->
          let v = lower_rv env b e in
          emit b ~loc:d.Ast.d_loc (Ir.Iassign (Ir.Lvar d.Ast.d_name, v)))
    f.Ast.f_locals;
  List.iter (lower_stmt env b) f.Ast.f_body;
  (* implicit return: 0 for int main-style functions, plain ret otherwise *)
  (if not (is_finished b) then
     match f.Ast.f_ret with
     | Ty.Void -> finish b (Ir.Tret None)
     | Ty.Int -> finish b (Ir.Tret (Some (Ir.Rconst (Ir.Kint (Ty.Int, 0L)))))
     | _ -> finish b (Ir.Tret None));
  (* seal any dangling empty blocks (created after return/break) *)
  let blocks =
    Array.map
      (fun (instrs, locs, term) ->
        {
          Ir.instrs = Array.of_list (List.rev !instrs);
          locs = Array.of_list (List.rev !locs);
          term = (match !term with Some t -> t | None -> Ir.Tret None);
        })
      b.blocks
  in
  let decls = List.map (fun (d : Ast.decl) -> (d.Ast.d_name, d.Ast.d_ty)) f.Ast.f_locals in
  ( {
      Ir.name = f.Ast.f_name;
      ret = f.Ast.f_ret;
      params = f.Ast.f_params;
      locals = decls @ b.temps;
      blocks;
      entry;
    },
    b.user_polls,
    b.npoll )

let lower_global_init (d : Ast.decl) strings : Ir.const option =
  match d.Ast.d_init with
  | None -> None
  | Some e ->
      (* global initializers are restricted to constants (possibly cast) *)
      let rec fold (e : Ast.expr) : Ir.const =
        match e.Ast.desc with
        | Ast.Const (Ast.Cint 0L) when Ty.is_pointer (Ast.ty_of e) ->
            Ir.Knull (Ast.ty_of e)
        | Ast.Const c -> (
            match c with
            | Ast.Cint v -> Ir.Kint (Ty.Int, v)
            | Ast.Clong v -> Ir.Kint (Ty.Long, v)
            | Ast.Cfloat v -> Ir.Kfloat (Ty.Float, v)
            | Ast.Cdouble v -> Ir.Kfloat (Ty.Double, v)
            | Ast.Cchar v -> Ir.Kint (Ty.Char, Int64.of_int (Char.code v))
            | Ast.Cstr s ->
                strings := s :: !strings;
                Ir.Kstr (List.length !strings - 1))
        | Ast.Cast (t, inner) -> (
            match (fold inner, t) with
            | Ir.Kint (_, v), t' when Ty.is_integer t' -> Ir.Kint (t', v)
            | Ir.Kint (_, v), t' when Ty.is_float t' -> Ir.Kfloat (t', Int64.to_float v)
            | Ir.Kfloat (_, v), t' when Ty.is_float t' -> Ir.Kfloat (t', v)
            | Ir.Kfloat (_, v), t' when Ty.is_integer t' ->
                Ir.Kint (t', Int64.of_float v)
            | Ir.Kint (_, 0L), (Ty.Ptr _ as t') -> Ir.Knull t'
            | c, _ -> c)
        | Ast.Unop (Ast.Neg, inner) -> (
            match fold inner with
            | Ir.Kint (t, v) -> Ir.Kint (t, Int64.neg v)
            | Ir.Kfloat (t, v) -> Ir.Kfloat (t, -.v)
            | c -> c)
        | _ -> err d.Ast.d_loc "global initializer must be a constant"
      in
      Some (fold e)

(** Lower a type-checked program.  Returns the IR program and the list of
    user-placed poll points (id, pragma name) for {!Pollpoint}. *)
let lower (p : Ast.program) : Ir.prog * (int * string) list =
  let strings = ref [] in
  let globals =
    List.map
      (fun (d : Ast.decl) -> (d.Ast.d_name, d.Ast.d_ty, lower_global_init d strings))
      p.Ast.globals
  in
  let funcs, user_polls, _ =
    List.fold_left
      (fun (fs, ups, npoll) f ->
        let irf, ups', npoll' = lower_func p strings npoll f in
        (fs @ [ irf ], ups @ ups', npoll'))
      ([], [], 0) p.Ast.funcs
  in
  ( {
      Ir.tenv = p.Ast.tenv;
      globals;
      strings = Array.of_list (List.rev !strings);
      funcs;
    },
    user_polls )
